(* Engine selection: the tree-walking interpreter (the semantic oracle)
   or the bytecode VM. Both consume the same [Interp.compile] output, so a
   program-plan pair has exactly one compiled form and two executors —
   outcome equivalence between them is the differential guarantee
   [test_vm] and the vm-smoke CI job enforce. *)

module I = Runtime.Interp

type t = Interp | Vm

let of_string = function
  | "interp" -> Some Interp
  | "vm" -> Some Vm
  | _ -> None

let name = function Interp -> "interp" | Vm -> "vm"

let m_compile_us = Obs.Metrics.counter "vm.compile_us"
let m_dispatch_steps = Obs.Metrics.counter "vm.dispatch_steps"

(* Lower a compiled program, attributing compile time to vm.compile_us. *)
let lower (cp : I.cprog) : Bytecode.prog =
  Obs.Trace.with_span ~cat:"vm" "vm.compile" (fun () ->
      let t0 = Obs.Clock.now_ns () in
      let bp = Lower.lower cp in
      Obs.Metrics.add m_compile_us ((Obs.Clock.now_ns () - t0) / 1000);
      bp)

let exec ?limits (bp : Bytecode.prog) : I.outcome =
  Obs.Trace.with_span ~cat:"vm" "vm.dispatch" (fun () ->
      let out = Exec.run ?limits bp in
      Obs.Metrics.add m_dispatch_steps out.I.steps;
      out)

let run ?limits engine (cp : I.cprog) : I.outcome =
  match engine with
  | Interp -> I.run ?limits cp
  | Vm -> exec ?limits (lower cp)

let run_plan ?limits engine (prog : Ir.Prog.t) (plan : Instr.Item.plan) :
    I.outcome =
  match engine with
  | Interp -> I.run_plan ?limits prog plan
  | Vm -> run ?limits Vm (I.compile prog plan)

let run_native ?limits engine (prog : Ir.Prog.t) : I.outcome =
  run_plan ?limits engine prog (Instr.Item.empty_plan prog)
