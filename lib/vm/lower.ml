(* Lowering: the interpreter's slot-resolved compiled form
   ([Runtime.Interp.cprog]) down to the flat bytecode of [Bytecode].

   Reusing [Interp.compile] as the single compilation front means every
   subtle lowering decision — slot assignment, folding a phi's shadow item
   into the phi, check-label patching — is shared with the interpreter, so
   engine equivalence tests compare execution strategies, not two
   compilers.

   Shapes handled here:

   - Parallel phis become per-edge move sequences: for each CFG edge into
     a block with leading phis, a trampoline copies each phi's statically
     selected arm and runs its residual actions, then jumps to the shared
     block body. When a destination could be read as a later source (the
     actual parallel-copy hazard), reads go through scratch slots first;
     the common hazard-free edge is lowered to direct moves. Edges into
     phi-less blocks branch straight to the body.
   - Plan actions are fused in place as SH_* / CHECK opcodes; an
     instruction with pre actions hands its step bit to the first one.
   - Adjacent hot pairs fuse into two-step superinstructions: a
     compare/arith feeding the block's conditional branch (CMPBR_SS/SC), and
     pointer arithmetic feeding the load/store that consumes it
     (IDXLOAD/IDXSTORE). Fusion applies only when no plan actions sit
     between the two halves, and the first half can neither fault nor
     allocate, so the pair is observationally one unit.
   - Cost-model counters become per-block static deltas plus a per-call
     entry delta (see bytecode.ml); opcodes carry none of them. *)

module I = Runtime.Interp
module B = Bytecode

type buf = { mutable a : int array; mutable n : int }

let newbuf () = { a = Array.make 256 0; n = 0 }

let emit b v =
  if b.n >= Array.length b.a then begin
    let a = Array.make (2 * Array.length b.a) 0 in
    Array.blit b.a 0 a 0 b.n;
    b.a <- a
  end;
  b.a.(b.n) <- v;
  b.n <- b.n + 1

let contents b = Array.sub b.a 0 b.n

(* General value operand encoding. *)
let rop_enc = function
  | I.Rc n -> (0, n)
  | I.Rs s -> (1, s)
  | I.Ru -> (2, 0)

let sop_enc = function
  | I.Sc b -> (0, if b then 1 else 0)
  | I.Ss s -> (1, s)

let unop_enc = function Ir.Types.Neg -> 0 | Ir.Types.Not -> 1 | Ir.Types.Lnot -> 2

let binop_enc : Ir.Types.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Lt -> 10 | Le -> 11
  | Gt -> 12 | Ge -> 13 | Eq -> 14 | Ne -> 15

(* ------------------------------------------------------------------ *)
(* Static counter deltas                                               *)
(* ------------------------------------------------------------------ *)

let acc_action (d : int array) (a : I.caction) =
  let bump f n = d.(f) <- d.(f) + n in
  match a with
  | I.CSet_var (_, rhs) ->
    bump B.d_sh_reg 1;
    (match rhs with
    | I.CRconst _ -> ()
    | I.CRvar _ | I.CRglobal _ | I.CRphi _ -> bump B.d_sh_reg_reads 1
    | I.CRconj ys -> bump B.d_sh_reg_reads (Array.length ys)
    | I.CRmem _ -> bump B.d_sh_mem 1)
  | I.CSet_mem _ | I.CSet_mem_const _ -> bump B.d_sh_mem 1
  | I.CSet_mem_object _ -> bump B.d_sh_obj 1
  | I.CSet_global (_, s) ->
    bump B.d_sh_reg 1;
    (match s with I.Ss _ -> bump B.d_sh_reg_reads 1 | I.Sc _ -> ())
  | I.CCheck _ -> bump B.d_sh_check 1

let acc_actions d acts = Array.iter (acc_action d) acts

let acc_kind (d : int array) (k : I.ckind) =
  let bump f = d.(f) <- d.(f) + 1 in
  match k with
  | I.CConst _ | I.CCopy _ | I.CUnop _ | I.CBinop _ | I.CField _ | I.CIndex _
  | I.CGlobaladdr _ | I.CFuncaddr _ | I.CPhi _ ->
    bump B.d_alu
  | I.CLoad _ | I.CStore _ -> bump B.d_mem
  | I.CAlloc _ -> bump B.d_alloc (* alloc_cells is dynamic *)
  | I.CCall _ -> bump B.d_call
  | I.COutput _ | I.CInput _ -> bump B.d_io

(* The whole block's delta: leading phis (value + folded shadow + residual
   actions), body instructions with their pre/post actions, terminator
   actions and the terminator itself. *)
let block_delta (cb : I.cblock) : int array =
  let d = Array.make B.ndelta 0 in
  Array.iter
    (fun (ci : I.cinstr) ->
      acc_actions d ci.pre;
      acc_kind d ci.ckind;
      (match ci.ckind with
      | I.CPhi { sh = Some _; _ } ->
        d.(B.d_sh_reg) <- d.(B.d_sh_reg) + 1;
        d.(B.d_sh_reg_reads) <- d.(B.d_sh_reg_reads) + 1
      | _ -> ());
      acc_actions d ci.post)
    cb.body;
  acc_actions d cb.term_pre;
  (match cb.cterm with
  | I.CTBr _ -> d.(B.d_branch) <- d.(B.d_branch) + 1
  | I.CTRet _ -> d.(B.d_call) <- d.(B.d_call) + 1
  | I.CTJmp _ -> ());
  d

(* ------------------------------------------------------------------ *)
(* Function lowering                                                   *)
(* ------------------------------------------------------------------ *)

let leading_phis (cb : I.cblock) : int =
  let n = Array.length cb.body in
  let i = ref 0 in
  while !i < n && (match cb.body.(!i).ckind with I.CPhi _ -> true | _ -> false) do
    incr i
  done;
  !i

type ctx = {
  intern : string -> int;            (* name table *)
  fidx_of : string -> int option;    (* defined functions only *)
}

let lower_func (ctx : ctx) ~(block0 : int) (f : I.cfunc) : B.func =
  let b = newbuf () in
  let nblocks = Array.length f.cblocks in
  let nphis = Array.map leading_phis f.cblocks in
  let scratch = Array.fold_left max 0 nphis in
  let body_pc = Array.make nblocks (-1) in
  (* Branch-target pc words to patch once trampoline pcs are known:
     (word index, src block, dst block). *)
  let patches = ref [] in
  let emit_target ~src ~dst =
    (* The jump counts the target's execution; gidx first, then the pc. *)
    emit b (block0 + dst);
    patches := (b.n, src, dst) :: !patches;
    emit b 0
  in
  (* [step] puts the interpreter-step bit on this action's opcode. *)
  let emit_action ?(step = false) (a : I.caction) =
    let eop op = emit b (if step then op lor B.step_bit else op) in
    match a with
    | I.CSet_var (x, rhs) -> (
      match rhs with
      | I.CRconst c -> eop B.o_sh_mov; emit b x; emit b 0; emit b (if c then 1 else 0)
      | I.CRvar y -> eop B.o_sh_mov; emit b x; emit b 1; emit b y
      | I.CRconj [| y |] -> eop B.o_sh_mov; emit b x; emit b 1; emit b y
      | I.CRconj [| y1; y2 |] -> eop B.o_sh_conj2; emit b x; emit b y1; emit b y2
      | I.CRconj ys ->
        eop B.o_sh_conj; emit b x; emit b (Array.length ys);
        Array.iter (emit b) ys
      | I.CRmem y -> eop B.o_sh_mem_rd; emit b x; emit b y
      | I.CRglobal i -> eop B.o_sh_global_rd; emit b x; emit b i
      | I.CRphi arms ->
        eop B.o_sh_phi; emit b x; emit b (Array.length arms);
        Array.iter
          (fun (pb, s) ->
            let sk, sv = sop_enc s in
            emit b pb; emit b sk; emit b sv)
          arms)
    | I.CSet_mem (x, s) ->
      let sk, sv = sop_enc s in
      eop B.o_sh_mem_wr; emit b x; emit b sk; emit b sv
    | I.CSet_mem_const (x, c) ->
      eop B.o_sh_mem_wr; emit b x; emit b 0; emit b (if c then 1 else 0)
    | I.CSet_mem_object (x, c) ->
      eop B.o_sh_obj; emit b x; emit b (if c then 1 else 0)
    | I.CSet_global (i, s) ->
      let sk, sv = sop_enc s in
      eop B.o_sh_global_wr; emit b i; emit b sk; emit b sv
    | I.CCheck (slot, lbl) ->
      eop B.o_check;
      emit b (match slot with Some s -> s | None -> -1);
      emit b lbl
  in
  let emit_actions acts = Array.iter (fun a -> emit_action a) acts in
  (* Actions where the first one carries the instruction's step bit. *)
  let emit_actions_stepped acts =
    Array.iteri (fun i a -> emit_action ~step:(i = 0) a) acts
  in
  let stepped op ~step = if step then op lor B.step_bit else op in
  let emit_kind ~step (ci : I.cinstr) =
    let eop op = emit b (stepped op ~step) in
    match ci.ckind with
    | I.CConst (x, n) -> eop B.o_const; emit b x; emit b n
    | I.CCopy (x, o) -> (
      match o with
      | I.Rs s -> eop B.o_copy_s; emit b x; emit b s
      | _ ->
        let ok, ov = rop_enc o in
        eop B.o_copy; emit b x; emit b ok; emit b ov)
    | I.CUnop (x, u, o) ->
      let ok, ov = rop_enc o in
      eop B.o_unop; emit b x; emit b (unop_enc u); emit b ok; emit b ov
    | I.CBinop (x, bop, o1, o2) -> (
      match (o1, o2) with
      | I.Rs s1, I.Rs s2 when bop = Ir.Types.Add ->
        eop B.o_add_ss; emit b x; emit b s1; emit b s2
      | I.Rs s1, I.Rc c2 when bop = Ir.Types.Add ->
        eop B.o_add_sc; emit b x; emit b s1; emit b c2
      | I.Rs s1, I.Rs s2 ->
        eop B.o_binop_ss; emit b x; emit b (binop_enc bop); emit b s1; emit b s2
      | I.Rs s1, I.Rc c2 ->
        eop B.o_binop_sc; emit b x; emit b (binop_enc bop); emit b s1; emit b c2
      | _ ->
        let ok1, ov1 = rop_enc o1 and ok2, ov2 = rop_enc o2 in
        eop B.o_binop; emit b x; emit b (binop_enc bop);
        emit b ok1; emit b ov1; emit b ok2; emit b ov2)
    | I.CAlloc { dst; init; size; name } -> (
      match size with
      | I.CFields n ->
        eop B.o_allocf; emit b dst; emit b n;
        emit b (if init then 1 else 0); emit b (ctx.intern name)
      | I.CArray o ->
        let ok, ov = rop_enc o in
        eop B.o_alloca; emit b dst; emit b ok; emit b ov;
        emit b (if init then 1 else 0); emit b (ctx.intern name))
    | I.CLoad (x, y) -> eop B.o_load; emit b x; emit b y; emit b ci.clbl
    | I.CStore (x, o) ->
      let ok, ov = rop_enc o in
      eop B.o_store; emit b x; emit b ok; emit b ov; emit b ci.clbl
    | I.CField (x, y, k) -> eop B.o_field; emit b x; emit b y; emit b k
    | I.CIndex (x, y, o) ->
      let ok, ov = rop_enc o in
      eop B.o_index; emit b x; emit b y; emit b ok; emit b ov
    | I.CGlobaladdr (x, objid) -> eop B.o_globaladdr; emit b x; emit b objid
    | I.CFuncaddr (x, fn) -> eop B.o_funcaddr; emit b x; emit b (ctx.intern fn)
    | I.CCall { dst; callee; args } ->
      let opc, target =
        match callee with
        | I.CDirect fn -> (
          match ctx.fidx_of fn with
          | Some fi -> (B.o_call, fi)
          | None -> (B.o_call, -1 - ctx.intern fn))
        | I.CIndirect s -> (B.o_callind, s)
      in
      eop opc;
      emit b (match dst with Some x -> x | None -> -1);
      emit b target;
      emit b (Array.length args);
      Array.iter
        (fun o ->
          let ok, ov = rop_enc o in
          emit b ok; emit b ov)
        args
    | I.CPhi _ -> eop B.o_bad_phi
    | I.COutput o ->
      let ok, ov = rop_enc o in
      eop B.o_output; emit b ok; emit b ov
    | I.CInput x -> eop B.o_input; emit b x
  in
  let emit_instr (ci : I.cinstr) =
    if Array.length ci.pre > 0 then begin
      emit_actions_stepped ci.pre;
      emit_kind ~step:false ci
    end
    else emit_kind ~step:true ci;
    emit_actions ci.post
  in
  let no_acts (ci : I.cinstr) =
    Array.length ci.pre = 0 && Array.length ci.post = 0
  in
  (* Phi resolution for edge src -> dst. The selected arm of each phi is
     known statically, so the edge lowers to a move list. Reads must
     logically all precede writes and residual actions (the interpreter's
     two loops); direct per-phi moves reorder a later phi's read after an
     earlier phi's write/actions, which is only observable when that read
     touches a slot one of those writes — value-phi destinations for the
     value plane; shadow destinations or action-written shadow slots for
     the shadow plane. Hazard-free edges (the overwhelmingly common case,
     and every single-phi edge) get direct moves; the rest keep the
     scratch-slot protocol. *)
  let emit_phi_edge ~src ~(dst : int) =
    let cb = f.cblocks.(dst) in
    let np = nphis.(dst) in
    let arm_of arms =
      let k = ref (-1) in
      Array.iteri (fun j (pb, _) -> if !k < 0 && pb = src then k := j) arms;
      !k
    in
    let vdst = Hashtbl.create 8 and shwr = Hashtbl.create 8 in
    for i = 0 to np - 1 do
      match cb.body.(i).ckind with
      | I.CPhi { dst = d; sh; _ } ->
        Hashtbl.replace vdst d ();
        if sh <> None then Hashtbl.replace shwr d ();
        let acts a =
          Array.iter
            (function I.CSet_var (x, _) -> Hashtbl.replace shwr x () | _ -> ())
            a
        in
        acts cb.body.(i).pre;
        acts cb.body.(i).post
      | _ -> assert false
    done;
    let hazard = ref false in
    if np > 1 then
      for i = 0 to np - 1 do
        match cb.body.(i).ckind with
        | I.CPhi { arms; sh; _ } ->
          let k = arm_of arms in
          (if k >= 0 then
             match snd arms.(k) with
             | I.Rs s -> if Hashtbl.mem vdst s then hazard := true
             | _ -> ());
          (match sh with
          | Some sharms ->
            let k = arm_of sharms in
            if k >= 0 then (
              match snd sharms.(k) with
              | I.Ss s -> if Hashtbl.mem shwr s then hazard := true
              | I.Sc _ -> ())
          | None -> ())
        | _ -> assert false
      done;
    let emit_move ~vslot ~shslot (ci : I.cinstr) =
      match ci.ckind with
      | I.CPhi { arms; sh; _ } ->
        let k = arm_of arms in
        let ok, ov = if k >= 0 then rop_enc (snd arms.(k)) else (3, 0) in
        emit b B.o_copy; emit b vslot; emit b ok; emit b ov;
        (match sh with
        | Some sharms ->
          let k = arm_of sharms in
          let sk, sv = if k >= 0 then sop_enc (snd sharms.(k)) else (0, 1) in
          emit b B.o_sh_mov; emit b shslot; emit b sk; emit b sv
        | None -> ())
      | _ -> assert false
    in
    if not !hazard then
      for i = 0 to np - 1 do
        let ci = cb.body.(i) in
        (match ci.ckind with
        | I.CPhi { dst = d; _ } -> emit_move ~vslot:d ~shslot:d ci
        | _ -> assert false);
        emit_actions ci.pre;
        emit_actions ci.post
      done
    else begin
      for i = 0 to np - 1 do
        emit_move ~vslot:(f.nslots + i) ~shslot:(f.nslots + i) cb.body.(i)
      done;
      for i = 0 to np - 1 do
        let ci = cb.body.(i) in
        (match ci.ckind with
        | I.CPhi { dst = d; sh; _ } ->
          let scr = f.nslots + i in
          emit b B.o_copy_s; emit b d; emit b scr;
          (match sh with
          | Some _ -> emit b B.o_sh_mov; emit b d; emit b 1; emit b scr
          | None -> ())
        | _ -> assert false);
        emit_actions ci.pre;
        emit_actions ci.post
      done
    end
  in
  let emit_term (cb : I.cblock) bid ~fused =
    if not fused then begin
      if Array.length cb.term_pre > 0 then emit_actions_stepped cb.term_pre;
      let step = Array.length cb.term_pre = 0 in
      match cb.cterm with
      | I.CTBr (o, b1, b2) ->
        (match o with
        | I.Rs s ->
          emit b (stepped B.o_br_s ~step);
          emit b s; emit b cb.term_lbl; emit b bid
        | _ ->
          let ok, ov = rop_enc o in
          emit b (stepped B.o_br ~step);
          emit b ok; emit b ov; emit b cb.term_lbl; emit b bid);
        emit_target ~src:bid ~dst:b1;
        emit_target ~src:bid ~dst:b2
      | I.CTJmp b1 ->
        emit b (stepped B.o_jmp ~step);
        emit b bid;
        emit_target ~src:bid ~dst:b1
      | I.CTRet o ->
        let ok, ov = match o with Some o -> rop_enc o | None -> (3, 0) in
        emit b (stepped B.o_ret ~step);
        emit b ok; emit b ov
    end
  in
  (* Prologue: entry actions, then the virtual entry edge (prev = 0) into
     block 0, one execution of block 0 counted, falling through. *)
  emit_actions f.entry_acts;
  if nblocks > 0 then begin
    if nphis.(0) > 0 then emit_phi_edge ~src:0 ~dst:0;
    emit b B.o_block;
    emit b block0
  end;
  (* Block bodies, with pair fusion. *)
  Array.iteri
    (fun bid (cb : I.cblock) ->
      body_pc.(bid) <- b.n;
      let n = Array.length cb.body in
      let i = ref nphis.(bid) in
      let fused_term = ref false in
      while !i < n do
        let ci = cb.body.(!i) in
        let next = if !i + 1 < n then Some cb.body.(!i + 1) else None in
        (match (ci.ckind, next) with
        (* INDEX ; LOAD through its result — one dispatch, two steps. *)
        | I.CIndex (d, src, iop), Some ({ ckind = I.CLoad (d2, p); _ } as nx)
          when p = d && no_acts ci && Array.length nx.pre = 0 ->
          let iok, iov = rop_enc iop in
          emit b B.o_idxload;
          emit b d; emit b src; emit b iok; emit b iov;
          emit b d2; emit b nx.clbl;
          emit_actions nx.post;
          i := !i + 2
        (* INDEX ; STORE through its result. *)
        | I.CIndex (d, src, iop), Some ({ ckind = I.CStore (p, v); _ } as nx)
          when p = d && no_acts ci && Array.length nx.pre = 0 ->
          let iok, iov = rop_enc iop in
          let vok, vov = rop_enc v in
          emit b B.o_idxstore;
          emit b d; emit b src; emit b iok; emit b iov;
          emit b vok; emit b vov; emit b nx.clbl;
          emit_actions nx.post;
          i := !i + 2
        (* Last compare/arith feeding the conditional branch. *)
        | I.CBinop (d, bop, I.Rs s1, o2), None
          when no_acts ci
               && Array.length cb.term_pre = 0
               && (match cb.cterm with
                  | I.CTBr (I.Rs c, _, _) -> c = d
                  | _ -> false)
               && (match o2 with I.Rs _ | I.Rc _ -> true | _ -> false) ->
          let b1, b2 =
            match cb.cterm with I.CTBr (_, x, y) -> (x, y) | _ -> assert false
          in
          (match o2 with
          | I.Rs s2 ->
            emit b B.o_cmpbr_ss;
            emit b d; emit b (binop_enc bop); emit b s1; emit b s2
          | I.Rc c2 ->
            emit b B.o_cmpbr_sc;
            emit b d; emit b (binop_enc bop); emit b s1; emit b c2
          | _ -> assert false);
          emit b cb.term_lbl; emit b bid;
          emit_target ~src:bid ~dst:b1;
          emit_target ~src:bid ~dst:b2;
          fused_term := true;
          incr i
        | _ ->
          emit_instr ci;
          incr i)
      done;
      emit_term cb bid ~fused:!fused_term)
    f.cblocks;
  (* Edge trampolines for phi-receiving targets, then patch all targets. *)
  let tramp = Hashtbl.create 16 in
  List.iter
    (fun (_, src, dst) ->
      if nphis.(dst) > 0 && not (Hashtbl.mem tramp (src, dst)) then begin
        Hashtbl.replace tramp (src, dst) b.n;
        emit_phi_edge ~src ~dst;
        emit b B.o_goto;
        emit b body_pc.(dst)
      end)
    (List.rev !patches);
  List.iter
    (fun (at, src, dst) ->
      b.a.(at) <-
        (if nphis.(dst) > 0 then Hashtbl.find tramp (src, dst)
         else body_pc.(dst)))
    !patches;
  let entry_delta = Array.make B.ndelta 0 in
  acc_actions entry_delta f.entry_acts;
  {
    B.fname = f.cfname;
    code = contents b;
    nslots = f.nslots + scratch;
    base_slots = f.nslots;
    params = f.cparams;
    entry_delta;
    nblocks;
    block0;
  }

(* ------------------------------------------------------------------ *)

(* Highest label mentioned anywhere (labels are dense from the front end,
   but CCheck can carry the synthetic -2); sizes the exec label bitmaps. *)
let max_label (cp : I.cprog) : int =
  let m = ref 0 in
  let act = function
    | I.CCheck (_, l) -> if l > !m then m := l
    | _ -> ()
  in
  Hashtbl.iter
    (fun _ (cf : I.cfunc) ->
      Array.iter (fun a -> act a) cf.entry_acts;
      Array.iter
        (fun (cb : I.cblock) ->
          if cb.term_lbl > !m then m := cb.term_lbl;
          Array.iter (fun a -> act a) cb.term_pre;
          Array.iter
            (fun (ci : I.cinstr) ->
              if ci.clbl > !m then m := ci.clbl;
              Array.iter (fun a -> act a) ci.pre;
              Array.iter (fun a -> act a) ci.post)
            cb.body)
        cf.cblocks)
    cp.funcs;
  !m

let lower (cp : I.cprog) : B.prog =
  let names = ref [] in
  let nnames = ref 0 in
  let name_tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let intern s =
    match Hashtbl.find_opt name_tbl s with
    | Some i -> i
    | None ->
      let i = !nnames in
      incr nnames;
      Hashtbl.replace name_tbl s i;
      names := s :: !names;
      i
  in
  let fnames =
    Hashtbl.fold (fun n _ acc -> n :: acc) cp.funcs [] |> List.sort compare
  in
  let fun_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace fun_index n i) fnames;
  let fidx_of n = Hashtbl.find_opt fun_index n in
  let ctx = { intern; fidx_of } in
  (* Intern every function name up front so name2func covers them all. *)
  List.iter (fun n -> ignore (intern n)) fnames;
  let nblocks = ref 0 in
  let deltas = ref [] in
  let funcs =
    Array.of_list
      (List.map
         (fun n ->
           let cf = Hashtbl.find cp.funcs n in
           let block0 = !nblocks in
           nblocks := !nblocks + Array.length cf.cblocks;
           Array.iter (fun cb -> deltas := block_delta cb :: !deltas) cf.cblocks;
           lower_func ctx ~block0 cf)
         fnames)
  in
  let deltas_flat = Array.make (B.ndelta * !nblocks) 0 in
  List.iteri
    (fun rev_i d ->
      let i = !nblocks - 1 - rev_i in
      Array.blit d 0 deltas_flat (B.ndelta * i) B.ndelta)
    !deltas;
  let names_arr = Array.of_list (List.rev !names) in
  let name2func =
    Array.map
      (fun n -> match Hashtbl.find_opt fun_index n with Some i -> i | None -> -1)
      names_arr
  in
  {
    B.funcs;
    fun_index;
    names = names_arr;
    name2func;
    main = Hashtbl.find fun_index "main";
    globals = cp.globals;
    global_objid = cp.global_objid;
    nglobal_slots = cp.nglobal_slots;
    has_shadow = cp.has_shadow;
    nlabels = max_label cp + 1;
    nblocks = !nblocks;
    deltas = deltas_flat;
  }
