(* The bytecode container: a flat int-array code stream per function, an
   interned name table, and per-block counter deltas.

   Encoding. Every operation is an opcode word followed by a fixed (or
   length-prefixed) run of operand words. Bit 8 ([step_bit]) of the opcode
   word marks operations that count as an interpreter step (body
   instructions and terminators; phi resolution and shadow actions do
   not). An instruction with pre actions puts its step bit on the first
   pre-action opcode, so the step is still counted before any of the
   instruction's work, like the interpreter. The fused pair opcodes
   (CMPBR_*, IDXLOAD, IDXSTORE) cover two interpreter steps and do their
   own accounting instead of carrying the bit. General value operands are
   (kind, payload) pairs:

     kind 0  constant            payload = the integer
     kind 1  register slot       payload = slot index (frame-relative)
     kind 2  undef               payload ignored (reads as 0xDEAD, undefined)
     kind 3  none/default        payload ignored ({0, undefined}: the missing
                                 phi arm and the value of [return;])

   Shadow operands are (kind, payload) with kind 0 = constant (payload
   0/1) and kind 1 = shadow slot.

   Instrumentation actions are fused into dedicated opcodes at lowering
   time (SH_*, CHECK), so the dispatch loop never consults the plan.

   Block accounting rides on control transfer: JMP/BR/CMPBR operands name
   the target's global block index and the dispatch loop bumps its
   execution count while branching; only the function prologue needs a
   standalone BLOCK (the entry fallthrough). GOTO — the tail of a phi
   trampoline — transfers without counting, since the branch into the
   trampoline already counted the target.

   Cost-model counters are not updated per opcode: each block carries a
   static 11-field delta ([deltas], [d_*]) and the VM multiplies by the
   execution counts at the end — on a successful run a block entered is a
   block completed, so the sums equal the interpreter's per-instruction
   counts exactly. Only [alloc_cells] and [sh_obj_cells] depend on
   dynamic object sizes and are accumulated by their opcodes. *)

let step_bit = 256

(* Base instructions (may carry step_bit). *)
let o_const = 1          (* dst n *)
let o_copy = 2           (* dst ok ov          also the phi move *)
let o_copy_s = 3         (* dst src *)
let o_unop = 4           (* dst u ok ov        u: 0 Neg, 1 Not, 2 Lnot *)
let o_binop = 5          (* dst bop ok1 ov1 ok2 ov2 *)
let o_binop_ss = 6       (* dst bop s1 s2 *)
let o_binop_sc = 7       (* dst bop s1 c2 *)
let o_cmpbr_ss = 8       (* dst bop s1 s2 lbl srcbid gt pt ge pe   2 steps *)
let o_cmpbr_sc = 9       (* dst bop s1 c2 lbl srcbid gt pt ge pe   2 steps *)
let o_allocf = 10        (* dst ncells init nameidx *)
let o_alloca = 11        (* dst ok ov init nameidx *)
let o_load = 12          (* dst psrc lbl *)
let o_store = 13         (* pdst ok ov lbl *)
let o_field = 14         (* dst src k *)
let o_index = 15         (* dst src ok ov *)
let o_idxload = 16       (* idst src iok iov dst lbl               2 steps *)
let o_idxstore = 17      (* idst src iok iov vok vov lbl           2 steps *)
let o_globaladdr = 18    (* dst objid *)
let o_funcaddr = 19      (* dst nameidx *)
let o_call = 20          (* dst fref nargs (ok ov)*   fref<0: unknown -1-fref *)
let o_callind = 21       (* dst fslot nargs (ok ov)* *)
let o_output = 22        (* ok ov *)
let o_input = 23         (* dst *)
let o_br = 24            (* ok ov lbl srcbid gthen pcthen gelse pcelse *)
let o_br_s = 25          (* s lbl srcbid gthen pcthen gelse pcelse *)
let o_jmp = 26           (* srcbid gidx pc *)
let o_ret = 27           (* ok ov *)
let o_step = 28          (* standalone step (unused; kept for the format) *)
let o_bad_phi = 29       (* phi outside the block head: runtime error *)
let o_goto = 30          (* pc: trampoline -> shared block body, no count *)
let o_block = 31         (* gidx: count one execution (prologue fallthrough) *)

(* Fused instrumentation actions (never step). *)
let o_sh_mov = 32        (* dst sk sv *)
let o_sh_conj2 = 33      (* dst s1 s2 *)
let o_sh_conj = 34       (* dst n s1..sn *)
let o_sh_mem_rd = 35     (* dst pslot *)
let o_sh_global_rd = 36  (* dst gidx *)
let o_sh_phi = 37        (* dst narms (pb sk sv)* *)
let o_sh_mem_wr = 38     (* pslot sk sv *)
let o_sh_obj = 39        (* pslot b *)
let o_sh_global_wr = 40  (* gidx sk sv *)
let o_check = 41         (* slot lbl              slot -1: undef operand *)

(* Specialized arithmetic (Add dominates dynamically; a dedicated opcode
   removes the inner operator dispatch on the hottest path). *)
let o_add_ss = 42        (* dst s1 s2 *)
let o_add_sc = 43        (* dst s1 c2 *)

let n_opcodes = 44

(* Counter-delta field order (see Runtime.Counters.t); alloc_cells and
   sh_obj_cells are dynamic and excluded. *)
let d_alu = 0
let d_mem = 1
let d_branch = 2
let d_call = 3
let d_alloc = 4
let d_io = 5
let d_sh_reg = 6
let d_sh_reg_reads = 7
let d_sh_mem = 8
let d_sh_obj = 9
let d_sh_check = 10
let ndelta = 11

type func = {
  fname : string;
  code : int array;
  nslots : int;            (* frame size including phi scratch *)
  base_slots : int;        (* slots the interpreter would allocate *)
  params : int array;      (* parameter slots, in order *)
  entry_delta : int array; (* ndelta cells: entry_acts counters, per call *)
  nblocks : int;
  block0 : int;            (* global block index of this function's block 0 *)
}

type prog = {
  funcs : func array;              (* sorted by name *)
  fun_index : (string, int) Hashtbl.t;
  names : string array;            (* interned function + object names *)
  name2func : int array;           (* name index -> funcs index, or -1 *)
  main : int;
  globals : Ir.Types.global list;
  global_objid : (string, int) Hashtbl.t;
  nglobal_slots : int;             (* sigma_g size *)
  has_shadow : bool;               (* plan instruments anything at all *)
  nlabels : int;                   (* labels run -2 .. nlabels-1 (see exec) *)
  nblocks : int;                   (* total blocks across all functions *)
  deltas : int array;              (* ndelta * nblocks *)
}

let code_words (p : prog) : int =
  Array.fold_left (fun acc f -> acc + Array.length f.code) 0 p.funcs

(* ------------------------------------------------------------------ *)
(* Disassembly — raw and reversible                                    *)
(* ------------------------------------------------------------------ *)

let mnemonics =
  [|
    "HALT"; "CONST"; "COPY"; "COPY_S"; "UNOP"; "BINOP"; "BINOP_SS";
    "BINOP_SC"; "CMPBR_SS"; "CMPBR_SC"; "ALLOCF"; "ALLOCA"; "LOAD"; "STORE";
    "FIELD"; "INDEX"; "IDXLOAD"; "IDXSTORE"; "GLOBALADDR"; "FUNCADDR";
    "CALL"; "CALLIND"; "OUTPUT"; "INPUT"; "BR"; "BR_S"; "JMP"; "RET";
    "STEP"; "BAD_PHI"; "GOTO"; "BLOCK"; "SH_MOV"; "SH_CONJ2"; "SH_CONJ";
    "SH_MEM_RD"; "SH_GLOBAL_RD"; "SH_PHI"; "SH_MEM_WR"; "SH_OBJ";
    "SH_GLOBAL_WR"; "CHECK"; "ADD_SS"; "ADD_SC";
  |]

(* Fixed operand counts; -1 means length-prefixed (see [op_len]). *)
let operand_counts =
  [|
    0; 2; 3; 2; 4; 6; 4; 4; 10; 10; 4; 5; 3; 4; 3; 4; 6; 7; 2; 2; -1; -1;
    2; 1; 8; 7; 3; 2; 0; 0; 1; 1; 3; 3; -1; 2; 2; -1; 3; 2; 3; 2; 3; 3;
  |]

(* Total length in words of the operation at [pc], opcode included. *)
let op_len (code : int array) (pc : int) : int =
  let op = code.(pc) land 0xff in
  match operand_counts.(op) with
  | -1 ->
    if op = o_call || op = o_callind then 4 + (2 * code.(pc + 3))
    else if op = o_sh_conj then 3 + code.(pc + 2)
    else 3 + (3 * code.(pc + 2)) (* o_sh_phi *)
  | n -> n + 1

(* One operation as a reversible text line: "STEP+NAME w1 w2 ...", operand
   words printed raw. Returns the line and the next pc. *)
let disasm_op (code : int array) (pc : int) : string * int =
  let w = code.(pc) in
  let op = w land 0xff in
  let len = op_len code pc in
  let b = Buffer.create 32 in
  if w land step_bit <> 0 then Buffer.add_string b "STEP+";
  Buffer.add_string b
    (if op < Array.length mnemonics then mnemonics.(op)
     else Printf.sprintf "OP%d" op);
  for i = pc + 1 to pc + len - 1 do
    Buffer.add_char b ' ';
    Buffer.add_string b (string_of_int code.(i))
  done;
  (Buffer.contents b, pc + len)

let disasm (f : func) : string list =
  let rec go pc acc =
    if pc >= Array.length f.code then List.rev acc
    else
      let line, next = disasm_op f.code pc in
      go next (Printf.sprintf "%4d: %s" pc line :: acc)
  in
  go 0 []

(* Reassemble lines produced by [disasm] (the leading "pc:" is optional);
   the round trip [asm (disasm f) = f.code] is a structural self-check. *)
let asm (lines : string list) : int array =
  let mn = Hashtbl.create 64 in
  Array.iteri (fun i m -> Hashtbl.replace mn m i) mnemonics;
  let buf = ref [] in
  List.iter
    (fun line ->
      let toks =
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.filter (fun s -> not (String.length s > 0 && s.[String.length s - 1] = ':'))
      in
      match toks with
      | [] -> ()
      | name :: operands ->
        let step, name =
          match String.index_opt name '+' with
          | Some i ->
            (String.sub name 0 i = "STEP",
             String.sub name (i + 1) (String.length name - i - 1))
          | None -> (false, name)
        in
        let op =
          match Hashtbl.find_opt mn name with
          | Some o -> o
          | None -> invalid_arg ("asm: unknown mnemonic " ^ name)
        in
        buf := ((op lor (if step then step_bit else 0))
                :: List.map int_of_string operands)
               :: !buf)
    lines;
  Array.of_list (List.concat (List.rev !buf))
