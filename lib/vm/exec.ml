(* The flat-dispatch execution loop.

   Machine layout: one pair of growable parallel register stacks — a tag
   byte plane (bits 0-1: 0 int / 1 pointer / 2 function; bit 2: the
   ground-truth def bit) plus int arrays (a, b) for payloads, and a raw
   [Bytes] plane for the instrumented shadow state — indexed [frame base +
   slot]; an explicit frame stack (no OCaml recursion); heap objects as
   unboxed parallel cell arrays with the same merged tag/def plane and a
   shadow plane; sigma_g as [Bytes].

   The dispatch loop is a self-tail-recursive function whose hot state
   (code array, register planes, pc, frame base, predecessor block, step
   count, frame depth) travels as arguments, which the OCaml native
   compiler keeps in registers across the self-calls — the closest OCaml
   gets to threaded dispatch. Rarely-touched state (heap, frame stack,
   counters, label sets) lives in a record the loop closes over.

   Parity with Runtime.Interp is exact by construction:
   - [steps] is incremented and bounds-checked per step-bit opcode, i.e.
     exactly where the interpreter increments, so Resource_exhausted /
     Runtime_error ordering matches. The fused two-step opcodes add 2 and
     check once, which is indistinguishable: their first half can neither
     fault, allocate, nor produce output, and a run that raises discards
     its outcome;
   - cost-model counters are reconstructed from per-block execution counts
     times the static deltas computed at lowering (plus the two dynamic
     cell accumulators), which equals the interpreter's per-instruction
     counting on every successful run;
   - garbage cells, input PRNG, pointer packing and all error messages
     reuse the interpreter's exact formulas. *)

module I = Runtime.Interp
module B = Bytecode
module Counters = Runtime.Counters

let error fmt = Fmt.kstr (fun s -> raise (I.Runtime_error s)) fmt

let exhausted what limit = raise (I.Resource_exhausted { what; limit })

(* Tag bytes: kind lor (def lsl 2). *)
let t_int_u = '\000'
let t_int_d = '\004'
let t_ptr_d = '\005'
let t_fun_d = '\006'

type vobj = {
  otag : Bytes.t;        (* merged kind/def plane *)
  ova : int array;
  ovb : int array;
  osh : Bytes.t;
  oname : string;
  ocells : int;          (* padded cell count: max cells 1 *)
}

type rt = {
  prog : B.prog;
  limits : I.limits;
  (* heap *)
  mutable objs : vobj array;
  mutable nobjs : int;
  sigma_g : Bytes.t;
  (* register stacks (the loop carries them as arguments; these fields are
     the authoritative reference across growth) *)
  mutable rtag : Bytes.t;
  mutable ra : int array;
  mutable rb : int array;
  mutable rsh : Bytes.t;
  (* frame stack *)
  mutable fs_func : int array;
  mutable fs_pc : int array;
  mutable fs_dst : int array;
  mutable fs_base : int array;
  mutable fs_prev : int array;
  mutable sp : int;                  (* top of the register stacks *)
  mutable cur : int;                 (* current function index *)
  (* observation *)
  cnt : Counters.t;                  (* only the dynamic cell accumulators *)
  bexecs : int array;                (* per-global-block execution counts *)
  fexecs : int array;                (* per-function invocation counts *)
  det : Bytes.t;                     (* label bitmaps, indexed lbl + 2 *)
  gt : Bytes.t;
  mutable outputs_rev : int list;
  mutable input_state : int;
}

let dummy_obj =
  {
    otag = Bytes.empty;
    ova = [||];
    ovb = [||];
    osh = Bytes.empty;
    oname = "!";
    ocells = 0;
  }

let new_obj rt ~cells ~init ~name : int =
  if rt.nobjs >= rt.limits.max_objects then
    exhausted "objects" rt.limits.max_objects;
  let id = rt.nobjs in
  let n = max cells 1 in
  let ova =
    if init then Array.make n 0
    else
      Array.init n (fun off ->
          let h = (id * 2654435761) lxor (off * 40503) in
          (h lxor (h lsr 16)) land 0xffff)
  in
  let o =
    {
      otag = Bytes.make n (if init then t_int_d else t_int_u);
      ova;
      ovb = Array.make n 0;
      osh = Bytes.make n '\001';
      oname = name;
      ocells = n;
    }
  in
  if rt.nobjs >= Array.length rt.objs then begin
    let objs = Array.make (max 64 (2 * Array.length rt.objs)) dummy_obj in
    Array.blit rt.objs 0 objs 0 rt.nobjs;
    rt.objs <- objs
  end;
  rt.objs.(rt.nobjs) <- o;
  rt.nobjs <- rt.nobjs + 1;
  id

let ensure_regs rt need =
  if need > Array.length rt.ra then begin
    let cap = max need (2 * Array.length rt.ra) in
    let grow_b old =
      let nb = Bytes.make cap '\000' in
      Bytes.blit old 0 nb 0 (Bytes.length old);
      nb
    in
    let grow_a old =
      let na = Array.make cap 0 in
      Array.blit old 0 na 0 (Array.length old);
      na
    in
    rt.rtag <- grow_b rt.rtag;
    rt.ra <- grow_a rt.ra;
    rt.rb <- grow_a rt.rb;
    rt.rsh <- grow_b rt.rsh
  end

let ensure_frames rt need =
  if need > Array.length rt.fs_func then begin
    let cap = max need (2 * Array.length rt.fs_func) in
    let grow old =
      let na = Array.make cap 0 in
      Array.blit old 0 na 0 (Array.length old);
      na
    in
    rt.fs_func <- grow rt.fs_func;
    rt.fs_pc <- grow rt.fs_pc;
    rt.fs_dst <- grow rt.fs_dst;
    rt.fs_base <- grow rt.fs_base;
    rt.fs_prev <- grow rt.fs_prev
  end

(* [as_int] of a general operand (kind 3 reads as 0). *)
let op_int rtag ra rb base ok ov =
  if ok = 1 then begin
    let i = base + ov in
    let t = Char.code (Bytes.unsafe_get rtag i) land 3 in
    if t = 0 then Array.unsafe_get ra i
    else if t = 1 then
      (Array.unsafe_get ra i lsl 20) lor (Array.unsafe_get rb i land 0xfffff)
    else 1
  end
  else if ok = 0 then ov
  else if ok = 2 then 0xDEAD
  else 0

let op_def rtag base ok ov =
  if ok = 1 then Char.code (Bytes.unsafe_get rtag (base + ov)) land 4 <> 0
  else ok = 0

let copy_slot rtag ra rb src dst =
  Bytes.unsafe_set rtag dst (Bytes.unsafe_get rtag src);
  Array.unsafe_set ra dst (Array.unsafe_get ra src);
  Array.unsafe_set rb dst (Array.unsafe_get rb src)

let set_int rtag ra dst n def =
  Bytes.unsafe_set rtag dst (if def then t_int_d else t_int_u);
  Array.unsafe_set ra dst n

let set_ptr rtag ra rb dst o off def =
  Bytes.unsafe_set rtag dst (if def then t_ptr_d else '\001');
  Array.unsafe_set ra dst o;
  Array.unsafe_set rb dst off

(* Copy any operand into an absolute register slot. *)
let copy_op rtag ra rb base ok ov dst =
  if ok = 1 then copy_slot rtag ra rb (base + ov) dst
  else if ok = 0 then set_int rtag ra dst ov true
  else if ok = 2 then set_int rtag ra dst 0xDEAD false
  else set_int rtag ra dst 0 false

(* Dereference the pointer in absolute slot [i]; returns the object (the
   offset is re-read from [rb.(i)] by the caller). Checks and messages
   mirror the interpreter's [deref]. *)
let deref_obj rt rtag ra rb what i : vobj =
  if Char.code (Bytes.unsafe_get rtag i) land 3 <> 1 then
    error "%s: not a pointer" what;
  let oid = Array.unsafe_get ra i in
  if oid < 0 || oid >= rt.nobjs then error "%s: dangling pointer" what;
  let ob = Array.unsafe_get rt.objs oid in
  let off = Array.unsafe_get rb i in
  if off < 0 || off >= ob.ocells then
    error "%s: out-of-bounds access to %s[%d]" what ob.oname off;
  ob

let exec_binop bop a b =
  match bop with
  | 0 -> a + b
  | 1 -> a - b
  | 2 -> a * b
  | 3 -> if b = 0 then 0 else a / b
  | 4 -> if b = 0 then 0 else a mod b
  | 5 -> a land b
  | 6 -> a lor b
  | 7 -> a lxor b
  | 8 ->
    let s = b land 63 in
    a lsl (if s > 62 then 62 else s)
  | 9 ->
    let s = b land 63 in
    a asr (if s > 62 then 62 else s)
  | 10 -> if a < b then 1 else 0
  | 11 -> if a <= b then 1 else 0
  | 12 -> if a > b then 1 else 0
  | 13 -> if a >= b then 1 else 0
  | 14 -> if a = b then 1 else 0
  | _ -> if a <> b then 1 else 0

(* Binop on two slots, with the interpreter's pointer-aware Eq/Ne. *)
let binop_slots rtag ra rb bop i1 i2 =
  let t1 = Char.code (Bytes.unsafe_get rtag i1) land 3 in
  let t2 = Char.code (Bytes.unsafe_get rtag i2) land 3 in
  if t1 = 0 && t2 = 0 then
    exec_binop bop (Array.unsafe_get ra i1) (Array.unsafe_get ra i2)
  else if bop >= 14 && t1 = 1 && t2 = 1 then begin
    let same =
      Array.unsafe_get ra i1 = Array.unsafe_get ra i2
      && Array.unsafe_get rb i1 = Array.unsafe_get rb i2
    in
    if bop = 14 then (if same then 1 else 0) else if same then 0 else 1
  end
  else
    exec_binop bop (op_int rtag ra rb 0 1 i1) (op_int rtag ra rb 0 1 i2)

let sval rsh base sk sv =
  if sk = 1 then Bytes.unsafe_get rsh (base + sv) <> '\000' else sv <> 0

let labels_of_bitmap (bm : Bytes.t) : (Ir.Types.label, unit) Hashtbl.t =
  let h = Hashtbl.create 16 in
  Bytes.iteri (fun i c -> if c <> '\000' then Hashtbl.replace h (i - 2) ()) bm;
  h

(* ------------------------------------------------------------------ *)

let run ?(limits = I.default_limits) (bp : B.prog) : I.outcome =
  let rt =
    {
      prog = bp;
      limits;
      objs = Array.make 64 dummy_obj;
      nobjs = 0;
      sigma_g = Bytes.make (max 1 bp.nglobal_slots) '\001';
      rtag = Bytes.make 1024 '\000';
      ra = Array.make 1024 0;
      rb = Array.make 1024 0;
      rsh = Bytes.make 1024 '\000';
      fs_func = Array.make 64 0;
      fs_pc = Array.make 64 0;
      fs_dst = Array.make 64 0;
      fs_base = Array.make 64 0;
      fs_prev = Array.make 64 0;
      sp = 0;
      cur = bp.main;
      cnt = Counters.create ();
      bexecs = Array.make (max 1 bp.nblocks) 0;
      fexecs = Array.make (Array.length bp.funcs) 0;
      det = Bytes.make (bp.nlabels + 2) '\000';
      gt = Bytes.make (bp.nlabels + 2) '\000';
      outputs_rev = [];
      input_state = 0x9e3779b9;
    }
  in
  (* Globals: C default-initialization (defined), leading init values. *)
  List.iter
    (fun (g : Ir.Types.global) ->
      let cells =
        match g.gsize with
        | Ir.Types.Fields n -> n
        | Ir.Types.Array_of (Ir.Types.Cst n) -> n
        | Ir.Types.Array_of _ -> error "global %s has dynamic size" g.gname
      in
      let id = new_obj rt ~cells ~init:true ~name:g.gname in
      List.iteri
        (fun i n -> if i < cells then rt.objs.(id).ova.(i) <- n)
        g.ginit;
      assert (id = Hashtbl.find bp.global_objid g.gname))
    bp.globals;
  let max_steps = limits.max_steps in
  let max_depth = limits.max_depth in
  let has_sh = bp.has_shadow in
  let funcs = bp.funcs in
  let names = bp.names in
  let name2func = bp.name2func in
  let bexecs = rt.bexecs in
  let main = funcs.(bp.main) in
  ensure_regs rt main.nslots;
  Bytes.fill rt.rtag 0 main.nslots t_int_d;
  Bytes.fill rt.rsh 0 main.nslots '\001';
  rt.sp <- main.nslots;
  rt.fexecs.(bp.main) <- 1;
  (* The dispatch loop. Every hot mutable travels as an argument; handlers
     end with a self-tail-call. Returns (exit_value, steps). *)
  let rec loop c rtag ra rb rsh pc base prev steps fp =
    let op = Array.unsafe_get c pc in
    let steps =
      if op land 256 (* B.step_bit *) <> 0 then begin
        let s = steps + 1 in
        if s > max_steps then exhausted "steps" max_steps;
        s
      end
      else steps
    in
    match op land 0xff with
    | 1 (* CONST dst n *) ->
      set_int rtag ra (base + Array.unsafe_get c (pc + 1))
        (Array.unsafe_get c (pc + 2)) true;
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 2 (* COPY dst ok ov *) ->
      copy_op rtag ra rb base (Array.unsafe_get c (pc + 2))
        (Array.unsafe_get c (pc + 3))
        (base + Array.unsafe_get c (pc + 1));
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 3 (* COPY_S dst src *) ->
      copy_slot rtag ra rb
        (base + Array.unsafe_get c (pc + 2))
        (base + Array.unsafe_get c (pc + 1));
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 4 (* UNOP dst u ok ov *) ->
      let ok = Array.unsafe_get c (pc + 3) and ov = Array.unsafe_get c (pc + 4) in
      let n = op_int rtag ra rb base ok ov in
      let r =
        match Array.unsafe_get c (pc + 2) with
        | 0 -> -n
        | 1 -> lnot n
        | _ -> if n = 0 then 1 else 0
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1)) r
        (op_def rtag base ok ov);
      loop c rtag ra rb rsh (pc + 5) base prev steps fp
    | 5 (* BINOP dst bop ok1 ov1 ok2 ov2 *) ->
      let bop = Array.unsafe_get c (pc + 2) in
      let ok1 = Array.unsafe_get c (pc + 3) and ov1 = Array.unsafe_get c (pc + 4) in
      let ok2 = Array.unsafe_get c (pc + 5) and ov2 = Array.unsafe_get c (pc + 6) in
      let r =
        if ok1 = 1 && ok2 = 1 then
          binop_slots rtag ra rb bop (base + ov1) (base + ov2)
        else
          exec_binop bop
            (op_int rtag ra rb base ok1 ov1)
            (op_int rtag ra rb base ok2 ov2)
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1)) r
        (op_def rtag base ok1 ov1 && op_def rtag base ok2 ov2);
      loop c rtag ra rb rsh (pc + 7) base prev steps fp
    | 6 (* BINOP_SS dst bop s1 s2 *) ->
      let i1 = base + Array.unsafe_get c (pc + 3) in
      let i2 = base + Array.unsafe_get c (pc + 4) in
      let r = binop_slots rtag ra rb (Array.unsafe_get c (pc + 2)) i1 i2 in
      let def =
        Char.code (Bytes.unsafe_get rtag i1)
        land Char.code (Bytes.unsafe_get rtag i2)
        land 4 <> 0
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1)) r def;
      loop c rtag ra rb rsh (pc + 5) base prev steps fp
    | 7 (* BINOP_SC dst bop s1 c2 *) ->
      let i1 = base + Array.unsafe_get c (pc + 3) in
      let t1 = Char.code (Bytes.unsafe_get rtag i1) in
      let a =
        if t1 land 3 = 0 then Array.unsafe_get ra i1
        else op_int rtag ra rb 0 1 i1
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1))
        (exec_binop (Array.unsafe_get c (pc + 2)) a (Array.unsafe_get c (pc + 4)))
        (t1 land 4 <> 0);
      loop c rtag ra rb rsh (pc + 5) base prev steps fp
    | 8 (* CMPBR_SS dst bop s1 s2 lbl srcbid gt pt ge pe *) ->
      let steps = steps + 2 in
      if steps > max_steps then exhausted "steps" max_steps;
      let i1 = base + Array.unsafe_get c (pc + 3) in
      let i2 = base + Array.unsafe_get c (pc + 4) in
      let r = binop_slots rtag ra rb (Array.unsafe_get c (pc + 2)) i1 i2 in
      let def =
        Char.code (Bytes.unsafe_get rtag i1)
        land Char.code (Bytes.unsafe_get rtag i2)
        land 4 <> 0
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1)) r def;
      if not def then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 5) + 2) '\001';
      let o = if r <> 0 then pc + 7 else pc + 9 in
      let g = Array.unsafe_get c o in
      Array.unsafe_set bexecs g (Array.unsafe_get bexecs g + 1);
      loop c rtag ra rb rsh
        (Array.unsafe_get c (o + 1))
        base
        (Array.unsafe_get c (pc + 6))
        steps fp
    | 9 (* CMPBR_SC dst bop s1 c2 lbl srcbid gt pt ge pe *) ->
      let steps = steps + 2 in
      if steps > max_steps then exhausted "steps" max_steps;
      let i1 = base + Array.unsafe_get c (pc + 3) in
      let t1 = Char.code (Bytes.unsafe_get rtag i1) in
      let a =
        if t1 land 3 = 0 then Array.unsafe_get ra i1
        else op_int rtag ra rb 0 1 i1
      in
      let r =
        exec_binop (Array.unsafe_get c (pc + 2)) a (Array.unsafe_get c (pc + 4))
      in
      let def = t1 land 4 <> 0 in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1)) r def;
      if not def then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 5) + 2) '\001';
      let o = if r <> 0 then pc + 7 else pc + 9 in
      let g = Array.unsafe_get c o in
      Array.unsafe_set bexecs g (Array.unsafe_get bexecs g + 1);
      loop c rtag ra rb rsh
        (Array.unsafe_get c (o + 1))
        base
        (Array.unsafe_get c (pc + 6))
        steps fp
    | 10 (* ALLOCF dst ncells init nameidx *) ->
      let cells = Array.unsafe_get c (pc + 2) in
      rt.cnt.alloc_cells <- rt.cnt.alloc_cells + cells;
      let id =
        new_obj rt ~cells
          ~init:(Array.unsafe_get c (pc + 3) <> 0)
          ~name:names.(Array.unsafe_get c (pc + 4))
      in
      set_ptr rtag ra rb (base + Array.unsafe_get c (pc + 1)) id 0 true;
      loop c rtag ra rb rsh (pc + 5) base prev steps fp
    | 11 (* ALLOCA dst ok ov init nameidx *) ->
      let ok = Array.unsafe_get c (pc + 2) and ov = Array.unsafe_get c (pc + 3) in
      if not (op_def rtag base ok ov) then
        error "allocation with undefined size";
      let cells = max 0 (min (op_int rtag ra rb base ok ov) 10_000_000) in
      rt.cnt.alloc_cells <- rt.cnt.alloc_cells + cells;
      let id =
        new_obj rt ~cells
          ~init:(Array.unsafe_get c (pc + 4) <> 0)
          ~name:names.(Array.unsafe_get c (pc + 5))
      in
      set_ptr rtag ra rb (base + Array.unsafe_get c (pc + 1)) id 0 true;
      loop c rtag ra rb rsh (pc + 6) base prev steps fp
    | 12 (* LOAD dst psrc lbl *) ->
      let i = base + Array.unsafe_get c (pc + 2) in
      if Char.code (Bytes.unsafe_get rtag i) land 4 = 0 then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 3) + 2) '\001';
      let ob = deref_obj rt rtag ra rb "load" i in
      let off = Array.unsafe_get rb i in
      let dst = base + Array.unsafe_get c (pc + 1) in
      Bytes.unsafe_set rtag dst (Bytes.unsafe_get ob.otag off);
      Array.unsafe_set ra dst (Array.unsafe_get ob.ova off);
      Array.unsafe_set rb dst (Array.unsafe_get ob.ovb off);
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 13 (* STORE pdst ok ov lbl *) ->
      let i = base + Array.unsafe_get c (pc + 1) in
      if Char.code (Bytes.unsafe_get rtag i) land 4 = 0 then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 4) + 2) '\001';
      let ob = deref_obj rt rtag ra rb "store" i in
      let off = Array.unsafe_get rb i in
      let ok = Array.unsafe_get c (pc + 2) and ov = Array.unsafe_get c (pc + 3) in
      if ok = 1 then begin
        let s = base + ov in
        Bytes.unsafe_set ob.otag off (Bytes.unsafe_get rtag s);
        Array.unsafe_set ob.ova off (Array.unsafe_get ra s);
        Array.unsafe_set ob.ovb off (Array.unsafe_get rb s)
      end
      else begin
        Bytes.unsafe_set ob.otag off (if ok = 0 then t_int_d else t_int_u);
        Array.unsafe_set ob.ova off (if ok = 0 then ov else 0xDEAD)
      end;
      loop c rtag ra rb rsh (pc + 5) base prev steps fp
    | 14 (* FIELD dst src k *) ->
      let i = base + Array.unsafe_get c (pc + 2) in
      let dst = base + Array.unsafe_get c (pc + 1) in
      let t = Char.code (Bytes.unsafe_get rtag i) in
      if t land 3 = 1 then
        set_ptr rtag ra rb dst (Array.unsafe_get ra i)
          (Array.unsafe_get rb i + Array.unsafe_get c (pc + 3))
          (t land 4 <> 0)
      else begin
        copy_slot rtag ra rb i dst;
        Bytes.unsafe_set rtag dst (Char.unsafe_chr (t land 3))
      end;
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 15 (* INDEX dst src ok ov *) ->
      let i = base + Array.unsafe_get c (pc + 2) in
      let dst = base + Array.unsafe_get c (pc + 1) in
      let ok = Array.unsafe_get c (pc + 3) and ov = Array.unsafe_get c (pc + 4) in
      let t = Char.code (Bytes.unsafe_get rtag i) in
      if t land 3 = 1 then
        set_ptr rtag ra rb dst (Array.unsafe_get ra i)
          (Array.unsafe_get rb i + op_int rtag ra rb base ok ov)
          (t land 4 <> 0 && op_def rtag base ok ov)
      else begin
        copy_slot rtag ra rb i dst;
        Bytes.unsafe_set rtag dst (Char.unsafe_chr (t land 3))
      end;
      loop c rtag ra rb rsh (pc + 5) base prev steps fp
    | 16 (* IDXLOAD idst src iok iov dst lbl *) ->
      let steps = steps + 2 in
      if steps > max_steps then exhausted "steps" max_steps;
      let i = base + Array.unsafe_get c (pc + 2) in
      let idst = base + Array.unsafe_get c (pc + 1) in
      let ok = Array.unsafe_get c (pc + 3) and ov = Array.unsafe_get c (pc + 4) in
      let t = Char.code (Bytes.unsafe_get rtag i) in
      if t land 3 = 1 then
        set_ptr rtag ra rb idst (Array.unsafe_get ra i)
          (Array.unsafe_get rb i + op_int rtag ra rb base ok ov)
          (t land 4 <> 0 && op_def rtag base ok ov)
      else begin
        copy_slot rtag ra rb i idst;
        Bytes.unsafe_set rtag idst (Char.unsafe_chr (t land 3))
      end;
      if Char.code (Bytes.unsafe_get rtag idst) land 4 = 0 then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 6) + 2) '\001';
      let ob = deref_obj rt rtag ra rb "load" idst in
      let off = Array.unsafe_get rb idst in
      let dst = base + Array.unsafe_get c (pc + 5) in
      Bytes.unsafe_set rtag dst (Bytes.unsafe_get ob.otag off);
      Array.unsafe_set ra dst (Array.unsafe_get ob.ova off);
      Array.unsafe_set rb dst (Array.unsafe_get ob.ovb off);
      loop c rtag ra rb rsh (pc + 7) base prev steps fp
    | 17 (* IDXSTORE idst src iok iov vok vov lbl *) ->
      let steps = steps + 2 in
      if steps > max_steps then exhausted "steps" max_steps;
      let i = base + Array.unsafe_get c (pc + 2) in
      let idst = base + Array.unsafe_get c (pc + 1) in
      let ok = Array.unsafe_get c (pc + 3) and ov = Array.unsafe_get c (pc + 4) in
      let t = Char.code (Bytes.unsafe_get rtag i) in
      if t land 3 = 1 then
        set_ptr rtag ra rb idst (Array.unsafe_get ra i)
          (Array.unsafe_get rb i + op_int rtag ra rb base ok ov)
          (t land 4 <> 0 && op_def rtag base ok ov)
      else begin
        copy_slot rtag ra rb i idst;
        Bytes.unsafe_set rtag idst (Char.unsafe_chr (t land 3))
      end;
      if Char.code (Bytes.unsafe_get rtag idst) land 4 = 0 then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 7) + 2) '\001';
      let ob = deref_obj rt rtag ra rb "store" idst in
      let off = Array.unsafe_get rb idst in
      let vok = Array.unsafe_get c (pc + 5) and vov = Array.unsafe_get c (pc + 6) in
      if vok = 1 then begin
        let s = base + vov in
        Bytes.unsafe_set ob.otag off (Bytes.unsafe_get rtag s);
        Array.unsafe_set ob.ova off (Array.unsafe_get ra s);
        Array.unsafe_set ob.ovb off (Array.unsafe_get rb s)
      end
      else begin
        Bytes.unsafe_set ob.otag off (if vok = 0 then t_int_d else t_int_u);
        Array.unsafe_set ob.ova off (if vok = 0 then vov else 0xDEAD)
      end;
      loop c rtag ra rb rsh (pc + 8) base prev steps fp
    | 18 (* GLOBALADDR dst objid *) ->
      set_ptr rtag ra rb (base + Array.unsafe_get c (pc + 1))
        (Array.unsafe_get c (pc + 2)) 0 true;
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 19 (* FUNCADDR dst nameidx *) ->
      let dst = base + Array.unsafe_get c (pc + 1) in
      Bytes.unsafe_set rtag dst t_fun_d;
      Array.unsafe_set ra dst (Array.unsafe_get c (pc + 2));
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 20 | 21 (* CALL / CALLIND dst target nargs (ok ov)* *) ->
      let dst = Array.unsafe_get c (pc + 1) in
      let target = Array.unsafe_get c (pc + 2) in
      let nargs = Array.unsafe_get c (pc + 3) in
      let fi =
        if op land 0xff = 20 then begin
          if target >= 0 then target
          else error "call to unknown function %s" names.(-1 - target)
        end
        else begin
          let i = base + target in
          if Char.code (Bytes.unsafe_get rtag i) land 3 = 2 then begin
            let ni = Array.unsafe_get ra i in
            let fi = name2func.(ni) in
            if fi < 0 then error "call to unknown function %s" names.(ni)
            else fi
          end
          else error "indirect call through non-function"
        end
      in
      if fp + 1 > max_depth then exhausted "call depth" max_depth;
      let callee = funcs.(fi) in
      let nb = rt.sp in
      ensure_regs rt (nb + callee.nslots);
      let rtag' = rt.rtag and ra' = rt.ra and rb' = rt.rb and rsh' = rt.rsh in
      Bytes.fill rtag' nb callee.nslots t_int_d;
      Array.fill ra' nb callee.nslots 0;
      if has_sh then Bytes.fill rsh' nb callee.nslots '\001';
      let nparams = Array.length callee.params in
      for i = 0 to nargs - 1 do
        if i < nparams then
          copy_op rtag' ra' rb' base
            (Array.unsafe_get c (pc + 4 + (2 * i)))
            (Array.unsafe_get c (pc + 5 + (2 * i)))
            (nb + Array.unsafe_get callee.params i)
      done;
      ensure_frames rt (fp + 1);
      rt.fs_func.(fp) <- rt.cur;
      rt.fs_pc.(fp) <- pc + 4 + (2 * nargs);
      rt.fs_dst.(fp) <- dst;
      rt.fs_base.(fp) <- base;
      rt.fs_prev.(fp) <- prev;
      rt.fexecs.(fi) <- rt.fexecs.(fi) + 1;
      rt.cur <- fi;
      rt.sp <- nb + callee.nslots;
      loop callee.code rtag' ra' rb' rsh' 0 nb 0 steps (fp + 1)
    | 22 (* OUTPUT ok ov *) ->
      rt.outputs_rev <-
        op_int rtag ra rb base (Array.unsafe_get c (pc + 1))
          (Array.unsafe_get c (pc + 2))
        :: rt.outputs_rev;
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 23 (* INPUT dst *) ->
      rt.input_state <- (rt.input_state * 1103515245) + 12345;
      set_int rtag ra (base + Array.unsafe_get c (pc + 1))
        ((rt.input_state lsr 16) land 0x7fff)
        true;
      loop c rtag ra rb rsh (pc + 2) base prev steps fp
    | 24 (* BR ok ov lbl srcbid gt pt ge pe *) ->
      let ok = Array.unsafe_get c (pc + 1) and ov = Array.unsafe_get c (pc + 2) in
      if not (op_def rtag base ok ov) then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 3) + 2) '\001';
      let o = if op_int rtag ra rb base ok ov <> 0 then pc + 5 else pc + 7 in
      let g = Array.unsafe_get c o in
      Array.unsafe_set bexecs g (Array.unsafe_get bexecs g + 1);
      loop c rtag ra rb rsh
        (Array.unsafe_get c (o + 1))
        base
        (Array.unsafe_get c (pc + 4))
        steps fp
    | 25 (* BR_S s lbl srcbid gt pt ge pe *) ->
      let i = base + Array.unsafe_get c (pc + 1) in
      let t = Char.code (Bytes.unsafe_get rtag i) in
      if t land 4 = 0 then
        Bytes.unsafe_set rt.gt (Array.unsafe_get c (pc + 2) + 2) '\001';
      let v =
        if t land 3 = 0 then Array.unsafe_get ra i
        else op_int rtag ra rb 0 1 i
      in
      let o = if v <> 0 then pc + 4 else pc + 6 in
      let g = Array.unsafe_get c o in
      Array.unsafe_set bexecs g (Array.unsafe_get bexecs g + 1);
      loop c rtag ra rb rsh
        (Array.unsafe_get c (o + 1))
        base
        (Array.unsafe_get c (pc + 3))
        steps fp
    | 26 (* JMP srcbid gidx pc *) ->
      let g = Array.unsafe_get c (pc + 2) in
      Array.unsafe_set bexecs g (Array.unsafe_get bexecs g + 1);
      loop c rtag ra rb rsh
        (Array.unsafe_get c (pc + 3))
        base
        (Array.unsafe_get c (pc + 1))
        steps fp
    | 27 (* RET ok ov *) ->
      let ok = Array.unsafe_get c (pc + 1) and ov = Array.unsafe_get c (pc + 2) in
      if fp = 0 then (op_int rtag ra rb base ok ov, steps)
      else begin
        let f = fp - 1 in
        let rdst = rt.fs_dst.(f) in
        let cbase = rt.fs_base.(f) in
        if rdst >= 0 then copy_op rtag ra rb base ok ov (cbase + rdst);
        rt.sp <- base;
        let cur = rt.fs_func.(f) in
        rt.cur <- cur;
        loop funcs.(cur).code rtag ra rb rsh
          rt.fs_pc.(f) cbase rt.fs_prev.(f) steps f
      end
    | 28 (* STEP *) -> loop c rtag ra rb rsh (pc + 1) base prev steps fp
    | 29 (* BAD_PHI *) -> error "phi in block body (not at head)"
    | 30 (* GOTO pc *) ->
      loop c rtag ra rb rsh (Array.unsafe_get c (pc + 1)) base prev steps fp
    | 31 (* BLOCK gidx *) ->
      let g = Array.unsafe_get c (pc + 1) in
      Array.unsafe_set bexecs g (Array.unsafe_get bexecs g + 1);
      loop c rtag ra rb rsh (pc + 2) base prev steps fp
    | 32 (* SH_MOV dst sk sv *) ->
      let sk = Array.unsafe_get c (pc + 2) and sv = Array.unsafe_get c (pc + 3) in
      Bytes.unsafe_set rsh (base + Array.unsafe_get c (pc + 1))
        (if sk = 1 then Bytes.unsafe_get rsh (base + sv)
         else if sv <> 0 then '\001'
         else '\000');
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 33 (* SH_CONJ2 dst s1 s2 *) ->
      let v =
        Char.code (Bytes.unsafe_get rsh (base + Array.unsafe_get c (pc + 2)))
        land Char.code (Bytes.unsafe_get rsh (base + Array.unsafe_get c (pc + 3)))
      in
      Bytes.unsafe_set rsh (base + Array.unsafe_get c (pc + 1))
        (Char.unsafe_chr v);
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 34 (* SH_CONJ dst n s1..sn *) ->
      let n = Array.unsafe_get c (pc + 2) in
      let all = ref true in
      for i = 0 to n - 1 do
        if Bytes.unsafe_get rsh (base + Array.unsafe_get c (pc + 3 + i)) = '\000'
        then all := false
      done;
      Bytes.unsafe_set rsh (base + Array.unsafe_get c (pc + 1))
        (if !all then '\001' else '\000');
      loop c rtag ra rb rsh (pc + 3 + n) base prev steps fp
    | 35 (* SH_MEM_RD dst pslot *) ->
      let i = base + Array.unsafe_get c (pc + 2) in
      let ob = deref_obj rt rtag ra rb "shadow load" i in
      Bytes.unsafe_set rsh (base + Array.unsafe_get c (pc + 1))
        (Bytes.unsafe_get ob.osh (Array.unsafe_get rb i));
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 36 (* SH_GLOBAL_RD dst gidx *) ->
      Bytes.unsafe_set rsh (base + Array.unsafe_get c (pc + 1))
        (Bytes.unsafe_get rt.sigma_g (Array.unsafe_get c (pc + 2)));
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 37 (* SH_PHI dst narms (pb sk sv)* *) ->
      let narms = Array.unsafe_get c (pc + 2) in
      let v = ref true in
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < narms do
        if Array.unsafe_get c (pc + 3 + (3 * !i)) = prev then begin
          found := true;
          v :=
            sval rsh base
              (Array.unsafe_get c (pc + 4 + (3 * !i)))
              (Array.unsafe_get c (pc + 5 + (3 * !i)))
        end;
        incr i
      done;
      Bytes.unsafe_set rsh (base + Array.unsafe_get c (pc + 1))
        (if !v then '\001' else '\000');
      loop c rtag ra rb rsh (pc + 3 + (3 * narms)) base prev steps fp
    | 38 (* SH_MEM_WR pslot sk sv *) ->
      let i = base + Array.unsafe_get c (pc + 1) in
      let ob = deref_obj rt rtag ra rb "shadow store" i in
      Bytes.unsafe_set ob.osh (Array.unsafe_get rb i)
        (if sval rsh base (Array.unsafe_get c (pc + 2)) (Array.unsafe_get c (pc + 3))
         then '\001' else '\000');
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 39 (* SH_OBJ pslot b *) ->
      let i = base + Array.unsafe_get c (pc + 1) in
      let ob = deref_obj rt rtag ra rb "shadow object init" i in
      rt.cnt.sh_obj_cells <- rt.cnt.sh_obj_cells + ob.ocells;
      Bytes.fill ob.osh 0 ob.ocells
        (if Array.unsafe_get c (pc + 2) <> 0 then '\001' else '\000');
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 40 (* SH_GLOBAL_WR gidx sk sv *) ->
      Bytes.unsafe_set rt.sigma_g (Array.unsafe_get c (pc + 1))
        (if sval rsh base (Array.unsafe_get c (pc + 2)) (Array.unsafe_get c (pc + 3))
         then '\001' else '\000');
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 41 (* CHECK slot lbl *) ->
      let slot = Array.unsafe_get c (pc + 1) in
      if slot < 0 || Bytes.unsafe_get rsh (base + slot) = '\000' then
        Bytes.unsafe_set rt.det (Array.unsafe_get c (pc + 2) + 2) '\001';
      loop c rtag ra rb rsh (pc + 3) base prev steps fp
    | 42 (* ADD_SS dst s1 s2 *) ->
      let i1 = base + Array.unsafe_get c (pc + 2) in
      let i2 = base + Array.unsafe_get c (pc + 3) in
      let t1 = Char.code (Bytes.unsafe_get rtag i1) in
      let t2 = Char.code (Bytes.unsafe_get rtag i2) in
      let r =
        if (t1 lor t2) land 3 = 0 then
          Array.unsafe_get ra i1 + Array.unsafe_get ra i2
        else binop_slots rtag ra rb 0 i1 i2
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1)) r
        (t1 land t2 land 4 <> 0);
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | 43 (* ADD_SC dst s1 c2 *) ->
      let i1 = base + Array.unsafe_get c (pc + 2) in
      let t1 = Char.code (Bytes.unsafe_get rtag i1) in
      let a =
        if t1 land 3 = 0 then Array.unsafe_get ra i1
        else op_int rtag ra rb 0 1 i1
      in
      set_int rtag ra (base + Array.unsafe_get c (pc + 1))
        (a + Array.unsafe_get c (pc + 3))
        (t1 land 4 <> 0);
      loop c rtag ra rb rsh (pc + 4) base prev steps fp
    | bad -> error "vm: invalid opcode %d in %s at %d" bad funcs.(rt.cur).fname pc
  in
  let exit_value, steps =
    loop main.code rt.rtag rt.ra rt.rb rt.rsh 0 0 0 0 0
  in
  (* Reconstruct the cost-model counters from block/function execution
     counts; the two cell accumulators are already in [rt.cnt]. *)
  let cnt = rt.cnt in
  let deltas = bp.deltas in
  for g = 0 to bp.nblocks - 1 do
    let e = rt.bexecs.(g) in
    if e > 0 then begin
      let o = B.ndelta * g in
      cnt.alu <- cnt.alu + (e * deltas.(o + B.d_alu));
      cnt.mem <- cnt.mem + (e * deltas.(o + B.d_mem));
      cnt.branch <- cnt.branch + (e * deltas.(o + B.d_branch));
      cnt.call <- cnt.call + (e * deltas.(o + B.d_call));
      cnt.alloc <- cnt.alloc + (e * deltas.(o + B.d_alloc));
      cnt.io <- cnt.io + (e * deltas.(o + B.d_io));
      cnt.sh_reg <- cnt.sh_reg + (e * deltas.(o + B.d_sh_reg));
      cnt.sh_reg_reads <- cnt.sh_reg_reads + (e * deltas.(o + B.d_sh_reg_reads));
      cnt.sh_mem <- cnt.sh_mem + (e * deltas.(o + B.d_sh_mem));
      cnt.sh_obj <- cnt.sh_obj + (e * deltas.(o + B.d_sh_obj));
      cnt.sh_check <- cnt.sh_check + (e * deltas.(o + B.d_sh_check))
    end
  done;
  Array.iteri
    (fun fi e ->
      if e > 0 then begin
        let d = funcs.(fi).entry_delta in
        cnt.sh_reg <- cnt.sh_reg + (e * d.(B.d_sh_reg));
        cnt.sh_reg_reads <- cnt.sh_reg_reads + (e * d.(B.d_sh_reg_reads));
        cnt.sh_mem <- cnt.sh_mem + (e * d.(B.d_sh_mem));
        cnt.sh_obj <- cnt.sh_obj + (e * d.(B.d_sh_obj));
        cnt.sh_check <- cnt.sh_check + (e * d.(B.d_sh_check))
      end)
    rt.fexecs;
  {
    I.outputs = List.rev rt.outputs_rev;
    exit_value;
    counters = cnt;
    detections = labels_of_bitmap rt.det;
    gt_uses = labels_of_bitmap rt.gt;
    steps;
  }
