(* Program-level operations: variable/label allocation and lookups. *)

open Types

type t = Types.t

let dummy_varinfo = { vname = "!dummy"; vowner = ""; vbase = -1; vver = 0 }

let create () =
  {
    funcs = [];
    globals = [];
    vars = Vec.create ~dummy:dummy_varinfo;
    next_label = 0;
    func_tbl = Hashtbl.create 17;
  }

let fresh_label p =
  let l = p.next_label in
  p.next_label <- l + 1;
  l

let fresh_var p ~name ~owner =
  let id = Vec.push p.vars dummy_varinfo in
  Vec.set p.vars id { vname = name; vowner = owner; vbase = id; vver = 0 };
  id

(** [fresh_version p v ~ver] creates a new SSA version of [v]'s base. *)
let fresh_version p v ~ver =
  let vi = Vec.get p.vars v in
  let id = Vec.push p.vars dummy_varinfo in
  Vec.set p.vars id { vi with vbase = vi.vbase; vver = ver };
  id

let varinfo p v = Vec.get p.vars v

let var_name p v =
  let vi = Vec.get p.vars v in
  if vi.vver = 0 then vi.vname else Printf.sprintf "%s.%d" vi.vname vi.vver

let nvars p = Vec.length p.vars

let add_func p f =
  p.funcs <- p.funcs @ [ (f.fname, f) ];
  Hashtbl.replace p.func_tbl f.fname f

(** Replace a function in place after a transforming pass. *)
let update_func p f =
  p.funcs <- List.map (fun (n, g) -> if n = f.fname then (n, f) else (n, g)) p.funcs;
  Hashtbl.replace p.func_tbl f.fname f

let find_func p name = Hashtbl.find_opt p.func_tbl name

let get_func p name =
  match find_func p name with
  | Some f -> f
  | None -> Diag.error Diag.Ir "Prog.get_func: unknown function %s" name

let iter_funcs f p = List.iter (fun (_, fn) -> f fn) p.funcs

let fold_funcs f acc p = List.fold_left (fun acc (_, fn) -> f acc fn) acc p.funcs

let add_global p g = p.globals <- p.globals @ [ g ]

let find_global p name = List.find_opt (fun g -> g.gname = name) p.globals

(** Total number of instruction/terminator labels allocated so far; plans and
    side tables are arrays indexed by label. *)
let nlabels p = p.next_label

let iter_instrs f p =
  iter_funcs
    (fun fn ->
      Array.iter (fun b -> List.iter (fun i -> f fn b i) b.instrs) fn.blocks)
    p

let iter_terms f p =
  iter_funcs (fun fn -> Array.iter (fun b -> f fn b b.term) fn.blocks) p

(** Number of IR statements (instructions + terminators), the paper's proxy
    for program size. *)
let size p =
  let n = ref 0 in
  iter_instrs (fun _ _ _ -> incr n) p;
  iter_terms (fun _ _ _ -> incr n) p;
  !n
