(** Well-formedness checks for IR programs. *)

(** Raised when a check fails — an alias for [Diag.Error] (phase [Diag.Ir])
    kept under the historical name. *)
exception Ill_formed of Diag.t

(** Structural invariants: a [main] exists, block ids are dense, branch
    targets exist, calls match arity, used variables exist. *)
val check : Prog.t -> unit

(** [check] plus the single-assignment discipline: unique definitions, phi
    arms matching predecessors, every use locally defined. Valid after
    mem2reg and after every optimization pass. *)
val check_ssa : Prog.t -> unit
