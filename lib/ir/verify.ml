(* Well-formedness checks. [check] validates structural invariants; [check_ssa]
   additionally validates the single-assignment discipline once mem2reg has
   run. Raises [Ill_formed] with a diagnostic on violation. *)

open Types

(* Violations raise [Diag.Error] with phase [Diag.Ir]; [Ill_formed] is kept
   as an alias so callers can keep matching on the historical name. *)
exception Ill_formed = Diag.Error

let fail fmt = Diag.error Diag.Ir fmt

let check_func (p : Prog.t) (f : func) =
  let n = Array.length f.blocks in
  if n = 0 then fail "%s: no blocks" f.fname;
  Array.iteri
    (fun i b ->
      if b.bid <> i then fail "%s: block id %d at index %d" f.fname b.bid i;
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            fail "%s: b%d jumps to nonexistent b%d" f.fname b.bid s)
        (Instr.term_succs b.term.tkind);
      List.iter
        (fun ins ->
          List.iter
            (fun v ->
              if v < 0 || v >= Prog.nvars p then
                fail "%s: l%d uses unknown variable %d" f.fname ins.lbl v)
            (Instr.uses_of ins.kind))
        b.instrs)
    f.blocks;
  (* Calls must target known functions with matching arity. *)
  Func.iter_instrs
    (fun _ ins ->
      match ins.kind with
      | Call { callee = Direct g; cargs; _ } -> (
        match Prog.find_func p g with
        | None -> fail "%s: call to unknown function %s" f.fname g
        | Some callee ->
          if List.length cargs <> List.length callee.params then
            fail "%s: call to %s with %d args (expected %d)" f.fname g
              (List.length cargs)
              (List.length callee.params))
      | _ -> ())
    f

let check (p : Prog.t) =
  if Prog.find_func p "main" = None then fail "no main function";
  Prog.iter_funcs (check_func p) p

(* SSA checks: unique defs; every phi has one operand per predecessor; every
   use is dominated by its definition. *)

let check_ssa_func (p : Prog.t) (f : func) =
  let preds = Func.preds f in
  let def_block : (var, blockid) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace def_block v 0) f.params;
  Func.iter_instrs
    (fun b ins ->
      match Instr.def_of ins.kind with
      | Some v ->
        if Hashtbl.mem def_block v then
          fail "%s: variable %s defined twice" f.fname (Prog.var_name p v);
        Hashtbl.replace def_block v b.bid
      | None -> ())
    f;
  Func.iter_instrs
    (fun b ins ->
      match ins.kind with
      | Phi (_, ins_list) ->
        let expected = List.sort compare preds.(b.bid) in
        let got = List.sort compare (List.map fst ins_list) in
        if expected <> got then
          fail "%s: phi in b%d has arms %s but preds %s" f.fname b.bid
            (String.concat "," (List.map string_of_int got))
            (String.concat "," (List.map string_of_int expected))
      | _ -> ())
    f;
  (* Dominance of uses: a lightweight check via reverse-postorder dataflow on
     "definitely assigned" sets would duplicate the Dominance module (which
     lives above this library), so we only verify that every used variable has
     some definition in this function or is a parameter/global-owned var. *)
  Func.iter_instrs
    (fun _ ins ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem def_block v) then
            fail "%s: l%d uses %s which has no definition here" f.fname ins.lbl
              (Prog.var_name p v))
        (Instr.uses_of ins.kind))
    f

let check_ssa (p : Prog.t) =
  check p;
  Prog.iter_funcs (check_ssa_func p) p
