(* Imperative construction of IR functions: used by the TinyC lowering, the
   workload generator and unit tests.

   A builder keeps a current block; [add] appends an instruction to it;
   [terminate] seals it. Blocks are created with forward references so
   structured control flow lowers naturally. *)

open Types

type t = {
  prog : Prog.t;
  fname : fname;
  mutable params : var list;
  mutable blocks : block list; (* reverse order of creation *)
  mutable nblocks : int;
  mutable cur : block option;
}

let create prog ~fname = { prog; fname; params = []; blocks = []; nblocks = 0; cur = None }

let prog b = b.prog

let fresh_var b name = Prog.fresh_var b.prog ~name ~owner:b.fname

let mk_param b name =
  let v = fresh_var b name in
  b.params <- b.params @ [ v ];
  v

(* Atomic so builders may run in parallel domains (the bench harness
   compiles independent programs concurrently); the counter only has to
   produce distinct names. *)
let temp_count = Atomic.make 0

let fresh_temp b =
  let n = Atomic.fetch_and_add temp_count 1 + 1 in
  fresh_var b (Printf.sprintf "t%d" n)

(** Create a new, empty block and return its id. It is not current yet. *)
let new_block b : blockid =
  let bid = b.nblocks in
  b.nblocks <- bid + 1;
  let blk =
    {
      bid;
      instrs = [];
      term = { tlbl = -1; tkind = Ret None } (* placeholder until sealed *);
    }
  in
  b.blocks <- blk :: b.blocks;
  bid

let find_block b bid = List.find (fun blk -> blk.bid = bid) b.blocks

(** Make [bid] the block instructions are appended to. *)
let switch_to b bid = b.cur <- Some (find_block b bid)

let current b =
  match b.cur with
  | Some blk -> blk
  | None -> Diag.error Diag.Ir "Builder: no current block"

(** True when the current block has already been sealed by [terminate]. *)
let terminated b = (current b).term.tlbl >= 0

let add b kind =
  let blk = current b in
  assert (blk.term.tlbl < 0);
  let lbl = Prog.fresh_label b.prog in
  blk.instrs <- blk.instrs @ [ { lbl; kind } ];
  lbl

let terminate b tkind =
  let blk = current b in
  assert (blk.term.tlbl < 0);
  blk.term <- { tlbl = Prog.fresh_label b.prog; tkind }

(* Convenience wrappers returning the defined variable. *)

let const b n =
  let x = fresh_temp b in
  ignore (add b (Const (x, n)));
  x

let copy b o =
  let x = fresh_temp b in
  ignore (add b (Copy (x, o)));
  x

let binop b op o1 o2 =
  let x = fresh_temp b in
  ignore (add b (Binop (x, op, o1, o2)));
  x

let unop b op o =
  let x = fresh_temp b in
  ignore (add b (Unop (x, op, o)));
  x

let alloc b ~name ~region ~initialized ~asize =
  let x = fresh_var b ("&" ^ name) in
  ignore (add b (Alloc { adst = x; aname = name; region; initialized; asize }));
  x

let load b y =
  let x = fresh_temp b in
  ignore (add b (Load (x, y)));
  x

let store b x o = ignore (add b (Store (x, o)))

let field_addr b y k =
  let x = fresh_temp b in
  ignore (add b (Field_addr (x, y, k)));
  x

let index_addr b y o =
  let x = fresh_temp b in
  ignore (add b (Index_addr (x, y, o)));
  x

let global_addr b g =
  let x = fresh_temp b in
  ignore (add b (Global_addr (x, g)));
  x

let func_addr b f =
  let x = fresh_temp b in
  ignore (add b (Func_addr (x, f)));
  x

let call b ~dst ~callee ~args = ignore (add b (Call { cdst = dst; callee; cargs = args }))

let call_val b ~callee ~args =
  let x = fresh_temp b in
  call b ~dst:(Some x) ~callee ~args;
  x

(** Seal the function and register it in the program. All blocks must be
    terminated. *)
let finish b : func =
  let blocks = Array.of_list (List.rev b.blocks) in
  Array.iteri
    (fun i blk ->
      assert (blk.bid = i);
      if blk.term.tlbl < 0 then
        Diag.error Diag.Ir "Builder.finish: block b%d of %s not terminated"
          blk.bid b.fname)
    blocks;
  let f = { fname = b.fname; params = b.params; blocks } in
  Prog.add_func b.prog f;
  f
