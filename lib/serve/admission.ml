(* Server-level admission control: shed early, shed loudly.

   Two watermarks guard the pool. Queue depth bounds how many admitted
   requests can be waiting (tail latency: a request that would sit
   behind a long queue is better told "overloaded" in microseconds than
   served in minutes). The in-flight wall-clock budget bounds the total
   deadline mass the server has promised: every admitted request is
   granted a [Diag.Budget] deadline (its own ask, capped by the server
   default), the grant is accounted here, and new work is shed while
   the outstanding grants exceed the watermark. Admission runs
   synchronously on the intake thread — a shed reply never touches the
   pool, which is what makes the "overloaded within the admission
   deadline" property testable. *)

type config = {
  max_queue : int;        (* queued-request watermark *)
  max_inflight_ms : int;  (* total granted-deadline watermark *)
  default_budget_ms : int; (* deadline granted when the request has no ask *)
}

let default_config =
  { max_queue = 32; max_inflight_ms = 120_000; default_budget_ms = 10_000 }

type t = {
  cfg : config;
  inflight_ms : int Atomic.t; (* sum of granted, not-yet-released budgets *)
}

type verdict =
  | Admit of int  (* granted wall-clock budget, ms *)
  | Shed of string

let m_shed = Obs.Metrics.counter "serve.shed"
let g_queue = Obs.Metrics.gauge "serve.queue_depth"
let g_inflight_ms = Obs.Metrics.gauge "serve.inflight_budget_ms"

let create (cfg : config) : t = { cfg; inflight_ms = Atomic.make 0 }

let granted_ms (t : t) (requested : int option) : int =
  match requested with
  | Some ms when ms > 0 -> min ms t.cfg.default_budget_ms
  | Some _ | None -> t.cfg.default_budget_ms

(** Decide a request's fate given the current queue depth. On [Admit g]
    the grant [g] is accounted until {!release}d. *)
let admit (t : t) ~(queue_depth : int) ~(requested_ms : int option) : verdict =
  Obs.Metrics.set g_queue (float_of_int queue_depth);
  if queue_depth >= t.cfg.max_queue then begin
    Obs.Metrics.incr m_shed;
    Shed
      (Printf.sprintf "queue depth %d at watermark %d" queue_depth
         t.cfg.max_queue)
  end
  else begin
    let g = granted_ms t requested_ms in
    let outstanding = Atomic.fetch_and_add t.inflight_ms g in
    if outstanding + g > t.cfg.max_inflight_ms then begin
      ignore (Atomic.fetch_and_add t.inflight_ms (-g));
      Obs.Metrics.incr m_shed;
      Shed
        (Printf.sprintf "in-flight budget %dms at watermark %dms"
           (outstanding + g) t.cfg.max_inflight_ms)
    end
    else begin
      Obs.Metrics.set g_inflight_ms (float_of_int (outstanding + g));
      Admit g
    end
  end

let release (t : t) (granted : int) : unit =
  let now = Atomic.fetch_and_add t.inflight_ms (-granted) - granted in
  Obs.Metrics.set g_inflight_ms (float_of_int (max 0 now))
