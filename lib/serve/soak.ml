(* Soak client: stream generated programs at a running `usherc serve`
   daemon and audit the reply stream against the protocol's delivery
   contract — exactly one reply per request written, no duplicates, shed
   replies carry code 6, and a SIGTERM drain may at worst leave requests
   the server never read unanswered (EOF), never half-answered.

   Programs come from the fuzzing generator (Audit.Gen), so the traffic
   is the same distribution the differential fuzzer audits offline; a
   deterministic slice of requests additionally carries fault injection
   (worker crashes, pipeline faults, worker sleeps) to keep the daemon's
   crash-isolation and retry machinery hot while under load.

   Single-threaded bounded-window design: keep at most [window] requests
   in flight, send the next one each time a reply lands. The client
   never blocks on a full socket buffer with replies unread (the reads
   between sends drain the server side), and the server's own
   backpressure (admission shed) is part of what we're here to measure,
   not something to hide from. *)

type config = {
  socket : string;           (* Unix socket path of the daemon *)
  count : int;               (* requests to send *)
  seed : int;                (* generator campaign seed *)
  size : int;                (* generator size knob *)
  window : int;              (* max requests in flight *)
  budget_ms : int option;    (* per-request budget sent to the server *)
  faults : bool;             (* weave fault-injected requests into the mix *)
  log : string -> unit;
}

let default_config =
  {
    socket = "serve.sock";
    count = 200;
    seed = 1;
    size = 2;
    window = 32;
    budget_ms = None;
    faults = true;
    log = ignore;
  }

type summary = {
  sent : int;
  replied : int;            (* distinct requests that got a reply *)
  dup : int;                (* duplicate replies (contract violation) *)
  unknown : int;            (* replies with an id we never sent *)
  lost : int;               (* sent but unanswered at EOF *)
  eof_early : bool;         (* server closed before all replies landed *)
  by_code : (int * int) list;  (* reply code -> count, sorted *)
  shed : int;               (* code 6 *)
  quarantined : int;        (* code 7 *)
  errors : int;             (* code 1 *)
  server_totals : (string * int) list;  (* daemon lifetime counters, if read *)
  elapsed_s : float;
}

(* ---- request construction ---- *)

let request (cfg : config) (idx : int) : string =
  let src = Audit.Gen.source ~size:cfg.size ~seed:(Audit.Gen.campaign_seed ~seed:cfg.seed idx) () in
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  add "id" (Json.Str (Printf.sprintf "f%d" idx));
  (* mostly run (the full differential surface), some analyze, some
     certificate checks — all through the daemon's normal handlers *)
  let cmd =
    match idx mod 5 with 0 -> "analyze" | 4 -> "check" | _ -> "run"
  in
  add "cmd" (Json.Str cmd);
  add "source" (Json.Str src);
  (match cfg.budget_ms with
  | Some ms -> add "budget_ms" (Json.Num (float_of_int ms))
  | None -> ());
  if cfg.faults then begin
    (* a deterministic slice of the traffic exercises the fault domains:
       crash-the-worker retries, an injected pipeline fault (degrades,
       never crashes), and slow workers that keep the queue non-empty *)
    if idx mod 13 = 5 then add "crash_worker" (Json.Num 1.0);
    if idx mod 17 = 9 then add "inject" (Json.Arr [ Json.Str "resolve=crash" ]);
    if idx mod 23 = 11 then add "sleep_ms" (Json.Num 5.0)
  end;
  Json.to_line (Json.Obj (List.rev !fields))

(* ---- socket plumbing ---- *)

let send_line fd (line : string) : unit =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd payload !off (len - !off)
  done

(* Buffered reader: one NDJSON line per call; None at EOF. *)
type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

let rec read_line (r : reader) : string option =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_string r.buf (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.sub s 0 i)
  | None -> (
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 -> if s = "" then None else (Buffer.clear r.buf; Some s)
    | n ->
      Buffer.add_subbytes r.buf r.chunk 0 n;
      read_line r
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      if s = "" then None else (Buffer.clear r.buf; Some s))

(* ---- the soak run ---- *)

let run (cfg : config) : summary =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let r = reader fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX cfg.socket);
      let t0 = Obs.Clock.now_s () in
      let pending : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let answered : (string, unit) Hashtbl.t = Hashtbl.create 64 in
      let by_code : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let sent = ref 0 and replied = ref 0 and dup = ref 0 and unknown = ref 0 in
      let eof = ref false in
      let server_totals = ref [] in
      let send_next () =
        if !sent < cfg.count then begin
          let line = request cfg !sent in
          Hashtbl.replace pending (Printf.sprintf "f%d" !sent) ();
          incr sent;
          match send_line fd line with
          | () -> ()
          | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            (* server went away mid-burst (drain test); the unread
               requests surface as lost at EOF *)
            eof := true
        end
      in
      let absorb (line : string) : unit =
        match Json.parse line with
        | Error e -> cfg.log (Printf.sprintf "unparseable reply (%s): %s" e line)
        | Ok j ->
          let id =
            Option.value ~default:""
              (Option.bind (Json.member "id" j) Json.str)
          in
          let code =
            Option.value ~default:(-1)
              (Option.bind (Json.member "code" j) Json.int_)
          in
          if Hashtbl.mem pending id then begin
            Hashtbl.remove pending id;
            Hashtbl.replace answered id ();
            incr replied;
            Hashtbl.replace by_code code
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_code code))
          end
          else if Hashtbl.mem answered id then begin
            incr dup;
            cfg.log (Printf.sprintf "DUPLICATE reply for %s" id)
          end
          else if id = "soak-stats" then
            server_totals :=
              (match Option.bind (Json.member "totals" j) (fun t ->
                   match t with
                   | Json.Obj fields ->
                     Some
                       (List.filter_map
                          (fun (k, v) ->
                            Option.map (fun n -> (k, n)) (Json.int_ v))
                          fields)
                   | _ -> None)
               with
              | Some l -> l
              | None -> [])
          else begin
            incr unknown;
            cfg.log (Printf.sprintf "reply for unknown id %S" id)
          end
      in
      (* prime the window, then lockstep send-on-reply *)
      let w = max 1 cfg.window in
      while !sent < min w cfg.count && not !eof do
        send_next ()
      done;
      while (not !eof) && (!sent < cfg.count || Hashtbl.length pending > 0) do
        match read_line r with
        | None -> eof := true
        | Some line ->
          absorb line;
          if !sent < cfg.count then send_next ()
      done;
      (* final bookkeeping probe: daemon lifetime totals *)
      if not !eof then begin
        (match
           send_line fd
             (Json.to_line
                (Json.Obj
                   [ ("id", Json.Str "soak-stats"); ("cmd", Json.Str "stats") ]))
         with
        | () -> (
          match read_line r with
          | Some line -> absorb line
          | None -> ())
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          eof := true)
      end;
      let lost = Hashtbl.length pending in
      let codes =
        Hashtbl.fold (fun c n acc -> (c, n) :: acc) by_code []
        |> List.sort compare
      in
      let code n = Option.value ~default:0 (Hashtbl.find_opt by_code n) in
      {
        sent = !sent;
        replied = !replied;
        dup = !dup;
        unknown = !unknown;
        lost;
        eof_early = !eof && lost > 0;
        by_code = codes;
        shed = code 6;
        quarantined = code 7;
        errors = code 1;
        server_totals = !server_totals;
        elapsed_s = Obs.Clock.now_s () -. t0;
      })

let summary_to_string (s : summary) : string =
  Printf.sprintf
    "soak: sent %d replied %d lost %d dup %d unknown %d shed %d quarantined %d \
     errors %d%s in %.2fs codes [%s]"
    s.sent s.replied s.lost s.dup s.unknown s.shed s.quarantined s.errors
    (if s.eof_early then " (EOF before all replies: server drained)" else "")
    s.elapsed_s
    (String.concat " "
       (List.map (fun (c, n) -> Printf.sprintf "%d:%d" c n) s.by_code))

(** CLI verdict: 0 = contract held and every request was answered; 2 =
    contract held but the server drained mid-burst (unanswered requests
    at EOF — expected under a SIGTERM test); 1 = a lost or duplicated
    reply with the connection still up, i.e. a real protocol violation. *)
let exit_code (s : summary) : int =
  if s.dup > 0 || s.unknown > 0 then 1
  else if s.lost > 0 then if s.eof_early then 2 else 1
  else 0
