(* The subcommand bodies shared by the CLI and the daemon.

   `usherc analyze/run/check/bench` and the corresponding serve requests
   MUST produce byte-identical text — the serve-smoke CI job diffs a
   served reply against a one-shot run. The only way to keep that true
   under refactoring is to have exactly one implementation: each handler
   renders into a [Buffer.t] and returns the exit code; the CLI prints
   the buffer to stdout and exits with the code, the daemon embeds the
   buffer in a JSON reply and maps the code to a reply status.

   Handlers never touch stdout/stderr themselves: inside the daemon they
   run on pool worker domains, where direct printing would interleave
   across requests. *)

let bpf = Printf.bprintf

(* Per-checker certificate summaries (--verify). *)
let print_verify_reports (b : Buffer.t) (reports : Verify.Report.t list) =
  List.iter
    (fun r -> bpf b "verify: %s\n" (Verify.Report.summary_line r))
    reports

(* Report what the resilience ladder did, if anything. *)
let print_degradation (b : Buffer.t) (a : Usher.Pipeline.analysis)
    (front_events : Usher.Degrade.event list) =
  print_verify_reports b a.verify_reports;
  List.iter
    (fun e -> bpf b "%s\n" (Usher.Degrade.to_string e))
    (front_events @ !(a.events));
  if a.degraded_all then
    bpf b "analysis degraded: every variant uses full (MSan) instrumentation\n"
  else begin
    match Usher.Pipeline.distrusted_functions a with
    | [] -> ()
    | fns ->
      bpf b "degraded functions (full instrumentation): %s\n"
        (String.concat ", " fns)
  end

(* ---- analyze ---- *)

(** [on_analysis] runs between planning and the stats report — the CLI
    hooks its --dump printing there (dumps precede the stats lines). *)
let analyze ?(on_analysis = fun _ _ _ -> ())
    ~(knobs : Usher.Config.knobs) ~(level : Optim.Pipeline.level)
    ~(variant : Usher.Config.variant) (b : Buffer.t) (src : string) : int =
  let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
  let a = Usher.Pipeline.analyze ~knobs prog in
  let plan, guided = Usher.Pipeline.plan_for a variant in
  let stats = Instr.Item.stats_of plan in
  let t1 = Usher.Analysis_stats.compute ~src a in
  on_analysis prog a plan;
  bpf b "variant: %s\n" (Usher.Config.variant_name variant);
  bpf b "statements: %d   Var_TL: %d   Var_AT: %d stack / %d heap / %d global\n"
    (Ir.Prog.size prog) t1.var_tl t1.var_at_stack t1.var_at_heap
    t1.var_at_global;
  bpf b
    "VFG nodes: %d (%.0f%% need tracking)   stores: %.0f%% strong, %.0f%% weak-singleton\n"
    t1.vfg_nodes t1.pct_reaching t1.pct_strong t1.pct_weak_singleton;
  bpf b "static shadow propagations: %d   checks: %d   items: %d\n"
    stats.propagations stats.checks stats.total_items;
  bpf b
    "pointer solver: %d iterations, %d cycles collapsed, %d copy edges deduped\n"
    t1.pa_solve_iterations t1.pa_sccs_collapsed t1.pa_edges_deduped;
  bpf b
    "resolution: %d states, %d VFG SCCs collapsed (condensation ratio %.3f)\n"
    t1.resolve_states t1.resolve_condensed_sccs t1.condensation_ratio;
  (match guided with
  | Some g ->
    bpf b "guided traversal reached %d nodes; Opt I simplified %d closures\n"
      g.needed_nodes g.opt1_simplified
  | None -> ());
  bpf b "Opt II redirected %d nodes\n" a.opt2.redirected;
  print_degradation b a front_events;
  0

(* ---- run ---- *)

let run ~(knobs : Usher.Config.knobs) ~(level : Optim.Pipeline.level)
    ~(variant : Usher.Config.variant) ~(engine : Vm.Engine.t) (b : Buffer.t)
    (src : string) : int =
  let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
  let a = Usher.Pipeline.analyze ~knobs prog in
  let plan, _ = Usher.Pipeline.plan_for a variant in
  print_degradation b a front_events;
  let native = Vm.Engine.run_native engine prog in
  let o = Vm.Engine.run_plan engine prog plan in
  List.iter (fun v -> bpf b "output: %d\n" v) o.outputs;
  bpf b "exit: %d\n" o.exit_value;
  List.iter
    (fun l -> bpf b "WARNING: use of undefined value at statement l%d\n" l)
    (Runtime.Interp.detection_labels o);
  bpf b "slowdown vs native: %.1f%%  (%d shadow ops over %d base ops)\n"
    (Runtime.Costmodel.slowdown_pct ~native:native.counters
       ~instrumented:o.counters ())
    (Runtime.Counters.shadow_ops o.counters)
    (Runtime.Counters.base_ops o.counters);
  (* Exit code: any ground-truth undefined use (from the native run) the
     instrumented run fails to cover is a soundness divergence. *)
  let escaped =
    List.filter
      (fun l -> not (Usher.Experiment.covered prog o.detections l))
      (Runtime.Interp.gt_use_labels native)
  in
  List.iter
    (fun l ->
      bpf b
        "SOUNDNESS: undefined use at statement l%d escaped %s instrumentation\n"
        l (Usher.Config.variant_name variant))
    escaped;
  if escaped <> [] then 4
  else if Hashtbl.length o.detections > 0 then 3
  else 0

(* ---- check ---- *)

let check ~(knobs : Usher.Config.knobs) ~(level : Optim.Pipeline.level)
    ~(incident_dir : string) (b : Buffer.t) (src : string) : int =
  let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
  let a = Usher.Pipeline.analyze ~knobs prog in
  print_degradation b a front_events;
  if a.degraded_all then begin
    (* Rung 4 left no static results in use — there is nothing to
       certify, and full instrumentation is sound by construction. *)
    bpf b
      "check: analysis degraded to full instrumentation; no static \
       certificates in use\n";
    0
  end
  else begin
    let skip fn = Hashtbl.mem a.distrusted fn in
    let forced = Hashtbl.length a.distrusted > 0 in
    (* A Γ that fell back to all-⊥ certifies nothing; checking it against
       F-reachability would flag its (sound) over-approximation.
       Info-severity resolve events are exempt: the summary engine's soft
       degradations (per-SCC fallback, corrupt cache entry) re-resolve
       exactly, so that Γ still certifies. *)
    let resolve_degraded =
      List.exists
        (fun (e : Usher.Degrade.event) ->
          e.phase = Diag.Resolve && e.diag.Diag.severity <> Diag.Info)
        !(a.events)
    in
    let gi suffix bld gamma =
      {
        Verify.Run.gi_suffix = suffix;
        gi_build = bld;
        gi_gamma = (if resolve_degraded then None else Some gamma);
        gi_allow_f_pins = forced;
      }
    in
    let budget = Usher.Budget.of_knobs knobs in
    let reports =
      Verify.Run.check_all ?budget ~skip
        ~context_sensitive:knobs.Usher.Config.context_sensitive prog a.pa a.cg
        a.mr a.mssa
        [ gi "" a.vfg a.gamma; gi "-tl" a.vfg_tl a.gamma_tl ]
    in
    print_verify_reports b reports;
    let print_violation (v : Verify.Report.violation) =
      bpf b "violation%s: %s\n"
        (match v.Verify.Report.vfunc with
        | Some fn -> " in " ^ fn
        | None -> "")
        (Diag.to_string v.Verify.Report.vdiag)
    in
    List.iter
      (fun r -> List.iter print_violation (Verify.Report.errors r))
      reports;
    if Verify.Run.all_ok reports then begin
      bpf b "check: all certificates verified\n";
      0
    end
    else begin
      let functions =
        List.concat_map
          (fun r ->
            List.filter_map
              (fun (v : Verify.Report.violation) -> v.Verify.Report.vfunc)
              (Verify.Report.errors r))
          reports
        |> List.sort_uniq compare
      in
      let rejected = List.filter (fun r -> not (Verify.Report.ok r)) reports in
      let inc =
        Audit.Incident.make ~kind:Audit.Incident.Static_violation
          ~variant:
            (String.concat "+"
               (List.map (fun (r : Verify.Report.t) -> r.checker) rejected))
          ~seed:0 ~mutation:"" ~functions ~labels:[]
          ~knobs:(Audit.Loop.knobs_summary knobs) ~source:src ()
      in
      let path = Audit.Incident.save ~dir:incident_dir inc in
      bpf b "check: %d certificate violation(s); incident recorded at %s\n"
        (Verify.Run.total_violations reports)
        path;
      5
    end
  end

(* ---- bench ---- *)

(* A deterministic client error, distinct from bare [Not_found] so the
   daemon's crash/retry classifier cannot confuse it with a stray
   [Not_found] escaping the analysis pipeline. *)
exception Unknown_bench of string

let bench ~(knobs : Usher.Config.knobs) ~(level : Optim.Pipeline.level)
    ~(scale : int) ~(engine : Vm.Engine.t) (b : Buffer.t) (name : string) :
    int =
  let p =
    try Workloads.Spec2000.find name
    with Not_found -> raise (Unknown_bench name)
  in
  let src = Workloads.Spec2000.source ~scale p in
  match Usher.Experiment.run ~name ~level ~knobs ~engine src with
  | exception Usher.Experiment.Unsound msg ->
    bpf b "SOUNDNESS: %s\n" msg;
    4
  | e ->
    bpf b "%s at %s (scale %d):\n" name
      (Optim.Pipeline.level_to_string level)
      scale;
    List.iter
      (fun (r : Usher.Experiment.variant_result) ->
        bpf b "  %-12s slowdown %6.1f%%  props %6d  checks %5d  detections %d\n"
          (Usher.Config.variant_name r.variant)
          r.slowdown_pct r.static_stats.propagations r.static_stats.checks
          (List.length r.detections))
      e.results;
    print_degradation b e.analysis [];
    if
      List.exists
        (fun (r : Usher.Experiment.variant_result) -> r.detections <> [])
        e.results
    then 3
    else 0
