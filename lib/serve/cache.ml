(* Content-hashed reply cache.

   Key = MD5 of everything that determines a request's reply: command,
   optimization level, variant, execution engine, the full knob
   fingerprint (budgets, ablations, injected faults, quarantine list)
   and the program source itself. The engine is in the key even though
   the two engines are contractually byte-identical — a cross-engine
   hit would otherwise mask an equivalence bug from the daemon's
   callers. Hashing the source *is* the invalidation: an edited program
   hashes to a new key, and stale entries for the old hash age out of
   the FIFO ring. What's cached is the finished reply (exit code +
   rendered output), which the byte-identity guarantee makes exactly as
   good as re-running the pipeline — and the cached bytes are provably
   identical to a one-shot run because they were produced by one.

   Single-writer discipline: all mutation happens under [mu], and an
   insert never overwrites — the first worker to finish a given key
   wins and every later writer is a no-op. Concurrent workers may both
   *compute* the same key once (a benign duplicated miss), but a reader
   can never observe a half-written entry. The cache is memory-only:
   kill -9 leaves no artifact to corrupt. *)

type entry = { code : int; output : string }

type t = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t; (* insertion order, for FIFO eviction *)
  cap : int;
}

let m_hits = Obs.Metrics.counter "serve.cache_hits"
let m_misses = Obs.Metrics.counter "serve.cache_misses"
let m_evictions = Obs.Metrics.counter "serve.cache_evictions"

let create ~(cap : int) : t =
  {
    mu = Mutex.create ();
    tbl = Hashtbl.create (max 16 cap);
    order = Queue.create ();
    cap = max 0 cap;
  }

let key ~(cmd : string) ~(level : string) ~(variant : string)
    ~(engine : string) ~(knobs_fp : string) ~(src : string) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ cmd; level; variant; engine; knobs_fp; src ]))

let find (t : t) (k : string) : entry option =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some e ->
        Obs.Metrics.incr m_hits;
        Some e
      | None ->
        Obs.Metrics.incr m_misses;
        None)

let store (t : t) (k : string) (e : entry) : unit =
  if t.cap > 0 then
    Mutex.protect t.mu (fun () ->
        if not (Hashtbl.mem t.tbl k) then begin
          while Queue.length t.order >= t.cap do
            let old = Queue.pop t.order in
            Hashtbl.remove t.tbl old;
            Obs.Metrics.incr m_evictions
          done;
          Hashtbl.replace t.tbl k e;
          Queue.push k t.order
        end)

let size (t : t) : int = Mutex.protect t.mu (fun () -> Hashtbl.length t.tbl)
