(* The analyze-as-a-service daemon.

   One server = one intake loop (stdin or a Unix socket) feeding a
   work-stealing pool of worker domains ([Usher.Pool]). Each request is
   its own fault domain:

   - its granted [Diag.Budget] deadline is written into the knobs, so an
     over-budget program degrades *inside its own request* through the
     existing resilience ladder instead of hanging a worker;
   - an exception escaping a handler is retried with exponential backoff
     ([config.retries] times) and then quarantined: a [Worker_crash]
     incident is filed through the audit machinery and the client gets a
     structured [quarantined] reply — the server never dies;
   - structured failures ([Diag.Error], interpreter traps, unknown
     benchmarks) are deterministic, so they skip the retry loop and
     come back as [error] immediately.

   Backpressure is synchronous: [Admission.admit] runs on the intake
   thread, so a shed request turns into an [overloaded] reply without
   ever touching the pool. Graceful drain ([drain], wired to SIGTERM by
   the CLI) stops intake, gives in-flight work [config.drain_ms] to
   finish, sheds whatever is still queued (workers cannot be killed —
   in-flight requests are bounded by their own granted deadlines), and
   joins the pool. *)

type config = {
  jobs : int;                 (* worker domains *)
  admission : Admission.config;
  retries : int;              (* transient-crash retries before quarantine *)
  retry_backoff_ms : int;     (* base backoff; doubles per attempt *)
  cache_cap : int;            (* reply-cache entries; 0 disables *)
  incident_dir : string;      (* quarantine/incident artifacts *)
  drain_ms : int;             (* grace for in-flight work on drain *)
  knobs : Usher.Config.knobs; (* server defaults; request fields override *)
}

let default_config =
  {
    jobs = 4;
    admission = Admission.default_config;
    retries = 2;
    retry_backoff_ms = 10;
    cache_cap = 256;
    incident_dir = "_incidents";
    drain_ms = 5_000;
    knobs = Usher.Config.default_knobs;
  }

type t = {
  cfg : config;
  pool : Usher.Pool.t;
  adm : Admission.t;
  cache : Cache.t;
  out_mu : Mutex.t;          (* one reply line at a time, never torn *)
  draining : bool Atomic.t;  (* set: intake refuses new requests *)
  shed_queued : bool Atomic.t; (* set: queued tasks shed on entry *)
}

let m_requests = Obs.Metrics.counter "serve.requests"
let m_replies = Obs.Metrics.counter "serve.replies"
let m_retries = Obs.Metrics.counter "serve.retries"
let m_quarantined = Obs.Metrics.counter "serve.quarantined"
let m_errors = Obs.Metrics.counter "serve.errors"
let h_latency = Obs.Metrics.histogram "serve.request_us"

(* Test hook: [crash_worker N] requests raise this on their first N
   attempts, exercising retry and quarantine deterministically. *)
exception Worker_killed of int

(* kill -9 can strand an atomic-write temp file; they are never loaded
   (the loader requires the final name) but sweeping them on startup
   keeps the artifact directory clean. *)
let sweep_stale_tmp (dir : string) : unit =
  let is_tmp f =
    let inf = ".tmp." in
    let n = String.length f and m = String.length inf in
    let rec at i = i + m <= n && (String.sub f i m = inf || at (i + 1)) in
    at 0
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun f ->
        if is_tmp f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries

let create (cfg : config) : t =
  sweep_stale_tmp cfg.incident_dir;
  {
    cfg;
    pool = Usher.Pool.create ~name:"serve" ~jobs:cfg.jobs ();
    adm = Admission.create cfg.admission;
    cache = Cache.create ~cap:cfg.cache_cap;
    out_mu = Mutex.create ();
    draining = Atomic.make false;
    shed_queued = Atomic.make false;
  }

let send (t : t) ~(out : string -> unit) (r : Protocol.reply) : unit =
  Obs.Metrics.incr m_replies;
  Mutex.protect t.out_mu (fun () -> out (Protocol.reply_to_line r))

(* Everything that can change a reply, for the cache key. The summary
   from the audit loop covers the ablation switches; the rest is the
   budget/fuel envelope and injected faults. *)
let knobs_fp (k : Usher.Config.knobs) : string =
  let opt = function Some v -> string_of_int v | None -> "-" in
  Printf.sprintf "%s budget=%s fuel=%s cap=%s rfuel=%s verify=%b inject=[%s]"
    (Audit.Loop.knobs_summary k)
    (opt k.Usher.Config.budget_ms)
    (opt k.solver_fuel) (opt k.vfg_node_cap) (opt k.resolve_fuel) k.verify
    (String.concat ";" (List.map Usher.Fault.to_string k.inject))

let knobs_for (cfg : config) (req : Protocol.request) ~(granted_ms : int) :
    Usher.Config.knobs =
  let pick o d = match o with Some _ -> o | None -> d in
  let k = cfg.knobs in
  let k =
    {
      k with
      Usher.Config.solver_fuel = pick req.Protocol.solver_fuel k.solver_fuel;
      vfg_node_cap = pick req.vfg_cap k.vfg_node_cap;
      resolve_fuel = pick req.resolve_fuel k.resolve_fuel;
      verify = k.verify || req.verify;
      inject = req.inject;
    }
  in
  Usher.Budget.admit_ms k granted_ms

let run_handler (t : t) (req : Protocol.request)
    ~(knobs : Usher.Config.knobs) : int * string =
  let b = Buffer.create 1024 in
  let code =
    match req.Protocol.cmd with
    | Protocol.Analyze ->
      Handlers.analyze ~knobs ~level:req.level ~variant:req.variant b
        (Option.get req.source)
    | Protocol.Run ->
      Handlers.run ~knobs ~level:req.level ~variant:req.variant b
        (Option.get req.source)
    | Protocol.Check ->
      Handlers.check ~knobs ~level:req.level ~incident_dir:t.cfg.incident_dir
        b (Option.get req.source)
    | Protocol.Bench ->
      Handlers.bench ~knobs ~level:req.level ~scale:req.scale b
        (Option.get req.bench)
    | Protocol.Stats | Protocol.Ping -> assert false (* handled inline *)
  in
  (code, Buffer.contents b)

type outcome =
  | Done of int * string * int    (* exit code, output, retries used *)
  | Failed of string * int        (* deterministic failure: no retry *)
  | Crashed of string * int       (* crashed past the retry cap *)

let attempt_request (t : t) (req : Protocol.request)
    ~(knobs : Usher.Config.knobs) : outcome =
  let rec attempt n =
    match
      if req.Protocol.crash_worker >= n then raise (Worker_killed n);
      run_handler t req ~knobs
    with
    | code, output -> Done (code, output, n - 1)
    | exception Diag.Error d -> Failed (Diag.to_string d, n - 1)
    | exception Runtime.Interp.Runtime_error m ->
      Failed ("runtime: " ^ m, n - 1)
    | exception Runtime.Interp.Resource_exhausted { what; limit } ->
      Failed (Printf.sprintf "runtime: %s limit %d exhausted" what limit, n - 1)
    | exception Not_found ->
      Failed
        (Printf.sprintf "unknown benchmark %S"
           (Option.value ~default:"" req.bench), n - 1)
    | exception e ->
      if n > t.cfg.retries then Crashed (Printexc.to_string e, n - 1)
      else begin
        Obs.Metrics.incr m_retries;
        Unix.sleepf
          (float_of_int (t.cfg.retry_backoff_ms * (1 lsl (n - 1))) /. 1000.);
        attempt (n + 1)
      end
  in
  attempt 1

let quarantine_crash (t : t) (req : Protocol.request)
    ~(knobs : Usher.Config.knobs) ~(msg : string) ~(retries : int) : string =
  Obs.Metrics.incr m_quarantined;
  let inc =
    Audit.Incident.make ~kind:Audit.Incident.Worker_crash
      ~variant:(Protocol.cmd_name req.cmd) ~seed:0 ~mutation:req.id
      ~functions:[] ~labels:[] ~knobs:(knobs_fp knobs)
      ~source:
        (match req.source with
        | Some s -> s
        | None -> Option.value ~default:"" req.bench)
      ()
  in
  let path = Audit.Incident.save ~dir:t.cfg.incident_dir inc in
  Printf.sprintf "worker crashed %d time(s): %s; incident recorded at %s"
    (retries + 1) msg path

(* Runs on a pool worker domain. The request is a fault domain: every
   failure mode below ends in exactly one reply, and nothing escapes to
   the pool (whose own [on_exn] is only a last-resort backstop). *)
let execute (t : t) ~(out : string -> unit) (req : Protocol.request)
    ~(granted_ms : int) : unit =
  let t0 = Obs.Clock.now_ns () in
  let finish (r : Protocol.reply) =
    let elapsed_ms = float_of_int (Obs.Clock.now_ns () - t0) /. 1e6 in
    Obs.Metrics.observe h_latency (int_of_float (elapsed_ms *. 1000.));
    send t ~out { r with Protocol.elapsed_ms }
  in
  Fun.protect
    ~finally:(fun () -> Admission.release t.adm granted_ms)
    (fun () ->
      try
        if Atomic.get t.shed_queued then
          finish
            (Protocol.reply ~id:req.id ~error:"shed during drain"
               Protocol.Soverloaded)
        else
          Obs.Trace.with_span ~cat:"serve"
            ("serve." ^ Protocol.cmd_name req.cmd)
            (fun () ->
              if req.sleep_ms > 0 then
                Unix.sleepf (float_of_int req.sleep_ms /. 1000.);
              let knobs = knobs_for t.cfg req ~granted_ms in
              (* check has an artifact side effect (violation incidents),
                 so a cached reply would not be equivalent; test hooks
                 and fault injection must always execute. *)
              let cacheable =
                req.inject = [] && req.crash_worker = 0
                && req.cmd <> Protocol.Check
              in
              let key =
                if not cacheable then None
                else
                  Some
                    (Cache.key
                       ~cmd:(Protocol.cmd_name req.cmd)
                       ~level:(Optim.Pipeline.level_to_string req.level)
                       ~variant:(Usher.Config.variant_name req.variant)
                       ~knobs_fp:(knobs_fp knobs)
                       ~src:
                         (match req.cmd with
                         | Protocol.Bench ->
                           Printf.sprintf "bench:%s:%d"
                             (Option.value ~default:"" req.bench)
                             req.scale
                         | _ -> Option.value ~default:"" req.source))
              in
              match Option.map (Cache.find t.cache) key |> Option.join with
              | Some e ->
                finish
                  (Protocol.reply ~id:req.id ~output:e.Cache.output
                     ~cached:true
                     (Protocol.status_of_exit_code e.Cache.code))
              | None -> (
                match attempt_request t req ~knobs with
                | Done (code, output, retries) ->
                  Option.iter
                    (fun k -> Cache.store t.cache k { Cache.code; output })
                    key;
                  finish
                    (Protocol.reply ~id:req.id ~output ~retries
                       (Protocol.status_of_exit_code code))
                | Failed (msg, retries) ->
                  Obs.Metrics.incr m_errors;
                  finish
                    (Protocol.reply ~id:req.id ~error:msg ~retries
                       Protocol.Serror)
                | Crashed (msg, retries) ->
                  let error = quarantine_crash t req ~knobs ~msg ~retries in
                  finish
                    (Protocol.reply ~id:req.id ~error ~retries
                       Protocol.Squarantined)))
      with e ->
        (* Reply construction itself failed; a silent drop would breach
           the no-lost-replies contract, so send a bare error. *)
        Obs.Metrics.incr m_errors;
        finish
          (Protocol.reply ~id:req.Protocol.id
             ~error:("internal: " ^ Printexc.to_string e) Protocol.Serror))

(* ---- stats ---- *)

let stats_fields (t : t) : (string * Json.t) list =
  let num i = Json.Num (float_of_int i) in
  let wins =
    List.map
      (fun (name, c) -> (name, num (Obs.Metrics.counter_window c)))
      [
        ("requests", m_requests);
        ("replies", m_replies);
        ("shed", Obs.Metrics.counter "serve.shed");
        ("retries", m_retries);
        ("quarantined", m_quarantined);
        ("errors", m_errors);
        ("cache_hits", Obs.Metrics.counter "serve.cache_hits");
        ("cache_misses", Obs.Metrics.counter "serve.cache_misses");
      ]
  in
  [
    ("jobs", num (Usher.Pool.jobs t.pool));
    ("queue_depth", num (Usher.Pool.queued t.pool));
    ("in_flight", num (Usher.Pool.in_flight t.pool));
    ("cache_size", num (Cache.size t.cache));
    ("window", Json.Obj wins);
  ]

(* ---- intake ---- *)

let handle_line (t : t) ~(out : string -> unit) (line : string) : unit =
  Obs.Metrics.incr m_requests;
  match Protocol.parse_request line with
  | Error e ->
    (* best-effort id so the client can still match the failure *)
    let id =
      match Json.parse line with
      | Ok j -> Option.value ~default:"" (Option.bind (Json.member "id" j) Json.str)
      | Error _ -> ""
    in
    Obs.Metrics.incr m_errors;
    send t ~out (Protocol.reply ~id ~error:e Protocol.Serror)
  | Ok req -> (
    match req.Protocol.cmd with
    | Protocol.Ping ->
      send t ~out
        (Protocol.reply ~id:req.id ~extra:[ ("pong", Json.Bool true) ]
           Protocol.Sok)
    | Protocol.Stats ->
      let extra = stats_fields t in
      Obs.Metrics.reset_window ();
      send t ~out (Protocol.reply ~id:req.id ~extra Protocol.Sok)
    | _ ->
      if Atomic.get t.draining then
        send t ~out
          (Protocol.reply ~id:req.id ~error:"server draining"
             Protocol.Soverloaded)
      else begin
        match
          Admission.admit t.adm
            ~queue_depth:(Usher.Pool.queued t.pool)
            ~requested_ms:req.budget_ms
        with
        | Admission.Shed reason ->
          send t ~out
            (Protocol.reply ~id:req.id ~error:reason Protocol.Soverloaded)
        | Admission.Admit granted_ms ->
          if
            not
              (Usher.Pool.submit t.pool (fun () ->
                   execute t ~out req ~granted_ms))
          then begin
            Admission.release t.adm granted_ms;
            send t ~out
              (Protocol.reply ~id:req.id ~error:"server stopping"
                 Protocol.Soverloaded)
          end
      end)

(* ---- drain ---- *)

let begin_drain (t : t) : unit = Atomic.set t.draining true
let draining (t : t) : bool = Atomic.get t.draining

(** Stop intake, give in-flight work [drain_ms] to finish, shed whatever
    is still queued, then join the pool. In-flight tasks past the grace
    window are waited out — a domain cannot be killed — but each is
    bounded by its own granted deadline. *)
let drain (t : t) : unit =
  begin_drain t;
  let deadline =
    Obs.Clock.now_s () +. (float_of_int t.cfg.drain_ms /. 1000.)
  in
  let busy () = Usher.Pool.queued t.pool + Usher.Pool.in_flight t.pool > 0 in
  while busy () && Obs.Clock.now_s () < deadline do
    Unix.sleepf 0.01
  done;
  if busy () then Atomic.set t.shed_queued true;
  Usher.Pool.shutdown t.pool

(* ---- transports ---- *)

let writer_of_fd (fd : Unix.file_descr) : string -> unit =
 fun line ->
  let bytes = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> () (* client gone; reply dropped *)
  in
  go 0

(* Split complete lines out of [acc], leaving a trailing partial line. *)
let feed_lines (acc : Buffer.t) (handle : string -> unit) : unit =
  let s = Buffer.contents acc in
  Buffer.clear acc;
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       let line = String.sub s !start (i - !start) in
       start := i + 1;
       if String.trim line <> "" then handle line
     done
   with Not_found -> ());
  Buffer.add_substring acc s !start (n - !start)

(** Read NDJSON requests from [fd] until EOF or {!begin_drain}; replies
    go through [out]. The 50ms select timeout bounds how long a SIGTERM
    waits to be noticed. *)
let serve_fd (t : t) ~(out : string -> unit) (fd : Unix.file_descr) : unit =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      match Unix.select [ fd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | 0 -> () (* EOF: caller drains *)
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          feed_lines acc (handle_line t ~out);
          loop ())
    end
  in
  loop ()

(** Accept connections on a Unix socket at [path]; each connection gets
    NDJSON request/reply framing, replies routed back to its own fd.
    Returns on {!begin_drain}. *)
let serve_socket (t : t) (path : string) : unit =
  (try Sys.remove path with Sys_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let conns : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let close_conn fd =
    Hashtbl.remove conns fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let buf = Bytes.create 65536 in
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      match Unix.select fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = srv then begin
              match Unix.accept srv with
              | conn, _ -> Hashtbl.replace conns conn (Buffer.create 1024)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Unix.read fd buf 0 (Bytes.length buf) with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error _ -> close_conn fd
              | 0 -> close_conn fd
              | n ->
                let acc = Hashtbl.find conns fd in
                Buffer.add_subbytes acc buf 0 n;
                feed_lines acc (handle_line t ~out:(writer_of_fd fd)))
          ready;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Hashtbl.iter
        (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
        conns;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    loop
