(* The analyze-as-a-service daemon.

   One server = one intake loop (stdin or a Unix socket) feeding a
   work-stealing pool of worker domains ([Usher.Pool]). Each request is
   its own fault domain:

   - its granted [Diag.Budget] deadline is written into the knobs, so an
     over-budget program degrades *inside its own request* through the
     existing resilience ladder instead of hanging a worker;
   - an exception escaping a handler is retried with exponential backoff
     ([config.retries] times) and then quarantined: a [Worker_crash]
     incident is filed through the audit machinery and the client gets a
     structured [quarantined] reply — the server never dies;
   - structured failures ([Diag.Error], interpreter traps, unknown
     benchmarks) are deterministic, so they skip the retry loop and
     come back as [error] immediately.

   Backpressure is synchronous: [Admission.admit] runs on the intake
   thread, so a shed request turns into an [overloaded] reply without
   ever touching the pool. Graceful drain ([drain], wired to SIGTERM by
   the CLI) stops intake, gives in-flight work [config.drain_ms] to
   finish, sheds whatever is still queued (workers cannot be killed —
   in-flight requests are bounded by their own granted deadlines), and
   joins the pool. In socket mode, connection fds are refcounted
   ([conn]): intake never closes an fd a worker still owes a reply to,
   so drain delivers every admitted reply and a recycled fd number can
   never be written by a stale request. *)

type config = {
  jobs : int;                 (* worker domains *)
  admission : Admission.config;
  retries : int;              (* transient-crash retries before quarantine *)
  retry_backoff_ms : int;     (* base backoff; doubles per attempt *)
  cache_cap : int;            (* reply-cache entries; 0 disables *)
  incident_dir : string;      (* quarantine/incident artifacts *)
  drain_ms : int;             (* grace for in-flight work on drain *)
  knobs : Usher.Config.knobs; (* server defaults; request fields override *)
}

let default_config =
  {
    jobs = 4;
    admission = Admission.default_config;
    retries = 2;
    retry_backoff_ms = 10;
    cache_cap = 256;
    incident_dir = "_incidents";
    drain_ms = 5_000;
    knobs = Usher.Config.default_knobs;
  }

type t = {
  cfg : config;
  pool : Usher.Pool.t;
  adm : Admission.t;
  cache : Cache.t;
  out_mu : Mutex.t;          (* one reply line at a time, never torn *)
  draining : bool Atomic.t;  (* set: intake refuses new requests *)
  shed_queued : bool Atomic.t; (* set: queued tasks shed on entry *)
}

let m_requests = Obs.Metrics.counter "serve.requests"
let m_replies = Obs.Metrics.counter "serve.replies"
let m_retries = Obs.Metrics.counter "serve.retries"
let m_quarantined = Obs.Metrics.counter "serve.quarantined"
let m_errors = Obs.Metrics.counter "serve.errors"
let h_latency = Obs.Metrics.histogram "serve.request_us"

(* Test hook: [crash_worker N] requests raise this on their first N
   attempts, exercising retry and quarantine deterministically. *)
exception Worker_killed of int

(* kill -9 can strand an atomic-write temp file; they are never loaded
   (the loader requires the final name) but sweeping them on startup
   keeps the artifact directory clean. *)
let sweep_stale_tmp (dir : string) : unit =
  let is_tmp f =
    let inf = ".tmp." in
    let n = String.length f and m = String.length inf in
    let rec at i = i + m <= n && (String.sub f i m = inf || at (i + 1)) in
    at 0
  in
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun f ->
        if is_tmp f then
          try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      entries

let create (cfg : config) : t =
  sweep_stale_tmp cfg.incident_dir;
  {
    cfg;
    pool = Usher.Pool.create ~name:"serve" ~jobs:cfg.jobs ();
    adm = Admission.create cfg.admission;
    cache = Cache.create ~cap:cfg.cache_cap;
    out_mu = Mutex.create ();
    draining = Atomic.make false;
    shed_queued = Atomic.make false;
  }

(* Where replies go. [write] delivers one reply line. [retain]/[release]
   bracket a reply that will be written later from a pool worker, so a
   transport with a closable endpoint (the socket transport) can pin the
   endpoint open until every in-flight reply has been written — a worker
   must never write a raw fd that intake already closed, because the
   kernel can recycle the fd number for another client (or any file the
   process opens) and the late reply would land there. Inline replies
   from the intake thread need no bracket: intake holds its own
   reference for the life of the connection. *)
type sink = {
  write : string -> unit;
  retain : unit -> unit;
  release : unit -> unit;
}

let sink_of_writer (write : string -> unit) : sink =
  { write; retain = ignore; release = ignore }

let send (t : t) ~(sink : sink) (r : Protocol.reply) : unit =
  Obs.Metrics.incr m_replies;
  Mutex.protect t.out_mu (fun () -> sink.write (Protocol.reply_to_line r))

(* Everything that can change a reply, for the cache key. The summary
   from the audit loop covers the ablation switches; the rest is the
   budget/fuel envelope and injected faults. *)
let knobs_fp (k : Usher.Config.knobs) : string =
  let opt = function Some v -> string_of_int v | None -> "-" in
  Printf.sprintf
    "%s budget=%s fuel=%s cap=%s rfuel=%s sum=%b scache=%s verify=%b \
     inject=[%s]"
    (Audit.Loop.knobs_summary k)
    (opt k.Usher.Config.budget_ms)
    (opt k.solver_fuel) (opt k.vfg_node_cap) (opt k.resolve_fuel) k.summaries
    (Option.value ~default:"-" k.summary_cache)
    k.verify
    (String.concat ";" (List.map Usher.Fault.to_string k.inject))

let knobs_for (cfg : config) (req : Protocol.request) ~(granted_ms : int) :
    Usher.Config.knobs =
  let pick o d = match o with Some _ -> o | None -> d in
  let k = cfg.knobs in
  let k =
    {
      k with
      Usher.Config.solver_fuel = pick req.Protocol.solver_fuel k.solver_fuel;
      vfg_node_cap = pick req.vfg_cap k.vfg_node_cap;
      resolve_fuel = pick req.resolve_fuel k.resolve_fuel;
      summaries = k.summaries || req.summaries;
      summary_cache = pick req.cache k.summary_cache;
      verify = k.verify || req.verify;
      inject = req.inject;
    }
  in
  Usher.Budget.admit_ms k granted_ms

let run_handler (t : t) (req : Protocol.request)
    ~(knobs : Usher.Config.knobs) : int * string =
  let b = Buffer.create 1024 in
  let code =
    match req.Protocol.cmd with
    | Protocol.Analyze ->
      Handlers.analyze ~knobs ~level:req.level ~variant:req.variant b
        (Option.get req.source)
    | Protocol.Run ->
      Handlers.run ~knobs ~level:req.level ~variant:req.variant
        ~engine:req.engine b
        (Option.get req.source)
    | Protocol.Check ->
      Handlers.check ~knobs ~level:req.level ~incident_dir:t.cfg.incident_dir
        b (Option.get req.source)
    | Protocol.Bench ->
      Handlers.bench ~knobs ~level:req.level ~scale:req.scale
        ~engine:req.engine b
        (Option.get req.bench)
    | Protocol.Stats | Protocol.Ping -> assert false (* handled inline *)
  in
  (code, Buffer.contents b)

type outcome =
  | Done of int * string * int    (* exit code, output, retries used *)
  | Failed of string * int        (* deterministic failure: no retry *)
  | Crashed of string * int       (* crashed past the retry cap *)

let attempt_request (t : t) (req : Protocol.request)
    ~(knobs : Usher.Config.knobs) : outcome =
  let rec attempt n =
    match
      if req.Protocol.crash_worker >= n then raise (Worker_killed n);
      run_handler t req ~knobs
    with
    | code, output -> Done (code, output, n - 1)
    | exception Diag.Error d -> Failed (Diag.to_string d, n - 1)
    | exception Runtime.Interp.Runtime_error m ->
      Failed ("runtime: " ^ m, n - 1)
    | exception Runtime.Interp.Resource_exhausted { what; limit } ->
      Failed (Printf.sprintf "runtime: %s limit %d exhausted" what limit, n - 1)
    | exception Handlers.Unknown_bench name ->
      (* deterministic client error; a stray [Not_found] escaping the
         analysis pipeline falls through to the crash/retry path below *)
      Failed (Printf.sprintf "unknown benchmark %S" name, n - 1)
    | exception e ->
      if n > t.cfg.retries then Crashed (Printexc.to_string e, n - 1)
      else begin
        Obs.Metrics.incr m_retries;
        Unix.sleepf
          (float_of_int (t.cfg.retry_backoff_ms * (1 lsl (n - 1))) /. 1000.);
        attempt (n + 1)
      end
  in
  attempt 1

let quarantine_crash (t : t) (req : Protocol.request)
    ~(knobs : Usher.Config.knobs) ~(msg : string) ~(retries : int) : string =
  Obs.Metrics.incr m_quarantined;
  let inc =
    Audit.Incident.make ~kind:Audit.Incident.Worker_crash
      ~variant:(Protocol.cmd_name req.cmd) ~seed:0 ~mutation:req.id
      ~functions:[] ~labels:[] ~knobs:(knobs_fp knobs)
      ~source:
        (match req.source with
        | Some s -> s
        | None -> Option.value ~default:"" req.bench)
      ()
  in
  let path = Audit.Incident.save ~dir:t.cfg.incident_dir inc in
  Printf.sprintf "worker crashed %d time(s): %s; incident recorded at %s"
    (retries + 1) msg path

(* Runs on a pool worker domain. The request is a fault domain: every
   failure mode below ends in exactly one reply, and nothing escapes to
   the pool (whose own [on_exn] is only a last-resort backstop). *)
let execute (t : t) ~(sink : sink) (req : Protocol.request)
    ~(granted_ms : int) : unit =
  let t0 = Obs.Clock.now_ns () in
  let finish (r : Protocol.reply) =
    let elapsed_ms = float_of_int (Obs.Clock.now_ns () - t0) /. 1e6 in
    Obs.Metrics.observe h_latency (int_of_float (elapsed_ms *. 1000.));
    send t ~sink { r with Protocol.elapsed_ms }
  in
  Fun.protect
    ~finally:(fun () ->
      Admission.release t.adm granted_ms;
      sink.release ())
    (fun () ->
      try
        if Atomic.get t.shed_queued then
          finish
            (Protocol.reply ~id:req.id ~error:"shed during drain"
               Protocol.Soverloaded)
        else
          Obs.Trace.with_span ~cat:"serve"
            ("serve." ^ Protocol.cmd_name req.cmd)
            (fun () ->
              if req.sleep_ms > 0 then
                Unix.sleepf (float_of_int req.sleep_ms /. 1000.);
              let knobs = knobs_for t.cfg req ~granted_ms in
              (* check has an artifact side effect (violation incidents),
                 so a cached reply would not be equivalent; test hooks
                 and fault injection must always execute. *)
              let cacheable =
                req.inject = [] && req.crash_worker = 0
                && req.cmd <> Protocol.Check
              in
              let key =
                if not cacheable then None
                else
                  Some
                    (Cache.key
                       ~cmd:(Protocol.cmd_name req.cmd)
                       ~level:(Optim.Pipeline.level_to_string req.level)
                       ~variant:(Usher.Config.variant_name req.variant)
                       ~engine:(Vm.Engine.name req.engine)
                       ~knobs_fp:(knobs_fp knobs)
                       ~src:
                         (match req.cmd with
                         | Protocol.Bench ->
                           Printf.sprintf "bench:%s:%d"
                             (Option.value ~default:"" req.bench)
                             req.scale
                         | _ -> Option.value ~default:"" req.source))
              in
              match Option.map (Cache.find t.cache) key |> Option.join with
              | Some e ->
                finish
                  (Protocol.reply ~id:req.id ~output:e.Cache.output
                     ~cached:true
                     (Protocol.status_of_exit_code e.Cache.code))
              | None -> (
                match attempt_request t req ~knobs with
                | Done (code, output, retries) ->
                  Option.iter
                    (fun k -> Cache.store t.cache k { Cache.code; output })
                    key;
                  finish
                    (Protocol.reply ~id:req.id ~output ~retries
                       (Protocol.status_of_exit_code code))
                | Failed (msg, retries) ->
                  Obs.Metrics.incr m_errors;
                  finish
                    (Protocol.reply ~id:req.id ~error:msg ~retries
                       Protocol.Serror)
                | Crashed (msg, retries) ->
                  let error = quarantine_crash t req ~knobs ~msg ~retries in
                  finish
                    (Protocol.reply ~id:req.id ~error ~retries
                       Protocol.Squarantined)))
      with e ->
        (* Reply construction itself failed; a silent drop would breach
           the no-lost-replies contract, so send a bare error. *)
        Obs.Metrics.incr m_errors;
        finish
          (Protocol.reply ~id:req.Protocol.id
             ~error:("internal: " ^ Printexc.to_string e) Protocol.Serror))

(* ---- stats ---- *)

(* The window counters are drained atomically (read-and-zero per cell)
   rather than read and then globally reset: an increment from a worker
   domain racing the snapshot lands in the next window instead of being
   lost between the read and the reset. *)
let stats_fields (t : t) : (string * Json.t) list =
  let num i = Json.Num (float_of_int i) in
  let tracked =
    [
      ("requests", m_requests);
      ("replies", m_replies);
      ("shed", Obs.Metrics.counter "serve.shed");
      ("retries", m_retries);
      ("quarantined", m_quarantined);
      ("errors", m_errors);
      ("cache_hits", Obs.Metrics.counter "serve.cache_hits");
      ("cache_misses", Obs.Metrics.counter "serve.cache_misses");
    ]
  in
  let wins =
    List.map
      (fun (name, c) -> (name, num (Obs.Metrics.counter_take_window c)))
      tracked
  in
  (* Lifetime totals beside the resettable window: a soak client audits
     its own books (sent/replied/shed) against these at the end of a
     burst, which a window that every stats probe drains cannot support. *)
  let totals =
    List.map
      (fun (name, c) -> (name, num (Obs.Metrics.counter_value c)))
      tracked
  in
  [
    ("jobs", num (Usher.Pool.jobs t.pool));
    ("queue_depth", num (Usher.Pool.queued t.pool));
    ("in_flight", num (Usher.Pool.in_flight t.pool));
    ("cache_size", num (Cache.size t.cache));
    ("window", Json.Obj wins);
    ("totals", Json.Obj totals);
  ]

(* ---- intake ---- *)

let handle_request (t : t) ~(sink : sink) (line : string) : unit =
  Obs.Metrics.incr m_requests;
  match Protocol.parse_request line with
  | Error e ->
    (* best-effort id so the client can still match the failure *)
    let id =
      match Json.parse line with
      | Ok j -> Option.value ~default:"" (Option.bind (Json.member "id" j) Json.str)
      | Error _ -> ""
    in
    Obs.Metrics.incr m_errors;
    send t ~sink (Protocol.reply ~id ~error:e Protocol.Serror)
  | Ok req -> (
    match req.Protocol.cmd with
    | Protocol.Ping ->
      send t ~sink
        (Protocol.reply ~id:req.id ~extra:[ ("pong", Json.Bool true) ]
           Protocol.Sok)
    | Protocol.Stats ->
      send t ~sink (Protocol.reply ~id:req.id ~extra:(stats_fields t) Protocol.Sok)
    | _ ->
      if Atomic.get t.draining then
        send t ~sink
          (Protocol.reply ~id:req.id ~error:"server draining"
             Protocol.Soverloaded)
      else begin
        match
          Admission.admit t.adm
            ~queue_depth:(Usher.Pool.queued t.pool)
            ~requested_ms:req.budget_ms
        with
        | Admission.Shed reason ->
          send t ~sink
            (Protocol.reply ~id:req.id ~error:reason Protocol.Soverloaded)
        | Admission.Admit granted_ms ->
          sink.retain ();
          if
            not
              (Usher.Pool.submit t.pool (fun () ->
                   execute t ~sink req ~granted_ms))
          then begin
            sink.release ();
            Admission.release t.adm granted_ms;
            send t ~sink
              (Protocol.reply ~id:req.id ~error:"server stopping"
                 Protocol.Soverloaded)
          end
      end)

let handle_line (t : t) ~(out : string -> unit) (line : string) : unit =
  handle_request t ~sink:(sink_of_writer out) line

(* ---- drain ---- *)

let begin_drain (t : t) : unit = Atomic.set t.draining true
let draining (t : t) : bool = Atomic.get t.draining

(** Stop intake, give in-flight work [drain_ms] to finish, shed whatever
    is still queued, then join the pool. In-flight tasks past the grace
    window are waited out — a domain cannot be killed — but each is
    bounded by its own granted deadline. *)
let drain (t : t) : unit =
  begin_drain t;
  let deadline =
    Obs.Clock.now_s () +. (float_of_int t.cfg.drain_ms /. 1000.)
  in
  let busy () = Usher.Pool.queued t.pool + Usher.Pool.in_flight t.pool > 0 in
  while busy () && Obs.Clock.now_s () < deadline do
    Unix.sleepf 0.01
  done;
  if busy () then Atomic.set t.shed_queued true;
  Usher.Pool.shutdown t.pool

(* ---- transports ---- *)

let writer_of_fd (fd : Unix.file_descr) : string -> unit =
 fun line ->
  let bytes = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> () (* client gone; reply dropped *)
  in
  go 0

(* Split complete lines out of [acc], leaving a trailing partial line. *)
let feed_lines (acc : Buffer.t) (handle : string -> unit) : unit =
  let s = Buffer.contents acc in
  Buffer.clear acc;
  let n = String.length s in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       let line = String.sub s !start (i - !start) in
       start := i + 1;
       if String.trim line <> "" then handle line
     done
   with Not_found -> ());
  Buffer.add_substring acc s !start (n - !start)

(** Read NDJSON requests from [fd] until EOF or {!begin_drain}; replies
    go through [out]. The 50ms select timeout bounds how long a SIGTERM
    waits to be noticed. *)
let serve_fd (t : t) ~(out : string -> unit) (fd : Unix.file_descr) : unit =
  let sink = sink_of_writer out in
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  (* A final line without a trailing newline is still a complete request
     once EOF proves no more bytes are coming
     (`printf '{"cmd":"ping"}' | usherc serve` gets its reply). *)
  let flush_partial () =
    let rest = Buffer.contents acc in
    Buffer.clear acc;
    if String.trim rest <> "" then handle_request t ~sink rest
  in
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      match Unix.select [ fd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | 0 -> flush_partial () (* EOF: caller drains *)
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          feed_lines acc (handle_request t ~sink);
          loop ())
    end
  in
  loop ()

(* A socket connection, shared between the intake thread and any pool
   workers still owing it replies. The refcount — 1 for intake plus 1
   per in-flight request — gates [Unix.close]: the fd can only close
   once intake is done with it (client EOF, read error, or server
   drain) AND its last admitted reply has been written. A recycled fd
   number therefore can never receive another request's late reply, and
   drain delivers every admitted reply before the fd goes away. *)
type conn = {
  c_fd : Unix.file_descr;
  c_buf : Buffer.t; (* partial-line accumulator; intake thread only *)
  c_mu : Mutex.t;
  mutable c_refs : int;
}

let conn_release (c : conn) : unit =
  let close_now =
    Mutex.protect c.c_mu (fun () ->
        c.c_refs <- c.c_refs - 1;
        c.c_refs = 0)
  in
  if close_now then try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let sink_of_conn (c : conn) : sink =
  {
    write = writer_of_fd c.c_fd;
    retain =
      (fun () -> Mutex.protect c.c_mu (fun () -> c.c_refs <- c.c_refs + 1));
    release = (fun () -> conn_release c);
  }

(** Accept connections on a Unix socket at [path]; each connection gets
    NDJSON request/reply framing, replies routed back to its own fd.
    Returns on {!begin_drain} with intake stopped; connection fds stay
    open until each connection's last in-flight reply is written — the
    caller runs {!drain} next, which waits those replies out. *)
let serve_socket (t : t) (path : string) : unit =
  (try Sys.remove path with Sys_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 8 in
  (* Intake is done with this connection: flush any unterminated final
     line (EOF proves it is complete), then drop intake's reference.
     The fd itself closes when the last reference does. *)
  let forget_conn ?(flush = false) (c : conn) =
    Hashtbl.remove conns c.c_fd;
    if flush then begin
      let rest = Buffer.contents c.c_buf in
      Buffer.clear c.c_buf;
      if String.trim rest <> "" then
        handle_request t ~sink:(sink_of_conn c) rest
    end;
    conn_release c
  in
  let buf = Bytes.create 65536 in
  let rec loop () =
    if not (Atomic.get t.draining) then begin
      let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
      match Unix.select fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = srv then begin
              match Unix.accept srv with
              | conn_fd, _ ->
                Hashtbl.replace conns conn_fd
                  {
                    c_fd = conn_fd;
                    c_buf = Buffer.create 1024;
                    c_mu = Mutex.create ();
                    c_refs = 1;
                  }
              | exception Unix.Unix_error _ -> ()
            end
            else
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some c -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | exception Unix.Unix_error _ -> forget_conn c
                | 0 -> forget_conn ~flush:true c
                | n ->
                  Buffer.add_subbytes c.c_buf buf 0 n;
                  feed_lines c.c_buf
                    (handle_request t ~sink:(sink_of_conn c))))
          ready;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* Stop accepting and release intake's reference on every live
         connection; fds with in-flight replies stay open until their
         workers release them during the caller's {!drain}. *)
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      Hashtbl.iter (fun _ c -> conn_release c) conns;
      Hashtbl.reset conns)
    loop
