(* The analyze-as-a-service wire protocol: newline-delimited JSON.

   One request object per line in; one reply object per line out, matched
   by "id". Requests never span lines (string newlines are escaped), so a
   torn connection loses at most the line being written — there is no
   framing state to corrupt.

   Request:
     { "id": "r1", "cmd": "analyze" | "run" | "check" | "bench"
                        | "stats" | "ping",
       "source": "<TinyC source>",          -- analyze/run/check
       "bench": "164.gzip", "scale": 10,    -- bench
       "level": "O0+IM" | "O1" | "O2",
       "variant": "msan" | "tl" | "tl+at" | "opt1" | "usher",
       "engine": "interp" | "vm",           -- run/bench execution engine
       "budget_ms": 1000, "solver_fuel": N, "vfg_cap": N,
       "resolve_fuel": N, "verify": true,
       "summaries": true,      -- compositional Γ resolution
       "cache": "DIR",         -- summary cache dir (implies summaries)
       "inject": ["andersen=crash", ...],
       -- test/load hooks:
       "sleep_ms": 100,        -- hold the worker before running
       "crash_worker": 2 }     -- kill the worker on the first N attempts

   Reply:
     { "id": "r1", "status": "...", "code": C, "elapsed_ms": F,
       "cached": B, "retries": N, "output": "<exactly the one-shot
       usherc stdout>", "error": "...", ... }

   Reply codes extend the CLI's exit codes (0 clean / 3 detected /
   4 unsound / 5 certificate violation) with the service-level verdicts:
   6 = overloaded (admission shed or drain shed — retry later),
   7 = quarantined (the request killed its worker past the retry cap;
   an incident artifact was filed), 1 = malformed or failed request. *)

type cmd = Analyze | Run | Check | Bench | Stats | Ping

let cmd_name = function
  | Analyze -> "analyze"
  | Run -> "run"
  | Check -> "check"
  | Bench -> "bench"
  | Stats -> "stats"
  | Ping -> "ping"

type request = {
  id : string;
  cmd : cmd;
  source : string option;  (* analyze / run / check *)
  bench : string option;   (* bench *)
  scale : int;
  level : Optim.Pipeline.level;
  variant : Usher.Config.variant;
  engine : Vm.Engine.t;    (* run / bench *)
  budget_ms : int option;
  solver_fuel : int option;
  vfg_cap : int option;
  resolve_fuel : int option;
  summaries : bool;        (* compositional Γ resolution (lib/summary) *)
  cache : string option;   (* summary artifact directory, shared by all
                              workers via first-writer-wins installs;
                              implies summaries *)
  verify : bool;
  inject : Usher.Config.fault list;
  sleep_ms : int;      (* test/load hook: hold the worker this long *)
  crash_worker : int;  (* test hook: raise on the first N attempts *)
}

type status =
  | Sok            (* clean *)
  | Sdetected      (* undefined use detected (exit 3) *)
  | Sunsound       (* soundness divergence (exit 4) *)
  | Sviolation     (* certificate violation (exit 5) *)
  | Soverloaded    (* shed by admission control or drain *)
  | Squarantined   (* worker died past the retry cap; incident filed *)
  | Serror         (* malformed request or structured failure *)

let status_name = function
  | Sok -> "ok"
  | Sdetected -> "detected"
  | Sunsound -> "unsound"
  | Sviolation -> "violation"
  | Soverloaded -> "overloaded"
  | Squarantined -> "quarantined"
  | Serror -> "error"

let code_of_status = function
  | Sok -> 0
  | Serror -> 1
  | Sdetected -> 3
  | Sunsound -> 4
  | Sviolation -> 5
  | Soverloaded -> 6
  | Squarantined -> 7

(** The handler exit codes map straight onto reply statuses. *)
let status_of_exit_code = function
  | 0 -> Sok
  | 3 -> Sdetected
  | 4 -> Sunsound
  | 5 -> Sviolation
  | _ -> Serror

type reply = {
  rid : string;
  status : status;
  output : string;          (* the one-shot usherc stdout, byte-identical *)
  error : string;           (* human-readable failure/shed reason *)
  elapsed_ms : float;
  cached : bool;
  retries : int;
  extra : (string * Json.t) list;  (* stats payload etc. *)
}

let reply ?(output = "") ?(error = "") ?(elapsed_ms = 0.0) ?(cached = false)
    ?(retries = 0) ?(extra = []) ~id status : reply =
  { rid = id; status; output; error; elapsed_ms; cached; retries; extra }

let reply_to_line (r : reply) : string =
  Json.to_line
    (Json.Obj
       ([
          ("id", Json.Str r.rid);
          ("status", Json.Str (status_name r.status));
          ("code", Json.Num (float_of_int (code_of_status r.status)));
          ("elapsed_ms", Json.Num r.elapsed_ms);
          ("cached", Json.Bool r.cached);
          ("retries", Json.Num (float_of_int r.retries));
        ]
       @ (if r.output = "" then [] else [ ("output", Json.Str r.output) ])
       @ (if r.error = "" then [] else [ ("error", Json.Str r.error) ])
       @ r.extra))

(* ---- request parsing ---- *)

let parse_level = function
  | "O0+IM" | "O0" | "o0" -> Ok Optim.Pipeline.O0_IM
  | "O1" | "o1" -> Ok Optim.Pipeline.O1
  | "O2" | "o2" -> Ok Optim.Pipeline.O2
  | s -> Error ("unknown optimization level " ^ s)

let parse_variant = function
  | "msan" -> Ok Usher.Config.Msan
  | "tl" -> Ok Usher.Config.Usher_tl
  | "tlat" | "tl+at" -> Ok Usher.Config.Usher_tl_at
  | "opt1" | "opti" -> Ok Usher.Config.Usher_opt1
  | "usher" | "full" -> Ok Usher.Config.Usher_full
  | s -> Error ("unknown variant " ^ s)

let request_of_json (j : Json.t) : (request, string) result =
  let ( let* ) = Result.bind in
  let str_field k = Option.bind (Json.member k j) Json.str in
  let int_field k = Option.bind (Json.member k j) Json.int_ in
  let bool_field k d =
    match Option.bind (Json.member k j) Json.bool_ with
    | Some b -> b
    | None -> d
  in
  let id = Option.value ~default:"" (str_field "id") in
  let* cmd =
    match str_field "cmd" with
    | Some "analyze" -> Ok Analyze
    | Some "run" -> Ok Run
    | Some "check" -> Ok Check
    | Some "bench" -> Ok Bench
    | Some "stats" -> Ok Stats
    | Some "ping" -> Ok Ping
    | Some c -> Error ("unknown cmd " ^ c)
    | None -> Error "missing cmd"
  in
  let* level =
    match str_field "level" with
    | None -> Ok Optim.Pipeline.O0_IM
    | Some s -> parse_level s
  in
  let* variant =
    match str_field "variant" with
    | None -> Ok Usher.Config.Usher_full
    | Some s -> parse_variant s
  in
  let* engine =
    match str_field "engine" with
    | None -> Ok Vm.Engine.Interp
    | Some s -> (
      match Vm.Engine.of_string s with
      | Some e -> Ok e
      | None -> Error ("unknown engine " ^ s))
  in
  let* inject =
    match Option.bind (Json.member "inject" j) Json.list_ with
    | None -> Ok []
    | Some specs ->
      List.fold_left
        (fun acc spec ->
          let* acc = acc in
          match Json.str spec with
          | None -> Error "inject entries must be strings"
          | Some s -> (
            match Usher.Fault.of_spec s with
            | Ok f -> Ok (f :: acc)
            | Error e -> Error e))
        (Ok []) specs
      |> Result.map List.rev
  in
  let source = str_field "source" in
  let bench = str_field "bench" in
  let* () =
    match cmd with
    | (Analyze | Run | Check) when source = None ->
      Error ("cmd " ^ cmd_name cmd ^ " requires \"source\"")
    | Bench when bench = None -> Error "cmd bench requires \"bench\""
    | _ -> Ok ()
  in
  Ok
    {
      id;
      cmd;
      source;
      bench;
      scale = Option.value ~default:10 (int_field "scale");
      level;
      variant;
      engine;
      budget_ms = int_field "budget_ms";
      solver_fuel = int_field "solver_fuel";
      vfg_cap = int_field "vfg_cap";
      resolve_fuel = int_field "resolve_fuel";
      summaries =
        bool_field "summaries" false || str_field "cache" <> None;
      cache = str_field "cache";
      verify = bool_field "verify" false;
      inject;
      sleep_ms = Option.value ~default:0 (int_field "sleep_ms");
      crash_worker = Option.value ~default:0 (int_field "crash_worker");
    }

let parse_request (line : string) : (request, string) result =
  match Json.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> request_of_json j
