(* A minimal JSON value type, parser and one-line emitter.

   The container has no JSON library (the bench harness already
   hand-rolls its emitter), and the serve protocol needs both directions:
   parse newline-delimited request objects, emit newline-delimited reply
   objects. The subset is full JSON minus surrogate-pair pedantry:
   \uXXXX escapes decode to UTF-8, numbers parse as OCaml floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- parsing ---- *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let len = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at offset %d, got '%c'" c !pos c'
    | None -> fail "expected '%c' at offset %d, got end of input" c !pos
  in
  let literal word v =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let utf8_of_code b u =
    if u < 0x80 then Buffer.add_char b (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= len then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 > len then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           let u =
             match int_of_string_opt ("0x" ^ hex) with
             | Some u -> u
             | None -> fail "bad \\u escape %S" hex
           in
           utf8_of_code b u
         | c -> fail "bad escape '\\%c'" c);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number %S at offset %d" text start
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' ->
      advance ();
      Str (string_body ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" !pos
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" !pos
        in
        Arr (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> len then fail "trailing bytes at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ---- emitting ---- *)

let escape_into (b : Buffer.t) (s : string) : unit =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit (b : Buffer.t) : t -> unit = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" f)
    else Buffer.add_string b (Printf.sprintf "%.6g" f)
  | Str s -> escape_into b s
  | Arr items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        emit b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_into b k;
        Buffer.add_char b ':';
        emit b v)
      fields;
    Buffer.add_char b '}'

(** Compact single-line rendering (no embedded newlines: string newlines
    are escaped, so the result is always one NDJSON-safe line). *)
let to_line (v : t) : string =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

(* ---- accessors ---- *)

let member (k : string) : t -> t option = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str = function Str s -> Some s | _ -> None

let int_ = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let num = function Num f -> Some f | _ -> None
let list_ = function Arr l -> Some l | _ -> None
