(** Soak client for `usherc serve`: stream fuzz-generated programs as
    concurrent analyze/run/check requests (optionally fault-injected) at
    a daemon over its Unix socket, with a bounded in-flight window, and
    audit the reply stream against the delivery contract — exactly one
    reply per request, no duplicates, EOF only acceptable as the tail of
    a server drain. *)

type config = {
  socket : string;           (** Unix socket path of the daemon *)
  count : int;               (** requests to send *)
  seed : int;                (** generator campaign seed *)
  size : int;                (** generator size knob *)
  window : int;              (** max requests in flight *)
  budget_ms : int option;    (** per-request budget sent to the server *)
  faults : bool;             (** weave fault-injected requests into the mix *)
  log : string -> unit;
}

val default_config : config

type summary = {
  sent : int;
  replied : int;            (** distinct requests that got a reply *)
  dup : int;                (** duplicate replies (contract violation) *)
  unknown : int;            (** replies with an id we never sent *)
  lost : int;               (** sent but unanswered at EOF *)
  eof_early : bool;         (** server closed before all replies landed *)
  by_code : (int * int) list;  (** reply code -> count, sorted *)
  shed : int;               (** code 6 *)
  quarantined : int;        (** code 7 *)
  errors : int;             (** code 1 *)
  server_totals : (string * int) list;
      (** daemon lifetime counters from a final stats probe *)
  elapsed_s : float;
}

val run : config -> summary
val summary_to_string : summary -> string

(** 0 = contract held, all answered; 2 = contract held but the server
    drained mid-burst (EOF with unanswered requests); 1 = lost or
    duplicated reply on a live connection — a protocol violation. *)
val exit_code : summary -> int
