(** Memory SSA construction (§3.1 of the paper, following Chow et al.'s
    mu/chi form).

    Address-taken variables (abstract locations) are annotated onto the IR
    as side tables rather than rewritten into it:

    - every load carries [mu(rho)] for each location its pointer may read;
    - every store carries [rho_m := chi(rho_n)] for each location it may
      write (a chi both uses and defines its location);
    - every allocation carries a chi per location of the new object;
    - every call carries mu(REF(callee)) and chi(MOD(callee)) — the virtual
      input and output parameters;
    - the function entry defines version 1 of every location visible on
      entry; every [ret] records the current version of each output
      location.

    Versions are per (function, location), assigned by the standard SSA
    renaming walk with phi placement at iterated dominance frontiers. The
    runtime never sees memory versions (shadow memory is keyed by address);
    they exist purely to give the VFG its def-use edges. *)

open Ir.Types

type loc = int

type memphi = {
  mloc : loc;
  mutable mver : int;
  mutable margs : (blockid * int) list;
}

type func_ssa = {
  fname : fname;
  tracked : loc list;        (** every location this function touches *)
  entry_locs : loc list;     (** virtual input parameters *)
  out_locs : loc list;       (** virtual output parameters *)
  mu : (label, (loc * int) list) Hashtbl.t;
  chi : (label, (loc * int * int) list) Hashtbl.t;  (** (rho, new, old) *)
  phis : (blockid, memphi list) Hashtbl.t;
  ret_vers : (label, (loc * int) list) Hashtbl.t;
  nversions : (loc, int) Hashtbl.t;
}

type t = {
  prog : Ir.Prog.t;
  pa : Analysis.Andersen.t;
  cg : Analysis.Callgraph.t;
  mr : Analysis.Modref.t;
  funcs : (fname, func_ssa) Hashtbl.t;
}

(** Build Memory SSA for every function. [budget] adds a cooperative
    deadline tick per function; [hook] runs before each function (fault
    injection from the driver); [on_fault] — when given — catches any
    exception raised while processing one function, reports it, and
    substitutes an inert, empty per-function SSA, which is only sound if the
    caller then distrusts that function. *)
val build :
  ?budget:Diag.Budget.t ->
  ?hook:(fname -> unit) ->
  ?on_fault:(fname -> exn -> unit) ->
  Ir.Prog.t -> Analysis.Andersen.t -> Analysis.Callgraph.t ->
  Analysis.Modref.t -> t

(** The inert per-function SSA used by [on_fault] degradation. *)
val empty_func_ssa : fname -> func_ssa

val func_ssa : t -> fname -> func_ssa

(** Annotations of one statement (empty when absent). *)
val mu_at : func_ssa -> label -> (loc * int) list

val chi_at : func_ssa -> label -> (loc * int * int) list
val phis_at : func_ssa -> blockid -> memphi list
val ret_vers_at : func_ssa -> label -> (loc * int) list

(** Fig. 5-style dump, for tests and the CLI. *)
val pp_func : t -> Format.formatter -> func -> unit

val to_string : t -> string
