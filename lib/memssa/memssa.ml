(* Memory SSA construction (the paper's §3.1, following Chow et al.'s mu/chi
   form).

   Address-taken variables (abstract locations) are annotated onto the IR as
   side tables rather than rewritten into it:

   - every load   [x := *y]        carries mu(rho) for each rho in pts(y);
   - every store  [*x := v]        carries rho_m := chi(rho_n) for each rho in pts(x);
   - every alloc                   carries a chi for each location of the object;
   - every call                    carries mu(REF(callee)) and chi(MOD(callee))
                                   — the virtual input and output parameters;
   - the entry    defines version 1 of every location visible on entry;
   - every ret    records the current version of each output location.

   Versions are per (function, location), assigned by the standard SSA
   renaming walk with phi placement at iterated dominance frontiers. The
   runtime never sees memory versions (shadow memory is keyed by address);
   they exist purely to give the VFG its def-use edges. *)

open Ir.Types
module P = Ir.Prog
module Objects = Analysis.Objects
module Bitset = Analysis.Bitset

type loc = int

type memphi = {
  mloc : loc;
  mutable mver : int;
  mutable margs : (blockid * int) list;
}

type func_ssa = {
  fname : fname;
  tracked : loc list;
  entry_locs : loc list;                     (* virtual input parameters *)
  out_locs : loc list;                       (* virtual output parameters *)
  mu : (label, (loc * int) list) Hashtbl.t;  (* (rho, version used) *)
  chi : (label, (loc * int * int) list) Hashtbl.t; (* (rho, new, old) *)
  phis : (blockid, memphi list) Hashtbl.t;
  ret_vers : (label, (loc * int) list) Hashtbl.t;  (* versions at each ret *)
  nversions : (loc, int) Hashtbl.t;          (* highest version per loc *)
}

type t = {
  prog : P.t;
  pa : Analysis.Andersen.t;
  cg : Analysis.Callgraph.t;
  mr : Analysis.Modref.t;
  funcs : (fname, func_ssa) Hashtbl.t;
}

let func_ssa t f = Hashtbl.find t.funcs f

let mu_at fs lbl = Option.value ~default:[] (Hashtbl.find_opt fs.mu lbl)
let chi_at fs lbl = Option.value ~default:[] (Hashtbl.find_opt fs.chi lbl)
let phis_at fs b = Option.value ~default:[] (Hashtbl.find_opt fs.phis b)
let ret_vers_at fs lbl = Option.value ~default:[] (Hashtbl.find_opt fs.ret_vers lbl)

(* ------------------------------------------------------------------ *)

let build_func (pa : Analysis.Andersen.t) (cg : Analysis.Callgraph.t)
    (mr : Analysis.Modref.t) (f : func) : func_ssa =
  let objects = pa.objects in
  let pts v = Analysis.Andersen.pts_var pa v in
  (* 1. Raw mu/chi location sets per label. *)
  let raw_mu : (label, loc list) Hashtbl.t = Hashtbl.create 64 in
  let raw_chi : (label, loc list) Hashtbl.t = Hashtbl.create 64 in
  let tracked = Bitset.create () in
  let track l = ignore (Bitset.add tracked l) in
  Ir.Func.iter_instrs
    (fun _ i ->
      match i.kind with
      | Load (_, y) ->
        let ls = Bitset.elements (pts y) in
        List.iter track ls;
        if ls <> [] then Hashtbl.replace raw_mu i.lbl ls
      | Store (x, _) ->
        let ls = Bitset.elements (pts x) in
        List.iter track ls;
        if ls <> [] then Hashtbl.replace raw_chi i.lbl ls
      | Alloc _ ->
        let ls =
          List.concat_map
            (fun oid ->
              let acc = ref [] in
              Objects.iter_obj_locs objects oid (fun l -> acc := l :: !acc);
              !acc)
            (Objects.objs_of_site objects i.lbl)
        in
        List.iter track ls;
        if ls <> [] then Hashtbl.replace raw_chi i.lbl ls
      | Call _ ->
        let mu = Bitset.elements (Analysis.Modref.call_ref mr i.lbl) in
        let ch = Bitset.elements (Analysis.Modref.call_mod mr i.lbl) in
        List.iter track mu;
        List.iter track ch;
        if mu <> [] then Hashtbl.replace raw_mu i.lbl mu;
        if ch <> [] then Hashtbl.replace raw_chi i.lbl ch
      | Const _ | Copy _ | Unop _ | Binop _ | Field_addr _ | Index_addr _
      | Global_addr _ | Func_addr _ | Phi _ | Output _ | Input _ ->
        ())
    f;
  (* Virtual parameters from the function summary. *)
  let s = Analysis.Modref.summary mr f.fname in
  let recursive = Analysis.Callgraph.is_recursive cg f.fname in
  let own_stack l =
    let o = Objects.loc_obj objects l in
    o.okind = Objects.Obj_stack && o.oowner = f.fname && not recursive
  in
  Bitset.iter track s.mref;
  Bitset.iter track s.mmod;
  let tracked_list = Bitset.elements tracked in
  let entry_locs = List.filter (fun l -> not (own_stack l)) tracked_list in
  let out_locs =
    Bitset.elements s.mmod |> List.filter (fun l -> not (own_stack l))
  in
  (* 2. Phi placement per tracked location. *)
  let dom = Analysis.Dominance.compute f in
  let def_blocks : (loc, blockid list) Hashtbl.t = Hashtbl.create 64 in
  let add_def l b =
    let prev = Option.value ~default:[] (Hashtbl.find_opt def_blocks l) in
    Hashtbl.replace def_blocks l (b :: prev)
  in
  List.iter (fun l -> add_def l 0) tracked_list; (* entry defines version 1 *)
  Ir.Func.iter_instrs
    (fun b i ->
      match Hashtbl.find_opt raw_chi i.lbl with
      | Some ls -> List.iter (fun l -> add_def l b.bid) ls
      | None -> ())
    f;
  let phis : (blockid, memphi list) Hashtbl.t = Hashtbl.create 16 in
  let nversions : (loc, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace nversions l 1) tracked_list;
  let fresh_ver l =
    let v = Hashtbl.find nversions l + 1 in
    Hashtbl.replace nversions l v;
    v
  in
  let phi_of : (blockid * loc, memphi) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let placed = Hashtbl.create 8 in
      let work = Queue.create () in
      List.iter
        (fun b -> Queue.push b work)
        (Option.value ~default:[] (Hashtbl.find_opt def_blocks l));
      while not (Queue.is_empty work) do
        let b = Queue.pop work in
        List.iter
          (fun df ->
            if not (Hashtbl.mem placed df) && Analysis.Dominance.reachable dom df
            then begin
              Hashtbl.replace placed df ();
              let phi = { mloc = l; mver = 0 (* set in renaming *); margs = [] } in
              Hashtbl.replace phi_of (df, l) phi;
              Hashtbl.replace phis df
                (phi :: Option.value ~default:[] (Hashtbl.find_opt phis df));
              Queue.push df work
            end)
          (Analysis.Dominance.frontier dom b)
      done)
    tracked_list;
  (* 3. Renaming walk over the dominator tree. *)
  let mu : (label, (loc * int) list) Hashtbl.t = Hashtbl.create 64 in
  let chi : (label, (loc * int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let ret_vers : (label, (loc * int) list) Hashtbl.t = Hashtbl.create 8 in
  let stacks : (loc, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace stacks l [ 1 ]) tracked_list;
  let top l = List.hd (Hashtbl.find stacks l) in
  let push l v = Hashtbl.replace stacks l (v :: Hashtbl.find stacks l) in
  let preds = Ir.Func.preds f in
  ignore preds;
  let rec walk b =
    let pushed = ref [] in
    (* Memory phis define new versions at block entry. *)
    List.iter
      (fun phi ->
        let v = fresh_ver phi.mloc in
        (* [mver] is assigned exactly once: the walk visits each block once. *)
        Hashtbl.replace phi_of (b, phi.mloc) phi;
        phi.mver <- v;
        push phi.mloc v;
        pushed := phi.mloc :: !pushed)
      (Option.value ~default:[] (Hashtbl.find_opt phis b));
    List.iter
      (fun i ->
        (match Hashtbl.find_opt raw_mu i.lbl with
        | Some ls -> Hashtbl.replace mu i.lbl (List.map (fun l -> (l, top l)) ls)
        | None -> ());
        match Hashtbl.find_opt raw_chi i.lbl with
        | Some ls ->
          Hashtbl.replace chi i.lbl
            (List.map
               (fun l ->
                 let old = top l in
                 let nv = fresh_ver l in
                 push l nv;
                 pushed := l :: !pushed;
                 (l, nv, old))
               ls)
        | None -> ())
      f.blocks.(b).instrs;
    (match f.blocks.(b).term.tkind with
    | Ret _ ->
      Hashtbl.replace ret_vers f.blocks.(b).term.tlbl
        (List.map (fun l -> (l, top l)) out_locs)
    | Br _ | Jmp _ -> ());
    (* Fill successor phi arguments. *)
    List.iter
      (fun s ->
        List.iter
          (fun phi -> phi.margs <- (b, top phi.mloc) :: phi.margs)
          (Option.value ~default:[] (Hashtbl.find_opt phis s)))
      (Ir.Func.succs f b);
    List.iter walk (Analysis.Dominance.children dom b);
    List.iter
      (fun l -> Hashtbl.replace stacks l (List.tl (Hashtbl.find stacks l)))
      !pushed
  in
  if Array.length f.blocks > 0 then walk 0;
  {
    fname = f.fname;
    tracked = tracked_list;
    entry_locs;
    out_locs;
    mu;
    chi;
    phis;
    ret_vers;
    nversions;
  }

(** Inert per-function SSA used when [build_func] faults and the caller
    opted into per-function degradation: no tracked locations, no
    annotations. Sound only if the consumer distrusts the function. *)
let empty_func_ssa (fname : fname) : func_ssa =
  {
    fname;
    tracked = [];
    entry_locs = [];
    out_locs = [];
    mu = Hashtbl.create 1;
    chi = Hashtbl.create 1;
    phis = Hashtbl.create 1;
    ret_vers = Hashtbl.create 1;
    nversions = Hashtbl.create 1;
  }

(** [hook] runs before each function (fault injection / budget ticks from
    the driver); [on_fault] — when given — catches any exception raised
    while processing one function, reports it, and substitutes
    [empty_func_ssa] so the remaining functions still get real Memory SSA. *)
let build ?budget ?hook ?on_fault (p : P.t) (pa : Analysis.Andersen.t)
    (cg : Analysis.Callgraph.t) (mr : Analysis.Modref.t) : t =
  let funcs = Hashtbl.create 16 in
  P.iter_funcs
    (fun f ->
      let compute () =
        match on_fault with
        | None ->
          (match hook with Some h -> h f.fname | None -> ());
          (match budget with
          | Some b -> Diag.Budget.tick b Diag.Memssa
          | None -> ());
          build_func pa cg mr f
        | Some report -> (
          try
            (match hook with Some h -> h f.fname | None -> ());
            (match budget with
            | Some b -> Diag.Budget.tick b Diag.Memssa
            | None -> ());
            build_func pa cg mr f
          with e ->
            report f.fname e;
            empty_func_ssa f.fname)
      in
      (* One span per function when tracing; exactly [compute ()] otherwise. *)
      let fs =
        if Obs.Trace.enabled () then
          Obs.Trace.with_span ~cat:"memssa" ("memssa." ^ f.fname) compute
        else compute ()
      in
      Hashtbl.replace funcs f.fname fs)
    p;
  { prog = p; pa; cg; mr; funcs }

(* ------------------------------------------------------------------ *)
(* Pretty printing (Fig. 5-style dumps, for tests and the CLI)         *)
(* ------------------------------------------------------------------ *)

let pp_func (t : t) ppf (f : func) =
  let fs = func_ssa t f.fname in
  let objects = t.pa.objects in
  let locname l = Objects.loc_name objects l in
  Fmt.pf ppf "def %s(%a) [in: %a] {@."
    f.fname
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    (List.map (P.var_name t.prog) f.params)
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    (List.map (fun l -> locname l ^ "_1") fs.entry_locs);
  Array.iter
    (fun b ->
      Fmt.pf ppf "b%d:@." b.bid;
      List.iter
        (fun phi ->
          Fmt.pf ppf "  %s_%d := memphi(%a)@." (locname phi.mloc) phi.mver
            (Fmt.list ~sep:Fmt.comma (fun ppf (pb, v) -> Fmt.pf ppf "b%d:%d" pb v))
            phi.margs)
        (phis_at fs b.bid);
      List.iter
        (fun i ->
          let mus = mu_at fs i.lbl in
          let chis = chi_at fs i.lbl in
          Fmt.pf ppf "  l%d: %s" i.lbl (Ir.Printer.instr_to_string t.prog i);
          if mus <> [] then
            Fmt.pf ppf " [%a]"
              (Fmt.list ~sep:Fmt.comma (fun ppf (l, v) ->
                   Fmt.pf ppf "mu(%s_%d)" (locname l) v))
              mus;
          if chis <> [] then
            Fmt.pf ppf " [%a]"
              (Fmt.list ~sep:Fmt.comma (fun ppf (l, nv, ov) ->
                   Fmt.pf ppf "%s_%d := chi(%s_%d)" (locname l) nv (locname l) ov))
              chis;
          Fmt.pf ppf "@.")
        b.instrs;
      let rets = ret_vers_at fs b.term.tlbl in
      Fmt.pf ppf "  l%d: %s" b.term.tlbl
        (Fmt.str "%a" (Ir.Printer.term_kind t.prog) b.term.tkind);
      if rets <> [] then
        Fmt.pf ppf " [out: %a]"
          (Fmt.list ~sep:Fmt.comma (fun ppf (l, v) ->
               Fmt.pf ppf "%s_%d" (locname l) v))
          rets;
      Fmt.pf ppf "@.")
    f.blocks;
  Fmt.pf ppf "}@."

let to_string (t : t) : string =
  P.fold_funcs (fun acc f -> acc ^ Fmt.str "%a" (pp_func t) f) "" t.prog
