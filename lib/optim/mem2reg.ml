(* Promotion of memory to registers — LLVM's mem2reg, the "M" of the paper's
   O0+IM baseline.

   A stack allocation is promotable when it is a single-cell scalar whose
   address is only ever the direct pointer operand of loads and stores. Such
   slots become SSA top-level variables (Var_TL); unpromoted ones remain the
   program's address-taken stack variables (Var_AT).

   Promotion is the standard algorithm: phi placement at the iterated
   dominance frontier of the store blocks, then a renaming walk over the
   dominator tree. A load before any store yields [Undef] — this is where C's
   uninitialized locals become explicit undefined values. *)

open Ir.Types
module P = Ir.Prog
module Instr = Ir.Instr

type stats = { promoted : int; phis_inserted : int }

let promotable_allocs (f : func) : (var, alloc) Hashtbl.t =
  let candidates = Hashtbl.create 16 in
  Ir.Func.iter_instrs
    (fun _ i ->
      match i.kind with
      | Alloc ({ region = Stack; asize = Fields 1; _ } as a) ->
        Hashtbl.replace candidates a.adst a
      | _ -> ())
    f;
  let disqualify v = Hashtbl.remove candidates v in
  let check_operand o =
    match o with Var v -> disqualify v | Cst _ | Undef -> ()
  in
  Ir.Func.iter_instrs
    (fun _ i ->
      match i.kind with
      | Load (_, _) -> () (* a load's pointer operand is a sanctioned use *)
      | Store (_, o) -> check_operand o (* storing the address escapes it *)
      | Copy (_, o) | Unop (_, _, o) -> check_operand o
      | Binop (_, _, o1, o2) -> check_operand o1; check_operand o2
      | Field_addr (_, y, _) -> disqualify y
      | Index_addr (_, y, o) -> disqualify y; check_operand o
      | Call c ->
        List.iter check_operand c.cargs;
        (match c.callee with Indirect v -> disqualify v | Direct _ -> ())
      | Phi (_, arms) -> List.iter (fun (_, o) -> check_operand o) arms
      | Output o -> check_operand o
      | Alloc a -> (
        match a.asize with Array_of o -> check_operand o | Fields _ -> ())
      | Const _ | Global_addr _ | Func_addr _ | Input _ -> ())
    f;
  Array.iter
    (fun b ->
      match b.term.tkind with
      | Br (o, _, _) -> check_operand o
      | Ret (Some o) -> check_operand o
      | Ret None | Jmp _ -> ())
    f.blocks;
  candidates

let run_func (p : P.t) (f : func) : func * stats =
  let f = Simplify_cfg.remove_unreachable f in
  let allocs = promotable_allocs f in
  if Hashtbl.length allocs = 0 then (f, { promoted = 0; phis_inserted = 0 })
  else begin
    let dom = Analysis.Dominance.compute f in
    (* Promote in the allocs' IR order, not Hashtbl order: bucket layout
       hashes raw var ids, which come from a process-global counter, so
       hash order makes this function's phi placement depend on how many
       variables *earlier* functions happened to allocate. IR order is
       content-determined, keeping every downstream artifact — SSA names,
       VFG shape, summary content keys — stable under edits elsewhere. *)
    let alloc_ids =
      let acc = ref [] in
      Ir.Func.iter_instrs
        (fun _ i ->
          match i.kind with
          | Alloc a when Hashtbl.mem allocs a.adst ->
            if not (List.memq a.adst !acc) then acc := a.adst :: !acc
          | _ -> ())
        f;
      List.rev !acc
    in
    let nalloc = List.length alloc_ids in
    let index_of = Hashtbl.create 16 in
    List.iteri (fun i v -> Hashtbl.replace index_of v i) alloc_ids;
    (* Blocks containing stores, per alloc. *)
    let def_blocks = Array.make nalloc [] in
    Ir.Func.iter_instrs
      (fun b i ->
        match i.kind with
        | Store (v, _) when Hashtbl.mem allocs v ->
          let k = Hashtbl.find index_of v in
          def_blocks.(k) <- b.bid :: def_blocks.(k)
        | _ -> ())
      f;
    (* Per-alloc liveness, so phi placement is pruned (as in LLVM): a phi is
       only placed where the promoted variable is live-in. *)
    let nb_blocks = Array.length f.blocks in
    let upward_exposed = Array.make_matrix nalloc nb_blocks false in
    let killed = Array.make_matrix nalloc nb_blocks false in
    Array.iter
      (fun b ->
        List.iter
          (fun i ->
            match i.kind with
            | Load (_, v) when Hashtbl.mem allocs v ->
              let k = Hashtbl.find index_of v in
              if not killed.(k).(b.bid) then upward_exposed.(k).(b.bid) <- true
            | Store (v, _) when Hashtbl.mem allocs v ->
              let k = Hashtbl.find index_of v in
              killed.(k).(b.bid) <- true
            | _ -> ())
          b.instrs)
      f.blocks;
    let live_in = Array.make_matrix nalloc nb_blocks false in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = nb_blocks - 1 downto 0 do
        let succ_live k =
          List.exists (fun s -> live_in.(k).(s)) (Ir.Func.succs f b)
        in
        for k = 0 to nalloc - 1 do
          let v = upward_exposed.(k).(b) || ((not killed.(k).(b)) && succ_live k) in
          if v && not live_in.(k).(b) then begin
            live_in.(k).(b) <- true;
            changed := true
          end
        done
      done
    done;
    (* Iterated dominance frontier, pruned by liveness. *)
    let phi_blocks = Array.make nalloc [] in
    for k = 0 to nalloc - 1 do
      let placed = Hashtbl.create 8 in
      let work = Queue.create () in
      List.iter (fun b -> Queue.push b work) def_blocks.(k);
      while not (Queue.is_empty work) do
        let b = Queue.pop work in
        List.iter
          (fun df ->
            if not (Hashtbl.mem placed df) then begin
              Hashtbl.replace placed df ();
              if live_in.(k).(df) then phi_blocks.(k) <- df :: phi_blocks.(k);
              Queue.push df work
            end)
          (Analysis.Dominance.frontier dom b)
      done
    done;
    (* Materialize phi instructions (operands filled during renaming). *)
    let preds = Ir.Func.preds f in
    let phi_var : (blockid * int, var) Hashtbl.t = Hashtbl.create 16 in
    let phi_count = ref 0 in
    for k = 0 to nalloc - 1 do
      let aname = (Hashtbl.find allocs (List.nth alloc_ids k)).aname in
      List.iter
        (fun b ->
          if Analysis.Dominance.reachable dom b then begin
            let v = P.fresh_var p ~name:aname ~owner:f.fname in
            Hashtbl.replace phi_var (b, k) v;
            incr phi_count;
            let blk = f.blocks.(b) in
            let arms = List.map (fun pb -> (pb, Undef)) preds.(b) in
            blk.instrs <-
              { lbl = P.fresh_label p; kind = Phi (v, arms) } :: blk.instrs
          end)
        phi_blocks.(k)
    done;
    (* Renaming walk. [subst] replaces promoted load results. *)
    let stacks = Array.make nalloc [ (Undef : operand) ] in
    let subst : (var, operand) Hashtbl.t = Hashtbl.create 64 in
    let rec resolve (o : operand) : operand =
      match o with
      | Var v -> (
        match Hashtbl.find_opt subst v with
        | Some o' -> resolve o'
        | None -> o)
      | Cst _ | Undef -> o
    in
    let rec walk (b : blockid) =
      let blk = f.blocks.(b) in
      let pushed = Array.make nalloc 0 in
      let keep =
        List.filter
          (fun ins ->
            match ins.kind with
            | Phi (x, _) -> (
              (* Promoted phis define their alloc's current value. *)
              match
                Hashtbl.fold
                  (fun (pb, k) v acc -> if pb = b && v = x then Some k else acc)
                  phi_var None
              with
              | Some k ->
                stacks.(k) <- Var x :: stacks.(k);
                pushed.(k) <- pushed.(k) + 1;
                true
              | None -> true)
            | Load (x, v) when Hashtbl.mem allocs v ->
              let k = Hashtbl.find index_of v in
              Hashtbl.replace subst x (List.hd stacks.(k));
              false
            | Store (v, o) when Hashtbl.mem allocs v ->
              let k = Hashtbl.find index_of v in
              stacks.(k) <- resolve o :: stacks.(k);
              pushed.(k) <- pushed.(k) + 1;
              false
            | Alloc a when Hashtbl.mem allocs a.adst -> false
            | _ ->
              ins.kind <- Instr.map_operands resolve ins.kind;
              true)
          blk.instrs
      in
      blk.instrs <- keep;
      blk.term.tkind <- Instr.map_term_operands resolve blk.term.tkind;
      (* Fill phi operands of successors. *)
      List.iter
        (fun s ->
          for k = 0 to nalloc - 1 do
            match Hashtbl.find_opt phi_var (s, k) with
            | Some v ->
              let sblk = f.blocks.(s) in
              List.iter
                (fun ins ->
                  match ins.kind with
                  | Phi (x, arms) when x = v ->
                    ins.kind <-
                      Phi
                        ( x,
                          List.map
                            (fun (pb, o) ->
                              if pb = b then (pb, List.hd stacks.(k)) else (pb, o))
                            arms )
                  | _ -> ())
                sblk.instrs
            | None -> ()
          done)
        (Ir.Func.succs f b);
      List.iter walk (Analysis.Dominance.children dom b);
      for k = 0 to nalloc - 1 do
        for _ = 1 to pushed.(k) do
          stacks.(k) <- List.tl stacks.(k)
        done
      done
    in
    walk 0;
    (* Phi operands referencing promoted loads in predecessor blocks were
       resolved during the walk via [stacks]; any remaining subst targets in
       phi arms are cleaned here. *)
    Ir.Func.iter_instrs
      (fun _ ins -> ins.kind <- Instr.map_operands resolve ins.kind)
      f;
    (f, { promoted = nalloc; phis_inserted = !phi_count })
  end

let run (p : P.t) : stats =
  let total = ref { promoted = 0; phis_inserted = 0 } in
  P.iter_funcs
    (fun f ->
      let f', s = run_func p f in
      P.update_func p f';
      total :=
        {
          promoted = !total.promoted + s.promoted;
          phis_inserted = !total.phis_inserted + s.phis_inserted;
        })
    p;
  !total
