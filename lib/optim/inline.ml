(* Iterative inlining of functions that take function-pointer arguments —
   the "I" in the paper's O0+IM setting ("the merged bitcode is transformed
   by iteratively inlining the functions with at least one function pointer
   argument to simplify the call graph, excluding those functions that are
   directly recursive").

   Inlining runs before mem2reg, so the program has no phis yet; return
   values are communicated through a fresh stack slot that mem2reg later
   promotes. *)

open Ir.Types
module P = Ir.Prog
module Instr = Ir.Instr

(* A parameter is a function-pointer argument if its value flows to an
   indirect-call position inside the function. Inlining runs before mem2reg,
   when parameters are still spilled to stack slots, so the trace follows
   copies, loads and stores (slot <- value, value <- slot). *)
let has_fp_param (f : func) : bool =
  let flows_from : (var, var list) Hashtbl.t = Hashtbl.create 16 in
  let add x y =
    Hashtbl.replace flows_from x
      (y :: Option.value ~default:[] (Hashtbl.find_opt flows_from x))
  in
  let indirect_callees = ref [] in
  Ir.Func.iter_instrs
    (fun _ i ->
      (match i.kind with
      | Copy (x, Var y) -> add x y
      | Load (x, y) -> add x y
      | Store (x, Var y) -> add x y
      | _ -> ());
      match i.kind with
      | Call { callee = Indirect v; _ } -> indirect_callees := v :: !indirect_callees
      | _ -> ())
    f;
  let rec roots v seen =
    if List.mem v seen then [ v ]
    else
      match Hashtbl.find_opt flows_from v with
      | Some ys -> List.concat_map (fun y -> roots y (v :: seen)) ys
      | None -> [ v ]
  in
  !indirect_callees
  |> List.concat_map (fun v -> roots v [])
  |> List.exists (fun v -> List.mem v f.params)

let is_directly_recursive (f : func) : bool =
  let r = ref false in
  Ir.Func.iter_instrs
    (fun _ i ->
      match i.kind with
      | Call { callee = Direct g; _ } when g = f.fname -> r := true
      | _ -> ())
    f;
  !r

let size_of (f : func) : int =
  Array.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

(* Clone [callee]'s body into [caller] at the call site [at] (label), binding
   arguments and return value. Returns the rewritten caller. *)
let inline_at (p : P.t) (caller : func) (at : label) (callee : func) : func =
  (* Locate the call. *)
  let call_block = ref (-1) and call_info = ref None in
  Array.iter
    (fun b ->
      List.iter
        (fun i ->
          if i.lbl = at then begin
            call_block := b.bid;
            match i.kind with
            | Call c -> call_info := Some c
            | _ -> Diag.error Diag.Optim "Inline.inline_at: label is not a call"
          end)
        b.instrs)
    caller.blocks;
  let c = Option.get !call_info in
  let nb = Array.length caller.blocks in
  let callee_nb = Array.length callee.blocks in
  let entry_clone = nb in          (* callee block b -> nb + b *)
  let cont = nb + callee_nb in     (* continuation block *)
  (* Fresh variables for everything the callee defines. *)
  let vmap : (var, var) Hashtbl.t = Hashtbl.create 32 in
  let clone_var v =
    match Hashtbl.find_opt vmap v with
    | Some v' -> v'
    | None ->
      let vi = P.varinfo p v in
      let v' = P.fresh_var p ~name:(vi.vname ^ "$" ^ callee.fname) ~owner:caller.fname in
      Hashtbl.replace vmap v v';
      v'
  in
  let clone_operand = function
    | Var v -> Var (clone_var v)
    | (Cst _ | Undef) as o -> o
  in
  (* Return-value slot (promoted away by mem2reg for scalar returns). *)
  let ret_slot =
    match c.cdst with
    | Some _ ->
      Some (P.fresh_var p ~name:("ret$" ^ callee.fname) ~owner:caller.fname)
    | None -> None
  in
  let blk = caller.blocks.(!call_block) in
  let rec split pre = function
    | [] -> Diag.error Diag.Optim "Inline.inline_at: call vanished"
    | i :: rest when i.lbl = at -> (List.rev pre, rest)
    | i :: rest -> split (i :: pre) rest
  in
  let pre, post = split [] blk.instrs in
  (* Argument binding + optional return slot allocation, appended to [pre]. *)
  let binds =
    (match ret_slot with
    | Some rs ->
      [ { lbl = P.fresh_label p;
          kind =
            Alloc
              { adst = rs; aname = "ret$" ^ callee.fname; region = Stack;
                initialized = false; asize = Fields 1 } } ]
    | None -> [])
    @ List.map2
        (fun prm arg ->
          { lbl = P.fresh_label p; kind = Copy (clone_var prm, arg) })
        callee.params c.cargs
  in
  let old_term = blk.term in
  blk.instrs <- pre @ binds;
  blk.term <- { tlbl = P.fresh_label p; tkind = Jmp entry_clone };
  (* Clone callee blocks. *)
  let remap_bid b = nb + b in
  (* [map_operands] renames every use, including pointer operands of loads,
     stores, address computations and indirect callees; the defined variable
     is rebound explicitly. *)
  let rebind_def k =
    match Instr.def_of k with
    | None -> k
    | Some d -> (
      let d' = clone_var d in
      match k with
      | Const (_, n) -> Const (d', n)
      | Copy (_, o) -> Copy (d', o)
      | Unop (_, u, o) -> Unop (d', u, o)
      | Binop (_, b, o1, o2) -> Binop (d', b, o1, o2)
      | Alloc a -> Alloc { a with adst = d' }
      | Load (_, y) -> Load (d', y)
      | Field_addr (_, y, n) -> Field_addr (d', y, n)
      | Index_addr (_, y, o) -> Index_addr (d', y, o)
      | Global_addr (_, g) -> Global_addr (d', g)
      | Func_addr (_, g) -> Func_addr (d', g)
      | Input _ -> Input d'
      | Call cc -> Call { cc with cdst = Some d' }
      | Phi (_, arms) -> Phi (d', arms)
      | Store _ | Output _ -> k)
  in
  let cloned =
    Array.map
      (fun (b : block) ->
        let instrs =
          List.map
            (fun i ->
              let kind =
                match i.kind with
                | Phi (x, arms) ->
                  Phi
                    ( clone_var x,
                      List.map
                        (fun (pb, o) -> (remap_bid pb, clone_operand o))
                        arms )
                | k -> rebind_def (Instr.map_operands clone_operand k)
              in
              { lbl = P.fresh_label p; kind })
            b.instrs
        in
        let term =
          match b.term.tkind with
          | Br (o, b1, b2) ->
            { tlbl = P.fresh_label p;
              tkind = Br (clone_operand o, remap_bid b1, remap_bid b2) }
          | Jmp b1 -> { tlbl = P.fresh_label p; tkind = Jmp (remap_bid b1) }
          | Ret _ -> { tlbl = P.fresh_label p; tkind = Jmp cont }
        in
        (* Returns become stores to the return slot followed by a jump. *)
        let instrs =
          match b.term.tkind with
          | Ret ov -> (
            match (ret_slot, ov) with
            | Some rs, Some o ->
              instrs
              @ [ { lbl = P.fresh_label p; kind = Store (rs, clone_operand o) } ]
            | Some rs, None ->
              instrs @ [ { lbl = P.fresh_label p; kind = Store (rs, Undef) } ]
            | None, _ -> instrs)
          | Br _ | Jmp _ -> instrs
        in
        { bid = remap_bid b.bid; instrs; term })
      callee.blocks
  in
  (* Continuation block: load the return slot into the call destination. *)
  let cont_instrs =
    (match (c.cdst, ret_slot) with
    | Some d, Some rs -> [ { lbl = P.fresh_label p; kind = Load (d, rs) } ]
    | _ -> [])
    @ post
  in
  let cont_block = { bid = cont; instrs = cont_instrs; term = old_term } in
  { caller with blocks = Array.concat [ caller.blocks; cloned; [| cont_block |] ] }

(* Clone-operand must also rename variables *used* by cloned instructions.
   [Instr.map_operands] handles value operands; pointer operands of
   loads/stores and address bases are handled explicitly above. *)

type stats = { inlined_calls : int; rounds : int }

let max_rounds = 4
let max_callee_size = 400

let run (p : P.t) : stats =
  let total = ref 0 in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds do
    incr rounds;
    continue_ := false;
    let targets =
      P.fold_funcs
        (fun acc f ->
          if
            f.fname <> "main" && has_fp_param f
            && (not (is_directly_recursive f))
            && size_of f <= max_callee_size
          then f.fname :: acc
          else acc)
        [] p
    in
    if targets <> [] then
      P.iter_funcs
        (fun caller ->
          let rec one_round () =
            let found = ref None in
            Ir.Func.iter_instrs
              (fun _ i ->
                match (i.kind, !found) with
                | Call { callee = Direct g; _ }, None
                  when List.mem g targets && g <> caller.fname ->
                  found := Some (i.lbl, g)
                | _ -> ())
              caller;
            match !found with
            | Some (lbl, g) ->
              let callee = P.get_func p g in
              let caller' = inline_at p caller lbl callee in
              P.update_func p caller';
              incr total;
              continue_ := true;
              (* Re-fetch and keep inlining within this caller. *)
              one_round_on (P.get_func p caller.fname)
            | None -> ()
          and one_round_on c =
            let found = ref None in
            Ir.Func.iter_instrs
              (fun _ i ->
                match (i.kind, !found) with
                | Call { callee = Direct g; _ }, None
                  when List.mem g targets && g <> c.fname ->
                  found := Some (i.lbl, g)
                | _ -> ())
              c;
            match !found with
            | Some (lbl, g) ->
              let callee = P.get_func p g in
              let c' = inline_at p c lbl callee in
              P.update_func p c';
              incr total;
              one_round_on (P.get_func p c.fname)
            | None -> ()
          in
          one_round ())
        p
  done;
  { inlined_calls = !total; rounds = !rounds }
