(* Lowering TinyC ASTs to the LLVM-like IR, mirroring how clang -O0 lowers C:

   - every local (and parameter) gets a stack [Alloc] in the entry block and
     is accessed through loads and stores; mem2reg later promotes scalars
     whose address does not escape, producing the paper's Var_TL;
   - the C address-of operator disappears: [&x] is the alloc result, [&e->f]
     and [&e[i]] are Field_addr/Index_addr (cf. Fig. 2);
   - [malloc]/[calloc] become heap [Alloc]s (alloc_F / alloc_T), with
     [sizeof(struct S)] arguments giving field-sensitive objects;
   - logical && and || are evaluated non-short-circuit (both operands are
     computed, then combined), as in the paper's TinyC where they are plain
     binary operations. *)

open Ir.Types
module B = Ir.Builder

let fail fmt = Diag.error Diag.Lower fmt

type env = {
  prog : Ir.Prog.t;
  structs : (string, (string * Ast.ty) list) Hashtbl.t;
  fsigs : (string, int) Hashtbl.t;            (* function -> arity *)
  global_tys : (string, Ast.ty) Hashtbl.t;
  mutable bld : B.t;
  mutable scopes : (string, var * Ast.ty) Hashtbl.t list;
  mutable decls : (string * var) list;        (* pre-allocated locals, in order *)
  mutable break_tgt : blockid list;
  mutable cont_tgt : blockid list;
  mutable ret_void : bool;
}

let builtin_names = [ "malloc"; "calloc"; "input"; "print" ]

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let bind env name addr ty =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (addr, ty)
  | [] -> assert false

let lookup_local env name =
  let rec go = function
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some b -> Some b
      | None -> go rest)
    | [] -> None
  in
  go env.scopes

let fields_of env sname =
  match Hashtbl.find_opt env.structs sname with
  | Some fs -> fs
  | None -> fail "unknown struct %s" sname

let field_index env sname fname =
  let fs = fields_of env sname in
  let rec go i = function
    | (n, ty) :: rest -> if n = fname then (i, ty) else go (i + 1) rest
    | [] -> fail "struct %s has no field %s" sname fname
  in
  go 0 fs

let rec sizeof env (ty : Ast.ty) : int =
  match ty with
  | Ast.Tint | Ast.Tptr _ -> 1
  | Ast.Tstruct s -> List.length (fields_of env s)
  | Ast.Tarr (n, t) -> n * sizeof env t
  | Ast.Tvoid -> fail "sizeof(void)"

let asize_of env (ty : Ast.ty) : asize =
  match ty with
  | Ast.Tint | Ast.Tptr _ -> Fields 1
  | Ast.Tstruct s -> Fields (List.length (fields_of env s))
  | Ast.Tarr (n, t) -> Array_of (Cst (n * sizeof env t))
  | Ast.Tvoid -> fail "cannot allocate void"

let binop_ir : Ast.binop -> binop = function
  | Ast.Badd -> Add | Ast.Bsub -> Sub | Ast.Bmul -> Mul | Ast.Bdiv -> Div
  | Ast.Brem -> Rem | Ast.Band -> And | Ast.Bor -> Or | Ast.Bxor -> Xor
  | Ast.Bshl -> Shl | Ast.Bshr -> Shr
  | Ast.Blt -> Lt | Ast.Ble -> Le | Ast.Bgt -> Gt | Ast.Bge -> Ge
  | Ast.Beq -> Eq | Ast.Bne -> Ne
  | Ast.Bland | Ast.Blor -> assert false (* handled separately *)

(* The element type a pointer/array value gives access to. *)
let deref_ty = function
  | Ast.Tptr t -> t
  | Ast.Tarr (_, t) -> t
  | Ast.Tint -> Ast.Tint        (* loose: int used as address of int *)
  | t -> fail "cannot dereference a value of this type (%s)"
           (match t with Ast.Tstruct s -> "struct " ^ s | Ast.Tvoid -> "void" | _ -> "?")

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* [lower_lvalue] returns the *address* (a top-level variable holding a
   pointer) of the denoted cell, with the cell's type. *)
let rec lower_lvalue env (e : Ast.expr) : var * Ast.ty =
  match e with
  | Ast.Eident x -> (
    match lookup_local env x with
    | Some (addr, ty) -> (addr, ty)
    | None -> (
      match Hashtbl.find_opt env.global_tys x with
      | Some ty -> (B.global_addr env.bld x, ty)
      | None -> fail "unknown variable %s" x))
  | Ast.Ederef e ->
    let v, ty = lower_value env e in
    (as_var env v, deref_ty ty)
  | Ast.Eindex (base, idx) ->
    let bptr, ety = lower_array_base env base in
    let iv, _ = lower_value env idx in
    (B.index_addr env.bld bptr iv, ety)
  | Ast.Efield (base, f) -> (
    let baddr, bty = lower_lvalue env base in
    match bty with
    | Ast.Tstruct s ->
      let idx, fty = field_index env s f in
      (B.field_addr env.bld baddr idx, fty)
    | _ -> fail "field access on non-struct")
  | Ast.Earrow (base, f) -> (
    let v, ty = lower_value env base in
    match deref_ty ty with
    | Ast.Tstruct s ->
      let idx, fty = field_index env s f in
      (B.field_addr env.bld (as_var env v) idx, fty)
    | _ -> fail "-> on non-struct pointer")
  | _ -> fail "expression is not an lvalue"

(* The pointer a subscript indexes: an array lvalue decays to its base
   address; anything else is evaluated as a pointer value. *)
and lower_array_base env (e : Ast.expr) : var * Ast.ty =
  let as_decayed () =
    let addr, ty = lower_lvalue env e in
    match ty with
    | Ast.Tarr (_, ety) -> Some (addr, ety)
    | _ -> None
  in
  match e with
  | Ast.Eident _ | Ast.Efield _ | Ast.Earrow _ -> (
    match (try as_decayed () with Diag.Error _ -> None) with
    | Some r -> r
    | None ->
      let v, ty = lower_value env e in
      (as_var env v, deref_ty ty))
  | _ ->
    let v, ty = lower_value env e in
    (as_var env v, deref_ty ty)

and as_var env (o : operand) : var =
  match o with
  | Var v -> v
  | Cst _ | Undef -> B.copy env.bld o

(* [lower_value] evaluates an expression to an operand plus its loose type. *)
and lower_value env (e : Ast.expr) : operand * Ast.ty =
  match e with
  | Ast.Eint n -> (Cst n, Ast.Tint)
  | Ast.Eident x -> (
    match lookup_local env x with
    | Some (addr, ty) -> (
      match ty with
      | Ast.Tarr (_, ety) -> (Var addr, Ast.Tptr ety) (* array decay *)
      | _ -> (Var (B.load env.bld addr), ty))
    | None -> (
      match Hashtbl.find_opt env.global_tys x with
      | Some ty -> (
        let addr = B.global_addr env.bld x in
        match ty with
        | Ast.Tarr (_, ety) -> (Var addr, Ast.Tptr ety)
        | _ -> (Var (B.load env.bld addr), ty))
      | None ->
        if Hashtbl.mem env.fsigs x then
          (Var (B.func_addr env.bld x), Ast.Tptr Ast.Tvoid)
        else fail "unknown identifier %s" x))
  | Ast.Ebinop (Ast.Bland, a, b) ->
    let va, _ = lower_value env a in
    let vb, _ = lower_value env b in
    let ta = B.binop env.bld Ne va (Cst 0) in
    let tb = B.binop env.bld Ne vb (Cst 0) in
    (Var (B.binop env.bld And (Var ta) (Var tb)), Ast.Tint)
  | Ast.Ebinop (Ast.Blor, a, b) ->
    let va, _ = lower_value env a in
    let vb, _ = lower_value env b in
    let ta = B.binop env.bld Ne va (Cst 0) in
    let tb = B.binop env.bld Ne vb (Cst 0) in
    (Var (B.binop env.bld Or (Var ta) (Var tb)), Ast.Tint)
  | Ast.Ebinop (op, a, b) ->
    let va, ta = lower_value env a in
    let vb, _tb = lower_value env b in
    (* Pointer arithmetic [p + n] is an address computation, not an ALU op. *)
    (match (op, ta) with
    | (Ast.Badd | Ast.Bsub), (Ast.Tptr ety) ->
      let off = if op = Ast.Badd then vb else Var (B.unop env.bld Neg vb) in
      (Var (B.index_addr env.bld (as_var env va) off), Ast.Tptr ety)
    | _ -> (Var (B.binop env.bld (binop_ir op) va vb), Ast.Tint))
  | Ast.Eunop (op, a) ->
    let va, _ = lower_value env a in
    let u = match op with Ast.Uneg -> Neg | Ast.Unot -> Not | Ast.Ulnot -> Lnot in
    (Var (B.unop env.bld u va), Ast.Tint)
  | Ast.Ederef _ | Ast.Eindex _ | Ast.Efield _ | Ast.Earrow _ ->
    let addr, ty = lower_lvalue env e in
    (match ty with
    | Ast.Tarr (_, ety) -> (Var addr, Ast.Tptr ety)
    | _ -> (Var (B.load env.bld addr), ty))
  | Ast.Eaddr lv ->
    let addr, ty = lower_lvalue env lv in
    (Var addr, Ast.Tptr ty)
  | Ast.Esizeof ty -> (Cst (sizeof env ty), Ast.Tint)
  | Ast.Ecast (ty, Ast.Ecall (("malloc" | "calloc") as fn, args)) ->
    lower_malloc env fn args ~cast:(Some ty)
  | Ast.Ecast (ty, e) ->
    let v, _ = lower_value env e in
    (v, ty)
  | Ast.Ecall (("malloc" | "calloc") as fn, args) ->
    lower_malloc env fn args ~cast:None
  | Ast.Ecall ("input", []) ->
    let x = B.fresh_temp env.bld in
    ignore (B.add env.bld (Input x));
    (Var x, Ast.Tint)
  | Ast.Ecall ("print", [ arg ]) ->
    let v, _ = lower_value env arg in
    ignore (B.add env.bld (Output v));
    (Cst 0, Ast.Tint)
  | Ast.Ecall (f, args) when Hashtbl.mem env.fsigs f ->
    let arity = Hashtbl.find env.fsigs f in
    if List.length args <> arity then
      fail "call to %s with %d arguments (expected %d)" f (List.length args) arity;
    let vargs = List.map (fun a -> fst (lower_value env a)) args in
    (Var (B.call_val env.bld ~callee:(Direct f) ~args:vargs), Ast.Tint)
  | Ast.Ecall (f, args) ->
    (* Not a known function: must be a variable holding a function pointer. *)
    lower_icall env (Ast.Eident f) args
  | Ast.Eicall (e, args) -> lower_icall env e args
  | Ast.Eternary (c, a, b) ->
    (* lowered like an if/else over a fresh slot; mem2reg turns the slot
       into a phi *)
    let cv, _ = lower_value env c in
    let slot =
      B.alloc env.bld ~name:"ternary" ~region:Stack ~initialized:false
        ~asize:(Fields 1)
    in
    let bthen = B.new_block env.bld in
    let belse = B.new_block env.bld in
    let bjoin = B.new_block env.bld in
    B.terminate env.bld (Br (cv, bthen, belse));
    B.switch_to env.bld bthen;
    let va, ta = lower_value env a in
    B.store env.bld slot va;
    B.terminate env.bld (Jmp bjoin);
    B.switch_to env.bld belse;
    let vb, _ = lower_value env b in
    B.store env.bld slot vb;
    B.terminate env.bld (Jmp bjoin);
    B.switch_to env.bld bjoin;
    (Var (B.load env.bld slot), ta)

and lower_icall env e args =
  let v, _ = lower_value env e in
  let vargs = List.map (fun a -> fst (lower_value env a)) args in
  (Var (B.call_val env.bld ~callee:(Indirect (as_var env v)) ~args:vargs),
   Ast.Tint)

and lower_malloc env fn args ~cast : operand * Ast.ty =
  let initialized = fn = "calloc" in
  let struct_of_cast =
    match cast with Some (Ast.Tptr (Ast.Tstruct s)) -> Some s | _ -> None
  in
  let asize, ty =
    match (args, struct_of_cast) with
    | [ Ast.Esizeof (Ast.Tstruct s) ], _ | [ _ ], Some s ->
      (Fields (List.length (fields_of env s)), Ast.Tptr (Ast.Tstruct s))
    | [ a ], None -> (
      let v, _ = lower_value env a in
      match v with
      | Cst 1 ->
        (* A single-cell allocation is a scalar, not an array: it stays
           eligible for strong and semi-strong updates. *)
        (Fields 1, Ast.Tptr Ast.Tint)
      | _ -> (Array_of v, Ast.Tptr Ast.Tint))
    | _ -> fail "%s expects one argument" fn
  in
  let x =
    B.alloc env.bld ~name:(fn ^ "_obj") ~region:Heap ~initialized ~asize
  in
  (Var x, Option.value ~default:ty cast)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Pre-pass: collect every local declaration in lowering order so all stack
   allocations can be emitted in the entry block (as clang does). *)
let rec collect_decls (ss : Ast.stmt list) acc =
  List.fold_left collect_stmt acc ss

and collect_stmt acc (s : Ast.stmt) =
  match s with
  | Ast.Sdecl (ty, name, _) -> (name, ty) :: acc
  | Ast.Sif (_, a, b) -> collect_decls b (collect_decls a acc)
  | Ast.Swhile (_, body) -> collect_decls body acc
  | Ast.Sfor (init, _, step, body) ->
    let acc = match init with Some s -> collect_stmt acc s | None -> acc in
    let acc = collect_decls body acc in
    (match step with Some s -> collect_stmt acc s | None -> acc)
  | Ast.Sblock ss -> collect_decls ss acc
  | Ast.Sassign _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Sexpr _ ->
    acc

(* Ensure the current block is open; unreachable statements (after return or
   break) land in a fresh dead block. *)
let ensure_open env =
  if B.terminated env.bld then begin
    let b = B.new_block env.bld in
    B.switch_to env.bld b
  end

let rec lower_stmt env (s : Ast.stmt) : unit =
  ensure_open env;
  match s with
  | Ast.Sdecl (ty, name, init) -> (
    let addr =
      match env.decls with
      | (n, v) :: rest when n = name ->
        env.decls <- rest;
        v
      | _ -> fail "internal: declaration order mismatch for %s" name
    in
    bind env name addr ty;
    match init with
    | Some e ->
      let v, _ = lower_value env e in
      B.store env.bld addr v
    | None -> ())
  | Ast.Sassign (lhs, rhs) ->
    let v, _ = lower_value env rhs in
    let addr, _ = lower_lvalue env lhs in
    B.store env.bld addr v
  | Ast.Sif (cond, then_, else_) ->
    let cv, _ = lower_value env cond in
    let bthen = B.new_block env.bld in
    let belse = B.new_block env.bld in
    let bjoin = B.new_block env.bld in
    B.terminate env.bld (Br (cv, bthen, belse));
    B.switch_to env.bld bthen;
    lower_scoped env then_;
    if not (B.terminated env.bld) then B.terminate env.bld (Jmp bjoin);
    B.switch_to env.bld belse;
    lower_scoped env else_;
    if not (B.terminated env.bld) then B.terminate env.bld (Jmp bjoin);
    B.switch_to env.bld bjoin
  | Ast.Swhile (cond, body) ->
    let bcond = B.new_block env.bld in
    let bbody = B.new_block env.bld in
    let bexit = B.new_block env.bld in
    B.terminate env.bld (Jmp bcond);
    B.switch_to env.bld bcond;
    let cv, _ = lower_value env cond in
    B.terminate env.bld (Br (cv, bbody, bexit));
    B.switch_to env.bld bbody;
    env.break_tgt <- bexit :: env.break_tgt;
    env.cont_tgt <- bcond :: env.cont_tgt;
    lower_scoped env body;
    env.break_tgt <- List.tl env.break_tgt;
    env.cont_tgt <- List.tl env.cont_tgt;
    if not (B.terminated env.bld) then B.terminate env.bld (Jmp bcond);
    B.switch_to env.bld bexit
  | Ast.Sfor (init, cond, step, body) ->
    push_scope env;
    (match init with Some s -> lower_stmt env s | None -> ());
    ensure_open env;
    let bcond = B.new_block env.bld in
    let bbody = B.new_block env.bld in
    let bstep = B.new_block env.bld in
    let bexit = B.new_block env.bld in
    B.terminate env.bld (Jmp bcond);
    B.switch_to env.bld bcond;
    (match cond with
    | Some c ->
      let cv, _ = lower_value env c in
      B.terminate env.bld (Br (cv, bbody, bexit))
    | None -> B.terminate env.bld (Jmp bbody));
    B.switch_to env.bld bbody;
    env.break_tgt <- bexit :: env.break_tgt;
    env.cont_tgt <- bstep :: env.cont_tgt;
    lower_scoped env body;
    env.break_tgt <- List.tl env.break_tgt;
    env.cont_tgt <- List.tl env.cont_tgt;
    if not (B.terminated env.bld) then B.terminate env.bld (Jmp bstep);
    B.switch_to env.bld bstep;
    (match step with Some s -> lower_stmt env s | None -> ());
    if not (B.terminated env.bld) then B.terminate env.bld (Jmp bcond);
    B.switch_to env.bld bexit;
    pop_scope env
  | Ast.Sreturn e ->
    let v = match e with Some e -> Some (fst (lower_value env e)) | None -> None in
    B.terminate env.bld (Ret v)
  | Ast.Sbreak -> (
    match env.break_tgt with
    | b :: _ -> B.terminate env.bld (Jmp b)
    | [] -> fail "break outside loop")
  | Ast.Scontinue -> (
    match env.cont_tgt with
    | b :: _ -> B.terminate env.bld (Jmp b)
    | [] -> fail "continue outside loop")
  | Ast.Sexpr e -> ignore (lower_value env e)
  | Ast.Sblock ss -> lower_scoped env ss

and lower_scoped env ss =
  push_scope env;
  List.iter (lower_stmt env) ss;
  pop_scope env

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let lower_func env (fd : Ast.func_def) : unit =
  let bld = B.create env.prog ~fname:fd.Ast.fdname in
  env.bld <- bld;
  env.scopes <- [];
  push_scope env;
  let params = List.map (fun (ty, name) -> (B.mk_param bld name, ty, name)) fd.Ast.fparams in
  let entry = B.new_block bld in
  assert (entry = 0);
  B.switch_to bld entry;
  (* Parameters are spilled to stack slots, clang-style; mem2reg undoes it. *)
  List.iter
    (fun (pv, ty, name) ->
      let addr =
        B.alloc bld ~name ~region:Stack ~initialized:false ~asize:(asize_of env ty)
      in
      B.store bld addr (Var pv);
      bind env name addr ty)
    params;
  (* All local declarations allocate in the entry block. *)
  let decls = List.rev (collect_decls fd.Ast.fbody []) in
  env.decls <-
    List.map
      (fun (name, ty) ->
        let v =
          B.alloc bld ~name ~region:Stack ~initialized:false
            ~asize:(asize_of env ty)
        in
        (name, v))
      decls;
  env.ret_void <- fd.Ast.fret = Ast.Tvoid;
  List.iter (lower_stmt env) fd.Ast.fbody;
  (* Fallthrough returns. *)
  if not (B.terminated bld) then
    B.terminate bld (if env.ret_void then Ret None else Ret (Some (Cst 0)));
  (* Any dead blocks opened after returns also need terminators. *)
  ignore (B.finish bld);
  pop_scope env

let lower_program (ast : Ast.program) : Ir.Prog.t =
  let prog = Ir.Prog.create () in
  let env =
    {
      prog;
      structs = Hashtbl.create 8;
      fsigs = Hashtbl.create 8;
      global_tys = Hashtbl.create 8;
      bld = B.create prog ~fname:"!none";
      scopes = [];
      decls = [];
      break_tgt = [];
      cont_tgt = [];
      ret_void = false;
    }
  in
  List.iter
    (function
      | Ast.Istruct s -> Hashtbl.replace env.structs s.Ast.sname s.Ast.sfields
      | Ast.Iglobal g -> Hashtbl.replace env.global_tys g.Ast.gdname g.Ast.gdty
      | Ast.Ifunc f ->
        if List.mem f.Ast.fdname builtin_names then
          fail "%s is a reserved builtin name" f.Ast.fdname;
        Hashtbl.replace env.fsigs f.Ast.fdname (List.length f.Ast.fparams))
    ast;
  List.iter
    (function
      | Ast.Iglobal g ->
        let gsize =
          match g.Ast.gdty with
          | Ast.Tarr (n, t) -> Array_of (Cst (n * sizeof env t))
          | ty -> asize_of env ty
        in
        Ir.Prog.add_global prog
          { gname = g.Ast.gdname; gsize;
            ginit = (match g.Ast.gdinit with Some n -> [ n ] | None -> []) }
      | Ast.Istruct _ | Ast.Ifunc _ -> ())
    ast;
  List.iter (function Ast.Ifunc f -> lower_func env f | _ -> ()) ast;
  (* Dead blocks created after returns may be unterminated only if lowering
     had a bug; Builder.finish already asserted otherwise. *)
  Ir.Verify.check prog;
  prog

(** Front-end entry point: parse and lower a TinyC source string. *)
let compile (src : string) : Ir.Prog.t =
  lower_program (Parser.parse_program src)
