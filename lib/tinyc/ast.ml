(* Abstract syntax of TinyC. *)

type ty =
  | Tint
  | Tvoid
  | Tptr of ty
  | Tstruct of string
  | Tarr of int * ty      (* fixed-size arrays; element type int or pointer *)

type binop =
  | Badd | Bsub | Bmul | Bdiv | Brem
  | Band | Bor | Bxor | Bshl | Bshr
  | Blt | Ble | Bgt | Bge | Beq | Bne
  | Bland | Blor          (* logical; evaluated non-short-circuit, see Lower *)

type unop = Uneg | Unot | Ulnot

type expr =
  | Eint of int
  | Eident of string                  (* variable, or function name as value *)
  | Ebinop of binop * expr * expr
  | Eunop of unop * expr
  | Ederef of expr                    (* *e *)
  | Eaddr of expr                     (* &lvalue *)
  | Eindex of expr * expr             (* e1[e2] *)
  | Efield of expr * string           (* e.f *)
  | Earrow of expr * string           (* e->f *)
  | Ecall of string * expr list       (* direct call, or builtin *)
  | Eicall of expr * expr list        (* call through function pointer *)
  | Esizeof of ty
  | Ecast of ty * expr
  | Eternary of expr * expr * expr   (* c ? a : b *)

type stmt =
  | Sdecl of ty * string * expr option  (* local declaration *)
  | Sassign of expr * expr              (* lvalue = expr *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sexpr of expr                       (* expression statement (calls) *)
  | Sblock of stmt list

type struct_def = { sname : string; sfields : (string * ty) list }

type func_def = {
  fret : ty;
  fdname : string;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type global_def = { gdty : ty; gdname : string; gdinit : int option }

type item =
  | Istruct of struct_def
  | Iglobal of global_def
  | Ifunc of func_def

type program = item list

let struct_fields (prog : program) (name : string) : (string * ty) list =
  let rec find = function
    | Istruct s :: _ when s.sname = name -> s.sfields
    | _ :: rest -> find rest
    | [] -> Diag.error Diag.Lower "unknown struct %s" name
  in
  find prog
