(** Recursive-descent parser for TinyC with precedence climbing. *)

(** @raise Diag.Error with phase [Diag.Parse] (and line/col) on syntax
    errors, or phase [Diag.Lex] on lexical errors. *)
val parse_program : string -> Ast.program
