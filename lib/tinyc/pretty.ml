(* TinyC AST pretty-printer: renders an [Ast.program] back to concrete
   syntax that [Parser.parse_program] accepts.

   The printer is the bridge the soundness sentinel (lib/audit) needs to
   mutate and delta-debug programs at the AST level and still drive them
   through the unmodified front end. It is round-trip stable:
   [parse (print ast)] is structurally equal to [ast] for every AST the
   parser can produce. To that end expressions are fully parenthesized
   (parentheses are transparent in the AST), negative integer literals —
   which the expression grammar cannot produce — are rendered as
   [(0 - n)], and compound-assignment sugar never appears (the parser
   desugars it on the way in). *)

open Ast

(* [ty] as "base stars"; array types are handled at their declaration
   sites, which is the only place the grammar allows them. *)
let rec base_ty_to_string = function
  | Tint -> "int"
  | Tvoid -> "void"
  | Tstruct s -> "struct " ^ s
  | Tptr t -> base_ty_to_string t ^ "*"
  | Tarr (_, t) -> base_ty_to_string t

let binop_to_string = function
  | Badd -> "+" | Bsub -> "-" | Bmul -> "*" | Bdiv -> "/" | Brem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Bshl -> "<<" | Bshr -> ">>"
  | Blt -> "<" | Ble -> "<=" | Bgt -> ">" | Bge -> ">=" | Beq -> "==" | Bne -> "!="
  | Bland -> "&&" | Blor -> "||"

let unop_to_string = function Uneg -> "-" | Unot -> "~" | Ulnot -> "!"

let rec expr_to_string (e : expr) : string =
  match e with
  | Eint n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Eident x -> x
  | Ebinop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
      (expr_to_string b)
  | Eunop (op, a) -> Printf.sprintf "%s(%s)" (unop_to_string op) (expr_to_string a)
  | Ederef a -> Printf.sprintf "*(%s)" (expr_to_string a)
  | Eaddr a -> Printf.sprintf "&(%s)" (expr_to_string a)
  | Eindex (a, i) ->
    Printf.sprintf "(%s)[%s]" (expr_to_string a) (expr_to_string i)
  | Efield (a, f) -> Printf.sprintf "(%s).%s" (expr_to_string a) f
  | Earrow (a, f) -> Printf.sprintf "(%s)->%s" (expr_to_string a) f
  | Ecall (f, args) ->
    Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Eicall (f, args) ->
    Printf.sprintf "(%s)(%s)" (expr_to_string f)
      (String.concat ", " (List.map expr_to_string args))
  | Esizeof t -> Printf.sprintf "sizeof(%s)" (base_ty_to_string t)
  | Ecast (t, a) ->
    Printf.sprintf "(%s)(%s)" (base_ty_to_string t) (expr_to_string a)
  | Eternary (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
      (expr_to_string b)

let decl_to_string ty name init =
  match (ty, init) with
  | Tarr (n, elt), None -> Printf.sprintf "%s %s[%d]" (base_ty_to_string elt) name n
  | Tarr _, Some _ -> invalid_arg "Pretty: array declaration with initializer"
  | _, None -> Printf.sprintf "%s %s" (base_ty_to_string ty) name
  | _, Some e -> Printf.sprintf "%s %s = %s" (base_ty_to_string ty) name
                   (expr_to_string e)

(* A statement usable as a [for] clause (no trailing semicolon). *)
let simple_to_string = function
  | Sdecl (ty, x, init) -> decl_to_string ty x init
  | Sassign (lhs, rhs) ->
    Printf.sprintf "%s = %s" (expr_to_string lhs) (expr_to_string rhs)
  | Sexpr e -> expr_to_string e
  | _ -> invalid_arg "Pretty: statement not allowed in a for clause"

let rec stmt buf ind (s : stmt) : unit =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match s with
  | Sdecl (ty, x, init) -> pf "%s%s;\n" ind (decl_to_string ty x init)
  | Sassign (lhs, rhs) ->
    pf "%s%s = %s;\n" ind (expr_to_string lhs) (expr_to_string rhs)
  | Sif (c, then_, else_) ->
    pf "%sif (%s) {\n" ind (expr_to_string c);
    stmts buf (ind ^ "  ") then_;
    if else_ = [] then pf "%s}\n" ind
    else begin
      pf "%s} else {\n" ind;
      stmts buf (ind ^ "  ") else_;
      pf "%s}\n" ind
    end
  | Swhile (c, body) ->
    pf "%swhile (%s) {\n" ind (expr_to_string c);
    stmts buf (ind ^ "  ") body;
    pf "%s}\n" ind
  | Sfor (init, cond, step, body) ->
    pf "%sfor (%s; %s; %s) {\n" ind
      (match init with Some s -> simple_to_string s | None -> "")
      (match cond with Some e -> expr_to_string e | None -> "")
      (match step with Some s -> simple_to_string s | None -> "");
    stmts buf (ind ^ "  ") body;
    pf "%s}\n" ind
  | Sreturn None -> pf "%sreturn;\n" ind
  | Sreturn (Some e) -> pf "%sreturn %s;\n" ind (expr_to_string e)
  | Sbreak -> pf "%sbreak;\n" ind
  | Scontinue -> pf "%scontinue;\n" ind
  | Sexpr e -> pf "%s%s;\n" ind (expr_to_string e)
  | Sblock body ->
    pf "%s{\n" ind;
    stmts buf (ind ^ "  ") body;
    pf "%s}\n" ind

and stmts buf ind ss = List.iter (stmt buf ind) ss

let item buf (it : item) : unit =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match it with
  | Istruct { sname; sfields } ->
    pf "struct %s {" sname;
    List.iter
      (fun (f, ty) -> pf " %s %s;" (base_ty_to_string ty) f)
      sfields;
    pf " };\n\n"
  | Iglobal { gdty = Tarr (n, elt); gdname; gdinit = None } ->
    pf "%s %s[%d];\n" (base_ty_to_string elt) gdname n
  | Iglobal { gdty = Tarr _; gdinit = Some _; _ } ->
    invalid_arg "Pretty: global array with initializer"
  | Iglobal { gdty; gdname; gdinit = None } ->
    pf "%s %s;\n" (base_ty_to_string gdty) gdname
  | Iglobal { gdty; gdname; gdinit = Some n } ->
    pf "%s %s = %d;\n" (base_ty_to_string gdty) gdname n
  | Ifunc { fret; fdname; fparams; fbody } ->
    pf "%s %s(%s) {\n" (base_ty_to_string fret) fdname
      (String.concat ", "
         (List.map
            (fun (ty, p) -> Printf.sprintf "%s %s" (base_ty_to_string ty) p)
            fparams));
    stmts buf "  " fbody;
    pf "}\n\n"

let program_to_string (p : program) : string =
  let buf = Buffer.create 4096 in
  List.iter (item buf) p;
  Buffer.contents buf
