(** Hand-rolled lexer for TinyC. Supports // and /* */ comments. *)

(** Tokenize a whole source string (the last element is EOF).
    @raise Diag.Error with phase [Diag.Lex] and line/col on bad input. *)
val tokenize : string -> Token.spanned list
