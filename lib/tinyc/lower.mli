(** Lowering TinyC ASTs to the LLVM-like IR, mirroring clang -O0: every
    local gets a stack allocation in the entry block and is accessed
    through loads and stores (mem2reg later promotes the scalars whose
    address does not escape); the C address-of operator disappears;
    [malloc]/[calloc] become heap allocations. *)

val lower_program : Ast.program -> Ir.Prog.t

(** Parse and lower a TinyC source string.
    @raise Diag.Error with phase [Diag.Lower] on semantic errors (unknown
    names, arity mismatches, ...), [Diag.Parse]/[Diag.Lex] from the
    frontend stages. *)
val compile : string -> Ir.Prog.t
