(* Hand-rolled lexer for TinyC. Supports // and /* */ comments.
   Errors are located structured diagnostics: [Diag.Error] with phase
   [Diag.Lex] and the current line/col. *)

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let create src = { src; pos = 0; line = 1; col = 1 }

let fail lx fmt =
  Diag.error ~loc:{ Diag.line = lx.line; col = lx.col } Diag.Lex fmt

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when peek2 lx = Some '/' ->
    while peek lx <> None && peek lx <> Some '\n' do advance lx done;
    skip_ws lx
  | Some '/' when peek2 lx = Some '*' ->
    advance lx; advance lx;
    let rec loop () =
      match (peek lx, peek2 lx) with
      | Some '*', Some '/' -> advance lx; advance lx
      | Some _, _ -> advance lx; loop ()
      | None, _ -> fail lx "unterminated comment"
    in
    loop ();
    skip_ws lx
  | _ -> ()

let keyword = function
  | "int" -> Some Token.KW_INT
  | "void" -> Some Token.KW_VOID
  | "struct" -> Some Token.KW_STRUCT
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "sizeof" -> Some Token.KW_SIZEOF
  | _ -> None

let next (lx : t) : Token.spanned =
  skip_ws lx;
  let line = lx.line and col = lx.col in
  let mk tok = { Token.tok; line; col } in
  match peek lx with
  | None -> mk Token.EOF
  | Some c when is_digit c ->
    let start = lx.pos in
    while (match peek lx with Some c -> is_digit c | None -> false) do advance lx done;
    mk (Token.INT (int_of_string (String.sub lx.src start (lx.pos - start))))
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek lx with Some c -> is_ident_char c | None -> false) do advance lx done;
    let s = String.sub lx.src start (lx.pos - start) in
    mk (match keyword s with Some k -> k | None -> Token.IDENT s)
  | Some c ->
    let two expect tok1 tok0 =
      advance lx;
      if peek lx = Some expect then begin advance lx; mk tok1 end else mk tok0
    in
    (match c with
    | '(' -> advance lx; mk Token.LPAREN
    | ')' -> advance lx; mk Token.RPAREN
    | '{' -> advance lx; mk Token.LBRACE
    | '}' -> advance lx; mk Token.RBRACE
    | '[' -> advance lx; mk Token.LBRACKET
    | ']' -> advance lx; mk Token.RBRACKET
    | ';' -> advance lx; mk Token.SEMI
    | '?' -> advance lx; mk Token.QUESTION
    | ':' -> advance lx; mk Token.COLON
    | ',' -> advance lx; mk Token.COMMA
    | '.' -> advance lx; mk Token.DOT
    | '+' -> two '=' Token.PLUSEQ Token.PLUS
    | '-' ->
      advance lx;
      (match peek lx with
      | Some '>' -> advance lx; mk Token.ARROW
      | Some '=' -> advance lx; mk Token.MINUSEQ
      | _ -> mk Token.MINUS)
    | '*' -> two '=' Token.STAREQ Token.STAR
    | '/' -> advance lx; mk Token.SLASH
    | '%' -> advance lx; mk Token.PERCENT
    | '~' -> advance lx; mk Token.TILDE
    | '^' -> advance lx; mk Token.CARET
    | '&' -> two '&' Token.ANDAND Token.AMP
    | '|' -> two '|' Token.OROR Token.PIPE
    | '!' -> two '=' Token.NE Token.BANG
    | '=' -> two '=' Token.EQ Token.ASSIGN
    | '<' ->
      advance lx;
      (match peek lx with
      | Some '=' -> advance lx; mk Token.LE
      | Some '<' -> advance lx; mk Token.SHL
      | _ -> mk Token.LT)
    | '>' ->
      advance lx;
      (match peek lx with
      | Some '=' -> advance lx; mk Token.GE
      | Some '>' -> advance lx; mk Token.SHR
      | _ -> mk Token.GT)
    | c -> fail lx "unexpected character %C" c)

(** Tokenize a whole source string. *)
let tokenize (src : string) : Token.spanned list =
  let lx = create src in
  let rec loop acc =
    let t = next lx in
    if t.Token.tok = Token.EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []
