(** TinyC AST pretty-printer: renders an {!Ast.program} back to concrete
    syntax accepted by {!Parser.parse_program}.

    Round-trip stable: [parse_program (program_to_string ast)] is
    structurally equal to [ast] for every AST the parser can produce
    (expressions are fully parenthesized; parentheses are transparent in
    the AST). This is the bridge that lets the soundness sentinel
    (lib/audit) mutate and delta-debug programs at the AST level while
    driving them through the unmodified front end. *)

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string
