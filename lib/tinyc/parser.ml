(* Recursive-descent parser for TinyC with precedence climbing. *)

open Token

type t = { toks : Token.spanned array; mutable cur : int }

let create toks = { toks = Array.of_list toks; cur = 0 }

let peek p = p.toks.(p.cur).tok
let peek_at p n =
  if p.cur + n < Array.length p.toks then p.toks.(p.cur + n).tok else EOF

(* Parse errors are located structured diagnostics anchored at the current
   token, which also names itself in the message. *)
let fail p fmt =
  let { tok; line; col } = p.toks.(p.cur) in
  Fmt.kstr
    (fun s ->
      Diag.error ~loc:{ Diag.line; col } Diag.Parse "near %S: %s"
        (Token.to_string tok) s)
    fmt

let advance p = p.cur <- p.cur + 1

let expect p tok =
  if peek p = tok then advance p
  else fail p "expected %S" (Token.to_string tok)

let eat_ident p =
  match peek p with
  | IDENT s -> advance p; s
  | _ -> fail p "expected identifier"

(* ---- types ---- *)

let starts_type p =
  match peek p with KW_INT | KW_VOID | KW_STRUCT -> true | _ -> false

let parse_base_type p : Ast.ty =
  match peek p with
  | KW_INT -> advance p; Ast.Tint
  | KW_VOID -> advance p; Ast.Tvoid
  | KW_STRUCT ->
    advance p;
    let name = eat_ident p in
    Ast.Tstruct name
  | _ -> fail p "expected a type"

let parse_type p : Ast.ty =
  let base = parse_base_type p in
  let rec stars ty = if peek p = STAR then (advance p; stars (Ast.Tptr ty)) else ty in
  stars base

(* ---- expressions ---- *)

let binop_of_token = function
  | PLUS -> Some Ast.Badd | MINUS -> Some Ast.Bsub
  | STAR -> Some Ast.Bmul | SLASH -> Some Ast.Bdiv | PERCENT -> Some Ast.Brem
  | AMP -> Some Ast.Band | PIPE -> Some Ast.Bor | CARET -> Some Ast.Bxor
  | SHL -> Some Ast.Bshl | SHR -> Some Ast.Bshr
  | LT -> Some Ast.Blt | LE -> Some Ast.Ble | GT -> Some Ast.Bgt | GE -> Some Ast.Bge
  | EQ -> Some Ast.Beq | NE -> Some Ast.Bne
  | ANDAND -> Some Ast.Bland | OROR -> Some Ast.Blor
  | _ -> None

let precedence = function
  | Ast.Blor -> 1
  | Ast.Bland -> 2
  | Ast.Bor -> 3
  | Ast.Bxor -> 4
  | Ast.Band -> 5
  | Ast.Beq | Ast.Bne -> 6
  | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge -> 7
  | Ast.Bshl | Ast.Bshr -> 8
  | Ast.Badd | Ast.Bsub -> 9
  | Ast.Bmul | Ast.Bdiv | Ast.Brem -> 10

let rec parse_expr p : Ast.expr =
  (* conditional expressions sit above the binary operators and associate
     to the right, as in C *)
  let cond = parse_binary p 1 in
  if peek p = QUESTION then begin
    advance p;
    let then_ = parse_expr p in
    expect p COLON;
    let else_ = parse_expr p in
    Ast.Eternary (cond, then_, else_)
  end
  else cond

and parse_binary p min_prec : Ast.expr =
  let lhs = ref (parse_unary p) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek p) with
    | Some op when precedence op >= min_prec ->
      advance p;
      let rhs = parse_binary p (precedence op + 1) in
      lhs := Ast.Ebinop (op, !lhs, rhs)
    | Some _ | None -> continue_ := false
  done;
  !lhs

and parse_unary p : Ast.expr =
  match peek p with
  | MINUS -> advance p; Ast.Eunop (Ast.Uneg, parse_unary p)
  | TILDE -> advance p; Ast.Eunop (Ast.Unot, parse_unary p)
  | BANG -> advance p; Ast.Eunop (Ast.Ulnot, parse_unary p)
  | STAR -> advance p; Ast.Ederef (parse_unary p)
  | AMP -> advance p; Ast.Eaddr (parse_unary p)
  | KW_SIZEOF ->
    advance p;
    expect p LPAREN;
    let ty = parse_type p in
    expect p RPAREN;
    Ast.Esizeof ty
  | LPAREN when (match peek_at p 1 with KW_INT | KW_VOID | KW_STRUCT -> true | _ -> false) ->
    advance p;
    let ty = parse_type p in
    expect p RPAREN;
    Ast.Ecast (ty, parse_unary p)
  | _ -> parse_postfix p

and parse_postfix p : Ast.expr =
  let e = ref (parse_primary p) in
  let continue_ = ref true in
  while !continue_ do
    match peek p with
    | LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p RBRACKET;
      e := Ast.Eindex (!e, idx)
    | DOT ->
      advance p;
      e := Ast.Efield (!e, eat_ident p)
    | ARROW ->
      advance p;
      e := Ast.Earrow (!e, eat_ident p)
    | LPAREN ->
      advance p;
      let args = parse_args p in
      expect p RPAREN;
      e := (match !e with
        | Ast.Eident f -> Ast.Ecall (f, args)
        | other -> Ast.Eicall (other, args))
    | _ -> continue_ := false
  done;
  !e

and parse_args p : Ast.expr list =
  if peek p = RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr p in
      if peek p = COMMA then (advance p; loop (e :: acc))
      else List.rev (e :: acc)
    in
    loop []
  end

and parse_primary p : Ast.expr =
  match peek p with
  | INT n -> advance p; Ast.Eint n
  | IDENT s -> advance p; Ast.Eident s
  | LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p RPAREN;
    e
  | _ -> fail p "expected expression"

(* ---- statements ---- *)

let rec parse_stmt p : Ast.stmt =
  match peek p with
  | LBRACE -> Ast.Sblock (parse_block p)
  | KW_IF ->
    advance p;
    expect p LPAREN;
    let cond = parse_expr p in
    expect p RPAREN;
    let then_ = parse_stmt_as_block p in
    let else_ =
      if peek p = KW_ELSE then (advance p; parse_stmt_as_block p) else []
    in
    Ast.Sif (cond, then_, else_)
  | KW_WHILE ->
    advance p;
    expect p LPAREN;
    let cond = parse_expr p in
    expect p RPAREN;
    Ast.Swhile (cond, parse_stmt_as_block p)
  | KW_FOR ->
    advance p;
    expect p LPAREN;
    let init = if peek p = SEMI then None else Some (parse_simple p) in
    expect p SEMI;
    let cond = if peek p = SEMI then None else Some (parse_expr p) in
    expect p SEMI;
    let step = if peek p = RPAREN then None else Some (parse_simple p) in
    expect p RPAREN;
    Ast.Sfor (init, cond, step, parse_stmt_as_block p)
  | KW_RETURN ->
    advance p;
    let e = if peek p = SEMI then None else Some (parse_expr p) in
    expect p SEMI;
    Ast.Sreturn e
  | KW_BREAK -> advance p; expect p SEMI; Ast.Sbreak
  | KW_CONTINUE -> advance p; expect p SEMI; Ast.Scontinue
  | KW_INT | KW_VOID | KW_STRUCT ->
    let s = parse_decl p in
    expect p SEMI;
    s
  | _ ->
    let s = parse_simple p in
    expect p SEMI;
    s

(** Declaration without the trailing semicolon:
    [ty x], [ty x = e], [ty x\[N\]]. *)
and parse_decl p : Ast.stmt =
  let ty = parse_type p in
  let name = eat_ident p in
  if peek p = LBRACKET then begin
    advance p;
    let n =
      match peek p with
      | INT n -> advance p; n
      | _ -> fail p "array size must be an integer literal"
    in
    expect p RBRACKET;
    Ast.Sdecl (Ast.Tarr (n, ty), name, None)
  end
  else if peek p = ASSIGN then begin
    advance p;
    Ast.Sdecl (ty, name, Some (parse_expr p))
  end
  else Ast.Sdecl (ty, name, None)

(** Assignment or expression statement, without the semicolon (usable as a
    [for] clause). *)
and parse_simple p : Ast.stmt =
  if starts_type p then parse_decl p
  else begin
    let lhs = parse_expr p in
    match peek p with
    | ASSIGN ->
      advance p;
      let rhs = parse_expr p in
      Ast.Sassign (lhs, rhs)
    | PLUSEQ ->
      advance p;
      let rhs = parse_expr p in
      Ast.Sassign (lhs, Ast.Ebinop (Ast.Badd, lhs, rhs))
    | MINUSEQ ->
      advance p;
      let rhs = parse_expr p in
      Ast.Sassign (lhs, Ast.Ebinop (Ast.Bsub, lhs, rhs))
    | STAREQ ->
      advance p;
      let rhs = parse_expr p in
      Ast.Sassign (lhs, Ast.Ebinop (Ast.Bmul, lhs, rhs))
    | _ -> Ast.Sexpr lhs
  end

and parse_stmt_as_block p : Ast.stmt list =
  match parse_stmt p with Ast.Sblock ss -> ss | s -> [ s ]

and parse_block p : Ast.stmt list =
  expect p LBRACE;
  let rec loop acc =
    if peek p = RBRACE then (advance p; List.rev acc)
    else loop (parse_stmt p :: acc)
  in
  loop []

(* ---- top level ---- *)

let parse_struct p : Ast.struct_def =
  expect p KW_STRUCT;
  let sname = eat_ident p in
  expect p LBRACE;
  let rec fields acc =
    if peek p = RBRACE then (advance p; List.rev acc)
    else begin
      let ty = parse_type p in
      let name = eat_ident p in
      expect p SEMI;
      fields ((name, ty) :: acc)
    end
  in
  let sfields = fields [] in
  expect p SEMI;
  { Ast.sname; sfields }

let parse_item p : Ast.item =
  if peek p = KW_STRUCT && peek_at p 2 = LBRACE then Ast.Istruct (parse_struct p)
  else begin
    let ty = parse_type p in
    let name = eat_ident p in
    match peek p with
    | LPAREN ->
      advance p;
      let rec params acc =
        if peek p = RPAREN then (advance p; List.rev acc)
        else begin
          let pty = parse_type p in
          let pname = eat_ident p in
          let acc = (pty, pname) :: acc in
          if peek p = COMMA then (advance p; params acc)
          else (expect p RPAREN; List.rev acc)
        end
      in
      let fparams = params [] in
      let fbody = parse_block p in
      Ast.Ifunc { Ast.fret = ty; fdname = name; fparams; fbody }
    | LBRACKET ->
      advance p;
      let n =
        match peek p with
        | INT n -> advance p; n
        | _ -> fail p "global array size must be an integer literal"
      in
      expect p RBRACKET;
      expect p SEMI;
      Ast.Iglobal { Ast.gdty = Ast.Tarr (n, ty); gdname = name; gdinit = None }
    | ASSIGN ->
      advance p;
      let n =
        match peek p with
        | INT n -> advance p; n
        | MINUS ->
          advance p;
          (match peek p with
          | INT n -> advance p; -n
          | _ -> fail p "global initializer must be an integer literal")
        | _ -> fail p "global initializer must be an integer literal"
      in
      expect p SEMI;
      Ast.Iglobal { Ast.gdty = ty; gdname = name; gdinit = Some n }
    | SEMI ->
      advance p;
      Ast.Iglobal { Ast.gdty = ty; gdname = name; gdinit = None }
    | _ -> fail p "expected '(', '[', '=' or ';' after top-level declarator"
  end

let parse_program (src : string) : Ast.program =
  let p = create (Lexer.tokenize src) in
  let rec loop acc =
    if peek p = EOF then List.rev acc else loop (parse_item p :: acc)
  in
  loop []
