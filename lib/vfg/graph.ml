(* The value-flow graph (§3.2): nodes are SSA definitions (top-level and
   memory versions) plus the two roots T (defined) and F (undefined); an edge
   [v -> w] records that v's value data-depends on w's. Interprocedural edges
   carry their call-site label so definedness resolution can match calls with
   returns. Nodes are interned to dense integers. *)

open Ir.Types

type loc = int

type node =
  | Root_t
  | Root_f
  | Top of var                   (* an SSA top-level definition *)
  | Mem of fname * loc * int     (* a memory SSA version *)

type edge_kind =
  | Eintra
  | Ecall of label               (* callee formal -> caller actual at site *)
  | Eret of label                (* caller result -> callee return at site *)

(** Where a node is defined — consumed by the instrumentation rules. *)
type def_site =
  | Droot
  | Dinstr of fname * label      (* top-level def at an instruction *)
  | Dparam of fname              (* function formal parameter *)
  | Dchi of fname * label        (* memory def at a store/alloc/call chi *)
  | Dmemphi of fname * blockid   (* memory phi *)
  | Dentry of fname              (* memory version 1: virtual input or
                                    pseudo-entry of a local stack object *)

(** The quotient of the graph by its intraprocedural ([Eintra]) strongly-
    connected components. Within such an SCC every node reaches every other
    without crossing a call or return, so any context-sensitive reachability
    result is uniform across the component — resolution can run over the
    condensation and distribute the answer to members, exactly. *)
type condensation = {
  comp : int array;         (* node id -> component id *)
  ncomps : int;
  members_off : int array;  (* CSR offsets, length ncomps+1 *)
  members : int array;      (* node ids grouped by component *)
  cpred_off : int array;    (* CSR offsets, length ncomps+1 *)
  cpred : int array;        (* reversed edges, one packed int each:
                               [comp lsl ckind_bits lor kind] with kind
                               0 = Eintra, 2l+1 = Ecall l, 2l+2 = Eret l;
                               deduped, intra-component Eintra dropped *)
  ckind_bits : int;         (* bit width of the kind field in [cpred] *)
  nontrivial_sccs : int;    (* components with >= 2 members *)
  max_label : int;          (* highest call-site label on any edge, or -1 *)
}

type t = {
  mutable nnodes : int;
  ids : (node, int) Hashtbl.t;
  mutable rev : node array;                     (* id -> node *)
  mutable succs : (int * edge_kind) list array; (* dependencies of each node *)
  mutable preds : (int * edge_kind) list array; (* dependents of each node *)
  mutable defs : def_site array;
  edge_seen : (int * int * edge_kind, unit) Hashtbl.t;
  mutable nedges : int;
  mutable version : int;    (* bumped on any node/edge mutation *)
  mutable cond : (int * condensation) option;   (* cache, keyed by version *)
}

let dummy_node = Root_t

let create () =
  let t =
    {
      nnodes = 0;
      ids = Hashtbl.create 1024;
      rev = Array.make 1024 dummy_node;
      succs = Array.make 1024 [];
      preds = Array.make 1024 [];
      defs = Array.make 1024 Droot;
      edge_seen = Hashtbl.create 4096;
      nedges = 0;
      version = 0;
      cond = None;
    }
  in
  t

let grow t n =
  if n > Array.length t.rev then begin
    let cap = max n (2 * Array.length t.rev) in
    let rev = Array.make cap dummy_node in
    Array.blit t.rev 0 rev 0 t.nnodes;
    t.rev <- rev;
    let succs = Array.make cap [] in
    Array.blit t.succs 0 succs 0 t.nnodes;
    t.succs <- succs;
    let preds = Array.make cap [] in
    Array.blit t.preds 0 preds 0 t.nnodes;
    t.preds <- preds;
    let defs = Array.make cap Droot in
    Array.blit t.defs 0 defs 0 t.nnodes;
    t.defs <- defs
  end

let intern t (n : node) : int =
  match Hashtbl.find_opt t.ids n with
  | Some id -> id
  | None ->
    let id = t.nnodes in
    grow t (id + 1);
    t.nnodes <- id + 1;
    Hashtbl.replace t.ids n id;
    t.rev.(id) <- n;
    t.version <- t.version + 1;
    id

let node_of t id = t.rev.(id)
let find t n = Hashtbl.find_opt t.ids n

let set_def t id d = t.defs.(id) <- d
let def_of t id = t.defs.(id)

let add_edge t ~(src : int) ~(dst : int) (k : edge_kind) =
  if not (Hashtbl.mem t.edge_seen (src, dst, k)) then begin
    Hashtbl.replace t.edge_seen (src, dst, k) ();
    t.succs.(src) <- (dst, k) :: t.succs.(src);
    t.preds.(dst) <- (src, k) :: t.preds.(dst);
    t.nedges <- t.nedges + 1;
    t.version <- t.version + 1
  end

(** Remove one specific edge, if present; used by fault injection
    (drop-vfg-edge) to seed a structural bug the verifier must catch. *)
let remove_edge t ~(src : int) ~(dst : int) (k : edge_kind) =
  if Hashtbl.mem t.edge_seen (src, dst, k) then begin
    Hashtbl.remove t.edge_seen (src, dst, k);
    t.succs.(src) <-
      List.filter (fun (d, k') -> not (d = dst && k' = k)) t.succs.(src);
    t.preds.(dst) <-
      List.filter (fun (s, k') -> not (s = src && k' = k)) t.preds.(dst);
    t.nedges <- t.nedges - 1;
    t.version <- t.version + 1
  end

(** Remove every edge out of [src]; used by Opt II's rewiring. *)
let clear_succs t (src : int) =
  List.iter
    (fun (dst, k) ->
      Hashtbl.remove t.edge_seen (src, dst, k);
      t.preds.(dst) <- List.filter (fun (s, k') -> not (s = src && k' = k)) t.preds.(dst);
      t.nedges <- t.nedges - 1)
    t.succs.(src);
  t.succs.(src) <- [];
  t.version <- t.version + 1

let succs t id = t.succs.(id)
let preds t id = t.preds.(id)
let nnodes t = t.nnodes
let nedges t = t.nedges

let node_to_string (p : Ir.Prog.t) (objects : Analysis.Objects.t) = function
  | Root_t -> "T"
  | Root_f -> "F"
  | Top v -> Ir.Prog.var_name p v
  | Mem (f, l, ver) ->
    Printf.sprintf "%s:%s_%d" f (Analysis.Objects.loc_name objects l) ver

let iter_nodes f t =
  for id = 0 to t.nnodes - 1 do
    f id t.rev.(id)
  done

(** Deep copy, so Opt II can rewire a scratch graph while guided
    instrumentation keeps the original (Algorithm 1, line 9's caveat). *)
let copy t =
  {
    nnodes = t.nnodes;
    ids = Hashtbl.copy t.ids;
    rev = Array.copy t.rev;
    succs = Array.copy t.succs;
    preds = Array.copy t.preds;
    defs = Array.copy t.defs;
    edge_seen = Hashtbl.copy t.edge_seen;
    nedges = t.nedges;
    version = t.version;
    (* The cached condensation is immutable; sharing it is safe — any
       mutation of the copy bumps its version and recomputes. *)
    cond = t.cond;
  }

(* Iterative Tarjan over the Eintra-only subgraph. *)
let compute_condensation t : condensation =
  let n = t.nnodes in
  let comp = Array.make n (-1) in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Bytes.make n '\000' in
  let stack = ref [] in
  let ncomps = ref 0 in
  let idx = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      index.(root) <- !idx;
      lowlink.(root) <- !idx;
      incr idx;
      stack := root :: !stack;
      Bytes.set on_stack root '\001';
      let frames = ref [ (root, ref t.succs.(root)) ] in
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, rest) :: tl -> (
          match !rest with
          | (w, Eintra) :: more when index.(w) = -1 ->
            rest := more;
            index.(w) <- !idx;
            lowlink.(w) <- !idx;
            incr idx;
            stack := w :: !stack;
            Bytes.set on_stack w '\001';
            frames := (w, ref t.succs.(w)) :: !frames
          | (w, Eintra) :: more ->
            rest := more;
            if Bytes.get on_stack w = '\001' && index.(w) < lowlink.(v) then
              lowlink.(v) <- index.(w)
          | (_, (Ecall _ | Eret _)) :: more -> rest := more
          | [] ->
            frames := tl;
            (match tl with
            | (u, _) :: _ ->
              if lowlink.(v) < lowlink.(u) then lowlink.(u) <- lowlink.(v)
            | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let c = !ncomps in
              incr ncomps;
              let last = ref (-1) in
              while !last <> v do
                match !stack with
                | w :: rest' ->
                  stack := rest';
                  Bytes.set on_stack w '\000';
                  comp.(w) <- c;
                  last := w
                | [] -> last := v
              done
            end)
      done
    end
  done;
  let ncomps = !ncomps in
  (* Members, CSR by counting sort. *)
  let members_off = Array.make (ncomps + 1) 0 in
  for v = 0 to n - 1 do
    members_off.(comp.(v) + 1) <- members_off.(comp.(v) + 1) + 1
  done;
  let nontrivial = ref 0 in
  for c = 1 to ncomps do
    if members_off.(c) >= 2 then incr nontrivial;
    members_off.(c) <- members_off.(c) + members_off.(c - 1)
  done;
  let members = Array.make n 0 in
  let fill = Array.copy members_off in
  for v = 0 to n - 1 do
    let c = comp.(v) in
    members.(fill.(c)) <- v;
    fill.(c) <- fill.(c) + 1
  done;
  (* Component-level reversed edges, deduped per (pred-comp, comp, kind) by
     sorting packed keys; Eintra edges inside one component vanish, which
     is the whole point. Kinds pack as 0 / 2l+1 / 2l+2. *)
  let max_label = ref (-1) in
  for v = 0 to n - 1 do
    List.iter
      (fun (_, k) ->
        match k with
        | Eintra -> ()
        | Ecall l | Eret l -> if l > !max_label then max_label := l)
      t.preds.(v)
  done;
  let kspan = (2 * (!max_label + 1)) + 1 in
  let keys = Array.make t.nedges 0 in
  let nkeys = ref 0 in
  for v = 0 to n - 1 do
    let cv = comp.(v) in
    List.iter
      (fun (u, k) ->
        let cu = comp.(u) in
        let kc =
          match k with Eintra -> 0 | Ecall l -> (2 * l) + 1 | Eret l -> (2 * l) + 2
        in
        if not (cu = cv && kc = 0) then begin
          keys.(!nkeys) <- ((((cv * ncomps) + cu) * kspan) + kc);
          incr nkeys
        end)
      t.preds.(v)
  done;
  let keys = Array.sub keys 0 !nkeys in
  Array.sort Int.compare keys;
  let nuniq = ref 0 in
  Array.iteri
    (fun i k -> if i = 0 || keys.(i - 1) <> k then incr nuniq)
    keys;
  let cpred_off = Array.make (ncomps + 1) 0 in
  let cpred = Array.make !nuniq 0 in
  (* One packed int per edge keeps the hot search loop to a single random
     load; the kind field is sized to the label range. *)
  let ckind_bits =
    let b = ref 1 in
    while 1 lsl !b < kspan do incr b done;
    !b
  in
  let j = ref 0 in
  Array.iteri
    (fun i key ->
      if i = 0 || keys.(i - 1) <> key then begin
        let cu_kc = key in
        let kc = cu_kc mod kspan in
        let rest = cu_kc / kspan in
        let cu = rest mod ncomps in
        let cv = rest / ncomps in
        cpred.(!j) <- (cu lsl ckind_bits) lor kc;
        cpred_off.(cv + 1) <- !j + 1;
        incr j
      end)
    keys;
  (* cpred_off.(c+1) currently holds the end index only for components with
     edges; make it a proper running maximum. *)
  for c = 1 to ncomps do
    if cpred_off.(c) < cpred_off.(c - 1) then
      cpred_off.(c) <- cpred_off.(c - 1)
  done;
  {
    comp;
    ncomps;
    members_off;
    members;
    cpred_off;
    cpred;
    ckind_bits;
    nontrivial_sccs = !nontrivial;
    max_label = !max_label;
  }

let condensation t : condensation =
  match t.cond with
  | Some (v, c) when v = t.version -> c
  | _ ->
    let c = compute_condensation t in
    t.cond <- Some (t.version, c);
    c
