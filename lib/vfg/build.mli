(** VFG construction (§3.2) with the three update flavours at stores:

    - {b strong} — the pointer targets a single concrete location (a scalar
      global, or a scalar stack slot of a non-recursive function): the old
      version is killed;
    - {b semi-strong} — the paper's novel rule (Fig. 6): the pointer
      provably derives from one allocation site that dominates the store
      and the location is a scalar, so the flow bypasses intermediate
      versions back to the version before the allocation;
    - {b weak} — everything else: the old version flows on.

    With [track_memory = false] the builder produces the Usher_TL graph:
    loads conservatively depend on the F root and memory nodes do not
    exist. *)

open Ir.Types

type update_kind = Strong | Semi_strong | Weak

type config = {
  track_memory : bool;     (** false = Usher_TL *)
  semi_strong : bool;      (** ablation knob *)
}

val default_config : config

(** A critical operation (the paper's Definition 1): the statement label,
    the operand whose definedness is checked, and the enclosing function. *)
type critical = { clbl : label; cop : operand; cfunc : fname }

type t = {
  graph : Graph.t;
  prog : Ir.Prog.t;
  pa : Analysis.Andersen.t;
  cg : Analysis.Callgraph.t;
  mr : Analysis.Modref.t;
  mssa : Memssa.t;
  config : config;
  criticals : critical list;
  store_kind : (label, update_kind) Hashtbl.t;
  semi_strong_cuts : int;
  ret_operands : (fname, (label * operand option) list) Hashtbl.t;
}

(** Does the pointer [x] derive exclusively from the allocation destination
    [z] through copies, phis and address computations? (The semi-strong
    derivation test; exposed for tests.) *)
val derives_only_from_alloc :
  (var, instr_kind) Hashtbl.t -> var -> var -> bool

(** Build the VFG. [budget] adds a per-function deadline tick and the node
    cap; [hook] runs before each function (fault injection from the
    driver); [on_fault] — when given — catches any exception raised while
    processing one function and reports it, leaving that function's
    value-flow fragment partial. Partial fragments are only sound if the
    caller then distrusts those functions (see {!force_distrusted}). *)
val build :
  ?config:config ->
  ?budget:Diag.Budget.t ->
  ?hook:(fname -> unit) ->
  ?on_fault:(fname -> exn -> unit) ->
  Ir.Prog.t ->
  Analysis.Andersen.t ->
  Analysis.Callgraph.t ->
  Analysis.Modref.t ->
  Memssa.t ->
  t

(** Soundness forcing for per-function degradation: pin every node defined
    in a distrusted function — plus the full call interface between
    distrusted and trusted code — to the F root, so a re-resolved Γ treats
    everything the distrusted set may influence as potentially undefined.
    Adding edges only grows the ⊥ set, so the degraded Γ stays sound. *)
val force_distrusted : t -> (fname, 'a) Hashtbl.t -> unit

(** Store classification counts for Table 1's %SU / %WU columns. *)
type store_stats = {
  total_stores : int;
  strong : int;
  semi : int;
  weak_singleton : int;   (** singleton points-to but weak/semi update *)
  weak_other : int;
}

val store_stats : t -> store_stats
