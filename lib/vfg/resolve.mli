(** Definedness resolution (§3.3): [Gamma(v) = bot] iff v reaches the F root
    along a realizable path — interprocedural flows must match call and
    return edges, approximated with 1-callsite call strings (the paper's
    configuration). Matching only ever excludes unrealizable paths, so the
    analysis stays sound.

    By default the search runs over the graph's Eintra-SCC condensation
    ({!Graph.condensation}), visiting each component once per context
    instead of once per member — the resulting Γ is identical. *)

type gamma = {
  undef : Bytes.t;           (** Γ(v) = ⊥, one byte per node id *)
  states_explored : int;
  condensed_sccs : int;
      (** nontrivial SCCs the search collapsed (0 when run uncondensed) *)
}

val is_undef : gamma -> int -> bool

(** Generic seeded reachability over reversed edges with call/return
    matching — the engine behind {!resolve} and other forward-flow clients
    of the VFG (e.g. {!Client_taint}). [undef] reads as "reached from a
    seed along a realizable path". [condense] (default true) runs over the
    SCC condensation; [false] keeps the node-level search as the reference
    path for the equivalence properties. *)
val reach :
  ?context_sensitive:bool -> ?condense:bool -> ?budget:Diag.Budget.t ->
  Graph.t -> seeds:int list -> gamma

val resolve :
  ?context_sensitive:bool -> ?condense:bool -> ?budget:Diag.Budget.t ->
  Graph.t -> gamma

(** The everything-⊥ Γ — the sound fallback when resolution faults or runs
    out of budget: more ⊥ only ever adds instrumentation. *)
val all_bot : Graph.t -> gamma

(** Count of ⊥ nodes, for precision ablations. *)
val undef_count : gamma -> int
