(* VFG construction (§3.2) with the three update flavours at stores:

   - strong     — the pointer targets a single *concrete* location (a scalar
                  global, or a scalar stack slot of a non-recursive
                  function): the old version is killed;
   - semi-strong — the paper's novel rule (Fig. 6): the pointer provably
                  derives from one allocation site that dominates the store,
                  and the location is a scalar, so the flow bypasses
                  intermediate versions back to the allocation's version;
   - weak       — everything else: the old version flows on.

   With [track_memory = false] the builder produces the Usher_TL graph:
   loads conservatively depend on the F root and memory nodes do not exist. *)

open Ir.Types
module P = Ir.Prog
module Objects = Analysis.Objects
module Bitset = Analysis.Bitset

type update_kind = Strong | Semi_strong | Weak

type config = {
  track_memory : bool;     (* false = Usher_TL *)
  semi_strong : bool;      (* ablation knob *)
}

let default_config = { track_memory = true; semi_strong = true }

(** A critical operation: the statement label, the operand whose definedness
    is checked (Definition 1), and the enclosing function. *)
type critical = { clbl : label; cop : operand; cfunc : fname }

type t = {
  graph : Graph.t;
  prog : P.t;
  pa : Analysis.Andersen.t;
  cg : Analysis.Callgraph.t;
  mr : Analysis.Modref.t;
  mssa : Memssa.t;
  config : config;
  criticals : critical list;
  store_kind : (label, update_kind) Hashtbl.t;
  semi_strong_cuts : int;
  ret_operands : (fname, (label * operand option) list) Hashtbl.t;
      (* per function: every return statement and its operand *)
}

let t_id g = Graph.intern g Graph.Root_t
let f_id g = Graph.intern g Graph.Root_f

let operand_node (g : Graph.t) (fname : fname) (o : operand) : int =
  ignore fname;
  match o with
  | Cst _ -> t_id g
  | Undef -> f_id g
  | Var v -> Graph.intern g (Graph.Top v)

(* Does the pointer [x]'s value derive exclusively from the allocation
   destination [z], through copies, phis and address computations on the
   same object? (The paper's "ẑ dominates x̂ in the VFG".) *)
let derives_only_from_alloc (defs : (var, instr_kind) Hashtbl.t) (x : var)
    (z : var) : bool =
  let visited = Hashtbl.create 8 in
  let rec go v =
    v = z
    || (not (Hashtbl.mem visited v))
       && begin
         Hashtbl.replace visited v ();
         match Hashtbl.find_opt defs v with
         | Some (Copy (_, Var y)) -> go y
         | Some (Phi (_, arms)) ->
           arms <> []
           && List.for_all
                (fun (_, o) -> match o with Var y -> go y | Cst _ | Undef -> false)
                arms
         | Some (Field_addr (_, y, _)) | Some (Index_addr (_, y, _)) -> go y
         | _ -> false
       end
  in
  (* [visited] marks in-progress nodes too: a cycle of phis that never
     reaches [z] fails via the List.for_all on some other arm or denies the
     cyclic arm, which is conservative (cycle => false for that arm). *)
  go x

(** [hook] runs before each function (fault injection from the driver);
    [budget] adds a deadline tick and the VFG node-cap check per function;
    [on_fault] — when given — catches any exception raised while processing
    one function and reports it, leaving that function's value-flow fragment
    partial. A partial fragment is only sound if the caller then distrusts
    the function (see [force_distrusted]). *)
let build ?(config = default_config) ?budget ?hook ?on_fault (p : P.t)
    (pa : Analysis.Andersen.t) (cg : Analysis.Callgraph.t)
    (mr : Analysis.Modref.t) (mssa : Memssa.t) : t =
  let g = Graph.create () in
  let troot = t_id g and froot = f_id g in
  let objects = pa.objects in
  let criticals = ref [] in
  let store_kind = Hashtbl.create 64 in
  let semi_cuts = ref 0 in
  let ret_operands : (fname, (label * operand option) list) Hashtbl.t =
    Hashtbl.create 16
  in
  P.iter_funcs
    (fun f ->
      let rets = ref [] in
      Array.iter
        (fun b ->
          match b.term.tkind with
          | Ret o -> rets := (b.term.tlbl, o) :: !rets
          | Br _ | Jmp _ -> ())
        f.blocks;
      Hashtbl.replace ret_operands f.fname !rets)
    p;
  let mem fname l ver = Graph.intern g (Graph.Mem (fname, l, ver)) in
  (* Per-function processing. *)
  let process_func =
    (fun f ->
      let fn = f.fname in
      let fs = Memssa.func_ssa mssa fn in
      let dom = lazy (Analysis.Dominance.compute f) in
      let pos = lazy (Analysis.Dominance.label_positions f) in
      (* Top-level def table, for semi-strong derivation checks. *)
      let defs : (var, instr_kind) Hashtbl.t = Hashtbl.create 64 in
      Ir.Func.iter_instrs
        (fun _ i ->
          match Ir.Instr.def_of i.kind with
          | Some d -> Hashtbl.replace defs d i.kind
          | None -> ())
        f;
      (* Formal parameters: nodes fed by call edges (added at call sites). *)
      List.iter
        (fun prm ->
          let id = Graph.intern g (Graph.Top prm) in
          Graph.set_def g id (Graph.Dparam fn))
        f.params;
      (* Entry versions of memory locations. *)
      if config.track_memory then begin
        let is_entry = Hashtbl.create 16 in
        List.iter (fun l -> Hashtbl.replace is_entry l ()) fs.entry_locs;
        List.iter
          (fun l ->
            let id = mem fn l 1 in
            Graph.set_def g id (Graph.Dentry fn);
            if fn = "main" then
              (* Program start: globals are default-initialized; instances of
                 anything else cannot exist yet, so version 1 is vacuously
                 defined. *)
              Graph.add_edge g ~src:id ~dst:troot Eintra
            else if not (Hashtbl.mem is_entry l) then
              (* Pseudo-entry of the function's own stack objects: no
                 instance exists before the alloc executes. *)
              Graph.add_edge g ~src:id ~dst:troot Eintra)
          fs.Memssa.tracked;
        (* Memory phis. *)
        Array.iter
          (fun b ->
            List.iter
              (fun (phi : Memssa.memphi) ->
                let id = mem fn phi.mloc phi.mver in
                Graph.set_def g id (Graph.Dmemphi (fn, b.bid));
                List.iter
                  (fun (_, argver) ->
                    Graph.add_edge g ~src:id ~dst:(mem fn phi.mloc argver) Eintra)
                  phi.margs)
              (Memssa.phis_at fs b.bid))
          f.blocks
      end;
      (* Instructions. *)
      Ir.Func.iter_instrs
        (fun _ i ->
          let def_top x =
            let id = Graph.intern g (Graph.Top x) in
            Graph.set_def g id (Graph.Dinstr (fn, i.lbl));
            id
          in
          let dep id o = Graph.add_edge g ~src:id ~dst:(operand_node g fn o) Eintra in
          match i.kind with
          | Const (x, _) -> dep (def_top x) (Cst 0)
          | Copy (x, o) -> dep (def_top x) o
          | Unop (x, _, o) -> dep (def_top x) o
          | Binop (x, _, o1, o2) ->
            let id = def_top x in
            dep id o1;
            dep id o2
          | Phi (x, arms) ->
            let id = def_top x in
            List.iter (fun (_, o) -> dep id o) arms
          | Global_addr (x, _) | Func_addr (x, _) | Input x ->
            dep (def_top x) (Cst 0)
          | Field_addr (x, y, _) -> dep (def_top x) (Var y)
          | Index_addr (x, y, o) ->
            let id = def_top x in
            dep id (Var y);
            dep id o
          | Alloc a ->
            (* x̂ -> T; per location: rho_new -> (T|F) and rho_new -> rho_old. *)
            dep (def_top a.adst) (Cst 0);
            if config.track_memory then
              List.iter
                (fun (l, nv, ov) ->
                  let id = mem fn l nv in
                  Graph.set_def g id (Graph.Dchi (fn, i.lbl));
                  Graph.add_edge g ~src:id
                    ~dst:(if a.initialized then troot else froot)
                    Eintra;
                  Graph.add_edge g ~src:id ~dst:(mem fn l ov) Eintra)
                (Memssa.chi_at fs i.lbl)
          | Load (x, y) ->
            criticals := { clbl = i.lbl; cop = Var y; cfunc = fn } :: !criticals;
            let id = def_top x in
            if config.track_memory then
              List.iter
                (fun (l, ver) -> Graph.add_edge g ~src:id ~dst:(mem fn l ver) Eintra)
                (Memssa.mu_at fs i.lbl)
            else Graph.add_edge g ~src:id ~dst:froot Eintra
          | Store (x, o) ->
            criticals := { clbl = i.lbl; cop = Var x; cfunc = fn } :: !criticals;
            if config.track_memory then begin
              let chis = Memssa.chi_at fs i.lbl in
              (* Update-kind classification. *)
              let kind =
                match chis with
                | [ (l, _, _) ] -> (
                  let o = Objects.loc_obj objects l in
                  let concrete =
                    (not o.oarray)
                    && (match o.okind with
                       | Objects.Obj_global -> true
                       | Objects.Obj_stack ->
                         not (Analysis.Callgraph.is_recursive cg o.oowner)
                       | Objects.Obj_heap | Objects.Obj_func _ -> false)
                  in
                  if concrete then Strong
                  else if not config.semi_strong then Weak
                  else
                    (* Semi-strong: scalar location, allocation site in this
                       function dominating the store, pointer derived from
                       that allocation. *)
                    match
                      (if o.oarray || o.osite < 0 then None
                       else
                         match Ir.Func.find_instr f o.osite with
                         | Some (_, ai) -> (
                           match ai.kind with
                           | Alloc a
                             when Analysis.Dominance.label_dominates
                                    (Lazy.force dom) (Lazy.force pos) o.osite
                                    i.lbl
                                  && derives_only_from_alloc defs x a.adst ->
                             Some a.adst
                           | _ -> None)
                         | None -> None)
                    with
                    | Some _ -> Semi_strong
                    | None -> Weak)
                | _ -> Weak
              in
              Hashtbl.replace store_kind i.lbl kind;
              List.iter
                (fun (l, nv, ov) ->
                  let id = mem fn l nv in
                  Graph.set_def g id (Graph.Dchi (fn, i.lbl));
                  Graph.add_edge g ~src:id ~dst:(operand_node g fn o) Eintra;
                  match kind with
                  | Strong -> ()
                  | Semi_strong ->
                    incr semi_cuts;
                    (* Bypass to rho_j, the version *before* the allocation's
                       chi (Fig. 6: b4 -> b2, skipping b3's F edge): the
                       current instance's uninitialized state is killed, while
                       older instances' flows survive through the pre-alloc
                       version. *)
                    let oo = Objects.loc_obj objects l in
                    let alloc_ver =
                      List.find_map
                        (fun (l', _, ov') -> if l' = l then Some ov' else None)
                        (Memssa.chi_at fs oo.osite)
                    in
                    (match alloc_ver with
                    | Some av -> Graph.add_edge g ~src:id ~dst:(mem fn l av) Eintra
                    | None -> Graph.add_edge g ~src:id ~dst:(mem fn l ov) Eintra)
                  | Weak -> Graph.add_edge g ~src:id ~dst:(mem fn l ov) Eintra)
                chis
            end
            else Hashtbl.replace store_kind i.lbl Weak
          | Call { cdst; cargs; _ } ->
            let targets = Analysis.Callgraph.site_callees cg i.lbl in
            (* Top-level parameter passing: formal -> actual. *)
            List.iter
              (fun gname ->
                match P.find_func p gname with
                | Some callee ->
                  (try
                     List.iter2
                       (fun prm arg ->
                         Graph.add_edge g
                           ~src:(Graph.intern g (Graph.Top prm))
                           ~dst:(operand_node g fn arg) (Ecall i.lbl))
                       callee.params cargs
                   with Invalid_argument _ -> ())
                | None -> ())
              targets;
            (* Return value: x -> callee return operands. *)
            (match cdst with
            | Some x ->
              let id = def_top x in
              List.iter
                (fun gname ->
                  List.iter
                    (fun (_, ro) ->
                      match ro with
                      | Some ro ->
                        Graph.add_edge g ~src:id
                          ~dst:(operand_node g gname ro) (Eret i.lbl)
                      | None ->
                        (* calling a void function for its value: undef *)
                        Graph.add_edge g ~src:id ~dst:froot (Eret i.lbl))
                    (Option.value ~default:[]
                       (Hashtbl.find_opt ret_operands gname)))
                targets
            | None -> ());
            if config.track_memory then begin
              (* Virtual input parameters: callee entry -> caller current. *)
              let cur_ver l =
                match List.assoc_opt l (Memssa.mu_at fs i.lbl) with
                | Some v -> Some v
                | None ->
                  List.find_map
                    (fun (l', _, ov) -> if l' = l then Some ov else None)
                    (Memssa.chi_at fs i.lbl)
              in
              List.iter
                (fun gname ->
                  let gfs = Memssa.func_ssa mssa gname in
                  List.iter
                    (fun l ->
                      match cur_ver l with
                      | Some v ->
                        Graph.add_edge g ~src:(mem gname l 1) ~dst:(mem fn l v)
                          (Ecall i.lbl)
                      | None -> ())
                    gfs.Memssa.entry_locs)
                targets;
              (* Virtual output parameters: caller new -> callee exits. *)
              List.iter
                (fun (l, nv, ov) ->
                  let id = mem fn l nv in
                  Graph.set_def g id (Graph.Dchi (fn, i.lbl));
                  let all_mod = ref (targets <> []) in
                  List.iter
                    (fun gname ->
                      let gfs = Memssa.func_ssa mssa gname in
                      if List.mem l gfs.Memssa.out_locs then
                        List.iter
                          (fun (rl, _) ->
                            match List.assoc_opt l (Memssa.ret_vers_at gfs rl) with
                            | Some ev ->
                              Graph.add_edge g ~src:id ~dst:(mem gname l ev)
                                (Eret i.lbl)
                            | None -> all_mod := false)
                          (Option.value ~default:[]
                             (Hashtbl.find_opt ret_operands gname))
                      else all_mod := false)
                    targets;
                  (* If some callee may leave the location untouched, the old
                     version flows through. *)
                  if not !all_mod then
                    Graph.add_edge g ~src:id ~dst:(mem fn l ov) Eintra)
                (Memssa.chi_at fs i.lbl)
            end
          | Output _ -> ())
        f;
      (* Branch conditions are critical operations. *)
      Array.iter
        (fun b ->
          match b.term.tkind with
          | Br (o, _, _) ->
            criticals := { clbl = b.term.tlbl; cop = o; cfunc = fn } :: !criticals
          | Jmp _ | Ret _ -> ())
        f.blocks)
  in
  P.iter_funcs
    (fun f ->
      let pre () =
        (match hook with Some h -> h f.fname | None -> ());
        match budget with
        | Some b ->
          Diag.Budget.tick b Diag.Vfg_build;
          Diag.Budget.check_nodes b Diag.Vfg_build (Graph.nnodes g)
        | None -> ()
      in
      let compute () =
        match on_fault with
        | None ->
          pre ();
          process_func f
        | Some report -> (
          try
            pre ();
            process_func f
          with e -> report f.fname e)
      in
      (* One span per function when tracing; exactly [compute ()] otherwise. *)
      if Obs.Trace.enabled () then
        Obs.Trace.with_span ~cat:"vfg" ("vfg." ^ f.fname) compute
      else compute ())
    p;
  {
    graph = g;
    prog = p;
    pa;
    cg;
    mr;
    mssa;
    config;
    criticals = List.rev !criticals;
    store_kind;
    semi_strong_cuts = !semi_cuts;
    ret_operands;
  }

(** Soundness forcing for per-function degradation. When a function's
    Memory SSA or value-flow fragment is partial (its phase faulted or ran
    out of budget), the guided plan can no longer reason about anything it
    produces. Pin to the F root:

    - every node defined inside a distrusted function (its fragment may be
      arbitrarily incomplete);
    - the formal parameters and entry memory states of everything it calls
      (its own argument/virtual-parameter edges may be missing, and it may
      pass garbage);
    - the call results and call-site memory versions a *trusted* caller
      receives from a distrusted callee.

    Every crossing edge from trusted code into a distrusted fragment is
    added by the trusted side's processing, so after forcing, any value flow
    that could have traversed the missing fragment reaches F through its
    first distrusted node. Adding edges only ever grows the ⊥ set, so the
    re-resolved Γ stays sound and degradation monotonically adds checks. *)
let force_distrusted (t : t) (distrusted : (fname, 'a) Hashtbl.t) : unit =
  if Hashtbl.length distrusted > 0 then begin
    let g = t.graph in
    let froot = f_id g in
    let force id = Graph.add_edge g ~src:id ~dst:froot Eintra in
    let force_node n = match Graph.find g n with Some id -> force id | None -> () in
    let in_d fn = Hashtbl.mem distrusted fn in
    Graph.iter_nodes
      (fun id _ ->
        match Graph.def_of g id with
        | Graph.Dinstr (fn, _)
        | Graph.Dparam fn
        | Graph.Dchi (fn, _)
        | Graph.Dmemphi (fn, _)
        | Graph.Dentry fn ->
          if in_d fn then force id
        | Graph.Droot -> ())
      g;
    P.iter_instrs
      (fun f _ i ->
        match i.kind with
        | Call { cdst; _ } ->
          let targets = Analysis.Callgraph.site_callees t.cg i.lbl in
          if in_d f.fname then
            (* Interfaces the distrusted caller feeds. *)
            List.iter
              (fun gname ->
                (match P.find_func t.prog gname with
                | Some callee ->
                  List.iter (fun prm -> force_node (Graph.Top prm)) callee.params
                | None -> ());
                if t.config.track_memory then
                  let gfs = Memssa.func_ssa t.mssa gname in
                  List.iter
                    (fun l -> force_node (Graph.Mem (gname, l, 1)))
                    gfs.Memssa.entry_locs)
              targets
          else if List.exists in_d targets then begin
            (* Trusted caller receiving from a distrusted callee. *)
            (match cdst with
            | Some x -> force_node (Graph.Top x)
            | None -> ());
            if t.config.track_memory then
              let fs = Memssa.func_ssa t.mssa f.fname in
              List.iter
                (fun (l, nv, _) -> force_node (Graph.Mem (f.fname, l, nv)))
                (Memssa.chi_at fs i.lbl)
          end
        | _ -> ())
      t.prog
  end

(* Statistics for Table 1. *)

type store_stats = {
  total_stores : int;
  strong : int;
  semi : int;
  weak_singleton : int;  (* singleton points-to, weak update *)
  weak_other : int;
}

let store_stats (t : t) : store_stats =
  let total = ref 0 and strong = ref 0 and semi = ref 0 in
  let weak_singleton = ref 0 and weak_other = ref 0 in
  P.iter_instrs
    (fun _ _ i ->
      match i.kind with
      | Store (x, _) -> (
        incr total;
        let singleton = Analysis.Andersen.singleton_pt t.pa x <> None in
        match Hashtbl.find_opt t.store_kind i.lbl with
        | Some Strong -> incr strong
        | Some Semi_strong -> incr semi; incr weak_singleton
        | Some Weak | None ->
          if singleton then incr weak_singleton else incr weak_other)
      | _ -> ())
    t.prog;
  {
    total_stores = !total;
    strong = !strong;
    semi = !semi;
    weak_singleton = !weak_singleton;
    weak_other = !weak_other;
  }
