(* Opt II — Redundant Check Elimination (Algorithm 1, Fig. 9).

   For each top-level variable x used at a critical statement s: every node r
   outside x's must-flow closure that feeds into the closure, and whose
   defining statement is dominated by s, is rewired to depend on T instead.
   Rationale: an undefined value entering the closure is necessarily reported
   at s (must-flow!), and s executes before r's definition, so r's own
   downstream checks would only repeat the report.

   Definedness is then re-resolved on the modified graph. Per the paper,
   guided instrumentation afterwards runs on the *original* graph structure
   with the new Γ, so shadow initialization stays correct while the checks
   (and propagations) suppressed by the new ⊤ states disappear. *)

open Ir.Types

type result = {
  gamma : Resolve.gamma;   (* resolved on the modified graph *)
  redirected : int;        (* |union of R_x| — the paper's R column *)
}

let run ?(context_sensitive = true) ?budget (bld : Build.t) : result =
  let g = Graph.copy bld.graph in
  let troot = Graph.intern g Graph.Root_t in
  let p = bld.prog in
  (* Per-function dominance caches. *)
  let doms : (fname, Analysis.Dominance.t * Analysis.Dominance.label_positions) Hashtbl.t =
    Hashtbl.create 16
  in
  let dom_of fn =
    match Hashtbl.find_opt doms fn with
    | Some d -> d
    | None ->
      let f = Ir.Prog.get_func p fn in
      let d = (Analysis.Dominance.compute f, Analysis.Dominance.label_positions f) in
      Hashtbl.replace doms fn d;
      d
  in
  (* Per-function block reachability (via >= 1 CFG edge), lazily computed
     per source block. Dominance alone is not enough to rewire: s
     dominating def(r) only orders the FIRST executions. If def(r) can
     reach s again through a back edge, r's value arrives at a *later*
     execution of s — and rewiring r to T would re-resolve x at s to
     defined, deleting the very check the "already reported at s"
     argument relies on. (Found by fuzzing: a loop accumulating an
     uninitialized array cell into its own index variable.) *)
  let reach_tbls :
      (fname, (blockid, (blockid, unit) Hashtbl.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let block_reaches fn b1 b2 =
    let tbl =
      match Hashtbl.find_opt reach_tbls fn with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 8 in
        Hashtbl.replace reach_tbls fn t;
        t
    in
    let set =
      match Hashtbl.find_opt tbl b1 with
      | Some s -> s
      | None ->
        let f = Ir.Prog.get_func p fn in
        let s = Hashtbl.create 16 in
        let stack = ref (Ir.Func.succs f b1) in
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | b :: rest ->
            stack := rest;
            if not (Hashtbl.mem s b) then begin
              Hashtbl.replace s b ();
              stack := Ir.Func.succs f b @ !stack
            end
        done;
        Hashtbl.replace tbl b1 s;
        s
    in
    Hashtbl.mem set b2
  in
  (* Per-function def tables for MFC computation. *)
  let def_tbls : (fname, (var, instr_kind) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let defs_of fn =
    match Hashtbl.find_opt def_tbls fn with
    | Some d -> d
    | None ->
      let tbl = Hashtbl.create 64 in
      Ir.Func.iter_instrs
        (fun _ i ->
          match Ir.Instr.def_of i.kind with
          | Some d -> Hashtbl.replace tbl d i.kind
          | None -> ())
        (Ir.Prog.get_func p fn);
      Hashtbl.replace def_tbls fn tbl;
      tbl
  in
  (* Loads annotated with a single concrete location extend the closure into
     memory (Algorithm 1, line 4). *)
  let objects = bld.pa.objects in
  let concrete_loc l =
    let o = Analysis.Objects.loc_obj objects l in
    (not o.oarray)
    && (match o.okind with
       | Analysis.Objects.Obj_global -> true
       | Analysis.Objects.Obj_stack ->
         not (Analysis.Callgraph.is_recursive bld.cg o.oowner)
       | Analysis.Objects.Obj_heap | Analysis.Objects.Obj_func _ -> false)
  in
  let redirected = Hashtbl.create 64 in
  List.iter
    (fun (c : Build.critical) ->
      (match budget with
      | Some b -> Diag.Budget.tick b Diag.Opt2
      | None -> ());
      match c.cop with
      | Var x ->
        let defs = defs_of c.cfunc in
        let closure = Mfc.compute defs x in
        (* Closure node ids: members plus concrete mu locations of member
           loads. *)
        let in_closure = Hashtbl.create 32 in
        let closure_ids = ref [] in
        let add_id id =
          if not (Hashtbl.mem in_closure id) then begin
            Hashtbl.replace in_closure id ();
            closure_ids := id :: !closure_ids
          end
        in
        List.iter
          (fun v ->
            (match Graph.find g (Graph.Top v) with
            | Some id -> add_id id
            | None -> ());
            match Hashtbl.find_opt defs v with
            | Some (Load (_, _)) when bld.config.track_memory ->
              let fs = Memssa.func_ssa bld.mssa c.cfunc in
              let lbl =
                match Graph.find g (Graph.Top v) with
                | Some id -> (
                  match Graph.def_of g id with
                  | Graph.Dinstr (_, l) -> Some l
                  | _ -> None)
                | None -> None
              in
              (match lbl with
              | Some l -> (
                match Memssa.mu_at fs l with
                | [ (loc, ver) ] when concrete_loc loc -> (
                  match Graph.find g (Graph.Mem (c.cfunc, loc, ver)) with
                  | Some id -> add_id id
                  | None -> ())
                | _ -> ())
              | None -> ())
            | _ -> ())
          closure.members;
        (* R_x: nodes outside the closure with an edge into it. *)
        let dom, pos = dom_of c.cfunc in
        Hashtbl.iter
          (fun t () ->
            List.iter
              (fun (r, _) ->
                if not (Hashtbl.mem in_closure r) then begin
                  (* Does s dominate r's defining statement (same function)? *)
                  let def_lbl =
                    match Graph.def_of g r with
                    | Graph.Dinstr (fn, l) | Graph.Dchi (fn, l) ->
                      if fn = c.cfunc then Some l else None
                    | Graph.Dparam _ | Graph.Dmemphi _ | Graph.Dentry _
                    | Graph.Droot ->
                      None
                  in
                  (* Rewire only when def(r) cannot re-reach s: with s
                     dominating def(r) AND no CFG path from def(r)'s
                     block back to s's block, r's value can never be
                     consumed at s, and (must-flow) never anywhere else
                     either — so suppressing its downstream checks loses
                     nothing. A back path means the value is genuinely
                     used at s's next execution; keep everything. *)
                  let cannot_re_reach l =
                    match (Hashtbl.find_opt pos l, Hashtbl.find_opt pos c.clbl)
                    with
                    | Some (bl, _), Some (bs, _) ->
                      not (block_reaches c.cfunc bl bs)
                    | _ -> false
                  in
                  match def_lbl with
                  | Some l
                    when Analysis.Dominance.label_dominates dom pos c.clbl l
                         && cannot_re_reach l ->
                    (* Replace r's edges into the closure by r -> T. *)
                    let old = Graph.succs g r in
                    let into, keep =
                      List.partition (fun (d, _) -> Hashtbl.mem in_closure d) old
                    in
                    if into <> [] then begin
                      Graph.clear_succs g r;
                      List.iter (fun (d, k) -> Graph.add_edge g ~src:r ~dst:d k) keep;
                      Graph.add_edge g ~src:r ~dst:troot Eintra;
                      Hashtbl.replace redirected r ()
                    end
                  | _ -> ()
                end)
              (Graph.preds g t))
          in_closure
      | Cst _ | Undef -> ())
    bld.criticals;
  let gamma = Resolve.resolve ~context_sensitive ?budget g in
  { gamma; redirected = Hashtbl.length redirected }
