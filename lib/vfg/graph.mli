(** The value-flow graph (§3.2): one node per SSA definition (top-level and
    memory versions) plus the two roots T (defined) and F (undefined); an
    edge [v -> w] records that v's value data-depends on w's.
    Interprocedural edges carry their call-site label so definedness
    resolution can match calls with returns. Nodes are interned to dense
    integers. *)

open Ir.Types

type loc = int

type node =
  | Root_t
  | Root_f
  | Top of var                   (** an SSA top-level definition *)
  | Mem of fname * loc * int     (** a memory SSA version *)

type edge_kind =
  | Eintra
  | Ecall of label               (** callee formal -> caller actual at site *)
  | Eret of label                (** caller result -> callee return at site *)

(** Where a node is defined — consumed by the instrumentation rules. *)
type def_site =
  | Droot
  | Dinstr of fname * label      (** top-level def at an instruction *)
  | Dparam of fname              (** function formal parameter *)
  | Dchi of fname * label        (** memory def at a store/alloc/call chi *)
  | Dmemphi of fname * blockid   (** memory phi *)
  | Dentry of fname              (** memory version 1: virtual input, or the
                                     pseudo-entry of a local stack object *)

type t

val create : unit -> t

(** Get-or-create the dense id of a node. *)
val intern : t -> node -> int

val node_of : t -> int -> node
val find : t -> node -> int option

val set_def : t -> int -> def_site -> unit
val def_of : t -> int -> def_site

(** Idempotent per (src, dst, kind). *)
val add_edge : t -> src:int -> dst:int -> edge_kind -> unit

(** Remove one specific edge, if present; used by fault injection
    (drop-vfg-edge) to seed a structural bug the verifier must catch. *)
val remove_edge : t -> src:int -> dst:int -> edge_kind -> unit

(** Remove every edge out of [src]; used by Opt II's rewiring. *)
val clear_succs : t -> int -> unit

(** Dependencies of a node. *)
val succs : t -> int -> (int * edge_kind) list

(** Dependents of a node. *)
val preds : t -> int -> (int * edge_kind) list

val nnodes : t -> int
val nedges : t -> int

val node_to_string : Ir.Prog.t -> Analysis.Objects.t -> node -> string
val iter_nodes : (int -> node -> unit) -> t -> unit

(** Deep copy, so Opt II can rewire a scratch graph while guided
    instrumentation keeps the original. *)
val copy : t -> t

(** The quotient of the graph by its intraprocedural ([Eintra]) strongly-
    connected components. Within such an SCC every node reaches every other
    without crossing a call or return edge, so context-sensitive
    reachability is uniform across the component: resolution can run over
    the condensation and distribute the answer to members, exactly. *)
type condensation = {
  comp : int array;         (** node id -> component id *)
  ncomps : int;
  members_off : int array;  (** CSR offsets, length ncomps+1 *)
  members : int array;      (** node ids grouped by component *)
  cpred_off : int array;    (** CSR offsets, length ncomps+1 *)
  cpred : int array;
      (** reversed edges, one packed int each:
          [comp lsl ckind_bits lor kind] with kind 0 = Eintra,
          2l+1 = Ecall l, 2l+2 = Eret l; deduped, intra-component
          Eintra edges dropped *)
  ckind_bits : int;         (** bit width of the kind field in [cpred] *)
  nontrivial_sccs : int;    (** components with >= 2 members *)
  max_label : int;          (** highest call-site label on any edge, or -1 *)
}

(** Cached: recomputed only after a node or edge mutation. *)
val condensation : t -> condensation
