(* Definedness resolution (§3.3): Γ(v) = ⊥ iff v reaches the F root along a
   *realizable* path — interprocedural value flows must match call and
   return edges, approximated with 1-callsite call strings (the paper's
   configuration).

   The traversal runs backwards from F over reversed edges. The context is
   the most recent unmatched call site crossed (or Any); crossing a reversed
   call edge (caller actual -> callee formal, i.e. entering the callee)
   records the site; crossing a reversed return edge (callee return ->
   caller result, i.e. leaving the callee) requires the recorded site to
   match. This only ever *excludes* unrealizable paths, so the analysis
   remains sound.

   By default the search runs over the graph's Eintra-SCC condensation
   (Graph.condensation): members of such an SCC are mutually reachable
   without touching a call or return, so every context-sensitive fact is
   uniform across the component — one visit per component per context
   instead of one per member, with an identical Γ. *)

type ctx = Cany | Cat of Ir.Types.label

(* Process-wide work totals (Obs.Metrics): the per-run counters in [gamma]
   stay the source of truth for tables and baselines; the registry lets
   the bench harness attribute aggregate resolution work across a run. *)
let m_runs = Obs.Metrics.counter "resolve.runs"
let m_states_explored = Obs.Metrics.counter "resolve.states_explored"
let m_condensed_sccs = Obs.Metrics.counter "resolve.condensed_sccs"

type gamma = {
  undef : Bytes.t;           (* Γ(v) = ⊥; one byte per node *)
  states_explored : int;
  condensed_sccs : int;      (* nontrivial SCCs collapsed by the search *)
}

let is_undef (g : gamma) (id : int) = Bytes.unsafe_get g.undef id <> '\000'

(** Generic seeded reachability over reversed edges with call/return
    matching — the engine behind definedness resolution and any other
    forward-flow client of the VFG (taint, leak sources, ...). [undef]
    reads as "reached". [condense = false] keeps the node-level search as
    the reference path for the equivalence properties. *)
let reach ?(context_sensitive = true) ?(condense = true) ?budget
    (graph : Graph.t) ~(seeds : int list) : gamma =
  let n = Graph.nnodes graph in
  let undef = Bytes.make n '\000' in
  let states = ref 0 in
  let condensed = ref 0 in
  let burn () =
    match budget with
    | Some b -> Diag.Budget.burn_resolve b Diag.Resolve
    | None -> ()
  in
  (* Sampled search-progress counter for the trace timeline; the enabled
     check keeps the untraced hot loop allocation-free. *)
  let sample () =
    if Obs.Trace.enabled () && !states land 4095 = 1 then
      Obs.Trace.counter ~cat:"resolve" "resolve.search"
        [ ("states", Obs.Trace.Int !states) ]
  in
  (if seeds <> [] then
     if condense then begin
       let c = Graph.condensation graph in
       condensed := c.nontrivial_sccs;
       let mark v =
         for i = Array.unsafe_get c.members_off v
              to Array.unsafe_get c.members_off (v + 1) - 1 do
           Bytes.unsafe_set undef (Array.unsafe_get c.members i) '\001'
         done
       in
       (* Int-array FIFO — no boxed queue cells in the hot loop. *)
       let buf = ref (Array.make 1024 0) in
       let head = ref 0 in
       let tail = ref 0 in
       let enq x =
         if !tail = Array.length !buf then begin
           let b = Array.make (2 * !tail) 0 in
           Array.blit !buf 0 b 0 !tail;
           buf := b
         end;
         !buf.(!tail) <- x;
         incr tail
       in
       if not context_sensitive then begin
         (* Plain reachability over reversed component edges. *)
         let seen = Bytes.make c.ncomps '\000' in
         let push v =
           if Bytes.unsafe_get seen v = '\000' then begin
             Bytes.unsafe_set seen v '\001';
             mark v;
             enq v
           end
         in
         List.iter (fun s -> push c.comp.(s)) seeds;
         while !head < !tail do
           let v = Array.unsafe_get !buf !head in
           incr head;
           incr states;
           sample ();
           burn ();
           for i = Array.unsafe_get c.cpred_off v
                to Array.unsafe_get c.cpred_off (v + 1) - 1 do
             push (Array.unsafe_get c.cpred i lsr c.ckind_bits)
           done
         done
       end
       else begin
         (* Per component: contexts seen; Cany subsumes every Cat. States
            pack as [v lsl shift + ctx] with ctx 0 = Any, l+1 = At l (the
            stride is rounded to a power of two so decode is shift/mask);
            the At table is keyed by the same flat int. *)
         let any_seen = Bytes.make c.ncomps '\000' in
         let shift =
           let s = ref 1 in
           while 1 lsl !s < c.max_label + 2 do incr s done;
           !s
         in
         let mask = (1 lsl shift) - 1 in
         (* Open-addressing set of flat At states (linear probing, -1 =
            empty) — far cheaper per probe than a bucketed Hashtbl. *)
         let at_tbl = ref (Array.make 512 (-1)) in
         let at_mask = ref 511 in
         let at_n = ref 0 in
         let at_add k =
           let tbl = !at_tbl in
           let m = !at_mask in
           let i = ref (k * 0x9E3779B1 land m) in
           while
             let s = Array.unsafe_get tbl !i in
             s >= 0 && s <> k
           do
             i := (!i + 1) land m
           done;
           if Array.unsafe_get tbl !i = k then false
           else begin
             Array.unsafe_set tbl !i k;
             incr at_n;
             if 2 * !at_n > m then begin
               (* Rehash at load 1/2. *)
               let m' = (2 * (m + 1)) - 1 in
               let tbl' = Array.make (m' + 1) (-1) in
               Array.iter
                 (fun s ->
                   if s >= 0 then begin
                     let j = ref (s * 0x9E3779B1 land m') in
                     while Array.unsafe_get tbl' !j >= 0 do
                       j := (!j + 1) land m'
                     done;
                     Array.unsafe_set tbl' !j s
                   end)
                 tbl;
               at_tbl := tbl';
               at_mask := m'
             end;
             true
           end
         in
         let push v ctx =
           if ctx = 0 then begin
             if Bytes.unsafe_get any_seen v = '\000' then begin
               Bytes.unsafe_set any_seen v '\001';
               mark v;
               enq (v lsl shift)
             end
           end
           else if
             Bytes.unsafe_get any_seen v = '\000'
             && at_add ((v lsl shift) lor ctx)
           then begin
             mark v;
             enq ((v lsl shift) lor ctx)
           end
         in
         List.iter (fun s -> push c.comp.(s) 0) seeds;
         while !head < !tail do
           let st = Array.unsafe_get !buf !head in
           incr head;
           incr states;
           sample ();
           burn ();
           let v = st lsr shift in
           let ctx = st land mask in
           (* If Any arrived after this At state was queued, skip: Any will
              (or did) explore strictly more. *)
           if not (ctx <> 0 && Bytes.unsafe_get any_seen v = '\001') then begin
             let kb = c.ckind_bits in
             let kmask = (1 lsl kb) - 1 in
             for i = Array.unsafe_get c.cpred_off v
                  to Array.unsafe_get c.cpred_off (v + 1) - 1 do
               let e = Array.unsafe_get c.cpred i in
               let u = e lsr kb in
               let kc = e land kmask in
               if kc = 0 then push u ctx (* Eintra *)
               else if kc land 1 = 1 then
                 (* Ecall l: entering the callee; kc = 2l+1 so the target
                    context l+1 is (kc+1)/2. *)
                 push u ((kc + 1) lsr 1)
               else if ctx = 0 || ctx = kc lsr 1 then
                 (* Eret l: leaving the callee towards site l; kc = 2l+2 so
                    the required context l+1 is kc/2. *)
                 push u 0
             done
           end
         done
       end
     end
     else if not context_sensitive then begin
       (* Plain reachability over reversed edges. *)
       let work = Queue.create () in
       List.iter
         (fun s ->
           Bytes.set undef s '\001';
           Queue.push s work)
         seeds;
       while not (Queue.is_empty work) do
         let v = Queue.pop work in
         incr states;
         sample ();
         burn ();
         List.iter
           (fun (u, _) ->
             if Bytes.get undef u = '\000' then begin
               Bytes.set undef u '\001';
               Queue.push u work
             end)
           (Graph.preds graph v)
       done
     end
     else begin
       (* Per node: set of contexts seen; Cany subsumes every Cat. *)
       let any_seen = Array.make n false in
       let at_seen : (int * Ir.Types.label, unit) Hashtbl.t =
         Hashtbl.create 1024
       in
       let work = Queue.create () in
       let push v ctx =
         match ctx with
         | Cany ->
           if not any_seen.(v) then begin
             any_seen.(v) <- true;
             Bytes.set undef v '\001';
             Queue.push (v, Cany) work
           end
         | Cat l ->
           if (not any_seen.(v)) && not (Hashtbl.mem at_seen (v, l)) then begin
             Hashtbl.replace at_seen (v, l) ();
             Bytes.set undef v '\001';
             Queue.push (v, ctx) work
           end
       in
       List.iter (fun s -> push s Cany) seeds;
       while not (Queue.is_empty work) do
         let v, ctx = Queue.pop work in
         incr states;
         sample ();
         burn ();
         (* If Cany arrived after this Cat state was queued, skip: Cany will
            (or did) explore strictly more. *)
         let stale = match ctx with Cat _ -> any_seen.(v) | Cany -> false in
         if not stale then
           List.iter
             (fun (u, kind) ->
               (* Reversed edge: forward u -> v; we propagate F-reachability
                  from v up to u. *)
               match kind with
               | Graph.Eintra -> push u ctx
               | Graph.Ecall l ->
                 (* Entering the callee (u is the callee formal). *)
                 push u (Cat l)
               | Graph.Eret l -> (
                 (* Leaving the callee towards call site l. *)
                 match ctx with
                 | Cany -> push u Cany
                 | Cat l' -> if l = l' then push u Cany))
             (Graph.preds graph v)
       done
     end);
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_states_explored !states;
  Obs.Metrics.add m_condensed_sccs !condensed;
  { undef; states_explored = !states; condensed_sccs = !condensed }

let resolve ?context_sensitive ?condense ?budget (graph : Graph.t) : gamma =
  let seeds =
    match Graph.find graph Graph.Root_f with Some id -> [ id ] | None -> []
  in
  reach ?context_sensitive ?condense ?budget graph ~seeds

(** The everything-⊥ Γ — the sound fallback when resolution itself faults or
    runs out of budget: treating every node as possibly-undefined can only
    add instrumentation, never remove a check. *)
let all_bot (graph : Graph.t) : gamma =
  {
    undef = Bytes.make (Graph.nnodes graph) '\001';
    states_explored = 0;
    condensed_sccs = 0;
  }

(** Count of ⊥ nodes, for precision ablations. *)
let undef_count (g : gamma) =
  let acc = ref 0 in
  Bytes.iter (fun b -> if b <> '\000' then incr acc) g.undef;
  !acc
