(* Definedness resolution (§3.3): Γ(v) = ⊥ iff v reaches the F root along a
   *realizable* path — interprocedural value flows must match call and
   return edges, approximated with 1-callsite call strings (the paper's
   configuration).

   The traversal runs backwards from F over reversed edges. The context is
   the most recent unmatched call site crossed (or Any); crossing a reversed
   call edge (caller actual -> callee formal, i.e. entering the callee)
   records the site; crossing a reversed return edge (callee return ->
   caller result, i.e. leaving the callee) requires the recorded site to
   match. This only ever *excludes* unrealizable paths, so the analysis
   remains sound. *)

type ctx = Cany | Cat of Ir.Types.label

type gamma = {
  undef : bool array;        (* Γ(v) = ⊥ *)
  states_explored : int;
}

let is_undef (g : gamma) (id : int) = g.undef.(id)

(** Generic seeded reachability over reversed edges with call/return
    matching — the engine behind definedness resolution and any other
    forward-flow client of the VFG (taint, leak sources, ...). [undef]
    reads as "reached". *)
let reach ?(context_sensitive = true) ?budget (graph : Graph.t)
    ~(seeds : int list) : gamma =
  let n = Graph.nnodes graph in
  let undef = Array.make n false in
  let states = ref 0 in
  let burn () =
    match budget with
    | Some b -> Diag.Budget.burn_resolve b Diag.Resolve
    | None -> ()
  in
  if seeds <> [] then begin
    if not context_sensitive then begin
      (* Plain reachability over reversed edges. *)
      let work = Queue.create () in
      List.iter
        (fun s ->
          undef.(s) <- true;
          Queue.push s work)
        seeds;
      while not (Queue.is_empty work) do
        let v = Queue.pop work in
        incr states;
        burn ();
        List.iter
          (fun (u, _) ->
            if not undef.(u) then begin
              undef.(u) <- true;
              Queue.push u work
            end)
          (Graph.preds graph v)
      done
    end
    else begin
      (* Per node: set of contexts seen; Cany subsumes every Cat. *)
      let any_seen = Array.make n false in
      let at_seen : (int * Ir.Types.label, unit) Hashtbl.t = Hashtbl.create 1024 in
      let work = Queue.create () in
      let push v ctx =
        match ctx with
        | Cany ->
          if not any_seen.(v) then begin
            any_seen.(v) <- true;
            undef.(v) <- true;
            Queue.push (v, Cany) work
          end
        | Cat l ->
          if (not any_seen.(v)) && not (Hashtbl.mem at_seen (v, l)) then begin
            Hashtbl.replace at_seen (v, l) ();
            undef.(v) <- true;
            Queue.push (v, ctx) work
          end
      in
      List.iter (fun s -> push s Cany) seeds;
      while not (Queue.is_empty work) do
        let v, ctx = Queue.pop work in
        incr states;
        burn ();
        (* If Cany arrived after this Cat state was queued, skip: Cany will
           (or did) explore strictly more. *)
        let stale = match ctx with Cat _ -> any_seen.(v) | Cany -> false in
        if not stale then
          List.iter
            (fun (u, kind) ->
              (* Reversed edge: forward u -> v; we propagate F-reachability
                 from v up to u. *)
              match kind with
              | Graph.Eintra -> push u ctx
              | Graph.Ecall l ->
                (* Entering the callee (u is the callee formal). *)
                push u (Cat l)
              | Graph.Eret l -> (
                (* Leaving the callee towards call site l. *)
                match ctx with
                | Cany -> push u Cany
                | Cat l' -> if l = l' then push u Cany))
            (Graph.preds graph v)
      done
    end
  end;
  { undef; states_explored = !states }

let resolve ?context_sensitive ?budget (graph : Graph.t) : gamma =
  let seeds =
    match Graph.find graph Graph.Root_f with Some id -> [ id ] | None -> []
  in
  reach ?context_sensitive ?budget graph ~seeds

(** The everything-⊥ Γ — the sound fallback when resolution itself faults or
    runs out of budget: treating every node as possibly-undefined can only
    add instrumentation, never remove a check. *)
let all_bot (graph : Graph.t) : gamma =
  { undef = Array.make (Graph.nnodes graph) true; states_explored = 0 }

(** Count of ⊥ nodes, for precision ablations. *)
let undef_count (g : gamma) =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 g.undef
