(** Opt II — Redundant Check Elimination (the paper's Algorithm 1, Fig. 9).

    For each variable x used at a critical statement s: every node outside
    x's must-flow closure that feeds into the closure, and whose defining
    statement is dominated by s, is rewired to depend on T. An undefined
    value entering the closure is necessarily reported at s (must-flow),
    and s executes before the rewired definition, so downstream checks
    would only repeat the report.

    Definedness is re-resolved on the modified graph; guided
    instrumentation then runs on the {e original} graph structure with the
    new Γ, keeping shadow initialization correct. *)

type result = {
  gamma : Resolve.gamma;   (** resolved on the modified graph *)
  redirected : int;        (** |union of R_x| — Table 1's "R" column *)
}

val run : ?context_sensitive:bool -> ?budget:Diag.Budget.t -> Build.t -> result
