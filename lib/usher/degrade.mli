(** Degradation events: the audit trail of the resilience ladder. *)

(** Why a degradation happened: an internal fault/budget blow, or a
    quarantine imposed by the soundness sentinel (lib/audit) while its
    incident is unresolved. *)
type kind =
  | Fault
  | Quarantined of string  (** the incident id that implicated the function *)
  | Unverified of string
      (** a certificate checker (lib/verify, named here) rejected the
          phase's result; the ladder treats it like a phase fault *)

type event = {
  phase : Diag.phase;
  func : string option;  (** [None] = whole-program degradation *)
  action : string;       (** what the ladder did about it *)
  diag : Diag.t;         (** the underlying failure *)
  kind : kind;
}

val observe : event -> unit
(** Publish the event to the observability layer: bump the
    [pipeline.degrade_events] / [pipeline.quarantine_events] metrics and,
    when tracing is on, emit an instant trace event (category [degrade]
    or [quarantine]). Every producer of an [event] calls this. *)

val to_string : event -> string
