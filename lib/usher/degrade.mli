(** Degradation events: the audit trail of the resilience ladder. *)

type event = {
  phase : Diag.phase;
  func : string option;  (** [None] = whole-program degradation *)
  action : string;       (** what the ladder did about it *)
  diag : Diag.t;         (** the underlying failure *)
}

val to_string : event -> string
