(** Fault injection at phase boundaries — the test harness for the
    degradation ladder. A fault spec names a phase, optionally one
    function, and whether it manifests as a crash (structured diagnostic)
    or as budget exhaustion. *)

val all_phases : Diag.phase list
val phase_of_string : string -> Diag.phase option

(** Raise the configured failure if some fault in [knobs.inject] targets
    this point: [func] is [None] at a phase boundary, [Some f] inside a
    per-function loop. No-op otherwise. *)
val check : Config.knobs -> Diag.phase -> string option -> unit

(** Parse [PHASE[:FUNC][=crash|exhaust|pts-bitflip|drop-vfg-edge|gamma-flip]]
    (kind defaults to crash). *)
val of_spec : string -> (Config.fault, string) result

val to_string : Config.fault -> string

(** Does [knobs.inject] request corruption [c] of phase [phase]'s result?
    Corruptions are applied by the pipeline after the phase completes (the
    phase itself succeeds); [Fault.check] ignores them. *)
val wants : Config.knobs -> Diag.phase -> Config.corruption -> bool

(** Deterministic seeded corruptions — each damages the artifact in the
    fact-dropping (unsound) direction the certifying checkers must catch,
    and returns a description of the damaged element ([None] when the
    artifact had nothing to corrupt). *)

val corrupt_pts : Analysis.Andersen.t -> string option
val corrupt_vfg : Vfg.Graph.t -> string option
val corrupt_gamma : Vfg.Resolve.gamma -> string option
