(** Fault injection at phase boundaries — the test harness for the
    degradation ladder. A fault spec names a phase, optionally one
    function, and whether it manifests as a crash (structured diagnostic)
    or as budget exhaustion. *)

val all_phases : Diag.phase list
val phase_of_string : string -> Diag.phase option

(** Raise the configured failure if some fault in [knobs.inject] targets
    this point: [func] is [None] at a phase boundary, [Some f] inside a
    per-function loop. No-op otherwise. *)
val check : Config.knobs -> Diag.phase -> string option -> unit

(** Parse [PHASE[:FUNC][=crash|exhaust]] (kind defaults to crash). *)
val of_spec : string -> (Config.fault, string) result

val to_string : Config.fault -> string
