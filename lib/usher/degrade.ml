(* Degradation events: the audit trail of the resilience ladder.

   Whenever a phase blows its budget or faults, the pipeline falls back to
   a sound coarser result (all-undefined Γ, per-function distrust, or
   whole-program full instrumentation) and records what happened here, so
   drivers can surface exactly which guarantees were traded away.

   A second event kind, [Quarantined], records distrust imposed from the
   *outside*: the soundness sentinel (lib/audit) files an incident against
   a function and the pipeline forces full instrumentation for it until
   the incident is resolved. *)

type kind =
  | Fault                  (* a phase faulted or blew its budget *)
  | Quarantined of string  (* distrusted by audit incident (its id) *)

type event = {
  phase : Diag.phase;
  func : string option;  (* None = whole-program degradation *)
  action : string;       (* what the ladder did about it *)
  diag : Diag.t;         (* the underlying failure *)
  kind : kind;           (* why: an internal fault, or an audit quarantine *)
}

let to_string (e : event) : string =
  let tag =
    match e.kind with
    | Fault -> "degrade"
    | Quarantined inc -> "quarantine " ^ inc
  in
  Printf.sprintf "[%s] %s%s: %s (%s)" tag
    (Diag.phase_name e.phase)
    (match e.func with Some f -> "/" ^ f | None -> "")
    e.action (Diag.to_string e.diag)
