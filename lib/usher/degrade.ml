(* Degradation events: the audit trail of the resilience ladder.

   Whenever a phase blows its budget or faults, the pipeline falls back to
   a sound coarser result (all-undefined Γ, per-function distrust, or
   whole-program full instrumentation) and records what happened here, so
   drivers can surface exactly which guarantees were traded away. *)

type event = {
  phase : Diag.phase;
  func : string option;  (* None = whole-program degradation *)
  action : string;       (* what the ladder did about it *)
  diag : Diag.t;         (* the underlying failure *)
}

let to_string (e : event) : string =
  Printf.sprintf "[degrade] %s%s: %s (%s)"
    (Diag.phase_name e.phase)
    (match e.func with Some f -> "/" ^ f | None -> "")
    e.action (Diag.to_string e.diag)
