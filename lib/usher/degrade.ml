(* Degradation events: the audit trail of the resilience ladder.

   Whenever a phase blows its budget or faults, the pipeline falls back to
   a sound coarser result (all-undefined Γ, per-function distrust, or
   whole-program full instrumentation) and records what happened here, so
   drivers can surface exactly which guarantees were traded away.

   A second event kind, [Quarantined], records distrust imposed from the
   *outside*: the soundness sentinel (lib/audit) files an incident against
   a function and the pipeline forces full instrumentation for it until
   the incident is resolved. *)

type kind =
  | Fault                  (* a phase faulted or blew its budget *)
  | Quarantined of string  (* distrusted by audit incident (its id) *)
  | Unverified of string   (* a certificate checker (lib/verify, named
                              here) rejected the phase's result *)

type event = {
  phase : Diag.phase;
  func : string option;  (* None = whole-program degradation *)
  action : string;       (* what the ladder did about it *)
  diag : Diag.t;         (* the underlying failure *)
  kind : kind;           (* why: an internal fault, or an audit quarantine *)
}

(* Every step down the ladder is also observable: a metrics counter and —
   when tracing — an instant trace event, so "which function tripped the
   ladder and when" is answerable from the timeline, not printf
   archaeology. Every producer of an [event] (pipeline, front end,
   plan_for) funnels through [observe]. *)
let m_events = Obs.Metrics.counter "pipeline.degrade_events"
let m_quarantined = Obs.Metrics.counter "pipeline.quarantine_events"
let m_unverified = Obs.Metrics.counter "pipeline.unverified_events"

let observe (e : event) : unit =
  Obs.Metrics.incr m_events;
  (match e.kind with
  | Quarantined _ -> Obs.Metrics.incr m_quarantined
  | Unverified _ -> Obs.Metrics.incr m_unverified
  | Fault -> ());
  if Obs.Trace.enabled () then begin
    let cat, name =
      match e.kind with
      | Fault -> ("degrade", "degrade." ^ Diag.phase_name e.phase)
      | Quarantined inc -> ("quarantine", "quarantine." ^ inc)
      | Unverified checker -> ("verify", "unverified." ^ checker)
    in
    Obs.Trace.instant ~cat
      ~args:
        [
          ("phase", Obs.Trace.Str (Diag.phase_name e.phase));
          ("func", Obs.Trace.Str (Option.value ~default:"" e.func));
          ("action", Obs.Trace.Str e.action);
          ("diag", Obs.Trace.Str (Diag.to_string e.diag));
        ]
      name
  end

let to_string (e : event) : string =
  let tag =
    match e.kind with
    | Fault -> "degrade"
    | Quarantined inc -> "quarantine " ^ inc
    | Unverified checker -> "unverified " ^ checker
  in
  Printf.sprintf "[%s] %s%s: %s (%s)" tag
    (Diag.phase_name e.phase)
    (match e.func with Some f -> "/" ^ f | None -> "")
    e.action (Diag.to_string e.diag)
