(* Analysis variants evaluated in the paper (§4.5) and tuning knobs. *)

(** The five instrumentation configurations of Figures 10 and 11. *)
type variant =
  | Msan          (** full instrumentation — the baseline *)
  | Usher_tl      (** top-level variables only, no Opt I/II *)
  | Usher_tl_at   (** + address-taken variables *)
  | Usher_opt1    (** + Opt I (value-flow simplification) *)
  | Usher_full    (** + Opt II (redundant check elimination) *)

let all_variants = [ Msan; Usher_tl; Usher_tl_at; Usher_opt1; Usher_full ]

let variant_name = function
  | Msan -> "MSan"
  | Usher_tl -> "Usher_TL"
  | Usher_tl_at -> "Usher_TL+AT"
  | Usher_opt1 -> "Usher_OptI"
  | Usher_full -> "Usher"

(** Seeded analyzer corruptions: each silently damages one phase's
    finished artifact in the unsound (fact-dropping) direction, which the
    certifying checkers (lib/verify) must always detect. *)
type corruption =
  | Pts_bitflip    (** clear one set bit in the points-to solution *)
  | Drop_vfg_edge  (** remove one value-flow edge from the VFG *)
  | Gamma_flip     (** flip one ⊥ entry of Γ to ⊤ *)

(** How an injected fault manifests at a phase boundary. *)
type fault_kind =
  | Crash      (** the phase raises a structured diagnostic *)
  | Exhaust    (** the phase reports its resource budget as blown *)
  | Corrupt of corruption
      (** the phase completes but its result is silently damaged *)

(** A fault to inject (testing the degradation ladder): fires when the
    pipeline enters [fphase] — at the phase boundary when [ffunc] is
    [None], or while processing that one function otherwise (only phases
    with per-function isolation consult function-scoped faults). *)
type fault = {
  fphase : Diag.phase;
  ffunc : string option;
  fkind : fault_kind;
}

(** Ablation switches (DESIGN.md §5); the paper's configuration is
    [default]. *)
type knobs = {
  semi_strong : bool;
  context_sensitive : bool;
  field_sensitive : bool;
  heap_cloning : bool;
  small_array_fields : int;
      (** extension beyond the paper (see Analysis.Andersen.config);
          0 = the paper's arrays-as-a-whole treatment *)
  budget_ms : int option;      (** wall-clock budget for the whole analysis *)
  solver_fuel : int option;    (** Andersen worklist iterations *)
  vfg_node_cap : int option;   (** VFG size cap *)
  resolve_fuel : int option;   (** Γ resolution states *)
  summaries : bool;
      (** resolve Γ compositionally from per-function value-flow
          summaries (lib/summary) instead of the monolithic search;
          byte-identical Γ, plans and certificates by contract *)
  summary_cache : string option;
      (** directory for the content-hashed summary artifact cache;
          implies nothing unless [summaries] is on *)
  verify : bool;
      (** run the certificate checkers (lib/verify) after each pipeline
          phase; violations feed the degradation ladder *)
  inject : fault list;         (** faults to inject (tests/CLI) *)
  quarantine : (string * string) list;
      (** functions the soundness sentinel has quarantined, as
          (function, incident id): the pipeline distrusts each one up
          front, forcing full instrumentation until the incident is
          resolved (see lib/audit) *)
}

let default_knobs =
  {
    semi_strong = true;
    context_sensitive = true;
    field_sensitive = true;
    heap_cloning = true;
    small_array_fields = 0;
    budget_ms = None;
    solver_fuel = None;
    vfg_node_cap = None;
    resolve_fuel = None;
    summaries = false;
    summary_cache = None;
    verify = false;
    inject = [];
    quarantine = [];
  }
