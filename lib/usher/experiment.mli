(** One end-to-end experiment: compile a TinyC program at an optimization
    level, analyze it, instrument it under every variant, execute natively
    and under each plan, and report slowdowns plus static instrumentation
    statistics. The unit both the benchmark harness and the examples build
    on. *)

type variant_result = {
  variant : Config.variant;
  static_stats : Instr.Item.stats;
  slowdown_pct : float;
  dynamic_shadow_ops : int;
  detections : Ir.Types.label list;   (** E(l) that fired *)
  compressed_away : int;              (** items removed by shadow DCE/folding *)
}

type t = {
  name : string;
  level : Optim.Pipeline.level;
  analysis : Pipeline.analysis;
  table1 : Analysis_stats.t;
  native_counters : Runtime.Counters.t;
  native_outputs : int list;
  gt_uses : Ir.Types.label list;      (** ground-truth undefined uses *)
  results : variant_result list;
}

exception Unsound of string

(** Is the ground-truth undefined use at a label covered by the detections:
    reported at its own statement, or dominated (same function,
    executes-before) by a statement whose check fired — the situation Opt
    II creates deliberately (§3.5.2)? *)
val covered :
  Ir.Prog.t -> (Ir.Types.label, unit) Hashtbl.t -> Ir.Types.label -> bool

(** Run every variant. With [check_soundness] (default, O0+IM only) raises
    {!Unsound} if an instrumented run diverges from the native outputs or a
    ground-truth undefined use is not covered. [engine] selects the
    execution engine for both the native and the instrumented runs
    (default: the interpreter). *)
val run :
  ?name:string ->
  ?level:Optim.Pipeline.level ->
  ?knobs:Config.knobs ->
  ?variants:Config.variant list ->
  ?check_soundness:bool ->
  ?limits:Runtime.Interp.limits ->
  ?engine:Vm.Engine.t ->
  string ->
  t

val result_for : t -> Config.variant -> variant_result

(** [parallel_map ~jobs f xs] maps [f] over [xs] on up to [jobs] domains
    (default 1 = plain [List.map]). Work items are claimed from an atomic
    counter; results come back in input order regardless of completion
    order. Failure is fail-fast: once any application raises, no new items
    are handed out (in-flight items finish); after all domains joined, the
    failure at the lowest input index that ran is re-raised with the
    worker's own backtrace. [f] must be safe to run concurrently with
    itself — experiment runs are: every mutable artifact hangs off the
    per-run program. *)
val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
