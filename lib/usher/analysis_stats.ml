(* The per-benchmark statistics of Table 1. *)

(* Compositional-resolution counters (present iff the analysis ran with
   [knobs.summaries]); a frozen copy of Summary.Engine.stats. *)
type summary_counters = {
  s_computed : int;
  s_reused : int;
  s_recomputed : int;
  s_pruned : int;
  s_fallback_sccs : int;
  s_cache_corrupt : int;
}

type t = {
  kloc : float;                  (* TinyC source size *)
  analysis_time_s : float;
  analysis_mem_mb : float;
  var_tl : int;                  (* top-level variables (virtual registers) *)
  var_at_stack : int;            (* address-taken objects by region *)
  var_at_heap : int;
  var_at_global : int;
  pct_uninit_alloc : float;      (* %F *)
  semi_per_heap_site : float;    (* S: semi-strong cuts per non-array heap site *)
  pct_strong : float;            (* %SU *)
  pct_weak_singleton : float;    (* %WU *)
  vfg_nodes : int;
  pct_reaching : float;          (* %B: nodes needing tracking *)
  opt1_simplified : int;         (* S (second): closures simplified *)
  opt2_redirected : int;         (* R *)
  pa_solve_iterations : int;     (* Andersen worklist pops *)
  pa_sccs_collapsed : int;       (* pointer-equivalence cycles unified *)
  pa_edges_deduped : int;        (* duplicate copy edges skipped *)
  resolve_states : int;          (* (node, context) states explored *)
  resolve_condensed_sccs : int;  (* nontrivial VFG SCCs the search collapsed *)
  condensation_ratio : float;    (* VFG components / nodes; 1.0 = no cycles *)
  degraded_functions : string list;   (* distrusted: MSan instrumentation *)
  degradation_events : string list;   (* the ladder's audit trail *)
  verify_checkers : (string * float * int) list;
      (* (checker, wall_s, violations) when --verify ran; [] otherwise *)
  summary : summary_counters option;  (* compositional resolution, if on *)
}

let kloc_of_source (src : string) : float =
  let lines = String.split_on_char '\n' src in
  let code =
    List.filter
      (fun l ->
        let l = String.trim l in
        String.length l > 0 && not (String.length l >= 2 && String.sub l 0 2 = "//"))
      lines
  in
  float_of_int (List.length code) /. 1000.0

let compute ~(src : string) (a : Pipeline.analysis) : t =
  let objects = a.pa.objects in
  let stack = ref 0 and heap = ref 0 and glob = ref 0 and uninit = ref 0 in
  let nonarray_heap_sites = Hashtbl.create 16 in
  for oid = 0 to Analysis.Objects.nobjs objects - 1 do
    let o = Analysis.Objects.obj objects oid in
    (match o.okind with
    | Analysis.Objects.Obj_stack -> incr stack
    | Analysis.Objects.Obj_heap ->
      incr heap;
      if not o.oarray then Hashtbl.replace nonarray_heap_sites o.osite ()
    | Analysis.Objects.Obj_global -> incr glob
    | Analysis.Objects.Obj_func _ -> ());
    match o.okind with
    | Analysis.Objects.Obj_func _ -> ()
    | _ -> if not o.oinit then incr uninit
  done;
  let n_at = !stack + !heap + !glob in
  (* Top-level variables: SSA definitions and parameters in the optimized
     program. *)
  let var_tl = ref 0 in
  Ir.Prog.iter_funcs
    (fun f -> var_tl := !var_tl + List.length (Ir.Func.defined_vars f))
    a.prog;
  let ss = Vfg.Build.store_stats a.vfg in
  (* Statistics must survive a degraded analysis: if the guided traversal
     itself faults on the degraded artifacts, report full coverage. *)
  let try_guided ~opt1 =
    try Some (Instr.Guided.build ~options:{ Instr.Guided.opt1 } a.vfg a.gamma)
    with _ -> None
  in
  let guided = try_guided ~opt1:false in
  let opt1 = try_guided ~opt1:true in
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  {
    kloc = kloc_of_source src;
    analysis_time_s = a.analysis_time_s;
    analysis_mem_mb = a.analysis_mem_mb;
    var_tl = !var_tl;
    var_at_stack = !stack;
    var_at_heap = !heap;
    var_at_global = !glob;
    pct_uninit_alloc = pct !uninit n_at;
    semi_per_heap_site =
      (let sites = Hashtbl.length nonarray_heap_sites in
       if sites = 0 then 0.0
       else float_of_int a.vfg.semi_strong_cuts /. float_of_int sites);
    pct_strong = pct ss.strong ss.total_stores;
    pct_weak_singleton = pct ss.weak_singleton ss.total_stores;
    vfg_nodes = Vfg.Graph.nnodes a.vfg.graph;
    pct_reaching =
      (match guided with
      | Some g -> pct g.needed_nodes (Vfg.Graph.nnodes a.vfg.graph)
      | None -> 100.0);
    opt1_simplified =
      (match opt1 with Some o -> o.opt1_simplified | None -> 0);
    opt2_redirected = a.opt2.redirected;
    pa_solve_iterations = a.pa.solve_iterations;
    pa_sccs_collapsed = a.pa.sccs_collapsed;
    pa_edges_deduped = a.pa.edges_deduped;
    resolve_states = a.gamma.states_explored;
    resolve_condensed_sccs = a.gamma.condensed_sccs;
    condensation_ratio =
      (let n = Vfg.Graph.nnodes a.vfg.graph in
       if n = 0 then 1.0
       else
         (* cached after resolution, so this is a lookup, not a recompute *)
         float_of_int (Vfg.Graph.condensation a.vfg.graph).ncomps
         /. float_of_int n);
    degraded_functions = Pipeline.distrusted_functions a;
    degradation_events = List.map Degrade.to_string !(a.events);
    verify_checkers =
      List.map
        (fun (r : Verify.Report.t) ->
          (r.checker, r.wall_s, Verify.Report.nviolations r))
        a.verify_reports;
    summary =
      (match a.summary_stats with
      | None -> None
      | Some s ->
        Some
          {
            s_computed = s.Summary.Engine.computed;
            s_reused = s.reused;
            s_recomputed = s.recomputed;
            s_pruned = s.pruned;
            s_fallback_sccs = s.fallback_sccs;
            s_cache_corrupt = s.cache_corrupt;
          });
  }
