(** The per-benchmark statistics of the paper's Table 1. *)

(** Compositional-resolution counters (present iff the analysis ran with
    [knobs.summaries]); a frozen copy of {!Summary.Engine.stats}. *)
type summary_counters = {
  s_computed : int;
  s_reused : int;
  s_recomputed : int;
  s_pruned : int;
  s_fallback_sccs : int;
  s_cache_corrupt : int;
}

type t = {
  kloc : float;                  (** TinyC source size *)
  analysis_time_s : float;
  analysis_mem_mb : float;
  var_tl : int;                  (** top-level variables (virtual registers) *)
  var_at_stack : int;            (** address-taken objects by region *)
  var_at_heap : int;
  var_at_global : int;
  pct_uninit_alloc : float;      (** %F *)
  semi_per_heap_site : float;    (** S: semi-strong cuts per non-array heap site *)
  pct_strong : float;            (** %SU *)
  pct_weak_singleton : float;    (** %WU *)
  vfg_nodes : int;
  pct_reaching : float;          (** %B: nodes needing tracking *)
  opt1_simplified : int;         (** closures simplified by Opt I *)
  opt2_redirected : int;         (** R: nodes redirected by Opt II *)
  pa_solve_iterations : int;     (** Andersen worklist pops *)
  pa_sccs_collapsed : int;       (** pointer-equivalence cycles unified *)
  pa_edges_deduped : int;        (** duplicate copy edges skipped *)
  resolve_states : int;          (** (node, context) states explored *)
  resolve_condensed_sccs : int;  (** nontrivial VFG SCCs the search collapsed *)
  condensation_ratio : float;    (** VFG components / nodes; 1.0 = no cycles *)
  degraded_functions : string list;   (** distrusted: MSan instrumentation *)
  degradation_events : string list;   (** the ladder's audit trail *)
  verify_checkers : (string * float * int) list;
      (** (checker, wall seconds, violations) per certificate checker, in
          pipeline order, when the analysis ran with [verify]; [[]]
          otherwise *)
  summary : summary_counters option;
      (** compositional resolution counters, when [knobs.summaries] *)
}

val kloc_of_source : string -> float
val compute : src:string -> Pipeline.analysis -> t
