(* Fault injection at phase boundaries.

   The degradation ladder is only trustworthy if it is exercised; these
   hooks let tests and the CLI make any phase crash or exhaust its budget
   on demand. A fault spec names a phase, optionally one function (for
   phases with per-function isolation), and how the failure manifests. *)

let all_phases =
  [
    Diag.Lex; Diag.Parse; Diag.Lower; Diag.Ir; Diag.Optim; Diag.Andersen;
    Diag.Callgraph; Diag.Modref; Diag.Memssa; Diag.Vfg_build; Diag.Resolve;
    Diag.Opt2; Diag.Instrument; Diag.Interp; Diag.Audit; Diag.Driver;
  ]

let phase_of_string (s : string) : Diag.phase option =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> String.lowercase_ascii (Diag.phase_name p) = s) all_phases

(* Raise the configured failure if a fault targets this point. [func] is
   [None] at a phase boundary, [Some f] inside a per-function loop. *)
let check (knobs : Config.knobs) (phase : Diag.phase) (func : string option) :
    unit =
  List.iter
    (fun (f : Config.fault) ->
      let hit =
        f.fphase = phase
        &&
        match (f.ffunc, func) with
        | None, None -> true
        | Some a, Some b -> a = b
        | None, Some _ | Some _, None -> false
      in
      if hit then
        match f.fkind with
        | Config.Crash -> Diag.error phase "injected fault"
        | Config.Exhaust ->
          raise
            (Diag.Budget.Exhausted
               { phase; resource = Diag.Budget.Wall_clock; limit = 0 }))
    knobs.inject

(* Parse a CLI fault spec: PHASE[:FUNC][=crash|exhaust]. *)
let of_spec (s : string) : (Config.fault, string) result =
  let body, fkind =
    match String.index_opt s '=' with
    | None -> (s, Ok Config.Crash)
    | Some i ->
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      ( String.sub s 0 i,
        match String.lowercase_ascii k with
        | "crash" -> Ok Config.Crash
        | "exhaust" -> Ok Config.Exhaust
        | _ -> Error (Printf.sprintf "unknown fault kind %S" k) )
  in
  let phase_s, ffunc =
    match String.index_opt body ':' with
    | None -> (body, None)
    | Some i ->
      ( String.sub body 0 i,
        Some (String.sub body (i + 1) (String.length body - i - 1)) )
  in
  match (fkind, phase_of_string phase_s) with
  | Error e, _ -> Error e
  | Ok _, None -> Error (Printf.sprintf "unknown phase %S" phase_s)
  | Ok fkind, Some fphase -> Ok { Config.fphase; ffunc; fkind }

let to_string (f : Config.fault) : string =
  Printf.sprintf "%s%s=%s"
    (Diag.phase_name f.Config.fphase)
    (match f.Config.ffunc with Some fn -> ":" ^ fn | None -> "")
    (match f.Config.fkind with Config.Crash -> "crash" | Config.Exhaust -> "exhaust")
