(* Fault injection at phase boundaries.

   The degradation ladder is only trustworthy if it is exercised; these
   hooks let tests and the CLI make any phase crash or exhaust its budget
   on demand. A fault spec names a phase, optionally one function (for
   phases with per-function isolation), and how the failure manifests. *)

let all_phases =
  [
    Diag.Lex; Diag.Parse; Diag.Lower; Diag.Ir; Diag.Optim; Diag.Andersen;
    Diag.Callgraph; Diag.Modref; Diag.Memssa; Diag.Vfg_build; Diag.Resolve;
    Diag.Opt2; Diag.Instrument; Diag.Interp; Diag.Audit; Diag.Verify;
    Diag.Driver;
  ]

let phase_of_string (s : string) : Diag.phase option =
  let s = String.lowercase_ascii s in
  List.find_opt (fun p -> String.lowercase_ascii (Diag.phase_name p) = s) all_phases

(* Raise the configured failure if a fault targets this point. [func] is
   [None] at a phase boundary, [Some f] inside a per-function loop. *)
let check (knobs : Config.knobs) (phase : Diag.phase) (func : string option) :
    unit =
  List.iter
    (fun (f : Config.fault) ->
      let hit =
        f.fphase = phase
        &&
        match (f.ffunc, func) with
        | None, None -> true
        | Some a, Some b -> a = b
        | None, Some _ | Some _, None -> false
      in
      if hit then
        match f.fkind with
        | Config.Crash -> Diag.error phase "injected fault"
        | Config.Exhaust ->
          raise
            (Diag.Budget.Exhausted
               { phase; resource = Diag.Budget.Wall_clock; limit = 0 })
        | Config.Corrupt _ -> ()
        (* corruptions fire after the phase, via [apply_corruptions] *))
    knobs.inject

(* Parse a CLI fault spec:
   PHASE[:FUNC][=crash|exhaust|pts-bitflip|drop-vfg-edge|gamma-flip]. *)
let of_spec (s : string) : (Config.fault, string) result =
  let body, fkind =
    match String.index_opt s '=' with
    | None -> (s, Ok Config.Crash)
    | Some i ->
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      ( String.sub s 0 i,
        match String.lowercase_ascii k with
        | "crash" -> Ok Config.Crash
        | "exhaust" -> Ok Config.Exhaust
        | "pts-bitflip" -> Ok (Config.Corrupt Config.Pts_bitflip)
        | "drop-vfg-edge" -> Ok (Config.Corrupt Config.Drop_vfg_edge)
        | "gamma-flip" -> Ok (Config.Corrupt Config.Gamma_flip)
        | _ -> Error (Printf.sprintf "unknown fault kind %S" k) )
  in
  let phase_s, ffunc =
    match String.index_opt body ':' with
    | None -> (body, None)
    | Some i ->
      ( String.sub body 0 i,
        Some (String.sub body (i + 1) (String.length body - i - 1)) )
  in
  match (fkind, phase_of_string phase_s) with
  | Error e, _ -> Error e
  | Ok _, None -> Error (Printf.sprintf "unknown phase %S" phase_s)
  | Ok fkind, Some fphase -> Ok { Config.fphase; ffunc; fkind }

let to_string (f : Config.fault) : string =
  Printf.sprintf "%s%s=%s"
    (Diag.phase_name f.Config.fphase)
    (match f.Config.ffunc with Some fn -> ":" ^ fn | None -> "")
    (match f.Config.fkind with
    | Config.Crash -> "crash"
    | Config.Exhaust -> "exhaust"
    | Config.Corrupt Config.Pts_bitflip -> "pts-bitflip"
    | Config.Corrupt Config.Drop_vfg_edge -> "drop-vfg-edge"
    | Config.Corrupt Config.Gamma_flip -> "gamma-flip")

(* ---------------- seeded analyzer corruption ---------------- *)

(* The corruptions below damage a finished artifact in the fact-DROPPING
   direction — the unsound one the certifying checkers guarantee to catch
   (added facts are mere over-approximation). Each picks its victim
   deterministically (first eligible in index order) so CI failures
   reproduce. *)

let m_corruptions = Obs.Metrics.counter "fault.corruptions"

let wants (knobs : Config.knobs) phase c =
  List.exists
    (fun (f : Config.fault) ->
      f.fphase = phase && f.fkind = Config.Corrupt c)
    knobs.inject

(* Clear the lowest set bit of the first representative node with a
   nonempty points-to set, and drop the lazy per-node views so readers see
   the damaged words. Returns a description when a bit was flipped. *)
let corrupt_pts (pa : Analysis.Andersen.t) : string option =
  let module A = Analysis.Andersen in
  let nnodes =
    if pa.A.wpn = 0 then 0 else Array.length pa.A.pts_words / pa.A.wpn
  in
  let found = ref None in
  (try
     for n = 0 to nnodes - 1 do
       if pa.A.repr.(n) = n then
         for w = 0 to pa.A.wpn - 1 do
           let word = pa.A.pts_words.((n * pa.A.wpn) + w) in
           if word <> 0 then begin
             let bit = word land -word in
             pa.A.pts_words.((n * pa.A.wpn) + w) <- word lxor bit;
             found := Some (Printf.sprintf "node %d word %d" n w);
             raise Exit
           end
         done
     done
   with Exit -> ());
  Array.fill pa.A.pts_cache 0 (Array.length pa.A.pts_cache) None;
  if !found <> None then Obs.Metrics.incr m_corruptions;
  !found

(* Remove the first edge (lowest source node id, first succ entry). *)
let corrupt_vfg (g : Vfg.Graph.t) : string option =
  let found = ref None in
  (try
     Vfg.Graph.iter_nodes
       (fun id _ ->
         match Vfg.Graph.succs g id with
         | (dst, k) :: _ ->
           Vfg.Graph.remove_edge g ~src:id ~dst k;
           found := Some (Printf.sprintf "edge %d -> %d" id dst);
           raise Exit
         | [] -> ())
       g
   with Exit -> ());
  if !found <> None then Obs.Metrics.incr m_corruptions;
  !found

(* Flip the first ⊥ entry of Γ to ⊤ — claiming a possibly-undefined value
   is defined, the unsound direction. The scan starts past the two root
   ids (interned first by the builder) so the flip lands on a program
   node rather than trivially on the F root itself. *)
let corrupt_gamma (gm : Vfg.Resolve.gamma) : string option =
  let undef = gm.Vfg.Resolve.undef in
  let n = Bytes.length undef in
  let found = ref None in
  let flip id =
    if !found = None && Bytes.get undef id <> '\000' then begin
      Bytes.set undef id '\000';
      found := Some (Printf.sprintf "node %d" id)
    end
  in
  for id = 2 to n - 1 do
    flip id
  done;
  for id = 0 to min 1 (n - 1) do
    flip id
  done;
  if !found <> None then Obs.Metrics.incr m_corruptions;
  !found
