(* Resource budgets for the analysis pipeline.

   The mechanics (deadline clock, fuel counters, amortized polling) live in
   [Diag.Budget] so that every analysis library can burn fuel without
   depending on the usher layer; this module is the policy end: it turns
   the user-facing knobs into a budget and re-exports the mechanics. *)

include Diag.Budget

let of_knobs (k : Config.knobs) : Diag.Budget.t option =
  match (k.budget_ms, k.solver_fuel, k.vfg_node_cap, k.resolve_fuel) with
  | None, None, None, None -> None
  | _ ->
    Some
      (Diag.Budget.make ?budget_ms:k.budget_ms ?solver_fuel:k.solver_fuel
         ?resolve_fuel:k.resolve_fuel ?vfg_node_cap:k.vfg_node_cap ())

(* ---- admission hooks (lib/serve) ----
   The daemon's admission controller accounts each request's wall-clock
   cost before running it: the request's own budget when it set one,
   otherwise the server default. Granting a budget means writing it back
   into the knobs, so the whole pipeline runs under the admitted
   deadline and an over-budget request degrades inside its own fault
   domain instead of occupying a worker forever. *)

(** Wall-clock cost, in ms, the admission controller should account for
    a request running under [k]. *)
let cost_ms (k : Config.knobs) ~(default_ms : int) : int =
  match k.budget_ms with Some ms -> ms | None -> default_ms

(** Knobs with the admitted wall-clock budget in force. *)
let admit_ms (k : Config.knobs) (ms : int) : Config.knobs =
  { k with budget_ms = Some ms }

(* Human-readable summary of the limits in force. *)
let describe (k : Config.knobs) : string option =
  let parts =
    List.filter_map
      (fun (name, v) ->
        match v with Some n -> Some (Printf.sprintf "%s=%d" name n) | None -> None)
      [
        ("budget-ms", k.budget_ms);
        ("solver-fuel", k.solver_fuel);
        ("vfg-cap", k.vfg_node_cap);
        ("resolve-fuel", k.resolve_fuel);
      ]
  in
  match parts with [] -> None | _ -> Some (String.concat " " parts)
