(* The end-to-end Usher pipeline (Fig. 3):

     source --Clang analog--> IR --O0+IM/O1/O2--> SSA IR
       --pointer analysis--> --memory SSA--> --VFG--> --Γ--> plans

   [analyze] produces every artifact shared by the variants; [plan_for]
   derives the instrumentation plan of one variant. Analysis wall time and
   peak heap are recorded for Table 1.

   Resilience: every phase runs under an optional resource budget and a
   fault guard. Failures never escape as crashes and never lose checks —
   they walk down a degradation ladder whose every rung is sound because
   it only ever grows the ⊥ set / the instrumentation:

   - rung 1: Opt II faults (or any function is distrusted) → Usher keeps
     the pre-Opt-II Γ, i.e. redundant checks stay in;
   - rung 2: Γ resolution faults → Γ := all-undefined, i.e. guided
     instrumentation degenerates towards full;
   - rung 3: memory SSA or VFG construction faults on one function → that
     function is "distrusted": its VFG fragment is forced to ⊥, it gets
     the full (MSan) item set, and the calling protocol is relayed across
     the trust boundary;
   - rung 4: a whole-program phase (pointer analysis, call graph, mod/ref)
     faults → every variant degrades to full instrumentation.

   Every step down the ladder is recorded as a [Degrade.event]. *)

type analysis = {
  prog : Ir.Prog.t;
  pa : Analysis.Andersen.t;
  cg : Analysis.Callgraph.t;
  mr : Analysis.Modref.t;
  mssa : Memssa.t;
  vfg : Vfg.Build.t;                  (* full graph (TL+AT) *)
  gamma : Vfg.Resolve.gamma;          (* resolved on [vfg] *)
  vfg_tl : Vfg.Build.t;               (* top-level-only graph *)
  gamma_tl : Vfg.Resolve.gamma;
  opt2 : Vfg.Opt2.result;             (* Γ after redundant check elimination *)
  summary_stats : Summary.Engine.stats option;
      (* compositional-resolution counters; [Some] iff [knobs.summaries],
         shared by the TL+AT and TL resolutions *)
  analysis_time_s : float;            (* pointer analysis through Opt II *)
  analysis_mem_mb : float;
  phase_times_s : (string * float) list;
      (* wall-clock seconds per phase, in pipeline order *)
  knobs : Config.knobs;
  distrusted : (Ir.Types.fname, Diag.t) Hashtbl.t;
      (* functions whose static results are no longer trusted *)
  degraded_all : bool;                (* rung 4: everything falls back to MSan *)
  events : Degrade.event list ref;    (* the ladder's audit trail, in order *)
  verify_reports : Verify.Report.t list;
      (* certificate-checker reports, in pipeline order (empty unless
         [knobs.verify]) *)
}

(* Per-phase wall time distribution (microseconds, log2 buckets), across
   every analysis in the process — the bench harness snapshots it. *)
let m_phase_us = Obs.Metrics.histogram "pipeline.phase_us"

let front ?(level = Optim.Pipeline.O0_IM) (src : string) : Ir.Prog.t =
  Obs.Trace.with_span ~cat:"pipeline" "phase.frontend" @@ fun () ->
  let prog = Tinyc.Lower.compile src in
  Optim.Pipeline.run level prog;
  prog

(* Guarded front end. Frontend diagnostics (lex/parse/lower) propagate —
   there is no sound fallback for source we cannot compile — but an
   optimizer fault degrades to a fresh unoptimized lowering, which is
   valid SSA by construction (the faulting pass may have left the first
   program half-rewritten). *)
let front_guarded ?(level = Optim.Pipeline.O0_IM)
    ?(knobs = Config.default_knobs) (src : string) :
    Ir.Prog.t * Degrade.event list =
  Obs.Trace.with_span ~cat:"pipeline" "phase.frontend" @@ fun () ->
  let prog = Tinyc.Lower.compile src in
  try
    Fault.check knobs Diag.Optim None;
    Optim.Pipeline.run level prog;
    (prog, [])
  with e ->
    let d = Diag.of_exn Diag.Optim e in
    let ev =
      {
        Degrade.phase = Diag.Optim;
        func = None;
        action = "optimizer disabled; fresh unoptimized lowering";
        diag = d;
        kind = Degrade.Fault;
      }
    in
    Degrade.observe ev;
    (Tinyc.Lower.compile src, [ ev ])

let analyze ?(knobs = Config.default_knobs) (prog : Ir.Prog.t) : analysis =
  Obs.Trace.with_span ~cat:"pipeline" "pipeline.analyze" @@ fun () ->
  let t0 = Sys.time () in
  let heap0 = (Gc.quick_stat ()).Gc.heap_words in
  let budget = Budget.of_knobs knobs in
  let events : Degrade.event list ref = ref [] in
  let distrusted : (Ir.Types.fname, Diag.t) Hashtbl.t = Hashtbl.create 4 in
  let degraded_all = ref false in
  (* Wall-clock per-phase timing (Sys.time above stays the CPU-time total
     Table 1 reports). Monotonic clock, clamped at >= 0: a wall-clock step
     must never flow negative phase times into BENCH_usher.json or budget
     checks. Wrapping outside the fault guard charges fallback work to the
     phase that degraded; each phase is also a trace span and a sample in
     the pipeline.phase_us histogram. *)
  let phase_times : (string * float) list ref = ref [] in
  let timed name f =
    let w0 = Obs.Clock.now_ns () in
    let r = Obs.Trace.with_span ~cat:"pipeline" ("phase." ^ name) f in
    let dt_ns = Obs.Clock.elapsed_ns w0 in
    Obs.Metrics.observe m_phase_us (dt_ns / 1000);
    phase_times := (name, float_of_int dt_ns *. 1e-9) :: !phase_times;
    r
  in
  let push ev =
    Degrade.observe ev;
    events := !events @ [ ev ]
  in
  let distrust phase fname exn =
    let d = Diag.of_exn phase exn in
    if not (Hashtbl.mem distrusted fname) then begin
      Hashtbl.replace distrusted fname d;
      push
        {
          Degrade.phase;
          func = Some fname;
          action = "function distrusted; full instrumentation";
          diag = d;
          kind = Degrade.Fault;
        }
    end
  in
  (* The sentinel's persistent distrust list (knobs.quarantine): functions
     implicated in unresolved soundness incidents are distrusted before any
     analysis runs, so a detected soundness bug costs precision, never
     correctness. Unknown names are ignored — the list is program-agnostic. *)
  List.iter
    (fun (fn, incident) ->
      match Ir.Prog.find_func prog fn with
      | None -> ()
      | Some _ ->
        if not (Hashtbl.mem distrusted fn) then begin
          let d =
            {
              Diag.severity = Diag.Warning;
              phase = Diag.Audit;
              loc = None;
              message = "quarantined by unresolved incident " ^ incident;
            }
          in
          Hashtbl.replace distrusted fn d;
          push
            {
              Degrade.phase = Diag.Audit;
              func = Some fn;
              action = "function quarantined; full instrumentation";
              diag = d;
              kind = Degrade.Quarantined incident;
            }
        end)
    knobs.quarantine;
  let fail_all phase exn =
    degraded_all := true;
    push
      {
        Degrade.phase;
        func = None;
        action = "whole-program degradation to full instrumentation";
        diag = Diag.of_exn phase exn;
        kind = Degrade.Fault;
      }
  in
  (* Certificate checking (knobs.verify): each checker replays its phase's
     specification against the finished artifact. A rejected certificate
     walks the same ladder as a phase fault — the offending function is
     distrusted when the violation names one, rung 4 otherwise. A crash or
     budget blow inside a checker aborts only that checker and the result
     is accepted unverified: verification adds assurance, never behavior. *)
  let verify_reports : Verify.Report.t list ref = ref [] in
  let run_checker name ~on_bad (f : unit -> Verify.Report.t) : unit =
    if knobs.verify && not !degraded_all then
      timed ("verify-" ^ name) (fun () ->
          try
            Fault.check knobs Diag.Verify None;
            let r = f () in
            verify_reports := !verify_reports @ [ r ];
            List.iter on_bad (Verify.Report.errors r)
          with e ->
            push
              {
                Degrade.phase = Diag.Verify;
                func = None;
                action = name ^ " checker aborted; result accepted unverified";
                diag = Diag.of_exn Diag.Verify e;
                kind = Degrade.Fault;
              })
  in
  (* Whole-program rejection: same rung 4 as a whole-program phase fault. *)
  let reject_all checker (v : Verify.Report.violation) =
    if not !degraded_all then begin
      degraded_all := true;
      push
        {
          Degrade.phase = Diag.Verify;
          func = None;
          action = checker ^ " certificate rejected; whole-program degradation";
          diag = v.Verify.Report.vdiag;
          kind = Degrade.Unverified checker;
        }
    end
  in
  (* Function-scoped rejection: same rung 3 as a per-function fault. *)
  let reject checker (v : Verify.Report.violation) =
    match v.Verify.Report.vfunc with
    | None -> reject_all checker v
    | Some fn ->
      if not (Hashtbl.mem distrusted fn) then begin
        Hashtbl.replace distrusted fn v.Verify.Report.vdiag;
        push
          {
            Degrade.phase = Diag.Verify;
            func = Some fn;
            action = "certificate rejected; function distrusted";
            diag = v.Verify.Report.vdiag;
            kind = Degrade.Unverified checker;
          }
      end
  in
  let not_trusted fn = Hashtbl.mem distrusted fn in
  (* Trusted-from-nothing artifact chain, for rung 4: the stub pointer
     analysis knows no objects, so everything downstream of it is small
     and deterministic. Shared lazily so the record stays consistent. *)
  let stub_chain =
    lazy
      (let pa = Analysis.Andersen.stub prog in
       let cg = Analysis.Callgraph.build prog pa in
       let mr = Analysis.Modref.compute prog pa cg in
       let mssa = Memssa.build ~on_fault:(fun _ _ -> ()) prog pa cg mr in
       (pa, cg, mr, mssa))
  in
  let s_pa () = let x, _, _, _ = Lazy.force stub_chain in x in
  let s_cg () = let _, x, _, _ = Lazy.force stub_chain in x in
  let s_mr () = let _, _, x, _ = Lazy.force stub_chain in x in
  let s_mssa () = let _, _, _, x = Lazy.force stub_chain in x in
  (* Whole-program phase guard: a fault is rung 4. *)
  let guard phase ~fallback f =
    if !degraded_all then fallback ()
    else
      try
        Fault.check knobs phase None;
        (* the in-phase polls are amortized; the boundary check makes even
           a tiny program notice an already-blown deadline *)
        (match budget with
        | Some b -> Diag.Budget.check_deadline b phase
        | None -> ());
        f ()
      with e ->
        fail_all phase e;
        fallback ()
  in
  let pa =
    timed "andersen" (fun () ->
        guard Diag.Andersen ~fallback:s_pa (fun () ->
            Analysis.Andersen.run
              ~config:
                {
                  Analysis.Andersen.field_sensitive = knobs.field_sensitive;
                  heap_cloning = knobs.heap_cloning;
                  small_array_fields = knobs.small_array_fields;
                }
              ?budget prog))
  in
  (* Seeded corruption of the solved points-to sets happens before anything
     downstream consumes them, so the damage is exactly what Verify.Pta is
     specified to catch (downstream artifacts stay mutually consistent). *)
  if Fault.wants knobs Diag.Andersen Config.Pts_bitflip && not !degraded_all
  then ignore (Fault.corrupt_pts pa);
  run_checker "pta" ~on_bad:(reject_all "pta") (fun () ->
      Verify.Pta.check ?budget prog pa);
  let cg =
    timed "callgraph" (fun () ->
        guard Diag.Callgraph ~fallback:s_cg (fun () ->
            Analysis.Callgraph.build prog pa))
  in
  let mr =
    timed "modref" (fun () ->
        guard Diag.Modref ~fallback:s_mr (fun () ->
            Analysis.Modref.compute prog pa cg))
  in
  let mssa =
    timed "memssa" (fun () ->
        guard Diag.Memssa ~fallback:s_mssa (fun () ->
            Memssa.build ?budget
              ~hook:(fun fn -> Fault.check knobs Diag.Memssa (Some fn))
              ~on_fault:(fun fn e -> distrust Diag.Memssa fn e)
              prog pa cg mr))
  in
  (* If rung 4 triggered anywhere above, swap in the whole stub chain so
     the artifacts agree with each other (mixing a real mod/ref with a
     stub points-to would dangle object ids). *)
  let pa, cg, mr, mssa =
    if !degraded_all then (s_pa (), s_cg (), s_mr (), s_mssa ())
    else (pa, cg, mr, mssa)
  in
  run_checker "ssa" ~on_bad:(reject "ssa") (fun () ->
      Verify.Ssa.check ?budget ~skip:not_trusted prog pa cg mr mssa);
  let build_vfg ~track_memory ~guarded () =
    let config = { Vfg.Build.track_memory; semi_strong = knobs.semi_strong } in
    if guarded then
      Vfg.Build.build ~config ?budget
        ~hook:(fun fn -> Fault.check knobs Diag.Vfg_build (Some fn))
        ~on_fault:(fun fn e -> distrust Diag.Vfg_build fn e)
        prog pa cg mr mssa
    else Vfg.Build.build ~config ~on_fault:(fun _ _ -> ()) prog pa cg mr mssa
  in
  let vfg =
    timed "vfg" (fun () ->
        guard Diag.Vfg_build
          ~fallback:(fun () -> build_vfg ~track_memory:true ~guarded:false ())
          (fun () -> build_vfg ~track_memory:true ~guarded:true ()))
  in
  let vfg_tl =
    timed "vfg-tl" (fun () ->
        guard Diag.Vfg_build
          ~fallback:(fun () -> build_vfg ~track_memory:false ~guarded:false ())
          (fun () -> build_vfg ~track_memory:false ~guarded:true ()))
  in
  (* Corrupt, then check, then force: the structural checkers run before
     [force_distrusted] (whose F-pins would otherwise read as extra
     edges), and a function whose VFG fragment fails its certificate is
     distrusted right here, so the force pass below pins it to ⊥. *)
  if Fault.wants knobs Diag.Vfg_build Config.Drop_vfg_edge && not !degraded_all
  then ignore (Fault.corrupt_vfg vfg.Vfg.Build.graph);
  run_checker "vfg" ~on_bad:(reject "vfg") (fun () ->
      Verify.Vfg.check_structure ?budget ~skip:not_trusted ~name:"vfg" vfg);
  run_checker "vfg-tl" ~on_bad:(reject "vfg-tl") (fun () ->
      Verify.Vfg.check_structure ?budget ~skip:not_trusted ~name:"vfg-tl"
        vfg_tl);
  (* Rung 3: force every distrusted function's VFG fragment (and every
     flow crossing the trust boundary) to ⊥ before resolution, in both
     graphs. Forcing only adds edges to the F root, so Γ only gains ⊥. *)
  if (not !degraded_all) && Hashtbl.length distrusted > 0 then begin
    Vfg.Build.force_distrusted vfg distrusted;
    Vfg.Build.force_distrusted vfg_tl distrusted
  end;
  (* Rung 2: a resolution fault degrades Γ to all-undefined — guided
     instrumentation is monotone in the ⊥ set, so this only adds items.
     With [knobs.summaries] the compositional engine (lib/summary)
     replaces the monolithic search; its own softer failures — a faulting
     SCC, a corrupt cache entry — degrade inside the engine (fall back to
     direct, exact resolution of the affected summaries) and surface here
     as Info-severity events: Γ stays exact, so they must not read as a
     rung-2 degradation downstream. *)
  let sum_stats =
    if knobs.summaries then Some (Summary.Engine.fresh_stats ()) else None
  in
  (* One prep serves both resolutions: the canonical naming and IR
     serializations behind the content keys are graph-independent. *)
  let sum_prep = lazy (Summary.Engine.prep ~prog) in
  let resolve_guard what (bld : Vfg.Build.t) : Vfg.Resolve.gamma * bool =
    if !degraded_all then (Vfg.Resolve.all_bot bld.graph, false)
    else
      try
        Fault.check knobs Diag.Resolve None;
        let gm =
          match sum_stats with
          | Some stats ->
            Summary.Engine.resolve
              ~context_sensitive:knobs.context_sensitive ?budget
              ?cache:knobs.summary_cache ~prep:(Lazy.force sum_prep)
              ~hook:(fun fn -> Fault.check knobs Diag.Resolve (Some fn))
              ~on_fallback:(fun fns d ->
                push
                  {
                    Degrade.phase = Diag.Resolve;
                    func = (match fns with [ f ] -> Some f | _ -> None);
                    action =
                      Printf.sprintf
                        "summary SCC {%s} fell back to direct resolution"
                        (String.concat "," fns);
                    diag = { d with Diag.severity = Diag.Info };
                    kind = Degrade.Fault;
                  })
              ~on_corrupt:(fun path ->
                push
                  {
                    Degrade.phase = Diag.Resolve;
                    func = None;
                    action = "corrupt summary cache entry removed; recomputed";
                    diag =
                      {
                        Diag.severity = Diag.Info;
                        phase = Diag.Resolve;
                        loc = None;
                        message = "checksum mismatch: " ^ path;
                      };
                    kind = Degrade.Fault;
                  })
              ~stats ~prog:bld.prog ~objects:bld.pa.Analysis.Andersen.objects
              ~cg:bld.cg bld.graph
          | None ->
            Vfg.Resolve.resolve ~context_sensitive:knobs.context_sensitive
              ?budget bld.graph
        in
        (gm, true)
      with e ->
        push
          {
            Degrade.phase = Diag.Resolve;
            func = None;
            action = Printf.sprintf "Γ(%s) degraded to all-undefined" what;
            diag = Diag.of_exn Diag.Resolve e;
            kind = Degrade.Fault;
          };
        (Vfg.Resolve.all_bot bld.graph, false)
  in
  (* Γ certification: only a genuinely resolved Γ is checked (the all-⊥
     fallback certifies nothing and is trivially sound); a rejected Γ is
     degraded to all-⊥, which only adds instrumentation. *)
  let gamma_guard name (bld : Vfg.Build.t) (gm, resolved) =
    if not resolved then gm
    else begin
      if Fault.wants knobs Diag.Resolve Config.Gamma_flip then
        ignore (Fault.corrupt_gamma gm);
      let bad = ref false in
      run_checker name
        ~on_bad:(fun v ->
          if not !bad then begin
            bad := true;
            push
              {
                Degrade.phase = Diag.Verify;
                func = None;
                action =
                  Printf.sprintf "Γ certificate (%s) rejected; degraded to \
                                  all-undefined" name;
                diag = v.Verify.Report.vdiag;
                kind = Degrade.Unverified name;
              }
          end)
        (fun () ->
          Verify.Vfg.check_gamma ?budget
            ~context_sensitive:knobs.context_sensitive ~name bld gm);
      if !bad then Vfg.Resolve.all_bot bld.graph else gm
    end
  in
  let gamma =
    gamma_guard "gamma" vfg (timed "resolve" (fun () -> resolve_guard "TL+AT" vfg))
  in
  let gamma_tl =
    gamma_guard "gamma-tl" vfg_tl
      (timed "resolve-tl" (fun () -> resolve_guard "TL" vfg_tl))
  in
  (* Rung 1: without Opt II the redundant checks simply stay in. Opt II is
     also skipped whenever anything above degraded — its dominance argument
     assumes the unmodified Γ of a fully analyzed program. *)
  let opt2 =
    timed "opt2" @@ fun () ->
    let keep_checks reason diag =
      (match (reason, diag) with
      | Some action, Some d ->
        push
          { Degrade.phase = Diag.Opt2; func = None; action; diag = d;
            kind = Degrade.Fault }
      | _ -> ());
      { Vfg.Opt2.gamma; redirected = 0 }
    in
    if !degraded_all then keep_checks None None
    else if Hashtbl.length distrusted > 0 then
      keep_checks (Some "Opt II skipped; redundant checks kept")
        (Some
           {
             Diag.severity = Diag.Info;
             phase = Diag.Opt2;
             loc = None;
             message = "distrusted functions present";
           })
    else
      try
        Fault.check knobs Diag.Opt2 None;
        Vfg.Opt2.run ~context_sensitive:knobs.context_sensitive ?budget vfg
      with e ->
        keep_checks (Some "Opt II skipped; redundant checks kept")
          (Some (Diag.of_exn Diag.Opt2 e))
  in
  let dt = Sys.time () -. t0 in
  let heap1 = (Gc.quick_stat ()).Gc.heap_words in
  let words = max 0 (heap1 - heap0) in
  {
    prog;
    pa;
    cg;
    mr;
    mssa;
    vfg;
    gamma;
    vfg_tl;
    gamma_tl;
    opt2;
    summary_stats = sum_stats;
    analysis_time_s = dt;
    analysis_mem_mb = float_of_int (words * 8) /. 1048576.0;
    phase_times_s = List.rev !phase_times;
    knobs;
    distrusted;
    degraded_all = !degraded_all;
    events;
    verify_reports = !verify_reports;
  }

let distrusted_functions (a : analysis) : string list =
  Hashtbl.fold (fun fn _ acc -> fn :: acc) a.distrusted []
  |> List.sort compare

(** Instrumentation plan of one variant, plus the guided-traversal result
    when applicable. Degradation never removes instrumentation: under rung
    4 (or any last-resort fault while building a guided plan) every
    variant's plan IS full instrumentation. *)
let plan_for (a : analysis) (v : Config.variant) :
    Instr.Item.plan * Instr.Guided.result option =
  Obs.Trace.with_span ~cat:"pipeline" ("plan." ^ Config.variant_name v)
  @@ fun () ->
  let full () = (Instr.Full.build a.prog, None) in
  let distrust_set =
    if Hashtbl.length a.distrusted = 0 then None
    else begin
      let t = Hashtbl.create (Hashtbl.length a.distrusted) in
      Hashtbl.iter (fun fn _ -> Hashtbl.replace t fn ()) a.distrusted;
      Some t
    end
  in
  let guided ~opt1 bld gamma =
    try
      Fault.check a.knobs Diag.Instrument None;
      let r =
        Instr.Guided.build ~options:{ Instr.Guided.opt1 } ?distrusted:distrust_set
          bld gamma
      in
      (r.plan, Some r)
    with e ->
      let ev =
        {
          Degrade.phase = Diag.Instrument;
          func = None;
          action =
            Config.variant_name v ^ " plan degraded to full instrumentation";
          diag = Diag.of_exn Diag.Instrument e;
          kind = Degrade.Fault;
        }
      in
      Degrade.observe ev;
      a.events := !(a.events) @ [ ev ];
      full ()
  in
  match v with
  | Config.Msan -> full ()
  | _ when a.degraded_all -> full ()
  | Config.Usher_tl -> guided ~opt1:false a.vfg_tl a.gamma_tl
  | Config.Usher_tl_at -> guided ~opt1:false a.vfg a.gamma
  | Config.Usher_opt1 -> guided ~opt1:true a.vfg a.gamma
  | Config.Usher_full -> guided ~opt1:true a.vfg a.opt2.gamma
