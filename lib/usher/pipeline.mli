(** The end-to-end Usher pipeline (the paper's Fig. 3):

    source → IR → O-level optimization → pointer analysis → memory SSA →
    VFG → definedness resolution → instrumentation plans.

    Every phase runs under an optional resource budget ({!Config.knobs})
    and a fault guard; failures walk a sound degradation ladder instead of
    escaping: Opt II is dropped, Γ falls to all-undefined, single functions
    are distrusted (full instrumentation + ⊥-forced VFG fragment), or the
    whole program degrades to MSan. Degradation only ever adds
    instrumentation, so no undefined use is lost. *)

type analysis = {
  prog : Ir.Prog.t;
  pa : Analysis.Andersen.t;
  cg : Analysis.Callgraph.t;
  mr : Analysis.Modref.t;
  mssa : Memssa.t;
  vfg : Vfg.Build.t;                  (** full graph (TL+AT) *)
  gamma : Vfg.Resolve.gamma;          (** resolved on [vfg] *)
  vfg_tl : Vfg.Build.t;               (** top-level-only graph *)
  gamma_tl : Vfg.Resolve.gamma;
  opt2 : Vfg.Opt2.result;             (** Γ after redundant check elimination *)
  summary_stats : Summary.Engine.stats option;
      (** compositional-resolution counters ([Some] iff [knobs.summaries]),
          shared by the TL+AT and TL resolutions *)
  analysis_time_s : float;
  analysis_mem_mb : float;
  phase_times_s : (string * float) list;
      (** wall-clock seconds per analysis phase, in pipeline order:
          andersen, callgraph, modref, memssa, vfg, vfg-tl, resolve,
          resolve-tl, opt2 *)
  knobs : Config.knobs;
  distrusted : (Ir.Types.fname, Diag.t) Hashtbl.t;
      (** functions whose static results are no longer trusted *)
  degraded_all : bool;  (** rung 4: every variant falls back to MSan *)
  events : Degrade.event list ref;  (** the ladder's audit trail, in order *)
  verify_reports : Verify.Report.t list;
      (** certificate-checker reports, in pipeline order: pta, ssa, vfg,
          vfg-tl, gamma, gamma-tl (empty unless [knobs.verify]; aborted
          or skipped checkers are simply absent) *)
}

(** Parse, lower and optimize a TinyC source (default level O0+IM). *)
val front : ?level:Optim.Pipeline.level -> string -> Ir.Prog.t

(** Like {!front}, but an optimizer fault degrades to a fresh unoptimized
    lowering instead of crashing (frontend diagnostics still propagate:
    there is no sound fallback for uncompilable source). *)
val front_guarded :
  ?level:Optim.Pipeline.level ->
  ?knobs:Config.knobs ->
  string ->
  Ir.Prog.t * Degrade.event list

(** Every analysis artifact shared by the variants. Never raises for
    budget exhaustion or injected faults — it degrades instead. *)
val analyze : ?knobs:Config.knobs -> Ir.Prog.t -> analysis

(** Distrusted functions, sorted. *)
val distrusted_functions : analysis -> string list

(** Instrumentation plan of one variant, plus the guided-traversal result
    when applicable (None for MSan and for degraded-to-full plans). *)
val plan_for :
  analysis -> Config.variant -> Instr.Item.plan * Instr.Guided.result option
