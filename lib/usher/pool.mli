(** A persistent work-stealing pool of OCaml 5 domains.

    Each worker owns a FIFO queue; submission round-robins and idle
    workers steal from the longest other queue, so rough submission
    order survives and no worker idles while another has a backlog.
    A task that raises never kills its worker: the exception goes to
    [on_exn] (default: counted in the ["pool.task_exceptions"] metric
    and dropped) and the worker continues — per-task crash isolation is
    the pool's core contract. *)

type t

val create :
  ?name:string ->
  ?on_exn:(string -> exn -> Printexc.raw_backtrace -> unit) ->
  jobs:int ->
  unit ->
  t
(** Spawn [max 1 jobs] worker domains. [on_exn] receives the pool name
    and any exception escaping a task. *)

val jobs : t -> int

val submit : t -> (unit -> unit) -> bool
(** Enqueue a task; [false] once {!shutdown} has begun (the task is not
    accepted). Never blocks. *)

val queued : t -> int
(** Tasks admitted but not yet started. *)

val in_flight : t -> int
(** Tasks currently running. *)

val drain : t -> unit
(** Block until no task is queued or running. Does not stop admission. *)

val shutdown : t -> unit
(** Stop admitting, let queued and in-flight tasks finish, join every
    worker domain. Idempotent-ish: a second call joins nothing. *)
