(* One end-to-end experiment: compile a TinyC program at an optimization
   level, analyze it, instrument it under every variant, execute natively
   and under each plan, and report slowdowns plus static instrumentation
   statistics. This is the unit both the benchmark harness and the examples
   are built from. *)

type variant_result = {
  variant : Config.variant;
  static_stats : Instr.Item.stats;
  slowdown_pct : float;
  dynamic_shadow_ops : int;
  detections : Ir.Types.label list;     (* E(l) that fired *)
  compressed_away : int;                (* items removed by shadow DCE *)
}

type t = {
  name : string;
  level : Optim.Pipeline.level;
  analysis : Pipeline.analysis;
  table1 : Analysis_stats.t;
  native_counters : Runtime.Counters.t;
  native_outputs : int list;
  gt_uses : Ir.Types.label list;        (* ground-truth undefined uses *)
  results : variant_result list;
}

exception Unsound of string

(** Is the ground-truth undefined use at [lbl] covered by [detections]?
    Covered means: detected at [lbl] itself, or dominated (same function,
    executes-before) by a statement whose check fired — the situation Opt II
    creates deliberately: the undefined value was already reported at the
    dominating check, and its rippling effects are suppressed (§3.5.2). *)
let covered (prog : Ir.Prog.t) (detections : (Ir.Types.label, unit) Hashtbl.t)
    (lbl : Ir.Types.label) : bool =
  Hashtbl.mem detections lbl
  || Ir.Prog.fold_funcs
       (fun acc f ->
         acc
         ||
         let pos = Analysis.Dominance.label_positions f in
         if not (Hashtbl.mem pos lbl) then false
         else begin
           let dom = Analysis.Dominance.compute f in
           Hashtbl.fold
             (fun d () acc ->
               acc
               || (Hashtbl.mem pos d
                  && Analysis.Dominance.label_dominates dom pos d lbl))
             detections false
         end)
       false prog

(** Run every variant on [src]. [check_soundness] verifies that each plan
    detects every ground-truth undefined use at a critical operation — the
    paper's soundness guarantee ("no uses of undefined values will be
    missed"). The check is skipped for O1/O2, where LLVM-style optimization
    legitimately hides uses (§4.3/§4.6: deleted dead loads take their checks
    with them, and folded branches change the undef-use set). *)
let run ?(name = "program") ?(level = Optim.Pipeline.O0_IM)
    ?(knobs = Config.default_knobs) ?(variants = Config.all_variants)
    ?(check_soundness = true) ?limits ?(engine = Vm.Engine.Interp)
    (src : string) : t =
  Obs.Trace.with_span ~cat:"experiment"
    ~args:[ ("level", Obs.Trace.Str (Optim.Pipeline.level_to_string level)) ]
    ("experiment." ^ name)
  @@ fun () ->
  let prog, front_events = Pipeline.front_guarded ~level ~knobs src in
  let analysis = Pipeline.analyze ~knobs prog in
  analysis.events := front_events @ !(analysis.events);
  let table1 = Analysis_stats.compute ~src analysis in
  let native = Vm.Engine.run_native ?limits engine prog in
  let compress = level <> Optim.Pipeline.O0_IM in
  let results =
    List.map
      (fun v ->
        let plan, _ = Pipeline.plan_for analysis v in
        (* Step (3) of the paper's O1/O2 methodology: rerun the optimizer
           over the inserted instrumentation (shadow constant folding +
           shadow dead-code elimination). *)
        let compressed_away =
          if compress then
            Instr.Compress.fold_constants plan + Instr.Compress.run plan
          else 0
        in
        let outcome = Vm.Engine.run_plan ?limits engine prog plan in
        (* The instrumented run must preserve program behaviour... *)
        if outcome.outputs <> native.outputs then
          raise
            (Unsound
               (Printf.sprintf "%s/%s: instrumented run diverged from native"
                  name (Config.variant_name v)));
        (* ...and must not miss any ground-truth undefined use. *)
        if check_soundness && level = Optim.Pipeline.O0_IM then
          Hashtbl.iter
            (fun lbl () ->
              if not (covered prog outcome.detections lbl) then
                raise
                  (Unsound
                     (Printf.sprintf
                        "%s/%s: ground-truth undefined use at l%d not detected"
                        name (Config.variant_name v) lbl)))
            outcome.gt_uses;
        {
          variant = v;
          static_stats = Instr.Item.stats_of plan;
          slowdown_pct =
            Runtime.Costmodel.slowdown_pct ~native:native.counters
              ~instrumented:outcome.counters ();
          dynamic_shadow_ops = Runtime.Counters.shadow_ops outcome.counters;
          detections = Hashtbl.fold (fun l () acc -> l :: acc) outcome.detections [];
          compressed_away;
        })
      variants
  in
  {
    name;
    level;
    analysis;
    table1;
    native_counters = native.counters;
    native_outputs = native.outputs;
    gt_uses = Hashtbl.fold (fun l () acc -> l :: acc) native.gt_uses [];
    results;
  }

let result_for (t : t) (v : Config.variant) : variant_result =
  List.find (fun r -> r.variant = v) t.results

(* Bounded parallel map over a work-stealing {!Pool} of OCaml 5 domains.
   One task per item; each slot of [results] is written by exactly one
   worker, so the only synchronization needed is the pool shutdown join.
   Results keep input order.

   Failure handling: fail-fast — the first recorded failure makes every
   not-yet-started task a no-op (in-flight items still finish; the pool
   never kills a domain mid-write). After the join, the failure at the
   lowest input index that actually ran is re-raised *with the worker's
   backtrace* ([Printexc.raise_with_backtrace]; a bare [raise] here would
   replace the worker's trace with the caller's). Which trailing items
   were skipped depends on scheduling, but the success outcome and the
   raised exception's provenance do not. *)
let parallel_map ?(jobs = 1) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let input = Array.of_list xs in
  let n = Array.length input in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let failed = Atomic.make false in
    let pool = Pool.create ~name:"experiment" ~jobs:(min jobs n) () in
    Array.iteri
      (fun i x ->
        ignore
          (Pool.submit pool (fun () ->
               if not (Atomic.get failed) then begin
                 match f x with
                 | r -> results.(i) <- Some (Ok r)
                 | exception e ->
                   let bt = Printexc.get_raw_backtrace () in
                   results.(i) <- Some (Error (e, bt));
                   Atomic.set failed true
               end)))
      input;
    Pool.shutdown pool;
    Array.iter
      (function
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | Some (Ok _) | None -> ())
      results;
    Array.to_list results
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error _) | None -> assert false)
  end
