(* A persistent work-stealing pool of OCaml 5 domains.

   Generalizes the one-shot domain fan-out that used to live inside
   [Experiment.parallel_map] into a long-lived scheduler the service
   daemon (lib/serve) can keep hot across requests. Each worker owns a
   FIFO run queue; submission round-robins across queues, and an idle
   worker steals from the longest other queue before sleeping. Tasks are
   whole requests or whole benchmark experiments — milliseconds to
   seconds of work — so queue operations take one shared mutex: the
   stealing structure is about fairness and isolation, not lock
   avoidance, and a single lock keeps the sleep/wake protocol free of
   missed-signal races by construction.

   Crash isolation: a task that raises never kills its worker domain.
   The exception is handed to [on_exn] (default: counted and dropped)
   and the worker moves on to the next task. Callers that need the
   exception — the parallel_map refactor, the daemon's retry logic —
   catch it inside their own task closure instead.

   Shutdown is graceful by construction: [shutdown] stops admissions,
   lets queued and in-flight tasks finish, then joins every domain. The
   daemon implements "shed instead of finish" on top by flipping a flag
   its tasks check on entry. *)

type t = {
  name : string;
  mu : Mutex.t;
  work : Condition.t;           (* workers sleep here *)
  idle : Condition.t;           (* drain waiters sleep here *)
  queues : (unit -> unit) Queue.t array;
  mutable rr : int;             (* round-robin submission cursor *)
  mutable queued_n : int;
  mutable running_n : int;
  mutable stopping : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t array;
  on_exn : string -> exn -> Printexc.raw_backtrace -> unit;
}

let m_task_exns = Obs.Metrics.counter "pool.task_exceptions"

let default_on_exn _name _e _bt = Obs.Metrics.incr m_task_exns

(* Pop from own queue, else steal from the longest victim queue. Both
   ends are FIFO (Queue.pop takes the oldest), so stealing preserves
   rough submission order — what a request server wants. Caller holds
   [t.mu]. *)
let take (t : t) (w : int) : (unit -> unit) option =
  if not (Queue.is_empty t.queues.(w)) then Some (Queue.pop t.queues.(w))
  else begin
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun i q ->
        let n = Queue.length q in
        if i <> w && n > !best then begin
          victim := i;
          best := n
        end)
      t.queues;
    if !victim >= 0 then Some (Queue.pop t.queues.(!victim)) else None
  end

let rec worker (t : t) (w : int) : unit =
  Mutex.lock t.mu;
  let rec next () =
    match take t w with
    | Some task ->
      t.queued_n <- t.queued_n - 1;
      t.running_n <- t.running_n + 1;
      Some task
    | None ->
      if t.stopping then None
      else begin
        Condition.wait t.work t.mu;
        next ()
      end
  in
  match next () with
  | None -> Mutex.unlock t.mu
  | Some task ->
    Mutex.unlock t.mu;
    (try task ()
     with e -> t.on_exn t.name e (Printexc.get_raw_backtrace ()));
    Mutex.lock t.mu;
    t.running_n <- t.running_n - 1;
    if t.queued_n = 0 && t.running_n = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.mu;
    worker t w

let create ?(name = "pool") ?(on_exn = default_on_exn) ~jobs () : t =
  let jobs = max 1 jobs in
  let t =
    {
      name;
      mu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queues = Array.init jobs (fun _ -> Queue.create ());
      rr = 0;
      queued_n = 0;
      running_n = 0;
      stopping = false;
      joined = false;
      domains = [||];
      on_exn;
    }
  in
  t.domains <- Array.init jobs (fun w -> Domain.spawn (fun () -> worker t w));
  t

let jobs (t : t) : int = Array.length t.queues

let submit (t : t) (task : unit -> unit) : bool =
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    false
  end
  else begin
    Queue.push task t.queues.(t.rr mod Array.length t.queues);
    t.rr <- t.rr + 1;
    t.queued_n <- t.queued_n + 1;
    Condition.signal t.work;
    Mutex.unlock t.mu;
    true
  end

let queued (t : t) : int = Mutex.protect t.mu (fun () -> t.queued_n)
let in_flight (t : t) : int = Mutex.protect t.mu (fun () -> t.running_n)

let drain (t : t) : unit =
  Mutex.lock t.mu;
  while t.queued_n + t.running_n > 0 do
    Condition.wait t.idle t.mu
  done;
  Mutex.unlock t.mu

let shutdown (t : t) : unit =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work;
  let join_here = not t.joined in
  t.joined <- true;
  Mutex.unlock t.mu;
  if join_here then Array.iter Domain.join t.domains
