(** Analysis variants evaluated in the paper (§4.5) and tuning knobs. *)

(** The five instrumentation configurations of Figures 10 and 11. *)
type variant =
  | Msan          (** full instrumentation — the baseline *)
  | Usher_tl      (** top-level variables only, no Opt I/II *)
  | Usher_tl_at   (** + address-taken variables *)
  | Usher_opt1    (** + Opt I (value-flow simplification) *)
  | Usher_full    (** + Opt II (redundant check elimination) *)

val all_variants : variant list
val variant_name : variant -> string

(** Seeded analyzer corruptions: each silently damages one phase's
    finished artifact in the unsound (fact-dropping) direction, which the
    certifying checkers (lib/verify) must always detect. *)
type corruption =
  | Pts_bitflip    (** clear one set bit in the points-to solution *)
  | Drop_vfg_edge  (** remove one value-flow edge from the VFG *)
  | Gamma_flip     (** flip one ⊥ entry of Γ to ⊤ *)

(** How an injected fault manifests at a phase boundary. *)
type fault_kind =
  | Crash      (** the phase raises a structured diagnostic *)
  | Exhaust    (** the phase reports its resource budget as blown *)
  | Corrupt of corruption
      (** the phase completes but its result is silently damaged *)

(** A fault to inject (testing the degradation ladder): fires when the
    pipeline enters [fphase] — at the phase boundary when [ffunc] is
    [None], or while processing that one function otherwise. *)
type fault = {
  fphase : Diag.phase;
  ffunc : string option;
  fkind : fault_kind;
}

(** Ablation switches (DESIGN.md §5); the paper's configuration is
    {!default_knobs}. *)
type knobs = {
  semi_strong : bool;
  context_sensitive : bool;
  field_sensitive : bool;
  heap_cloning : bool;
  small_array_fields : int;
      (** extension beyond the paper (see {!Analysis.Andersen.config});
          0 = the paper's arrays-as-a-whole treatment *)
  budget_ms : int option;      (** wall-clock budget for the whole analysis *)
  solver_fuel : int option;    (** Andersen worklist iterations *)
  vfg_node_cap : int option;   (** VFG size cap *)
  resolve_fuel : int option;   (** Γ resolution states *)
  summaries : bool;
      (** resolve Γ compositionally from per-function value-flow
          summaries (lib/summary) instead of the monolithic search;
          byte-identical Γ, plans and certificates by contract *)
  summary_cache : string option;
      (** directory for the content-hashed summary artifact cache;
          ignored unless [summaries] is on *)
  verify : bool;
      (** run the certificate checkers (lib/verify) after each pipeline
          phase; violations feed the degradation ladder *)
  inject : fault list;         (** faults to inject (tests/CLI) *)
  quarantine : (string * string) list;
      (** functions the soundness sentinel has quarantined, as
          (function, incident id): {!Pipeline.analyze} distrusts each one
          up front, forcing full instrumentation until the incident is
          resolved (see lib/audit) *)
}

val default_knobs : knobs
