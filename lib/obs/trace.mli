(** Span tracer emitting Chrome trace_event JSON (open the file in
    chrome://tracing or https://ui.perfetto.dev).

    Off by default and observationally inert when off: every entry point
    checks [enabled] first and records/allocates nothing when it is
    false. Recording is per-domain (lock-free after the first event on a
    domain); merge happens in [events]/[write]. *)

type arg = Str of string | Int of int | Float of float

type event = {
  ph : char;  (** 'B' begin, 'E' end, 'i' instant, 'C' counter *)
  name : string;
  cat : string;
  ts_ns : int;  (** monotonic (Obs.Clock) nanoseconds *)
  tid : int;  (** recording domain id *)
  args : (string * arg) list;
}

val enabled : unit -> bool
val start : unit -> unit
val stop : unit -> unit

val with_span :
  ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a begin/end span pair (closed even
    if [f] raises; the exception is re-raised with its backtrace). Span
    begins periodically attach a GC counter sample ([Gc.quick_stat]).
    When tracing is disabled this is exactly [f ()]. *)

val begin_span : ?cat:string -> ?args:(string * arg) list -> string -> unit
val end_span : ?cat:string -> string -> unit

val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit
(** A point-in-time event (degradations, quarantines, incidents). *)

val counter : ?cat:string -> string -> (string * arg) list -> unit
(** A 'C' counter sample (plotted as a stacked series by the viewers). *)

val events : unit -> event list
(** All recorded events from every domain, sorted by timestamp. Call
    after worker domains have joined. *)

val clear : unit -> unit
(** Drop all recorded events (keeps [enabled] as-is). *)

val to_json_string : unit -> string
(** The Chrome trace JSON document for the current event log. *)

val write : string -> unit
(** Write [to_json_string] to a file. *)
