(* Span tracer emitting Chrome trace_event JSON (chrome://tracing or
   https://ui.perfetto.dev).

   Design constraints, in order:

   1. Observationally inert when disabled. [enabled] is a single immutable
      boolean read; every recording entry point checks it first and does
      no allocation when it is false. Tracing is expected to be switched
      on once at process start (before worker domains spawn) by
      `--trace FILE`.

   2. Domain-safe without contention. Each domain appends events to its
      own buffer (Domain.DLS); the registry of buffers is touched under a
      mutex only on first use per domain. [events]/[write] merge-sort the
      buffers — callers do that after worker joins.

   3. Zero dependencies: the JSON emitter is hand-rolled (as in
      bench/main.ml, the schema is too small to need a library).

   Span begin/end are recorded as Chrome 'B'/'E' phases with the domain id
   as `tid`, so nesting renders as a flame graph per domain. Degradation /
   quarantine events surface as 'i' (instant) events; counters (GC samples,
   solver work) as 'C' events. *)

type arg = Str of string | Int of int | Float of float

type event = {
  ph : char; (* 'B' begin, 'E' end, 'i' instant, 'C' counter *)
  name : string;
  cat : string;
  ts_ns : int;
  tid : int;
  args : (string * arg) list;
}

let enabled_ = ref false
let[@inline] enabled () = !enabled_
let start () = enabled_ := true
let stop () = enabled_ := false

type tbuf = { tid : int; mutable evs : event list; mutable nspans : int }

let mu = Mutex.create ()
let bufs : tbuf list ref = ref []

let dls : tbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = { tid = (Domain.self () :> int); evs = []; nspans = 0 } in
      Mutex.protect mu (fun () -> bufs := b :: !bufs);
      b)

let record ?(cat = "usher") ?(args = []) ph name =
  let b = Domain.DLS.get dls in
  b.evs <- { ph; name; cat; ts_ns = Clock.now_ns (); tid = b.tid; args } :: b.evs

(* Heap/GC sampling: a 'C' (counter) event from Gc.quick_stat, attached to
   span begins, amortized so that function-grained spans do not turn the
   trace into a GC log. *)
let gc_sample_mask = 15

let gc_args () =
  let s = Gc.quick_stat () in
  [
    ("heap_words", Int s.Gc.heap_words);
    ("top_heap_words", Int s.Gc.top_heap_words);
    ("minor_collections", Int s.Gc.minor_collections);
    ("major_collections", Int s.Gc.major_collections);
  ]

let begin_span ?cat ?args name =
  if !enabled_ then begin
    let b = Domain.DLS.get dls in
    if b.nspans land gc_sample_mask = 0 then record ~cat:"gc" ~args:(gc_args ()) 'C' "gc";
    b.nspans <- b.nspans + 1;
    record ?cat ?args 'B' name
  end

let end_span ?cat name = if !enabled_ then record ?cat 'E' name

let with_span ?cat ?args name f =
  if not !enabled_ then f ()
  else begin
    begin_span ?cat ?args name;
    match f () with
    | r ->
      end_span ?cat name;
      r
    | exception e ->
      (* The span must close even on a fault (the pipeline degrades rather
         than unwinding past phase guards, but be safe); re-raise with the
         original backtrace. *)
      let bt = Printexc.get_raw_backtrace () in
      end_span ?cat name;
      Printexc.raise_with_backtrace e bt
  end

let instant ?cat ?args name = if !enabled_ then record ?cat ?args 'i' name
let counter ?cat name args = if !enabled_ then record ?cat ~args 'C' name

let events () : event list =
  let bs = Mutex.protect mu (fun () -> !bufs) in
  List.concat_map (fun b -> b.evs) bs
  |> List.sort (fun a b -> compare (a.ts_ns, a.tid) (b.ts_ns, b.tid))

let clear () =
  let bs = Mutex.protect mu (fun () -> !bufs) in
  List.iter
    (fun b ->
      b.evs <- [];
      b.nspans <- 0)
    bs

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON emission                                    *)
(* ------------------------------------------------------------------ *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_arg b = function
  | Str s -> add_json_string b s
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    Buffer.add_string b (if Float.is_finite f then Printf.sprintf "%.6g" f else "0")

let add_event b (e : event) =
  Buffer.add_string b "{\"name\":";
  add_json_string b e.name;
  Buffer.add_string b ",\"cat\":";
  add_json_string b e.cat;
  Buffer.add_string b ",\"ph\":";
  add_json_string b (String.make 1 e.ph);
  (* Chrome expects microseconds; keep nanosecond precision fractionally. *)
  Buffer.add_string b
    (Printf.sprintf ",\"ts\":%.3f" (float_of_int e.ts_ns /. 1000.0));
  Buffer.add_string b (Printf.sprintf ",\"pid\":1,\"tid\":%d" e.tid);
  if e.ph = 'i' then Buffer.add_string b ",\"s\":\"t\"";
  (match e.args with
  | [] -> ()
  | args ->
    Buffer.add_string b ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_json_string b k;
        Buffer.add_char b ':';
        add_arg b v)
      args;
    Buffer.add_char b '}');
  Buffer.add_char b '}'

let to_json_string () : string =
  let evs = events () in
  let b = Buffer.create (4096 + (128 * List.length evs)) in
  Buffer.add_string b "{\"traceEvents\":[\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b "  ";
      add_event b e)
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json_string ()))
