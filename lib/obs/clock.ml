(* The single monotonic time source for the whole stack.

   Everything that measures a duration or enforces a deadline — pipeline
   phase timers, Diag.Budget wall-clock deadlines, the bench harness's
   total-wall line, trace-event timestamps — reads this clock, never
   [Unix.gettimeofday]: the wall clock can step (NTP slew, manual set,
   leap smearing), which used to yield negative or garbage phase times
   that flowed straight into BENCH_usher.json and budget checks. *)

external now_ns : unit -> int = "obs_monotonic_now_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) *. 1e-9

(* Durations are clamped at >= 0 as a belt-and-braces guard: the source
   is monotonic, but a caller mixing timestamps from before/after a
   [reset] in tests, or a hypothetical non-monotonic fallback, must
   still never observe a negative duration. *)
let elapsed_ns (t0_ns : int) : int = max 0 (now_ns () - t0_ns)
let elapsed_s (t0_s : float) : float = Float.max 0.0 (now_s () -. t0_s)
let span_s ~(t0 : float) ~(t1 : float) : float = Float.max 0.0 (t1 -. t0)
