/* Monotonic clock for the observability layer (Obs.Clock).

   CLOCK_MONOTONIC never steps backwards (unlike gettimeofday, which NTP
   or an operator can rewind), so durations derived from it are always
   >= 0 and deadline arithmetic cannot be fooled by a clock step.

   The reading is returned as a tagged OCaml int of nanoseconds: on the
   64-bit platforms this project targets, 62 bits hold ~146 years of
   uptime, and the tagged representation keeps the call allocation-free
   ([@@noalloc] on the OCaml side). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_monotonic_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
#endif
  {
    /* No monotonic clock: fall back to the realtime clock rather than
       failing — callers clamp durations at >= 0 anyway. */
    clock_gettime(CLOCK_REALTIME, &ts);
  }
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
