(** Process-wide metrics registry: counters, gauges, log2-bucket
    histograms. All update operations are lock-free atomics, safe to call
    from any domain; totals merge across domains by construction. Create
    handles once (module initialization), update cheaply thereafter.

    Counters and histograms accumulate on two tracks at once: [Total]
    lives for the whole process (what the bench harness and CI gates
    read), while [Window] can be zeroed with {!reset_window} — the
    service daemon snapshots and resets it per stats request so
    server-side interval stats do not accumulate forever. Gauges are
    instantaneous and identical on both tracks. *)

type track = Total | Window

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-register. Registering a name twice returns the same handle;
    re-registering with a different kind raises [Invalid_argument]. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Lifetime ([Total]) value. *)

val counter_window : counter -> int
(** Value accumulated since the last {!reset_window} (or
    {!counter_take_window}). *)

val counter_take_window : counter -> int
(** Atomically read and zero the window value. Increments racing the
    snapshot land in the next window instead of vanishing, so every
    event is reported in exactly one window. *)

val gauge : string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a sample into its log2 bucket (and the count/sum totals). *)

val nbuckets : int

val bucket_of : int -> int
(** 0 for v <= 0; otherwise bit-length of v, capped at [nbuckets - 1]. *)

val bucket_lower : int -> int
(** Inclusive lower bound of a bucket index. *)

type snapshot_value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : int; buckets : (int * int) list }

val snapshot : ?track:track -> unit -> (string * snapshot_value) list
(** Consistent-enough view of every registered metric, sorted by name
    (default track [Total]). Histogram buckets are
    [(inclusive lower bound, count)], nonzero only. *)

val reset_window : unit -> unit
(** Zero the [Window] track only; lifetime totals are untouched. *)

val reset : unit -> unit
(** Zero all values on both tracks; handles stay valid. *)
