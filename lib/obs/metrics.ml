(* Process-wide metrics registry: counters, gauges, and log2-bucket
   histograms.

   The registry subsumes the ad-hoc per-run counters scattered through the
   analyses: phases publish their final work counts here (one handful of
   atomic adds per phase, nothing on hot paths), and the bench harness
   snapshots the whole registry into BENCH_usher.json's "metrics" block.

   Domain-safety: every cell is an [Atomic.t], so worker domains under
   `bench --jobs N` merge into the same totals without locks; only
   *registration* (first use of a name) takes the registry mutex. Metric
   handles are meant to be created once at module initialization and then
   updated lock-free.

   Two tracks: every counter and histogram carries a [Total] cell that
   accumulates for the life of the process and a [Window] cell that
   [reset_window] zeroes. The service daemon uses the window track for
   "stats since the last stats request" without disturbing the lifetime
   totals the bench harness and CI gates read. Gauges are instantaneous,
   so both tracks report the same value. *)

type track = Total | Window

type counter = { cname : string; ccell : int Atomic.t; cwin : int Atomic.t }
type gauge = { gname : string; gcell : float Atomic.t }

let nbuckets = 64

type histogram = {
  hname : string;
  buckets : int Atomic.t array; (* bucket i > 0 holds values with bit-length
                                   i, i.e. [2^(i-1), 2^i); bucket 0: v <= 0 *)
  hcount : int Atomic.t;
  hsum : int Atomic.t;
  wbuckets : int Atomic.t array; (* the same, window track *)
  wcount : int Atomic.t;
  wsum : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let mu = Mutex.create ()
let tbl : (string, metric) Hashtbl.t = Hashtbl.create 64

let register (name : string) (mk : unit -> metric) : metric =
  Mutex.protect mu (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
        let m = mk () in
        Hashtbl.replace tbl name m;
        m)

let kind_error name =
  invalid_arg ("Obs.Metrics: " ^ name ^ " already registered with another kind")

let counter (name : string) : counter =
  match
    register name (fun () ->
        C { cname = name; ccell = Atomic.make 0; cwin = Atomic.make 0 })
  with
  | C c -> c
  | _ -> kind_error name

let gauge (name : string) : gauge =
  match register name (fun () -> G { gname = name; gcell = Atomic.make 0.0 }) with
  | G g -> g
  | _ -> kind_error name

let histogram (name : string) : histogram =
  match
    register name (fun () ->
        H
          {
            hname = name;
            buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
            hcount = Atomic.make 0;
            hsum = Atomic.make 0;
            wbuckets = Array.init nbuckets (fun _ -> Atomic.make 0);
            wcount = Atomic.make 0;
            wsum = Atomic.make 0;
          })
  with
  | H h -> h
  | _ -> kind_error name

let add (c : counter) (n : int) =
  ignore (Atomic.fetch_and_add c.ccell n);
  ignore (Atomic.fetch_and_add c.cwin n)

let incr (c : counter) = add c 1
let counter_value (c : counter) = Atomic.get c.ccell
let counter_window (c : counter) = Atomic.get c.cwin
let counter_take_window (c : counter) = Atomic.exchange c.cwin 0

let set (g : gauge) (v : float) = Atomic.set g.gcell v

(* Lock-free monotonic max (CAS loop; contention is negligible — gauges
   are updated at phase boundaries, not in loops). *)
let set_max (g : gauge) (v : float) =
  let rec go () =
    let cur = Atomic.get g.gcell in
    if v > cur && not (Atomic.compare_and_set g.gcell cur v) then go ()
  in
  go ()

let gauge_value (g : gauge) = Atomic.get g.gcell

(** Bucket index of a sample: 0 for v <= 0, otherwise the bit-length of
    [v] (1 for 1, 2 for 2..3, 3 for 4..7, ...), capped at [nbuckets-1]. *)
let bucket_of (v : int) : int =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    min !b (nbuckets - 1)
  end

(** Inclusive lower bound of bucket [i] ([0] for the v <= 0 bucket). *)
let bucket_lower (i : int) : int = if i <= 0 then 0 else 1 lsl (i - 1)

let observe (h : histogram) (v : int) =
  let b = bucket_of v in
  ignore (Atomic.fetch_and_add h.buckets.(b) 1);
  ignore (Atomic.fetch_and_add h.hcount 1);
  ignore (Atomic.fetch_and_add h.hsum (max 0 v));
  ignore (Atomic.fetch_and_add h.wbuckets.(b) 1);
  ignore (Atomic.fetch_and_add h.wcount 1);
  ignore (Atomic.fetch_and_add h.wsum (max 0 v))

type snapshot_value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : int;
      buckets : (int * int) list; (* (inclusive lower bound, count), nonzero only *)
    }

let snapshot ?(track = Total) () : (string * snapshot_value) list =
  let items =
    Mutex.protect mu (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  items
  |> List.map (fun (name, m) ->
         let v =
           match m with
           | C c ->
             Counter
               (Atomic.get (match track with Total -> c.ccell | Window -> c.cwin))
           | G g -> Gauge (Atomic.get g.gcell)
           | H h ->
             let bks, cnt, sm =
               match track with
               | Total -> (h.buckets, h.hcount, h.hsum)
               | Window -> (h.wbuckets, h.wcount, h.wsum)
             in
             let buckets = ref [] in
             for i = nbuckets - 1 downto 0 do
               let n = Atomic.get bks.(i) in
               if n > 0 then buckets := (bucket_lower i, n) :: !buckets
             done;
             Histogram
               {
                 count = Atomic.get cnt;
                 sum = Atomic.get sm;
                 buckets = !buckets;
               }
         in
         (name, v))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** Zero the window track only; lifetime totals and handles are
    untouched. The daemon calls this when a stats window is consumed. *)
let reset_window () =
  Mutex.protect mu (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c.cwin 0
          | G _ -> ()
          | H h ->
            Array.iter (fun b -> Atomic.set b 0) h.wbuckets;
            Atomic.set h.wcount 0;
            Atomic.set h.wsum 0)
        tbl)

(** Zero every value on both tracks; registrations (and handles already
    held by callers) stay valid. Tests and the bench harness use this to
    scope totals. *)
let reset () =
  Mutex.protect mu (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c ->
            Atomic.set c.ccell 0;
            Atomic.set c.cwin 0
          | G g -> Atomic.set g.gcell 0.0
          | H h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.hcount 0;
            Atomic.set h.hsum 0;
            Array.iter (fun b -> Atomic.set b 0) h.wbuckets;
            Atomic.set h.wcount 0;
            Atomic.set h.wsum 0)
        tbl)
