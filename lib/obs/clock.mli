(** The single monotonic time source for the whole stack (CLOCK_MONOTONIC
    via a C stub; allocation-free). Use it for every duration and
    deadline; [Unix.gettimeofday] is not monotonic and must not be used
    for timing. *)

val now_ns : unit -> int
(** Nanoseconds on the monotonic timebase (origin unspecified). *)

val now_s : unit -> float
(** Seconds on the monotonic timebase (origin unspecified). *)

val elapsed_ns : int -> int
(** [elapsed_ns t0] is nanoseconds since [t0 = now_ns ()], clamped >= 0. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is seconds since [t0 = now_s ()], clamped >= 0. *)

val span_s : t0:float -> t1:float -> float
(** [t1 - t0] clamped at >= 0. *)
