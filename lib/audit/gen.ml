(* Generative fuzzing front end: a seeded TinyC program generator.

   Unlike the workload generator (lib/workloads/gen.ml), which emits
   concrete syntax for realistic benchmark *profiles*, this one builds
   [Tinyc.Ast.program] values directly and is weighted toward the
   constructs that stress Usher's precision machinery:

   - address-taken locals and aliasing stores (two pointers into the
     same cell, conditional re-aiming — semi-strong vs weak updates);
   - function pointers flowing through [int*] casts and an apply helper
     (indirect-call VFG edges, callgraph over-approximation);
   - partial struct initialization on the stack and on the heap
     (field-sensitive Γ, μ/χ placement);
   - partially-initialized arrays and malloc'd buffers (weak updates,
     array smearing);
   - loops carrying a possibly-undefined value across iterations (the
     classic Γ fixpoint shape: the first trip reads ⊥, later trips don't).

   Generated programs are:
   - deterministic: the same seed always yields the structurally
     identical AST (the only randomness source is [Workloads.Rng]);
   - always terminating: every loop is counted with a literal bound and
     a structural [i = i + 1] step, and every call either targets a
     function generated *earlier* or descends a mutually recursive pair
     whose depth parameter is a literal decremented to a structural
     [d <= 0] base case — the call graph has cycles (the recursive
     shape's two-function SCC) but every descent is depth-bounded;
   - runtime-safe: no division or shift whose right operand can be zero
     or out of range, every array index is masked into bounds with
     [& (size-1)] over power-of-two sizes, and no pointer is ever
     dereferenced before it is aimed at a real cell. Reads of
     *uninitialized scalars* are deliberate and common — the
     interpreter models those with deterministic garbage and records
     the ground-truth use, which is exactly what the differential
     oracle wants to cross-check.

   Every construct emitted here round-trips through
   [Tinyc.Pretty.program_to_string] and [Tinyc.Parser.parse_program]
   back to the structurally identical AST — a qcheck property in
   test/test_fuzz.ml enforces it over this generator. *)

open Tinyc.Ast
module Rng = Workloads.Rng

(* ---- generator state ---- *)

type ctx = {
  rng : Rng.t;
  mutable uid : int;
  mutable helpers : string list;     (* int(int) helpers, oldest first *)
  mutable apply_fn : string option;  (* the int(int*,int) trampoline *)
  mutable structs : (string * string list) list;  (* name, int fields *)
  mutable globals : string list;                  (* initialized int globals *)
  mutable garrays : (string * int) list;          (* global arrays, pow2 size *)
  mutable items_rev : item list;
}

let fresh ctx prefix =
  ctx.uid <- ctx.uid + 1;
  Printf.sprintf "%s%d" prefix ctx.uid

let push ctx it = ctx.items_rev <- it :: ctx.items_rev

(* ---- per-function environment ---- *)

type fenv = {
  mutable def_ints : string list;    (* definitely-initialized ints *)
  mutable undef_ints : string list;  (* possibly-uninitialized ints *)
}

(* ---- safe expressions ---- *)

let lit ctx = Eint (Rng.int ctx.rng 64)

(* A variable that is definitely initialized (or a literal fallback). *)
let def_var ctx (fe : fenv) : expr =
  match fe.def_ints with
  | [] -> lit ctx
  | vs -> Eident (Rng.choose ctx.rng vs)

(* A possibly-undefined variable, when one exists. *)
let undef_var ctx (fe : fenv) : expr option =
  match fe.undef_ints with
  | [] -> None
  | vs -> Some (Eident (Rng.choose ctx.rng vs))

let global_var ctx : expr option =
  match ctx.globals with
  | [] -> None
  | gs -> Some (Eident (Rng.choose ctx.rng gs))

(* Division and modulo right operands are forced nonzero structurally:
   either a positive literal or [((e & 15) + 1)]. The logical operators
   are evaluated non-short-circuit by the front end, so a guard could
   never protect a zero divisor anyway. *)
let nonzero ctx (e : expr) : expr =
  if Rng.bool ctx.rng then Eint (1 + Rng.int ctx.rng 15)
  else Ebinop (Badd, Ebinop (Band, e, Eint 15), Eint 1)

(* Depth-bounded random int-valued expression over initialized state.
   [allow_undef] additionally draws from the possibly-⊥ locals, which is
   how undef values get *used* (arithmetic only — never as a pointer,
   index, divisor or shift amount). *)
let rec int_expr ?(allow_undef = false) ctx (fe : fenv) (depth : int) : expr =
  let atom () =
    let choices =
      [ (fun () -> lit ctx); (fun () -> def_var ctx fe) ]
      @ (match global_var ctx with
        | Some g when Rng.pct ctx.rng 50 -> [ (fun () -> g) ]
        | _ -> [])
      @
      match undef_var ctx fe with
      | Some u when allow_undef -> [ (fun () -> u) ]
      | _ -> []
    in
    (Rng.choose ctx.rng choices) ()
  in
  if depth <= 0 then atom ()
  else
    match Rng.int ctx.rng 10 with
    | 0 | 1 | 2 -> atom ()
    | 3 ->
      let op = Rng.choose ctx.rng [ Badd; Bsub; Bmul; Band; Bor; Bxor ] in
      Ebinop (op, int_expr ~allow_undef ctx fe (depth - 1),
              int_expr ~allow_undef ctx fe (depth - 1))
    | 4 ->
      let op = Rng.choose ctx.rng [ Bdiv; Brem ] in
      let l = int_expr ~allow_undef ctx fe (depth - 1) in
      Ebinop (op, l, nonzero ctx (def_var ctx fe))
    | 5 ->
      let op = Rng.choose ctx.rng [ Bshl; Bshr ] in
      Ebinop (op, int_expr ~allow_undef ctx fe (depth - 1),
              Eint (Rng.int ctx.rng 6))
    | 6 ->
      let op = Rng.choose ctx.rng [ Uneg; Unot; Ulnot ] in
      Eunop (op, int_expr ~allow_undef ctx fe (depth - 1))
    | 7 ->
      Eternary
        ( cond_expr ctx fe,
          int_expr ~allow_undef ctx fe (depth - 1),
          int_expr ~allow_undef ctx fe (depth - 1) )
    | _ ->
      let op = Rng.choose ctx.rng [ Badd; Bsub; Bxor ] in
      Ebinop (op, atom (), int_expr ~allow_undef ctx fe (depth - 1))

(* Branch/loop conditions stay over defined values so control flow is
   deterministic w.r.t. the ground-truth semantics the oracle replays. *)
and cond_expr ctx (fe : fenv) : expr =
  let op = Rng.choose ctx.rng [ Blt; Ble; Bgt; Bge; Beq; Bne ] in
  let base = Ebinop (op, def_var ctx fe, int_expr ctx fe 1) in
  match Rng.int ctx.rng 4 with
  | 0 -> Ebinop (Bland, base, Ebinop (Bne, def_var ctx fe, lit ctx))
  | 1 -> Ebinop (Blor, base, Ebinop (Bgt, def_var ctx fe, lit ctx))
  | _ -> base

(* A literal-bounded counted loop: [for (i = 0; i < n; i = i + 1) body].
   The only loop shape the generator emits — termination by construction. *)
let counted_for ctx (fe : fenv) ~(iters : int) (body : string -> stmt list) :
    stmt =
  let i = fresh ctx "i" in
  (* the counter is in scope only while the body is being built — it must
     not leak into expressions generated outside this loop (statement
     lists are built in unspecified evaluation order) *)
  let saved = fe.def_ints in
  fe.def_ints <- i :: fe.def_ints;
  let b = body i in
  fe.def_ints <- saved;
  Sfor
    ( Some (Sdecl (Tint, i, Some (Eint 0))),
      Some (Ebinop (Blt, Eident i, Eint iters)),
      Some (Sassign (Eident i, Ebinop (Badd, Eident i, Eint 1))),
      b )

(* Occasionally wrap a statement run in an explicit block — [Sblock]
   must round-trip through the printer/parser like everything else. *)
let maybe_block ctx (ss : stmt list) : stmt list =
  if List.length ss > 1 && Rng.pct ctx.rng 20 then [ Sblock ss ] else ss

(* A call to an already-generated helper (acyclic call graph). *)
let helper_call ctx (fe : fenv) : expr option =
  match ctx.helpers with
  | [] -> None
  | hs -> Some (Ecall (Rng.choose ctx.rng hs, [ int_expr ctx fe 1 ]))

(* ---- function shapes ---- *)
(* Each shape appends one [int name(int n)] helper to the program and
   returns its name. Bodies end in [return]; every return value flows
   from the shape's interesting dataflow so detections are observable. *)

(* Loop-carried undef: the first iteration reads ⊥, later ones do not.
   Γ must keep the node ⊥ (the backedge cannot kill the initial read). *)
let shape_loop_carry ctx name =
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let s = fresh ctx "s" and c = fresh ctx "c" in
  fe.def_ints <- s :: fe.def_ints;
  fe.undef_ints <- [ c ];
  let body =
    [
      Sdecl (Tint, s, Some (Eint 0));
      Sdecl (Tint, c, None);
      counted_for ctx fe ~iters:(2 + Rng.int ctx.rng 8) (fun i ->
          [
            Sassign (Eident s, Ebinop (Badd, Eident s, Eident c));
            Sassign
              ( Eident c,
                Ebinop (Badd, Eident i, int_expr ctx fe 1) );
          ]);
      Sreturn (Some (Ebinop (Badd, Eident s, int_expr ctx fe 2)));
    ]
  in
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* Address-taken locals and aliasing stores: [p] and [q] both reach [x],
   a conditional re-aims [q] at [y] — strong vs semi-strong vs weak
   update classification has to get every store right. *)
let shape_addr_alias ctx name =
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let x = fresh ctx "x" and y = fresh ctx "y" in
  let p = fresh ctx "p" and q = fresh ctx "q" in
  let mk_undef_y = Rng.bool ctx.rng in
  let body =
    [
      Sdecl (Tint, x, None);
      Sdecl (Tint, y, if mk_undef_y then None else Some (lit ctx));
      Sdecl (Tptr Tint, p, Some (Eaddr (Eident x)));
      Sdecl (Tptr Tint, q, Some (Eident p));
      (* the store through p defines x *)
      Sassign (Ederef (Eident p), int_expr ctx fe 2);
      Sif
        ( cond_expr ctx fe,
          [ Sassign (Eident q, Eaddr (Eident y)) ],
          maybe_block ctx
            [ Sassign (Ederef (Eident q), Ebinop (Badd, Ederef (Eident p), Eint 1)) ]
        );
      (* q may aim at x or y: a weak (points-to set of 2) store *)
      Sassign (Ederef (Eident q), Ebinop (Badd, def_var ctx fe, lit ctx));
      (* y may still be ⊥ on the branch that re-aimed nothing *)
      Sreturn
        (Some
           (Ebinop (Badd, Eident x, Ebinop (Badd, Eident y, Ederef (Eident q)))));
    ]
  in
  fe.undef_ints <- (if mk_undef_y then [ y ] else []);
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* Partial struct initialization, stack or heap: some fields stay ⊥ and
   field-sensitive Γ must keep them apart from the initialized ones. *)
let shape_partial_struct ctx name =
  let sname, sfields =
    match ctx.structs with
    | l when l <> [] && Rng.pct ctx.rng 70 -> Rng.choose ctx.rng l
    | _ ->
      let sn = fresh ctx "S" in
      let nf = 2 + Rng.int ctx.rng 3 in
      let fields = List.init nf (fun k -> Printf.sprintf "f%d" k) in
      push ctx
        (Istruct { sname = sn; sfields = List.map (fun f -> (f, Tint)) fields });
      ctx.structs <- (sn, fields) :: ctx.structs;
      (sn, fields)
  in
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let heap = Rng.bool ctx.rng in
  let v = fresh ctx "sv" in
  let acc field obj = if heap then Earrow (obj, field) else Efield (obj, field) in
  let obj = Eident v in
  (* initialize a strict prefix of the fields; read a random suffix *)
  let ninit = max 1 (Rng.int ctx.rng (List.length sfields)) in
  let inits =
    List.filteri (fun k _ -> k < ninit) sfields
    |> List.map (fun f -> Sassign (acc f obj, int_expr ctx fe 1))
  in
  let read_f = Rng.choose ctx.rng sfields in
  let decl =
    if heap then
      Sdecl
        ( Tptr (Tstruct sname),
          v,
          Some
            (Ecast
               ( Tptr (Tstruct sname),
                 Ecall ("malloc", [ Esizeof (Tstruct sname) ]) )) )
    else Sdecl (Tstruct sname, v, None)
  in
  let body =
    [ decl ] @ inits
    @ [
        Sreturn
          (Some
             (Ebinop
                ( Badd,
                  acc (List.hd sfields) obj,
                  Ebinop (Badd, acc read_f obj, def_var ctx fe) )));
      ]
  in
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* Function pointers through an [int*]-cast and an apply trampoline:
   the indirect call's VFG return edges must cover every target. *)
let shape_fp_dispatch ctx name =
  (* the trampoline is shared per program; its [f(x)] call is indirect
     because [f] is a parameter, not a known function *)
  let ap =
    match ctx.apply_fn with
    | Some ap -> ap
    | None ->
      let ap = fresh ctx "fzap" in
      push ctx
        (Ifunc
           {
             fret = Tint;
             fdname = ap;
             fparams = [ (Tptr Tint, "f"); (Tint, "x") ];
             fbody = [ Sreturn (Some (Ecall ("f", [ Eident "x" ]))) ];
           });
      ctx.apply_fn <- Some ap;
      ap
  in
  (* two concrete targets from the already-generated helpers, or fresh
     leaves when none exist yet *)
  let leaf () =
    let l = fresh ctx "fzl" in
    push ctx
      (Ifunc
         {
           fret = Tint;
           fdname = l;
           fparams = [ (Tint, "x") ];
           fbody =
             [
               Sreturn
                 (Some
                    (Ebinop
                       ( Rng.choose ctx.rng [ Badd; Bxor; Bmul ],
                         Eident "x",
                         Eint (1 + Rng.int ctx.rng 9) )));
             ];
         });
    l
  in
  let t1 = match ctx.helpers with h :: _ when Rng.bool ctx.rng -> h | _ -> leaf () in
  let t2 = leaf () in
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let s = fresh ctx "s" in
  fe.def_ints <- s :: fe.def_ints;
  let call t arg = Ecall (ap, [ Ecast (Tptr Tint, Eident t); arg ]) in
  let body =
    [
      Sdecl (Tint, s, Some (Eint 0));
      counted_for ctx fe ~iters:(2 + Rng.int ctx.rng 6) (fun i ->
          [
            Sif
              ( Ebinop (Bgt, Ebinop (Brem, Eident i, Eint 2), Eint 0),
                [ Sassign (Eident s, Ebinop (Badd, Eident s, call t1 (Eident i))) ],
                [ Sassign (Eident s, Ebinop (Badd, Eident s, call t2 (Eident i))) ]
              );
          ]);
      Sreturn (Some (Eident s));
    ]
  in
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* Partially-initialized array (local, global, or malloc'd): a strict
   prefix is written, reads are masked into the whole range, so some
   reads are of ⊥ cells — weak updates and array smearing territory. *)
let shape_array_walk ctx name =
  let size = Rng.choose ctx.rng [ 4; 8; 16 ] in
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let kind =
    let k = Rng.int ctx.rng 4 in
    if k = 3 && ctx.garrays = [] then 0 else k
  in
  let a = fresh ctx "a" in
  let decl, arr_name, arr_size =
    match kind with
    | 0 | 1 -> ([ Sdecl (Tarr (size, Tint), a, None) ], a, size)
    | 2 ->
      ( [
          Sdecl
            ( Tptr Tint,
              a,
              Some
                (Ecast
                   ( Tptr Tint,
                     Ecall
                       ( (if Rng.bool ctx.rng then "malloc" else "calloc"),
                         [ Eint size ] ) )) );
        ],
        a,
        size )
    | _ ->
      let g, gsize = Rng.choose ctx.rng ctx.garrays in
      ([], g, gsize)
  in
  let s = fresh ctx "s" in
  fe.def_ints <- s :: fe.def_ints;
  let filled = max 1 (arr_size - 1 - Rng.int ctx.rng 2) in
  let body =
    decl
    @ [
        Sdecl (Tint, s, Some (Eint 0));
        counted_for ctx fe ~iters:filled (fun i ->
            [
              Sassign
                ( Eindex (Eident arr_name, Eident i),
                  Ebinop (Badd, Ebinop (Bmul, Eident i, Eint 2), int_expr ctx fe 1)
                );
            ]);
        counted_for ctx fe ~iters:(2 + Rng.int ctx.rng 8) (fun i ->
            maybe_block ctx
              [
                Sassign
                  ( Eident s,
                    Ebinop
                      ( Badd,
                        Eident s,
                        Eindex
                          ( Eident arr_name,
                            Ebinop
                              ( Band,
                                Ebinop (Badd, Eident i, Eident s),
                                Eint (arr_size - 1) ) ) ) );
                Sif
                  ( Ebinop (Bgt, Eident s, Eint 1048576),
                    [ Sassign (Eident s, Ebinop (Bsub, Eident s, Eint 1048576)) ],
                    [] );
              ]);
        Sreturn (Some (Eident s));
      ]
  in
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* Straight-line scalar dataflow with optional undef leaks folded into
   arithmetic, branches, a nested counted loop, maybe a helper call. *)
let shape_scalar_mix ctx name =
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let nvars = 2 + Rng.int ctx.rng 3 in
  let decls =
    List.init nvars (fun _ ->
        let v = fresh ctx "v" in
        if Rng.pct ctx.rng 35 then begin
          fe.undef_ints <- v :: fe.undef_ints;
          Sdecl (Tint, v, None)
        end
        else begin
          fe.def_ints <- v :: fe.def_ints;
          Sdecl (Tint, v, Some (int_expr ctx fe 1))
        end)
  in
  let s = fresh ctx "s" in
  fe.def_ints <- s :: fe.def_ints;
  let stmts = ref [] in
  let emit st = stmts := st :: !stmts in
  for _ = 1 to 2 + Rng.int ctx.rng 4 do
    match Rng.int ctx.rng 5 with
    | 0 ->
      emit
        (Sif
           ( cond_expr ctx fe,
             maybe_block ctx
               [ Sassign (Eident s, Ebinop (Badd, Eident s, int_expr ~allow_undef:true ctx fe 2)) ],
             if Rng.bool ctx.rng then
               [ Sassign (Eident s, Ebinop (Bxor, Eident s, int_expr ctx fe 1)) ]
             else [] ))
    | 1 ->
      emit
        (counted_for ctx fe ~iters:(1 + Rng.int ctx.rng 6) (fun i ->
             [
               Sassign
                 ( Eident s,
                   Ebinop (Badd, Eident s, Ebinop (Bmul, Eident i, def_var ctx fe))
                 );
             ]))
    | 2 -> (
      match helper_call ctx fe with
      | Some call -> emit (Sassign (Eident s, Ebinop (Badd, Eident s, call)))
      | None -> emit (Sassign (Eident s, Ebinop (Badd, Eident s, int_expr ctx fe 2))))
    | 3 ->
      (* define one of the ⊥ locals along the way: later reads are clean,
         earlier ones were not — Γ must keep the order straight *)
      (match fe.undef_ints with
      | v :: rest when Rng.bool ctx.rng ->
        fe.undef_ints <- rest;
        fe.def_ints <- v :: fe.def_ints;
        emit (Sassign (Eident v, int_expr ctx fe 1))
      | _ -> emit (Sassign (Eident s, Ebinop (Bsub, Eident s, int_expr ctx fe 1))))
    | _ ->
      emit
        (Sassign (Eident s, int_expr ~allow_undef:(Rng.pct ctx.rng 40) ctx fe 2))
  done;
  let body =
    decls
    @ [ Sdecl (Tint, s, Some (Ebinop (Badd, Eident "n", lit ctx))) ]
    @ List.rev !stmts
    @ [ Sreturn (Some (Ebinop (Badd, Eident s, int_expr ~allow_undef:true ctx fe 1))) ]
  in
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* Deep call chain with mutual recursion: a pair of functions that call
   each other down a literal depth, threading an address-taken local
   through an [int*] out-parameter at every level. The pair is one
   callgraph SCC, so compositional resolution must compose their
   summaries across the SCC boundary: whether the threaded cell is still
   ⊥ at the read depends on which leg of the descent (if any) wrote it
   — both the Ecall and Eret edges have to be instantiated right. *)
let shape_mutual_chain ctx name =
  let fa = fresh ctx "fzma" and fb = fresh ctx "fzmb" in
  let feab = { def_ints = [ "d" ]; undef_ints = [] } in
  (* fa: base case writes the caller's cell; otherwise it threads a fresh
     address-taken local down through fb and reads it back (the read is
     of ⊥ whenever fb's descent never stored). *)
  let ta = fresh ctx "t" in
  let body_a =
    [
      Sif
        ( Ebinop (Ble, Eident "d", Eint 0),
          [
            Sassign (Ederef (Eident "out"), int_expr ctx feab 1);
            Sreturn (Some (lit ctx));
          ],
          [] );
      Sdecl (Tint, ta, None);
      Sexpr
        (Ecall (fb, [ Eaddr (Eident ta); Ebinop (Bsub, Eident "d", Eint 1) ]));
      Sassign
        ( Ederef (Eident "out"),
          Ebinop (Badd, Eident ta, int_expr ctx feab 1) );
      Sreturn (Some (Ebinop (Badd, Eident ta, Ederef (Eident "out"))));
    ]
  in
  (* fb: the base case deliberately leaves [*out] untouched, so ⊥ can
     flow back up the whole chain; deeper levels may write it only on
     one depth parity. *)
  let tb = fresh ctx "u" in
  let write_back =
    Sassign (Ederef (Eident "out"), Ebinop (Badd, Eident tb, lit ctx))
  in
  let body_b =
    [
      Sif
        ( Ebinop (Ble, Eident "d", Eint 0),
          [ Sreturn (Some (int_expr ctx feab 1)) ],
          [] );
      Sdecl (Tint, tb, None);
      Sexpr
        (Ecall (fa, [ Eaddr (Eident tb); Ebinop (Bsub, Eident "d", Eint 1) ]));
      (if Rng.bool ctx.rng then
         Sif
           ( Ebinop (Bgt, Ebinop (Brem, Eident "d", Eint 2), Eint 0),
             [ write_back ],
             [] )
       else write_back);
      Sreturn (Some (Eident tb));
    ]
  in
  (* fa calls fb and is pushed first: a forward reference the lowerer's
     signature prepass resolves, like any mutual recursion would need *)
  push ctx
    (Ifunc
       {
         fret = Tint;
         fdname = fa;
         fparams = [ (Tptr Tint, "out"); (Tint, "d") ];
         fbody = body_a;
       });
  push ctx
    (Ifunc
       {
         fret = Tint;
         fdname = fb;
         fparams = [ (Tptr Tint, "out"); (Tint, "d") ];
         fbody = body_b;
       });
  (* the entry helper seeds the descent from its own address-taken local;
     whether that cell comes back defined depends on the literal depth *)
  let fe = { def_ints = [ "n" ]; undef_ints = [] } in
  let cell = fresh ctx "m" and s = fresh ctx "s" in
  let depth = 2 + Rng.int ctx.rng 5 in
  let body =
    [
      Sdecl (Tint, cell, None);
      Sdecl
        (Tint, s, Some (Ecall (fa, [ Eaddr (Eident cell); Eint depth ])));
      Sreturn
        (Some
           (Ebinop
              ( Badd,
                Eident s,
                Ebinop (Badd, Eident cell, int_expr ctx fe 1) )));
    ]
  in
  push ctx
    (Ifunc { fret = Tint; fdname = name; fparams = [ (Tint, "n") ]; fbody = body })

(* ---- whole programs ---- *)

let shapes =
  [
    (3, shape_loop_carry);
    (3, shape_addr_alias);
    (2, shape_partial_struct);
    (2, shape_fp_dispatch);
    (3, shape_array_walk);
    (3, shape_scalar_mix);
    (2, shape_mutual_chain);
  ]

let pick_shape ctx =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 shapes in
  let n = Rng.int ctx.rng total in
  let rec go acc = function
    | [ (_, s) ] -> s
    | (w, s) :: rest -> if n < acc + w then s else go (acc + w) rest
    | [] -> assert false
  in
  go 0 shapes

let program ?(size = 3) ~(seed : int) () : program =
  let ctx =
    {
      rng = Rng.create (seed * 0x9E3779B9 + 0x51ED);
      uid = 0;
      helpers = [];
      apply_fn = None;
      structs = [];
      globals = [];
      garrays = [];
      items_rev = [];
    }
  in
  (* a few initialized globals and one global array now and then *)
  for _ = 1 to Rng.int ctx.rng 3 do
    let g = fresh ctx "g" in
    let init = Rng.int ctx.rng 40 - (if Rng.pct ctx.rng 25 then 37 else 0) in
    push ctx (Iglobal { gdty = Tint; gdname = g; gdinit = Some init });
    ctx.globals <- g :: ctx.globals
  done;
  if Rng.pct ctx.rng 50 then begin
    let g = fresh ctx "ga" in
    let size = Rng.choose ctx.rng [ 8; 16 ] in
    push ctx (Iglobal { gdty = Tarr (size, Tint); gdname = g; gdinit = None });
    ctx.garrays <- (g, size) :: ctx.garrays
  end;
  let nfuncs = max 1 size + Rng.int ctx.rng 2 in
  for _ = 1 to nfuncs do
    let name = fresh ctx "fz" in
    (pick_shape ctx) ctx name;
    ctx.helpers <- name :: ctx.helpers
  done;
  (* main: call every top-level helper with literal arguments, print the
     accumulated result (and sometimes an individual call) *)
  let fe = { def_ints = []; undef_ints = [] } in
  let s = fresh ctx "acc" in
  fe.def_ints <- [ s ];
  let calls =
    List.rev ctx.helpers
    |> List.map (fun h ->
           Sassign
             ( Eident s,
               Ebinop (Badd, Eident s, Ecall (h, [ Eint (1 + Rng.int ctx.rng 9) ]))
             ))
  in
  let extra_print =
    if Rng.pct ctx.rng 40 && ctx.helpers <> [] then
      [
        Sexpr
          (Ecall
             ( "print",
               [ Ecall (Rng.choose ctx.rng ctx.helpers, [ Eint (Rng.int ctx.rng 5) ]) ]
             ));
      ]
    else []
  in
  let main_body =
    [ Sdecl (Tint, s, Some (Eint 0)) ]
    @ calls
    @ [ Sexpr (Ecall ("print", [ Eident s ])) ]
    @ extra_print
    @ [ Sreturn (Some (Eint 0)) ]
  in
  push ctx (Ifunc { fret = Tint; fdname = "main"; fparams = []; fbody = main_body });
  List.rev ctx.items_rev

let source ?size ~seed () : string =
  Tinyc.Pretty.program_to_string (program ?size ~seed ())

(* Per-index derived seeds for a fuzzing campaign: mixing the root seed
   and the index keeps every program independent of generation order, so
   `--jobs 1` and `--jobs 4` generate identical campaigns. *)
let campaign_seed ~(seed : int) (index : int) : int =
  (seed * 0x100003) lxor (index * 0x9E3779B9) lxor (index lsl 17)
