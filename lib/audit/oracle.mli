(** Differential soundness oracle: run every instrumentation variant on
    one program and cross-check the interpreter's ground-truth undefined
    uses against each variant's detections (with the paper's dominance
    rule), the MSan baseline, and the Opt I/II static expectations. *)

type miss = {
  mvariant : Usher.Config.variant;
  mlabel : Ir.Types.label;
  mfunc : string option;   (** function owning the missed label *)
  baseline_covers : bool;  (** does the MSan run cover this use? *)
}

type divergence =
  | Miss of miss
      (** soundness miss: a ground-truth use the variant does not cover *)
  | Behavior of {
      bvariant : Usher.Config.variant;
      expected : int list;
      got : int list;
    }  (** instrumentation changed the program's observable outputs *)
  | Precision of {
      pvariant : Usher.Config.variant;
      checks : int;
      against : Usher.Config.variant;
      against_checks : int;
    }  (** static check count violates the paper's monotonicity chain *)

type report = {
  src : string;
  prog : Ir.Prog.t;
  analysis : Usher.Pipeline.analysis;
  native : Runtime.Interp.outcome;
  per_variant : (Usher.Config.variant * Runtime.Interp.outcome) list;
  divergences : divergence list;
}

val divergence_to_string : divergence -> string
val soundness_misses : report -> miss list

(** Any [Miss] or [Behavior] divergence (the kinds that gate CI). *)
val has_soundness_divergence : report -> bool

(** Owner function of a statement label. *)
val func_of_label : Ir.Prog.t -> Ir.Types.label -> string option

(** Run the oracle on one program.

    [variants] restricts which variants are run and compared (default:
    all). Reduction predicates use this to re-check only the diverging
    variant; the precision chain only compares pairs that are both
    present, and [baseline_covers] is [false] when MSan is not run.

    [hole] is the seeded-bug test hook: every Check item a {e guided} plan
    placed in functions whose name starts with the prefix is deleted
    before running — except in distrusted (quarantined) functions, whose
    items come from the full overlay, so quarantining heals the hole.

    [engine] selects the execution engine for the instrumented runs
    (default: interpreter). The native ground-truth run always uses the
    interpreter, so [~engine:Vm] turns every oracle invocation into a
    cross-engine differential check on top of the variant comparison.

    @raise Diag.Error on uncompilable source.
    @raise Runtime.Interp.Runtime_error
    @raise Runtime.Interp.Resource_exhausted when the native run traps. *)
val check :
  ?level:Optim.Pipeline.level ->
  ?knobs:Usher.Config.knobs ->
  ?limits:Runtime.Interp.limits ->
  ?variants:Usher.Config.variant list ->
  ?hole:string ->
  ?engine:Vm.Engine.t ->
  string ->
  report
