(* Incident artifacts: the sentinel's durable evidence.

   Every divergence the oracle finds becomes one self-contained file in
   the quarantine directory: the full program source, the seed and
   mutation that produced it, the diverging variant, the implicated
   functions and labels, the knob configuration, and (after reduction)
   the minimized repro. The payload is protected by an MD5 checksum so a
   truncated or bit-rotted artifact is rejected at load instead of
   silently replaying garbage, and files are written atomically
   (temp + rename) so a crashed audit run never leaves a half-written
   incident behind. *)

type kind =
  | Soundness_miss
  | Precision_regression
  | Behavior_divergence
  | Static_violation
  | Worker_crash

let kind_name = function
  | Soundness_miss -> "soundness-miss"
  | Precision_regression -> "precision-regression"
  | Behavior_divergence -> "behavior-divergence"
  | Static_violation -> "static-violation"
  | Worker_crash -> "worker-crash"

let kind_of_name = function
  | "soundness-miss" -> Some Soundness_miss
  | "precision-regression" -> Some Precision_regression
  | "behavior-divergence" -> Some Behavior_divergence
  | "static-violation" -> Some Static_violation
  | "worker-crash" -> Some Worker_crash
  | _ -> None

type t = {
  id : string;               (* content-derived, stable *)
  kind : kind;
  variant : string;          (* diverging variant's name *)
  seed : int;                (* corpus / fuzzing seed *)
  mutation : string;         (* mutation description; "" for base programs *)
  functions : string list;   (* implicated functions *)
  labels : int list;         (* diverging labels *)
  knobs : string;            (* rendered knob summary *)
  source : string;           (* the full diverging program *)
  reduced : string option;   (* ddmin-minimized repro *)
  hits : int;                (* times this same hole was hit (dedup counter) *)
}

let magic = "usher-incident 1"

(* A single-line field value: newlines would corrupt the framing. *)
let clean_line (s : string) : string =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let make ~kind ~variant ~seed ~mutation ~functions ~labels ~knobs ~source
    ?reduced () : t =
  (* The id is derived from the *canonical* repro — the ddmin-reduced
     program when reduction ran, the full source otherwise — never from
     the seed or mutation that happened to reach it. A fuzz campaign
     hitting the same hole from 50 different seeds therefore produces 50
     incidents with one id, which [save] collapses into a single artifact
     with an accumulated hit counter. *)
  let canonical = match reduced with Some r -> r | None -> source in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\x00" [ kind_name kind; variant; canonical ]))
  in
  {
    id = String.sub digest 0 12;
    kind;
    variant;
    seed;
    mutation = clean_line mutation;
    functions;
    labels;
    knobs = clean_line knobs;
    source;
    reduced;
    hits = 1;
  }

(* ---- serialization ---- *)

let payload (t : t) : string =
  let b = Buffer.create (String.length t.source + 512) in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "id %s\n" t.id;
  pf "kind %s\n" (kind_name t.kind);
  pf "variant %s\n" (clean_line t.variant);
  pf "seed %d\n" t.seed;
  pf "mutation %s\n" t.mutation;
  pf "functions %s\n" (String.concat " " t.functions);
  pf "labels %s\n" (String.concat " " (List.map string_of_int t.labels));
  pf "knobs %s\n" t.knobs;
  pf "hits %d\n" t.hits;
  pf "source %d\n" (String.length t.source);
  Buffer.add_string b t.source;
  (match t.reduced with
  | None -> pf "\nreduced -\n"
  | Some r ->
    pf "\nreduced %d\n" (String.length r);
    Buffer.add_string b r;
    Buffer.add_char b '\n');
  Buffer.contents b

let to_string (t : t) : string =
  let p = payload t in
  Printf.sprintf "%s\nchecksum %s\n%s" magic (Digest.to_hex (Digest.string p)) p

(* ---- parsing ---- *)

let of_string (s : string) : (t, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  (* Cursor-based line reader. *)
  let pos = ref 0 in
  let len = String.length s in
  let line () =
    if !pos >= len then None
    else
      match String.index_from_opt s !pos '\n' with
      | None ->
        let l = String.sub s !pos (len - !pos) in
        pos := len;
        Some l
      | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        Some l
  in
  let take n =
    if !pos + n > len then None
    else begin
      let b = String.sub s !pos n in
      pos := !pos + n;
      Some b
    end
  in
  match line () with
  | Some m when m = magic -> (
    match line () with
    | Some cks when String.length cks > 9 && String.sub cks 0 9 = "checksum " -> (
      let declared = String.sub cks 9 (String.length cks - 9) in
      let body = String.sub s !pos (len - !pos) in
      if Digest.to_hex (Digest.string body) <> declared then
        err "checksum mismatch: artifact is corrupted"
      else begin
        (* Checksum verified; parse the fields. *)
        let fields = Hashtbl.create 8 in
        let field l =
          match String.index_opt l ' ' with
          | None -> (l, "")
          | Some i ->
            (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
        in
        let rec scalar_fields () =
          match line () with
          | None -> Error "truncated artifact: missing source block"
          | Some l -> (
            let k, v = field l in
            if k = "source" then
              match int_of_string_opt v with
              | None -> err "bad source length %S" v
              | Some n -> (
                match take n with
                | None -> Error "truncated source block"
                | Some src -> Ok src)
            else begin
              Hashtbl.replace fields k v;
              scalar_fields ()
            end)
        in
        match scalar_fields () with
        | Error e -> Error e
        | Ok source -> (
          let reduced =
            (* skip the newline after the source block *)
            match line () with
            | Some "" | None -> None
            | Some l -> (
              match field l with
              | "reduced", "-" -> None
              | "reduced", v -> (
                match int_of_string_opt v with
                | None -> None
                | Some n -> take n)
              | _ -> None)
          in
          let reduced =
            match reduced with
            | None -> (
              (* the blank line before "reduced" was consumed as "" above;
                 try once more *)
              match line () with
              | Some l -> (
                match field l with
                | "reduced", "-" -> None
                | "reduced", v -> (
                  match int_of_string_opt v with
                  | None -> None
                  | Some n -> take n)
                | _ -> None)
              | None -> None)
            | some -> some
          in
          let get k = match Hashtbl.find_opt fields k with Some v -> v | None -> "" in
          let words v =
            String.split_on_char ' ' v |> List.filter (fun w -> w <> "")
          in
          match kind_of_name (get "kind") with
          | None -> err "unknown incident kind %S" (get "kind")
          | Some kind ->
            Ok
              {
                id = get "id";
                kind;
                variant = get "variant";
                seed = (match int_of_string_opt (get "seed") with Some n -> n | None -> 0);
                mutation = get "mutation";
                functions = words (get "functions");
                labels = List.filter_map int_of_string_opt (words (get "labels"));
                knobs = get "knobs";
                source;
                reduced;
                (* absent in artifacts written before the dedup counter
                   existed: they count as one hit *)
                hits =
                  (match int_of_string_opt (get "hits") with
                  | Some n when n >= 1 -> n
                  | _ -> 1);
              })
      end)
    | _ -> Error "missing checksum line")
  | _ -> err "not an incident artifact (bad magic)"

(* ---- filesystem ---- *)

let rec ensure_dir (dir : string) : unit =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "." then ensure_dir parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Atomic write: the artifact appears fully written or not at all. The
   temp name must be unique per writer — the daemon makes concurrent
   writers to the same path a reality, and two writers sharing one fixed
   ".tmp" can interleave (A opens, B opens and truncates, A renames B's
   half-written bytes into place). PID + a process-wide ticket keeps
   domains and processes apart; rename stays the only visible step. *)
let tmp_ticket = Atomic.make 0

let write_atomic ~(path : string) (contents : string) : unit =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_ticket 1)
  in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let filename (t : t) : string =
  Printf.sprintf "incident-%s-%s.txt" (kind_name t.kind) t.id

(* Forward declaration break: [save] needs [load] for the dedup merge. *)
let load_file (path : string) : (t, string) result =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | exception Sys_error m -> Error m
        | s -> of_string s)

(* Serializes read-modify-write of the hit counter across domains; the
   write itself stays atomic (temp + rename), so a concurrent *process*
   at worst loses a count increment, never corrupts the artifact. *)
let save_lock = Mutex.create ()

(** Write the artifact into [dir] (created if missing); returns its path.
    An artifact with the same content id is merged, not duplicated: the
    first occurrence's evidence is kept and its hit counter absorbs the
    new one's. *)
let save ~(dir : string) (t : t) : string =
  ensure_dir dir;
  let path = Filename.concat dir (filename t) in
  Mutex.lock save_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock save_lock)
    (fun () ->
      let merged =
        match load_file path with
        | Ok prev when prev.id = t.id ->
          (* Deterministic evidence choice (lowest seed, then source) so
             the merged artifact is identical whatever order concurrent
             fuzz workers hit the hole in; the counter is a plain sum, so
             the end state is order-independent too. *)
          let keep =
            if (t.seed, t.source) < (prev.seed, prev.source) then t else prev
          in
          { keep with hits = prev.hits + t.hits }
        | Ok _ | Error _ -> t
      in
      write_atomic ~path (to_string merged));
  path

let load = load_file

(** All well-formed incidents in [dir] (sorted by file name); corrupted
    artifacts are returned separately as (path, error). *)
let load_dir (dir : string) : t list * (string * string) list =
  if not (Sys.file_exists dir) then ([], [])
  else begin
    (* Only finished artifacts: a ".tmp.<pid>.<n>" left behind by a
       kill -9 mid-write must not be parsed (or reported as corrupt) on
       restart — it was never published. *)
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 9
             && String.sub f 0 9 = "incident-"
             && Filename.check_suffix f ".txt")
      |> List.sort compare
    in
    List.fold_left
      (fun (ok, bad) f ->
        let path = Filename.concat dir f in
        match load path with
        | Ok t -> (t :: ok, bad)
        | Error e -> (ok, (path, e) :: bad))
      ([], []) files
    |> fun (ok, bad) -> (List.rev ok, List.rev bad)
  end
