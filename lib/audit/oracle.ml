(* Differential soundness oracle.

   For one TinyC program, run every instrumentation variant and compare
   three sources of truth against each other:

   - the interpreter's ground-truth definedness ([Interp.outcome.gt_uses]:
     undefined values actually consumed at critical operations);
   - each variant's detections (E(l) checks that fired), with the paper's
     dominance rule: a use is covered if its own check fired or a check at
     a dominating statement in the same function fired (§3.5.2);
   - the MSan baseline (full instrumentation) and the paper's Opt I/II
     expectations on the *static* plans.

   Divergences are classified:

   - [Miss]: a ground-truth undefined use a variant's plan does not cover
     — a soundness bug in guided instrumentation (or, if the variant is
     MSan itself, in the instrumentation runtime);
   - [Behavior]: the instrumented run changed the program's observable
     outputs — instrumentation must be a pure observer;
   - [Precision]: a static plan has more checks than the paper's
     monotonicity chain allows (guided > MSan, or Opt II > Opt I) — not a
     correctness bug, but a regression of the entire point of the system.

   The [hole] hook deliberately deletes every check a *guided* plan placed
   in functions matching a name prefix — a seeded soundness bug used by
   tests, CI and EXPERIMENTS.md to prove the sentinel catches real misses.
   The hole does not apply to full instrumentation or to distrusted
   (quarantined) functions, exactly like a plan-construction bug: once the
   sentinel quarantines the function, the full overlay takes over and the
   bug is masked. *)

type miss = {
  mvariant : Usher.Config.variant;
  mlabel : Ir.Types.label;
  mfunc : string option;  (* function owning the missed label *)
  baseline_covers : bool; (* does the MSan run cover this use? *)
}

type divergence =
  | Miss of miss
  | Behavior of { bvariant : Usher.Config.variant; expected : int list; got : int list }
  | Precision of {
      pvariant : Usher.Config.variant;
      checks : int;
      against : Usher.Config.variant;
      against_checks : int;
    }

type report = {
  src : string;
  prog : Ir.Prog.t;
  analysis : Usher.Pipeline.analysis;
  native : Runtime.Interp.outcome;
  per_variant : (Usher.Config.variant * Runtime.Interp.outcome) list;
  divergences : divergence list;
}

let divergence_to_string (d : divergence) : string =
  match d with
  | Miss m ->
    Printf.sprintf "soundness miss: %s does not cover gt use at l%d%s%s"
      (Usher.Config.variant_name m.mvariant)
      m.mlabel
      (match m.mfunc with Some f -> " in " ^ f | None -> "")
      (if m.baseline_covers then " (MSan covers it)" else " (MSan misses it too)")
  | Behavior b ->
    Printf.sprintf "behavior divergence: %s changed outputs (%d vs %d values)"
      (Usher.Config.variant_name b.bvariant)
      (List.length b.got) (List.length b.expected)
  | Precision p ->
    Printf.sprintf "precision regression: %s has %d checks > %s's %d"
      (Usher.Config.variant_name p.pvariant)
      p.checks
      (Usher.Config.variant_name p.against)
      p.against_checks

let soundness_misses (r : report) : miss list =
  List.filter_map (function Miss m -> Some m | _ -> None) r.divergences

let has_soundness_divergence (r : report) : bool =
  List.exists
    (function Miss _ | Behavior _ -> true | Precision _ -> false)
    r.divergences

(* Owner function of every label, as an array indexed by label. *)
let label_owners (prog : Ir.Prog.t) : string option array =
  let owners = Array.make (Ir.Prog.nlabels prog) None in
  Ir.Prog.iter_instrs
    (fun f _ i -> owners.(i.Ir.Types.lbl) <- Some f.Ir.Types.fname)
    prog;
  Ir.Prog.iter_terms
    (fun f _ t -> owners.(t.Ir.Types.tlbl) <- Some f.Ir.Types.fname)
    prog;
  owners

let func_of_label (prog : Ir.Prog.t) (l : Ir.Types.label) : string option =
  if l < 0 || l >= Ir.Prog.nlabels prog then None else (label_owners prog).(l)

let prefixed ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* The seeded plan hole: delete every Check item a guided plan placed in a
   function whose name starts with [hole] — unless the function is
   distrusted, in which case its items came from the full overlay and a
   plan-construction bug would not affect them. *)
let apply_hole (a : Usher.Pipeline.analysis) (owners : string option array)
    (hole : string) (plan : Instr.Item.plan) : unit =
  let holed fn =
    prefixed ~prefix:hole fn && not (Hashtbl.mem a.distrusted fn)
  in
  Array.iteri
    (fun l items ->
      match owners.(l) with
      | Some fn when holed fn ->
        plan.Instr.Item.items.(l) <-
          List.filter
            (fun (it : Instr.Item.item) ->
              match it.act with Instr.Item.Check _ -> false | _ -> true)
            items
      | _ -> ())
    plan.Instr.Item.items

(** Run the oracle on one program. Raises the front end's [Diag.Error] on
    uncompilable source and the interpreter's [Runtime_error] /
    [Resource_exhausted] when the *native* run traps (the caller treats
    both as "not a valid audit subject"). Instrumented-run traps that the
    native run does not exhibit are reported as [Behavior] divergences. *)
let check ?(level = Optim.Pipeline.O0_IM) ?(knobs = Usher.Config.default_knobs)
    ?limits ?(variants = Usher.Config.all_variants) ?hole
    ?(engine = Vm.Engine.Interp) (src : string) : report =
  let module I = Runtime.Interp in
  let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
  let analysis = Usher.Pipeline.analyze ~knobs prog in
  analysis.events := front_events @ !(analysis.events);
  let owners = label_owners prog in
  let native = Runtime.Interp.run_native ?limits prog in
  let divergences = ref [] in
  let push d = divergences := d :: !divergences in
  (* Run every variant; collect outcomes and static stats. *)
  let runs =
    List.map
      (fun v ->
        let plan, guided = Usher.Pipeline.plan_for analysis v in
        (match (hole, guided) with
        | Some h, Some _ -> apply_hole analysis owners h plan
        | _ -> ());
        let stats = Instr.Item.stats_of plan in
        let outcome =
          try Ok (Vm.Engine.run_plan ?limits engine prog plan)
          with
          | Runtime.Interp.Runtime_error msg -> Error msg
          | Runtime.Interp.Resource_exhausted { what; limit } ->
            Error (Printf.sprintf "%s limit %d exhausted" what limit)
        in
        (v, stats, outcome))
      variants
  in
  let ran v = List.exists (fun (v', _, _) -> v' = v) runs in
  let outcome_of v =
    match List.find (fun (v', _, _) -> v' = v) runs with _, _, o -> o
  in
  let msan_covers lbl =
    ran Usher.Config.Msan
    &&
    match outcome_of Usher.Config.Msan with
    | Ok o -> Usher.Experiment.covered prog o.I.detections lbl
    | Error _ -> false
  in
  (* Behavior + soundness comparison, per variant. *)
  List.iter
    (fun (v, _, outcome) ->
      match outcome with
      | Error _ ->
        (* The native run completed but the instrumented one trapped:
           instrumentation changed observable behavior. *)
        push (Behavior { bvariant = v; expected = native.I.outputs; got = [] })
      | Ok o ->
        if o.I.outputs <> native.I.outputs then
          push (Behavior { bvariant = v; expected = native.I.outputs; got = o.I.outputs });
        Hashtbl.iter
          (fun lbl () ->
            if not (Usher.Experiment.covered prog o.I.detections lbl) then
              push
                (Miss
                   {
                     mvariant = v;
                     mlabel = lbl;
                     mfunc = owners.(lbl);
                     baseline_covers = msan_covers lbl;
                   }))
          native.I.gt_uses)
    runs;
  (* Static-plan precision: checks must respect the paper's monotonicity
     chain — every guided plan prunes relative to MSan, and Opt II only
     ever removes checks relative to Opt I. *)
  let checks_of v =
    match List.find (fun (v', _, _) -> v' = v) runs with _, s, _ ->
      s.Instr.Item.checks
  in
  let expect_le v1 v2 =
    if ran v1 && ran v2 then begin
      let c1 = checks_of v1 and c2 = checks_of v2 in
      if c1 > c2 then
        push
          (Precision
             { pvariant = v1; checks = c1; against = v2; against_checks = c2 })
    end
  in
  List.iter
    (fun v -> if v <> Usher.Config.Msan then expect_le v Usher.Config.Msan)
    variants;
  expect_le Usher.Config.Usher_full Usher.Config.Usher_opt1;
  {
    src;
    prog;
    analysis;
    native;
    per_variant =
      List.filter_map
        (fun (v, _, o) -> match o with Ok o -> Some (v, o) | Error _ -> None)
        runs;
    divergences = List.rev !divergences;
  }
