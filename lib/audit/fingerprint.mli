(** Cheap per-program coverage fingerprints for corpus distillation.

    A fingerprint is a sorted set of feature strings summarizing what an
    oracle run exercised: ground-truth undefined-use volume, per-variant
    detection classes, divergence kinds, degradation rungs, VFG edge
    kinds and size, and Γ resolution effort — all counts log2-bucketed.
    The fuzz driver promotes a program into the persisted corpus exactly
    when its fingerprint contains a feature no earlier program
    contributed. *)

val bucket : int -> int
(** log2 bucket: 0→0, 1→1, 2-3→2, 4-7→3, … *)

val of_report : Oracle.report -> string list
(** Sorted, duplicate-free feature set of one differential-oracle run. *)

val to_string : string list -> string

val novel : seen:(string, unit) Hashtbl.t -> string list -> string list
(** Features not yet in [seen]. *)

val remember : seen:(string, unit) Hashtbl.t -> string list -> unit
(** Add every feature to [seen]. *)
