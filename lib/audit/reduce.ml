(* Delta-debugging reduction of divergence-witnessing TinyC programs.

   [ddmin] is Zeller's minimizing delta debugging over a list: given a
   predicate that holds on the whole list, find a subsequence on which it
   still holds and from which no single chunk at the final granularity can
   be removed. The predicate is treated as a black box (reduction
   predicates here are "the program still compiles AND the oracle still
   reports the divergence"), so the result is 1-minimal w.r.t. the chunks
   tried, not globally minimal — exactly the classic algorithm.

   [program] applies ddmin hierarchically to a TinyC AST: first over the
   top-level item list (whole functions, globals, structs disappear in
   chunks), then over every statement list, recursing into if/while/for
   bodies, iterated to a fixed point. Each pass only ever *removes* nodes,
   so the size strictly decreases across iterations and the fixed point
   terminates. *)

open Tinyc.Ast

(* Split [items] into [n] contiguous chunks (the last chunks may be one
   element shorter). *)
let split_chunks (items : 'a list) (n : int) : 'a list list =
  let len = List.length items in
  let arr = Array.of_list items in
  let chunks = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    let size = (len / n) + if i < len mod n then 1 else 0 in
    if size > 0 then
      chunks := Array.to_list (Array.sub arr !start size) :: !chunks;
    start := !start + size
  done;
  List.rev !chunks

let ddmin (pred : 'a list -> bool) (items : 'a list) : 'a list =
  let rec go items n =
    let len = List.length items in
    if len < 2 then items
    else begin
      let chunks = split_chunks items n in
      (* Try each chunk alone: a drastic reduction. *)
      match List.find_opt pred chunks with
      | Some chunk -> go chunk 2
      | None ->
        (* Try each complement (all chunks but one). *)
        let complements =
          List.mapi
            (fun i _ ->
              List.concat
                (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        (match List.find_opt pred complements with
        | Some compl -> go compl (max (n - 1) 2)
        | None ->
          (* Refine granularity, or stop at single elements. *)
          if n < len then go items (min (2 * n) len) else items)
    end
  in
  if pred items then go items 2 else items

(* ---- hierarchical AST reduction ---- *)

let rec stmt_size (s : stmt) : int =
  match s with
  | Sif (_, a, b) -> 1 + stmts_size a + stmts_size b
  | Swhile (_, b) | Sfor (_, _, _, b) | Sblock b -> 1 + stmts_size b
  | _ -> 1

and stmts_size ss = List.fold_left (fun acc s -> acc + stmt_size s) 0 ss

(** Statement count of a program (declarations, fields and globals count
    1 each) — the size metric reduction minimizes. *)
let size (p : program) : int =
  List.fold_left
    (fun acc it ->
      acc
      + match it with
        | Ifunc f -> 1 + stmts_size f.fbody
        | Istruct _ | Iglobal _ -> 1)
    0 p

(* Rewrite the [i]-th element of a list. *)
let set_nth (ss : 'a list) (i : int) (v : 'a) : 'a list =
  List.mapi (fun j s -> if j = i then v else s) ss

(* Reduce one statement list: ddmin the list itself, then recurse into
   each surviving compound statement. [rebuild] embeds a candidate list
   back into a whole program for the global predicate. Accepted
   reductions are threaded sequentially — each child reduction validates
   against the program as reduced so far — so "pred holds on the current
   whole program" is an invariant and the combined result is valid. *)
let rec reduce_stmts (pred : program -> bool) (rebuild : stmt list -> program)
    (ss : stmt list) : stmt list =
  let ss = ddmin (fun cand -> pred (rebuild cand)) ss in
  let cur = ref ss in
  let reduce_child i (child : stmt list) (wrap : stmt list -> stmt) =
    let child' =
      reduce_stmts pred (fun cand -> rebuild (set_nth !cur i (wrap cand))) child
    in
    cur := set_nth !cur i (wrap child');
    child'
  in
  List.iteri
    (fun i s ->
      match s with
      | Sif (c, a, b) ->
        let a' = reduce_child i a (fun a' -> Sif (c, a', b)) in
        ignore (reduce_child i b (fun b' -> Sif (c, a', b')))
      | Swhile (c, b) ->
        ignore (reduce_child i b (fun b' -> Swhile (c, b')))
      | Sfor (init, c, u, b) ->
        ignore (reduce_child i b (fun b' -> Sfor (init, c, u, b')))
      | Sblock b -> ignore (reduce_child i b (fun b' -> Sblock b'))
      | _ -> ())
    ss;
  !cur

let reduce_once (pred : program -> bool) (p : program) : program =
  (* Pass 1: whole top-level items. *)
  let p = ddmin pred p in
  (* Pass 2: statement lists of each surviving function, threading each
     accepted reduction into the program the next one validates against. *)
  let cur = ref p in
  List.iteri
    (fun i it ->
      match it with
      | Ifunc f ->
        let body' =
          reduce_stmts pred
            (fun body -> set_nth !cur i (Ifunc { f with fbody = body }))
            f.fbody
        in
        cur := set_nth !cur i (Ifunc { f with fbody = body' })
      | _ -> ())
    p;
  !cur

(** Minimize [p] while [pred] holds, to a fixed point. If [pred p] does
    not hold, returns [p] unchanged. The result satisfies [pred] and
    cannot be shrunk further by another [program] pass. *)
let program ~(pred : program -> bool) (p : program) : program =
  if not (pred p) then p
  else begin
    let rec fix p =
      let p' = reduce_once pred p in
      if size p' < size p then fix p' else p
    in
    fix p
  end
