(** AST-level mutators over TinyC programs: small semantics-changing edits
    that perturb definedness flow (the property the analysis reasons
    about), used by the audit loop to fuzz the soundness claim. Mutation
    sites are indexed deterministically in program preorder, so a fuzzing
    run replays exactly from its seed. *)

type kind =
  | Drop_init       (** remove a scalar declaration's initializer *)
  | Swap_branches   (** exchange the arms of an [if] *)
  | Reorder_stores  (** swap two adjacent assignment statements *)

val all_kinds : kind list
val kind_name : kind -> string

(** A concrete mutation: the [site]-th candidate (program preorder) of a
    mutator kind. *)
type t = { mkind : kind; site : int }

val to_string : t -> string

(** Number of candidate sites for [kind]. *)
val count : kind -> Tinyc.Ast.program -> int

(** Apply a mutation; [None] when the site index is out of range. Also
    returns a human-readable description of the edit. *)
val apply : t -> Tinyc.Ast.program -> (Tinyc.Ast.program * string) option

(** Draw one applicable mutation uniformly over all (kind, site) pairs.
    [None] when the program has no candidates. *)
val random :
  Workloads.Rng.t ->
  Tinyc.Ast.program ->
  (Tinyc.Ast.program * t * string) option
