(** Delta-debugging reduction of divergence-witnessing TinyC programs. *)

(** Zeller's minimizing delta debugging over a list. If [pred] holds on
    the input, the result satisfies [pred] and no single chunk at the
    final granularity can be removed from it; otherwise the input is
    returned unchanged. [pred] is a black box and may be called many
    times. *)
val ddmin : ('a list -> bool) -> 'a list -> 'a list

(** Statement count of a program — the size metric reduction minimizes. *)
val size : Tinyc.Ast.program -> int

(** Hierarchical ddmin over a TinyC AST (top-level items, then every
    statement list, recursing into if/while/for bodies), iterated to a
    fixed point. The result satisfies [pred] and a further pass cannot
    shrink it. If [pred p] does not hold, [p] is returned unchanged. *)
val program :
  pred:(Tinyc.Ast.program -> bool) -> Tinyc.Ast.program -> Tinyc.Ast.program
