(* The audit loop: the sentinel's outer driver.

   Feed workload-generated TinyC programs — and AST-level mutants of them
   — through the differential oracle; for every divergence: capture an
   incident artifact, ddmin-reduce soundness misses to a small repro,
   quarantine the implicated functions, and verify that the quarantined
   re-run covers the missed use again (the self-healing property: a
   soundness bug costs precision until fixed, never correctness).

   The loop is time-boxed ([budget_ms]) so CI can run it as a smoke test,
   and fully deterministic in [seed] so any run replays. *)

type config = {
  profiles : Workloads.Profile.t list;  (* corpus generators *)
  scale : int;                          (* generation scale (100 = nominal) *)
  mutants : int;                        (* mutants per base program *)
  seed : int;                           (* fuzzing seed *)
  budget_ms : int option;               (* wall-clock box for the whole loop *)
  dir : string;                         (* incident + quarantine directory *)
  hole : string option;                 (* test hook: seeded plan-hole prefix *)
  minimize : bool;                      (* ddmin-reduce soundness misses *)
  level : Optim.Pipeline.level;
  limits : Runtime.Interp.limits;
  engine : Vm.Engine.t;
  knobs : Usher.Config.knobs;
  log : string -> unit;
}

let default_config =
  {
    profiles = Workloads.Spec2000.all;
    scale = 5;
    mutants = 3;
    seed = 1;
    budget_ms = None;
    dir = ".usher-audit";
    hole = None;
    minimize = true;
    level = Optim.Pipeline.O0_IM;
    limits =
      { Runtime.Interp.max_steps = 2_000_000; max_objects = 100_000;
        max_depth = 1_000 };
    engine = Vm.Engine.Interp;
    knobs = Usher.Config.default_knobs;
    log = ignore;
  }

type summary = {
  programs : int;             (* base programs audited *)
  mutants_run : int;          (* mutants audited *)
  skipped : int;              (* subjects whose native run trapped *)
  incidents : Incident.t list;        (* newly captured, in order *)
  soundness_incidents : int;  (* misses + behavior divergences *)
  precision_incidents : int;
  quarantined : string list;  (* functions newly quarantined *)
  healed : int;               (* misses covered again under quarantine *)
  out_of_time : bool;         (* the budget expired before the corpus ended *)
}

let knobs_summary (k : Usher.Config.knobs) : string =
  Printf.sprintf
    "semi_strong=%b context=%b field=%b cloning=%b quarantined=%d"
    k.Usher.Config.semi_strong k.context_sensitive k.field_sensitive
    k.heap_cloning
    (List.length k.quarantine)

(* Compile errors and native-run traps disqualify a subject (mutants
   routinely produce wild pointers); anything else propagates. *)
let oracle_check cfg ~knobs ?variants (src : string) :
    (Oracle.report, string) result =
  match
    Oracle.check ~level:cfg.level ~knobs ~limits:cfg.limits ?variants
      ?hole:cfg.hole ~engine:cfg.engine src
  with
  | r -> Ok r
  | exception Diag.Error d -> Error (Diag.to_string d)
  | exception Runtime.Interp.Runtime_error m -> Error ("native run: " ^ m)
  | exception Runtime.Interp.Resource_exhausted { what; limit } ->
    Error (Printf.sprintf "native run: %s limit %d" what limit)

(* Does [src] still witness a miss for [variant] (same implicated function
   when known)? The reduction predicate. *)
let still_misses cfg ~knobs ~(variant : Usher.Config.variant)
    ~(func : string option) (src : string) : bool =
  match oracle_check cfg ~knobs ~variants:[ variant ] src with
  | Error _ -> false
  | Ok r ->
    List.exists
      (fun (m : Oracle.miss) ->
        m.mvariant = variant
        && (func = None || m.mfunc = func))
      (Oracle.soundness_misses r)

(* ddmin the witnessing program down to a small repro. *)
let minimize_miss cfg ~knobs ~variant ~func (src : string) : string option =
  match Tinyc.Parser.parse_program src with
  | exception Diag.Error _ -> None
  | ast ->
    let pred p =
      match Tinyc.Pretty.program_to_string p with
      | s -> still_misses cfg ~knobs ~variant ~func s
      | exception Invalid_argument _ -> false
    in
    if not (pred ast) then None
    else begin
      let reduced = Reduce.program ~pred ast in
      Some (Tinyc.Pretty.program_to_string reduced)
    end

(* Audit one already-checked subject from its oracle report; returns
   (incidents, quarantine entries, healed). Split out so the fuzz driver
   can fingerprint and audit from one oracle run. *)
let audit_report cfg ~knobs ~(seed : int) ~(mutation : string) ~(src : string)
    (report : Oracle.report) : Incident.t list * Quarantine.entry list * int =
    let incidents = ref [] and entries = ref [] and healed = ref 0 in
    let knob_str = knobs_summary knobs in
    let capture ~kind ~variant ~functions ~labels ~reduced =
      let inc =
        Incident.make ~kind ~variant ~seed ~mutation ~functions ~labels
          ~knobs:knob_str ~source:src ?reduced ()
      in
      ignore (Incident.save ~dir:cfg.dir inc);
      incidents := inc :: !incidents;
      inc
    in
    (* Soundness misses: reduce, capture, quarantine, verify healing. *)
    let misses = Oracle.soundness_misses report in
    (* One incident per (variant, function): a buggy plan usually misses a
       cluster of labels in one function. *)
    let groups = Hashtbl.create 4 in
    List.iter
      (fun (m : Oracle.miss) ->
        let key = (m.mvariant, m.mfunc) in
        let prev = try Hashtbl.find groups key with Not_found -> [] in
        Hashtbl.replace groups key (m :: prev))
      misses;
    (* Several variants usually share one buggy plan — cache the reduced
       repro per implicated function and revalidate it per variant (one
       single-variant oracle run) instead of re-reducing from scratch. *)
    let reduction_cache : (string option, string) Hashtbl.t =
      Hashtbl.create 4
    in
    let reduce_for ~variant ~func =
      if not cfg.minimize then None
      else
        match Hashtbl.find_opt reduction_cache func with
        | Some r when still_misses cfg ~knobs ~variant ~func r -> Some r
        | _ -> (
          match minimize_miss cfg ~knobs ~variant ~func src with
          | Some r ->
            Hashtbl.replace reduction_cache func r;
            Some r
          | None -> None)
    in
    Hashtbl.iter
      (fun (variant, func) (ms : Oracle.miss list) ->
        let labels = List.map (fun m -> m.Oracle.mlabel) ms |> List.sort compare in
        let reduced = reduce_for ~variant ~func in
        let functions = match func with Some f -> [ f ] | None -> [] in
        let inc =
          capture ~kind:Incident.Soundness_miss
            ~variant:(Usher.Config.variant_name variant) ~functions ~labels
            ~reduced
        in
        cfg.log
          (Printf.sprintf "incident %s: %s misses %d use(s)%s%s" inc.id
             (Usher.Config.variant_name variant) (List.length labels)
             (match func with Some f -> " in " ^ f | None -> "")
             (match reduced with
             | Some r ->
               Printf.sprintf " (reduced %d -> %d bytes)"
                 (String.length src) (String.length r)
             | None -> ""));
        (* Quarantine the implicated function and verify the re-run under
           quarantine covers the use again. *)
        match func with
        | None -> ()
        | Some f ->
          entries := { Quarantine.qfunc = f; incident = inc.id } :: !entries;
          let knobs' =
            Quarantine.apply [ { Quarantine.qfunc = f; incident = inc.id } ]
              knobs
          in
          let subject =
            match reduced with Some r -> r | None -> src
          in
          if not (still_misses cfg ~knobs:knobs' ~variant ~func:(Some f) subject)
          then begin
            incr healed;
            cfg.log
              (Printf.sprintf
                 "incident %s: quarantining %s heals the miss (full \
                  instrumentation covers the use)"
                 inc.id f)
          end
          else
            cfg.log
              (Printf.sprintf
                 "incident %s: quarantining %s does NOT heal the miss — \
                 runtime-level bug?" inc.id f))
      groups;
    (* Behavior divergences: capture (no function attribution). *)
    List.iter
      (function
        | Oracle.Behavior { bvariant; _ } ->
          ignore
            (capture ~kind:Incident.Behavior_divergence
               ~variant:(Usher.Config.variant_name bvariant)
               ~functions:[] ~labels:[] ~reduced:None)
        | Oracle.Precision { pvariant; _ } ->
          ignore
            (capture ~kind:Incident.Precision_regression
               ~variant:(Usher.Config.variant_name pvariant)
               ~functions:[] ~labels:[] ~reduced:None)
        | Oracle.Miss _ -> ())
      report.divergences;
    (List.rev !incidents, List.rev !entries, !healed)

(* Audit one subject; returns (incidents, quarantine entries, healed). *)
let audit_subject cfg ~knobs ~(seed : int) ~(mutation : string) (src : string) :
    (Incident.t list * Quarantine.entry list * int, string) result =
  match oracle_check cfg ~knobs src with
  | Error e -> Error e
  | Ok report -> Ok (audit_report cfg ~knobs ~seed ~mutation ~src report)

(* Observability: audited-subject / incident totals, plus instant trace
   events per captured incident (category "audit"). *)
let m_subjects = Obs.Metrics.counter "audit.subjects"
let m_skipped = Obs.Metrics.counter "audit.skipped"
let m_incidents = Obs.Metrics.counter "audit.incidents"
let m_healed = Obs.Metrics.counter "audit.healed"

let run (cfg : config) : summary =
  (* Monotonic clock: the audit time-box must not be stretched or blown by
     a wall-clock step. *)
  let t0 = Obs.Clock.now_s () in
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) cfg.budget_ms
  in
  let out_of_time () =
    match deadline with Some d -> Obs.Clock.now_s () > d | None -> false
  in
  let programs = ref 0 and mutants_run = ref 0 and skipped = ref 0 in
  let incidents = ref [] and quarantined = ref [] and healed = ref 0 in
  let stopped = ref false in
  (* Quarantine entries accumulated this run apply to later subjects too. *)
  let knobs = ref (Quarantine.apply_dir cfg.dir cfg.knobs) in
  let audit ~seed ~mutation src counter =
    Obs.Metrics.incr m_subjects;
    match audit_subject cfg ~knobs:!knobs ~seed ~mutation src with
    | Error e ->
      incr skipped;
      Obs.Metrics.incr m_skipped;
      cfg.log (Printf.sprintf "skipped (%s)" e)
    | Ok (incs, entries, h) ->
      incr counter;
      Obs.Metrics.add m_incidents (List.length incs);
      Obs.Metrics.add m_healed h;
      List.iter
        (fun (i : Incident.t) ->
          Obs.Trace.instant ~cat:"audit"
            ~args:
              [
                ("variant", Obs.Trace.Str i.variant);
                ("kind", Obs.Trace.Str (Incident.kind_name i.kind));
              ]
            ("incident." ^ i.id))
        incs;
      incidents := !incidents @ incs;
      healed := !healed + h;
      let fresh = Quarantine.add cfg.dir entries in
      List.iter
        (fun (e : Quarantine.entry) ->
          quarantined := !quarantined @ [ e.qfunc ])
        fresh;
      knobs := Quarantine.apply fresh !knobs
  in
  List.iter
    (fun (prof : Workloads.Profile.t) ->
      if !stopped || out_of_time () then stopped := true
      else begin
        Obs.Trace.with_span ~cat:"audit" ("audit." ^ prof.pname) @@ fun () ->
        cfg.log (Printf.sprintf "auditing %s (scale %d)" prof.pname cfg.scale);
        let base_src = Workloads.Gen.generate ~scale:cfg.scale prof in
        audit ~seed:prof.seed ~mutation:"" base_src programs;
        (* Mutants: parse the base once, then mutate deterministically. *)
        match Tinyc.Parser.parse_program base_src with
        | exception Diag.Error _ -> ()
        | ast ->
          let rng =
            Workloads.Rng.create (cfg.seed + (1000 * prof.seed))
          in
          for m = 1 to cfg.mutants do
            if (not !stopped) && not (out_of_time ()) then begin
              match Mutate.random rng ast with
              | None -> ()
              | Some (ast', mut, descr) ->
                let msrc = Tinyc.Pretty.program_to_string ast' in
                cfg.log
                  (Printf.sprintf "  mutant %d: %s (%s)" m
                     (Mutate.to_string mut) descr);
                audit ~seed:(cfg.seed + m) ~mutation:(Mutate.to_string mut)
                  msrc mutants_run
            end
            else stopped := true
          done
      end)
    cfg.profiles;
  let n_sound =
    List.length
      (List.filter
         (fun (i : Incident.t) -> i.kind <> Incident.Precision_regression)
         !incidents)
  in
  {
    programs = !programs;
    mutants_run = !mutants_run;
    skipped = !skipped;
    incidents = !incidents;
    soundness_incidents = n_sound;
    precision_incidents = List.length !incidents - n_sound;
    quarantined = !quarantined;
    healed = !healed;
    out_of_time = !stopped;
  }
