(* The generative fuzzing campaign driver.

   Generate [count] TinyC programs from per-index seeds (Gen.campaign_seed:
   a pure function of (root seed, index), so the campaign is identical
   whatever [--jobs] is), run each through the differential oracle once,
   and from that single report both

   - audit it (Loop.audit_report: capture + dedup-save incidents, ddmin
     misses, propose quarantine entries), and
   - fingerprint it (Fingerprint.of_report) for corpus distillation.

   The oracle runs fan out on domains; everything order-sensitive
   (quarantine registration, distillation, the summary) happens in a
   sequential post-pass over the results in index order, so two runs with
   different [--jobs] settings produce byte-identical incident artifacts,
   quarantine lists, and corpus directories.

   Unlike the corpus audit loop, fresh quarantine entries do NOT feed
   back into later subjects mid-run: every program is judged under the
   same knobs (those in force when the campaign started), which is what
   keeps the campaign embarrassingly parallel and jobs-deterministic. *)

type config = {
  count : int;                 (* programs to generate *)
  seed : int;                  (* campaign root seed *)
  size : int;                  (* generator size knob (helpers per program) *)
  jobs : int;                  (* oracle-run fan-out *)
  budget_ms : int option;      (* wall-clock box for the whole campaign *)
  dir : string;                (* incident + quarantine directory *)
  corpus : string option;      (* distilled-corpus directory *)
  distill : bool;              (* promote novel-coverage programs *)
  hole : string option;        (* test hook: seeded plan-hole prefix *)
  minimize : bool;             (* ddmin-reduce soundness misses *)
  level : Optim.Pipeline.level;
  limits : Runtime.Interp.limits;
  engine : Vm.Engine.t;
  knobs : Usher.Config.knobs;
  log : string -> unit;
}

let default_config =
  {
    count = 100;
    seed = 1;
    size = 3;
    jobs = 1;
    budget_ms = None;
    dir = ".usher-audit";
    corpus = None;
    distill = false;
    hole = None;
    minimize = true;
    level = Optim.Pipeline.O0_IM;
    limits = Loop.default_config.limits;
    engine = Vm.Engine.Interp;
    knobs = Usher.Config.default_knobs;
    log = ignore;
  }

type summary = {
  generated : int;             (* programs generated and checked *)
  audited : int;               (* programs the oracle accepted *)
  skipped : int;               (* native-run traps / compile errors *)
  incidents : Incident.t list; (* newly captured, in index order *)
  soundness_incidents : int;
  precision_incidents : int;
  quarantined : string list;   (* functions newly quarantined *)
  healed : int;
  distilled : int;             (* programs promoted into the corpus *)
  corpus_total : int;          (* corpus size after this run *)
  out_of_time : bool;
  oracle_s : float;            (* summed per-program oracle wall time *)
  elapsed_s : float;
}

(* ---- corpus persistence ---- *)

let features_file dir = Filename.concat dir "corpus.features"

let load_features (dir : string) : (string, unit) Hashtbl.t =
  let seen = Hashtbl.create 64 in
  let path = features_file dir in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let l = String.trim (input_line ic) in
            if l <> "" then Hashtbl.replace seen l ()
          done
        with End_of_file -> ())
  end;
  seen

let save_features (dir : string) (seen : (string, unit) Hashtbl.t) : unit =
  let feats = Hashtbl.fold (fun f () acc -> f :: acc) seen [] in
  let body = String.concat "\n" (List.sort compare feats) ^ "\n" in
  Incident.write_atomic ~path:(features_file dir) body

let corpus_members (dir : string) : string list =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 5
           && String.sub f 0 5 = "fuzz-"
           && Filename.check_suffix f ".c")
    |> List.sort compare

(* ---- promotion into a curated corpus ---- *)

type promotion = {
  p_examined : int;
  p_promoted : int;
  p_redundant : int;
  p_rejected : int;
  p_total : int;
}

let read_member (path : string) : string option =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Some (really_input_string ic (in_channel_length ic))
        with Sys_error _ | End_of_file -> None)

(* Re-judge every member of [src_dir] against the curated corpus in
   [dst_dir]: the oracle runs once per member (under cfg's
   level/limits/engine/knobs), and a member is copied — stable
   content-digest name, its features merged into dst's corpus.features —
   exactly when its fingerprint contributes a feature the curated corpus
   lacks. Novelty is judged against the curated features, not the source
   campaign's, so promoting two campaign directories in sequence keeps
   only what the second adds. Idempotent: a second run promotes
   nothing. *)
let promote (cfg : config) ~(src_dir : string) ~(dst_dir : string) : promotion
    =
  let loop_cfg =
    {
      Loop.default_config with
      dir = cfg.dir;
      level = cfg.level;
      limits = cfg.limits;
      engine = cfg.engine;
      knobs = cfg.knobs;
      log = cfg.log;
    }
  in
  Incident.ensure_dir dst_dir;
  let seen = load_features dst_dir in
  let promoted = ref 0 and redundant = ref 0 and rejected = ref 0 in
  let members = corpus_members src_dir in
  List.iter
    (fun name ->
      match read_member (Filename.concat src_dir name) with
      | None ->
        incr rejected;
        cfg.log (Printf.sprintf "%s rejected (unreadable)" name)
      | Some src -> (
        match Loop.oracle_check loop_cfg ~knobs:cfg.knobs src with
        | Error e ->
          incr rejected;
          cfg.log (Printf.sprintf "%s rejected (%s)" name e)
        | Ok report ->
          let fp = Fingerprint.of_report report in
          let novel = Fingerprint.novel ~seen fp in
          if novel = [] then incr redundant
          else begin
            Fingerprint.remember ~seen fp;
            let id = String.sub (Digest.to_hex (Digest.string src)) 0 12 in
            let dst = Filename.concat dst_dir (Printf.sprintf "fuzz-%s.c" id) in
            if not (Sys.file_exists dst) then Incident.write_atomic ~path:dst src;
            incr promoted;
            cfg.log
              (Printf.sprintf "%s promoted as %s (novel: %s)" name
                 (Filename.basename dst)
                 (String.concat " " novel))
          end))
    members;
  save_features dst_dir seen;
  {
    p_examined = List.length members;
    p_promoted = !promoted;
    p_redundant = !redundant;
    p_rejected = !rejected;
    p_total = List.length (corpus_members dst_dir);
  }

(* ---- the campaign ---- *)

type outcome =
  | Skipped of string
  | Audited of {
      src : string;
      fingerprint : string list;
      incidents : Incident.t list;
      entries : Quarantine.entry list;
      healed : int;
      oracle_s : float;
    }

let m_generated = Obs.Metrics.counter "fuzz.generated"
let m_skipped = Obs.Metrics.counter "fuzz.skipped"
let m_incidents = Obs.Metrics.counter "fuzz.incidents"
let m_distilled = Obs.Metrics.counter "fuzz.distilled"

let run (cfg : config) : summary =
  let t0 = Obs.Clock.now_s () in
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) cfg.budget_ms
  in
  let out_of_time () =
    match deadline with Some d -> Obs.Clock.now_s () > d | None -> false
  in
  (* Existing quarantine applies from the start; entries found mid-run do
     not (jobs determinism — see the header comment). *)
  let knobs = Quarantine.apply_dir cfg.dir cfg.knobs in
  let loop_cfg =
    {
      Loop.default_config with
      seed = cfg.seed;
      dir = cfg.dir;
      hole = cfg.hole;
      minimize = cfg.minimize;
      level = cfg.level;
      limits = cfg.limits;
      engine = cfg.engine;
      knobs;
      log = cfg.log;
    }
  in
  let one (idx : int) : outcome =
    Obs.Metrics.incr m_generated;
    let pseed = Gen.campaign_seed ~seed:cfg.seed idx in
    let src = Gen.source ~size:cfg.size ~seed:pseed () in
    let t = Obs.Clock.now_s () in
    match Loop.oracle_check loop_cfg ~knobs src with
    | Error e -> Skipped e
    | Ok report ->
      let oracle_s = Obs.Clock.now_s () -. t in
      let fingerprint = Fingerprint.of_report report in
      let incidents, entries, healed =
        Loop.audit_report loop_cfg ~knobs ~seed:pseed ~mutation:"" ~src report
      in
      Audited { src; fingerprint; incidents; entries; healed; oracle_s }
  in
  (* Fan out in chunks so the wall-clock budget is honored between chunks
     without making the membership of a chunk depend on timing. *)
  let chunk = max 1 (cfg.jobs * 4) in
  let results = ref [] (* (idx, outcome) chunks, newest first *) in
  let next = ref 0 in
  let stopped = ref false in
  while !next < cfg.count && not !stopped do
    if out_of_time () then stopped := true
    else begin
      let n = min chunk (cfg.count - !next) in
      let idxs = List.init n (fun k -> !next + k) in
      let outs =
        Obs.Trace.with_span ~cat:"fuzz"
          (Printf.sprintf "fuzz.chunk.%d" !next)
          (fun () -> Usher.Experiment.parallel_map ~jobs:cfg.jobs one idxs)
      in
      results := List.combine idxs outs :: !results;
      next := !next + n
    end
  done;
  let results = List.concat (List.rev !results) in
  (* Sequential, index-ordered post-pass: everything whose outcome could
     depend on order happens here. *)
  let audited = ref 0 and skipped = ref 0 and healed = ref 0 in
  let incidents = ref [] and quarantined = ref [] in
  let oracle_s = ref 0.0 in
  let distilled = ref 0 in
  let seen =
    match cfg.corpus with
    | Some cdir when cfg.distill ->
      Incident.ensure_dir cdir;
      Some (cdir, load_features cdir)
    | _ -> None
  in
  List.iter
    (fun (idx, out) ->
      match out with
      | Skipped e ->
        incr skipped;
        Obs.Metrics.incr m_skipped;
        cfg.log (Printf.sprintf "program %d skipped (%s)" idx e)
      | Audited a ->
        incr audited;
        oracle_s := !oracle_s +. a.oracle_s;
        Obs.Metrics.add m_incidents (List.length a.incidents);
        incidents := !incidents @ a.incidents;
        healed := !healed + a.healed;
        let fresh = Quarantine.add cfg.dir a.entries in
        List.iter
          (fun (e : Quarantine.entry) ->
            quarantined := !quarantined @ [ e.qfunc ])
          fresh;
        (match seen with
        | None -> ()
        | Some (cdir, seen) ->
          let novel = Fingerprint.novel ~seen a.fingerprint in
          if novel <> [] then begin
            Fingerprint.remember ~seen a.fingerprint;
            let id =
              String.sub (Digest.to_hex (Digest.string a.src)) 0 12
            in
            let path = Filename.concat cdir (Printf.sprintf "fuzz-%s.c" id) in
            if not (Sys.file_exists path) then begin
              Incident.write_atomic ~path a.src;
              incr distilled;
              Obs.Metrics.incr m_distilled;
              cfg.log
                (Printf.sprintf "program %d distilled into %s (novel: %s)" idx
                   path
                   (String.concat " " novel))
            end
          end))
    results;
  (match seen with
  | Some (cdir, seen) -> save_features cdir seen
  | None -> ());
  let n_sound =
    List.length
      (List.filter
         (fun (i : Incident.t) -> i.kind <> Incident.Precision_regression)
         !incidents)
  in
  {
    generated = List.length results;
    audited = !audited;
    skipped = !skipped;
    incidents = !incidents;
    soundness_incidents = n_sound;
    precision_incidents = List.length !incidents - n_sound;
    quarantined = !quarantined;
    healed = !healed;
    distilled = !distilled;
    corpus_total =
      (match cfg.corpus with
      | Some cdir -> List.length (corpus_members cdir)
      | None -> 0);
    out_of_time = !stopped;
    oracle_s = !oracle_s;
    elapsed_s = Obs.Clock.now_s () -. t0;
  }
