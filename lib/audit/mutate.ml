(* AST-level mutators over TinyC programs (UBfuzz-style differential
   fuzzing fodder).

   Each mutator makes a small semantics-changing edit that is *valid
   TinyC* but perturbs exactly the property the analysis reasons about —
   definedness flow:

   - [Drop_init]  removes the initializer of a scalar declaration, turning
     a defined local into a (potentially) undefined one;
   - [Swap_branches] exchanges the arms of an [if], rerouting which side
     of a conditional initialization actually executes;
   - [Reorder_stores] swaps two adjacent assignment statements, reordering
     a def against a later use or another def.

   Mutants can of course trap at run time (a dropped pointer init turns a
   deref into a wild access); the audit loop discards those. Mutation
   sites are indexed deterministically in program preorder, so a (kind,
   site) pair — and therefore a whole fuzzing run — replays exactly from
   its seed. *)

open Tinyc.Ast

type kind = Drop_init | Swap_branches | Reorder_stores

let all_kinds = [ Drop_init; Swap_branches; Reorder_stores ]

let kind_name = function
  | Drop_init -> "drop-init"
  | Swap_branches -> "swap-branches"
  | Reorder_stores -> "reorder-stores"

type t = { mkind : kind; site : int }

let to_string (m : t) = Printf.sprintf "%s@%d" (kind_name m.mkind) m.site

(* Traversal state: [remaining] counts down candidate sites until the one
   to rewrite; negative means "count only". [total] counts every candidate
   seen; [hit] records the human description of the claimed site. *)
type st = {
  mutable remaining : int;
  mutable total : int;
  mutable hit : string option;
}

let claim (s : st) (descr : unit -> string) : bool =
  s.total <- s.total + 1;
  if s.hit <> None || s.remaining < 0 then false
  else if s.remaining = 0 then begin
    s.hit <- Some (descr ());
    s.remaining <- -1;
    true
  end
  else begin
    s.remaining <- s.remaining - 1;
    false
  end

let rec xstmts (s : st) (kind : kind) (ss : stmt list) : stmt list =
  let ss =
    match kind with
    | Reorder_stores ->
      let rec pairs = function
        | (Sassign _ as a) :: (Sassign _ as b) :: rest ->
          if claim s (fun () -> "swap adjacent stores") then b :: a :: rest
          else a :: pairs (b :: rest)
        | x :: rest -> x :: pairs rest
        | [] -> []
      in
      pairs ss
    | Drop_init | Swap_branches -> ss
  in
  List.map (xstmt s kind) ss

and xstmt (s : st) (kind : kind) (stmt : stmt) : stmt =
  let stmt =
    match (kind, stmt) with
    | Drop_init, Sdecl (Tint, x, Some _)
      when claim s (fun () -> "drop init of " ^ x) ->
      Sdecl (Tint, x, None)
    | Swap_branches, Sif (c, a, b)
      when claim s (fun () -> "swap if branches") ->
      Sif (c, b, a)
    | _ -> stmt
  in
  match stmt with
  | Sif (c, a, b) -> Sif (c, xstmts s kind a, xstmts s kind b)
  | Swhile (c, b) -> Swhile (c, xstmts s kind b)
  | Sfor (i, c, u, b) -> Sfor (i, c, u, xstmts s kind b)
  | Sblock b -> Sblock (xstmts s kind b)
  | other -> other

let xprogram (s : st) (kind : kind) (p : program) : program =
  List.map
    (function
      | Ifunc f -> Ifunc { f with fbody = xstmts s kind f.fbody }
      | item -> item)
    p

(** Number of candidate sites for [kind] in [p]. *)
let count (kind : kind) (p : program) : int =
  let s = { remaining = -1; total = 0; hit = None } in
  ignore (xprogram s kind p);
  s.total

(** Apply the [site]-th candidate of [m.mkind] (preorder). [None] when the
    site index is out of range. Also returns a human description. *)
let apply (m : t) (p : program) : (program * string) option =
  let s = { remaining = m.site; total = 0; hit = None } in
  let p' = xprogram s m.mkind p in
  match s.hit with Some d -> Some (p', d) | None -> None

(** Draw one applicable mutation uniformly at random over all (kind, site)
    candidates. [None] when the program has no candidate at all. *)
let random (rng : Workloads.Rng.t) (p : program) :
    (program * t * string) option =
  let counts = List.map (fun k -> (k, count k p)) all_kinds in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  if total = 0 then None
  else begin
    let pick = ref (Workloads.Rng.int rng total) in
    let chosen = ref None in
    List.iter
      (fun (k, n) ->
        if !chosen = None then
          if !pick < n then chosen := Some { mkind = k; site = !pick }
          else pick := !pick - n)
      counts;
    match !chosen with
    | None -> None
    | Some m -> (
      match apply m p with
      | Some (p', descr) -> Some (p', m, descr)
      | None -> None)
  end
