(** Incident artifacts: one checksummed, atomically-written file per
    divergence, holding everything needed to replay it — program source,
    seed, mutation, variant, knobs, implicated functions/labels, and the
    ddmin-minimized repro once reduction has run. *)

type kind =
  | Soundness_miss
  | Precision_regression
  | Behavior_divergence
  | Static_violation
      (** a certificate checker ([usherc check] / lib/verify) rejected a
          static-analysis result *)
  | Worker_crash
      (** a service-daemon worker died repeatedly on this request; the
          request is quarantined after the retry cap (lib/serve) *)

val kind_name : kind -> string
val kind_of_name : string -> kind option

type t = {
  id : string;               (** content-derived, stable *)
  kind : kind;
  variant : string;          (** diverging variant's name *)
  seed : int;                (** corpus / fuzzing seed *)
  mutation : string;         (** mutation description; [""] for base programs *)
  functions : string list;   (** implicated functions *)
  labels : int list;         (** diverging labels *)
  knobs : string;            (** rendered knob summary *)
  source : string;           (** the full diverging program *)
  reduced : string option;   (** ddmin-minimized repro *)
  hits : int;                (** occurrences merged into this artifact *)
}

(** The [id] is derived from the canonical repro — [reduced] when
    present, [source] otherwise — plus kind and variant, but {e not} the
    seed or mutation that reached it, so the same hole found many ways
    yields one id. [hits] starts at 1. *)
val make :
  kind:kind ->
  variant:string ->
  seed:int ->
  mutation:string ->
  functions:string list ->
  labels:int list ->
  knobs:string ->
  source:string ->
  ?reduced:string ->
  unit ->
  t

val to_string : t -> string

(** Parse an artifact, verifying its checksum: a truncated or bit-rotted
    file is rejected with [Error] instead of replaying garbage. *)
val of_string : string -> (t, string) result

(** Create [dir] if missing. *)
val ensure_dir : string -> unit

(** Atomic file write (temp + rename): the file appears fully written or
    not at all. *)
val write_atomic : path:string -> string -> unit

val filename : t -> string

(** Write the artifact into [dir] (created if missing); returns its
    path. Saving an incident whose id already exists on disk merges it:
    the existing evidence is kept and its [hits] counter absorbs the new
    occurrence, so a fuzz run hitting one hole 50 times leaves one file,
    not 50. *)
val save : dir:string -> t -> string

val load : string -> (t, string) result

(** All well-formed incidents in [dir] plus (path, error) for corrupted
    ones. *)
val load_dir : string -> t list * (string * string) list
