(** The audit loop: feed workload-generated programs and AST-level
    mutants through the differential oracle; capture incidents, reduce
    soundness misses with ddmin, quarantine implicated functions, and
    verify the quarantined re-run covers the missed uses again. Fully
    deterministic in [seed]; time-boxed by [budget_ms] for CI. *)

type config = {
  profiles : Workloads.Profile.t list;
  scale : int;
  mutants : int;                (** mutants per base program *)
  seed : int;
  budget_ms : int option;       (** wall-clock box for the whole loop *)
  dir : string;                 (** incident + quarantine directory *)
  hole : string option;         (** test hook: seeded plan-hole prefix *)
  minimize : bool;              (** ddmin-reduce soundness misses *)
  level : Optim.Pipeline.level;
  limits : Runtime.Interp.limits;
  engine : Vm.Engine.t;         (** engine for the instrumented runs *)
  knobs : Usher.Config.knobs;
  log : string -> unit;
}

val default_config : config

type summary = {
  programs : int;
  mutants_run : int;
  skipped : int;                (** subjects whose native run trapped *)
  incidents : Incident.t list;
  soundness_incidents : int;    (** misses + behavior divergences *)
  precision_incidents : int;
  quarantined : string list;    (** functions newly quarantined *)
  healed : int;                 (** misses covered again under quarantine *)
  out_of_time : bool;
}

val knobs_summary : Usher.Config.knobs -> string

(** Run the differential oracle on one source under this config's level,
    limits and hole. [Error] when the subject is invalid (compile error
    or native-run trap); anything else propagates. *)
val oracle_check :
  config ->
  knobs:Usher.Config.knobs ->
  ?variants:Usher.Config.variant list ->
  string ->
  (Oracle.report, string) result

(** Audit one already-checked subject from its oracle report: capture and
    save incidents, ddmin-reduce misses, return quarantine entries and
    the healed count. The fuzz driver uses this to fingerprint and audit
    from a single oracle run. *)
val audit_report :
  config ->
  knobs:Usher.Config.knobs ->
  seed:int ->
  mutation:string ->
  src:string ->
  Oracle.report ->
  Incident.t list * Quarantine.entry list * int

(** Audit one program source. Returns captured incidents, quarantine
    entries and the healed count, or [Error] when the subject is invalid
    (compile error or native-run trap). *)
val audit_subject :
  config ->
  knobs:Usher.Config.knobs ->
  seed:int ->
  mutation:string ->
  string ->
  (Incident.t list * Quarantine.entry list * int, string) result

val run : config -> summary
