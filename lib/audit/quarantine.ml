(* The persistent distrust list.

   One line per quarantined function: "<function> <incident-id>". The
   pipeline (via [Config.knobs.quarantine]) forces full instrumentation
   for every listed function before any analysis runs, so a detected
   soundness bug degrades precision — never correctness — until the
   incident is resolved and the entry removed. The file lives next to the
   incident artifacts in the quarantine directory and is written
   atomically, like them.

   Concurrency: the service daemon makes concurrent writers a reality —
   several worker domains (and a simultaneous `usherc audit` process) can
   quarantine at once. [add] is a read-modify-write, so atomic file
   replacement alone is not enough: two racing adders would each load the
   old list and the second rename would silently drop the first's entry.
   Every mutation therefore runs under a two-level lock: a process-local
   mutex (fcntl record locks do not exclude domains of the same process)
   plus an fcntl lock on a sidecar "quarantine.lock" file for
   cross-process exclusion. Readers stay lock-free — they only ever see
   a complete list, because publication is still rename(2). *)

type entry = { qfunc : string; incident : string }

let list_file (dir : string) : string = Filename.concat dir "quarantine.list"
let lock_file (dir : string) : string = Filename.concat dir "quarantine.lock"

(* One mutex for all directories: quarantine writes are rare (one per
   captured incident), so contention is irrelevant and a per-dir table
   would just add a registry race of its own. *)
let local_mu = Mutex.create ()

let with_lock (dir : string) (f : unit -> 'a) : 'a =
  Mutex.protect local_mu (fun () ->
      Incident.ensure_dir dir;
      let fd =
        Unix.openfile (lock_file dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
      in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
          Unix.close fd)
        (fun () ->
          Unix.lockf fd Unix.F_LOCK 0;
          f ()))

(** Entries in [dir]'s list; missing file or directory = empty list. *)
let load (dir : string) : entry list =
  let path = list_file dir in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let s = really_input_string ic (in_channel_length ic) in
        String.split_on_char '\n' s
        |> List.filter_map (fun line ->
               match String.split_on_char ' ' line with
               | [ f; i ] when f <> "" -> Some { qfunc = f; incident = i }
               | _ -> None))
  end

let save (dir : string) (entries : entry list) : unit =
  Incident.ensure_dir dir;
  let body =
    String.concat ""
      (List.map (fun e -> Printf.sprintf "%s %s\n" e.qfunc e.incident) entries)
  in
  Incident.write_atomic ~path:(list_file dir) body

(** Merge new entries into [dir]'s list (first incident per function
    wins); returns the entries actually added. The whole
    load-merge-save runs under {!with_lock}, so concurrent adders from
    other domains or processes serialize instead of losing updates. *)
let add (dir : string) (entries : entry list) : entry list =
  with_lock dir (fun () ->
      let existing = load dir in
      let known f = List.exists (fun e -> e.qfunc = f) existing in
      let fresh =
        List.fold_left
          (fun acc e ->
            if known e.qfunc || List.exists (fun e' -> e'.qfunc = e.qfunc) acc
            then acc
            else e :: acc)
          [] entries
        |> List.rev
      in
      if fresh <> [] then save dir (existing @ fresh);
      fresh)

(** Knobs with the quarantine list applied (appended to any quarantine
    already present). *)
let apply (entries : entry list) (knobs : Usher.Config.knobs) :
    Usher.Config.knobs =
  {
    knobs with
    Usher.Config.quarantine =
      knobs.Usher.Config.quarantine
      @ List.map (fun e -> (e.qfunc, e.incident)) entries;
  }

(** Convenience: knobs with [dir]'s current list applied. *)
let apply_dir (dir : string) (knobs : Usher.Config.knobs) :
    Usher.Config.knobs =
  apply (load dir) knobs
