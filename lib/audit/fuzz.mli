(** Generative fuzzing campaigns: [count] programs from {!Gen}, each run
    once through the differential oracle, audited (incidents, ddmin,
    quarantine) and fingerprinted for corpus distillation.

    Campaigns are deterministic in [seed]: per-program seeds are a pure
    function of (seed, index), oracle fan-out order never influences any
    outcome (order-sensitive steps run in a sequential index-ordered
    post-pass, incident artifacts merge commutatively), so two runs with
    different [jobs] settings produce identical incidents, quarantine
    lists and corpus directories. *)

type config = {
  count : int;                 (** programs to generate *)
  seed : int;                  (** campaign root seed *)
  size : int;                  (** generator size knob *)
  jobs : int;                  (** oracle-run fan-out *)
  budget_ms : int option;      (** wall-clock box for the whole campaign *)
  dir : string;                (** incident + quarantine directory *)
  corpus : string option;      (** distilled-corpus directory *)
  distill : bool;              (** promote novel-coverage programs *)
  hole : string option;        (** test hook: seeded plan-hole prefix *)
  minimize : bool;             (** ddmin-reduce soundness misses *)
  level : Optim.Pipeline.level;
  limits : Runtime.Interp.limits;
  engine : Vm.Engine.t;        (** engine for the instrumented runs *)
  knobs : Usher.Config.knobs;
  log : string -> unit;
}

val default_config : config

type summary = {
  generated : int;
  audited : int;
  skipped : int;               (** native-run traps / compile errors *)
  incidents : Incident.t list;
  soundness_incidents : int;
  precision_incidents : int;
  quarantined : string list;
  healed : int;
  distilled : int;             (** programs promoted into the corpus *)
  corpus_total : int;          (** corpus size after this run *)
  out_of_time : bool;
  oracle_s : float;            (** summed per-program oracle wall time *)
  elapsed_s : float;
}

val run : config -> summary

(** Sorted members (file names) of a corpus directory. *)
val corpus_members : string -> string list

type promotion = {
  p_examined : int;   (** members of the source corpus *)
  p_promoted : int;   (** copied: contributed a novel feature *)
  p_redundant : int;  (** every feature already curated *)
  p_rejected : int;   (** unreadable, or the oracle refused the program *)
  p_total : int;      (** curated corpus size afterwards *)
}

(** [promote cfg ~src_dir ~dst_dir] re-runs the differential oracle over
    every member of the distilled corpus in [src_dir] (under [cfg]'s
    level/limits/engine/knobs) and copies a member into the curated
    corpus [dst_dir] — stable content-digest [fuzz-<digest>.c] name, its
    features merged into [dst_dir]'s [corpus.features] — exactly when
    its fingerprint contributes a feature the curated corpus lacks.
    Idempotent: a second run promotes nothing. *)
val promote : config -> src_dir:string -> dst_dir:string -> promotion
