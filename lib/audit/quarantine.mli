(** The persistent distrust list: functions implicated in unresolved
    soundness incidents. Loaded into [Config.knobs.quarantine], which
    makes {!Usher.Pipeline.analyze} force full instrumentation for each
    one — a detected soundness bug degrades precision, not correctness. *)

type entry = { qfunc : string; incident : string }

val list_file : string -> string

(** Entries in a quarantine directory; missing file = empty. *)
val load : string -> entry list

(** Atomically (re)write the list. *)
val save : string -> entry list -> unit

(** Merge new entries (first incident per function wins); returns the
    entries actually added. *)
val add : string -> entry list -> entry list

(** Knobs with the given entries appended to [knobs.quarantine]. *)
val apply : entry list -> Usher.Config.knobs -> Usher.Config.knobs

(** Knobs with the directory's current list applied. *)
val apply_dir : string -> Usher.Config.knobs -> Usher.Config.knobs
