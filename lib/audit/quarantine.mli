(** The persistent distrust list: functions implicated in unresolved
    soundness incidents. Loaded into [Config.knobs.quarantine], which
    makes {!Usher.Pipeline.analyze} force full instrumentation for each
    one — a detected soundness bug degrades precision, not correctness. *)

type entry = { qfunc : string; incident : string }

val list_file : string -> string

(** Entries in a quarantine directory; missing file = empty. *)
val load : string -> entry list

(** Atomically (re)write the list. *)
val save : string -> entry list -> unit

(** Run [f] with the directory's quarantine write lock held: a
    process-local mutex (excludes other domains) plus an fcntl lock on
    "quarantine.lock" (excludes other processes). *)
val with_lock : string -> (unit -> 'a) -> 'a

(** Merge new entries (first incident per function wins); returns the
    entries actually added. Safe under concurrent writers: the whole
    read-modify-write runs under {!with_lock}. *)
val add : string -> entry list -> entry list

(** Knobs with the given entries appended to [knobs.quarantine]. *)
val apply : entry list -> Usher.Config.knobs -> Usher.Config.knobs

(** Knobs with the directory's current list applied. *)
val apply_dir : string -> Usher.Config.knobs -> Usher.Config.knobs
