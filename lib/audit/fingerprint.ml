(* Cheap per-program coverage fingerprints for corpus distillation.

   A fingerprint is a small sorted set of feature strings summarizing
   what one oracle run *exercised*: how many ground-truth undefined uses
   the program produced, which detection classes each variant hit, which
   divergence kinds appeared, which degradation rungs fired, which VFG
   edge kinds the analysis built, and how much Γ state the resolver
   explored. Counts are log2-bucketed so "a few" and "a lot" are
   distinct features but 17 vs 18 is not.

   The fuzz driver keeps the union of all features seen so far; a
   generated program is promoted into the persisted corpus exactly when
   it contributes a feature no earlier program did. *)

let bucket (n : int) : int =
  if n <= 0 then 0
  else
    let rec go b n = if n = 0 then b else go (b + 1) (n lsr 1) in
    go 0 n

let degrade_kind_name = function
  | Usher.Degrade.Fault -> "fault"
  | Usher.Degrade.Quarantined _ -> "quarantined"
  | Usher.Degrade.Unverified _ -> "unverified"

let of_report (r : Oracle.report) : string list =
  let feats = ref [] in
  let add f = feats := f :: !feats in
  let addf fmt = Printf.ksprintf add fmt in
  (* ground-truth undefined uses in the native run *)
  addf "gt:%d" (bucket (List.length (Runtime.Interp.gt_use_labels r.native)));
  (* per-variant detection classes *)
  List.iter
    (fun (v, (o : Runtime.Interp.outcome)) ->
      let name = Usher.Config.variant_name v in
      addf "det:%s:%d" name
        (bucket (List.length (Runtime.Interp.detection_labels o))))
    r.per_variant;
  (* divergence kinds *)
  List.iter
    (fun d ->
      match (d : Oracle.divergence) with
      | Oracle.Miss m -> addf "miss:%s" (Usher.Config.variant_name m.mvariant)
      | Oracle.Behavior b ->
        addf "div:behavior:%s" (Usher.Config.variant_name b.bvariant)
      | Oracle.Precision p ->
        addf "div:precision:%s" (Usher.Config.variant_name p.pvariant))
    r.divergences;
  (* degradation rungs that fired *)
  List.iter
    (fun (e : Usher.Degrade.event) ->
      addf "degrade:%s:%s" (Diag.phase_name e.phase) (degrade_kind_name e.kind))
    !(r.analysis.events);
  (* VFG shape: which edge kinds exist, node-count bucket *)
  let g = r.analysis.vfg.graph in
  addf "vfg:nodes:%d" (bucket (Vfg.Graph.nnodes g));
  let intra = ref false and call = ref false and ret = ref false in
  Vfg.Graph.iter_nodes
    (fun n _ ->
      List.iter
        (fun (_, k) ->
          match (k : Vfg.Graph.edge_kind) with
          | Vfg.Graph.Eintra -> intra := true
          | Vfg.Graph.Ecall _ -> call := true
          | Vfg.Graph.Eret _ -> ret := true)
        (Vfg.Graph.succs g n))
    g;
  if !intra then add "vfg:edge:intra";
  if !call then add "vfg:edge:call";
  if !ret then add "vfg:edge:ret";
  (* Γ resolution effort and outcome *)
  let gamma = r.analysis.gamma in
  addf "gamma:undef:%d" (bucket (Vfg.Resolve.undef_count gamma));
  addf "gamma:states:%d" (bucket gamma.states_explored);
  List.sort_uniq compare !feats

let to_string (t : string list) : string = String.concat " " t

(** Features of [t] absent from [seen]. *)
let novel ~(seen : (string, unit) Hashtbl.t) (t : string list) : string list =
  List.filter (fun f -> not (Hashtbl.mem seen f)) t

let remember ~(seen : (string, unit) Hashtbl.t) (t : string list) : unit =
  List.iter (fun f -> Hashtbl.replace seen f ()) t
