(** Seeded, deterministic, always-terminating TinyC program generator
    for differential fuzzing of the sanitizer pipeline.

    Programs are weighted toward the constructs that stress Usher's
    precision machinery: address-taken locals and aliasing stores,
    function pointers through [int*] casts, partial struct
    initialization (stack and heap), partially-initialized arrays with
    masked indexing, and loops carrying possibly-undefined values
    across iterations.

    Guarantees:
    - the same [seed] always produces the structurally identical AST;
    - every program terminates (literal-bounded counted loops only,
      acyclic call graph);
    - every program lowers, analyzes and interprets without runtime
      traps: no zero divisors, no out-of-range shifts, no
      out-of-bounds indexing, no wild pointers. Reads of uninitialized
      *scalars* are deliberate — they are the ground truth the
      differential oracle cross-checks;
    - every program round-trips through the pretty-printer and parser
      ([Tinyc.Parser.parse_program (Tinyc.Pretty.program_to_string p)]
      equals [p]). *)

val program : ?size:int -> seed:int -> unit -> Tinyc.Ast.program
(** [program ~seed ()] generates a complete TinyC program (globals,
    struct defs, ["fz"]-prefixed helper functions, and a [main] that
    calls every helper and prints the accumulated result). [size]
    scales the number of helper functions (default 3). *)

val source : ?size:int -> seed:int -> unit -> string
(** [source ~seed ()] is [program ~seed ()] pretty-printed. *)

val campaign_seed : seed:int -> int -> int
(** [campaign_seed ~seed i] derives the per-program seed for index [i]
    of a fuzzing campaign rooted at [seed]. Depends only on [(seed, i)]
    — never on generation order — so campaigns are identical across
    [--jobs] settings. *)
