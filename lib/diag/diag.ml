(* Structured diagnostics and resource budgets for the whole pipeline.

   Every layer reports failures as a [Diag.t] — severity, originating phase,
   optional source location, message — instead of ad-hoc [Failure]/[Error of
   string] exceptions. The pipeline driver (Usher.Pipeline) catches these at
   phase boundaries and degrades soundly instead of crashing: analysis may
   prune instrumentation only when it *proves* definedness, so the only sound
   response to an analysis failure is to fall back toward MORE
   instrumentation (see DESIGN.md, "Graceful degradation").

   [Budget] provides the cooperative resource limits threaded through the
   analysis phases: a wall-clock deadline plus fuel counters for the Andersen
   solver, VFG size, and definedness resolution. Exhaustion raises
   [Budget.Exhausted], which the pipeline treats exactly like any other
   phase fault. *)

type severity = Info | Warning | Err

(** Pipeline phase a diagnostic originates from (Fig. 3's stages plus the
    runtime and the driver itself). *)
type phase =
  | Lex
  | Parse
  | Lower
  | Ir              (* IR construction / well-formedness *)
  | Optim
  | Andersen
  | Callgraph
  | Modref
  | Memssa
  | Vfg_build
  | Resolve
  | Opt2
  | Instrument
  | Interp
  | Audit           (* the soundness sentinel (differential audit) *)
  | Verify          (* the certificate checkers (lib/verify) *)
  | Driver

type loc = { line : int; col : int }

type t = {
  severity : severity;
  phase : phase;
  loc : loc option;
  message : string;
}

exception Error of t

let severity_name = function Info -> "info" | Warning -> "warning" | Err -> "error"

let phase_name = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Lower -> "lower"
  | Ir -> "ir"
  | Optim -> "optim"
  | Andersen -> "andersen"
  | Callgraph -> "callgraph"
  | Modref -> "modref"
  | Memssa -> "memssa"
  | Vfg_build -> "vfg"
  | Resolve -> "resolve"
  | Opt2 -> "opt2"
  | Instrument -> "instrument"
  | Interp -> "interp"
  | Audit -> "audit"
  | Verify -> "verify"
  | Driver -> "driver"

let to_string (d : t) =
  match d.loc with
  | Some { line; col } ->
    Printf.sprintf "[%s] %s at line %d, col %d: %s" (phase_name d.phase)
      (severity_name d.severity) line col d.message
  | None ->
    Printf.sprintf "[%s] %s: %s" (phase_name d.phase) (severity_name d.severity)
      d.message

(** Raise a [Diag.Error] with severity [Err]. *)
let error ?loc (phase : phase) fmt =
  Fmt.kstr (fun message -> raise (Error { severity = Err; phase; loc; message })) fmt

(* ------------------------------------------------------------------ *)
(* Resource budgets                                                    *)
(* ------------------------------------------------------------------ *)

module Budget = struct
  type resource = Wall_clock | Solver_fuel | Vfg_nodes | Resolve_fuel

  let resource_name = function
    | Wall_clock -> "wall-clock deadline (ms)"
    | Solver_fuel -> "pointer-solver iterations"
    | Vfg_nodes -> "VFG node cap"
    | Resolve_fuel -> "resolution states"

  exception Exhausted of { phase : phase; resource : resource; limit : int }

  type b = {
    clock : unit -> float;
    deadline : float option;     (* absolute, in [clock]'s timebase *)
    budget_ms : int;
    mutable solver_fuel : int;   (* remaining; negative = unlimited *)
    solver_fuel0 : int;
    mutable resolve_fuel : int;
    resolve_fuel0 : int;
    vfg_node_cap : int;          (* negative = unlimited *)
    mutable polls : int;         (* amortizes clock reads *)
  }

  type t = b

  (* How many cooperative ticks between clock reads. Small enough that a
     1 ms deadline still fires promptly inside hot solver loops. *)
  let poll_mask = 63

  let make ?clock ?budget_ms ?solver_fuel ?resolve_fuel ?vfg_node_cap () : t =
    (* Deadlines are measured on the monotonic clock: a wall-clock step
       (NTP, operator) must never spuriously blow — or extend — a budget. *)
    let clock = match clock with Some c -> c | None -> Obs.Clock.now_s in
    let deadline =
      match budget_ms with
      | Some ms -> Some (clock () +. (float_of_int ms /. 1000.0))
      | None -> None
    in
    {
      clock;
      deadline;
      budget_ms = Option.value ~default:(-1) budget_ms;
      solver_fuel = Option.value ~default:(-1) solver_fuel;
      solver_fuel0 = Option.value ~default:(-1) solver_fuel;
      resolve_fuel = Option.value ~default:(-1) resolve_fuel;
      resolve_fuel0 = Option.value ~default:(-1) resolve_fuel;
      vfg_node_cap = Option.value ~default:(-1) vfg_node_cap;
      polls = 0;
    }

  let unlimited () = make ()

  let limited (t : t) =
    t.deadline <> None || t.solver_fuel >= 0 || t.resolve_fuel >= 0
    || t.vfg_node_cap >= 0

  let check_deadline (t : t) (phase : phase) =
    match t.deadline with
    | Some d when t.clock () > d ->
      raise (Exhausted { phase; resource = Wall_clock; limit = t.budget_ms })
    | _ -> ()

  (** Cooperative cancellation point: cheap unless the poll counter wraps. *)
  let tick (t : t) (phase : phase) =
    t.polls <- t.polls + 1;
    if t.polls land poll_mask = 0 then check_deadline t phase

  let burn_solver (t : t) (phase : phase) =
    if t.solver_fuel >= 0 then begin
      if t.solver_fuel = 0 then
        raise (Exhausted { phase; resource = Solver_fuel; limit = t.solver_fuel0 });
      t.solver_fuel <- t.solver_fuel - 1
    end;
    tick t phase

  let burn_resolve (t : t) (phase : phase) =
    if t.resolve_fuel >= 0 then begin
      if t.resolve_fuel = 0 then
        raise
          (Exhausted { phase; resource = Resolve_fuel; limit = t.resolve_fuel0 });
      t.resolve_fuel <- t.resolve_fuel - 1
    end;
    tick t phase

  let check_nodes (t : t) (phase : phase) (nnodes : int) =
    if t.vfg_node_cap >= 0 && nnodes > t.vfg_node_cap then
      raise (Exhausted { phase; resource = Vfg_nodes; limit = t.vfg_node_cap })
end

(** Convert any exception escaping a phase into a diagnostic. [phase] is the
    phase whose guard caught it; a structured exception keeps its own. *)
let of_exn (phase : phase) (e : exn) : t =
  match e with
  | Error d -> d
  | Budget.Exhausted { phase = p; resource; limit } ->
    {
      severity = Err;
      phase = p;
      loc = None;
      message =
        Printf.sprintf "resource budget exhausted: %s (limit %d)"
          (Budget.resource_name resource) limit;
    }
  | e ->
    { severity = Err; phase; loc = None; message = Printexc.to_string e }
