(** The shadow-memory execution engine: a direct interpreter for the IR
    that simultaneously

    - executes the concrete program, carrying {e ground-truth} definedness
      on every value (the oracle instrumented runs are judged against);
    - executes an instrumentation plan (full = the MSan baseline, or any of
      Usher's guided plans): shadow registers per frame, shadow memory per
      object, the sigma_g relay array, and E(l) check records;
    - counts dynamic operations for the cost model.

    Programs are compiled to a slot-resolved form first, so the hot loop
    performs no hash lookups. Shadow state defaults to "defined"; only
    instrumented statements write it. Garbage cell contents are a
    deterministic function of object id and offset, so runs are
    reproducible. *)

exception Runtime_error of string

(** A resource limit (steps, objects, call depth) tripped — the workload
    outgrew the sandbox, as opposed to [Runtime_error], which means the
    program itself misbehaved. *)
exception Resource_exhausted of { what : string; limit : int }

(** {1 Compiled form}

    The slot-resolved program the interpreter executes: variables become
    dense integer slots per function, plan items are attached to each
    instruction as pre/post action arrays, and a phi's own shadow item is
    folded into the phi for atomic parallel evaluation. The representation
    is public so [lib/vm] can lower the same compiled program to bytecode
    — both engines share this single compilation front, which is what
    makes their outcome-for-outcome equivalence a meaningful differential
    oracle. *)

type rop = Rc of int | Rs of int | Ru  (** constant / slot / undef operand *)

type sop = Sc of bool | Ss of int      (** shadow of an operand *)

type crhs =
  | CRconst of bool
  | CRvar of int
  | CRconj of int array
  | CRmem of int                        (** slot holding the pointer *)
  | CRglobal of int
  | CRphi of (int * sop) array          (** by predecessor block *)

type caction =
  | CSet_var of int * crhs
  | CSet_mem of int * sop               (** pointer slot, shadow rhs *)
  | CSet_mem_const of int * bool
  | CSet_mem_object of int * bool
  | CSet_global of int * sop
  | CCheck of int option * Ir.Types.label  (** slot (None = undef operand) *)

type csize = CFields of int | CArray of rop

type ckind =
  | CConst of int * int
  | CCopy of int * rop
  | CUnop of int * Ir.Types.unop * rop
  | CBinop of int * Ir.Types.binop * rop * rop
  | CAlloc of { dst : int; init : bool; size : csize; name : string }
  | CLoad of int * int
  | CStore of int * rop
  | CField of int * int * int
  | CIndex of int * int * rop
  | CGlobaladdr of int * int            (** dst slot, global objid *)
  | CFuncaddr of int * string
  | CCall of { dst : int option; callee : ccallee; args : rop array }
  | CPhi of {
      dst : int;
      arms : (int * rop) array;
      sh : (int * sop) array option;    (** folded shadow phi, if planned *)
    }
  | COutput of rop
  | CInput of int

and ccallee = CDirect of string | CIndirect of int

type cinstr = {
  clbl : Ir.Types.label;
  ckind : ckind;
  pre : caction array;
  post : caction array;
}

type cterm = CTBr of rop * int * int | CTJmp of int | CTRet of rop option

type cblock = {
  body : cinstr array;                  (** leading phis evaluate in parallel *)
  cterm : cterm;
  term_lbl : Ir.Types.label;
  term_pre : caction array;
}

type cfunc = {
  cfname : string;
  nslots : int;
  cparams : int array;
  entry_acts : caction array;
  cblocks : cblock array;
}

type cprog = {
  funcs : (string, cfunc) Hashtbl.t;
  global_objid : (string, int) Hashtbl.t;
  globals : Ir.Types.global list;
  main : cfunc;
  nglobal_slots : int;                  (** sigma_g size *)
  has_shadow : bool;                    (** plan instruments anything at all *)
  max_slots : int;                      (** max [nslots] over functions, >= 1 *)
}

val compile : Ir.Prog.t -> Instr.Item.plan -> cprog

type outcome = {
  outputs : int list;                            (** program output stream *)
  exit_value : int;
  counters : Counters.t;
  detections : (Ir.Types.label, unit) Hashtbl.t; (** E(l): checks that fired *)
  gt_uses : (Ir.Types.label, unit) Hashtbl.t;    (** ground-truth undefined
                                                     uses at critical ops *)
  steps : int;
}

type limits = { max_steps : int; max_objects : int; max_depth : int }

val default_limits : limits

(** @raise Runtime_error on wild memory accesses or exceeded limits. *)
val run : ?limits:limits -> cprog -> outcome

(** Run without instrumentation. *)
val run_native : ?limits:limits -> Ir.Prog.t -> outcome

(** Compile with a plan and run. *)
val run_plan : ?limits:limits -> Ir.Prog.t -> Instr.Item.plan -> outcome

(** Per-label divergence data for differential auditing (lib/audit):
    sorted views of the outcome's label sets. *)

val detection_labels : outcome -> Ir.Types.label list
val gt_use_labels : outcome -> Ir.Types.label list

(** Ground-truth uses with no detection at the same label. A non-empty
    result is not yet a soundness miss — a dominating check may cover the
    use (see [Usher.Experiment.covered]) — but every miss is in here. *)
val missed_labels : outcome -> Ir.Types.label list
