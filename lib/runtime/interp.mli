(** The shadow-memory execution engine: a direct interpreter for the IR
    that simultaneously

    - executes the concrete program, carrying {e ground-truth} definedness
      on every value (the oracle instrumented runs are judged against);
    - executes an instrumentation plan (full = the MSan baseline, or any of
      Usher's guided plans): shadow registers per frame, shadow memory per
      object, the sigma_g relay array, and E(l) check records;
    - counts dynamic operations for the cost model.

    Programs are compiled to a slot-resolved form first, so the hot loop
    performs no hash lookups. Shadow state defaults to "defined"; only
    instrumented statements write it. Garbage cell contents are a
    deterministic function of object id and offset, so runs are
    reproducible. *)

exception Runtime_error of string

(** A resource limit (steps, objects, call depth) tripped — the workload
    outgrew the sandbox, as opposed to [Runtime_error], which means the
    program itself misbehaved. *)
exception Resource_exhausted of { what : string; limit : int }

(** A compiled program (slot-resolved IR plus plan). *)
type cprog

val compile : Ir.Prog.t -> Instr.Item.plan -> cprog

type outcome = {
  outputs : int list;                            (** program output stream *)
  exit_value : int;
  counters : Counters.t;
  detections : (Ir.Types.label, unit) Hashtbl.t; (** E(l): checks that fired *)
  gt_uses : (Ir.Types.label, unit) Hashtbl.t;    (** ground-truth undefined
                                                     uses at critical ops *)
  steps : int;
}

type limits = { max_steps : int; max_objects : int; max_depth : int }

val default_limits : limits

(** @raise Runtime_error on wild memory accesses or exceeded limits. *)
val run : ?limits:limits -> cprog -> outcome

(** Run without instrumentation. *)
val run_native : ?limits:limits -> Ir.Prog.t -> outcome

(** Compile with a plan and run. *)
val run_plan : ?limits:limits -> Ir.Prog.t -> Instr.Item.plan -> outcome

(** Per-label divergence data for differential auditing (lib/audit):
    sorted views of the outcome's label sets. *)

val detection_labels : outcome -> Ir.Types.label list
val gt_use_labels : outcome -> Ir.Types.label list

(** Ground-truth uses with no detection at the same label. A non-empty
    result is not yet a soundness miss — a dominating check may cover the
    use (see [Usher.Experiment.covered]) — but every miss is in here. *)
val missed_labels : outcome -> Ir.Types.label list
