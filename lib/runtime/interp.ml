(* The shadow-memory execution engine: a direct interpreter for the IR that
   simultaneously

   - executes the concrete program, with *ground-truth* definedness carried
     on every value (the interpreter always knows whether a value is
     garbage; that is the oracle the instrumented runs are judged against);
   - executes an instrumentation plan (full = the MSan baseline, or any of
     Usher's guided plans): shadow registers per frame, shadow memory per
     object, the sigma_g relay array, and E(l) check records;
   - counts dynamic operations for the cost model.

   Programs are compiled to a slot-resolved form first, so the hot loop
   performs no hash lookups. Shadow state defaults to "defined": shadow
   memory cells are created true and shadow registers start true; only
   instrumented statements ever write them. Garbage cell contents are a
   deterministic function of the object id and offset, so runs are
   reproducible.

   The compiled form is exposed (see interp.mli) so lib/vm can lower the
   exact same slot-resolved program to bytecode: both engines share one
   compilation front, which is what makes outcome-for-outcome equivalence
   a meaningful differential oracle. *)

open Ir.Types
module P = Ir.Prog
module Item = Instr.Item

exception Runtime_error of string

(** A resource limit (steps, objects, call depth) tripped — the *workload*
    outgrew the sandbox. Distinct from [Runtime_error], which means the
    program itself did something wrong (wild pointer, bad arity, ...), so
    callers can tell "needs a bigger budget" apart from "buggy program". *)
exception Resource_exhausted of { what : string; limit : int }

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let exhausted what limit = raise (Resource_exhausted { what; limit })

(* ------------------------------------------------------------------ *)
(* Values and memory                                                   *)
(* ------------------------------------------------------------------ *)

type vkind = Vint of int | Vptr of int * int | Vfun of string

type value = { v : vkind; def : bool }

let vint ?(def = true) n = { v = Vint n; def }

(* Deterministic garbage for uninitialized cells. *)
let garbage ~objid ~off =
  let h = (objid * 2654435761) lxor (off * 40503) in
  { v = Vint ((h lxor (h lsr 16)) land 0xffff); def = false }

type mobj = {
  cells : value array;
  shadow : bool array;
  obj_name : string;
}

(* ------------------------------------------------------------------ *)
(* Compiled form                                                       *)
(* ------------------------------------------------------------------ *)

type rop = Rc of int | Rs of int | Ru           (* constant / slot / undef *)

type sop = Sc of bool | Ss of int               (* shadow of an operand *)

type crhs =
  | CRconst of bool
  | CRvar of int
  | CRconj of int array
  | CRmem of int                                 (* slot holding the pointer *)
  | CRglobal of int
  | CRphi of (int * sop) array                   (* by predecessor block *)

type caction =
  | CSet_var of int * crhs
  | CSet_mem of int * sop                        (* pointer slot, shadow rhs *)
  | CSet_mem_const of int * bool
  | CSet_mem_object of int * bool
  | CSet_global of int * sop
  | CCheck of int option * label                 (* slot (None = undef op) *)

type csize = CFields of int | CArray of rop

type ckind =
  | CConst of int * int
  | CCopy of int * rop
  | CUnop of int * unop * rop
  | CBinop of int * binop * rop * rop
  | CAlloc of { dst : int; init : bool; size : csize; name : string }
  | CLoad of int * int
  | CStore of int * rop
  | CField of int * int * int
  | CIndex of int * int * rop
  | CGlobaladdr of int * int                     (* dst slot, global objid *)
  | CFuncaddr of int * string
  | CCall of { dst : int option; callee : ccallee; args : rop array }
  | CPhi of { dst : int; arms : (int * rop) array; sh : (int * sop) array option }
  | COutput of rop
  | CInput of int

and ccallee = CDirect of string | CIndirect of int

type cinstr = {
  clbl : label;
  ckind : ckind;
  pre : caction array;
  post : caction array;
}

type cterm =
  | CTBr of rop * int * int
  | CTJmp of int
  | CTRet of rop option

type cblock = {
  body : cinstr array;
  cterm : cterm;
  term_lbl : label;
  term_pre : caction array;
}

type cfunc = {
  cfname : string;
  nslots : int;
  cparams : int array;
  entry_acts : caction array;
  cblocks : cblock array;
}

type cprog = {
  funcs : (string, cfunc) Hashtbl.t;
  global_objid : (string, int) Hashtbl.t;
  globals : global list;
  main : cfunc;
  nglobal_slots : int;   (* sigma_g size *)
  has_shadow : bool;     (* any instrumentation at all in the plan *)
  max_slots : int;       (* max nslots over all functions, >= 1 *)
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile (p : P.t) (plan : Item.plan) : cprog =
  let global_objid = Hashtbl.create 16 in
  List.iteri (fun i (g : global) -> Hashtbl.replace global_objid g.gname i) p.globals;
  let funcs = Hashtbl.create 16 in
  P.iter_funcs
    (fun f ->
      let slot : (var, int) Hashtbl.t = Hashtbl.create 64 in
      let nslots = ref 0 in
      let slot_of v =
        match Hashtbl.find_opt slot v with
        | Some s -> s
        | None ->
          let s = !nslots in
          incr nslots;
          Hashtbl.replace slot v s;
          s
      in
      let rop = function
        | Cst n -> Rc n
        | Var v -> Rs (slot_of v)
        | Undef -> Ru
      in
      let sop = function
        | Cst _ -> Sc true
        | Undef -> Sc false
        | Var v -> Ss (slot_of v)
      in
      let caction (a : Item.action) : caction =
        match a with
        | Item.Set_var (x, rhs) ->
          let crhs =
            match rhs with
            | Item.Rconst b -> CRconst b
            | Item.Rvar y -> CRvar (slot_of y)
            | Item.Rconj ys -> CRconj (Array.of_list (List.map slot_of ys))
            | Item.Rmem y -> CRmem (slot_of y)
            | Item.Rglobal i -> CRglobal i
            | Item.Rphi arms ->
              CRphi (Array.of_list (List.map (fun (b, o) -> (b, sop o)) arms))
          in
          CSet_var (slot_of x, crhs)
        | Item.Set_mem (x, Item.Mop o) -> CSet_mem (slot_of x, sop o)
        | Item.Set_mem (x, Item.Mconst b) -> CSet_mem_const (slot_of x, b)
        | Item.Set_mem_object (x, b) -> CSet_mem_object (slot_of x, b)
        | Item.Set_global (i, o) -> CSet_global (i, sop o)
        | Item.Check o -> (
          match o with
          | Var v -> CCheck (Some (slot_of v), -1)
          | Undef -> CCheck (None, -1)
          | Cst _ -> CCheck (None, -2) (* never emitted; treated as pass *))
      in
      let actions_at lbl pos =
        Array.of_list (List.map caction (Item.items_at plan lbl ~pos))
      in
      (* Patch check labels (CCheck carries its statement label). *)
      let patch lbl (a : caction) =
        match a with
        | CCheck (s, -1) -> CCheck (s, lbl)
        | other -> other
      in
      let cblocks =
        Array.map
          (fun (b : block) ->
            let body =
              Array.of_list
                (List.map
                   (fun i ->
                     let ckind =
                       match i.kind with
                       | Const (x, n) -> CConst (slot_of x, n)
                       | Copy (x, o) -> CCopy (slot_of x, rop o)
                       | Unop (x, u, o) -> CUnop (slot_of x, u, rop o)
                       | Binop (x, bop, o1, o2) ->
                         CBinop (slot_of x, bop, rop o1, rop o2)
                       | Alloc a ->
                         CAlloc
                           {
                             dst = slot_of a.adst;
                             init = a.initialized;
                             size =
                               (match a.asize with
                               | Fields n -> CFields n
                               | Array_of o -> CArray (rop o));
                             name = a.aname;
                           }
                       | Load (x, y) -> CLoad (slot_of x, slot_of y)
                       | Store (x, o) -> CStore (slot_of x, rop o)
                       | Field_addr (x, y, k) -> CField (slot_of x, slot_of y, k)
                       | Index_addr (x, y, o) -> CIndex (slot_of x, slot_of y, rop o)
                       | Global_addr (x, gname) ->
                         CGlobaladdr (slot_of x, Hashtbl.find global_objid gname)
                       | Func_addr (x, fn) -> CFuncaddr (slot_of x, fn)
                       | Call { cdst; callee; cargs } ->
                         CCall
                           {
                             dst = Option.map slot_of cdst;
                             callee =
                               (match callee with
                               | Direct fn -> CDirect fn
                               | Indirect v -> CIndirect (slot_of v));
                             args = Array.of_list (List.map rop cargs);
                           }
                       | Phi (x, arms) ->
                         (* The phi's shadow item, if any, is folded into the
                            phi itself for atomic parallel evaluation. *)
                         let sh =
                           List.find_map
                             (function
                               | Item.Set_var (x', Item.Rphi sharms) when x' = x ->
                                 Some
                                   (Array.of_list
                                      (List.map (fun (pb, o) -> (pb, sop o)) sharms))
                               | _ -> None)
                             (Item.items_at plan i.lbl ~pos:Item.After)
                         in
                         CPhi
                           {
                             dst = slot_of x;
                             arms =
                               Array.of_list (List.map (fun (pb, o) -> (pb, rop o)) arms);
                             sh;
                           }
                       | Output o -> COutput (rop o)
                       | Input x -> CInput (slot_of x)
                     in
                     let strip_phi_shadow acts =
                       match i.kind with
                       | Phi (x, _) ->
                         Array.of_list
                           (List.filter
                              (function
                                | CSet_var (s, CRphi _) when Hashtbl.find_opt slot x = Some s -> false
                                | _ -> true)
                              (Array.to_list acts))
                       | _ -> acts
                     in
                     {
                       clbl = i.lbl;
                       ckind;
                       pre = Array.map (patch i.lbl) (actions_at i.lbl Item.Before);
                       post =
                         strip_phi_shadow
                           (Array.map (patch i.lbl) (actions_at i.lbl Item.After));
                     })
                   b.instrs)
            in
            let cterm =
              match b.term.tkind with
              | Br (o, b1, b2) -> CTBr (rop o, b1, b2)
              | Jmp b1 -> CTJmp b1
              | Ret o -> CTRet (Option.map rop o)
            in
            {
              body;
              cterm;
              term_lbl = b.term.tlbl;
              term_pre = Array.map (patch b.term.tlbl) (actions_at b.term.tlbl Item.Before);
            })
          f.blocks
      in
      let cparams = Array.of_list (List.map slot_of f.params) in
      let entry_acts =
        Array.of_list (List.map caction (Item.entry_items plan f.fname))
      in
      Hashtbl.replace funcs f.fname
        {
          cfname = f.fname;
          nslots = !nslots;
          cparams;
          entry_acts;
          cblocks;
        })
    p;
  let main =
    match Hashtbl.find_opt funcs "main" with
    | Some m -> m
    | None -> error "program has no main"
  in
  (* Whether the plan instruments anything at all: an un-instrumented run
     can share a single dummy shadow register file across all frames. *)
  let has_shadow = ref false in
  let max_slots = ref 1 in
  Hashtbl.iter
    (fun _ (cf : cfunc) ->
      if cf.nslots > !max_slots then max_slots := cf.nslots;
      if Array.length cf.entry_acts > 0 then has_shadow := true;
      Array.iter
        (fun (cb : cblock) ->
          if Array.length cb.term_pre > 0 then has_shadow := true;
          Array.iter
            (fun (ci : cinstr) ->
              if Array.length ci.pre > 0 || Array.length ci.post > 0 then
                has_shadow := true;
              match ci.ckind with
              | CPhi { sh = Some _; _ } -> has_shadow := true
              | _ -> ())
            cb.body)
        cf.cblocks)
    funcs;
  {
    funcs;
    global_objid;
    globals = p.globals;
    main;
    nglobal_slots = plan.ret_slot + 1;
    has_shadow = !has_shadow;
    max_slots = !max_slots;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = {
  outputs : int list;                    (* program output stream *)
  exit_value : int;
  counters : Counters.t;
  detections : (label, unit) Hashtbl.t;  (* E(l): checks that fired *)
  gt_uses : (label, unit) Hashtbl.t;     (* ground-truth undefined uses *)
  steps : int;
}

type limits = { max_steps : int; max_objects : int; max_depth : int }

let default_limits = { max_steps = 50_000_000; max_objects = 4_000_000; max_depth = 10_000 }

(* A call's activation record. The register files are inherently per-frame;
   everything that used to be allocated alongside them on every call — the
   interpreter's closures, the phi scratch buffers, the shadow file when
   the plan is empty — is hoisted into [state] so calls allocate only what
   frame semantics demand. *)
type frame = {
  regs : value array;
  sregs : bool array;
  mutable prev_bid : int;
}

type state = {
  prog : cprog;
  mutable objs : mobj array;
  mutable nobjs : int;
  sigma_g : bool array;
  cnt : Counters.t;
  det : (label, unit) Hashtbl.t;
  gt : (label, unit) Hashtbl.t;
  mutable outputs_rev : int list;
  mutable steps : int;
  mutable input_state : int;
  limits : limits;
  dummy_sregs : bool array;       (* shared shadow file: un-instrumented runs *)
  mutable phi_vals : value array; (* parallel-phi scratch, grown on demand *)
  mutable phi_shs : bool array;
  mutable phi_has : bool array;
}

let new_obj st ~cells ~init ~name : int =
  if st.nobjs >= st.limits.max_objects then
    exhausted "objects" st.limits.max_objects;
  let id = st.nobjs in
  let cells_arr =
    Array.init (max cells 1) (fun off ->
        if init then vint 0 else garbage ~objid:id ~off)
  in
  let o = { cells = cells_arr; shadow = Array.make (max cells 1) true; obj_name = name } in
  if st.nobjs >= Array.length st.objs then begin
    let objs = Array.make (max 64 (2 * Array.length st.objs)) o in
    Array.blit st.objs 0 objs 0 st.nobjs;
    st.objs <- objs
  end;
  st.objs.(st.nobjs) <- o;
  st.nobjs <- st.nobjs + 1;
  id

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (min (b land 63) 62)
  | Shr -> a asr (min (b land 63) 62)
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0

let as_int (v : value) : int =
  match v.v with
  | Vint n -> n
  | Vptr (o, off) -> (o lsl 20) lor (off land 0xfffff)
  | Vfun _ -> 1

(* Process-wide dynamic-work totals (Obs.Metrics), published once per run;
   the per-outcome [Counters.t] stays the cost model's input. *)
let m_runs = Obs.Metrics.counter "interp.runs"
let m_base_ops = Obs.Metrics.counter "interp.base_ops"
let m_shadow_ops = Obs.Metrics.counter "interp.shadow_ops"
let m_detections = Obs.Metrics.counter "interp.detections"

let undef_value = { v = Vint 0xDEAD; def = false }
let phi_default = { v = Vint 0; def = false }

let rvalue (regs : value array) (o : rop) : value =
  match o with
  | Rc n -> vint n
  | Rs s -> regs.(s)
  | Ru -> undef_value

let svalue (sregs : bool array) (s : sop) : bool =
  match s with Sc b -> b | Ss s -> sregs.(s)

let deref st ~what (v : value) : int * int =
  match v.v with
  | Vptr (o, off) ->
    if o < 0 || o >= st.nobjs then error "%s: dangling pointer" what;
    let cells = st.objs.(o).cells in
    if off < 0 || off >= Array.length cells then
      error "%s: out-of-bounds access to %s[%d]" what st.objs.(o).obj_name off;
    (o, off)
  | Vint _ | Vfun _ -> error "%s: not a pointer" what

(* First arm whose predecessor block is [pb]; -1 when absent. *)
let rec arm_index (arms : (int * 'a) array) (pb : int) (i : int) : int =
  if i >= Array.length arms then -1
  else if fst (Array.unsafe_get arms i) = pb then i
  else arm_index arms pb (i + 1)

let rec all_set (sregs : bool array) (ys : int array) (i : int) : bool =
  i >= Array.length ys || (sregs.(ys.(i)) && all_set sregs ys (i + 1))

let exec_action st (fr : frame) (a : caction) =
  let cnt = st.cnt in
  match a with
  | CSet_var (x, rhs) ->
    cnt.sh_reg <- cnt.sh_reg + 1;
    fr.sregs.(x) <-
      (match rhs with
      | CRconst b -> b
      | CRvar y ->
        cnt.sh_reg_reads <- cnt.sh_reg_reads + 1;
        fr.sregs.(y)
      | CRconj ys ->
        cnt.sh_reg_reads <- cnt.sh_reg_reads + Array.length ys;
        all_set fr.sregs ys 0
      | CRmem y ->
        cnt.sh_mem <- cnt.sh_mem + 1;
        let o, off = deref st ~what:"shadow load" fr.regs.(y) in
        st.objs.(o).shadow.(off)
      | CRglobal i ->
        cnt.sh_reg_reads <- cnt.sh_reg_reads + 1;
        st.sigma_g.(i)
      | CRphi arms ->
        cnt.sh_reg_reads <- cnt.sh_reg_reads + 1;
        let i = arm_index arms fr.prev_bid 0 in
        if i >= 0 then svalue fr.sregs (snd arms.(i)) else true)
  | CSet_mem (x, s) ->
    cnt.sh_mem <- cnt.sh_mem + 1;
    let o, off = deref st ~what:"shadow store" fr.regs.(x) in
    st.objs.(o).shadow.(off) <- svalue fr.sregs s
  | CSet_mem_const (x, b) ->
    cnt.sh_mem <- cnt.sh_mem + 1;
    let o, off = deref st ~what:"shadow store" fr.regs.(x) in
    st.objs.(o).shadow.(off) <- b
  | CSet_mem_object (x, b) ->
    cnt.sh_obj <- cnt.sh_obj + 1;
    let o, _ = deref st ~what:"shadow object init" fr.regs.(x) in
    let sh = st.objs.(o).shadow in
    cnt.sh_obj_cells <- cnt.sh_obj_cells + Array.length sh;
    Array.fill sh 0 (Array.length sh) b
  | CSet_global (i, s) ->
    cnt.sh_reg <- cnt.sh_reg + 1;
    cnt.sh_reg_reads <- cnt.sh_reg_reads + (match s with Ss _ -> 1 | Sc _ -> 0);
    st.sigma_g.(i) <- svalue fr.sregs s
  | CCheck (slot, lbl) ->
    cnt.sh_check <- cnt.sh_check + 1;
    let ok = match slot with Some s -> fr.sregs.(s) | None -> false in
    if not ok then Hashtbl.replace st.det lbl ()

let exec_actions st fr (acts : caction array) =
  for i = 0 to Array.length acts - 1 do
    exec_action st fr acts.(i)
  done

let ensure_phi_scratch st n =
  if Array.length st.phi_vals < n then begin
    st.phi_vals <- Array.make n phi_default;
    st.phi_shs <- Array.make n true;
    st.phi_has <- Array.make n false
  end

let rec exec_call st (f : cfunc) (args : value array) ~depth : value =
  if depth > st.limits.max_depth then
    exhausted "call depth" st.limits.max_depth;
  let regs = Array.make (max 1 f.nslots) (vint 0) in
  let sregs =
    if st.prog.has_shadow then Array.make (max 1 f.nslots) true
    else st.dummy_sregs
  in
  let fr = { regs; sregs; prev_bid = 0 } in
  let np = Array.length f.cparams and na = Array.length args in
  for i = 0 to np - 1 do
    if i < na then regs.(f.cparams.(i)) <- args.(i)
  done;
  exec_actions st fr f.entry_acts;
  exec_block st f fr 0 ~depth

and exec_block st (f : cfunc) (fr : frame) (bid : int) ~depth : value =
  let cnt = st.cnt in
  let regs = fr.regs in
  let b = f.cblocks.(bid) in
  let n = Array.length b.body in
  (* Leading phis evaluate in parallel. *)
  let nphis = ref 0 in
  while
    !nphis < n
    && match b.body.(!nphis).ckind with CPhi _ -> true | _ -> false
  do
    incr nphis
  done;
  if !nphis > 0 then begin
    ensure_phi_scratch st !nphis;
    let vals = st.phi_vals and shs = st.phi_shs and has = st.phi_has in
    for i = 0 to !nphis - 1 do
      match b.body.(i).ckind with
      | CPhi { arms; sh; _ } ->
        cnt.alu <- cnt.alu + 1;
        (let k = arm_index arms fr.prev_bid 0 in
         if k >= 0 then vals.(i) <- rvalue regs (snd arms.(k))
         else vals.(i) <- phi_default);
        (match sh with
        | Some sharms ->
          cnt.sh_reg <- cnt.sh_reg + 1;
          cnt.sh_reg_reads <- cnt.sh_reg_reads + 1;
          has.(i) <- true;
          let k = arm_index sharms fr.prev_bid 0 in
          if k >= 0 then shs.(i) <- svalue fr.sregs (snd sharms.(k))
          else shs.(i) <- true
        | None -> has.(i) <- false)
      | _ -> assert false
    done;
    for i = 0 to !nphis - 1 do
      match b.body.(i).ckind with
      | CPhi { dst; _ } ->
        regs.(dst) <- vals.(i);
        if has.(i) then fr.sregs.(dst) <- shs.(i);
        (* Non-phi shadow items attached to the phi still run. *)
        exec_actions st fr b.body.(i).pre;
        exec_actions st fr b.body.(i).post
      | _ -> assert false
    done
  end;
  for idx = !nphis to n - 1 do
    let i = b.body.(idx) in
    st.steps <- st.steps + 1;
    if st.steps > st.limits.max_steps then
      exhausted "steps" st.limits.max_steps;
    exec_actions st fr i.pre;
    (match i.ckind with
    | CConst (x, n) ->
      cnt.alu <- cnt.alu + 1;
      regs.(x) <- vint n
    | CCopy (x, o) ->
      cnt.alu <- cnt.alu + 1;
      regs.(x) <- rvalue regs o
    | CUnop (x, u, o) ->
      cnt.alu <- cnt.alu + 1;
      let a = rvalue regs o in
      let n = as_int a in
      let r = match u with Neg -> -n | Not -> lnot n | Lnot -> if n = 0 then 1 else 0 in
      regs.(x) <- { v = Vint r; def = a.def }
    | CBinop (x, bop, o1, o2) ->
      cnt.alu <- cnt.alu + 1;
      let a = rvalue regs o1 and c = rvalue regs o2 in
      let r =
        match (bop, a.v, c.v) with
        | Eq, Vptr (p, q), Vptr (p', q') -> if p = p' && q = q' then 1 else 0
        | Ne, Vptr (p, q), Vptr (p', q') -> if p = p' && q = q' then 0 else 1
        | _ -> eval_binop bop (as_int a) (as_int c)
      in
      regs.(x) <- { v = Vint r; def = a.def && c.def }
    | CAlloc { dst; init; size; name } ->
      cnt.alloc <- cnt.alloc + 1;
      let cells =
        match size with
        | CFields n -> n
        | CArray o ->
          let v = rvalue regs o in
          if not v.def then error "allocation with undefined size";
          max 0 (min (as_int v) 10_000_000)
      in
      cnt.alloc_cells <- cnt.alloc_cells + cells;
      let id = new_obj st ~cells ~init ~name in
      regs.(dst) <- { v = Vptr (id, 0); def = true }
    | CLoad (x, y) ->
      cnt.mem <- cnt.mem + 1;
      let pv = regs.(y) in
      if not pv.def then Hashtbl.replace st.gt i.clbl ();
      let o, off = deref st ~what:"load" pv in
      regs.(x) <- st.objs.(o).cells.(off)
    | CStore (x, o) ->
      cnt.mem <- cnt.mem + 1;
      let pv = regs.(x) in
      if not pv.def then Hashtbl.replace st.gt i.clbl ();
      let ob, off = deref st ~what:"store" pv in
      st.objs.(ob).cells.(off) <- rvalue regs o
    | CField (x, y, k) ->
      cnt.alu <- cnt.alu + 1;
      let pv = regs.(y) in
      (match pv.v with
      | Vptr (o, off) -> regs.(x) <- { v = Vptr (o, off + k); def = pv.def }
      | Vint _ | Vfun _ -> regs.(x) <- { pv with def = false })
    | CIndex (x, y, o) ->
      cnt.alu <- cnt.alu + 1;
      let pv = regs.(y) in
      let iv = rvalue regs o in
      (match pv.v with
      | Vptr (ob, off) ->
        regs.(x) <- { v = Vptr (ob, off + as_int iv); def = pv.def && iv.def }
      | Vint _ | Vfun _ -> regs.(x) <- { pv with def = false })
    | CGlobaladdr (x, objid) ->
      cnt.alu <- cnt.alu + 1;
      regs.(x) <- { v = Vptr (objid, 0); def = true }
    | CFuncaddr (x, fn) ->
      cnt.alu <- cnt.alu + 1;
      regs.(x) <- { v = Vfun fn; def = true }
    | CCall { dst; callee; args } ->
      cnt.call <- cnt.call + 1;
      let fn =
        match callee with
        | CDirect fn -> fn
        | CIndirect s -> (
          match regs.(s).v with
          | Vfun fn -> fn
          | Vint _ | Vptr _ -> error "indirect call through non-function")
      in
      let callee_f =
        match Hashtbl.find_opt st.prog.funcs fn with
        | Some cf -> cf
        | None -> error "call to unknown function %s" fn
      in
      let nargs = Array.length args in
      let argv =
        if nargs = 0 then [||]
        else begin
          let a = Array.make nargs phi_default in
          for i = 0 to nargs - 1 do
            a.(i) <- rvalue regs args.(i)
          done;
          a
        end
      in
      let r = exec_call st callee_f argv ~depth:(depth + 1) in
      (match dst with Some x -> regs.(x) <- r | None -> ())
    | CPhi _ -> error "phi in block body (not at head)"
    | COutput o ->
      cnt.io <- cnt.io + 1;
      st.outputs_rev <- as_int (rvalue regs o) :: st.outputs_rev
    | CInput x ->
      cnt.io <- cnt.io + 1;
      st.input_state <- (st.input_state * 1103515245) + 12345;
      regs.(x) <- vint ((st.input_state lsr 16) land 0x7fff));
    exec_actions st fr i.post
  done;
  exec_actions st fr b.term_pre;
  (* Terminators count as steps too, or an empty infinite loop would
     never hit the step limit. *)
  st.steps <- st.steps + 1;
  if st.steps > st.limits.max_steps then
    exhausted "steps" st.limits.max_steps;
  match b.cterm with
  | CTBr (o, b1, b2) ->
    cnt.branch <- cnt.branch + 1;
    let v = rvalue regs o in
    if not v.def then Hashtbl.replace st.gt b.term_lbl ();
    fr.prev_bid <- bid;
    exec_block st f fr (if as_int v <> 0 then b1 else b2) ~depth
  | CTJmp b1 ->
    fr.prev_bid <- bid;
    exec_block st f fr b1 ~depth
  | CTRet o -> (
    cnt.call <- cnt.call + 1;
    match o with Some o -> rvalue regs o | None -> phi_default)

let run ?(limits = default_limits) (cp : cprog) : outcome =
  let st =
    {
      prog = cp;
      objs = Array.make 64 { cells = [||]; shadow = [||]; obj_name = "!" };
      nobjs = 0;
      sigma_g = Array.make (max 1 cp.nglobal_slots) true;
      cnt = Counters.create ();
      det = Hashtbl.create 16;
      gt = Hashtbl.create 16;
      outputs_rev = [];
      steps = 0;
      input_state = 0x9e3779b9;
      limits;
      dummy_sregs = Array.make cp.max_slots true;
      phi_vals = [||];
      phi_shs = [||];
      phi_has = [||];
    }
  in
  (* Allocate and initialize globals (C default-initialization: defined). *)
  List.iter
    (fun (g : global) ->
      let cells =
        match g.gsize with
        | Fields n -> n
        | Array_of (Cst n) -> n
        | Array_of _ -> error "global %s has dynamic size" g.gname
      in
      let id = new_obj st ~cells ~init:true ~name:g.gname in
      List.iteri
        (fun i n -> if i < cells then st.objs.(id).cells.(i) <- vint n)
        g.ginit;
      assert (id = Hashtbl.find cp.global_objid g.gname))
    cp.globals;
  let r =
    if Obs.Trace.enabled () then
      Obs.Trace.with_span ~cat:"interp" "interp.run" (fun () ->
          exec_call st cp.main [||] ~depth:0)
    else exec_call st cp.main [||] ~depth:0
  in
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_base_ops (Counters.base_ops st.cnt);
  Obs.Metrics.add m_shadow_ops (Counters.shadow_ops st.cnt);
  Obs.Metrics.add m_detections (Hashtbl.length st.det);
  {
    outputs = List.rev st.outputs_rev;
    exit_value = as_int r;
    counters = st.cnt;
    detections = st.det;
    gt_uses = st.gt;
    steps = st.steps;
  }

(* ------------------------------------------------------------------ *)

(** Run a program natively (no instrumentation). *)
let run_native ?limits (p : P.t) : outcome =
  run ?limits (compile p (Item.empty_plan p))

(** Run under a plan. *)
let run_plan ?limits (p : P.t) (plan : Item.plan) : outcome =
  run ?limits (compile p plan)

(* ------------------------------------------------------------------ *)
(* Per-label divergence data, for the differential audit (lib/audit):
   stable sorted views of the two label sets an oracle compares, and the
   raw per-label difference between them. *)

let sorted_labels (h : (label, unit) Hashtbl.t) : label list =
  Hashtbl.fold (fun l () acc -> l :: acc) h [] |> List.sort compare

let detection_labels (o : outcome) : label list = sorted_labels o.detections
let gt_use_labels (o : outcome) : label list = sorted_labels o.gt_uses

(** Ground-truth uses with no detection at the same label. A non-empty
    result is not yet a soundness miss — a dominating check may cover the
    use (see [Usher.Experiment.covered]) — but every miss is in here. *)
let missed_labels (o : outcome) : label list =
  List.filter (fun l -> not (Hashtbl.mem o.detections l)) (gt_use_labels o)
