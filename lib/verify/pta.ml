(* Verify.Pta — certificate checker for the Andersen points-to solution.

   Replays every constraint the solver derives from the program — address-of
   seeds, copy edges, loads, stores, field/index offsets, direct and
   indirect calls (including the 1-callsite heap-cloning rule), and returns
   — against the final solution in ONE pass. No union-find, no worklist, no
   cycle elimination: each rule is checked directly with set membership and
   subset tests, so the checker shares no mechanism with the solver it
   audits.

   What this proves: the reported solution is a pre-fixpoint of the
   constraint system — every inclusion the program implies holds. Because
   the solver claims the LEAST fixpoint and every bit in it has a
   well-founded derivation, clearing any set bit necessarily leaves some
   replayed inclusion unsatisfied, so any dropped-fact corruption is caught.
   Extra bits (over-approximation) are sound for the client analyses and
   are deliberately not flagged.

   What this trusts: the IR itself, the object/location table (including
   which clones exist), and the syntactic wrapper/address-taken prepass
   recorded in [pa.wrappers] / [pa.address_taken_funcs]. Those are
   O(program) enumerations, not fixpoints — the fixpoint is what we check.

   The checker's own [Objects.loc] calls can clamp out-of-range fields, so
   the [field_clamps] counter is snapshotted first; a nonzero count at
   entry is surfaced as a warning (satellite: the solver used to clamp
   silently). *)

open Ir.Types
module P = Ir.Prog
module A = Analysis.Andersen
module Objects = Analysis.Objects
module Bitset = Analysis.Bitset

let check ?budget (p : P.t) (pa : A.t) : Report.t =
  let t0 = Obs.Clock.now_s () in
  let r = Report.create "pta" in
  let objects = pa.A.objects in
  let clamps0 = Objects.field_clamps objects in
  let tick () =
    match budget with Some b -> Diag.Budget.tick b Diag.Verify | None -> ()
  in
  let vname x = P.var_name p x in
  let lname l = Objects.loc_name objects l in
  (* pts of a constraint node: vars and ret-node ids share one index space
     ([A.pts_var] is the node-indexed query; ret ids start at nvars). *)
  let pts_node n = A.pts_var pa n in
  let pts_var v = A.pts_var pa v in
  let ret_of ~func g k =
    match Hashtbl.find_opt pa.A.ret_node g with
    | Some n -> k n
    | None ->
      Report.violation ~func r "no return node for function %s" g
  in
  (* src ⊆ dst, witness = first element of src missing from dst. [what]
     builds the message lazily — only paid on failure. *)
  let subset ?func ~src ~dst what =
    Report.fact r;
    match Bitset.diff_new ~src ~old:dst with
    | [] -> ()
    | w :: _ ->
      Report.violation ?func r "%s: %s missing from the target set" (what ())
        (lname w)
  in
  let member ?func l ~dst what =
    Report.fact r;
    if not (Bitset.mem dst l) then
      Report.violation ?func r "%s: %s missing from the target set" (what ())
        (lname l)
  in
  let callee_recorded ~func lbl g =
    Report.fact r;
    if not (List.mem g (A.callees_of pa lbl)) then
      Report.violation ~func r
        "call site l%d: resolved callee %s missing from the call graph" lbl g
  in
  (* Argument binding replicates the solver's tolerant [List.iter2]: the
     common prefix binds, surplus on either side is ignored. *)
  let rec bind_prefix ~func lbl args params =
    match (args, params) with
    | Var a :: args', prm :: params' ->
      subset ~func ~src:(pts_var a) ~dst:(pts_var prm) (fun () ->
          Printf.sprintf "call site l%d: arg %s into param %s" lbl (vname a)
            (vname prm));
      bind_prefix ~func lbl args' params'
    | (Cst _ | Undef) :: args', _ :: params' -> bind_prefix ~func lbl args' params'
    | _, [] | [], _ -> ()
  in
  (* Full binding of a resolved (non-clone) call to a defined callee. *)
  let bind_call ~func lbl (callee : func) cdst cargs =
    callee_recorded ~func lbl callee.fname;
    bind_prefix ~func lbl cargs callee.params;
    match cdst with
    | Some x ->
      ret_of ~func callee.fname (fun rn ->
          subset ~func ~src:(pts_node rn) ~dst:(pts_var x) (fun () ->
              Printf.sprintf "call site l%d: return of %s into %s" lbl
                callee.fname (vname x)))
    | None -> ()
  in
  P.iter_instrs
    (fun f _ i ->
      tick ();
      let func = f.fname in
      match i.kind with
      | Alloc a ->
        List.iter
          (fun oid ->
            member ~func
              (Objects.loc objects oid 0)
              ~dst:(pts_var a.adst)
              (fun () ->
                Printf.sprintf "l%d: alloc %s into %s" i.lbl a.aname
                  (vname a.adst)))
          (Objects.objs_of_site objects i.lbl)
      | Global_addr (x, g) -> (
        match Objects.obj_of_global objects g with
        | oid ->
          member ~func
            (Objects.loc objects oid 0)
            ~dst:(pts_var x)
            (fun () -> Printf.sprintf "l%d: &%s into %s" i.lbl g (vname x))
        | exception Not_found ->
          Report.violation ~func r "l%d: global %s has no object" i.lbl g)
      | Func_addr (x, g) -> (
        match Objects.obj_of_func objects g with
        | Some oid ->
          member ~func
            (Objects.loc objects oid 0)
            ~dst:(pts_var x)
            (fun () -> Printf.sprintf "l%d: &%s into %s" i.lbl g (vname x))
        | None -> ())
      | Copy (x, Var y) ->
        subset ~func ~src:(pts_var y) ~dst:(pts_var x) (fun () ->
            Printf.sprintf "l%d: copy %s := %s" i.lbl (vname x) (vname y))
      | Copy (_, (Cst _ | Undef)) -> ()
      | Phi (x, ins) ->
        List.iter
          (fun (_, o) ->
            match o with
            | Var y ->
              subset ~func ~src:(pts_var y) ~dst:(pts_var x) (fun () ->
                  Printf.sprintf "l%d: phi %s arm %s" i.lbl (vname x) (vname y))
            | Cst _ | Undef -> ())
          ins
      | Load (x, y) ->
        Bitset.iter
          (fun l ->
            subset ~func ~src:(A.pts_loc pa l) ~dst:(pts_var x) (fun () ->
                Printf.sprintf "l%d: load %s := *%s through %s" i.lbl (vname x)
                  (vname y) (lname l)))
          (pts_var y)
      | Store (x, Var y) ->
        Bitset.iter
          (fun l ->
            subset ~func ~src:(pts_var y) ~dst:(A.pts_loc pa l) (fun () ->
                Printf.sprintf "l%d: store *%s := %s through %s" i.lbl
                  (vname x) (vname y) (lname l)))
          (pts_var x)
      | Store (_, (Cst _ | Undef)) -> ()
      | Field_addr (x, y, k) ->
        Bitset.iter
          (fun l ->
            let o = Objects.loc_obj objects l in
            let field = Objects.loc_field objects l in
            member ~func
              (Objects.loc objects o.Objects.oid (field + k))
              ~dst:(pts_var x)
              (fun () ->
                Printf.sprintf "l%d: %s := &%s->f%d over %s" i.lbl (vname x)
                  (vname y) k (lname l)))
          (pts_var y)
      | Index_addr (x, y, o) -> (
        let idx = match o with Cst n -> Some n | Var _ | Undef -> None in
        Bitset.iter
          (fun l ->
            let ob = Objects.loc_obj objects l in
            let field = Objects.loc_field objects l in
            match idx with
            | Some k ->
              member ~func
                (Objects.loc objects ob.Objects.oid (field + k))
                ~dst:(pts_var x)
                (fun () ->
                  Printf.sprintf "l%d: %s := &%s[%d] over %s" i.lbl (vname x)
                    (vname y) k (lname l))
            | None ->
              (* dynamic index: any cell of the object *)
              let cell l' =
                member ~func l' ~dst:(pts_var x) (fun () ->
                    Printf.sprintf "l%d: %s := &%s[*] over %s" i.lbl (vname x)
                      (vname y) (lname l))
              in
              if ob.Objects.onfields > 1 then
                Objects.iter_obj_locs objects ob.Objects.oid cell
              else cell (Objects.loc objects ob.Objects.oid field))
          (pts_var y))
      | Call { callee = Direct g; cdst; cargs } -> (
        match P.find_func p g with
        | None -> () (* external: the solver imposes nothing *)
        | Some callee -> (
          (* 1-callsite heap cloning: a per-site clone object exists exactly
             when the solver's cloning rule fired (cloning enabled, [g] a
             non-address-taken wrapper) — the object table encodes it. *)
          let wrapper_clone =
            if not (Hashtbl.mem pa.A.address_taken_funcs g) then
              match Hashtbl.find_opt pa.A.wrappers g with
              | Some site -> Objects.obj_of_site objects site (Some i.lbl)
              | None -> None
            else None
          in
          match wrapper_clone with
          | Some oid -> (
            callee_recorded ~func i.lbl g;
            bind_prefix ~func i.lbl cargs callee.params;
            match cdst with
            | Some x ->
              member ~func
                (Objects.loc objects oid 0)
                ~dst:(pts_var x)
                (fun () ->
                  Printf.sprintf "l%d: heap clone of wrapper %s into %s" i.lbl
                    g (vname x))
            | None -> ())
          | None -> bind_call ~func i.lbl callee cdst cargs))
      | Call { callee = Indirect v; cdst; cargs } ->
        Bitset.iter
          (fun l ->
            match
              Objects.func_of_obj objects (Objects.loc_obj objects l).Objects.oid
            with
            | Some g -> (
              match P.find_func p g with
              | Some callee ->
                if List.length cargs = List.length callee.params then
                  bind_call ~func i.lbl callee cdst cargs
              | None -> ())
            | None -> ())
          (pts_var v)
      | Const _ | Unop _ | Binop _ | Output _ | Input _ -> ())
    p;
  (* Return edges: every returned variable flows into the return node. *)
  P.iter_funcs
    (fun f ->
      Array.iter
        (fun b ->
          match b.term.tkind with
          | Ret (Some (Var x)) ->
            tick ();
            ret_of ~func:f.fname f.fname (fun rn ->
                subset ~func:f.fname ~src:(pts_var x) ~dst:(pts_node rn)
                  (fun () ->
                    Printf.sprintf "l%d: ret %s of %s" b.term.tlbl (vname x)
                      f.fname))
          | Ret _ | Br _ | Jmp _ -> ())
        f.blocks)
    p;
  if clamps0 > 0 then
    Report.warning r
      "%d out-of-range field access(es) were silently clamped by the object \
       table; field-offset results may be imprecise"
      clamps0;
  Report.finish r ~wall_s:(Obs.Clock.now_s () -. t0)
