(* Verify.Run — run every certificate checker over a finished analysis.

   The pipeline and `usherc check` both funnel through [check_all]; each
   VFG/Γ pair is described by a [graph_instance] so the top-level-only
   prepass graph and the full memory-tracking graph are both audited under
   distinct checker names ("vfg-tl" / "gamma-tl" vs "vfg" / "gamma"). *)

type graph_instance = {
  gi_suffix : string;  (** "" for the main graph, "-tl" for the prepass *)
  gi_build : Deps.Vfg.Build.t;
  gi_gamma : Deps.Vfg.Resolve.gamma option;
      (** [None] when Γ was degraded to all-⊥ (nothing to certify) *)
  gi_allow_f_pins : bool;
      (** graph was post-processed by [force_distrusted]: excuse extra
          edges into the F root *)
}

let check_all ?budget ?(skip = fun (_ : Ir.Types.fname) -> false)
    ?(context_sensitive = true) (p : Ir.Prog.t) (pa : Analysis.Andersen.t)
    (cg : Analysis.Callgraph.t) (mr : Analysis.Modref.t) (mssa : Memssa.t)
    (graphs : graph_instance list) : Report.t list =
  let pta = Pta.check ?budget p pa in
  let ssa = Ssa.check ?budget ~skip p pa cg mr mssa in
  let per_graph gi =
    let s =
      Vfg.check_structure ?budget ~skip ~name:("vfg" ^ gi.gi_suffix)
        ~allow_f_pins:gi.gi_allow_f_pins gi.gi_build
    in
    match gi.gi_gamma with
    | Some gm ->
      [
        s;
        Vfg.check_gamma ?budget ~context_sensitive
          ~name:("gamma" ^ gi.gi_suffix) gi.gi_build gm;
      ]
    | None -> [ s ]
  in
  (pta :: ssa :: List.concat_map per_graph graphs : Report.t list)

let all_ok reports = List.for_all Report.ok reports
let total_violations reports =
  List.fold_left (fun acc r -> acc + Report.nviolations r) 0 reports
