(* Shared result type for the certificate checkers (lib/verify).

   Each checker replays one phase's specification against that phase's
   final output and accumulates located [Diag.t] violations here, tagged
   with the offending function when one can be named — the pipeline uses
   the tag to feed the existing per-function degradation ladder instead of
   crashing. [finish] freezes the report, records the checker's wall time,
   and mirrors the counts into the Obs metrics registry (and an instant
   trace event when tracing), so per-checker cost and outcome are visible
   in [--metrics] and the Chrome trace. *)

type violation = {
  vdiag : Diag.t;
  vfunc : Ir.Types.fname option;
      (* offending function, for targeted distrust; None = whole-program *)
}

type t = {
  checker : string;
  mutable wall_s : float;
  mutable checked : int;            (* facts replayed *)
  mutable violations : violation list;  (* newest first until [finish] *)
}

let create checker = { checker; wall_s = 0.0; checked = 0; violations = [] }

let fact r = r.checked <- r.checked + 1

let add r severity func message =
  r.violations <-
    { vdiag = { Diag.severity; phase = Diag.Verify; loc = None; message };
      vfunc = func }
    :: r.violations

(** Record a violation ([Err]); the format result becomes the message. *)
let violation ?func r fmt = Fmt.kstr (fun m -> add r Diag.Err func m) fmt

(** Record a warning — surfaced but never fails a check. *)
let warning ?func r fmt = Fmt.kstr (fun m -> add r Diag.Warning func m) fmt

let errors r =
  List.filter (fun v -> v.vdiag.Diag.severity = Diag.Err) r.violations

let warnings r =
  List.filter (fun v -> v.vdiag.Diag.severity = Diag.Warning) r.violations

let nviolations r = List.length (errors r)
let ok r = nviolations r = 0

(** Freeze the report: order violations oldest-first, record wall time, and
    publish [verify.<checker>.*] metrics plus a trace instant. *)
let finish r ~wall_s =
  r.wall_s <- wall_s;
  r.violations <- List.rev r.violations;
  Obs.Metrics.add
    (Obs.Metrics.counter ("verify." ^ r.checker ^ ".facts"))
    r.checked;
  Obs.Metrics.add
    (Obs.Metrics.counter ("verify." ^ r.checker ^ ".violations"))
    (nviolations r);
  if Obs.Trace.enabled () then
    Obs.Trace.instant ~cat:"verify"
      ~args:
        [
          ("facts", Obs.Trace.Int r.checked);
          ("violations", Obs.Trace.Int (nviolations r));
          ("warnings", Obs.Trace.Int (List.length (warnings r)));
          ("wall_ms", Obs.Trace.Float (wall_s *. 1000.0));
        ]
      ("verify." ^ r.checker);
  r

let summary_line r =
  Printf.sprintf "%-10s %8.2f ms  %7d facts  %3d violations%s" r.checker
    (r.wall_s *. 1000.0) r.checked (nviolations r)
    (match List.length (warnings r) with
    | 0 -> ""
    | n -> Printf.sprintf "  %d warnings" n)
