(* Verify.Vfg — certificate checkers for the value-flow graph and for Γ.

   [check_structure] replays every edge- and definition-site rule of the
   VFG builder against the finished graph using find-only lookups (nothing
   is ever interned or added): roots, parameter and entry nodes, memory
   phis, per-instruction dependence edges, the strong / semi-strong / weak
   store-update shapes (the update kind is RECLASSIFIED here from the
   points-to results, dominance and an independent derives-from-allocation
   walk, then compared against the builder's recorded kind), and the
   interprocedural call/return and virtual-parameter edges. It also checks
   graph-representation invariants: succ/pred adjacency is symmetric, edge
   counts agree, node interning round-trips, and — modulo nodes owned by
   explicitly skipped (distrusted) functions — every node has a definition
   site. A missing expected edge is an error; an edge matched by no rule is
   only a warning, because extra edges can only grow F-reachability, which
   is the sound direction.

   [check_gamma] validates Γ as a genuine fixpoint of F-reachability: an
   independent node-level backwards search from the F root with 1-callsite
   call-string matching (no SCC condensation — the solver's optimization is
   exactly what we refuse to share) recomputes the reachable set, recording
   a parent edge at each first visit. Every node Γ resolves ⊥ must be
   reached (otherwise Γ is not the least fixpoint), and every reached node
   must be ⊥ (otherwise Γ is unsound) — in which case the reconstructed
   path witness to F is re-validated edge by edge against the graph and
   printed.

   Trusts: the IR, the object table, Memory SSA and the call graph (audited
   by Verify.Ssa) and the points-to sets (audited by Verify.Pta). *)

open Ir.Types
module P = Ir.Prog
module Objects = Analysis.Objects
module Callgraph = Analysis.Callgraph
module Dominance = Analysis.Dominance
module G = Deps.Vfg.Graph
module B = Deps.Vfg.Build
module R = Deps.Vfg.Resolve

let kc_of = function
  | G.Eintra -> 0
  | G.Ecall l -> (2 * l) + 1
  | G.Eret l -> (2 * l) + 2

let kc_name = function
  | 0 -> "intra"
  | kc when kc land 1 = 1 -> Printf.sprintf "call@l%d" ((kc - 1) / 2)
  | kc -> Printf.sprintf "ret@l%d" ((kc - 2) / 2)

(* Independent reimplementation of the semi-strong derivation test: does
   [x] derive exclusively from the allocation destination [z] through
   copies, phis and address computations? Conservative [false] on cycles. *)
let derives_from (defs : (var, instr_kind) Hashtbl.t) (x : var) (z : var) :
    bool =
  let visiting = Hashtbl.create 8 in
  let rec go v =
    v = z
    || (not (Hashtbl.mem visiting v))
       && begin
         Hashtbl.replace visiting v ();
         match Hashtbl.find_opt defs v with
         | Some (Copy (_, Var y)) -> go y
         | Some (Phi (_, arms)) ->
           arms <> []
           && List.for_all
                (fun (_, o) ->
                  match o with Var y -> go y | Cst _ | Undef -> false)
                arms
         | Some (Field_addr (_, y, _)) | Some (Index_addr (_, y, _)) -> go y
         | _ -> false
       end
  in
  go x

let check_structure ?budget ?(skip = fun (_ : fname) -> false) ?(name = "vfg")
    ?(allow_f_pins = false) (bld : B.t) : Report.t =
  let t0 = Obs.Clock.now_s () in
  let r = Report.create name in
  let g = bld.B.graph in
  let p = bld.B.prog in
  let pa = bld.B.pa in
  let cg = bld.B.cg in
  let mssa = bld.B.mssa in
  let config = bld.B.config in
  let objects = pa.Analysis.Andersen.objects in
  let tick () =
    match budget with Some b -> Diag.Budget.tick b Diag.Verify | None -> ()
  in
  let nstr n = G.node_to_string p objects n in
  let owner = function
    | G.Root_t | G.Root_f -> ""
    | G.Top v -> (P.varinfo p v).vowner
    | G.Mem (fn, _, _) -> fn
  in
  match (G.find g G.Root_t, G.find g G.Root_f) with
  | None, _ | _, None ->
    Report.violation r "graph is missing its T or F root";
    Report.finish r ~wall_s:(Obs.Clock.now_s () -. t0)
  | Some troot, Some froot ->
    if G.def_of g troot <> G.Droot then
      Report.violation r "T root has a non-root definition site";
    if G.def_of g froot <> G.Droot then
      Report.violation r "F root has a non-root definition site";
    (* -------- Representation invariants. -------- *)
    let have : (int * int * int, unit) Hashtbl.t =
      Hashtbl.create (max 64 (G.nedges g))
    in
    let nsucc = ref 0 and npred = ref 0 in
    G.iter_nodes
      (fun id n ->
        tick ();
        Report.fact r;
        (match G.find g n with
        | Some id' when id' = id -> ()
        | _ ->
          Report.violation r "node %s does not round-trip through interning"
            (nstr n));
        List.iter
          (fun (d, k) ->
            incr nsucc;
            Hashtbl.replace have (id, d, kc_of k) ())
          (G.succs g id);
        npred := !npred + List.length (G.preds g id))
      g;
    G.iter_nodes
      (fun id _ ->
        List.iter
          (fun (s, k) ->
            Report.fact r;
            if not (Hashtbl.mem have (s, id, kc_of k)) then
              Report.violation r
                "pred edge %s -[%s]-> %s has no matching succ entry"
                (nstr (G.node_of g s)) (kc_name (kc_of k)) (nstr (G.node_of g id)))
          (G.preds g id))
      g;
    Report.fact r;
    if !nsucc <> G.nedges g || !npred <> G.nedges g then
      Report.violation r
        "edge count mismatch: %d succ entries, %d pred entries, nedges=%d"
        !nsucc !npred (G.nedges g);
    Report.fact r;
    if Hashtbl.length have <> !nsucc then
      Report.violation r "duplicate succ entries: %d listed, %d distinct"
        !nsucc (Hashtbl.length have);
    (* -------- Full rule replay (find-only). -------- *)
    let expected : (int * int * int, unit) Hashtbl.t =
      Hashtbl.create (max 64 (G.nedges g))
    in
    let missing_reported = Hashtbl.create 16 in
    let node ~func what n =
      match G.find g n with
      | Some id -> Some id
      | None ->
        if not (Hashtbl.mem missing_reported n) then begin
          Hashtbl.replace missing_reported n ();
          Report.violation ~func r "%s: node %s was never built" (what ())
            (nstr n)
        end;
        None
    in
    let expect_edge ~func ?(what = fun () -> "") src dst k =
      Report.fact r;
      let kc = kc_of k in
      Hashtbl.replace expected (src, dst, kc) ();
      if not (Hashtbl.mem have (src, dst, kc)) then
        Report.violation ~func r "missing edge %s -[%s]-> %s%s"
          (nstr (G.node_of g src))
          (kc_name kc)
          (nstr (G.node_of g dst))
          (match what () with "" -> "" | w -> " (" ^ w ^ ")")
    in
    let exp_def : (int, G.def_site) Hashtbl.t = Hashtbl.create 256 in
    let expect_def id d = Hashtbl.replace exp_def id d in
    let op_node ~func what gname o =
      ignore gname;
      match o with
      | Cst _ -> Some troot
      | Undef -> Some froot
      | Var v -> node ~func what (G.Top v)
    in
    let crit_set = Hashtbl.create 64 in
    List.iter
      (fun (c : B.critical) ->
        Hashtbl.replace crit_set (c.B.clbl, c.B.cop, c.B.cfunc) ())
      bld.B.criticals;
    let expect_critical ~func lbl op =
      Report.fact r;
      if not (Hashtbl.mem crit_set (lbl, op, func)) then
        Report.violation ~func r
          "l%d: critical operand not recorded for instrumentation" lbl
    in
    let process_func (f : func) =
      let fn = f.fname in
      let func = fn in
      match Memssa.func_ssa mssa fn with
      | exception Not_found ->
        Report.violation ~func r "no Memory SSA for %s while checking its VFG"
          fn
      | fs ->
        let dom = lazy (Dominance.compute f) in
        let pos = lazy (Dominance.label_positions f) in
        let defs : (var, instr_kind) Hashtbl.t = Hashtbl.create 64 in
        Ir.Func.iter_instrs
          (fun _ i ->
            match Ir.Instr.def_of i.kind with
            | Some d -> Hashtbl.replace defs d i.kind
            | None -> ())
          f;
        (* Recorded return-operand table matches the function's returns. *)
        let rets = ref [] in
        Array.iter
          (fun b ->
            match b.term.tkind with
            | Ret o -> rets := (b.term.tlbl, o) :: !rets
            | Br _ | Jmp _ -> ())
          f.blocks;
        Report.fact r;
        let recorded =
          Option.value ~default:[] (Hashtbl.find_opt bld.B.ret_operands fn)
        in
        if List.sort compare !rets <> List.sort compare recorded then
          Report.violation ~func r
            "%s: recorded return-operand table disagrees with the IR" fn;
        let mem_node what l ver = node ~func what (G.Mem (fn, l, ver)) in
        List.iter
          (fun prm ->
            match node ~func (fun () -> fn ^ " parameter") (G.Top prm) with
            | Some id -> expect_def id (G.Dparam fn)
            | None -> ())
          f.params;
        if config.B.track_memory then begin
          let is_entry = Hashtbl.create 16 in
          List.iter
            (fun l -> Hashtbl.replace is_entry l ())
            fs.Memssa.entry_locs;
          List.iter
            (fun l ->
              match mem_node (fun () -> fn ^ " entry version") l 1 with
              | Some id ->
                expect_def id (G.Dentry fn);
                if fn = "main" || not (Hashtbl.mem is_entry l) then
                  expect_edge ~func id troot G.Eintra
                    ~what:(fun () -> "entry state is defined")
              | None -> ())
            fs.Memssa.tracked;
          Array.iter
            (fun b ->
              List.iter
                (fun (phi : Memssa.memphi) ->
                  let l = phi.Memssa.mloc in
                  match
                    mem_node (fun () -> "memory phi") l phi.Memssa.mver
                  with
                  | Some id ->
                    expect_def id (G.Dmemphi (fn, b.bid));
                    List.iter
                      (fun (_, argver) ->
                        match
                          mem_node (fun () -> "memory phi argument") l argver
                        with
                        | Some a ->
                          expect_edge ~func id a G.Eintra
                            ~what:(fun () -> "memory phi argument")
                        | None -> ())
                      phi.Memssa.margs
                  | None -> ())
                (Memssa.phis_at fs b.bid))
            f.blocks
        end;
        Ir.Func.iter_instrs
          (fun _ i ->
            tick ();
            let what () = Printf.sprintf "l%d" i.lbl in
            let def_top x =
              match node ~func what (G.Top x) with
              | Some id ->
                expect_def id (G.Dinstr (fn, i.lbl));
                Some id
              | None -> None
            in
            let dep id o =
              match op_node ~func what fn o with
              | Some d -> expect_edge ~func ~what id d G.Eintra
              | None -> ()
            in
            let dep_opt id o =
              match id with Some id -> dep id o | None -> ()
            in
            match i.kind with
            | Const (x, _) -> dep_opt (def_top x) (Cst 0)
            | Copy (x, o) -> dep_opt (def_top x) o
            | Unop (x, _, o) -> dep_opt (def_top x) o
            | Binop (x, _, o1, o2) ->
              let id = def_top x in
              dep_opt id o1;
              dep_opt id o2
            | Phi (x, arms) ->
              let id = def_top x in
              List.iter (fun (_, o) -> dep_opt id o) arms
            | Global_addr (x, _) | Func_addr (x, _) | Input x ->
              dep_opt (def_top x) (Cst 0)
            | Field_addr (x, y, _) -> dep_opt (def_top x) (Var y)
            | Index_addr (x, y, o) ->
              let id = def_top x in
              dep_opt id (Var y);
              dep_opt id o
            | Alloc a ->
              dep_opt (def_top a.adst) (Cst 0);
              if config.B.track_memory then
                List.iter
                  (fun (l, nv, ov) ->
                    match mem_node what l nv with
                    | Some id -> (
                      expect_def id (G.Dchi (fn, i.lbl));
                      expect_edge ~func ~what id
                        (if a.initialized then troot else froot)
                        G.Eintra;
                      match mem_node what l ov with
                      | Some old -> expect_edge ~func ~what id old G.Eintra
                      | None -> ())
                    | None -> ())
                  (Memssa.chi_at fs i.lbl)
            | Load (x, y) ->
              expect_critical ~func i.lbl (Var y);
              let id = def_top x in
              if config.B.track_memory then
                List.iter
                  (fun (l, ver) ->
                    match (id, mem_node what l ver) with
                    | Some id, Some m ->
                      expect_edge ~func ~what id m G.Eintra
                    | _ -> ())
                  (Memssa.mu_at fs i.lbl)
              else
                Option.iter
                  (fun id -> expect_edge ~func ~what id froot G.Eintra)
                  id
            | Store (x, o) ->
              expect_critical ~func i.lbl (Var x);
              let recorded_kind = Hashtbl.find_opt bld.B.store_kind i.lbl in
              if config.B.track_memory then begin
                let chis = Memssa.chi_at fs i.lbl in
                (* Independent reclassification of the update kind. *)
                let kind =
                  match chis with
                  | [ (l, _, _) ] -> (
                    let ob = Objects.loc_obj objects l in
                    let concrete =
                      (not ob.Objects.oarray)
                      &&
                      match ob.Objects.okind with
                      | Objects.Obj_global -> true
                      | Objects.Obj_stack ->
                        not (Callgraph.is_recursive cg ob.Objects.oowner)
                      | Objects.Obj_heap | Objects.Obj_func _ -> false
                    in
                    if concrete then B.Strong
                    else if not config.B.semi_strong then B.Weak
                    else if
                      (not ob.Objects.oarray)
                      && ob.Objects.osite >= 0
                      &&
                      match Ir.Func.find_instr f ob.Objects.osite with
                      | Some (_, ai) -> (
                        match ai.kind with
                        | Alloc a ->
                          Dominance.label_dominates (Lazy.force dom)
                            (Lazy.force pos) ob.Objects.osite i.lbl
                          && derives_from defs x a.adst
                        | _ -> false)
                      | None -> false
                    then B.Semi_strong
                    else B.Weak)
                  | _ -> B.Weak
                in
                Report.fact r;
                if recorded_kind <> Some kind then
                  Report.violation ~func r
                    "l%d: store classified %s by the builder, %s by replay"
                    i.lbl
                    (match recorded_kind with
                    | Some B.Strong -> "strong"
                    | Some B.Semi_strong -> "semi-strong"
                    | Some B.Weak -> "weak"
                    | None -> "<unrecorded>")
                    (match kind with
                    | B.Strong -> "strong"
                    | B.Semi_strong -> "semi-strong"
                    | B.Weak -> "weak");
                List.iter
                  (fun (l, nv, ov) ->
                    match mem_node what l nv with
                    | Some id -> (
                      expect_def id (G.Dchi (fn, i.lbl));
                      (match op_node ~func what fn o with
                      | Some d -> expect_edge ~func ~what id d G.Eintra
                      | None -> ());
                      match kind with
                      | B.Strong -> ()
                      | B.Semi_strong -> (
                        let oo = Objects.loc_obj objects l in
                        let alloc_ver =
                          List.find_map
                            (fun (l', _, ov') ->
                              if l' = l then Some ov' else None)
                            (Memssa.chi_at fs oo.Objects.osite)
                        in
                        let old_ver =
                          match alloc_ver with Some av -> av | None -> ov
                        in
                        match mem_node what l old_ver with
                        | Some old ->
                          expect_edge ~func id old G.Eintra
                            ~what:(fun () -> "semi-strong bypass")
                        | None -> ())
                      | B.Weak -> (
                        match mem_node what l ov with
                        | Some old -> expect_edge ~func ~what id old G.Eintra
                        | None -> ()))
                    | None -> ())
                  chis
              end
              else begin
                Report.fact r;
                if recorded_kind <> Some B.Weak then
                  Report.violation ~func r
                    "l%d: top-level-only store must be recorded weak" i.lbl
              end
            | Call { cdst; cargs; _ } ->
              let what () = Printf.sprintf "l%d call" i.lbl in
              let targets = Callgraph.site_callees cg i.lbl in
              List.iter
                (fun gname ->
                  match P.find_func p gname with
                  | Some callee -> (
                    try
                      List.iter2
                        (fun prm arg ->
                          match
                            (node ~func what (G.Top prm),
                             op_node ~func what fn arg)
                          with
                          | Some s, Some d ->
                            expect_edge ~func ~what s d (G.Ecall i.lbl)
                          | _ -> ())
                        callee.params cargs
                    with Invalid_argument _ -> ())
                  | None -> ())
                targets;
              (match cdst with
              | Some x ->
                let id = def_top x in
                List.iter
                  (fun gname ->
                    List.iter
                      (fun (_, ro) ->
                        match (id, ro) with
                        | Some id, Some ro -> (
                          match op_node ~func what gname ro with
                          | Some d -> expect_edge ~func ~what id d (G.Eret i.lbl)
                          | None -> ())
                        | Some id, None ->
                          expect_edge ~func ~what id froot (G.Eret i.lbl)
                        | None, _ -> ())
                      (Option.value ~default:[]
                         (Hashtbl.find_opt bld.B.ret_operands gname)))
                  targets
              | None -> ());
              if config.B.track_memory then begin
                let cur_ver l =
                  match List.assoc_opt l (Memssa.mu_at fs i.lbl) with
                  | Some v -> Some v
                  | None ->
                    List.find_map
                      (fun (l', _, ov) -> if l' = l then Some ov else None)
                      (Memssa.chi_at fs i.lbl)
                in
                List.iter
                  (fun gname ->
                    match Memssa.func_ssa mssa gname with
                    | exception Not_found ->
                      Report.violation ~func r
                        "l%d: callee %s has no Memory SSA" i.lbl gname
                    | gfs ->
                      List.iter
                        (fun l ->
                          match cur_ver l with
                          | Some v -> (
                            match
                              (node ~func what (G.Mem (gname, l, 1)),
                               mem_node what l v)
                            with
                            | Some s, Some d ->
                              expect_edge ~func ~what s d (G.Ecall i.lbl)
                            | _ -> ())
                          | None -> ())
                        gfs.Memssa.entry_locs)
                  targets;
                List.iter
                  (fun (l, nv, ov) ->
                    match mem_node what l nv with
                    | Some id ->
                      expect_def id (G.Dchi (fn, i.lbl));
                      let all_mod = ref (targets <> []) in
                      List.iter
                        (fun gname ->
                          match Memssa.func_ssa mssa gname with
                          | exception Not_found -> all_mod := false
                          | gfs ->
                            if List.mem l gfs.Memssa.out_locs then
                              List.iter
                                (fun (rl, _) ->
                                  match
                                    List.assoc_opt l
                                      (Memssa.ret_vers_at gfs rl)
                                  with
                                  | Some ev -> (
                                    match
                                      node ~func what (G.Mem (gname, l, ev))
                                    with
                                    | Some d ->
                                      expect_edge ~func ~what id d
                                        (G.Eret i.lbl)
                                    | None -> ())
                                  | None -> all_mod := false)
                                (Option.value ~default:[]
                                   (Hashtbl.find_opt bld.B.ret_operands gname))
                            else all_mod := false)
                        targets;
                      if not !all_mod then begin
                        match mem_node what l ov with
                        | Some old -> expect_edge ~func ~what id old G.Eintra
                        | None -> ()
                      end
                    | None -> ())
                  (Memssa.chi_at fs i.lbl)
              end
            | Output _ -> ())
          f;
        Array.iter
          (fun b ->
            match b.term.tkind with
            | Br (o, _, _) -> expect_critical ~func b.term.tlbl o
            | Jmp _ | Ret _ -> ())
          f.blocks
    in
    P.iter_funcs (fun f -> if not (skip f.fname) then process_func f) p;
    (* -------- Definition-site sweep. -------- *)
    Hashtbl.iter
      (fun id d ->
        Report.fact r;
        if G.def_of g id <> d then
          Report.violation r "node %s has the wrong definition site"
            (nstr (G.node_of g id)))
      exp_def;
    G.iter_nodes
      (fun id n ->
        if id <> troot && id <> froot && G.def_of g id = G.Droot then begin
          let own = owner n in
          if not (skip own) then begin
            Report.fact r;
            Report.violation ~func:own r "node %s has no definition site"
              (nstr n)
          end
        end)
      g;
    (* -------- Unmatched edges (sound direction: warn only). -------- *)
    let extra = ref 0 in
    let example = ref None in
    Hashtbl.iter
      (fun ((s, d, kc) as key) () ->
        if not (Hashtbl.mem expected key) then begin
          let sn = G.node_of g s and dn = G.node_of g d in
          let excused =
            (allow_f_pins && d = froot && kc = 0)
            || skip (owner sn) || skip (owner dn)
          in
          if not excused then begin
            incr extra;
            if !example = None then
              example :=
                Some
                  (Printf.sprintf "%s -[%s]-> %s" (nstr sn) (kc_name kc)
                     (nstr dn))
          end
        end)
      have;
    if !extra > 0 then
      Report.warning r
        "%d edge(s) matched no construction rule (e.g. %s) — sound \
         over-approximation, but unexpected"
        !extra
        (Option.value ~default:"?" !example);
    Report.finish r ~wall_s:(Obs.Clock.now_s () -. t0)

(* ------------------------------------------------------------------ *)
(* Γ as a fixpoint of realizable F-reachability                        *)
(* ------------------------------------------------------------------ *)

type ctx = Cany | Cat of label

let check_gamma ?budget ?(context_sensitive = true) ?(name = "gamma")
    (bld : B.t) (gm : R.gamma) : Report.t =
  let t0 = Obs.Clock.now_s () in
  let r = Report.create name in
  let g = bld.B.graph in
  let p = bld.B.prog in
  let objects = bld.B.pa.Analysis.Andersen.objects in
  let n = G.nnodes g in
  let tick () =
    match budget with Some b -> Diag.Budget.tick b Diag.Verify | None -> ()
  in
  let nstr id = G.node_to_string p objects (G.node_of g id) in
  if Bytes.length gm.R.undef <> n then begin
    Report.violation r "Γ covers %d nodes but the graph has %d"
      (Bytes.length gm.R.undef) n;
    Report.finish r ~wall_s:(Obs.Clock.now_s () -. t0)
  end
  else begin
    (* Independent node-level backwards search from F with 1-callsite
       call-string matching; [parent] records the forward edge used at each
       node's first visit, giving a concrete path witness to F. *)
    let reached = Bytes.make n '\000' in
    let parent : (int * G.edge_kind) option array = Array.make n None in
    (match G.find g G.Root_f with
    | None -> () (* no F root: nothing is reachable *)
    | Some froot ->
      let any_seen = Bytes.make n '\000' in
      let at_seen : (int * label, unit) Hashtbl.t = Hashtbl.create 1024 in
      let work = Queue.create () in
      let push v ctx ~from =
        let mark () =
          if Bytes.get reached v = '\000' then begin
            Bytes.set reached v '\001';
            parent.(v) <- from
          end
        in
        match ctx with
        | Cany ->
          if Bytes.get any_seen v = '\000' then begin
            Bytes.set any_seen v '\001';
            mark ();
            Queue.push (v, Cany) work
          end
        | Cat l ->
          if
            Bytes.get any_seen v = '\000'
            && not (Hashtbl.mem at_seen (v, l))
          then begin
            Hashtbl.replace at_seen (v, l) ();
            mark ();
            Queue.push (v, ctx) work
          end
      in
      push froot Cany ~from:None;
      while not (Queue.is_empty work) do
        let v, ctx = Queue.pop work in
        tick ();
        List.iter
          (fun (u, kind) ->
            let from = Some (v, kind) in
            if context_sensitive then
              match kind with
              | G.Eintra -> push u ctx ~from
              | G.Ecall l -> push u (Cat l) ~from
              | G.Eret l -> (
                match ctx with
                | Cany -> push u Cany ~from
                | Cat l' -> if l = l' then push u Cany ~from)
            else push u Cany ~from)
          (G.preds g v)
      done);
    (* Path witness: follow parents to F, re-validating each edge. *)
    let witness id =
      let buf = Buffer.create 64 in
      let rec walk v steps =
        Buffer.add_string buf (nstr v);
        match parent.(v) with
        | None -> ()
        | Some (w, kind) ->
          if
            not
              (List.exists (fun (d, k) -> d = w && k = kind) (G.succs g v))
          then Buffer.add_string buf " -[MISSING EDGE]-> "
          else
            Buffer.add_string buf
              (Printf.sprintf " -[%s]-> " (kc_name (kc_of kind)));
          if steps >= 12 then Buffer.add_string buf "..."
          else walk w (steps + 1)
      in
      walk id 0;
      Buffer.contents buf
    in
    for id = 0 to n - 1 do
      Report.fact r;
      let rch = Bytes.get reached id <> '\000' in
      let claimed = R.is_undef gm id in
      if rch && not claimed then
        Report.violation r
          "UNSOUND: Γ(%s) = defined, but F is reachable: %s" (nstr id)
          (witness id)
      else if claimed && not rch then
        Report.violation r
          "Γ(%s) = possibly-undefined, but no realizable path to F exists — \
           not the least fixpoint"
          (nstr id)
    done;
    Report.finish r ~wall_s:(Obs.Clock.now_s () -. t0)
  end
