(* Verify.Ssa — certificate checker for Memory SSA well-formedness.

   Independently recomputes, per function, what the mu/chi side tables MUST
   contain — raw annotation sets from the points-to results, tracked /
   virtual-parameter location lists from the MOD/REF summaries — and then
   checks the version discipline of the recorded tables directly:

   - every (location, version) pair has exactly one definition (entry,
     chi, or memory phi), versions are dense in [1, nversions];
   - every use (mu, chi's old operand, ret_vers, phi argument) is dominated
     by its definition, via [Analysis.Dominance] on block/instr positions;
   - mu/chi sets at loads, stores, allocs and calls match the points-to and
     MOD/REF-derived sets exactly (so no annotation is dropped or invented);
   - phi arguments cover exactly the reachable CFG predecessors;
   - virtual input/output parameters are consistent across the call graph:
     a callee's entry locations all appear among the caller's mu/chi at
     every resolved call site, and its out locations among the chis —
     the invariant the VFG builder silently assumes when wiring
     interprocedural memory edges;
   - the MOD/REF summaries themselves are a pre-fixpoint of their
     constraint system (local loads/stores/allocs plus lifted callee
     summaries), so the sets the annotations are drawn from are sound.

   No renaming walk, no dominance-frontier phi placement: the checker
   validates the recorded result, it does not rebuild it.

   Trusts: the IR, the object table, the call graph's site resolution, and
   the points-to sets (audited separately by [Verify.Pta]). *)

open Ir.Types
module P = Ir.Prog
module A = Analysis.Andersen
module Objects = Analysis.Objects
module Bitset = Analysis.Bitset
module Callgraph = Analysis.Callgraph
module Modref = Analysis.Modref
module Dominance = Analysis.Dominance

(* Statement positions for dominance tests: (block, index) with -1 = block
   entry (memory phis, the function entry), [max_int - 1] = terminator,
   [max_int] = end of block (phi-argument sources). *)
let dominates_pos dom (b1, i1) (b2, i2) =
  if b1 = b2 then i1 < i2 else Dominance.strictly_dominates dom b1 b2

let sorted l = List.sort_uniq compare l

let check ?budget ?(skip = fun (_ : fname) -> false) (p : P.t) (pa : A.t)
    (cg : Callgraph.t) (mr : Modref.t) (mssa : Memssa.t) : Report.t =
  let t0 = Obs.Clock.now_s () in
  let r = Report.create "ssa" in
  let objects = pa.A.objects in
  let tick () =
    match budget with Some b -> Diag.Budget.tick b Diag.Verify | None -> ()
  in
  let lname l = Objects.loc_name objects l in
  let pts v = A.pts_var pa v in
  (* Reimplementation of the summary-lifting filter: a non-recursive
     callee's own stack frame is dead in the caller. *)
  let lift_keep ~callee ~callee_recursive l =
    let o = Objects.loc_obj objects l in
    not
      (o.Objects.okind = Objects.Obj_stack
      && o.Objects.oowner = callee
      && not callee_recursive)
  in
  let lifted_union pick lbl =
    let acc = Bitset.create () in
    List.iter
      (fun g ->
        let s = Modref.summary mr g in
        let rg = Callgraph.is_recursive cg g in
        Bitset.iter
          (fun l ->
            if lift_keep ~callee:g ~callee_recursive:rg l then
              ignore (Bitset.add acc l))
          (pick s))
      (Callgraph.site_callees cg lbl);
    acc
  in
  let same_locs ~func what expected actual =
    Report.fact r;
    let e = sorted expected and a = sorted actual in
    if e <> a then
      let missing = List.filter (fun l -> not (List.mem l a)) e in
      let extra = List.filter (fun l -> not (List.mem l e)) a in
      Report.violation ~func r "%s: expected {%s}, got {%s}%s%s" (what ())
        (String.concat "," (List.map lname e))
        (String.concat "," (List.map lname a))
        (match missing with
        | [] -> ""
        | l :: _ -> Printf.sprintf " — missing %s" (lname l))
        (match extra with
        | [] -> ""
        | l :: _ -> Printf.sprintf " — spurious %s" (lname l))
  in
  (* -------- MOD/REF summaries are a pre-fixpoint (checked first: the
     mu/chi replay below draws its expectations from them). -------- *)
  let subset_summary ~func ~src ~dst what =
    Report.fact r;
    match Bitset.diff_new ~src ~old:dst with
    | [] -> ()
    | w :: _ ->
      Report.violation ~func r "%s: %s missing" (what ()) (lname w)
  in
  P.iter_funcs
    (fun f ->
      if not (skip f.fname) then begin
        let func = f.fname in
        let s = Modref.summary mr f.fname in
        Ir.Func.iter_instrs
          (fun _ i ->
            tick ();
            match i.kind with
            | Load (_, y) ->
              subset_summary ~func ~src:(pts y) ~dst:s.Modref.mref (fun () ->
                  Printf.sprintf "modref %s: l%d load REF" func i.lbl)
            | Store (x, _) ->
              subset_summary ~func ~src:(pts x) ~dst:s.Modref.mmod (fun () ->
                  Printf.sprintf "modref %s: l%d store MOD" func i.lbl);
              subset_summary ~func ~src:(pts x) ~dst:s.Modref.mref (fun () ->
                  Printf.sprintf "modref %s: l%d store REF (chi uses)" func
                    i.lbl)
            | Alloc _ ->
              List.iter
                (fun oid ->
                  Objects.iter_obj_locs objects oid (fun l ->
                      Report.fact r;
                      if not (Bitset.mem s.Modref.mmod l) then
                        Report.violation ~func r
                          "modref %s: l%d alloc MOD missing %s" func i.lbl
                          (lname l)))
                (Objects.objs_of_site objects i.lbl)
            | Call _ ->
              subset_summary ~func
                ~src:(lifted_union (fun gs -> gs.Modref.mref) i.lbl)
                ~dst:s.Modref.mref
                (fun () -> Printf.sprintf "modref %s: l%d callee REF" func i.lbl);
              subset_summary ~func
                ~src:(lifted_union (fun gs -> gs.Modref.mmod) i.lbl)
                ~dst:s.Modref.mmod
                (fun () -> Printf.sprintf "modref %s: l%d callee MOD" func i.lbl)
            | Const _ | Copy _ | Unop _ | Binop _ | Field_addr _ | Index_addr _
            | Global_addr _ | Func_addr _ | Phi _ | Output _ | Input _ -> ())
          f
      end)
    p;
  (* -------- Per-function Memory SSA. -------- *)
  let check_func (f : func) =
    let func = f.fname in
    match Memssa.func_ssa mssa f.fname with
    | exception Not_found ->
      Report.violation ~func r "no Memory SSA recorded for %s" func
    | fs ->
      let dom = Dominance.compute f in
      let recursive = Callgraph.is_recursive cg f.fname in
      let own_stack l =
        let o = Objects.loc_obj objects l in
        o.Objects.okind = Objects.Obj_stack
        && o.Objects.oowner = f.fname
        && not recursive
      in
      (* Expected raw annotation sets, recomputed from pts / MOD-REF. *)
      let expected_mu i =
        match i.kind with
        | Load (_, y) -> Bitset.elements (pts y)
        | Call _ -> Bitset.elements (lifted_union (fun s -> s.Modref.mref) i.lbl)
        | _ -> []
      in
      let expected_chi i =
        match i.kind with
        | Store (x, _) -> Bitset.elements (pts x)
        | Alloc _ ->
          List.concat_map
            (fun oid ->
              let acc = ref [] in
              Objects.iter_obj_locs objects oid (fun l -> acc := l :: !acc);
              !acc)
            (Objects.objs_of_site objects i.lbl)
        | Call _ -> Bitset.elements (lifted_union (fun s -> s.Modref.mmod) i.lbl)
        | _ -> []
      in
      (* Tracked / virtual-parameter lists. *)
      let s = Modref.summary mr f.fname in
      let exp_tracked = Bitset.create () in
      Ir.Func.iter_instrs
        (fun _ i ->
          List.iter (fun l -> ignore (Bitset.add exp_tracked l)) (expected_mu i);
          List.iter (fun l -> ignore (Bitset.add exp_tracked l)) (expected_chi i))
        f;
      Bitset.iter (fun l -> ignore (Bitset.add exp_tracked l)) s.Modref.mref;
      Bitset.iter (fun l -> ignore (Bitset.add exp_tracked l)) s.Modref.mmod;
      let exp_tracked = Bitset.elements exp_tracked in
      same_locs ~func
        (fun () -> Printf.sprintf "%s: tracked locations" func)
        exp_tracked fs.Memssa.tracked;
      same_locs ~func
        (fun () -> Printf.sprintf "%s: virtual input parameters" func)
        (List.filter (fun l -> not (own_stack l)) exp_tracked)
        fs.Memssa.entry_locs;
      same_locs ~func
        (fun () -> Printf.sprintf "%s: virtual output parameters" func)
        (Bitset.elements s.Modref.mmod |> List.filter (fun l -> not (own_stack l)))
        fs.Memssa.out_locs;
      (* Definition table: (loc, version) -> position, single-def check. *)
      let defs : (Memssa.loc * int, int * int) Hashtbl.t = Hashtbl.create 64 in
      let def ~at (l, v) =
        Report.fact r;
        if v < 1 then
          Report.violation ~func r "%s: %s_%d: non-positive version" func
            (lname l) v
        else if Hashtbl.mem defs (l, v) then
          Report.violation ~func r "%s: %s_%d defined more than once" func
            (lname l) v
        else Hashtbl.replace defs (l, v) at
      in
      List.iter (fun l -> def ~at:(0, -1) (l, 1)) fs.Memssa.tracked;
      Array.iter
        (fun b ->
          if Dominance.reachable dom b.bid then begin
            List.iter
              (fun (phi : Memssa.memphi) ->
                def ~at:(b.bid, -1) (phi.Memssa.mloc, phi.Memssa.mver))
              (Memssa.phis_at fs b.bid);
            List.iteri
              (fun idx i ->
                List.iter
                  (fun (l, nv, _) -> def ~at:(b.bid, idx) (l, nv))
                  (Memssa.chi_at fs i.lbl))
              b.instrs
          end)
        f.blocks;
      (* Versions are dense: 1..nversions(l), each defined exactly once. *)
      List.iter
        (fun l ->
          tick ();
          match Hashtbl.find_opt fs.Memssa.nversions l with
          | None ->
            Report.violation ~func r "%s: tracked %s has no version count" func
              (lname l)
          | Some n ->
            for v = 1 to n do
              Report.fact r;
              if not (Hashtbl.mem defs (l, v)) then
                Report.violation ~func r "%s: %s_%d never defined" func
                  (lname l) v
            done)
        fs.Memssa.tracked;
      Hashtbl.iter
        (fun (l, v) _ ->
          let n = Option.value ~default:0 (Hashtbl.find_opt fs.Memssa.nversions l) in
          if v > n then
            Report.violation ~func r "%s: %s_%d exceeds version count %d" func
              (lname l) v n)
        defs;
      let use ~at (l, v) what =
        Report.fact r;
        match Hashtbl.find_opt defs (l, v) with
        | None ->
          Report.violation ~func r "%s: %s uses undefined %s_%d" func (what ())
            (lname l) v
        | Some dp ->
          if not (dominates_pos dom dp at) then
            Report.violation ~func r "%s: %s: def of %s_%d does not dominate it"
              func (what ()) (lname l) v
      in
      let preds = Ir.Func.preds f in
      Array.iter
        (fun b ->
          tick ();
          if Dominance.reachable dom b.bid then begin
            (* Phi arguments: one per reachable CFG predecessor, each version
               live at the end of that predecessor. *)
            List.iter
              (fun (phi : Memssa.memphi) ->
                let l = phi.Memssa.mloc in
                let arg_blocks = sorted (List.map fst phi.Memssa.margs) in
                let want =
                  sorted
                    (List.filter (Dominance.reachable dom) preds.(b.bid))
                in
                Report.fact r;
                if arg_blocks <> want then
                  Report.violation ~func r
                    "%s: memphi for %s in b%d: argument blocks {%s} <> \
                     reachable predecessors {%s}"
                    func (lname l) b.bid
                    (String.concat "," (List.map string_of_int arg_blocks))
                    (String.concat "," (List.map string_of_int want));
                List.iter
                  (fun (pb, v) ->
                    use ~at:(pb, max_int) (l, v) (fun () ->
                        Printf.sprintf "memphi arg from b%d in b%d" pb b.bid))
                  phi.Memssa.margs)
              (Memssa.phis_at fs b.bid);
            List.iteri
              (fun idx i ->
                tick ();
                same_locs ~func
                  (fun () -> Printf.sprintf "%s: l%d mu set" func i.lbl)
                  (expected_mu i)
                  (List.map fst (Memssa.mu_at fs i.lbl));
                same_locs ~func
                  (fun () -> Printf.sprintf "%s: l%d chi set" func i.lbl)
                  (expected_chi i)
                  (List.map (fun (l, _, _) -> l) (Memssa.chi_at fs i.lbl));
                List.iter
                  (fun (l, v) ->
                    use ~at:(b.bid, idx) (l, v) (fun () ->
                        Printf.sprintf "l%d mu" i.lbl))
                  (Memssa.mu_at fs i.lbl);
                List.iter
                  (fun (l, _, ov) ->
                    use ~at:(b.bid, idx) (l, ov) (fun () ->
                        Printf.sprintf "l%d chi old operand" i.lbl))
                  (Memssa.chi_at fs i.lbl))
              b.instrs;
            match b.term.tkind with
            | Ret _ ->
              let rv = Memssa.ret_vers_at fs b.term.tlbl in
              same_locs ~func
                (fun () -> Printf.sprintf "%s: l%d ret out set" func b.term.tlbl)
                fs.Memssa.out_locs (List.map fst rv);
              List.iter
                (fun (l, v) ->
                  use ~at:(b.bid, max_int - 1) (l, v) (fun () ->
                      Printf.sprintf "l%d ret out version" b.term.tlbl))
                rv
            | Br _ | Jmp _ -> ()
          end
          else
            (* Unreachable blocks are never renamed: no annotations. *)
            List.iter
              (fun i ->
                Report.fact r;
                if
                  Memssa.mu_at fs i.lbl <> [] || Memssa.chi_at fs i.lbl <> []
                then
                  Report.violation ~func r
                    "%s: l%d in unreachable b%d carries annotations" func i.lbl
                    b.bid)
              b.instrs)
        f.blocks;
      (* Virtual in/out parameter consistency across the call graph: every
         entry location of a resolved callee must be readable at the site
         (mu or chi), every out location writable (chi) — otherwise the VFG
         builder silently drops the interprocedural memory edge. *)
      Array.iter
        (fun b ->
          if Dominance.reachable dom b.bid then
            List.iter
              (fun i ->
                match i.kind with
                | Call _ ->
                  let mu_locs = List.map fst (Memssa.mu_at fs i.lbl) in
                  let chi_locs =
                    List.map (fun (l, _, _) -> l) (Memssa.chi_at fs i.lbl)
                  in
                  List.iter
                    (fun g ->
                      if not (skip g) then
                        match Memssa.func_ssa mssa g with
                        | exception Not_found -> ()
                        | gfs ->
                          List.iter
                            (fun l ->
                              Report.fact r;
                              if
                                not
                                  (List.mem l mu_locs || List.mem l chi_locs)
                              then
                                Report.violation ~func r
                                  "%s: l%d call to %s: entry location %s has \
                                   no mu/chi at the site"
                                  func i.lbl g (lname l))
                            gfs.Memssa.entry_locs;
                          List.iter
                            (fun l ->
                              Report.fact r;
                              if not (List.mem l chi_locs) then
                                Report.violation ~func r
                                  "%s: l%d call to %s: out location %s has no \
                                   chi at the site"
                                  func i.lbl g (lname l))
                            gfs.Memssa.out_locs)
                    (Callgraph.site_callees cg i.lbl)
                | _ -> ())
              b.instrs)
        f.blocks
  in
  P.iter_funcs (fun f -> if not (skip f.fname) then check_func f) p;
  Report.finish r ~wall_s:(Obs.Clock.now_s () -. t0)
