(* Abstract memory objects and locations.

   An object abstracts the memory created at an allocation site (possibly
   cloned per call site for heap-allocation wrappers, "1-callsite-sensitive
   heap cloning"), a global, or a function (for function pointers). A
   *location* — the paper's address-taken variable rho in Var_AT — is an
   (object, field) pair; arrays are collapsed to a single location ("arrays
   are treated as a whole"). Locations are densely numbered so points-to sets
   are bitsets. *)

open Ir.Types

(* Reuse the growable vector from the IR library. *)
module Vec = Ir.Vec

type objkind = Obj_stack | Obj_heap | Obj_global | Obj_func of fname

type obj = {
  oid : int;
  osite : label;            (* allocation-site label; -1 for globals/functions *)
  octx : label option;      (* cloning context: the wrapper call site *)
  okind : objkind;
  oname : string;
  onfields : int;           (* 1 for arrays and scalars *)
  oarray : bool;
  oowner : fname;           (* function owning a stack object; "" otherwise *)
  oinit : bool;             (* alloc_T (true) or alloc_F *)
}

type t = {
  objs : obj Vec.t;
  mutable locbase : int array;    (* oid -> first location id; set by freeze *)
  mutable nlocs : int;
  by_site : (label * label option, int) Hashtbl.t;
  by_global : (string, int) Hashtbl.t;
  by_func : (fname, int) Hashtbl.t;
  mutable loc_obj : int array;    (* loc -> oid, set by freeze *)
  mutable field_clamps : int;     (* out-of-range field accesses clamped *)
}

let m_field_clamps = Obs.Metrics.counter "objects.field_clamps"

let dummy_obj =
  { oid = -1; osite = -1; octx = None; okind = Obj_stack; oname = "!";
    onfields = 1; oarray = false; oowner = ""; oinit = false }

let create () =
  { objs = Vec.create ~dummy:dummy_obj; locbase = [||]; nlocs = 0;
    by_site = Hashtbl.create 64; by_global = Hashtbl.create 16;
    by_func = Hashtbl.create 16; loc_obj = [||]; field_clamps = 0 }

let add_obj t ~osite ~octx ~okind ~oname ~onfields ~oarray ~oowner ~oinit =
  let onfields = if oarray then 1 else max 1 onfields in
  let oid = Vec.push t.objs dummy_obj in
  Vec.set t.objs oid
    { oid; osite; octx; okind; oname; onfields; oarray; oowner; oinit };
  (match okind with
  | Obj_global -> Hashtbl.replace t.by_global oname oid
  | Obj_func f -> Hashtbl.replace t.by_func f oid
  | Obj_stack | Obj_heap -> ());
  if osite >= 0 then Hashtbl.replace t.by_site (osite, octx) oid;
  oid

(** Assign dense location ids once all objects exist. *)
let freeze t =
  let n = Vec.length t.objs in
  t.locbase <- Array.make n 0;
  let next = ref 0 in
  for oid = 0 to n - 1 do
    t.locbase.(oid) <- !next;
    next := !next + (Vec.get t.objs oid).onfields
  done;
  t.nlocs <- !next;
  t.loc_obj <- Array.make !next 0;
  for oid = 0 to n - 1 do
    let o = Vec.get t.objs oid in
    for f = 0 to o.onfields - 1 do
      t.loc_obj.(t.locbase.(oid) + f) <- oid
    done
  done

let nobjs t = Vec.length t.objs
let nlocs t = t.nlocs
let obj t oid = Vec.get t.objs oid

(** [loc t oid field] — the location id for field [field] of [oid], clamping
    out-of-range fields and collapsing array objects. Clamps on non-array
    objects are genuinely out-of-range accesses (array collapse is by
    design); they are counted so Verify.Pta can surface them instead of the
    old silent truncation. *)
let loc t oid field =
  let o = obj t oid in
  let field =
    if o.oarray then 0
    else if field < 0 || field > o.onfields - 1 then begin
      t.field_clamps <- t.field_clamps + 1;
      Obs.Metrics.incr m_field_clamps;
      max 0 (min field (o.onfields - 1))
    end else field
  in
  t.locbase.(oid) + field

let field_clamps t = t.field_clamps

let loc_obj t l = obj t t.loc_obj.(l)
let loc_field t l = l - t.locbase.(t.loc_obj.(l))

let objs_of_site t site = Hashtbl.fold
    (fun (s, _) oid acc -> if s = site then oid :: acc else acc)
    t.by_site []

let obj_of_site t site octx = Hashtbl.find_opt t.by_site (site, octx)
let obj_of_global t g = Hashtbl.find t.by_global g
let obj_of_func t f = Hashtbl.find_opt t.by_func f

let func_of_obj t oid =
  match (obj t oid).okind with Obj_func f -> Some f | _ -> None

let loc_name t l =
  let o = loc_obj t l in
  let f = loc_field t l in
  let ctx = match o.octx with Some c -> Printf.sprintf "@l%d" c | None -> "" in
  if o.onfields > 1 then Printf.sprintf "%s%s.f%d" o.oname ctx f
  else Printf.sprintf "%s%s" o.oname ctx

(** Iterate over all locations of an object. *)
let iter_obj_locs t oid f =
  let o = obj t oid in
  for fl = 0 to o.onfields - 1 do
    f (t.locbase.(oid) + fl)
  done
