(** Offset-based, field-sensitive, inclusion-based (Andersen-style) pointer
    analysis with 1-callsite-sensitive heap cloning applied to allocation
    wrapper functions — the configuration the paper uses (§4.1).

    Nodes of the constraint graph are top-level variables, one synthetic
    return node per function, and memory locations. Points-to sets contain
    location ids. Indirect calls are resolved on the fly, yielding the
    final call graph. *)

open Ir.Types

type config = {
  field_sensitive : bool;   (** ablation knob; the paper's setting is [true] *)
  heap_cloning : bool;      (** 1-callsite cloning of wrapper allocations *)
  small_array_fields : int;
      (** extension beyond the paper: constant-size arrays of at most this
          many cells are analysed per-cell instead of collapsed; 0 (the
          paper's setting) disables it *)
}

val default_config : config

type t = {
  prog : Ir.Prog.t;
  objects : Objects.t;
  nvars : int;
  ret_node : (fname, int) Hashtbl.t;
  wpn : int;             (** words per node in [pts_words] *)
  pts_words : int array; (** flat points-to storage, [wpn] words per node *)
  repr : int array;      (** node -> its collapsed-cycle representative *)
  pts_cache : Bitset.t option array;
      (** lazily materialized per-node views over [pts_words] *)
  callees : (label, fname list) Hashtbl.t;   (** resolved call graph *)
  wrappers : (fname, label) Hashtbl.t;       (** wrapper -> its heap site *)
  address_taken_funcs : (fname, unit) Hashtbl.t;
  solve_iterations : int;
  sccs_collapsed : int;
      (** copy-cycle unions performed by online cycle elimination *)
  edges_deduped : int;  (** duplicate copy edges skipped by the solver *)
}

(** Is [f] an allocation wrapper (unique heap allocation whose result is
    every return value)? Exposed for tests. *)
val detect_wrapper : func -> label option

(** Run the analysis. [budget] burns one unit of solver fuel (and ticks the
    deadline) per worklist iteration. [cycle_elim] (default true) collapses
    copy cycles online via union-find — same points-to sets and call graph,
    fewer iterations; [false] keeps the textbook worklist as the reference
    path for the equivalence properties. *)
val run :
  ?config:config -> ?cycle_elim:bool -> ?budget:Diag.Budget.t -> Ir.Prog.t -> t

(** Conservative fallback when the real analysis is out of budget or
    faulted: no objects, empty points-to sets, no resolved callees. Only
    sound when the consumer stops trusting the analysis entirely and falls
    back to full instrumentation. *)
val stub : Ir.Prog.t -> t

(** Points-to set (location ids) of a top-level variable. *)
val pts_var : t -> var -> Bitset.t

(** What a location may point to. *)
val pts_loc : t -> int -> Bitset.t

val pts_var_list : t -> var -> int list

(** The unique pointee, when the set is a singleton. *)
val singleton_pt : t -> var -> int option

(** Resolved callees of a call site. *)
val callees_of : t -> label -> fname list

(** Resolved callees of any call instruction (direct or indirect). *)
val call_targets : t -> instr -> fname list
