(* Dense bitsets over [0, n), the points-to set representation. *)

type t = { mutable words : int array }

let word_bits = Sys.int_size

let create () = { words = [||] }
let of_words words = { words }

let ensure t i =
  let w = (i / word_bits) + 1 in
  if w > Array.length t.words then begin
    let words = Array.make (max w (2 * Array.length t.words)) 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end

let capacity_words t = Array.length t.words

(** Index of the highest nonzero word, or -1 when the set is empty. Trailing
    zero words (from capacity doubling) are skipped, so growth decisions
    based on this never over-allocate. *)
let top_word t =
  let w = ref (Array.length t.words - 1) in
  while !w >= 0 && t.words.(!w) = 0 do
    decr w
  done;
  !w

let mem t i =
  let w = i / word_bits in
  w < Array.length t.words && t.words.(w) land (1 lsl (i mod word_bits)) <> 0

(** [add t i] returns true if [i] was newly inserted. *)
let add t i =
  ensure t i;
  let w = i / word_bits and b = 1 lsl (i mod word_bits) in
  if t.words.(w) land b <> 0 then false
  else begin
    t.words.(w) <- t.words.(w) lor b;
    true
  end

(** [union_into ~src ~dst] adds all of [src] into [dst]; returns true if [dst]
    changed. [dst] is sized from [src]'s highest *set* word, not its
    allocated capacity. *)
let union_into ~src ~dst =
  let tw = top_word src in
  if tw < 0 then false
  else begin
    ensure dst (((tw + 1) * word_bits) - 1);
    let changed = ref false in
    for w = 0 to tw do
      let sw = src.words.(w) in
      if sw <> 0 then begin
        let dw = dst.words.(w) in
        let nw = dw lor sw in
        if nw <> dw then begin
          dst.words.(w) <- nw;
          changed := true
        end
      end
    done;
    !changed
  end

(** [union_into_delta ~src ~dst ~delta] adds all of [src] into [dst] and
    records every *newly inserted* element in [delta] as well — the solver's
    difference-propagation primitive, one word-level pass, no intermediate
    list. Returns true if [dst] changed. *)
let union_into_delta ~src ~dst ~delta =
  let tw = top_word src in
  if tw < 0 then false
  else begin
    let hi = ((tw + 1) * word_bits) - 1 in
    ensure dst hi;
    let changed = ref false in
    for w = 0 to tw do
      let sw = src.words.(w) in
      if sw <> 0 then begin
        let dw = dst.words.(w) in
        let nw = dw lor sw in
        if nw <> dw then begin
          dst.words.(w) <- nw;
          ensure delta hi;
          delta.words.(w) <- delta.words.(w) lor (nw lxor dw);
          changed := true
        end
      end
    done;
    !changed
  end

let iter f t =
  Array.iteri
    (fun w word ->
      if word <> 0 then
        for b = 0 to word_bits - 1 do
          if word land (1 lsl b) <> 0 then f ((w * word_bits) + b)
        done)
    t.words

(** [iter_diff f ~src ~old] applies [f] to each element of [src] \ [old] in
    ascending order, word by word, without building a list. [f] may add to
    [src]: additions landing in already-visited words are picked up on the
    caller's next round, not this one. *)
let iter_diff f ~src ~old =
  let ow = old.words in
  let no = Array.length ow in
  let nw = Array.length src.words in
  for w = 0 to nw - 1 do
    let d = src.words.(w) land lnot (if w < no then ow.(w) else 0) in
    if d <> 0 then
      for b = 0 to word_bits - 1 do
        if d land (1 lsl b) <> 0 then f ((w * word_bits) + b)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let cardinal t =
  let n = ref 0 in
  Array.iter
    (fun word ->
      let rec count w = if w = 0 then () else (incr n; count (w land (w - 1))) in
      count word)
    t.words;
  !n

let is_empty t = top_word t < 0

(** Zero every word, keeping the allocated capacity — lets the solver recycle
    delta sets without churning the allocator. *)
let reset t = Array.fill t.words 0 (Array.length t.words) 0

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let choose t =
  let r = ref None in
  (try iter (fun i -> r := Some i; raise Exit) t with Exit -> ());
  !r

let max_elt t =
  let w = top_word t in
  if w < 0 then None
  else begin
    let word = t.words.(w) in
    let b = ref (word_bits - 1) in
    while word land (1 lsl !b) = 0 do
      decr b
    done;
    Some ((w * word_bits) + !b)
  end

let copy t = { words = Array.copy t.words }

(** [diff_new ~src ~old] — elements of [src] not in [old]. *)
let diff_new ~src ~old =
  fold (fun i acc -> if mem old i then acc else i :: acc) src []

let equal a b =
  let la = Array.length a.words and lb = Array.length b.words in
  let rec go i =
    if i >= max la lb then true
    else
      let wa = if i < la then a.words.(i) else 0 in
      let wb = if i < lb then b.words.(i) else 0 in
      wa = wb && go (i + 1)
  in
  go 0
