(** Dense bitsets over [0, n), the points-to set representation. *)

type t

(** Bits per word — for callers packing several sets into one flat array. *)
val word_bits : int

val create : unit -> t

(** Wrap an existing word array (ownership transfers; not copied). *)
val of_words : int array -> t
val mem : t -> int -> bool

(** Returns true iff newly inserted. *)
val add : t -> int -> bool

(** Add all of [src] into [dst]; true iff [dst] changed. [dst] is grown to
    [src]'s highest set element, never to its allocated capacity. *)
val union_into : src:t -> dst:t -> bool

(** Add all of [src] into [dst], recording every newly inserted element in
    [delta] too — one word-level pass, no intermediate list. True iff [dst]
    changed. *)
val union_into_delta : src:t -> dst:t -> delta:t -> bool

val iter : (int -> unit) -> t -> unit

(** Apply [f] to each element of [src] \ [old], ascending, without
    allocating a list. *)
val iter_diff : (int -> unit) -> src:t -> old:t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val cardinal : t -> int
val is_empty : t -> bool

(** Ascending order. *)
val elements : t -> int list

val choose : t -> int option

(** Largest element, if any. *)
val max_elt : t -> int option

(** Zero every word, keeping the allocated capacity. *)
val reset : t -> unit

(** Allocated size in words — exposed for growth diagnostics and tests. *)
val capacity_words : t -> int

val copy : t -> t

(** Elements of [src] absent from [old]. *)
val diff_new : src:t -> old:t -> int list

val equal : t -> t -> bool
