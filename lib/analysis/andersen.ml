(* Offset-based, field-sensitive, inclusion-based (Andersen-style) pointer
   analysis with 1-callsite-sensitive heap cloning applied to allocation
   wrapper functions, as configured in the paper (§4.1, citing [10]).

   Nodes of the constraint graph are top-level variables, one synthetic
   return node per function, and memory locations (Objects.loc). Points-to
   sets contain location ids. Arrays are collapsed to one location. Indirect
   calls are resolved on the fly, yielding the final call graph.

   The solver is a difference-propagation worklist with online cycle
   elimination: a union-find over constraint nodes collapses mutually-
   copying nodes (detected lazily when a copy edge propagates nothing new)
   so they share one points-to set. Points-to sets live in one flat word
   array — [wpn] words per node over the location universe — so set union,
   delta tracking and iteration are tight word loops with no per-node
   allocation.

   Assumption inherited from the TinyC lowering: pointers flow only through
   Copy/Phi/Field_addr/Index_addr/Load/Store/Call/Ret; integer arithmetic
   never manufactures pointers. *)

open Ir.Types
module P = Ir.Prog
module Instr = Ir.Instr

type config = {
  field_sensitive : bool;   (* ablation knob; the paper's setting is [true] *)
  heap_cloning : bool;      (* 1-callsite cloning of wrapper allocations *)
  small_array_fields : int; (* extension beyond the paper (its future work
                               names "new techniques for handling arrays"):
                               constant-size arrays of at most this many
                               cells are analysed per-cell instead of
                               collapsed. 0 (the paper's setting) disables
                               it. *)
}

let default_config =
  { field_sensitive = true; heap_cloning = true; small_array_fields = 0 }

(** Open-addressing hash set of non-negative ints (linear probing, load
    factor < 1/2, -1 = empty). The solver dedups copy edges and cycle
    searches on every [add_edge]; the generic [Hashtbl] costs several times
    more per probe than this does. *)
module Iset = struct
  type t = { mutable a : int array; mutable mask : int; mutable n : int }

  let create cap =
    let size = ref 16 in
    while !size < 2 * cap do
      size := !size * 2
    done;
    { a = Array.make !size (-1); mask = !size - 1; n = 0 }

  let slot a mask k =
    let i = ref (k * 0x9E3779B1 land mask) in
    while a.(!i) <> -1 && a.(!i) <> k do
      i := (!i + 1) land mask
    done;
    !i

  let grow t =
    let old = t.a in
    let size = 2 * Array.length old in
    t.a <- Array.make size (-1);
    t.mask <- size - 1;
    Array.iter (fun k -> if k <> -1 then t.a.(slot t.a t.mask k) <- k) old

  (** True iff [k] was newly inserted. *)
  let add t k =
    let i = slot t.a t.mask k in
    if t.a.(i) = k then false
    else begin
      t.a.(i) <- k;
      t.n <- t.n + 1;
      if 2 * t.n > t.mask then grow t;
      true
    end
end

type t = {
  prog : P.t;
  objects : Objects.t;
  nvars : int;
  ret_node : (fname, int) Hashtbl.t;
  wpn : int;                                  (* words per node *)
  pts_words : int array;                      (* flat node -> location set *)
  repr : int array;                           (* node -> collapsed-SCC rep *)
  pts_cache : Bitset.t option array;          (* materialized query views *)
  callees : (label, fname list) Hashtbl.t;    (* resolved call graph *)
  wrappers : (fname, label) Hashtbl.t;        (* wrapper -> its heap site *)
  address_taken_funcs : (fname, unit) Hashtbl.t;
  solve_iterations : int;
  sccs_collapsed : int;       (* cycle-elimination unions (0 when disabled) *)
  edges_deduped : int;        (* duplicate copy edges skipped *)
}

(* ------------------------------------------------------------------ *)
(* Syntactic prepasses                                                 *)
(* ------------------------------------------------------------------ *)

(** One pass collecting both the address-taken function set and the direct
    call sites of each function ((caller, call label, dst) list). *)
let collect_taken_and_callsites (p : P.t) =
  let taken = Hashtbl.create 16 in
  let sites : (fname, (fname * label * var option) list) Hashtbl.t =
    Hashtbl.create 16
  in
  P.iter_instrs
    (fun f _ i ->
      match i.kind with
      | Func_addr (_, g) -> Hashtbl.replace taken g ()
      | Call { callee = Direct g; cdst; _ } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt sites g) in
        Hashtbl.replace sites g ((f.fname, i.lbl, cdst) :: prev)
      | _ -> ())
    p;
  (taken, sites)

(** Is [f] an allocation wrapper: a non-recursive function whose every return
    value is (through copies and phis) the result of its unique heap
    allocation? Such wrappers get their heap object cloned per call site.
    The cheap shape scan (one heap site, no self-call) runs first; the def
    table is only collected for the few functions that pass it. *)
let detect_wrapper (f : func) : label option =
  let heap_sites = ref [] in
  let self_call = ref false in
  Ir.Func.iter_instrs
    (fun _ i ->
      match i.kind with
      | Alloc a when a.region = Heap -> heap_sites := (i.lbl, a.adst) :: !heap_sites
      | Call { callee = Direct g; _ } when g = f.fname -> self_call := true
      | _ -> ())
    f;
  match (!heap_sites, !self_call) with
  | [ (site, adst) ], false ->
    let defs : (var, instr_kind) Hashtbl.t = Hashtbl.create 32 in
    Ir.Func.iter_instrs
      (fun _ i ->
        match Instr.def_of i.kind with
        | Some v ->
          if Hashtbl.mem defs v then
            Hashtbl.replace defs v
              (Call { cdst = None; callee = Direct "!multi"; cargs = [] })
          else Hashtbl.replace defs v i.kind
        | None -> ())
      f;
    (* Trace every return operand back through copies/phis. *)
    let ok = ref true in
    let visited = Hashtbl.create 16 in
    let rec trace v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        if v <> adst then
          match Hashtbl.find_opt defs v with
          | Some (Copy (_, Var y)) -> trace y
          | Some (Phi (_, ins)) ->
            List.iter
              (fun (_, o) ->
                match o with Var y -> trace y | Cst _ | Undef -> ok := false)
              ins
          | Some (Alloc a) when a.adst = v -> ok := false (* other alloc *)
          | _ -> ok := false
      end
    in
    let has_ret = ref false in
    Array.iter
      (fun b ->
        match b.term.tkind with
        | Ret (Some (Var r)) -> has_ret := true; trace r
        | Ret (Some (Cst _ | Undef)) | Ret None -> ok := false
        | Br _ | Jmp _ -> ())
      f.blocks;
    if !ok && !has_ret then Some site else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Object enumeration                                                  *)
(* ------------------------------------------------------------------ *)

let enumerate_objects (cfg : config) (p : P.t) ~wrappers ~callsites ~taken :
    Objects.t =
  let t = Objects.create () in
  List.iter
    (fun (g : global) ->
      let onfields, oarray =
        match g.gsize with
        | Fields n -> ((if cfg.field_sensitive then n else 1), false)
        | Array_of (Cst n)
          when cfg.field_sensitive && n >= 2 && n <= cfg.small_array_fields ->
          (n, false)
        | Array_of _ -> (1, true)
      in
      ignore
        (Objects.add_obj t ~osite:(-1) ~octx:None ~okind:Obj_global
           ~oname:g.gname ~onfields ~oarray ~oowner:"" ~oinit:true))
    p.globals;
  P.iter_funcs
    (fun f ->
      ignore
        (Objects.add_obj t ~osite:(-1) ~octx:None ~okind:(Obj_func f.fname)
           ~oname:("&" ^ f.fname) ~onfields:1 ~oarray:false ~oowner:""
           ~oinit:true))
    p;
  P.iter_instrs
    (fun f _ i ->
      match i.kind with
      | Alloc a ->
        let onfields, oarray =
          match a.asize with
          | Fields n -> ((if cfg.field_sensitive then n else 1), false)
          | Array_of (Cst n)
            when cfg.field_sensitive && n >= 2 && n <= cfg.small_array_fields ->
            (n, false)
          | Array_of _ -> (1, true)
        in
        let mk octx =
          ignore
            (Objects.add_obj t ~osite:i.lbl ~octx ~okind:
               (match a.region with
               | Stack -> Obj_stack
               | Heap -> Obj_heap
               | Global -> Obj_global)
               ~oname:a.aname ~onfields ~oarray ~oowner:f.fname
               ~oinit:a.initialized)
        in
        let cloned =
          cfg.heap_cloning && a.region = Heap
          && Hashtbl.find_opt wrappers f.fname = Some i.lbl
          && not (Hashtbl.mem taken f.fname)
        in
        if cloned then begin
          match Hashtbl.find_opt callsites f.fname with
          | Some ((_ :: _) as sites) ->
            List.iter (fun (_, l, _) -> mk (Some l)) sites
          | Some [] | None -> mk None
        end
        else mk None
      | _ -> ())
    p;
  Objects.freeze t;
  t

(* ------------------------------------------------------------------ *)
(* Constraint solving                                                  *)
(* ------------------------------------------------------------------ *)

type gep = Gfield of int | Gindex of int option

(** A complex constraint hanging off a node, applied to each location that
    flows in: one list per node (merged on union) instead of four parallel
    arrays. *)
type cx =
  | Cload of var                                (* load through the node *)
  | Cstore of var                               (* store through the node *)
  | Cgep of gep * var                           (* field/index address *)
  | Cicall of label * var option * operand list (* indirect call *)

(** Conservative fallback used when the real analysis is out of budget or
    faulted: no objects, empty points-to sets, no resolved callees. Only
    sound when the consumer stops trusting the analysis entirely (the
    pipeline falls back to full MSan instrumentation in that case). *)
let stub (p : P.t) : t =
  let objects = Objects.create () in
  Objects.freeze objects;
  let nvars = P.nvars p in
  let ret_node = Hashtbl.create 16 in
  let next = ref nvars in
  P.iter_funcs
    (fun f ->
      Hashtbl.replace ret_node f.fname !next;
      incr next)
    p;
  {
    prog = p;
    objects;
    nvars;
    ret_node;
    wpn = 1;
    pts_words = Array.make !next 0;
    repr = Array.init !next (fun i -> i);
    pts_cache = Array.make !next None;
    callees = Hashtbl.create 1;
    wrappers = Hashtbl.create 1;
    address_taken_funcs = Hashtbl.create 1;
    solve_iterations = 0;
    sccs_collapsed = 0;
    edges_deduped = 0;
  }

let word_bits = Bitset.word_bits

(* Process-wide work totals (Obs.Metrics): the per-run counters stay the
   source of truth for tables and baselines; these registry counters let
   the bench harness attribute aggregate solver work across a whole run. *)
let m_runs = Obs.Metrics.counter "andersen.runs"
let m_solve_iterations = Obs.Metrics.counter "andersen.solve_iterations"
let m_sccs_collapsed = Obs.Metrics.counter "andersen.sccs_collapsed"
let m_edges_deduped = Obs.Metrics.counter "andersen.edges_deduped"

let run ?(config = default_config) ?(cycle_elim = true) ?budget (p : P.t) : t =
  let taken, callsites = collect_taken_and_callsites p in
  let wrappers = Hashtbl.create 8 in
  P.iter_funcs
    (fun f ->
      match detect_wrapper f with
      | Some site -> Hashtbl.replace wrappers f.fname site
      | None -> ())
    p;
  let objects = enumerate_objects config p ~wrappers ~callsites ~taken in
  let nvars = P.nvars p in
  let ret_node = Hashtbl.create 16 in
  let next = ref nvars in
  P.iter_funcs
    (fun f ->
      Hashtbl.replace ret_node f.fname !next;
      incr next)
    p;
  let loc_node l = !next + l in
  let nnodes = !next + Objects.nlocs objects in
  (* Points-to universe: location ids. One flat array, [wpn] words/node. *)
  let wpn = max 1 ((Objects.nlocs objects + word_bits - 1) / word_bits) in
  let pw = Array.make (nnodes * wpn) 0 in   (* points-to words *)
  let dw = Array.make (nnodes * wpn) 0 in   (* delta words (new since pop) *)
  (* Union-find over constraint nodes: cycle elimination merges mutually-
     copying nodes so they share one points-to set. With [cycle_elim]
     disabled the structure stays the identity and the solver degenerates
     to the textbook difference-propagation worklist (the reference path
     the equivalence properties compare against). *)
  (* -1 = root of its own class, so the identity structure is a plain
     (memset-cheap) fill rather than an Array.init. *)
  let parent = Array.make nnodes (-1) in
  (* Union rank never exceeds log2 nnodes — a byte per node suffices. *)
  let urank = Bytes.make nnodes '\000' in
  let find n =
    let r = ref n in
    while parent.(!r) >= 0 do
      r := parent.(!r)
    done;
    let root = !r in
    let c = ref n in
    while !c <> root do
      let nx = parent.(!c) in
      parent.(!c) <- root;
      c := nx
    done;
    root
  in
  let sccs_collapsed = ref 0 in
  let edges_deduped = ref 0 in
  let copy_succs : int list array = Array.make nnodes [] in
  (* Copy-edge dedup, keyed by the single int [src * nnodes + dst] over
     canonical (representative) ids. *)
  let edge_seen = Iset.create 1024 in
  let edge_key a b = (a * nnodes) + b in
  (* Per-node complex constraints, merged on union. Seeded on variable
     nodes; a representative may accumulate the constraints of every
     member it absorbed. *)
  let cxs : cx list array = Array.make nnodes [] in
  let callees : (label, fname list) Hashtbl.t = Hashtbl.create 64 in
  let bound : (label * fname, unit) Hashtbl.t = Hashtbl.create 64 in
  (* Int-array FIFO — no boxed queue cells; [on_list] bounds its size. *)
  let wbuf = ref (Array.make 1024 0) in
  let whead = ref 0 in
  let wtail = ref 0 in
  let on_list = Bytes.make nnodes '\000' in
  let enqueue n =
    if Bytes.unsafe_get on_list n = '\000' then begin
      Bytes.unsafe_set on_list n '\001';
      if !wtail = Array.length !wbuf then
        if !whead > 0 then begin
          (* compact: live entries are [whead, wtail) *)
          let live = !wtail - !whead in
          Array.blit !wbuf !whead !wbuf 0 live;
          whead := 0;
          wtail := live
        end
        else begin
          let b = Array.make (2 * !wtail) 0 in
          Array.blit !wbuf 0 b 0 !wtail;
          wbuf := b
        end;
      !wbuf.(!wtail) <- n;
      incr wtail
    end
  in
  let pts_nonempty n =
    let base = n * wpn in
    let rec go k = k < wpn && (pw.(base + k) <> 0 || go (k + 1)) in
    go 0
  in
  let delta_empty n =
    let base = n * wpn in
    let rec go k = k >= wpn || (dw.(base + k) = 0 && go (k + 1)) in
    go 0
  in
  let add_to n l =
    let n = find n in
    let idx = (n * wpn) + (l / word_bits) in
    let b = 1 lsl (l mod word_bits) in
    if pw.(idx) land b = 0 then begin
      pw.(idx) <- pw.(idx) lor b;
      dw.(idx) <- dw.(idx) lor b;
      enqueue n
    end
  in
  (* pts(a) |= into pts(b), newly set bits recorded in delta(b). *)
  let union_nodes a b =
    let ba = a * wpn and bb = b * wpn in
    let changed = ref false in
    for k = 0 to wpn - 1 do
      let sw = pw.(ba + k) in
      if sw <> 0 then begin
        let dst = pw.(bb + k) in
        let nw = dst lor sw in
        if nw <> dst then begin
          pw.(bb + k) <- nw;
          dw.(bb + k) <- dw.(bb + k) lor (nw lxor dst);
          changed := true
        end
      end
    done;
    !changed
  in
  let add_edge a b =
    let a = find a and b = find b in
    if a <> b then begin
      if Iset.add edge_seen (edge_key a b) then begin
        copy_succs.(a) <- b :: copy_succs.(a);
        if union_nodes a b then enqueue b
      end
      else incr edges_deduped
    end
  in
  (* Collapse [a] and [b] (both representatives) into one node: merge
     points-to sets, successor lists and complex constraints, then mark the
     survivor all-dirty so every (constraint, location) pair is reconsidered
     under the union. *)
  let unify a b =
    let ka = Bytes.unsafe_get urank a and kb = Bytes.unsafe_get urank b in
    let ra, rb = if ka >= kb then (a, b) else (b, a) in
    if ka = kb then
      Bytes.unsafe_set urank ra (Char.chr (Char.code ka + 1));
    parent.(rb) <- ra;
    incr sccs_collapsed;
    let bra = ra * wpn and brb = rb * wpn in
    for k = 0 to wpn - 1 do
      pw.(bra + k) <- pw.(bra + k) lor pw.(brb + k);
      pw.(brb + k) <- 0;
      dw.(brb + k) <- 0;
      dw.(bra + k) <- pw.(bra + k)
    done;
    copy_succs.(ra) <- List.rev_append copy_succs.(rb) copy_succs.(ra);
    copy_succs.(rb) <- [];
    cxs.(ra) <- List.rev_append cxs.(rb) cxs.(ra);
    cxs.(rb) <- [];
    enqueue ra;
    ra
  in
  (* Lazy cycle detection (Hardekopf & Lin style): when propagating along a
     copy edge moves nothing, the edge may close a cycle — search for a
     copy path back to the source and collapse the nodes on it. Each
     (src, dst) pair triggers at most one search. *)
  let lcd_seen = Iset.create 64 in
  (* DFS scratch, allocated on the first cycle search only — most programs
     have acyclic copy graphs and never pay for it. *)
  let dfs_mark_r = ref [||] in
  let dfs_parent_r = ref [||] in
  let dfs_round = ref 0 in
  let try_collapse n s =
    (* Is n reachable from s over copy edges? If so the path s -> ... -> n
       plus the edge n -> s is a cycle: collapse the path (a partial SCC;
       remaining members collapse on later triggers). *)
    if Array.length !dfs_mark_r = 0 then begin
      dfs_mark_r := Array.make nnodes 0;
      dfs_parent_r := Array.make nnodes (-1)
    end;
    let dfs_mark = !dfs_mark_r and dfs_parent = !dfs_parent_r in
    incr dfs_round;
    let round = !dfs_round in
    dfs_mark.(s) <- round;
    dfs_parent.(s) <- -1;
    let stack = ref [ s ] in
    let found = ref false in
    while (not !found) && !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        List.iter
          (fun v0 ->
            let v = find v0 in
            if (not !found) && dfs_mark.(v) <> round then begin
              dfs_mark.(v) <- round;
              dfs_parent.(v) <- u;
              if v = n then found := true else stack := v :: !stack
            end)
          copy_succs.(u)
    done;
    if !found then begin
      let rep = ref n in
      let c = ref dfs_parent.(n) in
      while !c >= 0 do
        let nxt = dfs_parent.(!c) in
        let cr = find !c in
        if cr <> !rep then rep := unify !rep cr;
        c := nxt
      done;
      true
    end
    else false
  in
  let push_multi arr k v = arr.(k) <- v :: arr.(k) in
  let operand_edge o dst =
    match o with Var v -> add_edge v dst | Cst _ | Undef -> ()
  in
  let add_callee lbl f =
    let prev = Option.value ~default:[] (Hashtbl.find_opt callees lbl) in
    if not (List.mem f prev) then Hashtbl.replace callees lbl (f :: prev)
  in
  let bind_call lbl (callee : func) dst args =
    if not (Hashtbl.mem bound (lbl, callee.fname)) then begin
      Hashtbl.replace bound (lbl, callee.fname) ();
      add_callee lbl callee.fname;
      (try
         List.iter2 (fun a prm -> operand_edge a prm) args callee.params
       with Invalid_argument _ -> ());
      match dst with
      | Some x -> add_edge (Hashtbl.find ret_node callee.fname) x
      | None -> ()
    end
  in
  (* Seed constraints. *)
  P.iter_instrs
    (fun _ _ i ->
      match i.kind with
      | Alloc a ->
        List.iter
          (fun oid -> add_to a.adst (Objects.loc objects oid 0))
          (Objects.objs_of_site objects i.lbl)
      | Global_addr (x, g) ->
        add_to x (Objects.loc objects (Objects.obj_of_global objects g) 0)
      | Func_addr (x, g) -> (
        match Objects.obj_of_func objects g with
        | Some oid -> add_to x (Objects.loc objects oid 0)
        | None -> ())
      | Copy (x, o) -> operand_edge o x
      | Phi (x, ins) -> List.iter (fun (_, o) -> operand_edge o x) ins
      | Load (x, y) -> push_multi cxs y (Cload x)
      | Store (x, o) -> (
        match o with Var y -> push_multi cxs x (Cstore y) | Cst _ | Undef -> ())
      | Field_addr (x, y, k) -> push_multi cxs y (Cgep (Gfield k, x))
      | Index_addr (x, y, o) ->
        let idx = match o with Cst n -> Some n | Var _ | Undef -> None in
        push_multi cxs y (Cgep (Gindex idx, x))
      | Call { callee = Direct g; cdst; cargs } -> (
        match P.find_func p g with
        | None -> ()
        | Some callee ->
          let wrapper_clone =
            if config.heap_cloning && not (Hashtbl.mem taken g) then
              match Hashtbl.find_opt wrappers g with
              | Some site -> Objects.obj_of_site objects site (Some i.lbl)
              | None -> None
            else None
          in
          (match wrapper_clone with
          | Some oid ->
            (* Clone flows directly to the call's destination; arguments
               still flow into the wrapper. *)
            add_callee i.lbl g;
            (try
               List.iter2 (fun a prm -> operand_edge a prm) cargs callee.params
             with Invalid_argument _ -> ());
            (match cdst with
            | Some x -> add_to x (Objects.loc objects oid 0)
            | None -> ())
          | None -> bind_call i.lbl callee cdst cargs))
      | Call { callee = Indirect v; cdst; cargs } ->
        push_multi cxs v (Cicall (i.lbl, cdst, cargs))
      | Const _ | Unop _ | Binop _ | Output _ | Input _ -> ())
    p;
  (* Wrapper allocations already point to all their clones (the Alloc case
     seeds every object of the site into [adst]), so initializing stores
     inside the wrapper reach every clone. *)
  P.iter_funcs
    (fun f ->
      Array.iter
        (fun b ->
          match b.term.tkind with
          | Ret (Some (Var r)) -> add_edge r (Hashtbl.find ret_node f.fname)
          | Ret _ | Br _ | Jmp _ -> ())
        f.blocks)
    p;
  (* Solve: difference propagation — each pop processes only the locations
     that arrived since the node was last processed, via one recycled word
     buffer, no intermediate lists. *)
  let iterations = ref 0 in
  let dscratch = Array.make wpn 0 in
  while !whead < !wtail do
    incr iterations;
    (* Sampled solver-progress counter for the trace timeline; the enabled
       check keeps the untraced hot loop allocation-free. *)
    if Obs.Trace.enabled () && !iterations land 4095 = 1 then
      Obs.Trace.counter ~cat:"andersen" "andersen.worklist"
        [
          ("iterations", Obs.Trace.Int !iterations);
          ("queued", Obs.Trace.Int (!wtail - !whead));
        ];
    (match budget with
    | Some b -> Diag.Budget.burn_solver b Diag.Andersen
    | None -> ());
    let m = Array.unsafe_get !wbuf !whead in
    incr whead;
    Bytes.unsafe_set on_list m '\000';
    let n = find m in
    (* An absorbed node's entry is stale: unify re-enqueued the survivor
       with a full delta. *)
    if n = m && not (delta_empty n) then begin
      Array.blit dw (n * wpn) dscratch 0 wpn;
      Array.fill dw (n * wpn) wpn 0;
      (* Complex constraints, applied to the new locations only. The bit
         scan shifts the word down, skipping zero bytes wholesale. *)
      (match cxs.(n) with
      | [] -> ()
      | cs ->
        let apply l =
          let lnode = loc_node l in
          List.iter
            (fun c ->
              match c with
              | Cload x -> add_edge lnode x
              | Cstore y -> add_edge y lnode
              | Cgep (g, x) -> (
                let o = Objects.loc_obj objects l in
                let field = Objects.loc_field objects l in
                match g with
                | Gfield k | Gindex (Some k) ->
                  add_to x (Objects.loc objects o.oid (field + k))
                | Gindex None ->
                  (* dynamic index: any cell of the object *)
                  if o.onfields > 1 then
                    Objects.iter_obj_locs objects o.oid (fun l' -> add_to x l')
                  else add_to x (Objects.loc objects o.oid field))
              | Cicall (lbl, dst, args) -> (
                match
                  Objects.func_of_obj objects (Objects.loc_obj objects l).oid
                with
                | Some g -> (
                  match P.find_func p g with
                  | Some callee ->
                    if List.length args = List.length callee.params then
                      bind_call lbl callee dst args
                  | None -> ())
                | None -> ()))
            cs
        in
        for k = 0 to wpn - 1 do
          let w = ref dscratch.(k) in
          if !w <> 0 then begin
            let off = ref (k * word_bits) in
            while !w <> 0 do
              if !w land 0xff = 0 then begin
                w := !w lsr 8;
                off := !off + 8
              end
              else begin
                if !w land 1 <> 0 then apply !off;
                w := !w lsr 1;
                incr off
              end
            done
          end
        done);
      (* Propagate the full set along copy edges; an unproductive edge may
         have closed a cycle. After a collapse the survivor re-propagates
         everything, so the rest of this (stale) successor list can wait. *)
      let collapsed = ref false in
      List.iter
        (fun s0 ->
          if not !collapsed then begin
            let s = find s0 in
            if s <> n then begin
              if union_nodes n s then enqueue s
              else if
                cycle_elim && pts_nonempty n
                && Iset.add lcd_seen (edge_key n s)
              then
                if try_collapse n s then collapsed := true
            end
          end)
        copy_succs.(n)
    end
  done;
  (* Queries index by original node id: record the final representative of
     every node. Absorbed nodes share their representative's set — they ARE
     one node; consumers only read. *)
  (* Path-compress everything, then rewrite the -1 sentinels in place:
     after compression every non-root points directly at its root. *)
  for i = 0 to nnodes - 1 do
    ignore (find i)
  done;
  let repr = parent in
  for i = 0 to nnodes - 1 do
    if repr.(i) < 0 then repr.(i) <- i
  done;
  Obs.Metrics.incr m_runs;
  Obs.Metrics.add m_solve_iterations !iterations;
  Obs.Metrics.add m_sccs_collapsed !sccs_collapsed;
  Obs.Metrics.add m_edges_deduped !edges_deduped;
  if Obs.Trace.enabled () then
    Obs.Trace.counter ~cat:"andersen" "andersen.worklist"
      [ ("iterations", Obs.Trace.Int !iterations); ("queued", Obs.Trace.Int 0) ];
  {
    prog = p;
    objects;
    nvars;
    ret_node;
    wpn;
    pts_words = pw;
    repr;
    pts_cache = Array.make nnodes None;
    callees;
    wrappers;
    address_taken_funcs = taken;
    solve_iterations = !iterations;
    sccs_collapsed = !sccs_collapsed;
    edges_deduped = !edges_deduped;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let node_of_loc t l = t.nvars + Hashtbl.length t.ret_node + l

let pts_node t (n : int) : Bitset.t =
  match t.pts_cache.(n) with
  | Some b -> b
  | None ->
    let r = t.repr.(n) in
    let b = Bitset.of_words (Array.sub t.pts_words (r * t.wpn) t.wpn) in
    t.pts_cache.(n) <- Some b;
    b

let pts_var t (v : var) : Bitset.t = pts_node t v
let pts_loc t (l : int) : Bitset.t = pts_node t (node_of_loc t l)

let pts_var_list t v = Bitset.elements (pts_var t v)

let singleton_pt t v =
  let s = pts_var t v in
  match Bitset.choose s with
  | Some l when Bitset.cardinal s = 1 -> Some l
  | _ -> None

let callees_of t (lbl : label) : fname list =
  Option.value ~default:[] (Hashtbl.find_opt t.callees lbl)

(** Resolved callees of any call instruction. *)
let call_targets t (i : instr) : fname list =
  match i.kind with
  | Call { callee = Direct g; _ } -> [ g ]
  | Call { callee = Indirect _; _ } -> callees_of t i.lbl
  | _ -> []
