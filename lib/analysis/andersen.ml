(* Offset-based, field-sensitive, inclusion-based (Andersen-style) pointer
   analysis with 1-callsite-sensitive heap cloning applied to allocation
   wrapper functions, as configured in the paper (§4.1, citing [10]).

   Nodes of the constraint graph are top-level variables, one synthetic
   return node per function, and memory locations (Objects.loc). Points-to
   sets contain location ids. Arrays are collapsed to one location. Indirect
   calls are resolved on the fly, yielding the final call graph.

   Assumption inherited from the TinyC lowering: pointers flow only through
   Copy/Phi/Field_addr/Index_addr/Load/Store/Call/Ret; integer arithmetic
   never manufactures pointers. *)

open Ir.Types
module P = Ir.Prog
module Instr = Ir.Instr

type config = {
  field_sensitive : bool;   (* ablation knob; the paper's setting is [true] *)
  heap_cloning : bool;      (* 1-callsite cloning of wrapper allocations *)
  small_array_fields : int; (* extension beyond the paper (its future work
                               names "new techniques for handling arrays"):
                               constant-size arrays of at most this many
                               cells are analysed per-cell instead of
                               collapsed. 0 (the paper's setting) disables
                               it. *)
}

let default_config =
  { field_sensitive = true; heap_cloning = true; small_array_fields = 0 }

type t = {
  prog : P.t;
  objects : Objects.t;
  nvars : int;
  ret_node : (fname, int) Hashtbl.t;
  pts : Bitset.t array;                       (* node -> set of locations *)
  callees : (label, fname list) Hashtbl.t;    (* resolved call graph *)
  wrappers : (fname, label) Hashtbl.t;        (* wrapper -> its heap site *)
  address_taken_funcs : (fname, unit) Hashtbl.t;
  solve_iterations : int;
}

(* ------------------------------------------------------------------ *)
(* Syntactic prepasses                                                 *)
(* ------------------------------------------------------------------ *)

let collect_address_taken (p : P.t) =
  let taken = Hashtbl.create 16 in
  P.iter_instrs
    (fun _ _ i ->
      match i.kind with
      | Func_addr (_, f) -> Hashtbl.replace taken f ()
      | _ -> ())
    p;
  taken

(** Direct call sites of each function: (caller, call label, dst) list. *)
let direct_callsites (p : P.t) =
  let sites : (fname, (fname * label * var option) list) Hashtbl.t =
    Hashtbl.create 16
  in
  P.iter_instrs
    (fun f _ i ->
      match i.kind with
      | Call { callee = Direct g; cdst; _ } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt sites g) in
        Hashtbl.replace sites g ((f.fname, i.lbl, cdst) :: prev)
      | _ -> ())
    p;
  sites

(** Is [f] an allocation wrapper: a non-recursive function whose every return
    value is (through copies and phis) the result of its unique heap
    allocation? Such wrappers get their heap object cloned per call site. *)
let detect_wrapper (f : func) : label option =
  let heap_sites = ref [] in
  let self_call = ref false in
  let defs : (var, instr_kind) Hashtbl.t = Hashtbl.create 32 in
  Ir.Func.iter_instrs
    (fun _ i ->
      (match Instr.def_of i.kind with
      | Some v ->
        if Hashtbl.mem defs v then Hashtbl.replace defs v (Call { cdst = None; callee = Direct "!multi"; cargs = [] })
        else Hashtbl.replace defs v i.kind
      | None -> ());
      match i.kind with
      | Alloc a when a.region = Heap -> heap_sites := (i.lbl, a.adst) :: !heap_sites
      | Call { callee = Direct g; _ } when g = f.fname -> self_call := true
      | _ -> ())
    f;
  match (!heap_sites, !self_call) with
  | [ (site, adst) ], false ->
    (* Trace every return operand back through copies/phis. *)
    let ok = ref true in
    let visited = Hashtbl.create 16 in
    let rec trace v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.replace visited v ();
        if v <> adst then
          match Hashtbl.find_opt defs v with
          | Some (Copy (_, Var y)) -> trace y
          | Some (Phi (_, ins)) ->
            List.iter
              (fun (_, o) ->
                match o with Var y -> trace y | Cst _ | Undef -> ok := false)
              ins
          | Some (Alloc a) when a.adst = v -> ok := false (* other alloc *)
          | _ -> ok := false
      end
    in
    let has_ret = ref false in
    Array.iter
      (fun b ->
        match b.term.tkind with
        | Ret (Some (Var r)) -> has_ret := true; trace r
        | Ret (Some (Cst _ | Undef)) | Ret None -> ok := false
        | Br _ | Jmp _ -> ())
      f.blocks;
    if !ok && !has_ret then Some site else None
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Object enumeration                                                  *)
(* ------------------------------------------------------------------ *)

let enumerate_objects (cfg : config) (p : P.t) ~wrappers ~callsites ~taken :
    Objects.t =
  let t = Objects.create () in
  List.iter
    (fun (g : global) ->
      let onfields, oarray =
        match g.gsize with
        | Fields n -> ((if cfg.field_sensitive then n else 1), false)
        | Array_of (Cst n)
          when cfg.field_sensitive && n >= 2 && n <= cfg.small_array_fields ->
          (n, false)
        | Array_of _ -> (1, true)
      in
      ignore
        (Objects.add_obj t ~osite:(-1) ~octx:None ~okind:Obj_global
           ~oname:g.gname ~onfields ~oarray ~oowner:"" ~oinit:true))
    p.globals;
  P.iter_funcs
    (fun f ->
      ignore
        (Objects.add_obj t ~osite:(-1) ~octx:None ~okind:(Obj_func f.fname)
           ~oname:("&" ^ f.fname) ~onfields:1 ~oarray:false ~oowner:""
           ~oinit:true))
    p;
  P.iter_instrs
    (fun f _ i ->
      match i.kind with
      | Alloc a ->
        let onfields, oarray =
          match a.asize with
          | Fields n -> ((if cfg.field_sensitive then n else 1), false)
          | Array_of (Cst n)
            when cfg.field_sensitive && n >= 2 && n <= cfg.small_array_fields ->
            (n, false)
          | Array_of _ -> (1, true)
        in
        let mk octx =
          ignore
            (Objects.add_obj t ~osite:i.lbl ~octx ~okind:
               (match a.region with
               | Stack -> Obj_stack
               | Heap -> Obj_heap
               | Global -> Obj_global)
               ~oname:a.aname ~onfields ~oarray ~oowner:f.fname
               ~oinit:a.initialized)
        in
        let cloned =
          cfg.heap_cloning && a.region = Heap
          && Hashtbl.find_opt wrappers f.fname = Some i.lbl
          && not (Hashtbl.mem taken f.fname)
        in
        if cloned then begin
          match Hashtbl.find_opt callsites f.fname with
          | Some ((_ :: _) as sites) ->
            List.iter (fun (_, l, _) -> mk (Some l)) sites
          | Some [] | None -> mk None
        end
        else mk None
      | _ -> ())
    p;
  Objects.freeze t;
  t

(* ------------------------------------------------------------------ *)
(* Constraint solving                                                  *)
(* ------------------------------------------------------------------ *)

type gep = Gfield of int | Gindex of int option

(** Conservative fallback used when the real analysis is out of budget or
    faulted: no objects, empty points-to sets, no resolved callees. Only
    sound when the consumer stops trusting the analysis entirely (the
    pipeline falls back to full MSan instrumentation in that case). *)
let stub (p : P.t) : t =
  let objects = Objects.create () in
  Objects.freeze objects;
  let nvars = P.nvars p in
  let ret_node = Hashtbl.create 16 in
  let next = ref nvars in
  P.iter_funcs
    (fun f ->
      Hashtbl.replace ret_node f.fname !next;
      incr next)
    p;
  {
    prog = p;
    objects;
    nvars;
    ret_node;
    pts = Array.init !next (fun _ -> Bitset.create ());
    callees = Hashtbl.create 1;
    wrappers = Hashtbl.create 1;
    address_taken_funcs = Hashtbl.create 1;
    solve_iterations = 0;
  }

let run ?(config = default_config) ?budget (p : P.t) : t =
  let taken = collect_address_taken p in
  let callsites = direct_callsites p in
  let wrappers = Hashtbl.create 8 in
  P.iter_funcs
    (fun f ->
      match detect_wrapper f with
      | Some site -> Hashtbl.replace wrappers f.fname site
      | None -> ())
    p;
  let objects = enumerate_objects config p ~wrappers ~callsites ~taken in
  let nvars = P.nvars p in
  let ret_node = Hashtbl.create 16 in
  let next = ref nvars in
  P.iter_funcs
    (fun f ->
      Hashtbl.replace ret_node f.fname !next;
      incr next)
    p;
  let loc_node l = !next + l in
  let nnodes = !next + Objects.nlocs objects in
  let pts = Array.init nnodes (fun _ -> Bitset.create ()) in
  let pts_done = Array.init nnodes (fun _ -> Bitset.create ()) in
  let copy_succs : int list array = Array.make nnodes [] in
  let edge_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  (* Per-variable complex constraints. *)
  let load_dsts : (var, var list ref) Hashtbl.t = Hashtbl.create 64 in
  let store_srcs : (var, var list ref) Hashtbl.t = Hashtbl.create 64 in
  let geps : (var, (gep * var) list ref) Hashtbl.t = Hashtbl.create 64 in
  let icalls : (var, (label * var option * operand list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let callees : (label, fname list) Hashtbl.t = Hashtbl.create 64 in
  let bound : (label * fname, unit) Hashtbl.t = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let on_list = Array.make nnodes false in
  let enqueue n =
    if not on_list.(n) then begin
      on_list.(n) <- true;
      Queue.push n worklist
    end
  in
  let add_to n l = if Bitset.add pts.(n) l then enqueue n in
  let add_edge a b =
    if a <> b && not (Hashtbl.mem edge_seen (a, b)) then begin
      Hashtbl.replace edge_seen (a, b) ();
      copy_succs.(a) <- b :: copy_succs.(a);
      if Bitset.union_into ~src:pts.(a) ~dst:pts.(b) then enqueue b
    end
  in
  let push_multi tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := v :: !r
    | None -> Hashtbl.replace tbl k (ref [ v ])
  in
  let operand_edge o dst =
    match o with Var v -> add_edge v dst | Cst _ | Undef -> ()
  in
  let add_callee lbl f =
    let prev = Option.value ~default:[] (Hashtbl.find_opt callees lbl) in
    if not (List.mem f prev) then Hashtbl.replace callees lbl (f :: prev)
  in
  let bind_call lbl (callee : func) dst args =
    if not (Hashtbl.mem bound (lbl, callee.fname)) then begin
      Hashtbl.replace bound (lbl, callee.fname) ();
      add_callee lbl callee.fname;
      (try
         List.iter2 (fun a prm -> operand_edge a prm) args callee.params
       with Invalid_argument _ -> ());
      match dst with
      | Some x -> add_edge (Hashtbl.find ret_node callee.fname) x
      | None -> ()
    end
  in
  (* Seed constraints. *)
  P.iter_instrs
    (fun _ _ i ->
      match i.kind with
      | Alloc _ ->
        List.iter
          (fun oid -> add_to (Instr.def_of i.kind |> Option.get) (Objects.loc objects oid 0))
          (Objects.objs_of_site objects i.lbl)
      | Global_addr (x, g) ->
        add_to x (Objects.loc objects (Objects.obj_of_global objects g) 0)
      | Func_addr (x, g) -> (
        match Objects.obj_of_func objects g with
        | Some oid -> add_to x (Objects.loc objects oid 0)
        | None -> ())
      | Copy (x, o) -> operand_edge o x
      | Phi (x, ins) -> List.iter (fun (_, o) -> operand_edge o x) ins
      | Load (x, y) -> push_multi load_dsts y x
      | Store (x, o) -> (
        match o with Var y -> push_multi store_srcs x y | Cst _ | Undef -> ())
      | Field_addr (x, y, k) -> push_multi geps y (Gfield k, x)
      | Index_addr (x, y, o) ->
        let idx = match o with Cst n -> Some n | Var _ | Undef -> None in
        push_multi geps y (Gindex idx, x)
      | Call { callee = Direct g; cdst; cargs } -> (
        match P.find_func p g with
        | None -> ()
        | Some callee ->
          let wrapper_clone =
            if config.heap_cloning && not (Hashtbl.mem taken g) then
              match Hashtbl.find_opt wrappers g with
              | Some site -> Objects.obj_of_site objects site (Some i.lbl)
              | None -> None
            else None
          in
          (match wrapper_clone with
          | Some oid ->
            (* Clone flows directly to the call's destination; arguments
               still flow into the wrapper. *)
            add_callee i.lbl g;
            (try
               List.iter2 (fun a prm -> operand_edge a prm) cargs callee.params
             with Invalid_argument _ -> ());
            (match cdst with
            | Some x -> add_to x (Objects.loc objects oid 0)
            | None -> ())
          | None -> bind_call i.lbl callee cdst cargs))
      | Call { callee = Indirect v; cdst; cargs } ->
        push_multi icalls v (i.lbl, cdst, cargs)
      | Const _ | Unop _ | Binop _ | Output _ | Input _ -> ())
    p;
  (* Wrapper allocations point to all their clones so that initializing
     stores inside the wrapper reach every clone. *)
  P.iter_instrs
    (fun f _ i ->
      match i.kind with
      | Alloc a when Hashtbl.find_opt wrappers f.fname = Some i.lbl ->
        List.iter
          (fun oid -> add_to a.adst (Objects.loc objects oid 0))
          (Objects.objs_of_site objects i.lbl)
      | _ -> ())
    p;
  P.iter_funcs
    (fun f ->
      Array.iter
        (fun b ->
          match b.term.tkind with
          | Ret (Some (Var r)) -> add_edge r (Hashtbl.find ret_node f.fname)
          | Ret _ | Br _ | Jmp _ -> ())
        f.blocks)
    p;
  (* Solve. *)
  let iterations = ref 0 in
  while not (Queue.is_empty worklist) do
    incr iterations;
    (match budget with
    | Some b -> Diag.Budget.burn_solver b Diag.Andersen
    | None -> ());
    let n = Queue.pop worklist in
    on_list.(n) <- false;
    let delta = Bitset.diff_new ~src:pts.(n) ~old:pts_done.(n) in
    ignore (Bitset.union_into ~src:pts.(n) ~dst:pts_done.(n));
    if delta <> [] then begin
      (* Complex constraints apply to variable nodes only. *)
      if n < nvars then begin
        List.iter
          (fun l ->
            let lnode = loc_node l in
            (match Hashtbl.find_opt load_dsts n with
            | Some dsts -> List.iter (fun x -> add_edge lnode x) !dsts
            | None -> ());
            (match Hashtbl.find_opt store_srcs n with
            | Some srcs -> List.iter (fun y -> add_edge y lnode) !srcs
            | None -> ());
            (match Hashtbl.find_opt geps n with
            | Some gs ->
              let oid = (Objects.loc_obj objects l).oid in
              let field = Objects.loc_field objects l in
              List.iter
                (fun (g, x) ->
                  match g with
                  | Gfield k | Gindex (Some k) ->
                    add_to x (Objects.loc objects oid (field + k))
                  | Gindex None ->
                    (* dynamic index: any cell of the object *)
                    let o = Objects.loc_obj objects l in
                    if o.onfields > 1 then
                      Objects.iter_obj_locs objects oid (fun l' -> add_to x l')
                    else add_to x (Objects.loc objects oid field))
                !gs
            | None -> ());
            match Objects.func_of_obj objects (Objects.loc_obj objects l).oid with
            | Some g -> (
              match (Hashtbl.find_opt icalls n, P.find_func p g) with
              | Some calls, Some callee ->
                List.iter
                  (fun (lbl, dst, args) ->
                    if List.length args = List.length callee.params then
                      bind_call lbl callee dst args)
                  !calls
              | _ -> ())
            | None -> ())
          delta
      end;
      List.iter
        (fun succ ->
          if Bitset.union_into ~src:pts.(n) ~dst:pts.(succ) then enqueue succ)
        copy_succs.(n)
    end
  done;
  {
    prog = p;
    objects;
    nvars;
    ret_node;
    pts;
    callees;
    wrappers;
    address_taken_funcs = taken;
    solve_iterations = !iterations;
  }

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let node_of_loc t l = t.nvars + Hashtbl.length t.ret_node + l

let pts_var t (v : var) : Bitset.t = t.pts.(v)
let pts_loc t (l : int) : Bitset.t = t.pts.(node_of_loc t l)

let pts_var_list t v = Bitset.elements (pts_var t v)

let singleton_pt t v =
  let s = pts_var t v in
  match Bitset.choose s with
  | Some l when Bitset.cardinal s = 1 -> Some l
  | _ -> None

let callees_of t (lbl : label) : fname list =
  Option.value ~default:[] (Hashtbl.find_opt t.callees lbl)

(** Resolved callees of any call instruction. *)
let call_targets t (i : instr) : fname list =
  match i.kind with
  | Call { callee = Direct g; _ } -> [ g ]
  | Call { callee = Indirect _; _ } -> callees_of t i.lbl
  | _ -> []
