(** Abstract memory objects and locations.

    An object abstracts the memory created at an allocation site (possibly
    cloned per call site for heap-allocation wrappers), a global, or a
    function (for function pointers). A {e location} — the paper's
    address-taken variable rho in Var_AT — is an (object, field) pair;
    arrays are collapsed to a single location unless the small-array
    extension is enabled. Locations are densely numbered so points-to sets
    are bitsets. *)

open Ir.Types

type objkind = Obj_stack | Obj_heap | Obj_global | Obj_func of fname

type obj = {
  oid : int;
  osite : label;         (** allocation-site label; -1 for globals/functions *)
  octx : label option;   (** cloning context: the wrapper call site *)
  okind : objkind;
  oname : string;
  onfields : int;        (** 1 for collapsed arrays and scalars *)
  oarray : bool;
  oowner : fname;        (** function owning a stack object; "" otherwise *)
  oinit : bool;          (** alloc_T (true) or alloc_F *)
}

type t

val create : unit -> t

val add_obj :
  t ->
  osite:label ->
  octx:label option ->
  okind:objkind ->
  oname:string ->
  onfields:int ->
  oarray:bool ->
  oowner:fname ->
  oinit:bool ->
  int

(** Assign dense location ids once all objects exist. *)
val freeze : t -> unit

val nobjs : t -> int
val nlocs : t -> int
val obj : t -> int -> obj

(** [loc t oid field] — the location id for a field, clamping out-of-range
    fields and collapsing array objects. Non-array clamps are counted (see
    {!field_clamps}) and mirrored to the [objects.field_clamps] metric. *)
val loc : t -> int -> int -> int

(** Number of out-of-range (non-array) field accesses silently clamped by
    {!loc} over this table's lifetime. Verify.Pta surfaces a nonzero count
    as a warning diagnostic. *)
val field_clamps : t -> int

val loc_obj : t -> int -> obj
val loc_field : t -> int -> int

(** All clones of an allocation site. *)
val objs_of_site : t -> label -> int list

val obj_of_site : t -> label -> label option -> int option
val obj_of_global : t -> string -> int
val obj_of_func : t -> fname -> int option
val func_of_obj : t -> int -> fname option

(** Display name, e.g. ["s.f2"] or ["malloc_obj@l17"]. *)
val loc_name : t -> int -> string

(** Iterate over every location of an object. *)
val iter_obj_locs : t -> int -> (int -> unit) -> unit
