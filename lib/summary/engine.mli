(** Compositional definedness resolution (DESIGN.md §12): per-function
    value-flow summaries solved bottom-up over the call-graph SCCs, with
    redundant return-exit pruning, composed at call sites to reproduce
    the monolithic Γ exactly, and optionally persisted in a
    content-hashed artifact cache.

    The produced {!Vfg.Resolve.gamma} marks the same node set as
    [Vfg.Resolve.resolve] on the same graph and knobs — byte-identical
    [undef] — while [states_explored] counts (source, context)
    instantiation states and [condensed_sccs] is always 0 (this engine
    never condenses). *)

(** Per-analysis counters; each increment is mirrored to the process-wide
    [summary.*] metrics. *)
type stats = {
  mutable computed : int;      (** summaries computed from the IR *)
  mutable reused : int;        (** summaries loaded from the cache *)
  mutable recomputed : int;    (** computed while a cache was configured *)
  mutable pruned : int;        (** return exits dropped as redundant *)
  mutable fallback_sccs : int; (** SCCs resolved without summaries *)
  mutable cache_corrupt : int; (** cache entries rejected by checksum *)
}

val fresh_stats : unit -> stats

(** Shared per-program precomputation: the canonical variable naming and
    the per-function canonical IR digests that content keys chain
    through. Both are graph-independent, so one [prep] serves the
    TL+AT and TL resolutions of the same analysis — create it once per
    [Pipeline.analyze] and pass it to both {!resolve} calls. Everything
    inside is computed lazily and memoized. *)
type prep

val prep : prog:Ir.Prog.t -> prep

(** Resolve Γ compositionally. [cache] names the artifact directory;
    [hook] runs before each function's summary is solved (fault
    injection); [on_fallback] reports an SCC whose summary pass faulted
    (its functions are resolved exactly, on demand — never skipped);
    [on_corrupt] reports a cache file rejected by checksum (already
    removed; it will be recomputed). [budget] burns one unit of resolve
    fuel per instantiation state — deterministic across cold and warm
    caches — and ticks the deadline during summary computation.
    Budget exhaustion propagates as [Diag.Budget.Exhausted], exactly
    like the monolithic engine. *)
val resolve :
  ?context_sensitive:bool ->
  ?budget:Diag.Budget.t ->
  ?cache:string ->
  ?prep:prep ->
  ?hook:(Ir.Types.fname -> unit) ->
  ?on_fallback:(Ir.Types.fname list -> Diag.t -> unit) ->
  ?on_corrupt:(string -> unit) ->
  stats:stats ->
  prog:Ir.Prog.t ->
  objects:Analysis.Objects.t ->
  cg:Analysis.Callgraph.t ->
  Vfg.Graph.t ->
  Vfg.Resolve.gamma
