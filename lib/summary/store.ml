(* On-disk artifact store for per-SCC value-flow summaries.

   One file per content key: [<dir>/<key>.sum]. The first line is a
   header [usher-summary/1 <key> <md5>] where <md5> is the digest of the
   body; the body lists, per function of the SCC, each summary source and
   its ordered member-closure, one node per line, as ordinals into the
   function's canonical node order (Engine's [canon]). Member order is
   preserved verbatim so a warm load replays the exact traversal order of
   the cold computation (cold and warm runs must be byte-identical all
   the way down to the search-state counter).

   Write discipline mirrors the daemon's reply cache (Serve.Cache): the
   payload lands in a private temp file which is renamed into place —
   the first writer wins and concurrent writers of the same key are
   benign no-ops, because identical keys imply identical content. A
   failed write is silently dropped: the cache accelerates, it never
   gates.

   Trust discipline: a loaded entry is believed only after its header
   magic, embedded key, and body checksum all match. Anything else —
   truncation, a flipped byte, a stale format — classifies as [Corrupt],
   the file is unlinked, and the caller recomputes from the IR. A
   corrupted entry is never trusted, even partially. *)

let magic = "usher-summary/1"

(* function -> (source ordinal, ordered member ordinals) list *)
type payload = (string * (int * int array) list) list

type load_result =
  | Hit of payload
  | Miss
  | Corrupt of string  (** path of the rejected (and removed) file *)

let path (dir : string) (key : string) : string =
  Filename.concat dir (key ^ ".sum")

let ensure_dir (dir : string) : unit =
  if not (Sys.file_exists dir) then (try Sys.mkdir dir 0o755 with _ -> ())

let serialize_body (p : payload) : string =
  let b = Buffer.create 1024 in
  let int n = Buffer.add_string b (string_of_int n) in
  List.iter
    (fun (fn, srcs) ->
      Buffer.add_string b "f ";
      Buffer.add_string b fn;
      Buffer.add_char b ' ';
      int (List.length srcs);
      Buffer.add_char b '\n';
      List.iter
        (fun (so, members) ->
          Buffer.add_string b "s ";
          int so;
          Buffer.add_char b ' ';
          int (Array.length members);
          Buffer.add_char b '\n';
          Array.iter
            (fun m ->
              int m;
              Buffer.add_char b '\n')
            members)
        srcs)
    p;
  Buffer.contents b

exception Bad

(* Cursor-based parser: this is the warm path (one call per cache hit),
   so it reads ordinals straight out of the whole-file buffer from
   [start] — no line splitting, no per-token strings, no body copy. Any
   malformation raises [Bad] -> [None]. *)
let parse_body (body : string) (start : int) : payload option =
  let n = String.length body in
  let pos = ref start in
  let tok () =
    if !pos >= n then raise Bad;
    let start = !pos in
    while !pos < n && body.[!pos] <> ' ' && body.[!pos] <> '\n' do
      incr pos
    done;
    let s = String.sub body start (!pos - start) in
    if !pos < n then incr pos;
    s
  in
  let int_tok () =
    if !pos >= n then raise Bad;
    let v = ref 0 in
    let any = ref false in
    while !pos < n && body.[!pos] <> ' ' && body.[!pos] <> '\n' do
      let c = body.[!pos] in
      if c < '0' || c > '9' then raise Bad;
      v := (!v * 10) + (Char.code c - 48);
      if !v > 0x3FFFFFFF then raise Bad;
      any := true;
      incr pos
    done;
    if not !any then raise Bad;
    if !pos < n then incr pos;
    !v
  in
  try
    let fns = ref [] in
    while !pos < n do
      if tok () <> "f" then raise Bad;
      let fn = tok () in
      let cnt = int_tok () in
      if cnt > n then raise Bad;
      let srcs = ref [] in
      for _ = 1 to cnt do
        if tok () <> "s" then raise Bad;
        let so = int_tok () in
        let mcnt = int_tok () in
        if mcnt > n then raise Bad;
        let members = Array.init mcnt (fun _ -> int_tok ()) in
        srcs := (so, members) :: !srcs
      done;
      fns := (fn, List.rev !srcs) :: !fns
    done;
    Some (List.rev !fns)
  with Bad -> None

(* Raw [Unix.read] into one exact-size buffer: a channel would allocate
   its own 64K buffer per open, which dwarfs the typical entry (sub-KB)
   across a warm run's hundreds of loads. Anything over the size cap is
   not a plausible summary artifact and reads as a miss. *)
let read_file (p : string) : string option =
  match Unix.openfile p [ Unix.O_RDONLY ] 0 with
  | exception _ -> None
  | fd ->
    let r =
      try
        let len = (Unix.fstat fd).Unix.st_size in
        if len < 0 || len > 16 * 1024 * 1024 then None
        else begin
          let buf = Bytes.create len in
          let off = ref 0 in
          let short = ref false in
          while (not !short) && !off < len do
            let k = Unix.read fd buf !off (len - !off) in
            if k = 0 then short := true else off := !off + k
          done;
          if !short then None else Some (Bytes.unsafe_to_string buf)
        end
      with _ -> None
    in
    (try Unix.close fd with _ -> ());
    r

let load (dir : string) (key : string) : load_result =
  let p = path dir key in
  match read_file p with
  | None -> Miss
  | Some content ->
    let reject () =
      (try Sys.remove p with _ -> ());
      Corrupt p
    in
    (match String.index_opt content '\n' with
    | None -> reject ()
    | Some i ->
      let header = String.sub content 0 i in
      let blen = String.length content - i - 1 in
      (match String.split_on_char ' ' header with
      | [ m; k; md5 ]
        when m = magic && k = key
             && md5 = Digest.to_hex (Digest.substring content (i + 1) blen)
        -> (
        match parse_body content (i + 1) with
        | Some payload -> Hit payload
        | None -> reject ())
      | _ -> reject ()))

let write (dir : string) (key : string) (p : payload) : unit =
  try
    ensure_dir dir;
    let body = serialize_body p in
    let header =
      Printf.sprintf "%s %s %s\n" magic key (Digest.to_hex (Digest.string body))
    in
    let tmp = Filename.temp_file ~temp_dir:dir ".sum-" ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc header;
    output_string oc body;
    close_out oc;
    (* First writer wins: rename is atomic, and a racing rename of the
       same key installs identical bytes, so the winner is immaterial. *)
    Sys.rename tmp (path dir key)
  with _ -> ()
