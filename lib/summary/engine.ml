(* Compositional definedness resolution over per-function value-flow
   summaries (DESIGN.md §12).

   The monolithic resolver (Vfg.Resolve) walks the whole VFG backwards
   from the F root, one (node, context) state at a time. This engine
   exploits the builder's locality invariant — every Eintra edge stays
   inside one function's fragment (or lands on a root) — to decompose
   that walk per function:

   - A {e source} of function g is a g-owned node through which the
     backward search can enter g: it has a non-Eintra out-edge (a call or
     return crossing) or depends directly on the F root.
   - The {e summary} of g maps each source s to its member closure: every
     g-owned node with a forward Eintra path to s, in BFS order. Members
     inherit s's search context unchanged (Eintra never changes context),
     so the closure is context-independent and caller-independent — one
     artifact serves the context-sensitive and -insensitive searches and
     both graphs (TL+AT and TL).
   - {e Instantiation} replays the monolithic search over (source,
     context) states: popping (s, c) marks s's members ⊥ and crosses the
     members' call/return in-edges exactly as Vfg.Resolve would — a
     reversed Ecall(l) enters the callee at context l, a reversed Eret(l)
     leaves it (context Any, fires iff c is Any or l). Any subsumes At,
     with the same push-time dedup and pop-time stale-At skip as the
     monolithic engine, so the marked set — and hence Γ — is identical.
   - {e Pruning}: a source with no Any-producing out-edge (no Eret
     out-edge, no direct F dependence) can only ever be reached at the
     contexts of its own Ecall out-edges, so return exits labelled
     outside that set are provably redundant for every caller and are
     dropped before propagation.

   Summaries are solved bottom-up over Analysis.Callgraph.bottom_up_sccs
   and, when a cache directory is given, persisted per SCC under a
   content key: the digest of the SCC functions' canonical IR plus their
   canonical Eintra fragments plus the keys of all callee SCCs. Editing
   one function therefore invalidates exactly that function's SCC and
   its transitive callers. Canonical names are process-independent and
   shift-invariant ("v<k>" by first-occurrence walk order for top-level
   nodes; memory versions by per-owner location and version ranks),
   because raw variable ids, memory version numbers, and heap location
   names all embed process-global counters that an edit in one function
   would otherwise shift for every later function.

   Correctness never depends on the cache or the precomputation: any
   activated source without a summary (fallback SCC, stale entry, a new
   caller discovering a source the cold pass never saw) gets an
   on-demand closure, which is the same exact computation. A faulting
   SCC falls back to exactly that; a corrupt cache entry is removed and
   recomputed, never trusted. *)

open Ir.Types
module G = Vfg.Graph

(* Per-analysis counters; the registry mirrors them process-wide so CI
   can assert reuse behaviour through `usherc --metrics`. *)
type stats = {
  mutable computed : int;     (* summaries computed from the IR *)
  mutable reused : int;       (* summaries loaded from the cache *)
  mutable recomputed : int;   (* computed while a cache was configured *)
  mutable pruned : int;       (* return exits dropped as redundant *)
  mutable fallback_sccs : int;(* SCCs resolved without summaries *)
  mutable cache_corrupt : int;(* cache entries rejected by checksum *)
}

let fresh_stats () =
  {
    computed = 0;
    reused = 0;
    recomputed = 0;
    pruned = 0;
    fallback_sccs = 0;
    cache_corrupt = 0;
  }

let m_computed = Obs.Metrics.counter "summary.computed"
let m_reused = Obs.Metrics.counter "summary.reused"
let m_recomputed = Obs.Metrics.counter "summary.recomputed"
let m_pruned = Obs.Metrics.counter "summary.pruned"
let m_fallback = Obs.Metrics.counter "summary.fallback_sccs"
let m_corrupt = Obs.Metrics.counter "summary.cache_corrupt"

(* ------------------------------------------------------------------ *)
(* Canonical naming                                                    *)
(* ------------------------------------------------------------------ *)

(* First-occurrence walk of a function: parameters, then every block in
   array order, each instruction's def before its uses, then the
   terminator's uses. The resulting per-function index is stable across
   processes, unlike the program-wide variable ids. *)
let walk_func (f : func) ~(touch : var -> unit) : unit =
  List.iter touch f.params;
  Array.iter
    (fun b ->
      List.iter
        (fun (i : instr) ->
          (match Ir.Instr.def_of i.kind with
          | Some d -> touch d
          | None -> ());
          List.iter touch (Ir.Instr.uses_of i.kind))
        b.instrs;
      List.iter touch (Ir.Instr.term_uses b.term.tkind))
    f.blocks

type naming = {
  var_idx : (var, int) Hashtbl.t;      (* var -> per-function walk index *)
  var_owner : (var, fname) Hashtbl.t;  (* var -> walking function *)
  var_name : (var, string) Hashtbl.t;  (* var -> prerendered "v<idx>" *)
}

(* Prerendered decimal strings: key rendering touches every node and
   every IR token on every analyze, warm or cold. *)
let small_int =
  lazy (Array.init 1024 string_of_int)

let int_str (n : int) : string =
  if n >= 0 && n < 1024 then (Lazy.force small_int).(n) else string_of_int n

let vname_str =
  lazy (Array.init 1024 (fun i -> "v" ^ string_of_int i))

let build_naming (prog : Ir.Prog.t) : naming =
  let var_idx = Hashtbl.create 4096 in
  let var_owner = Hashtbl.create 4096 in
  let var_name = Hashtbl.create 4096 in
  let vn = Lazy.force vname_str in
  Ir.Prog.iter_funcs
    (fun f ->
      let next = ref 0 in
      let touch v =
        if not (Hashtbl.mem var_idx v) then begin
          let i = !next in
          Hashtbl.replace var_idx v i;
          Hashtbl.replace var_owner v f.fname;
          Hashtbl.replace var_name v
            (if i < 1024 then vn.(i) else "v" ^ string_of_int i);
          incr next
        end
      in
      walk_func f ~touch)
    prog;
  { var_idx; var_owner; var_name }

let storable_name (s : string) : bool =
  String.length s > 0
  && not (String.exists (fun c -> c = ' ' || c = '\n' || c = '\r') s)

let node_owner (nm : naming) (n : G.node) : fname option =
  match n with
  | G.Root_t | G.Root_f -> None
  | G.Top v -> Hashtbl.find_opt nm.var_owner v
  | G.Mem (f, _, _) -> Some f

(* ------------------------------------------------------------------ *)
(* Canonical serialization (content keys)                              *)
(* ------------------------------------------------------------------ *)

(* Label-free, position-based rendering of one function's IR. Constants
   are included so a literal edit changes the key; statement labels are
   omitted so the key is insensitive to the program-wide label counter.
   This is on the warm path (keys are recomputed every run to find the
   cache entries), so it writes straight into the buffer — no [sprintf]
   round-trips. *)
let ir_serial (nm : naming) (f : func) (b : Buffer.t) : unit =
  let add = Buffer.add_string b in
  let ch = Buffer.add_char b in
  let int n = add (int_str n) in
  let v x =
    match Hashtbl.find_opt nm.var_name x with
    | Some s -> add s
    | None -> ch '?'
  in
  let op = function
    | Cst n ->
      ch 'c';
      int n
    | Var x -> v x
    | Undef -> ch 'u'
  in
  let sp () = ch ' ' in
  add "fn ";
  add f.fname;
  ch '/';
  int (List.length f.params);
  ch '\n';
  Array.iter
    (fun blk ->
      ch 'b';
      int blk.bid;
      ch '\n';
      List.iter
        (fun (i : instr) ->
          (match i.kind with
          | Const (x, n) ->
            add "C ";
            v x;
            sp ();
            int n
          | Copy (x, o) ->
            add "Y ";
            v x;
            sp ();
            op o
          | Unop (x, u, o) ->
            add "U ";
            v x;
            sp ();
            add (unop_to_string u);
            sp ();
            op o
          | Binop (x, bo, o1, o2) ->
            add "B ";
            v x;
            sp ();
            add (binop_to_string bo);
            sp ();
            op o1;
            sp ();
            op o2
          | Alloc a ->
            add "A ";
            v a.adst;
            sp ();
            add a.aname;
            sp ();
            ch (match a.region with Stack -> 's' | Heap -> 'h' | Global -> 'g');
            sp ();
            add (if a.initialized then "true" else "false");
            sp ();
            (match a.asize with
            | Fields n ->
              ch 'F';
              int n
            | Array_of o ->
              ch 'R';
              op o)
          | Load (x, y) ->
            add "L ";
            v x;
            sp ();
            v y
          | Store (x, o) ->
            add "S ";
            v x;
            sp ();
            op o
          | Field_addr (x, y, k) ->
            add "FA ";
            v x;
            sp ();
            v y;
            sp ();
            int k
          | Index_addr (x, y, o) ->
            add "IA ";
            v x;
            sp ();
            v y;
            sp ();
            op o
          | Global_addr (x, g) ->
            add "GA ";
            v x;
            sp ();
            add g
          | Func_addr (x, fn) ->
            add "FP ";
            v x;
            sp ();
            add fn
          | Call c ->
            add "K ";
            (match c.cdst with Some x -> v x | None -> ch '_');
            sp ();
            (match c.callee with
            | Direct fn ->
              add "d:";
              add fn
            | Indirect x ->
              add "i:";
              v x);
            sp ();
            List.iteri
              (fun i o ->
                if i > 0 then ch ',';
                op o)
              c.cargs
          | Phi (x, prs) ->
            add "P ";
            v x;
            sp ();
            List.iteri
              (fun i (bid, o) ->
                if i > 0 then ch ',';
                int bid;
                ch ':';
                op o)
              prs
          | Output o ->
            add "O ";
            op o
          | Input x ->
            add "I ";
            v x);
          ch '\n')
        blk.instrs;
      (match blk.term.tkind with
      | Br (o, b1, b2) ->
        add "br ";
        op o;
        sp ();
        int b1;
        sp ();
        int b2
      | Jmp bid ->
        add "jmp ";
        int bid
      | Ret None -> add "ret"
      | Ret (Some o) ->
        add "ret ";
        op o);
      ch '\n')
    f.blocks

(* ------------------------------------------------------------------ *)
(* Shared per-program precomputation                                   *)
(* ------------------------------------------------------------------ *)

(* The naming and the canonical IR strings depend only on the program,
   not on the graph being resolved, so one [prep] amortizes them across
   the TL+AT and TL resolutions of an analysis (both recompute content
   keys every run to address the cache — this is the warm path's fixed
   cost). Lazy + memoized: a run without a cache directory never touches
   any of it. *)
type prep = {
  p_prog : Ir.Prog.t;
  p_nm : naming Lazy.t;
  p_ir : (fname, string) Hashtbl.t;  (* function -> digest of canonical IR *)
}

let prep ~(prog : Ir.Prog.t) : prep =
  { p_prog = prog; p_nm = lazy (build_naming prog); p_ir = Hashtbl.create 64 }

(* The content key chains through a fixed-width digest of each
   function's canonical IR rather than the serialization itself: the
   serialization is hashed once per function per process, and the SCC
   key buffer stays proportional to the fragment, not the code. *)
let ir_of (p : prep) (fn : fname) : string =
  match Hashtbl.find_opt p.p_ir fn with
  | Some s -> s
  | None ->
    let b = Buffer.create 1024 in
    (match Ir.Prog.find_func p.p_prog fn with
    | Some f -> ir_serial (Lazy.force p.p_nm) f b
    | None ->
      Buffer.add_string b "fn? ";
      Buffer.add_string b fn;
      Buffer.add_char b '\n');
    let s = Digest.string (Buffer.contents b) in
    Hashtbl.replace p.p_ir fn s;
    s

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)
(* ------------------------------------------------------------------ *)

(* A source's resolved summary plus its instantiation-time state. Exits
   are derived lazily at first activation — they depend on caller-side
   edges, so they are never part of the cached artifact. *)
type sentry = {
  members : int array;
  mutable marked : bool;
  mutable exits_done : bool;
  mutable call_exits : (int * label) array;
  mutable ret_exits : (int * label) array;
}

let mk_entry members =
  { members; marked = false; exits_done = false; call_exits = [||];
    ret_exits = [||] }

let resolve ?(context_sensitive = true) ?budget ?cache ?prep:shared_prep
    ?(hook = fun (_ : fname) -> ()) ?(on_fallback = fun _ _ -> ())
    ?(on_corrupt = fun (_ : string) -> ()) ~(stats : stats)
    ~(prog : Ir.Prog.t) ~objects:(_ : Analysis.Objects.t)
    ~(cg : Analysis.Callgraph.t) (graph : G.t) : Vfg.Resolve.gamma =
  Obs.Trace.with_span ~cat:"summary" "summary.resolve" @@ fun () ->
  let n = G.nnodes graph in
  let undef = Bytes.make n '\000' in
  let states = ref 0 in
  let tick () =
    match budget with
    | Some b -> Diag.Budget.tick b Diag.Resolve
    | None -> ()
  in
  let burn () =
    match budget with
    | Some b -> Diag.Budget.burn_resolve b Diag.Resolve
    | None -> ()
  in
  match G.find graph G.Root_f with
  | None -> { Vfg.Resolve.undef; states_explored = 0; condensed_sccs = 0 }
  | Some froot ->
    (* Forward Eintra closure towards s, over reversed edges: every node
       that can feed s without crossing a call/return. The builder's
       locality invariant keeps this inside s's function. BFS order is
       the canonical member order. *)
    let closure (s : int) : int array =
      let seen = Hashtbl.create 16 in
      let q = Queue.create () in
      let order = ref [] in
      Hashtbl.replace seen s ();
      Queue.push s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        tick ();
        order := u :: !order;
        List.iter
          (fun (w, k) ->
            if k = G.Eintra && not (Hashtbl.mem seen w) then begin
              Hashtbl.replace seen w ();
              Queue.push w q
            end)
          (G.preds graph u)
      done;
      Array.of_list (List.rev !order)
    in
    let is_source (u : int) : bool =
      List.exists
        (fun (w, k) -> k <> G.Eintra || w = froot)
        (G.succs graph u)
    in
    (* Resolved summaries by source node id; filled bottom-up (cold), at
       activation (warm), or on demand (fallback). *)
    let entries : (int, sentry) Hashtbl.t = Hashtbl.create 2048 in
    (* Loaded cache entries, already resolved to node ids at load time:
       source node -> ordered member nodes. Activation is a bare lookup. *)
    let loaded : (int, int array) Hashtbl.t = Hashtbl.create 2048 in
    let pr =
      match shared_prep with Some p -> p | None -> prep ~prog
    in
    let nm = Lazy.force pr.p_nm in
    (* Graph nodes bucketed per owning function, in node-id order. *)
    let by_func : (fname, int list ref) Hashtbl.t = Hashtbl.create 256 in
    G.iter_nodes
      (fun id node ->
        match node_owner nm node with
        | Some fn -> (
          match Hashtbl.find_opt by_func fn with
          | Some l -> l := id :: !l
          | None -> Hashtbl.replace by_func fn (ref [ id ]))
        | None -> ())
      graph;
    (* Finalized buckets: ascending node-id arrays, built once. *)
    let by_func_arr : (fname, int array) Hashtbl.t =
      Hashtbl.create (Hashtbl.length by_func)
    in
    Hashtbl.iter
      (fun fn l ->
        let ids = !l in
        let k = List.length ids in
        let a = Array.make k 0 in
        (* The bucket list is in descending id order; fill backwards. *)
        let j = ref (k - 1) in
        List.iter
          (fun id ->
            a.(!j) <- id;
            decr j)
          ids;
        Hashtbl.replace by_func_arr fn a)
      by_func;
    let nodes_of fn =
      match Hashtbl.find_opt by_func_arr fn with
      | Some a -> a
      | None -> [||]
    in
    (* Per-function canonical node order (ordinal -> node id), recorded
       by the key pass for every cacheable SCC. Stored summaries refer to
       nodes by their ordinal in this order — process-independent because
       the order is, and string-free on the warm path. *)
    let canon : (fname, int array) Hashtbl.t = Hashtbl.create 16 in
    (* Memory-SSA version numbers AND abstract-location names both embed
       program-global counters (versions a global def counter, heap
       locations their allocation-site label), so an edit in one function
       uniformly shifts every later function's values without changing
       its value flow — raw versions or location names in keys would
       invalidate most of the cache on any edit. Keys therefore use
       RANKS, both content-determined within the owning function and
       invariant under the uniform shift: a location ranks by the first
       appearance of any of its versions among the owner's nodes (graph
       construction order, which is content-deterministic), a version by
       its sort position among the owner's distinct versions of that
       location. (owner, location rank, version rank) is unique per node;
       dependency tags embed the owner's name so equal ranks of different
       owners never collide. *)
    let vranks :
        ((fname * int, (int, int) Hashtbl.t) Hashtbl.t
        * (fname * int, int) Hashtbl.t)
        Lazy.t =
      lazy
        (let t = Hashtbl.create 64 in
         let first : (fname * int, int) Hashtbl.t = Hashtbl.create 64 in
         G.iter_nodes
           (fun id n ->
             match n with
             | G.Mem (f, l, ver) ->
               let tbl =
                 match Hashtbl.find_opt t (f, l) with
                 | Some tbl -> tbl
                 | None ->
                   let tbl = Hashtbl.create 8 in
                   Hashtbl.replace t (f, l) tbl;
                   tbl
               in
               Hashtbl.replace tbl ver (-1);
               (match Hashtbl.find_opt first (f, l) with
               | Some m when m <= id -> ()
               | _ -> Hashtbl.replace first (f, l) id)
             | _ -> ())
           graph;
         Hashtbl.iter
           (fun _ tbl ->
             Hashtbl.fold (fun v _ acc -> v :: acc) tbl []
             |> List.sort compare
             |> List.iteri (fun i v -> Hashtbl.replace tbl v i))
           t;
         let by_f : (fname, (int * int) list ref) Hashtbl.t =
           Hashtbl.create 64
         in
         Hashtbl.iter
           (fun (f, l) id ->
             match Hashtbl.find_opt by_f f with
             | Some r -> r := (id, l) :: !r
             | None -> Hashtbl.replace by_f f (ref [ (id, l) ]))
           first;
         let lranks : (fname * int, int) Hashtbl.t = Hashtbl.create 64 in
         Hashtbl.iter
           (fun f r ->
             List.sort compare !r
             |> List.iteri (fun i (_, l) -> Hashtbl.replace lranks (f, l) i))
           by_f;
         (t, lranks))
    in
    (* Canonical per-function sort key of a node, string-free for the
       common Top case: Top nodes order by walk index, Mem nodes (few,
       and absent from the TL graph) by version rank then owner-qualified
       location name. [None] marks a node that cannot be named
       process-independently; one such node makes its whole function
       uncacheable. The key pass below runs on every analyze — warm or
       cold — so this path avoids allocating a name string per node. *)
    let ckey (id : int) : (int * int * string) option =
      match G.node_of graph id with
      | G.Top v -> (
        match Hashtbl.find_opt nm.var_idx v with
        | Some i -> Some (0, i, "")
        | None -> None)
      | G.Mem (f, l, ver) -> (
        let vr, lr = Lazy.force vranks in
        match (Hashtbl.find_opt vr (f, l), Hashtbl.find_opt lr (f, l)) with
        | Some tbl, Some lrank -> (
          match Hashtbl.find_opt tbl ver with
          | None -> None
          | Some vrank ->
            let s = "m:" ^ f ^ ":" ^ int_str lrank in
            if storable_name s then Some (1, vrank, s) else None)
        | _ -> None)
      | G.Root_t | G.Root_f -> None
    in
    (* Memoized once per node (filled by the key pass): a node is
       referenced again by each of its Eintra dependents, and Mem keys
       allocate. *)
    let nkeys : (int * int * string) option array = Array.make n None in
    (* Canonical dependency tag, ordered F < T < v<i> < m:... < ? *)
    let dkey (w : int) : int * int * string =
      if w = froot then (-2, 0, "")
      else
        match G.node_of graph w with
        | G.Root_t -> (-1, 0, "")
        | _ -> (
          match nkeys.(w) with
          | Some k -> k
          | None -> (2, 0, ""))
    in
    let cmp3 (a1, b1, c1) (a2, b2, c2) =
      if a1 <> (a2 : int) then compare a1 a2
      else if b1 <> (b2 : int) then compare b1 b2
      else String.compare c1 c2
    in
    let vn = Lazy.force vname_str in
    let add_ckey b (rank, idx, s) =
      match rank with
      | -2 -> Buffer.add_char b 'F'
      | -1 -> Buffer.add_char b 'T'
      | 0 ->
        if idx < 1024 then Buffer.add_string b vn.(idx)
        else begin
          Buffer.add_char b 'v';
          Buffer.add_string b (string_of_int idx)
        end
      | 1 ->
        Buffer.add_string b s;
        Buffer.add_char b '_';
        Buffer.add_string b (int_str idx)
      | _ -> Buffer.add_char b '?'
    in
    (* Bottom-up SCC order and, when caching, the per-SCC content keys
       (chained through callee keys so an edit invalidates exactly the
       edited SCC and its transitive callers). *)
    let sccs = Analysis.Callgraph.bottom_up_sccs cg in
    let nsccs = Array.length sccs in
    let scc_of : (fname, int) Hashtbl.t = Hashtbl.create 64 in
    Array.iteri
      (fun i fns -> List.iter (fun fn -> Hashtbl.replace scc_of fn i) fns)
      sccs;
    let keys : string option array = Array.make nsccs None in
    let kb = Buffer.create 65536 in
    (match cache with
    | None -> ()
    | Some _ ->
      Obs.Trace.with_span ~cat:"summary" "summary.keys" @@ fun () ->
      G.iter_nodes (fun id _ -> nkeys.(id) <- ckey id) graph;
      for i = 0 to nsccs - 1 do
        let fns =
          match sccs.(i) with
          | ([] | [ _ ]) as l -> l
          | l -> List.sort compare l
        in
        let callee_keys =
          List.concat_map
            (fun fn ->
              List.filter_map
                (fun callee ->
                  match Hashtbl.find_opt scc_of callee with
                  | Some j when j <> i -> Some j
                  | _ -> None)
                (Analysis.Callgraph.callees_of cg fn))
            fns
          |> List.sort_uniq compare
        in
        let chain_ok =
          List.for_all (fun j -> keys.(j) <> None) callee_keys
        in
        (* Pre-key every node of the SCC; one unnamable node makes the
           whole SCC uncacheable (computed, never stored). *)
        let storable = ref chain_ok in
        let keyed =
          List.map
            (fun fn ->
              let ids = nodes_of fn in
              let k = Array.length ids in
              let ks = Array.make k ((0, 0, ""), 0) in
              (if !storable then
                 try
                   for j = 0 to k - 1 do
                     match nkeys.(ids.(j)) with
                     | Some ck -> ks.(j) <- (ck, ids.(j))
                     | None -> raise Exit
                   done
                 with Exit -> storable := false);
              if !storable then
                Array.sort (fun (a, _) (b, _) -> cmp3 a b) ks;
              (fn, ks))
            fns
        in
        if !storable then begin
          Buffer.clear kb;
          let b = kb in
          List.iter
            (fun (fn, ks) ->
              Hashtbl.replace canon fn (Array.map snd ks);
              Buffer.add_string b (ir_of pr fn);
              (* Canonical Eintra fragment: node -> sorted Eintra
                 dependencies (F/T for the roots), nodes in canonical
                 order. This captures everything the member closures can
                 see, including whole-program analysis effects on this
                 function's fragment. *)
              Array.iter
                (fun (k, id) ->
                  add_ckey b k;
                  Buffer.add_char b '>';
                  (match
                     List.filter_map
                       (fun (w, e) ->
                         if e <> G.Eintra then None else Some (dkey w))
                       (G.succs graph id)
                   with
                  | [] -> ()
                  | [ d ] -> add_ckey b d
                  | ds ->
                    List.iteri
                      (fun n d ->
                        if n > 0 then Buffer.add_char b ',';
                        add_ckey b d)
                      (List.sort_uniq cmp3 ds));
                  Buffer.add_char b '\n')
                ks)
            keyed;
          List.iter
            (fun j ->
              match keys.(j) with
              | Some k -> Buffer.add_string b ("callee " ^ k ^ "\n")
              | None -> ())
            callee_keys;
          keys.(i) <- Some (Digest.to_hex (Digest.string (Buffer.contents b)))
        end
      done);
    (* Bottom-up summary pass: load each SCC's summaries from the cache
       or compute (and persist) them. Faults degrade per SCC — its
       functions simply resolve on demand at instantiation — except for
       budget exhaustion, which is the whole phase's failure. *)
    (Obs.Trace.with_span ~cat:"summary" "summary.compute" @@ fun () ->
     for i = 0 to nsccs - 1 do
       let fns = sccs.(i) in
       try
         List.iter hook fns;
         let key = keys.(i) in
         let hit =
           match (cache, key) with
           | Some dir, Some k -> (
             match Store.load dir k with
             | Store.Hit payload ->
               List.iter
                 (fun (fn, srcs) ->
                   (match Hashtbl.find_opt canon fn with
                   | None -> ()
                   | Some arr ->
                     let nn = Array.length arr in
                     List.iter
                       (fun (so, members) ->
                         if so >= 0 && so < nn then begin
                           (* Rewrite ordinals to node ids in place — the
                              parser arrays are fresh. An out-of-range
                              ordinal means a stale or foreign entry —
                              skip the source, its closure recomputes on
                              demand. *)
                           let ok = ref true in
                           let k = Array.length members in
                           let j = ref 0 in
                           while !ok && !j < k do
                             let o = members.(!j) in
                             if o >= 0 && o < nn then begin
                               members.(!j) <- arr.(o);
                               incr j
                             end
                             else ok := false
                           done;
                           if !ok then
                             Hashtbl.replace loaded arr.(so) members
                         end)
                       srcs);
                   stats.reused <- stats.reused + 1;
                   Obs.Metrics.incr m_reused)
                 payload;
               true
             | Store.Miss -> false
             | Store.Corrupt p ->
               stats.cache_corrupt <- stats.cache_corrupt + 1;
               Obs.Metrics.incr m_corrupt;
               on_corrupt p;
               false)
           | _ -> false
         in
         if not hit then begin
           let payload =
             List.map
               (fun fn ->
                 let srcs =
                   Array.to_list (nodes_of fn)
                   |> List.filter (fun id -> is_source id)
                 in
                 (* Inverse of the canonical order, for rendering stored
                    ordinals — cold path only. *)
                 let inv =
                   match (cache, key, Hashtbl.find_opt canon fn) with
                   | Some _, Some _, Some arr ->
                     let h = Hashtbl.create (Array.length arr) in
                     Array.iteri (fun o id -> Hashtbl.replace h id o) arr;
                     Some h
                   | _ -> None
                 in
                 let named =
                   List.filter_map
                     (fun s ->
                       let ms = closure s in
                       Hashtbl.replace entries s (mk_entry ms);
                       match inv with
                       | None -> None
                       | Some h -> (
                         match Hashtbl.find_opt h s with
                         | None -> None
                         | Some so ->
                           let ok = ref true in
                           let os =
                             Array.map
                               (fun m ->
                                 match Hashtbl.find_opt h m with
                                 | Some o -> o
                                 | None ->
                                   (* Member outside the owning function:
                                      not representable — leave this
                                      source out; warm runs recompute its
                                      closure on demand. *)
                                   ok := false;
                                   -1)
                               ms
                           in
                           if !ok then Some (so, os) else None))
                     srcs
                 in
                 stats.computed <- stats.computed + 1;
                 Obs.Metrics.incr m_computed;
                 if cache <> None then begin
                   stats.recomputed <- stats.recomputed + 1;
                   Obs.Metrics.incr m_recomputed
                 end;
                 (fn, named))
               (List.sort compare fns)
           in
           match (cache, key) with
           | Some dir, Some k -> Store.write dir k payload
           | _ -> ()
         end
       with
       | Diag.Budget.Exhausted _ as e -> raise e
       | e ->
         stats.fallback_sccs <- stats.fallback_sccs + 1;
         Obs.Metrics.incr m_fallback;
         on_fallback fns (Diag.of_exn Diag.Resolve e)
     done);
    (* Instantiation: the summary-level replay of Vfg.Resolve.reach. *)
    Obs.Trace.with_span ~cat:"summary" "summary.instantiate" @@ fun () ->
    let activate (s : int) : sentry =
      match Hashtbl.find_opt entries s with
      | Some e -> e
      | None ->
        let e =
          match Hashtbl.find_opt loaded s with
          | Some ids -> mk_entry ids
          | None -> mk_entry (closure s)
        in
        Hashtbl.replace entries s e;
        e
    in
    let ensure_exits (s : int) (e : sentry) : unit =
      if not e.exits_done then begin
        let calls = ref [] and rets = ref [] in
        Array.iter
          (fun m ->
            List.iter
              (fun (w, k) ->
                match k with
                | G.Ecall l -> calls := (w, l) :: !calls
                | G.Eret l -> rets := (w, l) :: !rets
                | G.Eintra -> ())
              (G.preds graph m))
          e.members;
        let rets = List.rev !rets in
        let rets =
          if not context_sensitive then rets
          else begin
            (* Pruning: without an Any-producing out-edge, s is only ever
               reached at the contexts of its own call out-edges; return
               exits labelled elsewhere can never fire. *)
            let can_any = ref false in
            let labels = ref [] in
            List.iter
              (fun (w, k) ->
                match k with
                | G.Eret _ -> can_any := true
                | G.Eintra -> if w = froot then can_any := true
                | G.Ecall l -> labels := l :: !labels)
              (G.succs graph s);
            if !can_any then rets
            else begin
              let kept =
                List.filter (fun (_, l) -> List.mem l !labels) rets
              in
              let dropped = List.length rets - List.length kept in
              if dropped > 0 then begin
                stats.pruned <- stats.pruned + dropped;
                Obs.Metrics.add m_pruned dropped
              end;
              kept
            end
          end
        in
        e.call_exits <- Array.of_list (List.rev !calls);
        e.ret_exits <- Array.of_list rets;
        e.exits_done <- true
      end
    in
    (* States are (source, context) with context -1 = Any; Any subsumes
       every At, mirrored from the monolithic engine's dedup. *)
    let q : (int * int) Queue.t = Queue.create () in
    let any_seen : (int, unit) Hashtbl.t = Hashtbl.create 2048 in
    let at_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 2048 in
    let push s ctx =
      if ctx < 0 then begin
        if not (Hashtbl.mem any_seen s) then begin
          Hashtbl.replace any_seen s ();
          Queue.push (s, -1) q
        end
      end
      else if
        (not (Hashtbl.mem any_seen s)) && not (Hashtbl.mem at_seen (s, ctx))
      then begin
        Hashtbl.replace at_seen (s, ctx) ();
        Queue.push (s, ctx) q
      end
    in
    Bytes.set undef froot '\001';
    List.iter
      (fun (u, k) ->
        match k with
        | G.Eintra -> push u (-1)
        | G.Ecall l -> push u (if context_sensitive then l else -1)
        | G.Eret _ -> push u (-1))
      (G.preds graph froot);
    let sample () =
      if Obs.Trace.enabled () && !states land 255 = 1 then
        Obs.Trace.counter ~cat:"summary" "summary.instantiate"
          [ ("states", Obs.Trace.Int !states) ]
    in
    while not (Queue.is_empty q) do
      let s, ctx = Queue.pop q in
      incr states;
      sample ();
      burn ();
      (* If Any arrived after this At state was queued, skip: Any will
         (or did) explore strictly more. *)
      let stale =
        context_sensitive && ctx >= 0 && Hashtbl.mem any_seen s
      in
      if not stale then begin
        let e = activate s in
        if not e.marked then begin
          e.marked <- true;
          Array.iter
            (fun m -> Bytes.unsafe_set undef m '\001')
            e.members
        end;
        ensure_exits s e;
        Array.iter
          (fun (w, l) -> push w (if context_sensitive then l else -1))
          e.call_exits;
        Array.iter
          (fun (w, l) ->
            if (not context_sensitive) || ctx < 0 || ctx = l then push w (-1))
          e.ret_exits
      end
    done;
    { Vfg.Resolve.undef; states_explored = !states; condensed_sccs = 0 }
