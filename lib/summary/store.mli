(** Checksummed on-disk store for per-SCC value-flow summaries.

    One file per content key under the cache directory, installed with a
    first-writer-wins temp-file-plus-rename (the same discipline as the
    daemon's reply cache): concurrent writers of one key are benign
    because identical keys imply identical bytes. A loaded entry is
    trusted only after its magic, embedded key, and body checksum all
    verify; anything else is [Corrupt] — the file is removed and the
    caller recomputes. *)

val magic : string

(** Per function of the SCC: (source ordinal, ordered member ordinals),
    both indices into the function's canonical node order. Member order
    is significant — a warm load must replay the cold traversal order
    exactly. *)
type payload = (string * (int * int array) list) list

type load_result =
  | Hit of payload
  | Miss
  | Corrupt of string  (** path of the rejected (and removed) file *)

val path : string -> string -> string
val load : string -> string -> load_result

(** Best-effort: failures (permissions, disk full) are swallowed — the
    cache accelerates, it never gates. *)
val write : string -> string -> payload -> unit
