(* Guided instrumentation — the paper's key contribution (§3.4, Figure 7).

   Starting from the uses at critical operations, instrumentation-item sets
   are propagated backwards over the VFG:

   - ⊥-nodes are instrumented as in full instrumentation and propagate the
     requirement to their dependencies;
   - ⊤-nodes whose shadow location can be *strongly updated* (assignments,
     parameters, allocations, strong-update stores) emit a single
     [sigma := T] and cut the propagation — their upstream flows need no
     tracking at all;
   - ⊤-nodes that cannot strongly update (weak/semi-strong stores, call
     chis, memory phis, virtual parameters) emit nothing and pass the
     requirement through their memory dependencies.

   Opt I (value-flow simplification, §3.5.1) is folded in here: a needed
   ⊥ top-level node whose must-flow closure has interior structure reads the
   conjunction of its ⊥ sources directly, so the interior nodes only get
   instrumented if something else needs them. *)

open Ir.Types
module P = Ir.Prog

type options = { opt1 : bool }

type result = {
  plan : Item.plan;
  needed_nodes : int;    (* VFG nodes reached by the propagation *)
  opt1_simplified : int; (* closures simplified (Table 1's "S" column) *)
}

let op_shadow = Full.op_shadow
let conj_of = Full.conj_of

let build ?(options = { opt1 = true }) ?distrusted (bld : Vfg.Build.t)
    (gamma : Vfg.Resolve.gamma) : result =
  let have_distrust =
    match distrusted with Some d -> Hashtbl.length d > 0 | None -> false
  in
  let p = bld.prog in
  let g = bld.graph in
  let plan = Item.empty_plan p in
  let rs = plan.ret_slot in
  let simplified = ref 0 in
  (* Side tables. *)
  let instr_of : (label, fname * instr) Hashtbl.t = Hashtbl.create 256 in
  P.iter_instrs (fun f _ i -> Hashtbl.replace instr_of i.lbl (f.fname, i)) p;
  let callsites_of : (fname, (label * operand list) list) Hashtbl.t =
    Hashtbl.create 16
  in
  P.iter_instrs
    (fun _ _ i ->
      match i.kind with
      | Call { cargs; _ } ->
        List.iter
          (fun target ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt callsites_of target)
            in
            Hashtbl.replace callsites_of target ((i.lbl, cargs) :: prev))
          (Analysis.Callgraph.site_callees bld.cg i.lbl)
      | _ -> ())
    p;
  let param_index : (var, fname * int) Hashtbl.t = Hashtbl.create 64 in
  P.iter_funcs
    (fun f -> List.iteri (fun i prm -> Hashtbl.replace param_index prm (f.fname, i)) f.params)
    p;
  let def_tbls : (fname, (var, instr_kind) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let defs_of fn =
    match Hashtbl.find_opt def_tbls fn with
    | Some d -> d
    | None ->
      let tbl = Hashtbl.create 64 in
      Ir.Func.iter_instrs
        (fun _ i ->
          match Ir.Instr.def_of i.kind with
          | Some d -> Hashtbl.replace tbl d i.kind
          | None -> ())
        (P.get_func p fn);
      Hashtbl.replace def_tbls fn tbl;
      tbl
  in
  (* Dedup helpers for shared emission points. *)
  let ret_relay_done : (label, unit) Hashtbl.t = Hashtbl.create 16 in
  let arg_relay_done : (label * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let emit_ret_relays callee =
    List.iter
      (fun (rl, ro) ->
        if not (Hashtbl.mem ret_relay_done rl) then begin
          Hashtbl.replace ret_relay_done rl ();
          let o = match ro with Some o -> o | None -> Undef in
          Item.add plan rl Before (Item.Set_global (rs, o))
        end)
      (Option.value ~default:[] (Hashtbl.find_opt bld.ret_operands callee))
  in
  let emit_arg_relays fn idx =
    List.iter
      (fun (clbl, cargs) ->
        if not (Hashtbl.mem arg_relay_done (clbl, idx)) then begin
          Hashtbl.replace arg_relay_done (clbl, idx) ();
          match List.nth_opt cargs idx with
          | Some arg -> Item.add plan clbl Before (Item.Set_global (idx, arg))
          | None -> ()
        end)
      (Option.value ~default:[] (Hashtbl.find_opt callsites_of fn))
  in
  (* Worklist propagation. *)
  let needed = Array.make (Vfg.Graph.nnodes g) false in
  let work = Queue.create () in
  let need id =
    if not needed.(id) then begin
      needed.(id) <- true;
      Queue.push id work
    end
  in
  let need_succs id =
    List.iter (fun (d, _) -> need d) (Vfg.Graph.succs g id)
  in
  let need_mem_succs id =
    List.iter
      (fun (d, _) ->
        match Vfg.Graph.node_of g d with
        | Vfg.Graph.Mem _ -> need d
        | Vfg.Graph.Root_t | Vfg.Graph.Root_f | Vfg.Graph.Top _ -> ())
      (Vfg.Graph.succs g id)
  in
  let undef id = Vfg.Resolve.is_undef gamma id in
  let process id =
    match Vfg.Graph.node_of g id with
    | Vfg.Graph.Root_t | Vfg.Graph.Root_f -> ()
    | Vfg.Graph.Top x -> (
      match Vfg.Graph.def_of g id with
      | Vfg.Graph.Dparam fn ->
        let _, idx = Hashtbl.find param_index x in
        if not (undef id) then
          (* [⊤-Para] *)
          Item.add_entry plan fn (Item.Set_var (x, Item.Rconst true))
        else begin
          (* [⊥-Para] *)
          Item.add_entry plan fn (Item.Set_var (x, Item.Rglobal idx));
          emit_arg_relays fn idx;
          need_succs id
        end
      | Vfg.Graph.Dinstr (fn, lbl) -> (
        if not (undef id) then
          (* [⊤-Assign]: every top-level definition admits a strong update. *)
          Item.add plan lbl After (Item.Set_var (x, Item.Rconst true))
        else
          let _, i = Hashtbl.find instr_of lbl in
          let mfc_simplify () =
            if not options.opt1 then false
            else begin
              let mfc = Vfg.Mfc.compute (defs_of fn) x in
              if not (Vfg.Mfc.simplifiable mfc) then false
              else begin
                incr simplified;
                if Vfg.Mfc.has_undef_source mfc then begin
                  Item.add plan lbl After (Item.Set_var (x, Item.Rconst false));
                  (* The closure's verdict is constant; nothing upstream
                     needs tracking for x's sake. *)
                  true
                end
                else begin
                  let bot_sources =
                    List.filter
                      (fun s ->
                        match Vfg.Graph.find g (Vfg.Graph.Top s) with
                        | Some sid -> undef sid
                        | None -> false)
                      (Vfg.Mfc.var_sources mfc)
                  in
                  Item.add plan lbl After
                    (Item.Set_var
                       ( x,
                         if bot_sources = [] then Item.Rconst true
                         else Item.Rconj bot_sources ));
                  List.iter
                    (fun s ->
                      match Vfg.Graph.find g (Vfg.Graph.Top s) with
                      | Some sid -> need sid
                      | None -> ())
                    bot_sources;
                  true
                end
              end
            end
          in
          match i.kind with
          | Const (_, _) ->
            Item.add plan lbl After (Item.Set_var (x, Item.Rconst true))
          | Copy (_, o) ->
            if not (mfc_simplify ()) then begin
              Item.add plan lbl After (Item.Set_var (x, op_shadow o));
              need_succs id
            end
          | Unop (_, _, o) ->
            if not (mfc_simplify ()) then begin
              Item.add plan lbl After (Item.Set_var (x, conj_of [ o ]));
              need_succs id
            end
          | Binop (_, _, o1, o2) ->
            if not (mfc_simplify ()) then begin
              Item.add plan lbl After (Item.Set_var (x, conj_of [ o1; o2 ]));
              need_succs id
            end
          | Phi (_, arms) ->
            Item.add plan lbl After (Item.Set_var (x, Item.Rphi arms));
            need_succs id
          | Global_addr _ | Func_addr _ | Input _ ->
            Item.add plan lbl After (Item.Set_var (x, Item.Rconst true))
          | Field_addr (_, y, _) ->
            Item.add plan lbl After (Item.Set_var (x, conj_of [ Var y ]));
            need_succs id
          | Index_addr (_, y, o) ->
            Item.add plan lbl After (Item.Set_var (x, conj_of [ Var y; o ]));
            need_succs id
          | Alloc _ ->
            Item.add plan lbl After (Item.Set_var (x, Item.Rconst true))
          | Load (_, y) ->
            (* [⊥-Load] *)
            Item.add plan lbl After (Item.Set_var (x, Item.Rmem y));
            need_succs id
          | Call _ ->
            (* [⊥-Ret] destination side; source side at each callee ret. *)
            Item.add plan lbl After (Item.Set_var (x, Item.Rglobal rs));
            List.iter (fun callee -> emit_ret_relays callee)
              (Analysis.Callgraph.site_callees bld.cg lbl);
            need_succs id
          | Store _ | Output _ -> ())
      | Vfg.Graph.Dchi _ | Vfg.Graph.Dmemphi _ | Vfg.Graph.Dentry _
      | Vfg.Graph.Droot ->
        ())
    | Vfg.Graph.Mem (_, _, _) -> (
      match Vfg.Graph.def_of g id with
      | Vfg.Graph.Dchi (_, lbl) -> (
        let _, i = Hashtbl.find instr_of lbl in
        match i.kind with
        | Alloc a ->
          if not (undef id) then
            (* [⊤-Alloc] (only alloc_T chis can be ⊤) *)
            Item.add plan lbl After (Item.Set_mem_object (a.adst, true))
          else begin
            (* [⊥-Alloc] *)
            Item.add plan lbl After
              (Item.Set_mem_object (a.adst, a.initialized));
            need_mem_succs id
          end
        | Store (xp, o) ->
          if not (undef id) then begin
            match Hashtbl.find_opt bld.store_kind lbl with
            | Some Vfg.Build.Strong ->
              (* [⊤-Store_SU] *)
              Item.add plan lbl After (Item.Set_mem (xp, Item.Mconst true))
            | Some (Vfg.Build.Semi_strong | Vfg.Build.Weak) | None ->
              (* [⊤-Store_WU/SemiSU], refined: the requirement flows to the
                 older (or allocation-site) version, and the dynamically
                 written cell still records the stored value's shadow —
                 sigma(y) is T under Γ, but writing it through the pointer
                 keeps shadow memory accurate when this ⊤ version merges
                 with a ⊥ path downstream (otherwise the alloc's F would
                 survive the store and report a false positive). *)
              Item.add plan lbl After (Item.Set_mem (xp, Item.Mop o));
              need_mem_succs id
          end
          else begin
            (* [⊥-Store] *)
            Item.add plan lbl After (Item.Set_mem (xp, Item.Mop o));
            need_succs id
          end
        | _ ->
          (* chi at a call site ([VRet]): collect across the edges. *)
          if undef id then need_succs id else need_mem_succs id)
      | Vfg.Graph.Dmemphi _ | Vfg.Graph.Dentry _ ->
        (* [Phi] / [VPara]: no runtime item; shadow memory is global. *)
        need_succs id
      | Vfg.Graph.Dinstr _ | Vfg.Graph.Dparam _ | Vfg.Graph.Droot -> ())
  in
  (* Seeds: the uses at critical operations. *)
  List.iter
    (fun (c : Vfg.Build.critical) ->
      match c.cop with
      | Var x -> (
        match Vfg.Graph.find g (Vfg.Graph.Top x) with
        | Some id ->
          if undef id then begin
            Item.add plan c.clbl Before (Item.Check (Var x));
            need id
          end
        | None -> ())
      | Undef -> Item.add plan c.clbl Before (Item.Check Undef)
      | Cst _ -> ())
    bld.criticals;
  (* Usher_TL: memory is not tracked statically, so the memory side keeps
     full instrumentation — stores write shadow cells, allocs initialize
     shadow objects — and every value stored into (untracked) memory must
     itself be shadowed correctly, so store operands seed the traversal.

     The same overlay is applied whenever the distrust set is non-empty: a
     distrusted function runs under full instrumentation and reads shadow
     memory at every load, so every store program-wide must keep shadow
     memory accurate (a pruned trusted-side store would leave a stale
     default behind for the distrusted reader). *)
  if (not bld.config.track_memory) || have_distrust then
    P.iter_instrs
      (fun _ _ i ->
        match i.kind with
        | Store (x, o) ->
          Item.add plan i.lbl After (Item.Set_mem (x, Item.Mop o));
          (match o with
          | Var y -> (
            match Vfg.Graph.find g (Vfg.Graph.Top y) with
            | Some id -> need id
            | None -> ())
          | Cst _ | Undef -> ())
        | Alloc a ->
          Item.add plan i.lbl After (Item.Set_mem_object (a.adst, a.initialized))
        | _ -> ())
      p;
  (* Degradation ladder: with a non-empty distrust set the guided plan must
     interoperate with full (MSan) instrumentation inside the distrusted
     functions. Shadow memory is already kept accurate program-wide by the
     overlay above; here we fix up the calling protocol across the trust
     boundary, then overlay the full item set onto each distrusted function
     ([Item.add] deduplicates, so overlap with guided items is harmless). *)
  (match distrusted with
  | None -> ()
  | Some dset when Hashtbl.length dset = 0 -> ()
  | Some dset ->
    let is_distrusted fn = Hashtbl.mem dset fn in
    let need_var y =
      match Vfg.Graph.find g (Vfg.Graph.Top y) with
      | Some id -> need id
      | None -> ()
    in
    (* Trusted functions callable from a distrusted caller. *)
    let callees_of_d : (fname, unit) Hashtbl.t = Hashtbl.create 16 in
    P.iter_instrs
      (fun f _ i ->
        match i.kind with
        | Call { cdst; cargs; _ } ->
          let targets = Analysis.Callgraph.site_callees bld.cg i.lbl in
          if is_distrusted f.fname then
            List.iter
              (fun t ->
                if not (is_distrusted t) then Hashtbl.replace callees_of_d t ())
              targets
          else if List.exists is_distrusted targets then begin
            (* Trusted caller into distrusted callee: pass every argument
               shadow ([⊥-Para] source side — the callee's full entry items
               read sigma_g) and consume the return shadow the callee's
               full instrumentation relays. *)
            List.iteri
              (fun idx arg ->
                Item.add plan i.lbl Before (Item.Set_global (idx, arg));
                match arg with
                | Var y -> need_var y
                | Cst _ | Undef -> ())
              cargs;
            match cdst with Some x -> need_var x | None -> ()
          end
        | _ -> ())
      p;
    (* Trusted callees of distrusted callers: relay return shadows (the
       caller's full instrumentation reads sigma_g[rs] after the call) and
       make the callee honor the sigma_g argument protocol on entry. *)
    Hashtbl.iter
      (fun gname () ->
        emit_ret_relays gname;
        List.iter
          (fun (_, ro) ->
            match ro with Some (Var y) -> need_var y | _ -> ())
          (Option.value ~default:[] (Hashtbl.find_opt bld.ret_operands gname));
        List.iter need_var (P.get_func p gname).params)
      callees_of_d;
    Hashtbl.iter
      (fun fn _ -> Full.instrument_func plan (P.get_func p fn))
      dset);
  while not (Queue.is_empty work) do
    process (Queue.pop work)
  done;
  let needed_nodes = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 needed in
  { plan; needed_nodes; opt1_simplified = !simplified }
