(** Guided instrumentation — the paper's key contribution (§3.4, Figure 7).

    Starting from the uses at critical operations, instrumentation-item
    sets propagate backwards over the VFG: ⊥-nodes are instrumented as in
    full instrumentation and pass the requirement on; ⊤-nodes whose shadow
    can be strongly updated emit a single [sigma := T] and cut the
    propagation; ⊤-nodes that cannot (weak/semi-strong stores, call chis,
    memory phis, virtual parameters) pass the requirement through their
    memory dependencies.

    Opt I (value-flow simplification, §3.5.1) is folded in: a needed ⊥
    top-level node whose must-flow closure has interior structure reads the
    conjunction of its ⊥ sources directly. *)

type options = { opt1 : bool }

type result = {
  plan : Item.plan;
  needed_nodes : int;    (** VFG nodes reached — Table 1's %B numerator *)
  opt1_simplified : int; (** closures simplified — Table 1's "S" column *)
}

(** [distrusted] lists functions whose static results are no longer
    trusted (budget blown or a phase faulted on them): they receive the
    full (MSan) item set via {!Full.instrument_func}, every store
    program-wide keeps shadow memory accurate, and the calling protocol is
    relayed across the trust boundary. Degradation only ever adds items. *)
val build :
  ?options:options ->
  ?distrusted:(Ir.Types.fname, unit) Hashtbl.t ->
  Vfg.Build.t ->
  Vfg.Resolve.gamma ->
  result
