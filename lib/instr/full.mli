(** Full shadow instrumentation — the MSan baseline (§2.2): every value is
    shadowed, every statement gets a shadow statement, every critical
    operation gets a check. Exactly the ⊥ rule set of Figure 7 applied to
    every node. *)

open Ir.Types

(** Shadow of an operand (constants are T, undef is F). *)
val op_shadow : operand -> Item.shadow_rhs

(** Conjunction of operand shadows. *)
val conj_of : operand list -> Item.shadow_rhs

(** Add the full (MSan) item set for one function to an existing plan.
    [Item.add] deduplicates, so overlaying this on a guided plan is safe —
    the degradation ladder uses it to distrust individual functions. *)
val instrument_func : Item.plan -> Ir.Types.func -> unit

val build : Ir.Prog.t -> Item.plan
