(* Full shadow instrumentation — the MSan baseline (§2.2): every value is
   shadowed, every statement gets a shadow statement, every critical
   operation gets a check. This is exactly the ⊥ rule set of Figure 7
   applied to every node. *)

open Ir.Types
module P = Ir.Prog

let op_shadow (o : operand) : Item.shadow_rhs =
  match o with
  | Var v -> Item.Rvar v
  | Cst _ -> Item.Rconst true
  | Undef -> Item.Rconst false

let conj_of (ops : operand list) : Item.shadow_rhs =
  let vars = List.filter_map (function Var v -> Some v | _ -> None) ops in
  if List.exists (function Undef -> true | _ -> false) ops then Item.Rconst false
  else if vars = [] then Item.Rconst true
  else Item.Rconj vars

let check_if_var (plan : Item.plan) lbl (o : operand) =
  match o with
  | Var _ | Undef -> Item.add plan lbl Item.Before (Item.Check o)
  | Cst _ -> ()

let instrument_func (plan : Item.plan) (f : func) : unit =
  let rs = plan.ret_slot in
  (* [⊥-Para] destination side. *)
  List.iteri
    (fun i prm -> Item.add_entry plan f.fname (Item.Set_var (prm, Item.Rglobal i)))
    f.params;
  Ir.Func.iter_instrs
    (fun _ i ->
      let lbl = i.lbl in
      match i.kind with
      | Const (x, _) -> Item.add plan lbl After (Item.Set_var (x, Item.Rconst true))
      | Copy (x, o) -> Item.add plan lbl After (Item.Set_var (x, op_shadow o))
      | Unop (x, _, o) -> Item.add plan lbl After (Item.Set_var (x, conj_of [ o ]))
      | Binop (x, _, o1, o2) ->
        Item.add plan lbl After (Item.Set_var (x, conj_of [ o1; o2 ]))
      | Phi (x, arms) -> Item.add plan lbl After (Item.Set_var (x, Item.Rphi arms))
      | Global_addr (x, _) | Func_addr (x, _) | Input x ->
        Item.add plan lbl After (Item.Set_var (x, Item.Rconst true))
      | Field_addr (x, y, _) ->
        Item.add plan lbl After (Item.Set_var (x, conj_of [ Var y ]))
      | Index_addr (x, y, o) ->
        Item.add plan lbl After (Item.Set_var (x, conj_of [ Var y; o ]))
      | Alloc a ->
        (* [⊥-Alloc]: pointer defined; object shadow set to T or F. *)
        Item.add plan lbl After (Item.Set_var (a.adst, Item.Rconst true));
        Item.add plan lbl After (Item.Set_mem_object (a.adst, a.initialized))
      | Load (x, y) ->
        (* [⊥-Check] on the pointer + [⊥-Load]. *)
        check_if_var plan lbl (Var y);
        Item.add plan lbl After (Item.Set_var (x, Item.Rmem y))
      | Store (x, o) ->
        check_if_var plan lbl (Var x);
        Item.add plan lbl After (Item.Set_mem (x, Item.Mop o))
      | Call { cdst; cargs; _ } ->
        (* [⊥-Para] source side + [⊥-Ret] destination side. *)
        List.iteri
          (fun idx arg -> Item.add plan lbl Before (Item.Set_global (idx, arg)))
          cargs;
        (match cdst with
        | Some x -> Item.add plan lbl After (Item.Set_var (x, Item.Rglobal rs))
        | None -> ())
      | Output _ -> ())
    f;
  Array.iter
    (fun b ->
      match b.term.tkind with
      | Br (o, _, _) -> check_if_var plan b.term.tlbl o
      | Ret o ->
        (* [⊥-Ret] source side: relay the return value's shadow. *)
        let sh = match o with Some op -> op | None -> Cst 0 in
        Item.add plan b.term.tlbl Before (Item.Set_global (rs, sh))
      | Jmp _ -> ())
    f.blocks

let build (p : P.t) : Item.plan =
  let plan = Item.empty_plan p in
  P.iter_funcs (instrument_func plan) p;
  plan
