(* Fuzzing subsystem: generator well-formedness, pretty/parse round-trip
   over generated programs, and campaign determinism. *)

open Helpers

(* ---- round-trip: parse (pretty p) = p over the fuzz generator ---- *)

let roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"fuzz-gen pretty/parse round-trip"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = Audit.Gen.program ~seed () in
      let src = Tinyc.Pretty.program_to_string p in
      let p2 = Tinyc.Parser.parse_program src in
      if p <> p2 then
        QCheck.Test.fail_reportf "seed %d does not round-trip:\n%s" seed src
      else true)

(* ---- well-formedness: 500 seeds lower, analyze and interpret ---- *)

let wf_limits =
  { Runtime.Interp.max_steps = 2_000_000; max_objects = 100_000; max_depth = 1_000 }

let test_wellformed_500 () =
  for seed = 0 to 499 do
    let src = Audit.Gen.source ~seed () in
    let prog =
      try front src
      with e ->
        Alcotest.failf "seed %d does not lower (%s):\n%s" seed
          (Printexc.to_string e) src
    in
    let o =
      try Runtime.Interp.run_native ~limits:wf_limits prog
      with e ->
        Alcotest.failf "seed %d does not interpret (%s):\n%s" seed
          (Printexc.to_string e) src
    in
    check_bool "terminates within fuel" true (o.steps <= wf_limits.max_steps)
  done

(* The full pipeline (pointer analysis through plans) accepts generated
   programs too — fewer seeds, it is the expensive half. *)
let test_analyzable () =
  for seed = 500 to 539 do
    let src = Audit.Gen.source ~seed () in
    try ignore (analyze src)
    with e ->
      Alcotest.failf "seed %d does not analyze (%s):\n%s" seed
        (Printexc.to_string e) src
  done

(* Generated programs actually contain ground-truth undefined uses often
   enough to be interesting fuzz inputs. *)
let test_gen_is_interesting () =
  let with_gt = ref 0 in
  for seed = 0 to 99 do
    let o = Runtime.Interp.run_native ~limits:wf_limits (front (Audit.Gen.source ~seed ())) in
    if Runtime.Interp.gt_use_labels o <> [] then incr with_gt
  done;
  check_bool
    (Printf.sprintf "enough seeds read undef values (%d/100)" !with_gt)
    true
    (!with_gt >= 30)

(* ---- determinism ---- *)

let test_gen_deterministic () =
  for seed = 0 to 49 do
    let a = Audit.Gen.program ~seed () in
    let b = Audit.Gen.program ~seed () in
    check_bool "same seed, same AST" true (a = b)
  done;
  (* distinct seeds are not all the same program *)
  let distinct =
    List.init 20 (fun s -> Audit.Gen.source ~seed:s ())
    |> List.sort_uniq compare |> List.length
  in
  check_bool "seeds differ" true (distinct >= 15)

let test_campaign_seed_order_free () =
  (* campaign seeds depend only on (seed, index), and don't collide in
     practice for a realistic campaign *)
  let seeds = List.init 1000 (fun i -> Audit.Gen.campaign_seed ~seed:42 i) in
  check_int "no collisions" 1000 (List.length (List.sort_uniq compare seeds));
  check_bool "pure function of (seed, index)" true
    (Audit.Gen.campaign_seed ~seed:7 123 = Audit.Gen.campaign_seed ~seed:7 123)

(* ---- fingerprints ---- *)

let test_fingerprint () =
  check_int "bucket 0" 0 (Audit.Fingerprint.bucket 0);
  check_int "bucket 1" 1 (Audit.Fingerprint.bucket 1);
  check_int "bucket 2" 2 (Audit.Fingerprint.bucket 2);
  check_int "bucket 7" 3 (Audit.Fingerprint.bucket 7);
  check_int "bucket 8" 4 (Audit.Fingerprint.bucket 8);
  let fp = Audit.Fingerprint.of_report (Audit.Oracle.check (Audit.Gen.source ~seed:3 ())) in
  check_bool "fingerprint is non-empty" true (fp <> []);
  check_bool "fingerprint is sorted and duplicate-free" true
    (fp = List.sort_uniq compare fp);
  let fp2 =
    Audit.Fingerprint.of_report (Audit.Oracle.check (Audit.Gen.source ~seed:3 ()))
  in
  check_bool "fingerprint is a pure function of the program" true (fp = fp2);
  let seen = Hashtbl.create 16 in
  check_bool "everything is novel against an empty corpus" true
    (Audit.Fingerprint.novel ~seen fp = fp);
  Audit.Fingerprint.remember ~seen fp;
  check_bool "nothing is novel the second time" true
    (Audit.Fingerprint.novel ~seen fp = [])

(* ---- incident dedup ---- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let scratch name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "usher-test-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  dir

let test_incident_dedup () =
  let dir = scratch "dedup" in
  let mk seed =
    Audit.Incident.make ~kind:Audit.Incident.Soundness_miss ~variant:"Usher"
      ~seed ~mutation:"" ~functions:[ "f" ] ~labels:[ 3 ] ~knobs:""
      ~source:"int main() { return 0; }\n" ()
  in
  (* the id is derived from the canonical repro, not the seed that
     reached it: the same hole found twice merges into one artifact *)
  let a = mk 2 and b = mk 1 in
  check_str "same canonical program, same id" a.Audit.Incident.id
    b.Audit.Incident.id;
  let p1 = Audit.Incident.save ~dir a in
  let p2 = Audit.Incident.save ~dir b in
  check_str "one file, not two" p1 p2;
  (match Audit.Incident.load p1 with
  | Ok t ->
    check_int "hits accumulate" 2 t.Audit.Incident.hits;
    (* merge keeps the smallest evidence regardless of save order *)
    check_int "evidence is the smallest (seed, source)" 1 t.Audit.Incident.seed
  | Error e -> Alcotest.fail e);
  rm_rf dir

let test_incident_pre_hits_format () =
  (* artifacts written before the hits counter existed have no "hits"
     line; they must still load (checksum intact) and count as one hit *)
  let payload =
    "id deadbeef4321\nkind soundness-miss\nvariant Usher\nseed 4\n\
     mutation \nfunctions f\nlabels 3\nknobs \nsource 10\nabcdefghij\n\
     reduced -\n"
  in
  let s =
    Printf.sprintf "usher-incident 1\nchecksum %s\n%s"
      (Digest.to_hex (Digest.string payload))
      payload
  in
  match Audit.Incident.of_string s with
  | Ok t ->
    check_int "defaults to one hit" 1 t.Audit.Incident.hits;
    check_str "source survives" "abcdefghij" t.Audit.Incident.source
  | Error e -> Alcotest.failf "pre-hits artifact rejected: %s" e

(* ---- campaign determinism across fan-out ---- *)

let test_fuzz_jobs_deterministic () =
  (* same seed, different --jobs: identical incidents (ids, hits,
     evidence), quarantine lists, corpus members and summary counts *)
  let run jobs tag =
    let dir = scratch ("fuzzdet-" ^ tag) in
    let corpus = scratch ("fuzzdet-c" ^ tag) in
    let cfg =
      {
        Audit.Fuzz.default_config with
        count = 12;
        seed = 9;
        jobs;
        dir;
        corpus = Some corpus;
        distill = true;
        hole = Some "fz";
        log = ignore;
      }
    in
    let s = Audit.Fuzz.run cfg in
    let incidents =
      List.map
        (fun (i : Audit.Incident.t) ->
          (i.id, i.variant, i.hits, i.seed, i.reduced))
        s.incidents
    in
    let corpus_files =
      List.map
        (fun f -> (f, Digest.file (Filename.concat corpus f)))
        (Audit.Fuzz.corpus_members corpus)
    in
    let artifact_names =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> f <> "quarantine.lock")
      |> List.sort compare
    in
    let outcome =
      ( (s.generated, s.audited, s.skipped, s.soundness_incidents, s.distilled),
        incidents,
        s.quarantined,
        corpus_files,
        artifact_names )
    in
    rm_rf dir;
    rm_rf corpus;
    outcome
  in
  let seq = run 1 "j1" in
  let par = run 4 "j4" in
  check_bool "jobs 1 and jobs 4 produce identical campaigns" true (seq = par);
  let (_, _, _, soundness, _), incidents, quarantined, _, _ = seq in
  check_bool "the seeded hole was found" true (soundness > 0);
  check_bool "misses were ddmin-reduced" true
    (List.exists (fun (_, _, _, _, reduced) -> reduced <> None) incidents);
  check_bool "offending functions were quarantined" true (quarantined <> [])

let suites =
  [
    ( "fuzz-gen",
      [
        QCheck_alcotest.to_alcotest roundtrip_prop;
        tc "500-seed well-formedness" test_wellformed_500;
        tc "generated programs analyze" test_analyzable;
        tc "generated programs read undef" test_gen_is_interesting;
        tc "generator is deterministic" test_gen_deterministic;
        tc "campaign seeds are order-free" test_campaign_seed_order_free;
      ] );
    ( "fuzz-run",
      [
        tc "coverage fingerprints" test_fingerprint;
        tc "incidents dedup by checksum" test_incident_dedup;
        tc "pre-hits artifacts still load" test_incident_pre_hits_format;
        tc "campaigns are jobs-independent" test_fuzz_jobs_deterministic;
      ] );
  ]
