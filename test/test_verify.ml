(* The certifying verifier layer (lib/verify): independent replay checkers
   for the points-to solution, the memory SSA and the VFG/Γ fixpoints.

   Unit tests pin both directions: clean analyses — hand programs and the
   stock SPEC analogs — must verify with zero violations, and each
   corruption mode (pts-bitflip, drop-vfg-edge, gamma-flip) must be caught
   by exactly the matching checker, both at the checker level and through
   the pipeline's --verify path where the violation feeds the degradation
   ladder. The qcheck property asserts the Pta completeness argument:
   clearing ANY set points-to bit of a solved instance breaks some
   replayed constraint. *)

open Helpers
module A = Analysis.Andersen

let knobs = Usher.Config.default_knobs
let vknobs = { knobs with Usher.Config.verify = true }

let corrupt phase c =
  { Usher.Config.fphase = phase; ffunc = None; fkind = Usher.Config.Corrupt c }

let undef_src =
  "int id(int x) { return x; }\n\
   int main() { int u; int y = id(u); if (y > 0) { print(1); } return 0; }"

(* An undefined use in a program that also has points-to facts: pure
   scalar programs have empty points-to sets, leaving pts-bitflip nothing
   to corrupt. *)
let ptr_undef_src =
  "int main() { int u; int a = 1; int *p = &a; *p = 2;\n\
   if (u + *p > 0) { print(1); } return 0; }"

let heap_src =
  "struct N { int v; struct N *next; };\n\
   struct N *mk(int v) {\n\
  \  struct N *n = (struct N *)malloc(sizeof(struct N));\n\
  \  n->v = v; n->next = 0; return n; }\n\
   int main() {\n\
  \  struct N *h = 0; int i;\n\
  \  for (i = 0; i < 4; i = i + 1) { struct N *n = mk(i); n->next = h; h = n; }\n\
  \  int s = 0; while (h != 0) { s = s + h->v; h = h->next; }\n\
  \  print(s); return 0; }"

let array_src =
  "int g[16];\n\
   void fill(int *a, int n) { int i; for (i = 0; i < n; i = i + 1) { a[i] = i; } }\n\
   int main() { fill(g, 16); print(g[7]); return 0; }"

(* Run the full checker battery over a finished (undegraded) analysis. *)
let reports_of (a : Usher.Pipeline.analysis) =
  let gi suffix build gamma =
    {
      Verify.Run.gi_suffix = suffix;
      gi_build = build;
      gi_gamma = Some gamma;
      gi_allow_f_pins = false;
    }
  in
  Verify.Run.check_all a.prog a.pa a.cg a.mr a.mssa
    [ gi "" a.vfg a.gamma; gi "-tl" a.vfg_tl a.gamma_tl ]

let check_clean what (a : Usher.Pipeline.analysis) =
  let reports = reports_of a in
  check_int (what ^ ": six reports") 6 (List.length reports);
  List.iter
    (fun (r : Verify.Report.t) ->
      check_int
        (Printf.sprintf "%s: %s violations" what r.checker)
        0
        (Verify.Report.nviolations r);
      check_bool (Printf.sprintf "%s: %s replayed facts" what r.checker) true
        (r.checked > 0))
    reports

(* Every variant still detects the undefined use and preserves outputs —
   a rejected certificate must degrade, never un-instrument. *)
let check_sound ?(src = undef_src) knobs =
  let prog, a = analyze ~knobs src in
  let native = Runtime.Interp.run_native prog in
  check_bool "has a ground-truth use" true (Hashtbl.length native.gt_uses > 0);
  List.iter
    (fun v ->
      let plan, _ = Usher.Pipeline.plan_for a v in
      let o = Runtime.Interp.run_plan prog plan in
      check_ints (Usher.Config.variant_name v ^ " outputs") native.outputs
        o.outputs;
      Hashtbl.iter
        (fun l () ->
          check_bool
            (Printf.sprintf "%s covers l%d" (Usher.Config.variant_name v) l)
            true
            (Usher.Experiment.covered prog o.detections l))
        native.gt_uses)
    Usher.Config.all_variants;
  a

let has_event (a : Usher.Pipeline.analysis) needle =
  let contains hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.exists (fun ev -> contains (Usher.Degrade.to_string ev)) !(a.events)

let clean_tests =
  [
    tc "hand programs verify green" (fun () ->
        List.iter
          (fun (name, src) ->
            let _, a = analyze src in
            check_clean name a)
          [ ("undef", undef_src); ("heap", heap_src); ("array", array_src) ]);
    tc "stock workloads verify green (scale 2)" (fun () ->
        List.iter
          (fun (p : Workloads.Profile.t) ->
            let src = Workloads.Spec2000.source ~scale:2 p in
            let _, a = analyze src in
            check_clean p.pname a)
          Workloads.Spec2000.all);
    tc "--verify pipeline: reports present, nothing degraded" (fun () ->
        let _, a = analyze ~knobs:vknobs undef_src in
        check_int "six reports" 6 (List.length a.verify_reports);
        check_bool "all ok" true (Verify.Run.all_ok a.verify_reports);
        check_bool "no events" true (!(a.events) = []);
        check_bool "not degraded" false a.degraded_all;
        List.iter
          (fun (r : Verify.Report.t) ->
            check_bool (r.checker ^ " wall time recorded") true (r.wall_s >= 0.0))
          a.verify_reports);
    tc "verify off: no reports" (fun () ->
        let _, a = analyze undef_src in
        check_bool "empty" true (a.verify_reports = []));
    tc "analysis stats carry per-checker rows" (fun () ->
        let prog, a = analyze ~knobs:vknobs undef_src in
        ignore prog;
        let t = Usher.Analysis_stats.compute ~src:undef_src a in
        check_int "six rows" 6 (List.length t.verify_checkers);
        List.iter
          (fun (_, _, viols) -> check_int "clean row" 0 viols)
          t.verify_checkers);
  ]

(* ---- checker-level detection: corrupt one artifact directly ---------- *)

let artifacts src =
  let prog = Usher.Pipeline.front src in
  let pa = A.run prog in
  let cg = Analysis.Callgraph.build prog pa in
  let mr = Analysis.Modref.compute prog pa cg in
  let mssa = Memssa.build prog pa cg mr in
  let vfg = Vfg.Build.build prog pa cg mr mssa in
  let gamma = Vfg.Resolve.resolve vfg.graph in
  (prog, pa, cg, mr, mssa, vfg, gamma)

let checker_tests =
  [
    tc "pts-bitflip caught by Pta, not by Ssa/Vfg" (fun () ->
        let prog, pa, _, _, _, _, _ = artifacts heap_src in
        check_bool "clean first" true (Verify.Report.ok (Verify.Pta.check prog pa));
        check_bool "corrupted" true (Usher.Fault.corrupt_pts pa <> None);
        let r = Verify.Pta.check prog pa in
        check_bool "pta rejects" false (Verify.Report.ok r);
        check_bool "located message" true
          (List.length (Verify.Report.errors r) >= 1));
    tc "drop-vfg-edge caught by the structure checker" (fun () ->
        let _, _, _, _, _, vfg, _ = artifacts heap_src in
        check_bool "clean first" true
          (Verify.Report.ok (Verify.Vfg.check_structure vfg));
        check_bool "corrupted" true (Usher.Fault.corrupt_vfg vfg.graph <> None);
        let r = Verify.Vfg.check_structure vfg in
        check_bool "vfg rejects" false (Verify.Report.ok r));
    tc "gamma-flip caught by the Γ checker with a witness" (fun () ->
        let _, _, _, _, _, vfg, gamma = artifacts heap_src in
        check_bool "clean first" true
          (Verify.Report.ok (Verify.Vfg.check_gamma vfg gamma));
        check_bool "corrupted" true (Usher.Fault.corrupt_gamma gamma <> None);
        let r = Verify.Vfg.check_gamma vfg gamma in
        check_bool "gamma rejects" false (Verify.Report.ok r));
    tc "corruption specs round-trip" (fun () ->
        List.iter
          (fun s ->
            match Usher.Fault.of_spec s with
            | Ok f -> check_str "round trip" s (Usher.Fault.to_string f)
            | Error e -> Alcotest.fail e)
          [
            "andersen=pts-bitflip"; "vfg=drop-vfg-edge"; "resolve=gamma-flip";
          ]);
  ]

(* ---- pipeline integration: violations feed the ladder ---------------- *)

let pipeline_tests =
  [
    tc "pts-bitflip: pta rejection degrades everything, stays sound" (fun () ->
        let k =
          {
            vknobs with
            Usher.Config.inject =
              [ corrupt Diag.Andersen Usher.Config.Pts_bitflip ];
          }
        in
        let a = check_sound ~src:ptr_undef_src k in
        check_bool "degraded_all" true a.Usher.Pipeline.degraded_all;
        check_bool "unverified pta event" true (has_event a "unverified pta");
        let pta =
          List.find
            (fun (r : Verify.Report.t) -> r.checker = "pta")
            a.verify_reports
        in
        check_bool "pta flagged" false (Verify.Report.ok pta));
    tc "drop-vfg-edge: structure rejection distrusts the function" (fun () ->
        let k =
          {
            vknobs with
            Usher.Config.inject =
              [ corrupt Diag.Vfg_build Usher.Config.Drop_vfg_edge ];
          }
        in
        let a = check_sound k in
        check_bool "not degraded_all" false a.Usher.Pipeline.degraded_all;
        check_bool "unverified vfg event" true (has_event a "unverified vfg");
        check_bool "something distrusted" true
          (Usher.Pipeline.distrusted_functions a <> []));
    tc "gamma-flip: Γ rejection degrades to all-undefined, stays sound"
      (fun () ->
        let k =
          {
            vknobs with
            Usher.Config.inject =
              [ corrupt Diag.Resolve Usher.Config.Gamma_flip ];
          }
        in
        let a = check_sound k in
        check_bool "not degraded_all" false a.Usher.Pipeline.degraded_all;
        check_bool "unverified gamma event" true
          (has_event a "unverified gamma");
        (* the rejected Γ fell to all-⊥ *)
        let n = Vfg.Graph.nnodes a.Usher.Pipeline.vfg.Vfg.Build.graph in
        let bot = ref 0 in
        for id = 0 to n - 1 do
          if Vfg.Resolve.is_undef a.Usher.Pipeline.gamma id then incr bot
        done;
        check_int "all bottom" n !bot);
    tc "corruption without --verify goes unnoticed by the pipeline" (fun () ->
        (* the damage is real but nothing checks it: analyze must not
           degrade; a post-hoc reports_of then catches it *)
        let k =
          {
            knobs with
            Usher.Config.inject =
              [ corrupt Diag.Andersen Usher.Config.Pts_bitflip ];
          }
        in
        let _, a = analyze ~knobs:k ptr_undef_src in
        check_bool "no events" true (!(a.events) = []);
        check_bool "no reports" true (a.verify_reports = []);
        let pta = Verify.Pta.check a.prog a.pa in
        check_bool "post-hoc check catches it" false (Verify.Report.ok pta));
  ]

(* ---- property: any cleared pts bit is detected ----------------------- *)

(* Enumerate every set bit of every representative node's points-to set,
   pick one by the seed, clear it, and re-run the Pta replay. The
   completeness argument (see lib/verify/pta.ml) says the FIRST derivation
   of the cleared fact is now a violated constraint, so the checker must
   reject — for any bit, on any program. *)
let pts_bitflip_detected_prop seed =
  let src = Test_properties.gen_program seed in
  let prog = Usher.Pipeline.front src in
  let pa = A.run prog in
  let nnodes =
    if pa.A.wpn = 0 then 0 else Array.length pa.A.pts_words / pa.A.wpn
  in
  let bits = ref [] in
  for n = 0 to nnodes - 1 do
    if pa.A.repr.(n) = n then
      for w = 0 to pa.A.wpn - 1 do
        let word = pa.A.pts_words.((n * pa.A.wpn) + w) in
        for b = 0 to 62 do
          if word land (1 lsl b) <> 0 then bits := (n, w, b) :: !bits
        done
      done
  done;
  match !bits with
  | [] -> true (* no points-to facts at all: nothing to corrupt *)
  | all ->
    let n, w, b = List.nth all (abs seed mod List.length all) in
    let idx = (n * pa.A.wpn) + w in
    pa.A.pts_words.(idx) <- pa.A.pts_words.(idx) lxor (1 lsl b);
    Array.fill pa.A.pts_cache 0 (Array.length pa.A.pts_cache) None;
    not (Verify.Report.ok (Verify.Pta.check prog pa))

(* And the converse sanity: the replay itself is deterministic — a clean
   solution verifies green twice in a row (the checker must not mutate
   what it checks). *)
let pta_idempotent_prop seed =
  let src = Test_properties.gen_program seed in
  let prog = Usher.Pipeline.front src in
  let pa = A.run prog in
  Verify.Report.ok (Verify.Pta.check prog pa)
  && Verify.Report.ok (Verify.Pta.check prog pa)

let prop = Test_properties.prop

let suites =
  [
    ("verify.clean", clean_tests);
    ("verify.checkers", checker_tests @ pipeline_tests);
    ( "verify.properties",
      [
        prop "clearing any set pts bit is always detected" 60
          pts_bitflip_detected_prop;
        prop "clean solutions verify green, repeatedly" 30 pta_idempotent_prop;
      ] );
  ]
