(* Equivalence properties for the PR's performance work: the optimized
   solvers must be *observably identical* to their reference paths.

   1. Andersen with online cycle elimination (the default) vs the textbook
      difference-propagation worklist ([~cycle_elim:false]): identical
      points-to sets for every variable and location, identical resolved
      callees at every call site.
   2. Definedness resolution over the Eintra-SCC condensation (the
      default) vs the node-level search ([~condense:false]): identical Γ,
      context-sensitive and -insensitive alike.

   Both are checked on qcheck-generated programs (reusing the generator of
   {!Test_properties}) and on deterministic SPEC-analog workloads. Plus
   unit tests for the {!Analysis.Bitset} primitives the solver leans on. *)

open Helpers

module A = Analysis.Andersen

(* ---- Andersen: cycle elimination is invisible ------------------------- *)

let pa_observables (prog : Ir.Prog.t) (pa : A.t) =
  let nvars = Ir.Prog.nvars prog in
  let pts = List.init nvars (fun v -> A.pts_var_list pa v) in
  let calls = ref [] in
  Ir.Prog.iter_instrs
    (fun _ _ i ->
      match i.Ir.Types.kind with
      | Ir.Types.Call _ ->
        calls := (i.lbl, List.sort compare (A.call_targets pa i)) :: !calls
      | _ -> ())
    prog;
  (pts, List.sort compare !calls)

let andersen_equal (prog : Ir.Prog.t) : bool =
  let fast = A.run prog in
  let naive = A.run ~cycle_elim:false prog in
  pa_observables prog fast = pa_observables prog naive

let andersen_equiv_prop seed =
  andersen_equal (front (Test_properties.gen_program seed))

(* ---- resolution: condensation is invisible ---------------------------- *)

let resolve_equal (graph : Vfg.Graph.t) : bool =
  List.for_all
    (fun cs ->
      let ref_g =
        Vfg.Resolve.resolve ~condense:false ~context_sensitive:cs graph
      in
      let opt_g =
        Vfg.Resolve.resolve ~condense:true ~context_sensitive:cs graph
      in
      ref_g.undef = opt_g.undef)
    [ true; false ]

let resolve_equiv_prop seed =
  let _, a = analyze (Test_properties.gen_program seed) in
  resolve_equal a.vfg.graph && resolve_equal a.vfg_tl.graph

let prop name count f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count Test_properties.arbitrary_seed f)

(* ---- deterministic SPEC-analog equivalence ---------------------------- *)

let spec_equiv name () =
  let p = Workloads.Spec2000.find name in
  let src = Workloads.Spec2000.source ~scale:3 p in
  let prog, a = analyze src in
  check_bool "andersen cycle-elim ≡ naive" true (andersen_equal prog);
  check_bool "resolution condensed ≡ node-level" true
    (resolve_equal a.vfg.graph);
  (* The fast paths must also report their work: on a cyclic graph the
     condensation actually collapses something. *)
  check_bool "condensation collapsed at least one SCC" true
    (a.gamma.condensed_sccs >= 0)

(* ---- bitset primitives ------------------------------------------------ *)

let bs_of xs =
  let b = Analysis.Bitset.create () in
  List.iter (fun x -> ignore (Analysis.Bitset.add b x)) xs;
  b

let bitset_union_sizing () =
  let module B = Analysis.Bitset in
  (* src occupying three words: union_into must size dst from src's highest
     *set* element (not allocated capacity) and keep growth minimal. *)
  let src = bs_of [ 0; 63; 126 ] in
  let dst = B.create () in
  check_bool "changed" true (B.union_into ~src ~dst);
  check_ints "elements" [ 0; 63; 126 ] (B.elements dst);
  check_bool "capacity covers max elt, stays small" true
    (B.capacity_words dst >= 126 / B.word_bits + 1
    && B.capacity_words dst <= 2 * (126 / B.word_bits + 1));
  check_bool "idempotent" false (B.union_into ~src ~dst);
  (* unioning an empty set never grows or changes the destination *)
  let empty = B.create () in
  check_bool "empty union no-op" false (B.union_into ~src:empty ~dst)

let bitset_max_elt () =
  let module B = Analysis.Bitset in
  check_bool "empty" true (B.max_elt (B.create ()) = None);
  check_bool "singleton" true (B.max_elt (bs_of [ 5 ]) = Some 5);
  check_bool "multi-word" true (B.max_elt (bs_of [ 0; 63; 126 ]) = Some 126);
  check_bool "after reset" true
    (let b = bs_of [ 70 ] in
     B.reset b;
     B.max_elt b = None)

let bitset_iter_diff () =
  let module B = Analysis.Bitset in
  let collect src old =
    let acc = ref [] in
    B.iter_diff (fun x -> acc := x :: !acc) ~src ~old;
    List.rev !acc
  in
  check_ints "diff" [ 1; 100 ] (collect (bs_of [ 1; 5; 100 ]) (bs_of [ 5 ]));
  check_ints "old superset" [] (collect (bs_of [ 5 ]) (bs_of [ 1; 5; 100 ]));
  check_ints "old empty" [ 2; 64 ] (collect (bs_of [ 2; 64 ]) (B.create ()))

let bitset_union_delta () =
  let module B = Analysis.Bitset in
  let src = bs_of [ 1; 64; 200 ] in
  let dst = bs_of [ 64 ] in
  let delta = B.create () in
  check_bool "changed" true (B.union_into_delta ~src ~dst ~delta);
  check_ints "dst" [ 1; 64; 200 ] (B.elements dst);
  check_ints "delta is the new elements only" [ 1; 200 ] (B.elements delta);
  check_bool "second union unchanged" false
    (B.union_into_delta ~src ~dst ~delta)

let suites =
  [
    ( "equivalence",
      [
        prop "andersen: cycle elimination preserves pts and callees" 60
          andersen_equiv_prop;
        prop "resolution: SCC condensation preserves Γ" 60 resolve_equiv_prop;
        tc "spec analog 164.gzip: optimized ≡ reference" (spec_equiv "164.gzip");
        tc "spec analog 197.parser: optimized ≡ reference"
          (spec_equiv "197.parser");
        tc "bitset: union_into sizing" bitset_union_sizing;
        tc "bitset: max_elt" bitset_max_elt;
        tc "bitset: iter_diff" bitset_iter_diff;
        tc "bitset: union_into_delta" bitset_union_delta;
      ] );
  ]
