(* The resilience ladder under fire: resource budgets, injected faults and
   the soundness guarantee that degradation only ever ADDS instrumentation.

   Unit tests pin each rung of the ladder on known programs; the qcheck
   properties then assert, over random programs and random faults, that
   the pipeline always returns a plan, instrumented runs preserve
   behaviour, every ground-truth undefined use stays reported, and the
   budgeted plan's check set dominates the unbudgeted one. *)

open Helpers

let knobs = Usher.Config.default_knobs

let inject faults = { knobs with Usher.Config.inject = faults }
let crash ?func phase = { Usher.Config.fphase = phase; ffunc = func; fkind = Usher.Config.Crash }
let exhaust ?func phase = { Usher.Config.fphase = phase; ffunc = func; fkind = Usher.Config.Exhaust }

let undef_src =
  "int id(int x) { return x; }\n\
   int main() { int u; int y = id(u); if (y > 0) { print(1); } return 0; }"

(* Every variant still detects the undefined use and preserves outputs. *)
let check_sound ?(src = undef_src) knobs =
  let prog, a = analyze ~knobs src in
  let native = Runtime.Interp.run_native prog in
  check_bool "has a ground-truth use" true (Hashtbl.length native.gt_uses > 0);
  List.iter
    (fun v ->
      let plan, _ = Usher.Pipeline.plan_for a v in
      let o = Runtime.Interp.run_plan prog plan in
      check_ints (Usher.Config.variant_name v ^ " outputs") native.outputs o.outputs;
      Hashtbl.iter
        (fun l () ->
          check_bool
            (Printf.sprintf "%s covers l%d" (Usher.Config.variant_name v) l)
            true
            (Usher.Experiment.covered prog o.detections l))
        native.gt_uses)
    Usher.Config.all_variants;
  a

let ladder_tests =
  [
    tc "rung 4: zero wall-clock budget degrades everything, stays sound" (fun () ->
        let a = check_sound { knobs with Usher.Config.budget_ms = Some 0 } in
        check_bool "degraded_all" true a.Usher.Pipeline.degraded_all;
        check_bool "events recorded" true (!(a.Usher.Pipeline.events) <> []));
    tc "rung 4: zero Andersen fuel degrades everything" (fun () ->
        (* needs at least one points-to constraint for the solver to burn *)
        let src =
          "int main() { int u; int a = 1; int *p = &a; *p = 2;\n\
           if (u + *p > 0) { print(1); } return 0; }"
        in
        let a = check_sound ~src { knobs with Usher.Config.solver_fuel = Some 0 } in
        check_bool "degraded_all" true a.Usher.Pipeline.degraded_all);
    tc "rung 4: callgraph crash degrades everything" (fun () ->
        let a = check_sound (inject [ crash Diag.Callgraph ]) in
        check_bool "degraded_all" true a.Usher.Pipeline.degraded_all);
    tc "rung 4: mod/ref crash degrades everything" (fun () ->
        let a = check_sound (inject [ crash Diag.Modref ]) in
        check_bool "degraded_all" true a.Usher.Pipeline.degraded_all);
    tc "rung 3: memssa fault on one function distrusts only it" (fun () ->
        let a = check_sound (inject [ crash ~func:"id" Diag.Memssa ]) in
        check_bool "not degraded_all" false a.Usher.Pipeline.degraded_all;
        check_bool "id distrusted" true
          (Usher.Pipeline.distrusted_functions a = [ "id" ]));
    tc "rung 3: vfg exhaustion on one function distrusts only it" (fun () ->
        let a = check_sound (inject [ exhaust ~func:"main" Diag.Vfg_build ]) in
        check_bool "not degraded_all" false a.Usher.Pipeline.degraded_all;
        check_bool "main distrusted" true
          (Usher.Pipeline.distrusted_functions a = [ "main" ]));
    tc "rung 3: tiny VFG node cap distrusts functions, stays sound" (fun () ->
        let a = check_sound { knobs with Usher.Config.vfg_node_cap = Some 1 } in
        check_bool "something distrusted" true
          (Usher.Pipeline.distrusted_functions a <> []));
    tc "rung 2: resolution fault degrades Γ to all-undefined" (fun () ->
        let a = check_sound (inject [ crash Diag.Resolve ]) in
        check_bool "not degraded_all" false a.Usher.Pipeline.degraded_all;
        check_bool "nothing distrusted" true
          (Usher.Pipeline.distrusted_functions a = []);
        (* all-⊥ Γ: every node of the full graph is undefined *)
        let n = Vfg.Graph.nnodes a.Usher.Pipeline.vfg.Vfg.Build.graph in
        let bot = ref 0 in
        for id = 0 to n - 1 do
          if Vfg.Resolve.is_undef a.Usher.Pipeline.gamma id then incr bot
        done;
        check_int "all bottom" n !bot);
    tc "rung 2: resolve fuel of one state degrades Γ, stays sound" (fun () ->
        let a = check_sound { knobs with Usher.Config.resolve_fuel = Some 1 } in
        check_bool "events recorded" true (!(a.Usher.Pipeline.events) <> []));
    tc "rung 1: Opt II fault keeps the redundant checks" (fun () ->
        let a = check_sound (inject [ crash Diag.Opt2 ]) in
        check_int "no redirections" 0 a.Usher.Pipeline.opt2.Vfg.Opt2.redirected);
    tc "instrument fault degrades that plan to full" (fun () ->
        let a = check_sound (inject [ crash Diag.Instrument ]) in
        (* the guided plans all fell back to full: same check count as MSan *)
        let checks v =
          (Instr.Item.stats_of (fst (Usher.Pipeline.plan_for a v))).Instr.Item.checks
        in
        check_int "tl = msan" (checks Usher.Config.Msan) (checks Usher.Config.Usher_tl));
    tc "optimizer fault falls back to a fresh unoptimized lowering" (fun () ->
        let k = inject [ crash Diag.Optim ] in
        let prog, events =
          Usher.Pipeline.front_guarded ~level:Optim.Pipeline.O2 ~knobs:k undef_src
        in
        check_bool "one event" true (List.length events = 1);
        Ir.Verify.check_ssa prog;
        (* behaves exactly like a plain unoptimized lowering *)
        let native = Runtime.Interp.run_native prog in
        let raw = Runtime.Interp.run_native (Tinyc.Lower.compile undef_src) in
        check_ints "outputs" raw.outputs native.outputs);
    tc "degradation events are ordered and printable" (fun () ->
        let _, a =
          analyze
            ~knobs:(inject [ crash ~func:"id" Diag.Memssa; crash Diag.Opt2 ])
            undef_src
        in
        let contains hay needle =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        let evs = List.map Usher.Degrade.to_string !(a.Usher.Pipeline.events) in
        check_int "two events" 2 (List.length evs);
        check_bool "first names memssa/id" true
          (contains (List.nth evs 0) "memssa/id"));
  ]

let spec_tests =
  [
    tc "197.parser's seeded bug survives full degradation" (fun () ->
        let p = Workloads.Spec2000.find "197.parser" in
        let src = Workloads.Spec2000.source ~scale:10 p in
        let a =
          check_sound ~src { knobs with Usher.Config.budget_ms = Some 0 }
        in
        check_bool "degraded_all" true a.Usher.Pipeline.degraded_all);
  ]

let fault_spec_tests =
  [
    tc "fault spec round-trips" (fun () ->
        List.iter
          (fun s ->
            match Usher.Fault.of_spec s with
            | Ok f -> check_str "round trip" s (Usher.Fault.to_string f)
            | Error e -> Alcotest.fail e)
          [ "andersen=crash"; "memssa:main=exhaust"; "resolve=exhaust" ]);
    tc "fault spec defaults to crash" (fun () ->
        match Usher.Fault.of_spec "opt2" with
        | Ok f -> check_bool "crash" true (f.Usher.Config.fkind = Usher.Config.Crash)
        | Error e -> Alcotest.fail e);
    tc "fault spec rejects junk" (fun () ->
        check_bool "bad phase" true (Result.is_error (Usher.Fault.of_spec "nope"));
        check_bool "bad kind" true
          (Result.is_error (Usher.Fault.of_spec "memssa=explode")));
  ]

(* ---- properties ------------------------------------------------------- *)

(* A deterministic fault derived from the qcheck seed: any phase of the
   analysis, crash or exhaustion, whole-phase or aimed at one function. *)
let fault_of_seed seed : Usher.Config.fault =
  let phases =
    [ Diag.Optim; Diag.Andersen; Diag.Callgraph; Diag.Modref; Diag.Memssa;
      Diag.Vfg_build; Diag.Resolve; Diag.Opt2; Diag.Instrument ]
  in
  let fphase = List.nth phases (seed mod List.length phases) in
  let fkind = if seed / 16 mod 2 = 0 then Usher.Config.Crash else Usher.Config.Exhaust in
  let ffunc =
    (* only per-function phases consult function-scoped faults *)
    if (fphase = Diag.Memssa || fphase = Diag.Vfg_build) && seed / 32 mod 2 = 0
    then Some "main"
    else None
  in
  { Usher.Config.fphase; ffunc; fkind }

let fault_soundness_prop seed =
  let src = Test_properties.gen_program seed in
  let fault = fault_of_seed seed in
  let k = inject [ fault ] in
  let prog, events = Usher.Pipeline.front_guarded ~knobs:k src in
  let a = Usher.Pipeline.analyze ~knobs:k prog in
  ignore events;
  let native = Runtime.Interp.run_native prog in
  List.for_all
    (fun v ->
      let plan, _ = Usher.Pipeline.plan_for a v in
      let o = Runtime.Interp.run_plan prog plan in
      let reported l =
        if v = Usher.Config.Usher_full then
          Usher.Experiment.covered prog o.detections l
        else Hashtbl.mem o.detections l
      in
      o.outputs = native.outputs
      && Hashtbl.fold (fun l () acc -> acc && reported l) native.gt_uses true)
    Usher.Config.all_variants

(* Degradation monotonically adds checks: with "main" distrusted, the plan's
   check set contains every check of the undisturbed guided plan outside
   main, and exactly MSan's checks inside main. *)
let degradation_monotone_prop seed =
  let src = Test_properties.gen_program seed in
  let prog, a0 = analyze src in
  let k = inject [ crash ~func:"main" Diag.Memssa ] in
  let a1 = Usher.Pipeline.analyze ~knobs:k prog in
  let func_of : (int, string) Hashtbl.t = Hashtbl.create 256 in
  Ir.Prog.iter_instrs
    (fun f _ i -> Hashtbl.replace func_of i.Ir.Types.lbl f.Ir.Types.fname)
    prog;
  Ir.Prog.iter_terms
    (fun f _ t -> Hashtbl.replace func_of t.Ir.Types.tlbl f.Ir.Types.fname)
    prog;
  let checks plan =
    let acc = ref [] in
    Array.iteri
      (fun lbl items ->
        List.iter
          (fun (it : Instr.Item.item) ->
            match it.act with
            | Instr.Item.Check op -> acc := (lbl, op) :: !acc
            | _ -> ())
          items)
      plan.Instr.Item.items;
    List.sort_uniq compare !acc
  in
  let in_main (lbl, _) = Hashtbl.find_opt func_of lbl = Some "main" in
  let msan = checks (fst (Usher.Pipeline.plan_for a0 Usher.Config.Msan)) in
  List.for_all
    (fun v ->
      let c0 = checks (fst (Usher.Pipeline.plan_for a0 v)) in
      let c1 = checks (fst (Usher.Pipeline.plan_for a1 v)) in
      (* outside the distrusted function: the degraded plan only adds *)
      List.for_all
        (fun c -> in_main c || List.mem c c1)
        c0
      (* inside it: exactly the MSan checks *)
      && List.filter in_main c1 = List.filter in_main msan)
    [ Usher.Config.Usher_tl; Usher_tl_at; Usher_opt1; Usher_full ]

let prop = Test_properties.prop

let suites =
  [
    ( "faults.ladder", ladder_tests @ spec_tests @ fault_spec_tests );
    ( "faults.properties",
      [
        prop "any injected fault: plan exists, behaviour kept, nothing missed"
          80 fault_soundness_prop;
        prop "degradation monotonically adds checks" 60 degradation_monotone_prop;
      ] );
  ]
