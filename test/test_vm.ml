(* The bytecode VM against the reference interpreter.

   The contract under test is total outcome equivalence: for any program
   and any instrumentation plan, [Vm.Exec.run (Vm.Lower.lower cp)] must
   produce an [Interp.outcome] that is field-for-field identical to
   [Interp.run cp] — outputs, exit value, step count, every cost-model
   counter, and the detection / ground-truth label sets — and must fail
   identically too (same [Runtime_error] message, same
   [Resource_exhausted] payload). Unit tests pin known programs, the
   degradation rungs, limit parity and the disassembler round-trip; the
   qcheck properties then drive randomly generated programs through
   every variant and through seeded degradation rungs. *)

open Helpers
module RI = Runtime.Interp

let labels tbl =
  Hashtbl.fold (fun l () acc -> l :: acc) tbl [] |> List.sort compare

let outcome_diff (a : RI.outcome) (b : RI.outcome) : string list =
  let module C = Runtime.Counters in
  let ca = a.counters and cb = b.counters in
  let d = ref [] in
  let chk name x y =
    if x <> y then d := Printf.sprintf "%s (%d vs %d)" name x y :: !d
  in
  if a.outputs <> b.outputs then d := "outputs" :: !d;
  chk "exit_value" a.exit_value b.exit_value;
  chk "steps" a.steps b.steps;
  chk "alu" ca.C.alu cb.C.alu;
  chk "mem" ca.C.mem cb.C.mem;
  chk "branch" ca.C.branch cb.C.branch;
  chk "call" ca.C.call cb.C.call;
  chk "alloc" ca.C.alloc cb.C.alloc;
  chk "alloc_cells" ca.C.alloc_cells cb.C.alloc_cells;
  chk "io" ca.C.io cb.C.io;
  chk "sh_reg" ca.C.sh_reg cb.C.sh_reg;
  chk "sh_reg_reads" ca.C.sh_reg_reads cb.C.sh_reg_reads;
  chk "sh_mem" ca.C.sh_mem cb.C.sh_mem;
  chk "sh_obj" ca.C.sh_obj cb.C.sh_obj;
  chk "sh_obj_cells" ca.C.sh_obj_cells cb.C.sh_obj_cells;
  chk "sh_check" ca.C.sh_check cb.C.sh_check;
  if labels a.detections <> labels b.detections then d := "detections" :: !d;
  if labels a.gt_uses <> labels b.gt_uses then d := "gt_uses" :: !d;
  !d

(* Both engines on one compiled program; any differing field fails. *)
let equiv ?limits what (cp : RI.cprog) =
  let oi = RI.run ?limits cp in
  let ov = Vm.Exec.run ?limits (Vm.Lower.lower cp) in
  match outcome_diff oi ov with
  | [] -> ()
  | ds ->
    Alcotest.failf "%s: engines disagree on %s" what (String.concat ", " ds)

(* Every variant plus the uninstrumented program. *)
let equiv_all_variants ?(knobs = Usher.Config.default_knobs) what src =
  let prog, a = analyze ~knobs src in
  equiv (what ^ "/native") (RI.compile prog (Instr.Item.empty_plan prog));
  List.iter
    (fun v ->
      let plan, _ = Usher.Pipeline.plan_for a v in
      equiv
        (what ^ "/" ^ Usher.Config.variant_name v)
        (RI.compile prog plan))
    Usher.Config.all_variants

let undef_src =
  "int id(int x) { return x; }\n\
   int main() { int u; int y = id(u); if (y > 0) { print(1); } return 0; }"

let heap_src =
  "struct P { int px; int py; };\n\
   int main() { struct P *p = (struct P*)malloc(sizeof(struct P));\n\
  \  p->px = 3; int s = 0; int i;\n\
  \  for (i = 0; i < 4; i = i + 1) { int *q = (int*)malloc(2); *q = i; s = s \
   + *q + p->px; }\n\
  \  print(s); return 0; }"

(* The degradation ladder: each rung reshapes every variant's plan, and
   the VM must track the interpreter through all of them. *)
let rungs =
  let crash phase =
    { Usher.Config.fphase = phase; ffunc = None; fkind = Usher.Config.Crash }
  in
  let k = Usher.Config.default_knobs in
  [
    ("budget-0", { k with Usher.Config.budget_ms = Some 0 });
    ("fuel-0", { k with Usher.Config.solver_fuel = Some 0 });
    ("resolve-crash", { k with Usher.Config.inject = [ crash Diag.Resolve ] });
    ( "callgraph-crash",
      { k with Usher.Config.inject = [ crash Diag.Callgraph ] } );
    ("vfg-cap-0", { k with Usher.Config.vfg_node_cap = Some 0 });
  ]

let unit_tests =
  [
    tc "all variants agree on the undefined-use program" (fun () ->
        equiv_all_variants "undef" undef_src);
    tc "all variants agree on heap allocation in a loop" (fun () ->
        equiv_all_variants "heap" heap_src);
    tc "all variants agree on the 164.gzip analog" (fun () ->
        equiv_all_variants "gzip"
          (Workloads.Spec2000.source ~scale:2
             (Workloads.Spec2000.find "164.gzip")));
    tc "every degradation rung agrees" (fun () ->
        List.iter
          (fun (name, knobs) -> equiv_all_variants ~knobs name undef_src)
          rungs);
  ]

(* ---- failure parity -------------------------------------------------- *)

let run_to_failure ?limits run cp : string =
  match run ?limits cp with
  | (_ : RI.outcome) -> "no failure"
  | exception RI.Runtime_error m -> "runtime_error: " ^ m
  | exception RI.Resource_exhausted { what; limit } ->
    Printf.sprintf "exhausted %s at %d" what limit

let failure_parity ?limits what src =
  let prog = front src in
  let cp = RI.compile prog (Instr.Item.empty_plan prog) in
  let bp = Vm.Lower.lower cp in
  let fi = run_to_failure ?limits RI.run cp in
  let fv = run_to_failure ?limits (fun ?limits bp -> Vm.Exec.run ?limits bp) bp in
  check_str what fi fv;
  fi

let failure_tests =
  [
    tc "steps limit: identical Resource_exhausted" (fun () ->
        let f =
          failure_parity
            ~limits:{ RI.default_limits with RI.max_steps = 1000 }
            "steps" "int main() { while (1) { } return 0; }"
        in
        check_str "is the steps limit" "exhausted steps at 1000" f);
    tc "depth limit: identical Resource_exhausted" (fun () ->
        let f =
          failure_parity
            ~limits:{ RI.default_limits with RI.max_depth = 64 }
            "depth" "int f(int n) { return f(n + 1); }\n\
                     int main() { return f(0); }"
        in
        check_str "is the depth limit" "exhausted call depth at 64" f);
    tc "objects limit: identical Resource_exhausted" (fun () ->
        let f =
          failure_parity
            ~limits:{ RI.default_limits with RI.max_objects = 16 }
            "objects"
            "int main() { int i;\n\
            \  for (i = 0; i < 100; i = i + 1) { int *q = (int*)malloc(1); \
             *q = i; }\n\
            \  return 0; }"
        in
        check_str "is the object limit" "exhausted objects at 16" f);
    tc "out-of-bounds access: identical Runtime_error" (fun () ->
        let f =
          failure_parity "oob"
            "int main() { int *p = (int*)malloc(4); return p[9]; }"
        in
        check_bool "is a runtime error" true
          (String.length f > 14 && String.sub f 0 14 = "runtime_error:"));
  ]

(* ---- bytecode container ---------------------------------------------- *)

let disasm_tests =
  [
    tc "disassembly reassembles to the same code stream" (fun () ->
        let prog, a = analyze ~knobs:Usher.Config.default_knobs heap_src in
        let plan, _ = Usher.Pipeline.plan_for a Usher.Config.Msan in
        let bp = Vm.Lower.lower (RI.compile prog plan) in
        Array.iter
          (fun (f : Vm.Bytecode.func) ->
            let back = Vm.Bytecode.asm (Vm.Bytecode.disasm f) in
            check_bool (f.fname ^ " round-trips") true (back = f.code))
          bp.funcs);
    tc "every emitted opcode has a mnemonic and operand count" (fun () ->
        check_int "mnemonics" Vm.Bytecode.n_opcodes
          (Array.length Vm.Bytecode.mnemonics);
        check_int "operand counts" Vm.Bytecode.n_opcodes
          (Array.length Vm.Bytecode.operand_counts));
    tc "engine names round-trip" (fun () ->
        List.iter
          (fun e ->
            check_bool (Vm.Engine.name e) true
              (Vm.Engine.of_string (Vm.Engine.name e) = Some e))
          [ Vm.Engine.Interp; Vm.Engine.Vm ];
        check_bool "unknown rejected" true
          (Vm.Engine.of_string "threaded" = None));
  ]

(* ---- properties ------------------------------------------------------ *)

let arbitrary_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000)

let prop name count f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arbitrary_seed f)

let property_tests =
  [
    prop "vm ≡ interp on generated programs, all variants" 40 (fun seed ->
        equiv_all_variants
          (Printf.sprintf "gen-%d" seed)
          (Audit.Gen.source ~seed ());
        true);
    prop "vm ≡ interp under seeded degradation rungs" 25 (fun seed ->
        let name, knobs = List.nth rungs (seed mod List.length rungs) in
        equiv_all_variants ~knobs
          (Printf.sprintf "gen-%d/%s" seed name)
          (Audit.Gen.source ~seed ());
        true);
    prop "vm ≡ interp under tight step limits" 15 (fun seed ->
        (* run both engines into (or just past) the limit wall: whichever
           side of it the program lands on, the outcome or the exception
           must match *)
        let prog = front (Audit.Gen.source ~seed ()) in
        let cp = RI.compile prog (Instr.Item.empty_plan prog) in
        let bp = Vm.Lower.lower cp in
        let limits = { RI.default_limits with RI.max_steps = 200 } in
        (match
           ( RI.run ~limits cp,
             Vm.Exec.run ~limits bp )
         with
        | oi, ov ->
          (match outcome_diff oi ov with
          | [] -> ()
          | ds ->
            Alcotest.failf "gen-%d: engines disagree on %s" seed
              (String.concat ", " ds))
        | exception _ ->
          let fi = run_to_failure ~limits RI.run cp in
          let fv =
            run_to_failure ~limits
              (fun ?limits bp -> Vm.Exec.run ?limits bp)
              bp
          in
          check_str (Printf.sprintf "gen-%d failure" seed) fi fv);
        true);
  ]

let suites =
  [
    ("vm.equiv", unit_tests);
    ("vm.failures", failure_tests);
    ("vm.bytecode", disasm_tests);
    ("vm.properties", property_tests);
  ]
