(* Aggregated test runner: `dune runtest` executes every suite.
   USHER_PROP_SEED=<n> runs the soundness property on one generator seed,
   dumping any counterexample to /tmp/usher_failing_program.txt. *)
let () =
  match Sys.getenv_opt "USHER_PROP_SEED" with
  | Some s ->
    let ok = Test_properties.soundness_prop (int_of_string s) in
    Printf.printf "seed %s: soundness %b\n" s ok;
    exit (if ok then 0 else 1)
  | None -> ()

let () =
  Alcotest.run "usher"
    (Test_frontend.suites @ Test_ir.suites @ Test_analysis.suites
    @ Test_optim.suites @ Test_memssa.suites @ Test_vfg.suites
    @ Test_instr.suites @ Test_interp.suites @ Test_workloads.suites
    @ Test_opts.suites @ Test_misc.suites @ Test_properties.suites
    @ Test_faults.suites @ Test_audit.suites @ Test_equiv.suites
    @ Test_obs.suites @ Test_verify.suites @ Test_serve.suites
    @ Test_fuzz.suites @ Test_vm.suites @ Test_summary.suites)
