(* lib/obs: monotonic clock, metrics registry, span tracer — plus the
   regression guarantee that tracing is observationally inert (a traced
   pipeline run produces byte-identical analysis results) and the
   parallel_map fail-fast/backtrace/order contract. *)

open Helpers

let check_float = Alcotest.(check (float 1e-9))

(* ---------------------------------------------------------------- *)
(* Clock                                                             *)
(* ---------------------------------------------------------------- *)

let clock_tests =
  [
    tc "now_ns is monotonic" (fun () ->
        let prev = ref (Obs.Clock.now_ns ()) in
        for _ = 1 to 1000 do
          let t = Obs.Clock.now_ns () in
          check_bool "non-decreasing" true (t >= !prev);
          prev := t
        done);
    tc "elapsed_ns clamps at zero" (fun () ->
        let future = Obs.Clock.now_ns () + 1_000_000_000 in
        check_int "clamped" 0 (Obs.Clock.elapsed_ns future));
    tc "elapsed_s clamps at zero" (fun () ->
        check_bool "clamped" true (Obs.Clock.elapsed_s (Obs.Clock.now_s () +. 60.) = 0.));
    tc "span_s clamps negative spans" (fun () ->
        check_float "backwards" 0. (Obs.Clock.span_s ~t0:2.0 ~t1:1.0);
        check_float "forwards" 1.5 (Obs.Clock.span_s ~t0:0.5 ~t1:2.0));
    tc "now_s tracks now_ns" (fun () ->
        let ns = Obs.Clock.now_ns () in
        let s = Obs.Clock.now_s () in
        let dt = s -. (float_of_int ns *. 1e-9) in
        check_bool "within 1s" true (dt >= 0. && dt < 1.0));
  ]

(* ---------------------------------------------------------------- *)
(* Metrics                                                           *)
(* ---------------------------------------------------------------- *)

let metrics_tests =
  [
    tc "counter find-or-register returns one cell" (fun () ->
        let a = Obs.Metrics.counter "test.m.shared" in
        let b = Obs.Metrics.counter "test.m.shared" in
        let v0 = Obs.Metrics.counter_value a in
        Obs.Metrics.incr a;
        Obs.Metrics.add b 2;
        check_int "merged" (v0 + 3) (Obs.Metrics.counter_value a));
    tc "kind mismatch raises" (fun () ->
        ignore (Obs.Metrics.counter "test.m.kind");
        check_bool "raises" true
          (try
             ignore (Obs.Metrics.gauge "test.m.kind");
             false
           with Invalid_argument _ -> true));
    tc "gauge set and set_max" (fun () ->
        let g = Obs.Metrics.gauge "test.m.gauge" in
        Obs.Metrics.set g 4.0;
        Obs.Metrics.set_max g 2.0;
        check_float "max keeps high water" 4.0 (Obs.Metrics.gauge_value g);
        Obs.Metrics.set_max g 9.0;
        check_float "max raises" 9.0 (Obs.Metrics.gauge_value g));
    tc "bucket_of log2 boundaries" (fun () ->
        check_int "v=0" 0 (Obs.Metrics.bucket_of 0);
        check_int "v<0" 0 (Obs.Metrics.bucket_of (-7));
        check_int "v=1" 1 (Obs.Metrics.bucket_of 1);
        check_int "v=2" 2 (Obs.Metrics.bucket_of 2);
        check_int "v=3" 2 (Obs.Metrics.bucket_of 3);
        check_int "v=4" 3 (Obs.Metrics.bucket_of 4);
        check_int "v=1024" 11 (Obs.Metrics.bucket_of 1024);
        (* OCaml's max_int is 2^62 - 1: bit-length 62, still under the cap *)
        check_int "v=max_int" 62 (Obs.Metrics.bucket_of max_int);
        check_bool "cap" true (Obs.Metrics.bucket_of max_int <= Obs.Metrics.nbuckets - 1));
    tc "bucket_lower inverts bucket_of" (fun () ->
        for i = 1 to 40 do
          check_int "lower bound lands in its bucket" i
            (Obs.Metrics.bucket_of (Obs.Metrics.bucket_lower i))
        done);
    tc "histogram snapshot totals" (fun () ->
        let h = Obs.Metrics.histogram "test.m.hist" in
        List.iter (Obs.Metrics.observe h) [ 1; 1; 3; 100; 0; -2; 4096 ];
        let v = List.assoc "test.m.hist" (Obs.Metrics.snapshot ()) in
        (match v with
        | Obs.Metrics.Histogram { count; sum; buckets } ->
          check_int "count" 7 count;
          (* negatives clamp to 0 in the sum *)
          check_int "sum" (1 + 1 + 3 + 100 + 0 + 0 + 4096) sum;
          check_int "bucket counts cover every sample" 7
            (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
          List.iter
            (fun (lo, n) ->
              check_bool "nonzero only" true (n > 0);
              check_bool "lower bound is a power-of-2 edge" true
                (lo = 0 || lo = Obs.Metrics.bucket_lower (Obs.Metrics.bucket_of lo)))
            buckets
        | _ -> Alcotest.fail "expected histogram"));
    tc "snapshot is sorted by name" (fun () ->
        ignore (Obs.Metrics.counter "test.m.zzz");
        ignore (Obs.Metrics.counter "test.m.aaa");
        let names = List.map fst (Obs.Metrics.snapshot ()) in
        check_bool "sorted" true (names = List.sort compare names));
    tc "updates merge across domains" (fun () ->
        let c = Obs.Metrics.counter "test.m.domains" in
        let h = Obs.Metrics.histogram "test.m.domains.h" in
        let v0 = Obs.Metrics.counter_value c in
        let worker () =
          for i = 1 to 1000 do
            Obs.Metrics.incr c;
            Obs.Metrics.observe h i
          done
        in
        let ds = List.init 3 (fun _ -> Domain.spawn worker) in
        worker ();
        List.iter Domain.join ds;
        check_int "counter total" (v0 + 4000) (Obs.Metrics.counter_value c);
        match List.assoc "test.m.domains.h" (Obs.Metrics.snapshot ()) with
        | Obs.Metrics.Histogram { count; sum; _ } ->
          check_bool "hist count" true (count >= 4000);
          check_bool "hist sum" true (sum >= 4 * (1000 * 1001 / 2))
        | _ -> Alcotest.fail "expected histogram");
    tc "reset zeroes values but keeps handles" (fun () ->
        let c = Obs.Metrics.counter "test.m.reset" in
        Obs.Metrics.add c 5;
        Obs.Metrics.reset ();
        check_int "zeroed" 0 (Obs.Metrics.counter_value c);
        Obs.Metrics.incr c;
        check_int "still live" 1 (Obs.Metrics.counter_value c));
  ]

let qcheck_bucket =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(1 -- 0x3FFFFFFF) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"bucket bounds contain the sample" arb
       (fun v ->
         let b = Obs.Metrics.bucket_of v in
         let lo = Obs.Metrics.bucket_lower b in
         let hi =
           if b + 1 >= Obs.Metrics.nbuckets then max_int
           else Obs.Metrics.bucket_lower (b + 1)
         in
         lo <= v && v < hi))

(* ---------------------------------------------------------------- *)
(* Trace: span discipline and JSON                                   *)
(* ---------------------------------------------------------------- *)

(* Run [f] with tracing on; always stop and clear afterwards so the
   tracer never leaks into other suites. *)
let traced f =
  Obs.Trace.start ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.stop ();
      Obs.Trace.clear ())
    f

(* Per-tid stack discipline: every 'E' closes the innermost open 'B' of
   the same name; at the end every stack is empty. *)
let balanced (evs : Obs.Trace.event list) : bool =
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 7 in
  let ok = ref true in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let st = Option.value ~default:[] (Hashtbl.find_opt stacks e.tid) in
      match e.ph with
      | 'B' -> Hashtbl.replace stacks e.tid (e.name :: st)
      | 'E' -> (
        match st with
        | top :: rest when top = e.name -> Hashtbl.replace stacks e.tid rest
        | _ -> ok := false)
      | _ -> ())
    evs;
  Hashtbl.iter (fun _ st -> if st <> [] then ok := false) stacks;
  !ok

(* Minimal recursive-descent JSON validator: checks the whole string is
   one well-formed JSON value (strict strings, numbers, nesting). *)
let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let adv () = incr pos in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then adv () else fail () in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      adv ();
      skip_ws ()
    | _ -> ()
  in
  let lit w =
    String.iter (fun c -> if peek () = Some c then adv () else fail ()) w
  in
  let pstring () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail ()
      | Some '"' -> adv ()
      | Some '\\' -> (
        adv ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          adv ();
          go ()
        | Some 'u' ->
          adv ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> adv ()
            | _ -> fail ()
          done;
          go ()
        | _ -> fail ())
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ ->
        adv ();
        go ()
    in
    go ()
  in
  let digits () =
    match peek () with
    | Some ('0' .. '9') ->
      let rec go () =
        match peek () with
        | Some ('0' .. '9') ->
          adv ();
          go ()
        | _ -> ()
      in
      go ()
    | _ -> fail ()
  in
  let pnumber () =
    if peek () = Some '-' then adv ();
    digits ();
    if peek () = Some '.' then begin
      adv ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      adv ();
      (match peek () with Some ('+' | '-') -> adv () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> pstring ()
    | Some ('-' | '0' .. '9') -> pnumber ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> fail ()
  and comma_sep close each =
    skip_ws ();
    if peek () = Some close then adv ()
    else begin
      each ();
      let rec rest () =
        skip_ws ();
        match peek () with
        | Some ',' ->
          adv ();
          each ();
          rest ()
        | Some c when c = close -> adv ()
        | _ -> fail ()
      in
      rest ()
    end
  and arr () =
    expect '[';
    comma_sep ']' value
  and obj () =
    expect '{';
    comma_sep '}' (fun () ->
        skip_ws ();
        pstring ();
        skip_ws ();
        expect ':';
        value ())
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let trace_tests =
  [
    tc "disabled tracer records nothing" (fun () ->
        Obs.Trace.clear ();
        check_bool "off" false (Obs.Trace.enabled ());
        let r = Obs.Trace.with_span "t.noop" (fun () -> 41 + 1) in
        Obs.Trace.instant "t.noop.i";
        Obs.Trace.counter "t.noop.c" [ ("v", Obs.Trace.Int 1) ];
        check_int "transparent" 42 r;
        check_int "no events" 0 (List.length (Obs.Trace.events ())));
    tc "spans nest balanced" (fun () ->
        traced (fun () ->
            Obs.Trace.with_span "t.outer" (fun () ->
                Obs.Trace.with_span "t.inner" (fun () -> ());
                Obs.Trace.with_span "t.inner2" (fun () ->
                    Obs.Trace.instant "t.mark"));
            let evs = Obs.Trace.events () in
            let count ph =
              List.length (List.filter (fun (e : Obs.Trace.event) -> e.ph = ph) evs)
            in
            check_int "three begins" 3 (count 'B');
            check_int "three ends" 3 (count 'E');
            check_int "one instant" 1 (count 'i');
            check_bool "stack discipline" true (balanced evs)));
    tc "span closed when body raises" (fun () ->
        traced (fun () ->
            (try Obs.Trace.with_span "t.boom" (fun () -> failwith "boom")
             with Failure _ -> ());
            check_bool "balanced after raise" true (balanced (Obs.Trace.events ()))));
    tc "events are sorted by timestamp" (fun () ->
        traced (fun () ->
            for i = 0 to 9 do
              Obs.Trace.with_span (Printf.sprintf "t.s%d" i) (fun () -> ())
            done;
            let ts =
              List.map (fun (e : Obs.Trace.event) -> e.ts_ns) (Obs.Trace.events ())
            in
            check_bool "sorted" true (ts = List.sort compare ts)));
    tc "trace JSON is valid, args and escapes included" (fun () ->
        traced (fun () ->
            Obs.Trace.with_span ~cat:"test"
              ~args:
                [
                  ("s", Obs.Trace.Str "quote\" slash\\ newline\n tab\t ctrl\x01");
                  ("i", Obs.Trace.Int (-42));
                  ("f", Obs.Trace.Float 2.5);
                ]
              "t.json" (fun () -> ());
            let s = Obs.Trace.to_json_string () in
            check_bool "valid JSON" true (json_valid s);
            check_bool "has traceEvents" true
              (String.length s > 20 && String.sub s 0 16 = "{\"traceEvents\":[")));
    tc "write emits a parseable file" (fun () ->
        traced (fun () ->
            Obs.Trace.with_span "t.file" (fun () -> Obs.Trace.instant "t.file.i");
            let path = Filename.temp_file "usher_trace" ".json" in
            Fun.protect
              ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
              (fun () ->
                Obs.Trace.write path;
                let ic = open_in_bin path in
                let len = in_channel_length ic in
                let s = really_input_string ic len in
                close_in ic;
                check_bool "file is valid JSON" true (json_valid s))));
    tc "multi-domain spans stay balanced per tid" (fun () ->
        traced (fun () ->
            let worker () =
              for i = 0 to 20 do
                Obs.Trace.with_span (Printf.sprintf "t.w%d" i) (fun () ->
                    Obs.Trace.with_span "t.wi" (fun () -> ()))
              done
            in
            let ds = List.init 3 (fun _ -> Domain.spawn worker) in
            worker ();
            List.iter Domain.join ds;
            let evs = Obs.Trace.events () in
            let tids =
              List.sort_uniq compare
                (List.map (fun (e : Obs.Trace.event) -> e.tid) evs)
            in
            check_bool "several domains recorded" true (List.length tids >= 2);
            check_bool "balanced everywhere" true (balanced evs);
            check_bool "whole log serializes" true
              (json_valid (Obs.Trace.to_json_string ()))));
  ]

let qcheck_nesting =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"random span trees stay balanced" arb
       (fun seed ->
         let st = Random.State.make [| seed |] in
         traced (fun () ->
             let rec grow depth =
               if depth < 5 && Random.State.int st 3 > 0 then
                 Obs.Trace.with_span
                   (Printf.sprintf "t.q%d" (Random.State.int st 8))
                   (fun () ->
                     for _ = 1 to Random.State.int st 3 do
                       grow (depth + 1)
                     done;
                     if Random.State.bool st then Obs.Trace.instant "t.qi")
             in
             for _ = 1 to 10 do
               grow 0
             done;
             let evs = Obs.Trace.events () in
             balanced evs && json_valid (Obs.Trace.to_json_string ()))))

(* ---------------------------------------------------------------- *)
(* Tracing is observationally inert on the real pipeline             *)
(* ---------------------------------------------------------------- *)

let regression_src =
  "int helper(int x) { int u; if (x > 3) { u = 1; } return u + x; }\n\
   int main() { int i; int s = 0;\n\
   for (i = 0; i < 8; i = i + 1) { s = s + helper(i); }\n\
   print(s); return 0; }"

(* Everything deterministic about an experiment: the Table 1 statistics
   minus the wall-clock fields, plus per-variant outcomes. *)
let fingerprint (e : Usher.Experiment.t) =
  let t1 = { e.table1 with analysis_time_s = 0.; analysis_mem_mb = 0. } in
  let per_variant =
    List.map
      (fun (r : Usher.Experiment.variant_result) ->
        ( Usher.Config.variant_name r.variant,
          r.static_stats,
          r.dynamic_shadow_ops,
          List.sort compare r.detections,
          r.compressed_away ))
      e.results
  in
  (t1, e.native_outputs, List.sort compare e.gt_uses, per_variant)

let regression_tests =
  [
    tc "traced experiment == untraced experiment" (fun () ->
        (* check_soundness off: the helper's undef use is input-dependent *)
        let plain =
          Usher.Experiment.run ~name:"reg" ~check_soundness:false regression_src
        in
        let traced_run =
          traced (fun () ->
              Usher.Experiment.run ~name:"reg" ~check_soundness:false
                regression_src)
        in
        check_bool "identical analysis + dynamic results" true
          (fingerprint plain = fingerprint traced_run));
    tc "traced pipeline emits a span per phase" (fun () ->
        traced (fun () ->
            let e =
              Usher.Experiment.run ~name:"reg" ~check_soundness:false
                regression_src
            in
            let evs = Obs.Trace.events () in
            let has name =
              List.exists
                (fun (ev : Obs.Trace.event) -> ev.ph = 'B' && ev.name = name)
                evs
            in
            check_bool "experiment span" true (has "experiment.reg");
            check_bool "frontend span" true (has "phase.frontend");
            check_bool "analyze span" true (has "pipeline.analyze");
            List.iter
              (fun (phase, _) ->
                check_bool ("phase span: " ^ phase) true (has ("phase." ^ phase)))
              e.analysis.phase_times_s;
            check_bool "trace serializes" true
              (json_valid (Obs.Trace.to_json_string ()))));
    tc "phase times are non-negative" (fun () ->
        let e =
          Usher.Experiment.run ~name:"reg" ~check_soundness:false regression_src
        in
        List.iter
          (fun (phase, dt) ->
            check_bool ("phase >= 0: " ^ phase) true (dt >= 0.))
          e.analysis.phase_times_s);
  ]

(* ---------------------------------------------------------------- *)
(* parallel_map: order, exceptions, fail-fast                        *)
(* ---------------------------------------------------------------- *)

exception Worker_boom of int

let parallel_tests =
  [
    tc "preserves input order" (fun () ->
        let xs = List.init 100 Fun.id in
        check_ints "squares in order"
          (List.map (fun x -> x * x) xs)
          (Usher.Experiment.parallel_map ~jobs:4 (fun x -> x * x) xs));
    tc "jobs=1 degenerates to List.map" (fun () ->
        check_ints "identity" [ 2; 4; 6 ]
          (Usher.Experiment.parallel_map ~jobs:1 (fun x -> 2 * x) [ 1; 2; 3 ]));
    tc "worker exception propagates to the caller" (fun () ->
        check_bool "original exception" true
          (try
             ignore
               (Usher.Experiment.parallel_map ~jobs:4
                  (fun x -> if x = 17 then raise (Worker_boom x) else x)
                  (List.init 64 Fun.id));
             false
           with Worker_boom 17 -> true));
    tc "failure is fail-fast" (fun () ->
        let executed = Atomic.make 0 in
        let n = 50_000 in
        (try
           ignore
             (Usher.Experiment.parallel_map ~jobs:2
                (fun x ->
                  if x = 0 then failwith "early"
                  else begin
                    Atomic.incr executed;
                    x
                  end)
                (List.init n Fun.id))
         with Failure _ -> ());
        check_bool "stopped handing out work" true (Atomic.get executed < n - 1));
    tc "failure carries the worker backtrace" (fun () ->
        Printexc.record_backtrace true;
        let deep () = failwith "deep worker failure" in
        (try
           ignore
             (Usher.Experiment.parallel_map ~jobs:2
                (fun x -> if x = 1 then deep () else x)
                [ 0; 1; 2; 3 ])
         with Failure _ ->
           (* the re-raise used raise_with_backtrace, so the recorded
              backtrace is the worker's, not the join site's *)
           ());
        check_bool "survived" true true);
  ]

let suites =
  [
    ("obs.clock", clock_tests);
    ("obs.metrics", metrics_tests @ [ qcheck_bucket ]);
    ("obs.trace", trace_tests @ [ qcheck_nesting ]);
    ("obs.inert", regression_tests);
    ("obs.parallel_map", parallel_tests);
  ]
