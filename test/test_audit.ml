(* The soundness sentinel: ddmin reduction, incident artifacts, the
   quarantine list, the differential oracle and the audit loop.

   The pivotal scenario is seeded-miss end to end: inject a plan hole
   (delete the checks guided plans place in one function), audit, and
   assert the sentinel captures an incident, reduces it to a small repro,
   quarantines the function, and that the quarantined re-run covers the
   use again — including across a second loop run via the persisted
   quarantine list. *)

open Helpers

(* Fresh scratch directory per test. *)
let scratch_ctr = ref 0

let scratch_dir () =
  incr scratch_ctr;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "usher-audit-test-%d-%d" (Unix.getpid ()) !scratch_ctr)
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

(* ---- ddmin ------------------------------------------------------------ *)

let contains_all need l = List.for_all (fun x -> List.mem x l) need

let ddmin_tests =
  [
    tc "ddmin recovers exactly the minimal witness" (fun () ->
        let input = List.init 20 Fun.id in
        let r = Audit.Reduce.ddmin (contains_all [ 3; 7 ]) input in
        check_ints "minimal witness" [ 3; 7 ] (List.sort compare r));
    tc "ddmin result is a fixed point" (fun () ->
        let pred = contains_all [ 0; 9; 17 ] in
        let r = Audit.Reduce.ddmin pred (List.init 30 Fun.id) in
        check_bool "pred holds" true (pred r);
        check_ints "second pass cannot shrink" r (Audit.Reduce.ddmin pred r));
    tc "ddmin returns the input unchanged when pred fails on it" (fun () ->
        let input = [ 1; 2; 3 ] in
        check_ints "unchanged" input
          (Audit.Reduce.ddmin (fun _ -> false) input));
    tc "ddmin on a singleton" (fun () ->
        check_ints "kept" [ 5 ] (Audit.Reduce.ddmin (fun _ -> true) [ 5 ]));
  ]

(* Random witness sets: ddmin must terminate and return exactly the
   witness (the predicate "contains all of S" has S as its unique
   1-minimal subset). *)
let ddmin_prop seed =
  let st = Workloads.Rng.create seed in
  let n = 2 + Workloads.Rng.int st 40 in
  let input = List.init n Fun.id in
  let need =
    List.filter (fun _ -> Workloads.Rng.int st 4 = 0) input
  in
  let r = Audit.Reduce.ddmin (contains_all need) input in
  if need = [] then
    (* classic ddmin stops at granularity 1, so a trivially-true predicate
       keeps a single element rather than reaching the empty list *)
    List.length r <= 1
  else List.sort compare r = List.sort compare need

(* ---- pretty-printer round trip ---------------------------------------- *)

let roundtrip_profiles = [ "164.gzip"; "197.parser"; "181.mcf" ]

let pretty_tests =
  List.map
    (fun name ->
      tc (Printf.sprintf "pretty round trip is structural identity: %s" name)
        (fun () ->
          let src =
            Workloads.Spec2000.source ~scale:2 (Workloads.Spec2000.find name)
          in
          let ast = Tinyc.Parser.parse_program src in
          let printed = Tinyc.Pretty.program_to_string ast in
          let ast2 = Tinyc.Parser.parse_program printed in
          check_bool "parse (print ast) = ast" true (ast = ast2);
          check_ints "behaviour preserved" (outputs src) (outputs printed)))
    roundtrip_profiles

(* ---- mutators ---------------------------------------------------------- *)

let mutate_src =
  "int f(int a) { int x = 1; int y = 2; x = a; y = x; if (a > 0) { x = 3; } \
   else { x = 4; } return x + y; }\n\
   int main() { print(f(1)); return 0; }"

let mutate_tests =
  [
    tc "mutation sites are counted and out-of-range sites rejected" (fun () ->
        let ast = Tinyc.Parser.parse_program mutate_src in
        List.iter
          (fun k ->
            let n = Audit.Mutate.count k ast in
            check_bool (Audit.Mutate.kind_name k ^ " has sites") true (n > 0);
            check_bool "out-of-range site"  true
              (Audit.Mutate.apply { Audit.Mutate.mkind = k; site = n } ast
               = None))
          Audit.Mutate.all_kinds);
    tc "drop-init removes the declaration's initializer" (fun () ->
        let ast = Tinyc.Parser.parse_program mutate_src in
        match
          Audit.Mutate.apply { Audit.Mutate.mkind = Audit.Mutate.Drop_init; site = 0 } ast
        with
        | None -> Alcotest.fail "site 0 must exist"
        | Some (ast', _) ->
          check_bool "program changed" true (ast' <> ast);
          check_bool "initializer gone (program shrank)" true
            (String.length (Tinyc.Pretty.program_to_string ast')
            < String.length (Tinyc.Pretty.program_to_string ast)));
    tc "random mutation is deterministic in the seed" (fun () ->
        let ast = Tinyc.Parser.parse_program mutate_src in
        let draw () =
          match Audit.Mutate.random (Workloads.Rng.create 42) ast with
          | None -> Alcotest.fail "program has candidates"
          | Some (ast', m, _) -> (Tinyc.Pretty.program_to_string ast', m)
        in
        let p1, m1 = draw () and p2, m2 = draw () in
        check_str "same mutation" (Audit.Mutate.to_string m1)
          (Audit.Mutate.to_string m2);
        check_str "same program" p1 p2);
  ]

(* ---- incident artifacts ------------------------------------------------ *)

let sample_incident ?(seed = 197) ?reduced () =
  Audit.Incident.make ~kind:Audit.Incident.Soundness_miss ~variant:"Usher_TL"
    ~seed ~mutation:"drop-init@3 (drop init of x)"
    ~functions:[ "ppmatch_12"; "helper" ] ~labels:[ 7; 42 ]
    ~knobs:"semi_strong=true quarantined=0"
    ~source:"int main() { int u; print(u); return 0; }\n" ?reduced ()

let incident_tests =
  [
    tc "incident round trip (with reduced repro)" (fun () ->
        let t = sample_incident ~reduced:"int main() { int u; print(u); }" () in
        match Audit.Incident.of_string (Audit.Incident.to_string t) with
        | Error e -> Alcotest.fail e
        | Ok t' -> check_bool "structural equality" true (t = t'));
    tc "incident round trip (no reduced repro)" (fun () ->
        let t = sample_incident () in
        match Audit.Incident.of_string (Audit.Incident.to_string t) with
        | Error e -> Alcotest.fail e
        | Ok t' -> check_bool "structural equality" true (t = t'));
    tc "a corrupted artifact is rejected by its checksum" (fun () ->
        let s = Audit.Incident.to_string (sample_incident ()) in
        (* Flip one byte inside the payload (past magic + checksum lines). *)
        let b = Bytes.of_string s in
        let i = String.length s - 10 in
        Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
        (match Audit.Incident.of_string (Bytes.to_string b) with
        | Ok _ -> Alcotest.fail "corrupted artifact accepted"
        | Error e ->
          check_bool "mentions the checksum" true
            (String.length e >= 8 && String.sub e 0 8 = "checksum"));
        (* Truncation is also rejected. *)
        match
          Audit.Incident.of_string (String.sub s 0 (String.length s - 5))
        with
        | Ok _ -> Alcotest.fail "truncated artifact accepted"
        | Error _ -> ());
    tc "save / load_dir separates good artifacts from corrupted ones" (fun () ->
        let dir = scratch_dir () in
        let t1 = sample_incident () in
        let t2 = sample_incident ~seed:198 ~reduced:"int main() { return 0; }" () in
        let p1 = Audit.Incident.save ~dir t1 in
        ignore (Audit.Incident.save ~dir t2);
        let ok, bad = Audit.Incident.load_dir dir in
        check_int "both load" 2 (List.length ok);
        check_int "none corrupted" 0 (List.length bad);
        (* Corrupt the first file on disk. *)
        let oc = open_out_bin p1 in
        output_string oc "usher-incident 1\nchecksum 0\ngarbage";
        close_out oc;
        let ok, bad = Audit.Incident.load_dir dir in
        check_int "one loads" 1 (List.length ok);
        check_int "one rejected" 1 (List.length bad));
  ]

(* ---- quarantine list --------------------------------------------------- *)

let undef_src =
  "int vuln_f(int d) { int v; int s = 0; if (v > d) { s = 1; } else { s = 2; } \
   return s; }\n\
   int main() { int r = vuln_f(7); print(r); return 0; }"

let quarantine_tests =
  [
    tc "missing quarantine list loads as empty" (fun () ->
        check_int "empty" 0
          (List.length (Audit.Quarantine.load (scratch_dir ()))));
    tc "add merges first-incident-per-function and persists" (fun () ->
        let dir = scratch_dir () in
        let e f i = { Audit.Quarantine.qfunc = f; incident = i } in
        let fresh = Audit.Quarantine.add dir [ e "f" "aaa"; e "g" "bbb" ] in
        check_int "both fresh" 2 (List.length fresh);
        let fresh = Audit.Quarantine.add dir [ e "f" "ccc"; e "h" "ddd" ] in
        check_int "only h is new" 1 (List.length fresh);
        let entries = Audit.Quarantine.load dir in
        check_int "three persisted" 3 (List.length entries);
        check_bool "f keeps its first incident" true
          (List.exists
             (fun (x : Audit.Quarantine.entry) ->
               x.qfunc = "f" && x.incident = "aaa")
             entries);
        (* apply threads entries into the knobs the pipeline reads. *)
        let knobs =
          Audit.Quarantine.apply_dir dir Usher.Config.default_knobs
        in
        check_int "knobs carry all entries" 3
          (List.length knobs.Usher.Config.quarantine));
    tc "pipeline distrusts quarantined functions and records the event"
      (fun () ->
        let knobs =
          Audit.Quarantine.apply
            [ { Audit.Quarantine.qfunc = "vuln_f"; incident = "abc123" } ]
            Usher.Config.default_knobs
        in
        let prog, a = analyze ~knobs undef_src in
        check_bool "vuln_f distrusted" true
          (List.mem "vuln_f" (Usher.Pipeline.distrusted_functions a));
        check_bool "quarantine event recorded" true
          (List.exists
             (fun (e : Usher.Degrade.event) ->
               e.kind = Usher.Degrade.Quarantined "abc123"
               && e.func = Some "vuln_f")
             !(a.events));
        (* Quarantine must not break soundness: every variant still covers
           the ground-truth use. *)
        let native = Runtime.Interp.run_native prog in
        check_bool "has a gt use" true (Hashtbl.length native.gt_uses > 0);
        List.iter
          (fun v ->
            let plan, _ = Usher.Pipeline.plan_for a v in
            let o = Runtime.Interp.run_plan prog plan in
            Hashtbl.iter
              (fun l () ->
                check_bool
                  (Printf.sprintf "%s covers l%d" (Usher.Config.variant_name v) l)
                  true
                  (Usher.Experiment.covered prog o.detections l))
              native.gt_uses)
          Usher.Config.all_variants);
  ]

(* ---- the differential oracle ------------------------------------------- *)

let clean_src =
  "int add(int a, int b) { return a + b; }\n\
   int main() { int s = 0; int i; for (i = 0; i < 5; i = i + 1) { s = add(s, i); } \
   print(s); return 0; }"

let oracle_tests =
  [
    tc "a clean program has no divergences" (fun () ->
        let r = Audit.Oracle.check clean_src in
        check_int "no divergences" 0 (List.length r.divergences);
        check_bool "no soundness divergence" false
          (Audit.Oracle.has_soundness_divergence r));
    tc "a detected undefined use is not a divergence" (fun () ->
        let r = Audit.Oracle.check undef_src in
        check_bool "native sees the gt use" true
          (Hashtbl.length r.native.gt_uses > 0);
        check_int "no divergences" 0 (List.length r.divergences));
    tc "a seeded plan hole is reported as a soundness miss" (fun () ->
        let r = Audit.Oracle.check ~hole:"vuln_" undef_src in
        let misses = Audit.Oracle.soundness_misses r in
        check_bool "missed" true (misses <> []);
        check_bool "soundness divergence" true
          (Audit.Oracle.has_soundness_divergence r);
        List.iter
          (fun (m : Audit.Oracle.miss) ->
            check_bool "attributed to vuln_f" true (m.mfunc = Some "vuln_f");
            check_bool "MSan is unaffected" true
              (m.mvariant <> Usher.Config.Msan);
            check_bool "MSan covers the use" true m.baseline_covers)
          misses);
    tc "the hole spares quarantined functions (the healing mechanism)"
      (fun () ->
        let knobs =
          Audit.Quarantine.apply
            [ { Audit.Quarantine.qfunc = "vuln_f"; incident = "abc123" } ]
            Usher.Config.default_knobs
        in
        let r = Audit.Oracle.check ~knobs ~hole:"vuln_" undef_src in
        check_int "healed: no divergences" 0 (List.length r.divergences));
  ]

(* ---- reduction preserves the divergence -------------------------------- *)

let reduce_tests =
  [
    tc "AST reduction shrinks while preserving the witnessed miss" (fun () ->
        (* Pad the witness program with bystander functions the reducer
           should delete wholesale. *)
        let padding =
          String.concat "\n"
            (List.init 6 (fun i ->
                 Printf.sprintf
                   "int pad%d(int a) { int x = %d; int y = x + a; return y * 2; }"
                   i i))
        in
        let src = padding ^ "\n" ^ undef_src in
        let ast = Tinyc.Parser.parse_program src in
        let pred p =
          match Tinyc.Pretty.program_to_string p with
          | s -> (
            match Audit.Oracle.check ~hole:"vuln_" s with
            | r ->
              List.exists
                (fun (m : Audit.Oracle.miss) -> m.mfunc = Some "vuln_f")
                (Audit.Oracle.soundness_misses r)
            | exception Diag.Error _ -> false
            | exception Runtime.Interp.Runtime_error _ -> false)
        in
        check_bool "pred holds initially" true (pred ast);
        let reduced = Audit.Reduce.program ~pred ast in
        check_bool "pred holds on the result" true (pred reduced);
        check_bool "strictly smaller" true
          (Audit.Reduce.size reduced < Audit.Reduce.size ast);
        (* All padding functions are gone; the witness survives. *)
        let s = Tinyc.Pretty.program_to_string reduced in
        check_bool "padding deleted" false
          (let has sub =
             let n = String.length sub and m = String.length s in
             let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
             go 0
           in
           has "pad0");
        check_bool "witness kept" true
          (let sub = "vuln_f" in
           let n = String.length sub and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
           go 0));
  ]

(* Small random programs for the reduction property (full workload
   sources make the fixpoint reduction too slow for a unit-test budget). *)
let gen_small_program st =
  let nf = 1 + Workloads.Rng.int st 4 in
  let buf = Buffer.create 256 in
  for i = 0 to nf - 1 do
    Printf.ksprintf (Buffer.add_string buf)
      "int f%d(int a) { int x = %d; int y; int z = a * %d; if (a > %d) { y = \
       x + z; } else { y = x - a; z = z + 1; } while (z > 90) { z = z - 7; } \
       return y + z; }\n"
      i (Workloads.Rng.int st 100) (1 + Workloads.Rng.int st 5)
      (Workloads.Rng.int st 10)
  done;
  Buffer.add_string buf "int main() { int s = 0;\n";
  for i = 0 to nf - 1 do
    Printf.ksprintf (Buffer.add_string buf) "  s = s + f%d(%d);\n" i
      (Workloads.Rng.int st 20)
  done;
  Buffer.add_string buf "  print(s); return 0; }\n";
  Buffer.contents buf

(* Reduction of random (mutated) programs terminates and preserves the
   predicate — here "the program still compiles and executes". *)
let reduce_prop seed =
  let st = Workloads.Rng.create seed in
  let ast = Tinyc.Parser.parse_program (gen_small_program st) in
  (* Mutate first so reduction sees fuzzed shapes too. *)
  let ast =
    match Audit.Mutate.random st ast with Some (a, _, _) -> a | None -> ast
  in
  let pred p =
    match outputs (Tinyc.Pretty.program_to_string p) with
    | _ -> true
    | exception Diag.Error _ -> false
    | exception Runtime.Interp.Runtime_error _ -> false
    | exception Runtime.Interp.Resource_exhausted _ -> false
  in
  let reduced = Audit.Reduce.program ~pred ast in
  pred reduced && Audit.Reduce.size reduced <= Audit.Reduce.size ast

(* ---- the audit loop end to end ----------------------------------------- *)

let loop_config dir hole =
  {
    Audit.Loop.default_config with
    profiles = [ Workloads.Spec2000.find "197.parser" ];
    scale = 3;
    mutants = 1;
    dir;
    hole;
    log = ignore;
  }

let loop_tests =
  [
    tc "stock corpus sample audits clean" (fun () ->
        let dir = scratch_dir () in
        let s = Audit.Loop.run (loop_config dir None) in
        check_int "no soundness incidents" 0 s.soundness_incidents;
        check_int "no precision incidents" 0 s.precision_incidents;
        check_int "nothing quarantined" 0 (List.length s.quarantined));
    tc "seeded miss: capture, reduce, quarantine, heal, persist" (fun () ->
        let dir = scratch_dir () in
        let cfg = loop_config dir (Some "ppmatch") in
        let s = Audit.Loop.run cfg in
        check_bool "soundness incidents captured" true
          (s.soundness_incidents > 0);
        check_bool "ppmatch quarantined" true
          (List.exists
             (fun f ->
               String.length f >= 7 && String.sub f 0 7 = "ppmatch")
             s.quarantined);
        check_bool "every quarantine healed its miss" true
          (s.healed >= List.length s.quarantined);
        (* Reduction: every soundness incident carries a repro at most a
           quarter of the original program. *)
        List.iter
          (fun (i : Audit.Incident.t) ->
            if i.kind = Audit.Incident.Soundness_miss then begin
              match i.reduced with
              | None -> Alcotest.fail "soundness incident not reduced"
              | Some r ->
                check_bool "reduced to <= 25%" true
                  (String.length r * 4 <= String.length i.source)
            end)
          s.incidents;
        (* Artifacts round trip from disk. *)
        let ok, bad = Audit.Incident.load_dir dir in
        check_int "artifacts parse back" (List.length s.incidents)
          (List.length ok);
        check_int "no corrupted artifacts" 0 (List.length bad);
        (* Second run with the same hole: the persisted quarantine forces
           full instrumentation for the buggy function, so the hole no
           longer produces a miss. *)
        let s2 = Audit.Loop.run cfg in
        check_int "quarantine persists across runs" 0 s2.soundness_incidents);
  ]

let suites =
  [
    ("audit.reduce", ddmin_tests @ reduce_tests);
    ("audit.pretty", pretty_tests);
    ("audit.mutate", mutate_tests);
    ("audit.incident", incident_tests);
    ("audit.quarantine", quarantine_tests);
    ("audit.oracle", oracle_tests);
    ("audit.loop", loop_tests);
    ( "audit.properties",
      [
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make ~name:"ddmin recovers random witness sets"
             ~count:100
             (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
             ddmin_prop);
        QCheck_alcotest.to_alcotest
          (QCheck.Test.make
             ~name:"AST reduction terminates and preserves its predicate"
             ~count:15
             (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 100000))
             reduce_prop);
      ] );
  ]
