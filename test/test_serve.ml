(* lib/serve: the analysis daemon and its supporting pieces.

   The server tests run everything in process: a [Serve.Server.t] with a
   collector closure as [out], driven through [handle_line] exactly as
   the stdin/socket transports drive it. That keeps the properties
   deterministic (the test hooks [sleep_ms] / [crash_worker] stand in
   for real nondeterminism) while exercising the same intake, admission,
   pool, retry and reply paths as the binary. *)

let with_tmpdir (f : string -> 'a) : 'a =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "usher-serve-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Audit.Incident.ensure_dir dir;
  Fun.protect
    ~finally:(fun () ->
      match Sys.readdir dir with
      | entries ->
        Array.iter
          (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
          entries;
        (try Unix.rmdir dir with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ())
    (fun () -> f dir)

(* ---- Serve.Json ---- *)

let json_roundtrip () =
  let open Serve.Json in
  let v =
    Obj
      [
        ("id", Str "r\"1\"\nx");
        ("n", Num 42.);
        ("f", Num 1.5);
        ("b", Bool true);
        ("nul", Null);
        ("xs", Arr [ Num 1.; Str "two"; Bool false ]);
        ("empty", Obj []);
      ]
  in
  let line = to_line v in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match parse line with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')

let json_escapes () =
  let open Serve.Json in
  (match parse {|{"s":"aA\n\t\\\"z"}|} with
  | Ok (Obj [ ("s", Str s) ]) ->
    Alcotest.(check string) "escapes" "aA\n\t\\\"z" s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "parse: %s" e);
  match parse {|{"s":"é"}|} with
  | Ok (Obj [ ("s", Str s) ]) ->
    Alcotest.(check string) "utf8 from \\u" "\xc3\xa9" s
  | _ -> Alcotest.fail "utf8 escape"

let json_rejects () =
  let open Serve.Json in
  List.iter
    (fun s ->
      match parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "{"; "{\"a\":}"; "[1,]"; "tru"; "\"unterminated"; "{} trailing"; "" ]

(* ---- Serve.Protocol ---- *)

let protocol_parse () =
  let open Serve.Protocol in
  (match parse_request {|{"id":"r1","cmd":"analyze","source":"int main(){return 0;}"}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok r ->
    Alcotest.(check string) "id" "r1" r.id;
    Alcotest.(check bool) "cmd" true (r.cmd = Analyze);
    Alcotest.(check int) "scale default" 10 r.scale;
    Alcotest.(check bool) "variant default" true
      (r.variant = Usher.Config.Usher_full));
  (match parse_request {|{"id":"x","cmd":"analyze"}|} with
  | Ok _ -> Alcotest.fail "analyze without source accepted"
  | Error _ -> ());
  (match parse_request {|{"id":"x","cmd":"bench"}|} with
  | Ok _ -> Alcotest.fail "bench without bench accepted"
  | Error _ -> ());
  match parse_request {|{"id":"x","cmd":"run","source":"s","inject":["andersen=crash"]}|} with
  | Ok r -> Alcotest.(check int) "inject parsed" 1 (List.length r.inject)
  | Error e -> Alcotest.failf "inject: %s" e

let protocol_codes () =
  let open Serve.Protocol in
  List.iter
    (fun (s, c) -> Alcotest.(check int) (status_name s) c (code_of_status s))
    [ (Sok, 0); (Serror, 1); (Sdetected, 3); (Sunsound, 4); (Sviolation, 5);
      (Soverloaded, 6); (Squarantined, 7) ];
  List.iter
    (fun c ->
      Alcotest.(check int) "exit-code roundtrip" c
        (code_of_status (status_of_exit_code c)))
    [ 0; 3; 4; 5 ]

let reply_line_parses () =
  let open Serve.Protocol in
  let r =
    reply ~id:"r9" ~output:"line1\nline2\n" ~error:"" ~retries:1
      ~extra:[ ("pong", Serve.Json.Bool true) ] Sok
  in
  match Serve.Json.parse (reply_to_line r) with
  | Error e -> Alcotest.failf "reply line unparseable: %s" e
  | Ok j ->
    Alcotest.(check (option string)) "id" (Some "r9")
      (Option.bind (Serve.Json.member "id" j) Serve.Json.str);
    Alcotest.(check (option string)) "output survives newlines"
      (Some "line1\nline2\n")
      (Option.bind (Serve.Json.member "output" j) Serve.Json.str)

(* ---- Serve.Cache ---- *)

let cache_basics () =
  let c = Serve.Cache.create ~cap:2 in
  let k s = Serve.Cache.key ~cmd:"analyze" ~level:"O0+IM" ~variant:"usher"
      ~engine:"interp" ~knobs_fp:"fp" ~src:s
  in
  Alcotest.(check bool) "miss" true (Serve.Cache.find c (k "a") = None);
  Serve.Cache.store c (k "a") { Serve.Cache.code = 0; output = "A" };
  Serve.Cache.store c (k "a") { Serve.Cache.code = 3; output = "LOSER" };
  (match Serve.Cache.find c (k "a") with
  | Some e -> Alcotest.(check string) "first writer wins" "A" e.Serve.Cache.output
  | None -> Alcotest.fail "hit expected");
  Serve.Cache.store c (k "b") { Serve.Cache.code = 0; output = "B" };
  Serve.Cache.store c (k "c") { Serve.Cache.code = 0; output = "C" };
  Alcotest.(check bool) "fifo evicted oldest" true (Serve.Cache.find c (k "a") = None);
  Alcotest.(check int) "capacity held" 2 (Serve.Cache.size c);
  Alcotest.(check bool) "distinct source, distinct key" true (k "a" <> k "a ")

(* ---- Serve.Admission ---- *)

let admission_watermarks () =
  let open Serve.Admission in
  let t = create { max_queue = 2; max_inflight_ms = 100; default_budget_ms = 40 } in
  (match admit t ~queue_depth:2 ~requested_ms:None with
  | Shed _ -> ()
  | Admit _ -> Alcotest.fail "queue watermark ignored");
  let g1 =
    match admit t ~queue_depth:0 ~requested_ms:(Some 500) with
    | Admit g -> Alcotest.(check int) "ask capped at default" 40 g; g
    | Shed r -> Alcotest.failf "shed: %s" r
  in
  let g2 =
    match admit t ~queue_depth:0 ~requested_ms:(Some 30) with
    | Admit g -> Alcotest.(check int) "small ask granted" 30 g; g
    | Shed r -> Alcotest.failf "shed: %s" r
  in
  (match admit t ~queue_depth:0 ~requested_ms:(Some 40) with
  | Shed _ -> () (* 40+30+40 > 100 *)
  | Admit _ -> Alcotest.fail "in-flight watermark ignored");
  release t g1;
  release t g2;
  match admit t ~queue_depth:0 ~requested_ms:(Some 40) with
  | Admit g -> release t g
  | Shed r -> Alcotest.failf "release leaked budget: %s" r

(* ---- Obs.Metrics window track (satellite) ---- *)

let metrics_window () =
  let c = Obs.Metrics.counter "test.serve.window" in
  let base_total = Obs.Metrics.counter_value c in
  Obs.Metrics.add c 5;
  Obs.Metrics.reset_window ();
  Alcotest.(check int) "window zeroed" 0 (Obs.Metrics.counter_window c);
  Alcotest.(check int) "total survives reset_window" (base_total + 5)
    (Obs.Metrics.counter_value c);
  Obs.Metrics.add c 2;
  Alcotest.(check int) "window counts fresh" 2 (Obs.Metrics.counter_window c);
  Alcotest.(check int) "total keeps accumulating" (base_total + 7)
    (Obs.Metrics.counter_value c);
  let snap track =
    List.assoc_opt "test.serve.window" (Obs.Metrics.snapshot ~track ())
  in
  (match (snap Obs.Metrics.Total, snap Obs.Metrics.Window) with
  | Some (Obs.Metrics.Counter t), Some (Obs.Metrics.Counter w) ->
    Alcotest.(check int) "snapshot total" (base_total + 7) t;
    Alcotest.(check int) "snapshot window" 2 w
  | _ -> Alcotest.fail "counter missing from snapshot");
  let h = Obs.Metrics.histogram "test.serve.window_hist" in
  Obs.Metrics.observe h 100;
  Obs.Metrics.reset_window ();
  Obs.Metrics.observe h 7;
  match
    ( List.assoc_opt "test.serve.window_hist" (Obs.Metrics.snapshot ()),
      List.assoc_opt "test.serve.window_hist"
        (Obs.Metrics.snapshot ~track:Obs.Metrics.Window ()) )
  with
  | ( Some (Obs.Metrics.Histogram { count = ct; sum = st; _ }),
      Some (Obs.Metrics.Histogram { count = cw; sum = sw; _ }) ) ->
    Alcotest.(check int) "hist total count" 2 ct;
    Alcotest.(check int) "hist total sum" 107 st;
    Alcotest.(check int) "hist window count" 1 cw;
    Alcotest.(check int) "hist window sum" 7 sw
  | _ -> Alcotest.fail "histogram missing from snapshot"

(* take_window is an atomic read-and-zero: the value comes back exactly
   once, and the lifetime total is untouched — the stats path uses this
   so increments racing a snapshot land in the next window, never lost. *)
let metrics_take_window () =
  let c = Obs.Metrics.counter "test.serve.take_window" in
  let base_total = Obs.Metrics.counter_value c in
  Obs.Metrics.add c 3;
  Alcotest.(check int) "take returns the window" 3
    (Obs.Metrics.counter_take_window c);
  Alcotest.(check int) "window drained" 0 (Obs.Metrics.counter_window c);
  Alcotest.(check int) "second take is empty" 0
    (Obs.Metrics.counter_take_window c);
  Alcotest.(check int) "total untouched" (base_total + 3)
    (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "post-take increments accumulate" 1
    (Obs.Metrics.counter_window c)

(* ---- quarantine.list concurrent writers (satellite) ---- *)

let quarantine_hammer () =
  with_tmpdir @@ fun dir ->
  let domains = 4 and per = 25 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore
                (Audit.Quarantine.add dir
                   [
                     {
                       Audit.Quarantine.qfunc = Printf.sprintf "fn_%d_%d" d i;
                       incident = Printf.sprintf "inc-%d-%d" d i;
                     };
                   ])
            done))
  in
  List.iter Domain.join workers;
  let entries = Audit.Quarantine.load dir in
  Alcotest.(check int) "no entry lost under 4 concurrent writers"
    (domains * per) (List.length entries);
  let uniq =
    List.sort_uniq compare
      (List.map (fun e -> e.Audit.Quarantine.qfunc) entries)
  in
  Alcotest.(check int) "no duplicates" (domains * per) (List.length uniq);
  (* no stray temp files left behind *)
  let strays =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f ->
           not
             (List.mem f [ "quarantine.list"; "quarantine.lock" ]))
  in
  Alcotest.(check (list string)) "only the list and its lock remain" [] strays

(* ---- the in-process server harness ---- *)

let src_clean =
  "int main() {\n  int y;\n  y = 1;\n  print(y);\n  return 0;\n}\n"

let src_undef =
  "int main() {\n  int x;\n  print(x);\n  return 0;\n}\n"

let mk_server ?(jobs = 2) ?(max_queue = 32) ?(max_inflight_ms = 1_000_000)
    ?(retries = 2) ?(cache_cap = 64) ?(drain_ms = 2_000) (dir : string) :
    Serve.Server.t * (string -> unit) * (unit -> string list) =
  let cfg =
    {
      Serve.Server.default_config with
      jobs;
      retries;
      cache_cap;
      drain_ms;
      incident_dir = dir;
      admission =
        { Serve.Admission.max_queue; max_inflight_ms; default_budget_ms = 10_000 };
    }
  in
  let t = Serve.Server.create cfg in
  let mu = Mutex.create () in
  let lines = ref [] in
  let out line = Mutex.protect mu (fun () -> lines := line :: !lines) in
  (t, out, fun () -> Mutex.protect mu (fun () -> List.rev !lines))

let req_json ?(extra = "") ~id ~cmd ~source () =
  Printf.sprintf {|{"id":%S,"cmd":%S,"source":%s%s}|} id cmd
    (Serve.Json.to_line (Serve.Json.Str source))
    extra

let reply_field line k =
  match Serve.Json.parse line with
  | Ok j -> Option.bind (Serve.Json.member k j) Serve.Json.str
  | Error _ -> None

let reply_id line = Option.value ~default:"?" (reply_field line "id")
let reply_status line = Option.value ~default:"?" (reply_field line "status")

(* Crash isolation, end to end: among clean requests, one seeded worker
   crash (past the retry cap) and one over-budget request. Every clean
   request must come back with output byte-identical to a direct handler
   render; the crash must come back quarantined with an incident on
   disk; the server must stay serviceable afterwards. *)
let server_crash_isolation () =
  with_tmpdir @@ fun dir ->
  let t, out, collected = mk_server ~jobs:2 dir in
  let n = 8 in
  let ids = List.init n (fun i -> Printf.sprintf "r%d" i) in
  List.iteri
    (fun i id ->
      let line =
        if i = 3 then
          req_json ~id ~cmd:"run" ~source:src_clean
            ~extra:{|,"crash_worker":99|} ()
        else if i = 5 then
          req_json ~id ~cmd:"analyze" ~source:src_clean
            ~extra:{|,"budget_ms":1|} ()
        else
          req_json ~id ~cmd:(if i mod 2 = 0 then "analyze" else "run")
            ~source:(if i = 1 then src_undef else src_clean)
            ()
      in
      Serve.Server.handle_line t ~out line)
    ids;
  Serve.Server.drain t;
  let replies = collected () in
  Alcotest.(check int) "every request answered exactly once" n
    (List.length replies);
  let by_id id = List.find (fun l -> reply_id l = id) replies in
  Alcotest.(check string) "seeded crash quarantined" "quarantined"
    (reply_status (by_id "r3"));
  let incidents, corrupt = Audit.Incident.load_dir dir in
  Alcotest.(check (list (pair string string))) "no corrupt artifacts" [] corrupt;
  Alcotest.(check bool) "worker-crash incident filed" true
    (List.exists
       (fun (i : Audit.Incident.t) -> i.kind = Audit.Incident.Worker_crash)
       incidents);
  (* the over-budget request still gets a structured reply *)
  let r5 = by_id "r5" in
  Alcotest.(check bool) "over-budget reply is ok or degraded, not lost" true
    (List.mem (reply_status r5) [ "ok"; "detected" ]);
  (* byte-identity of every clean reply against a direct render *)
  let knobs = Usher.Budget.admit_ms Usher.Config.default_knobs 10_000 in
  List.iteri
    (fun i id ->
      if i <> 3 && i <> 5 then begin
        let b = Buffer.create 256 in
        let src = if i = 1 then src_undef else src_clean in
        let code =
          if i mod 2 = 0 then
            Serve.Handlers.analyze ~knobs ~level:Optim.Pipeline.O0_IM
              ~variant:Usher.Config.Usher_full b src
          else
            Serve.Handlers.run ~knobs ~level:Optim.Pipeline.O0_IM
              ~engine:Vm.Engine.Interp
              ~variant:Usher.Config.Usher_full b src
        in
        let line = by_id id in
        Alcotest.(check (option string))
          (id ^ " output byte-identical to one-shot")
          (Some (Buffer.contents b))
          (reply_field line "output");
        match Serve.Json.parse line with
        | Ok j ->
          Alcotest.(check (option int)) (id ^ " code matches") (Some code)
            (Option.bind (Serve.Json.member "code" j) Serve.Json.int_)
        | Error e -> Alcotest.failf "reply unparseable: %s" e
      end)
    ids

(* Retry-then-recover: a request that crashes its worker fewer times
   than the retry cap succeeds, reporting its retries; nothing is
   quarantined. *)
let server_retry_recovers () =
  with_tmpdir @@ fun dir ->
  let t, out, collected = mk_server ~jobs:1 ~retries:2 dir in
  Serve.Server.handle_line t ~out
    (req_json ~id:"r" ~cmd:"run" ~source:src_clean ~extra:{|,"crash_worker":2|} ());
  Serve.Server.drain t;
  match collected () with
  | [ line ] ->
    Alcotest.(check string) "recovered" "ok" (reply_status line);
    (match Serve.Json.parse line with
    | Ok j ->
      Alcotest.(check (option int)) "two retries reported" (Some 2)
        (Option.bind (Serve.Json.member "retries" j) Serve.Json.int_)
    | Error e -> Alcotest.failf "bad reply: %s" e);
    let incidents, _ = Audit.Incident.load_dir dir in
    Alcotest.(check int) "no incident for a recovered request" 0
      (List.length incidents)
  | ls -> Alcotest.failf "expected 1 reply, got %d" (List.length ls)

(* Structured failures skip the retry loop entirely. *)
let server_error_no_retry () =
  with_tmpdir @@ fun dir ->
  let t, out, collected = mk_server ~jobs:1 dir in
  Serve.Server.handle_line t ~out
    (req_json ~id:"bad" ~cmd:"analyze" ~source:"int main( {" ());
  Serve.Server.drain t;
  match collected () with
  | [ line ] ->
    Alcotest.(check string) "structured error" "error" (reply_status line);
    (match Serve.Json.parse line with
    | Ok j ->
      Alcotest.(check (option int)) "no retries burned" (Some 0)
        (Option.bind (Serve.Json.member "retries" j) Serve.Json.int_)
    | Error e -> Alcotest.failf "bad reply: %s" e)
  | ls -> Alcotest.failf "expected 1 reply, got %d" (List.length ls)

(* Served replies are cached: same request twice, second is a hit with
   identical bytes. *)
let server_cache_hit () =
  with_tmpdir @@ fun dir ->
  let t, out, collected = mk_server ~jobs:1 dir in
  Serve.Server.handle_line t ~out (req_json ~id:"c1" ~cmd:"analyze" ~source:src_clean ());
  Serve.Server.handle_line t ~out (req_json ~id:"c2" ~cmd:"analyze" ~source:src_clean ());
  Serve.Server.drain t;
  match collected () with
  | [ l1; l2 ] ->
    let cached l =
      match Serve.Json.parse l with
      | Ok j -> Option.bind (Serve.Json.member "cached" j) Serve.Json.bool_
      | Error _ -> None
    in
    Alcotest.(check (option bool)) "first is a miss" (Some false) (cached l1);
    Alcotest.(check (option bool)) "second is a hit" (Some true) (cached l2);
    Alcotest.(check (option string)) "identical bytes"
      (reply_field l1 "output") (Some (Option.value ~default:"?" (reply_field l2 "output")))
  | ls -> Alcotest.failf "expected 2 replies, got %d" (List.length ls)

(* An unknown benchmark is a deterministic client error: no retries
   burned, no incident filed — and only [bench] maps to it (a stray
   [Not_found] elsewhere takes the crash/retry path instead). *)
let server_unknown_bench () =
  with_tmpdir @@ fun dir ->
  let t, out, collected = mk_server ~jobs:1 dir in
  Serve.Server.handle_line t ~out {|{"id":"b0","cmd":"bench","bench":"999.nope"}|};
  Serve.Server.drain t;
  match collected () with
  | [ line ] ->
    Alcotest.(check string) "deterministic error" "error" (reply_status line);
    (match Serve.Json.parse line with
    | Ok j ->
      Alcotest.(check (option int)) "no retries burned" (Some 0)
        (Option.bind (Serve.Json.member "retries" j) Serve.Json.int_);
      Alcotest.(check bool) "names the benchmark" true
        (match reply_field line "error" with
        | Some e ->
          let needle = "unknown benchmark" in
          let n = String.length e and m = String.length needle in
          let rec at i = i + m <= n && (String.sub e i m = needle || at (i + 1)) in
          at 0
        | None -> false)
    | Error e -> Alcotest.failf "bad reply: %s" e);
    let incidents, _ = Audit.Incident.load_dir dir in
    Alcotest.(check int) "no incident for a client error" 0
      (List.length incidents)
  | ls -> Alcotest.failf "expected 1 reply, got %d" (List.length ls)

(* A final request line without a trailing newline is completed by EOF:
   `printf '{"cmd":"ping"}' | usherc serve` must still get its reply. *)
let serve_fd_eof_partial_line () =
  with_tmpdir @@ fun dir ->
  let t, out, collected = mk_server ~jobs:1 dir in
  let r, w = Unix.pipe () in
  let req = {|{"id":"p1","cmd":"ping"}|} in
  ignore (Unix.write_substring w req 0 (String.length req));
  Unix.close w;
  Serve.Server.serve_fd t ~out r;
  Unix.close r;
  Serve.Server.drain t;
  match collected () with
  | [ line ] ->
    Alcotest.(check string) "partial line answered" "p1" (reply_id line);
    Alcotest.(check string) "pong" "ok" (reply_status line)
  | ls -> Alcotest.failf "expected 1 reply, got %d" (List.length ls)

(* Socket-mode drain delivers in-flight replies: the connection fd must
   survive serve_socket's return (intake stopped) until the worker has
   written the admitted reply — only then does it close. Regression for
   the fd-close-before-reply (and fd-reuse) race. *)
let serve_socket_drain_delivers () =
  with_tmpdir @@ fun dir ->
  let t, _, _ = mk_server ~jobs:1 dir in
  let path = Filename.concat dir "sock" in
  let srv = Domain.spawn (fun () -> Serve.Server.serve_socket t path) in
  let rec await_file n =
    if not (Sys.file_exists path) then
      if n = 0 then Alcotest.fail "socket never appeared"
      else (Unix.sleepf 0.01; await_file (n - 1))
  in
  await_file 500;
  let c = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect c (Unix.ADDR_UNIX path);
  let req =
    req_json ~id:"sd1" ~cmd:"run" ~source:src_clean
      ~extra:{|,"sleep_ms":300|} ()
    ^ "\n"
  in
  ignore (Unix.write_substring c req 0 (String.length req));
  (* wait until the request is admitted, then pull the plug *)
  let pool = t.Serve.Server.pool in
  let rec await_inflight n =
    if Usher.Pool.queued pool + Usher.Pool.in_flight pool = 0 then
      if n = 0 then Alcotest.fail "request never admitted"
      else (Unix.sleepf 0.01; await_inflight (n - 1))
  in
  await_inflight 500;
  Serve.Server.begin_drain t;
  Domain.join srv;
  Serve.Server.drain t;
  (* after drain the reply is on the wire and the fd closed: read to EOF *)
  let b = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec slurp () =
    match Unix.read c chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      slurp ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> slurp ()
  in
  slurp ();
  Unix.close c;
  match String.split_on_char '\n' (String.trim (Buffer.contents b)) with
  | [ line ] ->
    Alcotest.(check string) "in-flight reply delivered through drain" "sd1"
      (reply_id line);
    Alcotest.(check string) "and it is the real result" "ok"
      (reply_status line)
  | ls -> Alcotest.failf "expected exactly 1 reply line, got %d" (List.length ls)

(* ---- qcheck properties ---- *)

(* (a) A worker raising mid-request never loses or reorders other
   requests' replies: for a random mix of crashing and clean requests,
   every id is answered exactly once, crashers as quarantined, clean
   ones as ok. (Reply *order* across concurrent workers is unspecified;
   the per-request contract is exactly-once.) *)
let prop_no_lost_replies =
  let arb =
    QCheck.make
      ~print:(fun bs -> String.concat "" (List.map (fun b -> if b then "X" else ".") bs))
      QCheck.Gen.(list_size (int_range 1 12) bool)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15
       ~name:"server: crashing workers never lose or duplicate replies" arb
       (fun crashes ->
         with_tmpdir @@ fun dir ->
         let t, out, collected = mk_server ~jobs:3 ~retries:0 dir in
         List.iteri
           (fun i crash ->
             Serve.Server.handle_line t ~out
               (req_json
                  ~id:(Printf.sprintf "q%d" i)
                  ~cmd:"run" ~source:src_clean
                  ~extra:(if crash then {|,"crash_worker":99|} else "")
                  ()))
           crashes;
         Serve.Server.drain t;
         let replies = collected () in
         List.length replies = List.length crashes
         && List.for_all
              (fun (i, crash) ->
                let id = Printf.sprintf "q%d" i in
                let matching =
                  List.filter (fun l -> reply_id l = id) replies
                in
                List.length matching = 1
                && reply_status (List.hd matching)
                   = if crash then "quarantined" else "ok")
              (List.mapi (fun i c -> (i, c)) crashes)))

(* (b) A saturated queue always sheds with an overloaded reply, and the
   shed happens synchronously on the intake path — within the admission
   deadline (we allow 250ms; the path is a mutex-protected list append,
   so this is generous by orders of magnitude). *)
let prop_shed_within_deadline =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 6) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:8
       ~name:"server: saturated queue sheds overloaded within the deadline" arb
       (fun burst ->
         with_tmpdir @@ fun dir ->
         let t, out, collected = mk_server ~jobs:1 ~max_queue:1 dir in
         (* occupy the worker, then fill the queue watermark *)
         let t_hold = Obs.Clock.now_s () in
         Serve.Server.handle_line t ~out
           (req_json ~id:"hold" ~cmd:"run" ~source:src_clean
              ~extra:{|,"sleep_ms":300|} ());
         Serve.Server.handle_line t ~out
           (req_json ~id:"q0" ~cmd:"run" ~source:src_clean
              ~extra:{|,"sleep_ms":50|} ());
         let ok = ref true in
         for i = 1 to burst do
           (* only assert while the 300ms hold provably still occupies the
              worker (so the queue slot is provably still full) — on a
              loaded box a long burst can outlive the hold, after which a
              request legitimately queues instead of shedding *)
           if Obs.Clock.now_s () -. t_hold < 0.25 then begin
             let before = List.length (collected ()) in
             let t0 = Obs.Clock.now_s () in
             Serve.Server.handle_line t ~out
               (req_json ~id:(Printf.sprintf "s%d" i) ~cmd:"run"
                  ~source:src_clean ());
             let dt = Obs.Clock.now_s () -. t0 in
             let after = collected () in
             (* the shed reply is already there when handle_line returns *)
             let shed =
               List.filter
                 (fun l ->
                   reply_id l = Printf.sprintf "s%d" i
                   && reply_status l = "overloaded")
                 after
             in
             if
               not
                 (List.length after = before + 1
                 && List.length shed = 1 && dt < 0.25)
             then ok := false
           end
         done;
         Serve.Server.drain t;
         !ok))

(* (c) kill -9 mid-request leaves no corrupt artifacts: simulate the
   torn state (a stranded atomic-write temp alongside valid artifacts),
   then restart — the loader must see only the valid artifacts and the
   server sweep must remove the stray temp. *)
let prop_kill9_artifacts =
  let arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1000) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15
       ~name:"server: stranded kill -9 temps never corrupt artifacts on restart"
       arb
       (fun seed ->
         with_tmpdir @@ fun dir ->
         (* a valid incident, as a crashed server would have completed *)
         let inc =
           Audit.Incident.make ~kind:Audit.Incident.Worker_crash
             ~variant:"run" ~seed ~mutation:"m" ~functions:[] ~labels:[]
             ~knobs:"k" ~source:src_clean ()
         in
         let _path = Audit.Incident.save ~dir inc in
         ignore
           (Audit.Quarantine.add dir
              [ { Audit.Quarantine.qfunc = "f"; incident = inc.id } ]);
         (* the torn write: a temp the dying process never renamed *)
         let stray1 =
           Filename.concat dir
             (Printf.sprintf "incident-dead-%d.txt.tmp.999.0" seed)
         in
         let stray2 = Filename.concat dir "quarantine.list.tmp.999.1" in
         List.iter
           (fun p ->
             let oc = open_out p in
             output_string oc "torn half-write {{{";
             close_out oc)
           [ stray1; stray2 ];
         (* restart: loaders must not see the strays as artifacts *)
         let incidents, corrupt = Audit.Incident.load_dir dir in
         let entries = Audit.Quarantine.load dir in
         let before_ok =
           corrupt = []
           && List.exists (fun (i : Audit.Incident.t) -> i.id = inc.id) incidents
           && List.exists (fun e -> e.Audit.Quarantine.qfunc = "f") entries
         in
         (* the server startup sweep clears the strays *)
         let t =
           Serve.Server.create
             { Serve.Server.default_config with jobs = 1; incident_dir = dir }
         in
         Serve.Server.drain t;
         before_ok
         && (not (Sys.file_exists stray1))
         && (not (Sys.file_exists stray2))
         && fst (Audit.Incident.load_dir dir) <> []
         && Audit.Quarantine.load dir <> []))

(* ---- pool-level property: submission order within one worker ---- *)

let pool_isolation () =
  let pool = Usher.Pool.create ~name:"test" ~jobs:2 () in
  let done_n = Atomic.make 0 in
  for i = 0 to 19 do
    ignore
      (Usher.Pool.submit pool (fun () ->
           if i mod 3 = 0 then failwith "boom"
           else Atomic.incr done_n))
  done;
  Usher.Pool.shutdown pool;
  Alcotest.(check int) "non-crashing tasks all ran" 13 (Atomic.get done_n);
  Alcotest.(check bool) "no further admission after shutdown" false
    (Usher.Pool.submit pool (fun () -> ()))

let suites =
  [
    ( "serve.json",
      [
        Alcotest.test_case "roundtrip" `Quick json_roundtrip;
        Alcotest.test_case "escapes" `Quick json_escapes;
        Alcotest.test_case "rejects malformed" `Quick json_rejects;
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "request parsing" `Quick protocol_parse;
        Alcotest.test_case "status codes" `Quick protocol_codes;
        Alcotest.test_case "reply line parses" `Quick reply_line_parses;
      ] );
    ( "serve.cache",
      [ Alcotest.test_case "fifo + first-writer-wins" `Quick cache_basics ] );
    ( "serve.admission",
      [ Alcotest.test_case "watermarks and release" `Quick admission_watermarks ] );
    ( "serve.metrics",
      [
        Alcotest.test_case "window track resets, total survives" `Quick
          metrics_window;
        Alcotest.test_case "take_window drains atomically" `Quick
          metrics_take_window;
      ] );
    ( "serve.quarantine",
      [ Alcotest.test_case "4-domain writer hammer" `Quick quarantine_hammer ] );
    ( "serve.pool",
      [ Alcotest.test_case "task exceptions isolated" `Quick pool_isolation ] );
    ( "serve.server",
      [
        Alcotest.test_case "crash isolation end to end" `Quick
          server_crash_isolation;
        Alcotest.test_case "retry recovers below the cap" `Quick
          server_retry_recovers;
        Alcotest.test_case "structured errors skip retries" `Quick
          server_error_no_retry;
        Alcotest.test_case "reply cache hit is byte-identical" `Quick
          server_cache_hit;
        Alcotest.test_case "unknown bench is a client error" `Quick
          server_unknown_bench;
        Alcotest.test_case "EOF completes an unterminated line" `Quick
          serve_fd_eof_partial_line;
        Alcotest.test_case "socket drain delivers in-flight replies" `Quick
          serve_socket_drain_delivers;
      ] );
    ( "serve.properties",
      [ prop_no_lost_replies; prop_shed_within_deadline; prop_kill9_artifacts ]
    );
  ]
