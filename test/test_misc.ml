(* Odds and ends: dot exporters, interpreter limits, experiment helpers,
   plan bookkeeping, memory SSA with multiple returns. *)

open Helpers

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let dot_tests =
  [
    tc "cfg dot contains every block" (fun () ->
        let p = front "int main() { int c = input(); if (c) { print(1); } else { print(2); } return 0; }" in
        let s = Ir.Dot.prog_to_string p in
        check_bool "digraph" true (contains s "digraph cfg");
        check_bool "main cluster" true (contains s "cluster_main");
        check_bool "edges" true (contains s "->"));
    tc "vfg dot colors bottom nodes red" (fun () ->
        let _, a = analyze "int main() { int u; if (u > 0) { print(1); } return 0; }" in
        let s = Vfg.Dot.to_string ~gamma:a.gamma a.vfg in
        check_bool "digraph" true (contains s "digraph vfg");
        check_bool "red nodes" true (contains s "color=red");
        check_bool "F root" true (contains s "\"F\""));
    tc "vfg dot marks interprocedural edges" (fun () ->
        let _, a = analyze
            "int id(int x) { return x; }\n\
             int main() { int u; int y = id(u); if (y > 0) { print(1); } return 0; }" in
        let s = Vfg.Dot.to_string a.vfg in
        check_bool "call edge" true (contains s "call l");
        check_bool "ret edge" true (contains s "ret l"));
  ]

let limit_tests =
  [
    tc "recursion depth limit" (fun () ->
        let p = front "int r(int n) { return r(n + 1); } int main() { return r(0); }" in
        check_bool "raises" true
          (try
             ignore
               (Runtime.Interp.run
                  ~limits:{ Runtime.Interp.default_limits with max_depth = 64 }
                  (Runtime.Interp.compile p (Instr.Item.empty_plan p)));
             false
           with Runtime.Interp.Resource_exhausted { what = "call depth"; limit = 64 } ->
             true));
    tc "object count limit" (fun () ->
        let p = front
            "int main() { int i; int s = 0;\n\
             for (i = 0; i < 100000; i = i + 1) { int *q = (int*)malloc(1); *q = i; s = s + *q; }\n\
             print(s); return 0; }" in
        check_bool "raises" true
          (try
             ignore
               (Runtime.Interp.run
                  ~limits:{ Runtime.Interp.default_limits with max_objects = 100 }
                  (Runtime.Interp.compile p (Instr.Item.empty_plan p)));
             false
           with Runtime.Interp.Resource_exhausted { what = "objects"; limit = 100 } ->
             true));
    tc "undefined allocation sizes trap" (fun () ->
        let p = front "int main() { int n; int *q = (int*)malloc(n); return 0; }" in
        check_bool "raises" true
          (try ignore (Runtime.Interp.run_native p); false
           with Runtime.Interp.Runtime_error _ -> true));
  ]

let covered_tests =
  [
    tc "covered: detected at its own label" (fun () ->
        let p = front "int main() { int u; if (u > 0) { print(1); } return 0; }" in
        let det = Hashtbl.create 4 in
        let lbl =
          let r = ref (-1) in
          Ir.Prog.iter_terms
            (fun _ _ t ->
              match t.Ir.Types.tkind with
              | Ir.Types.Br (Ir.Types.Var _, _, _) -> r := t.tlbl
              | _ -> ())
            p;
          !r
        in
        Hashtbl.replace det lbl ();
        check_bool "covered" true (Usher.Experiment.covered p det lbl));
    tc "covered: dominated by an earlier detection" (fun () ->
        let p = front
            "int main() { int u;\n\
             if (u > 0) { print(1); }\n\
             if (u > 1) { print(2); }\n\
             return 0; }" in
        let branches = ref [] in
        Ir.Prog.iter_terms
          (fun _ _ t ->
            match t.Ir.Types.tkind with
            | Ir.Types.Br (Ir.Types.Var _, _, _) -> branches := t.tlbl :: !branches
            | _ -> ())
          p;
        match List.rev !branches with
        | first :: second :: _ ->
          let det = Hashtbl.create 4 in
          Hashtbl.replace det first ();
          check_bool "second covered by first" true
            (Usher.Experiment.covered p det second);
          let det2 = Hashtbl.create 4 in
          Hashtbl.replace det2 second ();
          check_bool "first NOT covered by second" false
            (Usher.Experiment.covered p det2 first)
        | _ -> Alcotest.fail "expected two branches");
  ]

let plan_tests =
  [
    tc "items_at preserves insertion order and position" (fun () ->
        let p = front "int main() { return 0; }" in
        let plan = Instr.Item.empty_plan p in
        Instr.Item.add plan 0 Instr.Item.Before (Instr.Item.Check Ir.Types.Undef);
        Instr.Item.add plan 0 Instr.Item.After (Instr.Item.Set_var (0, Instr.Item.Rconst true));
        Instr.Item.add plan 0 Instr.Item.Before (Instr.Item.Set_global (0, Ir.Types.Cst 1));
        check_int "before items" 2
          (List.length (Instr.Item.items_at plan 0 ~pos:Instr.Item.Before));
        check_int "after items" 1
          (List.length (Instr.Item.items_at plan 0 ~pos:Instr.Item.After));
        (* duplicates are rejected *)
        Instr.Item.add plan 0 Instr.Item.Before (Instr.Item.Check Ir.Types.Undef);
        check_int "idempotent" 2
          (List.length (Instr.Item.items_at plan 0 ~pos:Instr.Item.Before)));
    tc "compress never drops shadow-memory writes" (fun () ->
        let p = front
            "int main() { int x; int *q = &x; *q = 1; print(*q); return 0; }" in
        let plan = Instr.Full.build p in
        let mem_writes plan =
          let n = ref 0 in
          Array.iter
            (List.iter (fun (it : Instr.Item.item) ->
                 match it.act with
                 | Instr.Item.Set_mem _ | Instr.Item.Set_mem_object _ -> incr n
                 | _ -> ()))
            plan.Instr.Item.items;
          !n
        in
        let before = mem_writes plan in
        ignore (Instr.Compress.fold_constants plan);
        ignore (Instr.Compress.run plan);
        check_int "mem writes preserved" before (mem_writes plan));
    tc "fold_constants is idempotent" (fun () ->
        let p = front "int main() { int a = 1; int b = a + 2; print(b); return b; }" in
        let plan = Instr.Full.build p in
        ignore (Instr.Compress.fold_constants plan);
        check_int "second pass removes nothing" 0
          (Instr.Compress.fold_constants plan));
  ]

let memssa_extra_tests =
  [
    tc "every return records output versions" (fun () ->
        let prog = front
            "int g;\n\
             int f(int c) { if (c) { g = 1; return 1; } g = 2; return 2; }\n\
             int main() { return f(input()); }" in
        let pa = Analysis.Andersen.run prog in
        let cg = Analysis.Callgraph.build prog pa in
        let mr = Analysis.Modref.compute prog pa cg in
        let mssa = Memssa.build prog pa cg mr in
        let fs = Memssa.func_ssa mssa "f" in
        let rets = Hashtbl.length fs.Memssa.ret_vers in
        check_int "two returns annotated" 2 rets;
        (* the two returns see different versions of g *)
        let vers =
          Hashtbl.fold
            (fun _ l acc ->
              (List.map snd l) @ acc)
            fs.Memssa.ret_vers []
        in
        check_bool "distinct versions" true
          (List.sort_uniq compare vers |> List.length >= 2));
  ]

let suites =
  [ ("dot", dot_tests); ("interp.limits", limit_tests);
    ("experiment.covered", covered_tests); ("plan", plan_tests);
    ("memssa.extra", memssa_extra_tests) ]
