(* Lexer, parser and lowering tests. *)

open Helpers
module T = Tinyc.Token

let toks src = List.map (fun (s : T.spanned) -> s.tok) (Tinyc.Lexer.tokenize src)

let lexer_tests =
  [
    tc "integers and identifiers" (fun () ->
        check_bool "toks" true
          (toks "foo 42 _bar9"
          = [ T.IDENT "foo"; T.INT 42; T.IDENT "_bar9"; T.EOF ]));
    tc "keywords are not identifiers" (fun () ->
        check_bool "kw" true
          (toks "int if while return"
          = [ T.KW_INT; T.KW_IF; T.KW_WHILE; T.KW_RETURN; T.EOF ]));
    tc "two-character operators" (fun () ->
        check_bool "ops" true
          (toks "== != <= >= << >> && || ->"
          = [ T.EQ; T.NE; T.LE; T.GE; T.SHL; T.SHR; T.ANDAND; T.OROR;
              T.ARROW; T.EOF ]));
    tc "operator prefixes split correctly" (fun () ->
        check_bool "prefix" true
          (toks "<< < <= =" = [ T.SHL; T.LT; T.LE; T.ASSIGN; T.EOF ]));
    tc "line comments" (fun () ->
        check_bool "c" true (toks "1 // two three\n4" = [ T.INT 1; T.INT 4; T.EOF ]));
    tc "block comments" (fun () ->
        check_bool "c" true (toks "1 /* 2\n 3 */ 4" = [ T.INT 1; T.INT 4; T.EOF ]));
    tc "unterminated comment fails with located diagnostic" (fun () ->
        match (try ignore (toks "1 /* oops"); None with Diag.Error d -> Some d) with
        | None -> Alcotest.fail "expected a diagnostic"
        | Some d ->
          check_bool "phase" true (d.Diag.phase = Diag.Lex);
          check_str "message" "unterminated comment" d.Diag.message;
          (match d.Diag.loc with
          | Some { Diag.line; col } ->
            check_int "line" 1 line;
            check_int "col" 10 col
          | None -> Alcotest.fail "diagnostic has no location"));
    tc "positions recorded" (fun () ->
        let s = List.nth (Tinyc.Lexer.tokenize "a\n  b") 1 in
        check_int "line" 2 s.line;
        check_int "col" 3 s.col);
    tc "unexpected character fails" (fun () ->
        check_bool "raises" true
          (try ignore (toks "a $ b"); false with Diag.Error _ -> true));
  ]

let parses src =
  try ignore (Tinyc.Parser.parse_program src); true
  with Diag.Error _ -> false

let parser_tests =
  [
    tc "minimal program" (fun () -> check_bool "p" true (parses "int main() { return 0; }"));
    tc "syntax error carries the offending location" (fun () ->
        let src = "int main() {\n  int x = ;\n  return 0;\n}" in
        match
          (try ignore (Tinyc.Parser.parse_program src); None
           with Diag.Error d -> Some d)
        with
        | None -> Alcotest.fail "expected a diagnostic"
        | Some d -> (
          check_bool "phase" true (d.Diag.phase = Diag.Parse);
          match d.Diag.loc with
          | Some { Diag.line; col } ->
            check_int "line" 2 line;
            check_int "col" 11 col
          | None -> Alcotest.fail "diagnostic has no location"));
    tc "precedence: * over +" (fun () ->
        match Tinyc.Parser.parse_program "int main() { return 1 + 2 * 3; }" with
        | [ Tinyc.Ast.Ifunc f ] -> (
          match f.fbody with
          | [ Tinyc.Ast.Sreturn (Some (Tinyc.Ast.Ebinop (Tinyc.Ast.Badd, _, Tinyc.Ast.Ebinop (Tinyc.Ast.Bmul, _, _)))) ] ->
            ()
          | _ -> Alcotest.fail "wrong tree")
        | _ -> Alcotest.fail "wrong program");
    tc "comparison over shift" (fun () ->
        match Tinyc.Parser.parse_program "int main() { return 1 << 2 < 3; }" with
        | [ Tinyc.Ast.Ifunc f ] -> (
          match f.fbody with
          | [ Tinyc.Ast.Sreturn (Some (Tinyc.Ast.Ebinop (Tinyc.Ast.Blt, Tinyc.Ast.Ebinop (Tinyc.Ast.Bshl, _, _), _))) ] ->
            ()
          | _ -> Alcotest.fail "wrong tree")
        | _ -> Alcotest.fail "wrong program");
    tc "struct definition and use" (fun () ->
        check_bool "p" true
          (parses
             "struct S { int a; int *b; };\n\
              int main() { struct S s; s.a = 1; return s.a; }"));
    tc "pointers, arrays, address-of" (fun () ->
        check_bool "p" true
          (parses
             "int main() { int a[4]; int *p = &a[1]; *p = 2; return a[1]; }"));
    tc "for with declaration" (fun () ->
        check_bool "p" true
          (parses "int main() { int s = 0; for (int i = 0; i < 3; i = i + 1) { s = s + i; } return s; }"));
    tc "dangling else binds to nearest if" (fun () ->
        match Tinyc.Parser.parse_program
                "int main() { if (1) if (2) return 1; else return 2; return 3; }" with
        | [ Tinyc.Ast.Ifunc f ] -> (
          match f.fbody with
          | [ Tinyc.Ast.Sif (_, [ Tinyc.Ast.Sif (_, _, els) ], []); _ ] ->
            check_int "inner else" 1 (List.length els)
          | _ -> Alcotest.fail "wrong tree")
        | _ -> Alcotest.fail "wrong program");
    tc "sizeof and casts" (fun () ->
        check_bool "p" true
          (parses
             "struct S { int x; int y; };\n\
              int main() { struct S *p = (struct S*)malloc(sizeof(struct S)); return 0; }"));
    tc "missing semicolon fails" (fun () ->
        check_bool "p" false (parses "int main() { return 0 }"));
    tc "unbalanced braces fail" (fun () ->
        check_bool "p" false (parses "int main() { return 0; "));
    tc "global with initializer" (fun () ->
        match Tinyc.Parser.parse_program "int g = -3;" with
        | [ Tinyc.Ast.Iglobal g ] -> check_bool "init" true (g.gdinit = Some (-3))
        | _ -> Alcotest.fail "wrong program");
  ]

let lower_tests =
  [
    tc "Fig. 2: address-of compiles away" (fun () ->
        (* int **a, *b; int c; a = &b; b = &c; c = 10; i = c  — the lowered
           program contains allocs, stores and loads but no & operator. *)
        let p =
          compile
            "int main() { int **a; int *b; int c; int i;\n\
             a = &b; b = &c; c = 10; i = c; return i; }"
        in
        let allocs = count_instrs (function Ir.Types.Alloc _ -> true | _ -> false) p in
        check_bool "allocs for locals" true (allocs >= 4));
    tc "locals allocate in the entry block" (fun () ->
        let p = compile "int main() { int x; if (1) { int y; y = 2; x = y; } return x; }" in
        let f = Ir.Prog.get_func p "main" in
        let entry_allocs = ref 0 and other_allocs = ref 0 in
        Array.iter
          (fun (b : Ir.Types.block) ->
            List.iter
              (fun (i : Ir.Types.instr) ->
                match i.kind with
                | Ir.Types.Alloc _ ->
                  if b.bid = 0 then incr entry_allocs else incr other_allocs
                | _ -> ())
              b.instrs)
          f.blocks;
        check_int "entry allocs" 2 !entry_allocs;
        check_int "non-entry allocs" 0 !other_allocs);
    tc "malloc(1) is a scalar cell" (fun () ->
        let p = compile "int main() { int *p = (int*)malloc(1); *p = 1; return *p; }" in
        match find_instr (function Ir.Types.Alloc a -> a.region = Heap | _ -> false) p with
        | Some (_, { kind = Ir.Types.Alloc a; _ }) ->
          check_bool "fields" true (a.asize = Ir.Types.Fields 1);
          check_bool "uninit" true (not a.initialized)
        | _ -> Alcotest.fail "no heap alloc");
    tc "calloc is initialized" (fun () ->
        let p = compile "int main() { int *p = (int*)calloc(4); return *p; }" in
        match find_instr (function Ir.Types.Alloc a -> a.region = Heap | _ -> false) p with
        | Some (_, { kind = Ir.Types.Alloc a; _ }) ->
          check_bool "init" true a.initialized
        | _ -> Alcotest.fail "no heap alloc");
    tc "struct malloc is field-sensitive" (fun () ->
        let p =
          compile
            "struct S { int a; int b; int c; };\n\
             int main() { struct S *p = (struct S*)malloc(sizeof(struct S)); return 0; }"
        in
        match find_instr (function Ir.Types.Alloc a -> a.region = Heap | _ -> false) p with
        | Some (_, { kind = Ir.Types.Alloc a; _ }) ->
          check_bool "3 fields" true (a.asize = Ir.Types.Fields 3)
        | _ -> Alcotest.fail "no heap alloc");
    tc "field access lowers to Field_addr" (fun () ->
        let p =
          compile
            "struct S { int a; int b; };\n\
             int main() { struct S s; s.b = 1; return s.b; }"
        in
        check_int "field addrs" 2
          (count_instrs (function Ir.Types.Field_addr (_, _, 1) -> true | _ -> false) p));
    tc "array indexing lowers to Index_addr" (fun () ->
        let p = compile "int main() { int a[3]; a[1] = 2; return a[1]; }" in
        check_bool "index addrs" true
          (count_instrs (function Ir.Types.Index_addr _ -> true | _ -> false) p >= 2));
    tc "pointer arithmetic is an address computation" (fun () ->
        let p = compile "int main() { int a[4]; int *p = &a[0]; return *(p + 2); }" in
        check_bool "index addrs" true
          (count_instrs (function Ir.Types.Index_addr _ -> true | _ -> false) p >= 2));
    tc "break and continue" (fun () ->
        check_ints "out" [ 4 ]
          (outputs
             "int main() { int s = 0; int i;\n\
              for (i = 0; i < 10; i = i + 1) {\n\
              if (i == 2) { continue; }\n\
              if (i > 3) { break; }\n\
              s = s + i; } print(s); return 0; }"));
    tc "function pointers dispatch" (fun () ->
        check_ints "out" [ 7; 12 ]
          (outputs
             "int add3(int x) { return x + 3; }\n\
              int mul3(int x) { return x * 3; }\n\
              int main() { int *f = (int*)add3; print(f(4));\n\
              f = (int*)mul3; print(f(4)); return 0; }"));
    tc "global arrays are zero-initialized" (fun () ->
        check_ints "out" [ 0 ] (outputs "int g[5]; int main() { print(g[3]); return 0; }"));
    tc "unknown variable fails" (fun () ->
        check_bool "raises" true
          (try ignore (compile "int main() { return nope; }"); false
           with Diag.Error _ -> true));
    tc "arity mismatch fails" (fun () ->
        check_bool "raises" true
          (try ignore (compile "int f(int a) { return a; } int main() { return f(1, 2); }"); false
           with Diag.Error _ -> true));
    tc "break outside loop fails" (fun () ->
        check_bool "raises" true
          (try ignore (compile "int main() { break; return 0; }"); false
           with Diag.Error _ -> true));
    tc "non-short-circuit logical operators" (fun () ->
        check_ints "out" [ 1; 0; 1 ]
          (outputs
             "int main() { print(1 && 2); print(3 && 0); print(0 || 5); return 0; }"));
  ]

let suites =
  [ ("lexer", lexer_tests); ("parser", parser_tests); ("lowering", lower_tests) ]

(* ---- conditional expressions and compound assignment ---- *)

let sugar_tests =
  [
    tc "ternary selects by condition" (fun () ->
        check_ints "out" [ 10; 20 ]
          (outputs
             "int main() { int c = 1; print(c ? 10 : 20);\n\
              print(c - 1 ? 10 : 20); return 0; }"));
    tc "ternary is right-associative" (fun () ->
        check_ints "out" [ 2 ]
          (outputs "int main() { int x = 0; print(x ? 1 : x + 1 ? 2 : 3); return 0; }"));
    tc "nested ternaries in arguments" (fun () ->
        check_ints "out" [ 7 ]
          (outputs
             "int pick(int a, int b) { return a > b ? a : b; }\n\
              int main() { print(pick(3 < 5 ? 7 : 1, 2)); return 0; }"));
    tc "ternary arms join through a phi" (fun () ->
        let p = front "int main() { int c = input();\n\
                       int v = c > 0 ? c * 2 : 0 - c;\n\
                       print(v); return 0; }" in
        Ir.Verify.check_ssa p;
        check_bool "phi present" true
          (count_instrs (function Ir.Types.Phi _ -> true | _ -> false) p >= 1));
    tc "compound assignments" (fun () ->
        check_ints "out" [ 9; 5; 15 ]
          (outputs
             "int main() { int x = 4; x += 5; print(x);\n\
              x -= 4; print(x); x *= 3; print(x); return 0; }"));
    tc "compound assignment through pointers and arrays" (fun () ->
        check_ints "out" [ 11; 6 ]
          (outputs
             "int main() { int a[2]; a[0] = 1; a[1] = 2;\n\
              int *p = &a[0]; *p += 10; a[1] *= 3;\n\
              print(a[0]); print(a[1]); return 0; }"));
    tc "ternary with maybe-undef arm stays sound" (fun () ->
        let src =
          "int main() { int u; int c = input();\n\
           int v = c > 999999 ? u : 5;\n\
           if (v > 1) { print(v); } return 0; }"
        in
        (* runtime picks the defined arm: no reports, but static state is
           bot so the check survives under every variant *)
        check_int "no reports" 0 (List.length (detections src Usher.Config.Msan));
        check_int "no reports guided" 0
          (List.length (detections src Usher.Config.Usher_full));
        let s = static_stats src Usher.Config.Usher_full in
        check_bool "check kept" true (s.checks >= 1));
  ]

let suites = suites @ [ ("tinyc.sugar", sugar_tests) ]
