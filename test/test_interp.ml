(* The shadow-memory execution engine: concrete semantics, ground truth,
   shadow semantics and detection parity. *)

open Helpers

let semantics_tests =
  [
    tc "arithmetic" (fun () ->
        check_ints "out" [ 7; 1; -3; 12; 2; 1; 0; 6; 1 ]
          (outputs
             "int main() { print(3 + 4); print(7 % 2); print(-3); print(3 << 2);\n\
              print(5 / 2); print(5 > 4); print(5 < 4); print(7 & 6); print(!0);\n\
              return 0; }"));
    tc "division by zero yields zero (total semantics)" (fun () ->
        check_ints "out" [ 0; 0 ]
          (outputs "int main() { int z = input() * 0; print(7 / z); print(7 % z); return 0; }"));
    tc "while and nested ifs" (fun () ->
        check_ints "out" [ 8 ]
          (outputs
             "int main() { int n = 0; int i = 0;\n\
              while (i < 8) { if (i % 2 == 0) { n = n + 1; } else { n = n + 1; }\n\
              i = i + 1; }\n\
              print(n); return 0; }"));
    tc "recursion" (fun () ->
        check_ints "out" [ 120 ]
          (outputs
             "int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }\n\
              int main() { print(fact(5)); return 0; }"));
    tc "structs and heap" (fun () ->
        check_ints "out" [ 30 ]
          (outputs
             "struct P { int x; int y; };\n\
              int main() { struct P *p = (struct P*)malloc(sizeof(struct P));\n\
              p->x = 10; p->y = 20; print(p->x + p->y); return 0; }"));
    tc "arrays and pointer arithmetic" (fun () ->
        check_ints "out" [ 4; 9 ]
          (outputs
             "int main() { int a[4]; int i;\n\
              for (i = 0; i < 4; i = i + 1) { a[i] = i * 3; }\n\
              int *p = &a[1];\n\
              print(*p + (*p >> 1)); print(*(p + 2));\n\
              return 0; }"));
    tc "input is deterministic" (fun () ->
        let a = outputs "int main() { print(input()); print(input()); return 0; }" in
        let b = outputs "int main() { print(input()); print(input()); return 0; }" in
        check_ints "same stream" a b);
    tc "garbage is deterministic" (fun () ->
        let src = "int main() { int u; print(u | 0); return 0; }" in
        check_ints "same garbage" (outputs src) (outputs src));
    tc "out-of-bounds access traps" (fun () ->
        let prog = front "int main() { int a[2]; a[0] = 1; return a[5]; }" in
        check_bool "raises" true
          (try ignore (Runtime.Interp.run_native prog); false
           with Runtime.Interp.Runtime_error _ -> true));
    tc "step limit prevents runaway loops" (fun () ->
        let prog = front "int main() { while (1) { } return 0; }" in
        check_bool "raises" true
          (try
             ignore
               (Runtime.Interp.run
                  ~limits:{ Runtime.Interp.default_limits with max_steps = 1000 }
                  (Runtime.Interp.compile prog (Instr.Item.empty_plan prog)));
             false
           with Runtime.Interp.Resource_exhausted { what = "steps"; limit = 1000 } ->
             true));
  ]

let ground_truth_tests =
  [
    tc "branch on garbage is recorded" (fun () ->
        check_int "one gt use" 1
          (List.length (gt_uses "int main() { int u; if (u > 0) { print(1); } return 0; }")));
    tc "arithmetic propagates undefinedness to the use" (fun () ->
        check_int "one gt use" 1
          (List.length
             (gt_uses
                "int main() { int u; int v = u * 2 + 1; if (v > 0) { print(1); } return 0; }")));
    tc "defined programs have no gt uses" (fun () ->
        check_int "none" 0
          (List.length
             (gt_uses "int main() { int a[4]; int i;\n\
                       for (i = 0; i < 4; i = i + 1) { a[i] = i; }\n\
                       print(a[2]); return 0; }")));
    tc "initialized-on-the-taken-path values are defined" (fun () ->
        check_int "none" 0
          (List.length
             (gt_uses
                "int main() { int c = 1; int u; if (c) { u = 5; }\n\
                 if (u > 2) { print(u); } return 0; }")));
    tc "uninitialized heap reads are undefined" (fun () ->
        check_int "one" 1
          (List.length
             (gt_uses
                "int main() { int *p = (int*)malloc(4); int v = p[2];\n\
                 if (v > 0) { print(1); } return 0; }")));
    tc "calloc reads are defined" (fun () ->
        check_int "none" 0
          (List.length
             (gt_uses
                "int main() { int *p = (int*)calloc(4); int v = p[2];\n\
                 if (v > 0) { print(1); } return 0; }")));
  ]

(* Every variant must (a) detect every ground-truth use and (b) report
   nothing on the runtime-clean programs below. *)
let detection_cases =
  [
    ("branch on undef", "int main() { int u; if (u > 0) { print(1); } return 0; }", 1);
    ( "undef through memory",
      "int main() { int x; int *p = &x; int y = *p;\n\
       if (y > 0) { print(1); } return 0; }",
      1 );
    ( "undef through a call",
      "int id(int x) { return x; }\n\
       int main() { int u; int y = id(u); if (y > 0) { print(1); } return 0; }",
      1 );
    ( "undef struct field",
      "struct S { int a; int b; };\n\
       int main() { struct S *s = (struct S*)malloc(sizeof(struct S));\n\
       s->a = 1; int v = s->b; if (v > 0) { print(1); } return 0; }",
      1 );
    ( "clean: conditional init taken",
      "int main() { int c = 2; int u; if (c > 1) { u = 1; }\n\
       if (u > 0) { print(1); } return 0; }",
      0 );
    ( "clean: weak updates with defined values",
      "int main() { int x; int y; int *p; x = 1; y = 2; int i;\n\
       for (i = 0; i < 6; i = i + 1) { if (i % 2) { p = &x; } else { p = &y; }\n\
       *p = *p + 1; }\n\
       if (x + y > 0) { print(x + y); } return 0; }",
      0 );
    ( "clean: semi-strong rescued loop",
      "int main() { int s = 0; int i;\n\
       for (i = 0; i < 5; i = i + 1) { int *q = (int*)malloc(1); *q = i; s = s + *q; }\n\
       if (s > 1) { print(s); } return 0; }",
      0 );
  ]

let detection_tests =
  List.map
    (fun (name, src, expected) ->
      tc name (fun () ->
          let gt = gt_uses src in
          check_int "ground truth" expected (List.length gt);
          List.iter
            (fun v ->
              let det = detections src v in
              (* soundness: every gt use detected *)
              List.iter
                (fun l ->
                  check_bool
                    (Printf.sprintf "%s detects l%d" (Usher.Config.variant_name v) l)
                    true (List.mem l det))
                gt;
              (* precision: clean programs yield no reports *)
              if expected = 0 then
                check_int
                  (Printf.sprintf "%s clean" (Usher.Config.variant_name v))
                  0 (List.length det))
            Usher.Config.all_variants))
    detection_cases

let shadow_tests =
  [
    tc "shadow tracks the taken path, not the static worst case" (fun () ->
        (* statically maybe-undef, dynamically defined: no report *)
        let src =
          "int main() { int c = input(); int u;\n\
           if (c >= 0) { u = 1; } \n\
           if (u > 0) { print(1); } return 0; }"
        in
        check_int "no report" 0 (List.length (detections src Usher.Config.Msan));
        check_int "no report guided" 0
          (List.length (detections src Usher.Config.Usher_full)));
    tc "shadow memory follows stores cell by cell" (fun () ->
        let src =
          "int main() { int a[4]; a[0] = 1; a[1] = 2;\n\
           int v = a[1]; if (v > 0) { print(v); }\n\
           int w = a[3]; if (w > 0) { print(w); }\n\
           return 0; }"
        in
        (* exactly one report: the a[3] branch *)
        check_int "gt" 1 (List.length (gt_uses src));
        check_int "msan" 1 (List.length (detections src Usher.Config.Msan));
        check_int "usher" 1 (List.length (detections src Usher.Config.Usher_full)));
    tc "instrumented runs preserve outputs" (fun () ->
        let src =
          "int f(int a, int b) { return a * b + 3; }\n\
           int main() { int s = 0; int i;\n\
           for (i = 0; i < 10; i = i + 1) { s = (s + f(i, i + 1)) % 997; }\n\
           print(s); return 0; }"
        in
        let native = outputs src in
        List.iter
          (fun v ->
            check_ints (Usher.Config.variant_name v) native
              (run_variant src v).outputs)
          Usher.Config.all_variants);
    tc "dynamic shadow cost shrinks down the ladder" (fun () ->
        let src =
          "int main() { int b[8]; int i; int s = 0;\n\
           for (i = 0; i < 8; i = i + 1) { b[i] = i; }\n\
           for (i = 0; i < 50; i = i + 1) { s = s + b[i % 8];\n\
           if (s > 100) { s = s - 100; } }\n\
           print(s); return 0; }"
        in
        let cost v = Runtime.Counters.shadow_ops (run_variant src v).counters in
        check_bool "msan >= tl" true (cost Usher.Config.Msan >= cost Usher.Config.Usher_tl);
        check_bool "tl >= tlat" true
          (cost Usher.Config.Usher_tl >= cost Usher.Config.Usher_tl_at);
        check_bool "tlat >= full" true
          (cost Usher.Config.Usher_tl_at >= cost Usher.Config.Usher_full));
  ]

let suites =
  [ ("interp.semantics", semantics_tests);
    ("interp.ground-truth", ground_truth_tests);
    ("interp.detection", detection_tests);
    ("interp.shadow", shadow_tests) ]
