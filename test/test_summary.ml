(* Compositional value-flow summaries (lib/summary): differential
   equivalence against the monolithic resolver, incremental-cache
   reuse/invalidation/corruption behavior, per-SCC degradation, and the
   bottom-up callgraph order the engine is built on. *)

open Helpers

let knobs_sum = { Usher.Config.default_knobs with summaries = true }

let knobs_cache dir =
  { Usher.Config.default_knobs with summaries = true; summary_cache = Some dir }

let sum_stats (a : Usher.Pipeline.analysis) : Summary.Engine.stats =
  match a.summary_stats with
  | Some s -> s
  | None -> Alcotest.fail "analysis ran without summary stats"

(* ---- scratch dirs ---- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let scratch name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "usher-sum-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  dir

(* ---- differential campaign: compositional ≡ monolithic ---- *)

let all_variants =
  [
    Usher.Config.Msan;
    Usher.Config.Usher_tl;
    Usher.Config.Usher_tl_at;
    Usher.Config.Usher_opt1;
    Usher.Config.Usher_full;
  ]

(* The one observable the two engines may legitimately disagree on is the
   [states_explored] counter (each counts its own search's work); every
   analysis artifact — Γ on both graphs, the Opt II re-resolution, and
   all five instrumentation plans — must be identical. *)
let check_equivalent ~seed ~src (a1 : Usher.Pipeline.analysis)
    (a2 : Usher.Pipeline.analysis) =
  let fail what =
    QCheck.Test.fail_reportf "seed %d: %s diverges between engines:\n%s" seed
      what src
  in
  if not (Bytes.equal a1.gamma.undef a2.gamma.undef) then fail "gamma";
  if not (Bytes.equal a1.gamma_tl.undef a2.gamma_tl.undef) then fail "gamma-tl";
  if not (Bytes.equal a1.opt2.gamma.undef a2.opt2.gamma.undef) then
    fail "opt2 gamma";
  if a1.opt2.redirected <> a2.opt2.redirected then fail "opt2 redirected";
  List.iter
    (fun v ->
      let p1, _ = Usher.Pipeline.plan_for a1 v in
      let p2, _ = Usher.Pipeline.plan_for a2 v in
      if p1 <> p2 then
        fail (Printf.sprintf "%s plan" (Usher.Config.variant_name v)))
    all_variants;
  true

let differential_prop =
  QCheck.Test.make ~count:300
    ~name:"compositional resolution == monolithic (300-program campaign)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let src = Audit.Gen.source ~seed () in
      let prog = front src in
      let a1 = Usher.Pipeline.analyze prog in
      let a2 = Usher.Pipeline.analyze ~knobs:knobs_sum prog in
      ignore (check_equivalent ~seed ~src a1 a2);
      (* identical plans make identical runtime behavior, but spot-check
         the end-to-end claim on a sample anyway: detections agree *)
      if seed mod 10 = 0 then begin
        let d1 = detections src Usher.Config.Usher_full in
        let d2 = detections ~knobs:knobs_sum src Usher.Config.Usher_full in
        if d1 <> d2 then
          QCheck.Test.fail_reportf "seed %d: detections diverge:\n%s" seed src
      end;
      true)

(* The fixed corpus the rest of the repo leans on must agree too. The
   test binary runs from _build, where dune materializes a partial copy
   of examples/, so walk up and accept the first ancestor that actually
   yields the full program set. *)
let example_files (root : string) : string list =
  let dirs =
    [
      Filename.concat root "examples";
      Filename.concat root (Filename.concat "examples" "corpus");
    ]
  in
  List.concat_map
    (fun d ->
      match Sys.readdir d with
      | entries ->
        Array.to_list entries
        |> List.filter (fun f ->
               Filename.check_suffix f ".tc" || Filename.check_suffix f ".c")
        |> List.map (Filename.concat d)
      | exception Sys_error _ -> [])
    dirs

let example_set () =
  let rec up d =
    let files = example_files d in
    if List.length files > 5 then Some files
    else
      let parent = Filename.dirname d in
      if parent = d then None else up parent
  in
  up (Sys.getcwd ())

let test_examples_equivalent () =
  let files =
    match example_set () with
    | Some fs -> fs
    | None -> Alcotest.skip ()
  in
  check_bool "found example programs" true (List.length files > 5);
  List.iter
    (fun path ->
      let ic = open_in_bin path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let prog = front src in
      let a1 = Usher.Pipeline.analyze prog in
      let a2 = Usher.Pipeline.analyze ~knobs:knobs_sum prog in
      check_bool (path ^ ": gamma") true
        (Bytes.equal a1.gamma.undef a2.gamma.undef);
      check_bool (path ^ ": gamma-tl") true
        (Bytes.equal a1.gamma_tl.undef a2.gamma_tl.undef);
      check_bool (path ^ ": opt2") true
        (Bytes.equal a1.opt2.gamma.undef a2.opt2.gamma.undef))
    files

(* And a generated workload (bigger, layered call graphs than examples). *)
let test_workload_equivalent () =
  let p = Workloads.Spec2000.find "164.gzip" in
  let src = Workloads.Spec2000.source ~scale:2 p in
  let prog = front src in
  let a1 = Usher.Pipeline.analyze prog in
  let a2 = Usher.Pipeline.analyze ~knobs:knobs_sum prog in
  check_bool "164.gzip: gamma" true (Bytes.equal a1.gamma.undef a2.gamma.undef);
  check_bool "164.gzip: gamma-tl" true
    (Bytes.equal a1.gamma_tl.undef a2.gamma_tl.undef);
  check_bool "164.gzip: opt2" true
    (Bytes.equal a1.opt2.gamma.undef a2.opt2.gamma.undef)

(* ---- incremental cache ---- *)

(* A program whose call graph has distinct layers, so editing one leaf
   invalidates that leaf and its transitive callers but nothing else. *)
let layered_src ~leaf_const =
  Printf.sprintf
    "int leaf(int x) { int t; if (x > 3) { t = x + %d; } return t + 1; }\n\
     int mid(int x) { return leaf(x) + leaf(x + 1); }\n\
     int other(int x) { int u; if (x > 0) { u = 2; } return u; }\n\
     int main() { print(mid(4)); print(other(1)); return 0; }\n"
    leaf_const

let test_cache_cold_warm () =
  let dir = scratch "coldwarm" in
  let src = layered_src ~leaf_const:7 in
  let prog = front src in
  let mono = Usher.Pipeline.analyze prog in
  let cold = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) prog in
  let sc = sum_stats cold in
  check_bool "cold run computes summaries" true (sc.computed > 0);
  check_bool "cold run misses nothing it wrote itself" true
    (sc.cache_corrupt = 0);
  let warm = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) prog in
  let sw = sum_stats warm in
  check_int "warm run recomputes nothing" 0 sw.recomputed;
  check_bool "warm run reuses entries" true (sw.reused > 0);
  check_int "warm run detects no corruption" 0 sw.cache_corrupt;
  (* all three runs produce the same Γ, and cold/warm agree exactly *)
  check_bool "cold == monolithic" true
    (Bytes.equal mono.gamma.undef cold.gamma.undef);
  check_bool "warm == cold (gamma)" true
    (Bytes.equal cold.gamma.undef warm.gamma.undef);
  check_bool "warm == cold (gamma-tl)" true
    (Bytes.equal cold.gamma_tl.undef warm.gamma_tl.undef);
  check_int "warm == cold (states counter)" cold.gamma.states_explored
    warm.gamma.states_explored;
  rm_rf dir

let test_cache_invalidation () =
  let dir = scratch "invalidate" in
  let p1 = front (layered_src ~leaf_const:7) in
  ignore (Usher.Pipeline.analyze ~knobs:(knobs_cache dir) p1);
  (* editing [leaf]'s literal changes its IR hash, hence its key, hence —
     through key chaining — [mid]'s and [main]'s; [other] stays cached *)
  let p2 = front (layered_src ~leaf_const:8) in
  let a2 = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) p2 in
  let s2 = sum_stats a2 in
  check_bool "edit recomputes the dependent chain" true (s2.recomputed > 0);
  check_bool "edit reuses the untouched function" true (s2.reused > 0);
  (* equivalence after the incremental re-resolution *)
  let mono2 = Usher.Pipeline.analyze p2 in
  check_bool "incremental == monolithic after edit" true
    (Bytes.equal mono2.gamma.undef a2.gamma.undef);
  (* the reverse edit hits the first run's entries: nothing recomputes *)
  let a3 = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) p1 in
  check_int "reverting the edit is fully warm" 0 (sum_stats a3).recomputed;
  rm_rf dir

let test_cache_corruption () =
  let dir = scratch "corrupt" in
  let src = layered_src ~leaf_const:7 in
  let prog = front src in
  let good = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) prog in
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sum")
  in
  check_bool "cache has entries" true (entries <> []);
  (* flip one byte near the end of an entry's body: the header checksum
     must catch it, the entry must be recomputed, never trusted *)
  let victim = Filename.concat dir (List.hd (List.sort compare entries)) in
  let ic = open_in_bin victim in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string data in
  let pos = Bytes.length b - 2 in
  Bytes.set b pos (if Bytes.get b pos = 'x' then 'y' else 'x');
  let oc = open_out_bin victim in
  output_bytes oc b;
  close_out oc;
  let a = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) prog in
  let s = sum_stats a in
  check_bool "corruption detected by checksum" true (s.cache_corrupt >= 1);
  check_bool "corrupt entry recomputed" true (s.recomputed >= 1);
  check_bool "gamma unaffected by corruption" true
    (Bytes.equal good.gamma.undef a.gamma.undef);
  (* the incident is on the degradation audit trail, as an Info event *)
  check_bool "corruption surfaced as a degradation event" true
    (List.exists
       (fun (e : Usher.Degrade.event) ->
         e.phase = Diag.Resolve && e.diag.Diag.severity = Diag.Info)
       !(a.events));
  (* self-healed: the rewritten entry serves the next run *)
  let a2 = Usher.Pipeline.analyze ~knobs:(knobs_cache dir) prog in
  check_int "cache self-heals" 0 (sum_stats a2).cache_corrupt;
  check_int "healed cache is fully warm" 0 (sum_stats a2).recomputed;
  rm_rf dir

(* ---- degradation: per-SCC fallback stays exact ---- *)

let test_scc_fallback () =
  let src = layered_src ~leaf_const:7 in
  let prog = front src in
  let mono = Usher.Pipeline.analyze prog in
  let fault =
    match Usher.Fault.of_spec "resolve:mid=crash" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  let knobs = { knobs_sum with inject = [ fault ] } in
  let a = Usher.Pipeline.analyze ~knobs prog in
  let s = sum_stats a in
  check_bool "faulted SCC fell back" true (s.fallback_sccs >= 1);
  (* the fallback re-resolves exactly, so Γ is still the precise one —
     and the event is Info so certification is not skipped *)
  check_bool "fallback gamma is exact" true
    (Bytes.equal mono.gamma.undef a.gamma.undef);
  check_bool "fallback is a soft (Info) degradation" true
    (List.exists
       (fun (e : Usher.Degrade.event) ->
         e.phase = Diag.Resolve && e.diag.Diag.severity = Diag.Info)
       !(a.events));
  check_bool "no function was distrusted" true
    (Hashtbl.length a.distrusted = 0)

(* ---- callgraph: bottom-up SCC order (what the engine relies on) ---- *)

let scc_index_of (sccs : Ir.Types.fname list array) :
    (Ir.Types.fname, int) Hashtbl.t =
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i fns -> List.iter (fun f -> Hashtbl.replace idx f i) fns) sccs;
  idx

let funcs_of (prog : Ir.Prog.t) : Ir.Types.func list =
  List.rev (Ir.Prog.fold_funcs (fun acc f -> f :: acc) [] prog)

let check_bottom_up ~what (prog : Ir.Prog.t) (cg : Analysis.Callgraph.t) =
  let sccs = Analysis.Callgraph.bottom_up_sccs cg in
  let idx = scc_index_of sccs in
  (* every function appears in exactly one SCC *)
  let total = Array.fold_left (fun n l -> n + List.length l) 0 sccs in
  check_int (what ^ ": SCCs partition the functions")
    (List.length (funcs_of prog))
    total;
  check_int (what ^ ": no function in two SCCs")
    total (Hashtbl.length idx);
  List.iter
    (fun (f : Ir.Types.func) ->
      let fn = f.Ir.Types.fname in
      let fi = Hashtbl.find idx fn in
      List.iter
        (fun callee ->
          match Hashtbl.find_opt idx callee with
          | None -> ()  (* unresolved external *)
          | Some ci ->
            if ci > fi then
              Alcotest.failf
                "%s: callee %s (scc %d) does not precede caller %s (scc %d)"
                what callee ci fn fi
            else if ci = fi then
              (* same SCC: both on a cycle, so both must be recursive *)
              check_bool
                (Printf.sprintf "%s: %s and %s share an SCC => recursive" what
                   fn callee)
                true
                (fn = callee
                || Analysis.Callgraph.is_recursive cg fn
                   && Analysis.Callgraph.is_recursive cg callee))
        (Analysis.Callgraph.callees_of cg fn))
    (funcs_of prog);
  (* is_recursive agrees with the condensation: true iff the function's
     SCC is nontrivial or it calls itself directly *)
  List.iter
    (fun (f : Ir.Types.func) ->
      let fn = f.Ir.Types.fname in
      let member_count =
        Array.fold_left
          (fun n l -> if List.mem fn l then n + List.length l else n)
          0 sccs
      in
      let self_loop = List.mem fn (Analysis.Callgraph.callees_of cg fn) in
      check_bool
        (Printf.sprintf "%s: is_recursive(%s) matches SCC membership" what fn)
        (member_count > 1 || self_loop)
        (Analysis.Callgraph.is_recursive cg fn))
    (funcs_of prog)

let test_bottom_up_handwritten () =
  (* self-recursion, a mutually recursive pair, and an acyclic tail *)
  let src =
    "int self(int n) { if (n <= 0) { return 1; } return self(n - 1) + 1; }\n\
     int mb(int n) { if (n <= 0) { return 0; } return ma(n - 1); }\n\
     int ma(int n) { if (n <= 0) { return 0; } return mb(n - 1); }\n\
     int leafy(int n) { return n + 2; }\n\
     int main() { print(self(3) + ma(4) + leafy(5)); return 0; }\n"
  in
  let prog, a = analyze src in
  check_bottom_up ~what:"handwritten" prog a.cg;
  let cg = a.cg in
  check_bool "self is recursive" true (Analysis.Callgraph.is_recursive cg "self");
  check_bool "ma is recursive" true (Analysis.Callgraph.is_recursive cg "ma");
  check_bool "mb is recursive" true (Analysis.Callgraph.is_recursive cg "mb");
  check_bool "leafy is not recursive" false
    (Analysis.Callgraph.is_recursive cg "leafy");
  check_bool "main is not recursive" false
    (Analysis.Callgraph.is_recursive cg "main");
  (* ma and mb share an SCC; self and leafy have their own *)
  let sccs = Analysis.Callgraph.bottom_up_sccs cg in
  let idx = scc_index_of sccs in
  check_int "ma and mb share an SCC" (Hashtbl.find idx "ma")
    (Hashtbl.find idx "mb");
  check_bool "self is alone in its SCC" true
    (Hashtbl.find idx "self" <> Hashtbl.find idx "ma")

let bottom_up_prop =
  QCheck.Test.make ~count:60
    ~name:"bottom_up_sccs: callees precede callers (random call graphs)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      (* the fuzz generator's call graphs mix direct calls,
         function-pointer dispatch and the mutually recursive shape *)
      let prog, a = analyze (Audit.Gen.source ~seed ()) in
      check_bottom_up ~what:(Printf.sprintf "seed %d" seed) prog a.cg;
      true)

let suites =
  [
    ( "summary-differential",
      [
        QCheck_alcotest.to_alcotest differential_prop;
        tc "fixed examples agree" test_examples_equivalent;
        tc "generated workload agrees" test_workload_equivalent;
      ] );
    ( "summary-cache",
      [
        tc "cold then warm" test_cache_cold_warm;
        tc "one edit invalidates only dependents" test_cache_invalidation;
        tc "corruption is detected, never trusted" test_cache_corruption;
        tc "per-SCC fault falls back exactly" test_scc_fallback;
      ] );
    ( "summary-callgraph",
      [
        tc "handwritten recursion shapes" test_bottom_up_handwritten;
        QCheck_alcotest.to_alcotest bottom_up_prop;
      ] );
  ]
