int fz1(int n) {
  int s2 = 0;
  int c3;
  for (int i4 = 0; (i4 < 7); i4 = (i4 + 1)) {
    s2 = (s2 + c3);
    c3 = (i4 + (n ^ s2));
  }
  return (s2 + ~((n | n)));
}

int fz5(int n) {
  int x6;
  int y7;
  int* p8 = &(x6);
  int* q9 = p8;
  *(p8) = n;
  if ((n > (n >> 1))) {
    q9 = &(y7);
  } else {
    *(q9) = (*(p8) + 1);
  }
  *(q9) = (n + 15);
  return (x6 + (y7 + *(q9)));
}

int fzap11(int* f, int x) {
  return f(x);
}

int fzl12(int x) {
  return (x ^ 5);
}

int fz10(int n) {
  int s13 = 0;
  for (int i14 = 0; (i14 < 7); i14 = (i14 + 1)) {
    if (((i14 % 2) > 0)) {
      s13 = (s13 + fzap11((int*)(fz5), i14));
    } else {
      s13 = (s13 + fzap11((int*)(fzl12), i14));
    }
  }
  return s13;
}

int main() {
  int acc15 = 0;
  acc15 = (acc15 + fz1(5));
  acc15 = (acc15 + fz5(9));
  acc15 = (acc15 + fz10(2));
  print(acc15);
  return 0;
}

