int g1 = -7;
int g2 = -4;
int fz3(int n) {
  int x4;
  int y5 = 4;
  int* p6 = &(x4);
  int* q7 = p6;
  *(p6) = (56 - 5);
  if (((n >= (n / 7)) || (n > 50))) {
    q7 = &(y5);
  } else {
    *(q7) = (*(p6) + 1);
  }
  *(q7) = (n + 10);
  return (x4 + (y5 + *(q7)));
}

int fzap9(int* f, int x) {
  return f(x);
}

int fzl10(int x) {
  return (x * 6);
}

int fz8(int n) {
  int s11 = 0;
  for (int i12 = 0; (i12 < 7); i12 = (i12 + 1)) {
    if (((i12 % 2) > 0)) {
      s11 = (s11 + fzap9((int*)(fz3), i12));
    } else {
      s11 = (s11 + fzap9((int*)(fzl10), i12));
    }
  }
  return s11;
}

int fz13(int n) {
  int x14;
  int y15 = 3;
  int* p16 = &(x14);
  int* q17 = p16;
  *(p16) = ((n <= 34) ? (g1 / ((n & 15) + 1)) : (n % ((n & 15) + 1)));
  if (((n > (n / 8)) && (n != 18))) {
    q17 = &(y15);
  } else {
    *(q17) = (*(p16) + 1);
  }
  *(q17) = (n + 25);
  return (x14 + (y15 + *(q17)));
}

int main() {
  int acc18 = 0;
  acc18 = (acc18 + fz3(3));
  acc18 = (acc18 + fz8(4));
  acc18 = (acc18 + fz13(4));
  print(acc18);
  print(fz3(1));
  return 0;
}

