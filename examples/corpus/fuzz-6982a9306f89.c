int ga1[8];
int fz2(int n) {
  int a3[4];
  int s4 = 0;
  for (int i6 = 0; (i6 < 3); i6 = (i6 + 1)) {
    (a3)[i6] = ((i6 * 2) + ~(n));
  }
  for (int i5 = 0; (i5 < 7); i5 = (i5 + 1)) {
    s4 = (s4 + (a3)[((i5 + s4) & 3)]);
    if ((s4 > 1048576)) {
      s4 = (s4 - 1048576);
    }
  }
  return s4;
}

int fz7(int n) {
  int s8 = 0;
  int c9;
  for (int i10 = 0; (i10 < 9); i10 = (i10 + 1)) {
    s8 = (s8 + c9);
    c9 = (i10 + 44);
  }
  return (s8 + ~(17));
}

int fz11(int n) {
  int a12[4];
  int s13 = 0;
  for (int i15 = 0; (i15 < 3); i15 = (i15 + 1)) {
    (a12)[i15] = ((i15 * 2) + (i15 ^ s13));
  }
  for (int i14 = 0; (i14 < 3); i14 = (i14 + 1)) {
    s13 = (s13 + (a12)[((i14 + s13) & 3)]);
    if ((s13 > 1048576)) {
      s13 = (s13 - 1048576);
    }
  }
  return s13;
}

int main() {
  int acc16 = 0;
  acc16 = (acc16 + fz2(5));
  acc16 = (acc16 + fz7(3));
  acc16 = (acc16 + fz11(2));
  print(acc16);
  print(fz11(0));
  return 0;
}

