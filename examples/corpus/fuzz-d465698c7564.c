int g1 = 17;
int g2 = 24;
int ga3[8];
int fz4(int n) {
  int x5;
  int y6;
  int* p7 = &(x5);
  int* q8 = p7;
  *(p7) = ((n << 2) >> 4);
  if ((n == (n + 39))) {
    q8 = &(y6);
  } else {
    *(q8) = (*(p7) + 1);
  }
  *(q8) = (n + 7);
  return (x5 + (y6 + *(q8)));
}

int fz9(int n) {
  int s11 = 0;
  for (int i13 = 0; (i13 < 7); i13 = (i13 + 1)) {
    (ga3)[i13] = ((i13 * 2) + n);
  }
  for (int i12 = 0; (i12 < 2); i12 = (i12 + 1)) {
    s11 = (s11 + (ga3)[((i12 + s11) & 7)]);
    if ((s11 > 1048576)) {
      s11 = (s11 - 1048576);
    }
  }
  return s11;
}

int fz14(int n) {
  int x15;
  int y16 = 56;
  int* p17 = &(x15);
  int* q18 = p17;
  *(p17) = ~((n ^ 11));
  if ((n == n)) {
    q18 = &(y16);
  } else {
    *(q18) = (*(p17) + 1);
  }
  *(q18) = (n + 36);
  return (x15 + (y16 + *(q18)));
}

int main() {
  int acc19 = 0;
  acc19 = (acc19 + fz4(6));
  acc19 = (acc19 + fz9(7));
  acc19 = (acc19 + fz14(6));
  print(acc19);
  return 0;
}

