int g1 = 11;
int fz2(int n) {
  int x3;
  int y4 = 60;
  int* p5 = &(x3);
  int* q6 = p5;
  *(p5) = !(!(35));
  if (((n >= 56) && (n != 8))) {
    q6 = &(y4);
  } else {
    *(q6) = (*(p5) + 1);
  }
  *(q6) = (n + 24);
  return (x3 + (y4 + *(q6)));
}

int fz7(int n) {
  int a8[8];
  int s9 = 0;
  for (int i11 = 0; (i11 < 6); i11 = (i11 + 1)) {
    (a8)[i11] = ((i11 * 2) + (((i11 > (g1 << 4)) || (n > 31)) ? n : s9));
  }
  for (int i10 = 0; (i10 < 2); i10 = (i10 + 1)) {
    s9 = (s9 + (a8)[((i10 + s9) & 7)]);
    if ((s9 > 1048576)) {
      s9 = (s9 - 1048576);
    }
  }
  return s9;
}

int fz12(int n) {
  int v13;
  int v14 = (((n >= ((v14 >= (29 << 4)) ? g1 : v14)) && (v14 != 47)) ? v14 : n);
  int s15 = (n + 20);
  for (int i16 = 0; (i16 < 3); i16 = (i16 + 1)) {
    s15 = (s15 + (i16 * s15));
  }
  s15 = s15;
  s15 = (10 / ((v14 & 15) + 1));
  for (int i17 = 0; (i17 < 5); i17 = (i17 + 1)) {
    s15 = (s15 + (i17 * n));
  }
  v13 = (s15 ^ v14);
  return (s15 + -(50));
}

int fz18(int n) {
  int a19[16];
  int s20 = 0;
  for (int i22 = 0; (i22 < 14); i22 = (i22 + 1)) {
    (a19)[i22] = ((i22 * 2) + (11 << 0));
  }
  for (int i21 = 0; (i21 < 4); i21 = (i21 + 1)) {
    {
      s20 = (s20 + (a19)[((i21 + s20) & 15)]);
      if ((s20 > 1048576)) {
        s20 = (s20 - 1048576);
      }
    }
  }
  return s20;
}

int main() {
  int acc23 = 0;
  acc23 = (acc23 + fz2(3));
  acc23 = (acc23 + fz7(9));
  acc23 = (acc23 + fz12(7));
  acc23 = (acc23 + fz18(6));
  print(acc23);
  print(fz18(2));
  return 0;
}

