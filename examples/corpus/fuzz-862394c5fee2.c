int g1 = -23;
int g2 = 15;
int ga3[8];
struct S5 { int f0; int f1; int f2; int f3; };

int fz4(int n) {
  struct S5 sv6;
  (sv6).f0 = g1;
  return ((sv6).f0 + ((sv6).f3 + n));
}

int fz7(int n) {
  int a8[8];
  int s9 = 0;
  for (int i11 = 0; (i11 < 7); i11 = (i11 + 1)) {
    (a8)[i11] = ((i11 * 2) + 23);
  }
  for (int i10 = 0; (i10 < 9); i10 = (i10 + 1)) {
    s9 = (s9 + (a8)[((i10 + s9) & 7)]);
    if ((s9 > 1048576)) {
      s9 = (s9 - 1048576);
    }
  }
  return s9;
}

int fz12(int n) {
  int v13;
  int v14 = (v14 + v14);
  int s15 = (n + 14);
  if ((s15 >= (53 / 13))) {
    s15 = (s15 + (v13 >> 0));
  }
  if (((v14 == g2) || (s15 > 51))) {
    s15 = (s15 + ~((1 ^ 24)));
  }
  s15 = (s15 + fz7((44 ^ 20)));
  if ((n <= s15)) {
    s15 = (s15 + 18);
  }
  return (s15 + (1 + 4));
}

struct S17 { int f0; int f1; };

int fz16(int n) {
  struct S17* sv18 = (struct S17*)(malloc(sizeof(struct S17)));
  (sv18)->f0 = (8 ^ g1);
  return ((sv18)->f0 + ((sv18)->f0 + n));
}

int main() {
  int acc19 = 0;
  acc19 = (acc19 + fz4(9));
  acc19 = (acc19 + fz7(8));
  acc19 = (acc19 + fz12(5));
  acc19 = (acc19 + fz16(3));
  print(acc19);
  print(fz4(2));
  return 0;
}

