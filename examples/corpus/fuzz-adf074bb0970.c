int g1 = 8;
int ga2[8];
int fz3(int n) {
  int x4;
  int y5 = 3;
  int* p6 = &(x4);
  int* q7 = p6;
  *(p6) = 53;
  if (((n >= ~(n)) && (n != 55))) {
    q7 = &(y5);
  } else {
    *(q7) = (*(p6) + 1);
  }
  *(q7) = (n + 30);
  return (x4 + (y5 + *(q7)));
}

int fzap9(int* f, int x) {
  return f(x);
}

int fzl10(int x) {
  return (x ^ 3);
}

int fz8(int n) {
  int s11 = 0;
  for (int i12 = 0; (i12 < 7); i12 = (i12 + 1)) {
    if (((i12 % 2) > 0)) {
      s11 = (s11 + fzap9((int*)(fz3), i12));
    } else {
      s11 = (s11 + fzap9((int*)(fzl10), i12));
    }
  }
  return s11;
}

int fzl14(int x) {
  return (x + 1);
}

int fzl15(int x) {
  return (x * 7);
}

int fz13(int n) {
  int s16 = 0;
  for (int i17 = 0; (i17 < 3); i17 = (i17 + 1)) {
    if (((i17 % 2) > 0)) {
      s16 = (s16 + fzap9((int*)(fzl14), i17));
    } else {
      s16 = (s16 + fzap9((int*)(fzl15), i17));
    }
  }
  return s16;
}

int main() {
  int acc18 = 0;
  acc18 = (acc18 + fz3(6));
  acc18 = (acc18 + fz8(4));
  acc18 = (acc18 + fz13(9));
  print(acc18);
  return 0;
}

