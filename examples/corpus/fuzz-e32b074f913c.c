int fz1(int n) {
  int v2 = (20 / ((n & 15) + 1));
  int v3 = (59 % 14);
  int s4 = (n + 14);
  if (((n <= (51 + n)) && (v3 != 31))) {
    s4 = (s4 + (n ^ (46 - 24)));
  }
  if (((s4 != (12 % 14)) && (s4 != 16))) {
    s4 = (s4 + ((58 ^ 1) / ((v2 & 15) + 1)));
  }
  return (s4 + ((s4 < !(s4)) ? v2 : v2));
}

int fzap6(int* f, int x) {
  return f(x);
}

int fzl7(int x) {
  return (x ^ 9);
}

int fz5(int n) {
  int s8 = 0;
  for (int i9 = 0; (i9 < 4); i9 = (i9 + 1)) {
    if (((i9 % 2) > 0)) {
      s8 = (s8 + fzap6((int*)(fz1), i9));
    } else {
      s8 = (s8 + fzap6((int*)(fzl7), i9));
    }
  }
  return s8;
}

int fz10(int n) {
  int s11 = 0;
  int c12;
  for (int i13 = 0; (i13 < 8); i13 = (i13 + 1)) {
    s11 = (s11 + c12);
    c12 = (i13 + (21 % ((i13 & 15) + 1)));
  }
  return (s11 + (((n > s11) || (s11 > 40)) ? !(s11) : !(s11)));
}

struct S15 { int f0; int f1; int f2; };

int fz14(int n) {
  struct S15* sv16 = (struct S15*)(malloc(sizeof(struct S15)));
  (sv16)->f0 = n;
  (sv16)->f1 = (37 * n);
  return ((sv16)->f0 + ((sv16)->f0 + n));
}

int main() {
  int acc17 = 0;
  acc17 = (acc17 + fz1(3));
  acc17 = (acc17 + fz5(3));
  acc17 = (acc17 + fz10(3));
  acc17 = (acc17 + fz14(7));
  print(acc17);
  return 0;
}

