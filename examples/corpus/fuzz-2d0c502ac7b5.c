int ga1[8];
int fz2(int n) {
  int v3 = (n + v3);
  int v4;
  int v5;
  int v6 = 16;
  int s7 = (n + 54);
  v5 = ((s7 >= s7) ? 4 : n);
  for (int i8 = 0; (i8 < 2); i8 = (i8 + 1)) {
    s7 = (s7 + (i8 * s7));
  }
  if ((s7 < v3)) {
    s7 = (s7 + s7);
  }
  s7 = (s7 - (((v6 != (49 / ((v6 & 15) + 1))) && (v3 != 9)) ? 4 : v6));
  return (s7 + (v4 - 62));
}

struct S10 { int f0; int f1; int f2; };

int fz9(int n) {
  struct S10 sv11;
  (sv11).f0 = 31;
  return ((sv11).f0 + ((sv11).f1 + n));
}

int fz12(int n) {
  int s13 = 0;
  int c14;
  for (int i15 = 0; (i15 < 2); i15 = (i15 + 1)) {
    s13 = (s13 + c14);
    c14 = (i15 + (44 ^ 4));
  }
  return (s13 + !((39 - 52)));
}

int main() {
  int acc16 = 0;
  acc16 = (acc16 + fz2(8));
  acc16 = (acc16 + fz9(2));
  acc16 = (acc16 + fz12(6));
  print(acc16);
  return 0;
}

