(* usherc — command-line driver for the Usher library.

     usherc analyze FILE   static analysis: stats, optional artifact dumps
     usherc run FILE       execute under a chosen instrumentation variant
     usherc check FILE     certificate check: independently re-verify the
                           points-to, memory-SSA and VFG/Γ results
     usherc gen NAME       print a SPEC2000-analog TinyC source
     usherc bench NAME     one benchmark end to end (all variants)
     usherc audit          differential soundness audit over the corpus

   Programs are TinyC sources (see README).

   Exit codes (run, bench, audit, check):
     0  clean
     3  a use of an undefined value was detected
     4  soundness divergence: a ground-truth undefined use escaped the
        instrumentation (or, for audit, any captured soundness incident)
     5  a certificate checker rejected a static-analysis result *)

open Cmdliner

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Diag.error Diag.Driver "cannot read file: %s" msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try really_input_string ic (in_channel_length ic)
        with
        | Sys_error msg -> Diag.error Diag.Driver "cannot read %s: %s" path msg
        | End_of_file ->
          Diag.error Diag.Driver "cannot read %s: truncated read" path)

let level_conv =
  let parse = function
    | "O0+IM" | "o0" | "O0" -> Ok Optim.Pipeline.O0_IM
    | "O1" | "o1" -> Ok Optim.Pipeline.O1
    | "O2" | "o2" -> Ok Optim.Pipeline.O2
    | s -> Error (`Msg ("unknown optimization level " ^ s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Optim.Pipeline.level_to_string l))

let variant_conv =
  let parse = function
    | "msan" -> Ok Usher.Config.Msan
    | "tl" -> Ok Usher.Config.Usher_tl
    | "tlat" | "tl+at" -> Ok Usher.Config.Usher_tl_at
    | "opt1" | "opti" -> Ok Usher.Config.Usher_opt1
    | "usher" | "full" -> Ok Usher.Config.Usher_full
    | s -> Error (`Msg ("unknown variant " ^ s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Usher.Config.variant_name v))

let level_arg =
  Arg.(value & opt level_conv Optim.Pipeline.O0_IM
       & info [ "l"; "level" ] ~doc:"Optimization level: O0+IM, O1 or O2.")

let variant_arg =
  Arg.(value & opt variant_conv Usher.Config.Usher_full
       & info [ "v"; "variant" ] ~doc:"Variant: msan, tl, tl+at, opt1 or usher.")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

(* ---- resource budgets and fault injection ---- *)

let budget_ms_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-ms" ]
           ~doc:"Wall-clock budget for the whole analysis, in milliseconds. \
                 Phases that outlive it degrade soundly instead of crashing.")

let solver_fuel_arg =
  Arg.(value & opt (some int) None
       & info [ "solver-fuel" ]
           ~doc:"Maximum Andersen worklist iterations before degradation.")

let vfg_cap_arg =
  Arg.(value & opt (some int) None
       & info [ "vfg-cap" ] ~doc:"Maximum VFG nodes before degradation.")

let resolve_fuel_arg =
  Arg.(value & opt (some int) None
       & info [ "resolve-fuel" ]
           ~doc:"Maximum Γ-resolution states before degradation.")

let fault_conv =
  let parse s =
    match Usher.Fault.of_spec s with Ok f -> Ok f | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf f -> Fmt.string ppf (Usher.Fault.to_string f))

let inject_arg =
  Arg.(value & opt_all fault_conv []
       & info [ "inject" ]
           ~docv:"PHASE[:FUNC][=crash|exhaust|pts-bitflip|drop-vfg-edge|gamma-flip]"
           ~doc:"Inject a fault (repeatable). crash/exhaust fire at a phase \
                 boundary and the pipeline must degrade, not crash; the \
                 corruption kinds silently damage a finished artifact \
                 (andersen=pts-bitflip, vfg=drop-vfg-edge, \
                 resolve=gamma-flip), which the certificate checkers must \
                 catch. Phases: optim, andersen, callgraph, modref, memssa, \
                 vfg, resolve, opt2, instrument, verify.")

let quarantine_arg =
  Arg.(value & opt (some string) None
       & info [ "quarantine" ] ~docv:"DIR"
           ~doc:"Load the audit quarantine list from $(docv) \
                 (quarantine.list, as written by usherc audit); every \
                 listed function is forced onto full instrumentation.")

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run the certificate checkers (lib/verify) after each \
                 pipeline phase: replayed constraints for points-to, \
                 memory-SSA well-formedness, VFG structure and Γ \
                 fixpointness. A rejected certificate degrades soundly \
                 (function distrust or full instrumentation) instead of \
                 trusting the result.")

let knobs_of budget_ms solver_fuel vfg_cap resolve_fuel verify inject quarantine
    =
  let knobs =
    {
      Usher.Config.default_knobs with
      budget_ms;
      solver_fuel;
      vfg_node_cap = vfg_cap;
      resolve_fuel;
      verify;
      inject;
    }
  in
  match quarantine with
  | None -> knobs
  | Some dir -> Audit.Quarantine.apply_dir dir knobs

let knobs_term =
  Term.(const knobs_of $ budget_ms_arg $ solver_fuel_arg $ vfg_cap_arg
        $ resolve_fuel_arg $ verify_arg $ inject_arg $ quarantine_arg)

(* ---- observability (lib/obs) ---- *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace_event timeline — one span per \
                 pipeline phase and per function, degradation/quarantine \
                 instant events, periodic GC samples — and write it to \
                 $(docv) on exit. Open the file in chrome://tracing or \
                 https://ui.perfetto.dev. Off by default; tracing never \
                 changes analysis results.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the process-wide metrics registry (work counters, \
                 gauges, log2-bucket histograms) after the command.")

let print_metrics () =
  Printf.printf "metrics:\n";
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Counter n -> Printf.printf "  %-34s %d\n" name n
      | Obs.Metrics.Gauge g -> Printf.printf "  %-34s %g\n" name g
      | Obs.Metrics.Histogram { count; sum; buckets } ->
        Printf.printf "  %-34s count %d sum %d buckets %s\n" name count sum
          (String.concat " "
             (List.map
                (fun (lo, n) -> Printf.sprintf "%d:%d" lo n)
                buckets)))
    (Obs.Metrics.snapshot ())

(** Run a command body under the requested observability: arm the tracer
    before any analysis, write the trace file on the way out (even when
    the command raises — a partial timeline of a crash is exactly when you
    want one), and dump metrics last. *)
let observed trace metrics (f : unit -> int) : int =
  if trace <> None then Obs.Trace.start ();
  let flush_trace () =
    match trace with
    | None -> ()
    | Some path ->
      Obs.Trace.write path;
      Printf.printf "(wrote Chrome trace to %s; open in chrome://tracing or \
                     ui.perfetto.dev)\n"
        path
  in
  match f () with
  | code ->
    flush_trace ();
    if metrics then print_metrics ();
    code
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    flush_trace ();
    Printexc.raise_with_backtrace e bt

(* Per-checker certificate summaries (--verify). *)
let print_verify_reports (reports : Verify.Report.t list) =
  List.iter
    (fun r -> Printf.printf "verify: %s\n" (Verify.Report.summary_line r))
    reports

(* Report what the resilience ladder did, if anything. *)
let print_degradation (a : Usher.Pipeline.analysis)
    (front_events : Usher.Degrade.event list) =
  print_verify_reports a.verify_reports;
  List.iter
    (fun e -> Printf.printf "%s\n" (Usher.Degrade.to_string e))
    (front_events @ !(a.events));
  if a.degraded_all then
    Printf.printf "analysis degraded: every variant uses full (MSan) instrumentation\n"
  else begin
    match Usher.Pipeline.distrusted_functions a with
    | [] -> ()
    | fns ->
      Printf.printf "degraded functions (full instrumentation): %s\n"
        (String.concat ", " fns)
  end

let dump_arg =
  Arg.(value & opt_all (enum [ ("ir", `Ir); ("memssa", `Memssa); ("vfg", `Vfg);
                               ("plan", `Plan); ("cfg-dot", `Cfg_dot);
                               ("vfg-dot", `Vfg_dot) ]) []
       & info [ "dump" ]
           ~doc:"Dump an artifact: ir, memssa, vfg, plan, cfg-dot or vfg-dot \
                 (the -dot forms are Graphviz).")

(* ---- analyze ---- *)

let analyze_cmd =
  let run file level variant dumps knobs trace metrics =
    observed trace metrics @@ fun () ->
    let src = read_file file in
    let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
    let a = Usher.Pipeline.analyze ~knobs prog in
    let plan, guided = Usher.Pipeline.plan_for a variant in
    let stats = Instr.Item.stats_of plan in
    let t1 = Usher.Analysis_stats.compute ~src a in
    List.iter
      (function
        | `Ir -> print_string (Ir.Printer.prog_to_string prog)
        | `Memssa -> print_string (Memssa.to_string a.mssa)
        | `Vfg ->
          Vfg.Graph.iter_nodes
            (fun id n ->
              let mark = if Vfg.Resolve.is_undef a.gamma id then "BOT" else "TOP" in
              Printf.printf "%4d %s %s\n" id mark
                (Vfg.Graph.node_to_string prog a.pa.objects n);
              List.iter
                (fun (d, k) ->
                  let kind =
                    match k with
                    | Vfg.Graph.Eintra -> ""
                    | Vfg.Graph.Ecall l -> Printf.sprintf " [call l%d]" l
                    | Vfg.Graph.Eret l -> Printf.sprintf " [ret l%d]" l
                  in
                  Printf.printf "       -> %s%s\n"
                    (Vfg.Graph.node_to_string prog a.pa.objects
                       (Vfg.Graph.node_of a.vfg.graph d))
                    kind)
                (Vfg.Graph.succs a.vfg.graph id))
            a.vfg.graph
        | `Cfg_dot -> print_string (Ir.Dot.prog_to_string prog)
        | `Vfg_dot -> print_string (Vfg.Dot.to_string ~gamma:a.gamma a.vfg)
        | `Plan ->
          Array.iteri
            (fun lbl items ->
              List.iter
                (fun (it : Instr.Item.item) ->
                  Printf.printf "l%d %s: %s\n" lbl
                    (match it.pos with Instr.Item.Before -> "pre " | After -> "post")
                    (Instr.Item.action_to_string prog it.act))
                (List.rev items))
            plan.items)
      dumps;
    Printf.printf "variant: %s\n" (Usher.Config.variant_name variant);
    Printf.printf "statements: %d   Var_TL: %d   Var_AT: %d stack / %d heap / %d global\n"
      (Ir.Prog.size prog) t1.var_tl t1.var_at_stack t1.var_at_heap t1.var_at_global;
    Printf.printf "VFG nodes: %d (%.0f%% need tracking)   stores: %.0f%% strong, %.0f%% weak-singleton\n"
      t1.vfg_nodes t1.pct_reaching t1.pct_strong t1.pct_weak_singleton;
    Printf.printf "static shadow propagations: %d   checks: %d   items: %d\n"
      stats.propagations stats.checks stats.total_items;
    Printf.printf
      "pointer solver: %d iterations, %d cycles collapsed, %d copy edges deduped\n"
      t1.pa_solve_iterations t1.pa_sccs_collapsed t1.pa_edges_deduped;
    Printf.printf
      "resolution: %d states, %d VFG SCCs collapsed (condensation ratio %.3f)\n"
      t1.resolve_states t1.resolve_condensed_sccs t1.condensation_ratio;
    (match guided with
    | Some g ->
      Printf.printf "guided traversal reached %d nodes; Opt I simplified %d closures\n"
        g.needed_nodes g.opt1_simplified
    | None -> ());
    Printf.printf "Opt II redirected %d nodes\n" a.opt2.redirected;
    print_degradation a front_events;
    0
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Statically analyze a TinyC program")
    Term.(const run $ file_arg $ level_arg $ variant_arg $ dump_arg $ knobs_term
          $ trace_arg $ metrics_arg)

(* ---- run ---- *)

let run_cmd =
  let run file level variant knobs trace metrics =
    observed trace metrics @@ fun () ->
    let src = read_file file in
    let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
    let a = Usher.Pipeline.analyze ~knobs prog in
    let plan, _ = Usher.Pipeline.plan_for a variant in
    print_degradation a front_events;
    let native = Runtime.Interp.run_native prog in
    let o = Runtime.Interp.run_plan prog plan in
    List.iter (fun v -> Printf.printf "output: %d\n" v) o.outputs;
    Printf.printf "exit: %d\n" o.exit_value;
    List.iter
      (fun l ->
        Printf.printf "WARNING: use of undefined value at statement l%d\n" l)
      (Runtime.Interp.detection_labels o);
    Printf.printf "slowdown vs native: %.1f%%  (%d shadow ops over %d base ops)\n"
      (Runtime.Costmodel.slowdown_pct ~native:native.counters
         ~instrumented:o.counters ())
      (Runtime.Counters.shadow_ops o.counters)
      (Runtime.Counters.base_ops o.counters);
    (* Exit code: any ground-truth undefined use (from the native run) the
       instrumented run fails to cover is a soundness divergence. *)
    let escaped =
      List.filter
        (fun l -> not (Usher.Experiment.covered prog o.detections l))
        (Runtime.Interp.gt_use_labels native)
    in
    List.iter
      (fun l ->
        Printf.printf
          "SOUNDNESS: undefined use at statement l%d escaped %s instrumentation\n"
          l (Usher.Config.variant_name variant))
      escaped;
    if escaped <> [] then 4
    else if Hashtbl.length o.detections > 0 then 3
    else 0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a TinyC program under instrumentation. Exits 0 when \
             clean, 3 when a use of an undefined value is detected, 4 when \
             a ground-truth undefined use escapes the instrumentation.")
    Term.(const run $ file_arg $ level_arg $ variant_arg $ knobs_term
          $ trace_arg $ metrics_arg)

(* ---- check ---- *)

let check_cmd =
  let run file level knobs incident_dir trace metrics =
    observed trace metrics @@ fun () ->
    let src = read_file file in
    let prog, front_events = Usher.Pipeline.front_guarded ~level ~knobs src in
    let a = Usher.Pipeline.analyze ~knobs prog in
    print_degradation a front_events;
    if a.degraded_all then begin
      (* Rung 4 left no static results in use — there is nothing to
         certify, and full instrumentation is sound by construction. *)
      Printf.printf
        "check: analysis degraded to full instrumentation; no static \
         certificates in use\n";
      0
    end
    else begin
      let skip fn = Hashtbl.mem a.distrusted fn in
      let forced = Hashtbl.length a.distrusted > 0 in
      (* A Γ that fell back to all-⊥ certifies nothing; checking it against
         F-reachability would flag its (sound) over-approximation. *)
      let resolve_degraded =
        List.exists
          (fun (e : Usher.Degrade.event) -> e.phase = Diag.Resolve)
          !(a.events)
      in
      let gi suffix bld gamma =
        {
          Verify.Run.gi_suffix = suffix;
          gi_build = bld;
          gi_gamma = (if resolve_degraded then None else Some gamma);
          gi_allow_f_pins = forced;
        }
      in
      let budget = Usher.Budget.of_knobs knobs in
      let reports =
        Verify.Run.check_all ?budget ~skip
          ~context_sensitive:knobs.Usher.Config.context_sensitive prog a.pa
          a.cg a.mr a.mssa
          [ gi "" a.vfg a.gamma; gi "-tl" a.vfg_tl a.gamma_tl ]
      in
      print_verify_reports reports;
      let print_violation (v : Verify.Report.violation) =
        Printf.printf "violation%s: %s\n"
          (match v.Verify.Report.vfunc with
          | Some fn -> " in " ^ fn
          | None -> "")
          (Diag.to_string v.Verify.Report.vdiag)
      in
      List.iter
        (fun r -> List.iter print_violation (Verify.Report.errors r))
        reports;
      if Verify.Run.all_ok reports then begin
        Printf.printf "check: all certificates verified\n";
        0
      end
      else begin
        let functions =
          List.concat_map
            (fun r ->
              List.filter_map
                (fun (v : Verify.Report.violation) -> v.Verify.Report.vfunc)
                (Verify.Report.errors r))
            reports
          |> List.sort_uniq compare
        in
        let rejected =
          List.filter (fun r -> not (Verify.Report.ok r)) reports
        in
        let inc =
          Audit.Incident.make ~kind:Audit.Incident.Static_violation
            ~variant:
              (String.concat "+"
                 (List.map (fun (r : Verify.Report.t) -> r.checker) rejected))
            ~seed:0 ~mutation:"" ~functions ~labels:[]
            ~knobs:(Audit.Loop.knobs_summary knobs) ~source:src ()
        in
        let path = Audit.Incident.save ~dir:incident_dir inc in
        Printf.printf
          "check: %d certificate violation(s); incident recorded at %s\n"
          (Verify.Run.total_violations reports)
          path;
        5
      end
    end
  in
  let incident_dir_arg =
    Arg.(value & opt string ".usher-audit"
         & info [ "incident-dir" ] ~docv:"DIR"
             ~doc:"Directory for static-violation incident artifacts \
                   (written only when a certificate is rejected).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Independently re-verify the static analysis of a TinyC \
             program: replay the Andersen constraints against the \
             points-to solution, check memory-SSA well-formedness, replay \
             the VFG construction rules, and validate Γ as a fixpoint of \
             F-reachability. Exits 0 when every certificate verifies, 5 \
             when any checker finds a violation (an incident artifact is \
             then recorded).")
    Term.(const run $ file_arg $ level_arg $ knobs_term $ incident_dir_arg
          $ trace_arg $ metrics_arg)

(* ---- gen ---- *)

let gen_cmd =
  let run name scale =
    let p = Workloads.Spec2000.find name in
    print_string (Workloads.Spec2000.source ~scale p);
    0
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let scale_arg =
    Arg.(value & opt int 30 & info [ "scale" ] ~doc:"Input scale (100 = nominal).")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Print a SPEC2000-analog TinyC source")
    Term.(const run $ name_arg $ scale_arg)

(* ---- bench ---- *)

let bench_cmd =
  let run name scale level knobs trace metrics =
    observed trace metrics @@ fun () ->
    let p = Workloads.Spec2000.find name in
    let src = Workloads.Spec2000.source ~scale p in
    match Usher.Experiment.run ~name ~level ~knobs src with
    | exception Usher.Experiment.Unsound msg ->
      Printf.printf "SOUNDNESS: %s\n" msg;
      4
    | e ->
      Printf.printf "%s at %s (scale %d):\n" name
        (Optim.Pipeline.level_to_string level) scale;
      List.iter
        (fun (r : Usher.Experiment.variant_result) ->
          Printf.printf "  %-12s slowdown %6.1f%%  props %6d  checks %5d  detections %d\n"
            (Usher.Config.variant_name r.variant)
            r.slowdown_pct r.static_stats.propagations r.static_stats.checks
            (List.length r.detections))
        e.results;
      print_degradation e.analysis [];
      if
        List.exists
          (fun (r : Usher.Experiment.variant_result) -> r.detections <> [])
          e.results
      then 3
      else 0
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let scale_arg =
    Arg.(value & opt int 30 & info [ "scale" ] ~doc:"Input scale (100 = nominal).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run one SPEC2000 analog end to end. Exits 0 when clean, 3 when \
             undefined uses are detected, 4 on a soundness divergence.")
    Term.(const run $ name_arg $ scale_arg $ level_arg $ knobs_term
          $ trace_arg $ metrics_arg)

(* ---- audit ---- *)

let audit_cmd =
  let run corpus scale mutants seed budget_ms dir hole no_reduce quiet level
      trace metrics =
    observed trace metrics @@ fun () ->
    let profiles =
      match corpus with
      | [] -> Workloads.Spec2000.all
      | names ->
        List.map
          (fun n ->
            try Workloads.Spec2000.find n
            with Not_found ->
              Diag.error Diag.Driver "unknown benchmark %s" n)
          names
    in
    let cfg =
      {
        Audit.Loop.default_config with
        profiles;
        scale;
        mutants;
        seed;
        budget_ms;
        dir;
        hole;
        minimize = not no_reduce;
        level;
        log = (if quiet then ignore else fun s -> Printf.printf "%s\n%!" s);
      }
    in
    let s = Audit.Loop.run cfg in
    Printf.printf
      "audit: %d program(s), %d mutant(s), %d skipped%s\n"
      s.programs s.mutants_run s.skipped
      (if s.out_of_time then " (budget expired)" else "");
    Printf.printf
      "incidents: %d soundness, %d precision  quarantined: %s  healed: %d\n"
      s.soundness_incidents s.precision_incidents
      (match s.quarantined with [] -> "none" | q -> String.concat ", " q)
      s.healed;
    List.iter
      (fun (i : Audit.Incident.t) ->
        Printf.printf "  %s %s (%s)\n"
          (Audit.Incident.kind_name i.kind) i.id i.variant)
      s.incidents;
    if s.soundness_incidents > 0 then 4 else 0
  in
  let corpus_arg =
    Arg.(value & opt_all string []
         & info [ "corpus" ] ~docv:"BENCHMARK"
             ~doc:"Audit only this benchmark profile (repeatable); default \
                   is the whole SPEC2000-analog corpus.")
  in
  let scale_arg =
    Arg.(value & opt int 5
         & info [ "scale" ] ~doc:"Input scale for generated programs.")
  in
  let mutants_arg =
    Arg.(value & opt int 3
         & info [ "mutants" ] ~doc:"AST mutants audited per base program.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fuzzing seed (determinism).")
  in
  let dir_arg =
    Arg.(value & opt string ".usher-audit"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Incident artifact + quarantine directory.")
  in
  let hole_arg =
    Arg.(value & opt (some string) None
         & info [ "inject-hole" ] ~docv:"PREFIX"
             ~doc:"Test hook: delete every check guided plans place in \
                   functions whose name starts with $(docv) — a seeded \
                   soundness bug the sentinel must catch.")
  in
  let no_reduce_arg =
    Arg.(value & flag
         & info [ "no-reduce" ]
             ~doc:"Skip ddmin reduction of soundness incidents.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the final summary.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Differential soundness audit: run workload-generated programs \
             and AST mutants through every variant, cross-check detections \
             against interpreter ground truth, capture + reduce incidents, \
             and quarantine implicated functions. Exits 4 if any soundness \
             incident was captured, 0 otherwise.")
    Term.(const run $ corpus_arg $ scale_arg $ mutants_arg $ seed_arg
          $ budget_ms_arg $ dir_arg $ hole_arg $ no_reduce_arg $ quiet_arg
          $ level_arg $ trace_arg $ metrics_arg)

let main =
  Cmd.group
    (Cmd.info "usherc" ~version:"1.0.0"
       ~doc:"Usher: static value-flow analysis accelerating undefined-value detection")
    [ analyze_cmd; run_cmd; check_cmd; gen_cmd; bench_cmd; audit_cmd ]

(* Structured diagnostics (bad source, interpreter traps) exit cleanly
   with the located message instead of a backtrace. *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Diag.Error d ->
    prerr_endline ("usherc: " ^ Diag.to_string d);
    exit 1
  | exception Runtime.Interp.Runtime_error msg ->
    prerr_endline ("usherc: runtime error: " ^ msg);
    exit 1
  | exception Runtime.Interp.Resource_exhausted { what; limit } ->
    prerr_endline
      (Printf.sprintf "usherc: interpreter limit exhausted: %s (limit %d)" what
         limit);
    exit 1
