(* usherc — command-line driver for the Usher library.

     usherc analyze FILE   static analysis: stats, optional artifact dumps
     usherc run FILE       execute under a chosen instrumentation variant
     usherc check FILE     certificate check: independently re-verify the
                           points-to, memory-SSA and VFG/Γ results
     usherc gen NAME       print a SPEC2000-analog TinyC source
     usherc bench NAME     one benchmark end to end (all variants)
     usherc audit          differential soundness audit over the corpus
     usherc fuzz           generative differential fuzzing (or daemon soak)
     usherc serve          analysis-as-a-service daemon (NDJSON protocol)

   Programs are TinyC sources (see README).

   The analyze/run/check/bench bodies live in [Serve.Handlers], shared
   verbatim with the daemon — a served reply is byte-identical to the
   one-shot run by construction.

   Exit codes (run, bench, audit, check; serve mirrors them as reply
   codes):
     0  clean
     3  a use of an undefined value was detected
     4  soundness divergence: a ground-truth undefined use escaped the
        instrumentation (or, for audit, any captured soundness incident)
     5  a certificate checker rejected a static-analysis result
     6  (serve replies) overloaded: shed by admission control or drain
     7  (serve replies) quarantined: the request crashed its worker past
        the retry cap; an incident artifact was filed *)

open Cmdliner

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Diag.error Diag.Driver "cannot read file: %s" msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try really_input_string ic (in_channel_length ic)
        with
        | Sys_error msg -> Diag.error Diag.Driver "cannot read %s: %s" path msg
        | End_of_file ->
          Diag.error Diag.Driver "cannot read %s: truncated read" path)

let level_conv =
  let parse = function
    | "O0+IM" | "o0" | "O0" -> Ok Optim.Pipeline.O0_IM
    | "O1" | "o1" -> Ok Optim.Pipeline.O1
    | "O2" | "o2" -> Ok Optim.Pipeline.O2
    | s -> Error (`Msg ("unknown optimization level " ^ s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Optim.Pipeline.level_to_string l))

let variant_conv =
  let parse = function
    | "msan" -> Ok Usher.Config.Msan
    | "tl" -> Ok Usher.Config.Usher_tl
    | "tlat" | "tl+at" -> Ok Usher.Config.Usher_tl_at
    | "opt1" | "opti" -> Ok Usher.Config.Usher_opt1
    | "usher" | "full" -> Ok Usher.Config.Usher_full
    | s -> Error (`Msg ("unknown variant " ^ s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Usher.Config.variant_name v))

let level_arg =
  Arg.(value & opt level_conv Optim.Pipeline.O0_IM
       & info [ "l"; "level" ] ~doc:"Optimization level: O0+IM, O1 or O2.")

let variant_arg =
  Arg.(value & opt variant_conv Usher.Config.Usher_full
       & info [ "v"; "variant" ] ~doc:"Variant: msan, tl, tl+at, opt1 or usher.")

let engine_conv =
  let parse s =
    match Vm.Engine.of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg ("unknown engine " ^ s))
  in
  Arg.conv (parse, fun ppf e -> Fmt.string ppf (Vm.Engine.name e))

let engine_arg =
  Arg.(value & opt engine_conv Vm.Engine.Interp
       & info [ "engine" ]
           ~doc:"Execution engine: interp (the reference interpreter) or vm                  (the threaded-dispatch bytecode VM; identical outcomes,                  faster).")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

(* ---- resource budgets and fault injection ---- *)

let budget_ms_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-ms" ]
           ~doc:"Wall-clock budget for the whole analysis, in milliseconds. \
                 Phases that outlive it degrade soundly instead of crashing.")

let solver_fuel_arg =
  Arg.(value & opt (some int) None
       & info [ "solver-fuel" ]
           ~doc:"Maximum Andersen worklist iterations before degradation.")

let vfg_cap_arg =
  Arg.(value & opt (some int) None
       & info [ "vfg-cap" ] ~doc:"Maximum VFG nodes before degradation.")

let resolve_fuel_arg =
  Arg.(value & opt (some int) None
       & info [ "resolve-fuel" ]
           ~doc:"Maximum Γ-resolution states before degradation.")

let fault_conv =
  let parse s =
    match Usher.Fault.of_spec s with Ok f -> Ok f | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf f -> Fmt.string ppf (Usher.Fault.to_string f))

let inject_arg =
  Arg.(value & opt_all fault_conv []
       & info [ "inject" ]
           ~docv:"PHASE[:FUNC][=crash|exhaust|pts-bitflip|drop-vfg-edge|gamma-flip]"
           ~doc:"Inject a fault (repeatable). crash/exhaust fire at a phase \
                 boundary and the pipeline must degrade, not crash; the \
                 corruption kinds silently damage a finished artifact \
                 (andersen=pts-bitflip, vfg=drop-vfg-edge, \
                 resolve=gamma-flip), which the certificate checkers must \
                 catch. Phases: optim, andersen, callgraph, modref, memssa, \
                 vfg, resolve, opt2, instrument, verify.")

let quarantine_arg =
  Arg.(value & opt (some string) None
       & info [ "quarantine" ] ~docv:"DIR"
           ~doc:"Load the audit quarantine list from $(docv) \
                 (quarantine.list, as written by usherc audit); every \
                 listed function is forced onto full instrumentation.")

let summaries_arg =
  Arg.(value & flag
       & info [ "summaries" ]
           ~doc:"Resolve Γ compositionally from per-function value-flow \
                 summaries solved bottom-up over the call graph \
                 (lib/summary) instead of the monolithic whole-program \
                 search. Γ, instrumentation plans and certificates are \
                 byte-identical by contract. Implied by $(b,--cache).")

let no_summaries_arg =
  Arg.(value & flag
       & info [ "no-summaries" ]
           ~doc:"Force the monolithic resolution path even when \
                 $(b,--summaries) or $(b,--cache) is given.")

let cache_arg =
  Arg.(value & opt (some string) None
       & info [ "cache" ] ~docv:"DIR"
           ~doc:"Persist per-SCC value-flow summaries under $(docv), keyed \
                 by a content hash of each SCC's IR, its value-flow \
                 fragment and its callees' keys: editing one function \
                 re-analyzes only it and its transitive callers. Entries \
                 are checksummed; a corrupt entry is removed and \
                 recomputed, never trusted. Implies $(b,--summaries).")

let verify_arg =
  Arg.(value & flag
       & info [ "verify" ]
           ~doc:"Run the certificate checkers (lib/verify) after each \
                 pipeline phase: replayed constraints for points-to, \
                 memory-SSA well-formedness, VFG structure and Γ \
                 fixpointness. A rejected certificate degrades soundly \
                 (function distrust or full instrumentation) instead of \
                 trusting the result.")

let knobs_of budget_ms solver_fuel vfg_cap resolve_fuel summaries no_summaries
    cache verify inject quarantine =
  let knobs =
    {
      Usher.Config.default_knobs with
      budget_ms;
      solver_fuel;
      vfg_node_cap = vfg_cap;
      resolve_fuel;
      summaries = (summaries || cache <> None) && not no_summaries;
      summary_cache = (if no_summaries then None else cache);
      verify;
      inject;
    }
  in
  match quarantine with
  | None -> knobs
  | Some dir -> Audit.Quarantine.apply_dir dir knobs

let knobs_term =
  Term.(const knobs_of $ budget_ms_arg $ solver_fuel_arg $ vfg_cap_arg
        $ resolve_fuel_arg $ summaries_arg $ no_summaries_arg $ cache_arg
        $ verify_arg $ inject_arg $ quarantine_arg)

(* ---- observability (lib/obs) ---- *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace_event timeline — one span per \
                 pipeline phase and per function, degradation/quarantine \
                 instant events, periodic GC samples — and write it to \
                 $(docv) on exit. Open the file in chrome://tracing or \
                 https://ui.perfetto.dev. Off by default; tracing never \
                 changes analysis results.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the process-wide metrics registry (work counters, \
                 gauges, log2-bucket histograms) after the command.")

let print_metrics () =
  Printf.printf "metrics:\n";
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Metrics.Counter n -> Printf.printf "  %-34s %d\n" name n
      | Obs.Metrics.Gauge g -> Printf.printf "  %-34s %g\n" name g
      | Obs.Metrics.Histogram { count; sum; buckets } ->
        Printf.printf "  %-34s count %d sum %d buckets %s\n" name count sum
          (String.concat " "
             (List.map
                (fun (lo, n) -> Printf.sprintf "%d:%d" lo n)
                buckets)))
    (Obs.Metrics.snapshot ())

(** Run a command body under the requested observability: arm the tracer
    before any analysis, write the trace file on the way out (even when
    the command raises — a partial timeline of a crash is exactly when you
    want one), and dump metrics last. *)
let observed trace metrics (f : unit -> int) : int =
  if trace <> None then Obs.Trace.start ();
  let flush_trace () =
    match trace with
    | None -> ()
    | Some path ->
      Obs.Trace.write path;
      Printf.printf "(wrote Chrome trace to %s; open in chrome://tracing or \
                     ui.perfetto.dev)\n"
        path
  in
  match f () with
  | code ->
    flush_trace ();
    if metrics then print_metrics ();
    code
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    flush_trace ();
    Printexc.raise_with_backtrace e bt

let dump_arg =
  Arg.(value & opt_all (enum [ ("ir", `Ir); ("memssa", `Memssa); ("vfg", `Vfg);
                               ("plan", `Plan); ("cfg-dot", `Cfg_dot);
                               ("vfg-dot", `Vfg_dot) ]) []
       & info [ "dump" ]
           ~doc:"Dump an artifact: ir, memssa, vfg, plan, cfg-dot or vfg-dot \
                 (the -dot forms are Graphviz).")

(* ---- analyze ---- *)

let analyze_cmd =
  let run file level variant dumps knobs trace metrics =
    observed trace metrics @@ fun () ->
    let src = read_file file in
    (* dumps print between planning and the stats report, straight to
       stdout — the handler's buffer is printed after, preserving the
       dumps-then-stats order. *)
    let on_analysis prog (a : Usher.Pipeline.analysis)
        (plan : Instr.Item.plan) =
      List.iter
        (function
          | `Ir -> print_string (Ir.Printer.prog_to_string prog)
          | `Memssa -> print_string (Memssa.to_string a.mssa)
          | `Vfg ->
            Vfg.Graph.iter_nodes
              (fun id n ->
                let mark = if Vfg.Resolve.is_undef a.gamma id then "BOT" else "TOP" in
                Printf.printf "%4d %s %s\n" id mark
                  (Vfg.Graph.node_to_string prog a.pa.objects n);
                List.iter
                  (fun (d, k) ->
                    let kind =
                      match k with
                      | Vfg.Graph.Eintra -> ""
                      | Vfg.Graph.Ecall l -> Printf.sprintf " [call l%d]" l
                      | Vfg.Graph.Eret l -> Printf.sprintf " [ret l%d]" l
                    in
                    Printf.printf "       -> %s%s\n"
                      (Vfg.Graph.node_to_string prog a.pa.objects
                         (Vfg.Graph.node_of a.vfg.graph d))
                      kind)
                  (Vfg.Graph.succs a.vfg.graph id))
              a.vfg.graph
          | `Cfg_dot -> print_string (Ir.Dot.prog_to_string prog)
          | `Vfg_dot -> print_string (Vfg.Dot.to_string ~gamma:a.gamma a.vfg)
          | `Plan ->
            Array.iteri
              (fun lbl items ->
                List.iter
                  (fun (it : Instr.Item.item) ->
                    Printf.printf "l%d %s: %s\n" lbl
                      (match it.pos with Instr.Item.Before -> "pre " | After -> "post")
                      (Instr.Item.action_to_string prog it.act))
                  (List.rev items))
              plan.items)
        dumps
    in
    let b = Buffer.create 1024 in
    let code = Serve.Handlers.analyze ~on_analysis ~knobs ~level ~variant b src in
    print_string (Buffer.contents b);
    code
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Statically analyze a TinyC program")
    Term.(const run $ file_arg $ level_arg $ variant_arg $ dump_arg $ knobs_term
          $ trace_arg $ metrics_arg)

(* ---- run ---- *)

let run_cmd =
  let run file level variant engine knobs trace metrics =
    observed trace metrics @@ fun () ->
    let b = Buffer.create 1024 in
    let code =
      Serve.Handlers.run ~knobs ~level ~variant ~engine b (read_file file)
    in
    print_string (Buffer.contents b);
    code
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute a TinyC program under instrumentation. Exits 0 when \
             clean, 3 when a use of an undefined value is detected, 4 when \
             a ground-truth undefined use escapes the instrumentation.")
    Term.(const run $ file_arg $ level_arg $ variant_arg $ engine_arg
          $ knobs_term $ trace_arg $ metrics_arg)

(* ---- check ---- *)

let check_cmd =
  let run file level knobs incident_dir trace metrics =
    observed trace metrics @@ fun () ->
    let b = Buffer.create 1024 in
    let code =
      Serve.Handlers.check ~knobs ~level ~incident_dir b (read_file file)
    in
    print_string (Buffer.contents b);
    code
  in
  let incident_dir_arg =
    Arg.(value & opt string ".usher-audit"
         & info [ "incident-dir" ] ~docv:"DIR"
             ~doc:"Directory for static-violation incident artifacts \
                   (written only when a certificate is rejected).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Independently re-verify the static analysis of a TinyC \
             program: replay the Andersen constraints against the \
             points-to solution, check memory-SSA well-formedness, replay \
             the VFG construction rules, and validate Γ as a fixpoint of \
             F-reachability. Exits 0 when every certificate verifies, 5 \
             when any checker finds a violation (an incident artifact is \
             then recorded).")
    Term.(const run $ file_arg $ level_arg $ knobs_term $ incident_dir_arg
          $ trace_arg $ metrics_arg)

(* ---- gen ---- *)

let gen_cmd =
  let run name scale =
    let p = Workloads.Spec2000.find name in
    print_string (Workloads.Spec2000.source ~scale p);
    0
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let scale_arg =
    Arg.(value & opt int 30 & info [ "scale" ] ~doc:"Input scale (100 = nominal).")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Print a SPEC2000-analog TinyC source")
    Term.(const run $ name_arg $ scale_arg)

(* ---- bench ---- *)

let bench_cmd =
  let run name scale level engine knobs trace metrics =
    observed trace metrics @@ fun () ->
    let b = Buffer.create 1024 in
    let code = Serve.Handlers.bench ~knobs ~level ~scale ~engine b name in
    print_string (Buffer.contents b);
    code
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let scale_arg =
    Arg.(value & opt int 30 & info [ "scale" ] ~doc:"Input scale (100 = nominal).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run one SPEC2000 analog end to end. Exits 0 when clean, 3 when \
             undefined uses are detected, 4 on a soundness divergence.")
    Term.(const run $ name_arg $ scale_arg $ level_arg $ engine_arg
          $ knobs_term $ trace_arg $ metrics_arg)

(* ---- audit ---- *)

let audit_cmd =
  let run corpus scale mutants seed budget_ms dir hole no_reduce quiet level
      engine trace metrics =
    observed trace metrics @@ fun () ->
    let profiles =
      match corpus with
      | [] -> Workloads.Spec2000.all
      | names ->
        List.map
          (fun n ->
            try Workloads.Spec2000.find n
            with Not_found ->
              Diag.error Diag.Driver "unknown benchmark %s" n)
          names
    in
    let cfg =
      {
        Audit.Loop.default_config with
        profiles;
        scale;
        mutants;
        seed;
        budget_ms;
        dir;
        hole;
        minimize = not no_reduce;
        level;
        engine;
        log = (if quiet then ignore else fun s -> Printf.printf "%s\n%!" s);
      }
    in
    let s = Audit.Loop.run cfg in
    Printf.printf
      "audit: %d program(s), %d mutant(s), %d skipped%s\n"
      s.programs s.mutants_run s.skipped
      (if s.out_of_time then " (budget expired)" else "");
    Printf.printf
      "incidents: %d soundness, %d precision  quarantined: %s  healed: %d\n"
      s.soundness_incidents s.precision_incidents
      (match s.quarantined with [] -> "none" | q -> String.concat ", " q)
      s.healed;
    List.iter
      (fun (i : Audit.Incident.t) ->
        Printf.printf "  %s %s (%s)\n"
          (Audit.Incident.kind_name i.kind) i.id i.variant)
      s.incidents;
    if s.soundness_incidents > 0 then 4 else 0
  in
  let corpus_arg =
    Arg.(value & opt_all string []
         & info [ "corpus" ] ~docv:"BENCHMARK"
             ~doc:"Audit only this benchmark profile (repeatable); default \
                   is the whole SPEC2000-analog corpus.")
  in
  let scale_arg =
    Arg.(value & opt int 5
         & info [ "scale" ] ~doc:"Input scale for generated programs.")
  in
  let mutants_arg =
    Arg.(value & opt int 3
         & info [ "mutants" ] ~doc:"AST mutants audited per base program.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fuzzing seed (determinism).")
  in
  let dir_arg =
    Arg.(value & opt string ".usher-audit"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Incident artifact + quarantine directory.")
  in
  let hole_arg =
    Arg.(value & opt (some string) None
         & info [ "inject-hole" ] ~docv:"PREFIX"
             ~doc:"Test hook: delete every check guided plans place in \
                   functions whose name starts with $(docv) — a seeded \
                   soundness bug the sentinel must catch.")
  in
  let no_reduce_arg =
    Arg.(value & flag
         & info [ "no-reduce" ]
             ~doc:"Skip ddmin reduction of soundness incidents.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the final summary.")
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Differential soundness audit: run workload-generated programs \
             and AST mutants through every variant, cross-check detections \
             against interpreter ground truth, capture + reduce incidents, \
             and quarantine implicated functions. Exits 4 if any soundness \
             incident was captured, 0 otherwise.")
    Term.(const run $ corpus_arg $ scale_arg $ mutants_arg $ seed_arg
          $ budget_ms_arg $ dir_arg $ hole_arg $ no_reduce_arg $ quiet_arg
          $ level_arg $ engine_arg $ trace_arg $ metrics_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run count seed size jobs budget_ms dir corpus distill promote hole
      no_reduce quiet via_serve window no_faults level engine trace metrics =
    observed trace metrics @@ fun () ->
    let log = if quiet then ignore else fun s -> Printf.printf "%s\n%!" s in
    match via_serve with
    | Some socket ->
      (* soak mode: stream the same generated campaign at a running
         daemon and audit the reply stream instead of running the
         oracle locally *)
      let s =
        Serve.Soak.run
          {
            Serve.Soak.socket;
            count;
            seed;
            size;
            window;
            budget_ms;
            faults = not no_faults;
            log;
          }
      in
      Printf.printf "%s\n" (Serve.Soak.summary_to_string s);
      List.iter
        (fun (k, v) -> Printf.printf "  server %s: %d\n" k v)
        s.server_totals;
      Serve.Soak.exit_code s
    | None -> (
      let cfg =
        {
          Audit.Fuzz.default_config with
          count;
          seed;
          size;
          jobs;
          budget_ms;
          dir;
          corpus;
          distill;
          hole;
          minimize = not no_reduce;
          level;
          engine;
          log;
        }
      in
      match promote with
      | Some src_dir ->
        let dst_dir = Option.value corpus ~default:"examples/corpus" in
        let p = Audit.Fuzz.promote cfg ~src_dir ~dst_dir in
        Printf.printf
          "promote: %d examined, %d promoted, %d redundant, %d rejected -> \
           %s (%d member(s))\n"
          p.p_examined p.p_promoted p.p_redundant p.p_rejected dst_dir
          p.p_total;
        0
      | None ->
      let s = Audit.Fuzz.run cfg in
      Printf.printf
        "fuzz: %d generated, %d audited, %d skipped%s in %.2fs (oracle %.2fs)\n"
        s.generated s.audited s.skipped
        (if s.out_of_time then " (budget expired)" else "")
        s.elapsed_s s.oracle_s;
      Printf.printf
        "incidents: %d soundness, %d precision  quarantined: %s  healed: %d\n"
        s.soundness_incidents s.precision_incidents
        (match s.quarantined with [] -> "none" | q -> String.concat ", " q)
        s.healed;
      if corpus <> None then
        Printf.printf "corpus: %d distilled this run, %d total\n" s.distilled
          s.corpus_total;
      List.iter
        (fun (i : Audit.Incident.t) ->
          Printf.printf "  %s %s (%s) hits %d\n"
            (Audit.Incident.kind_name i.kind) i.id i.variant i.hits)
        s.incidents;
      if s.soundness_incidents > 0 then 4 else 0)
  in
  let count_arg =
    Arg.(value & opt int 100
         & info [ "count" ] ~doc:"Programs to generate and audit.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ]
             ~doc:"Campaign root seed. Per-program seeds are a pure \
                   function of (seed, index), so a campaign replays \
                   identically whatever $(b,--jobs) is.")
  in
  let size_arg =
    Arg.(value & opt int 3
         & info [ "size" ] ~doc:"Generator size (helper functions per program).")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~doc:"Parallel oracle runs (domains).")
  in
  let dir_arg =
    Arg.(value & opt string ".usher-audit"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Incident artifact + quarantine directory.")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Persisted corpus directory for distilled programs \
                   (fuzz-<digest>.c plus corpus.features).")
  in
  let distill_arg =
    Arg.(value & flag
         & info [ "distill" ]
             ~doc:"Promote programs whose coverage fingerprint contributes \
                   a feature no earlier program did into $(b,--corpus).")
  in
  let promote_arg =
    Arg.(value & opt (some string) None
         & info [ "promote" ] ~docv:"DIR"
             ~doc:"Instead of running a campaign, promote distilled \
                   programs from the corpus in $(docv) into a curated \
                   corpus ($(b,--corpus), default examples/corpus): each \
                   member is re-run through the differential oracle and \
                   copied — stable fuzz-<digest>.c name, its features \
                   merged into the curated corpus.features — exactly \
                   when its fingerprint contributes a feature the \
                   curated corpus lacks. Idempotent.")
  in
  let hole_arg =
    Arg.(value & opt (some string) None
         & info [ "inject-hole" ] ~docv:"PREFIX"
             ~doc:"Test hook: delete every check guided plans place in \
                   functions whose name starts with $(docv). Generated \
                   helpers are prefixed fz, so --inject-hole fz seeds a \
                   hole the fuzzer must find, reduce and quarantine.")
  in
  let no_reduce_arg =
    Arg.(value & flag
         & info [ "no-reduce" ]
             ~doc:"Skip ddmin reduction of soundness incidents.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only print the final summary.")
  in
  let via_serve_arg =
    Arg.(value & opt (some string) None
         & info [ "via-serve" ] ~docv:"SOCKET"
             ~doc:"Soak mode: instead of auditing locally, stream the \
                   generated campaign as concurrent analyze/run/check \
                   requests at the usherc serve daemon listening on \
                   $(docv), with fault injection woven in, and audit the \
                   reply stream (no lost or duplicated replies; shed \
                   only by admission control or drain). Exits 0 when the \
                   contract held and everything was answered, 2 when the \
                   server drained mid-burst (EOF tolerated), 1 on a \
                   protocol violation.")
  in
  let window_arg =
    Arg.(value & opt int 32
         & info [ "window" ]
             ~doc:"Soak mode: maximum requests in flight at once.")
  in
  let no_faults_arg =
    Arg.(value & flag
         & info [ "no-faults" ]
             ~doc:"Soak mode: disable the fault-injected request slice.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Generative differential fuzzing: generate seeded, \
             deterministic, always-terminating TinyC programs weighted \
             toward address-taken locals, function pointers, partial \
             struct initialization, aliasing stores and loop-carried \
             undef values; run each through the interpreter-vs-variants \
             differential oracle; ddmin-reduce and checksum-dedup any \
             divergence into incident artifacts; quarantine implicated \
             functions; optionally distill novel-coverage programs into a \
             persisted corpus. Exits 4 if any soundness incident was \
             captured, 0 otherwise. With --via-serve, soak-test a \
             running daemon with the same traffic instead.")
    Term.(const run $ count_arg $ seed_arg $ size_arg $ jobs_arg
          $ budget_ms_arg $ dir_arg $ corpus_arg $ distill_arg $ promote_arg
          $ hole_arg $ no_reduce_arg $ quiet_arg $ via_serve_arg $ window_arg
          $ no_faults_arg $ level_arg $ engine_arg $ trace_arg $ metrics_arg)

(* ---- serve ---- *)

let serve_cmd =
  let run jobs socket max_queue max_inflight_ms default_budget_ms retries
      cache_cap incident_dir drain_ms knobs trace metrics =
    observed trace metrics @@ fun () ->
    let cfg =
      {
        Serve.Server.default_config with
        jobs;
        retries;
        cache_cap;
        incident_dir;
        drain_ms;
        knobs;
        admission =
          { Serve.Admission.max_queue; max_inflight_ms; default_budget_ms };
      }
    in
    let t = Serve.Server.create cfg in
    (* SIGTERM/SIGINT flip the drain flag; the intake loop's select
       timeout notices it within 50ms. Everything else (finish or shed
       in-flight, join workers) happens in [drain] below. *)
    let on_term _ = Serve.Server.begin_drain t in
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle on_term)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigterm; Sys.sigint ];
    (* stdout carries only NDJSON replies; operator chatter goes to
       stderr. *)
    Printf.eprintf "usherc serve: %d worker domain(s) on %s\n%!" jobs
      (match socket with Some p -> "socket " ^ p | None -> "stdin/stdout");
    (match socket with
    | Some path -> Serve.Server.serve_socket t path
    | None ->
      Serve.Server.serve_fd t
        ~out:(Serve.Server.writer_of_fd Unix.stdout)
        Unix.stdin);
    Serve.Server.drain t;
    let c name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
    Printf.eprintf
      "usherc serve: drained clean (%d request(s), %d shed, %d retried, %d \
       quarantined)\n%!"
      (c "serve.requests") (c "serve.shed") (c "serve.retries")
      (c "serve.quarantined");
    0
  in
  let jobs_arg =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ] ~doc:"Worker domains in the analysis pool.")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix socket at $(docv) instead of \
                   stdin/stdout.")
  in
  let max_queue_arg =
    Arg.(value & opt int Serve.Admission.default_config.max_queue
         & info [ "max-queue" ]
             ~doc:"Queued-request watermark: requests arriving with this \
                   many already waiting are shed with an overloaded reply.")
  in
  let max_inflight_ms_arg =
    Arg.(value & opt int Serve.Admission.default_config.max_inflight_ms
         & info [ "max-inflight-ms" ]
             ~doc:"Watermark on the sum of granted wall-clock budgets; \
                   admissions that would exceed it are shed.")
  in
  let default_budget_ms_arg =
    Arg.(value & opt int Serve.Admission.default_config.default_budget_ms
         & info [ "default-budget-ms" ]
             ~doc:"Wall-clock budget granted to requests that do not ask \
                   for one (and the cap on those that do).")
  in
  let retries_arg =
    Arg.(value & opt int Serve.Server.default_config.retries
         & info [ "retries" ]
             ~doc:"Transient worker-crash retries before a request is \
                   quarantined.")
  in
  let cache_cap_arg =
    Arg.(value & opt int Serve.Server.default_config.cache_cap
         & info [ "cache-cap" ]
             ~doc:"Content-hashed reply cache capacity (entries); 0 \
                   disables caching.")
  in
  let incident_dir_arg =
    Arg.(value & opt string Serve.Server.default_config.incident_dir
         & info [ "incident-dir" ] ~docv:"DIR"
             ~doc:"Directory for worker-crash quarantine incidents (and \
                   check violations).")
  in
  let drain_ms_arg =
    Arg.(value & opt int Serve.Server.default_config.drain_ms
         & info [ "drain-ms" ]
             ~doc:"Grace period on SIGTERM/EOF for in-flight requests \
                   before the queue is shed.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the analysis daemon: newline-delimited JSON requests \
             (analyze/run/check/bench/stats/ping) on stdin or a Unix \
             socket, one reply object per line, each request crash-isolated \
             on a work-stealing pool of worker domains with admission \
             control, retry + quarantine, and a content-hashed reply \
             cache. Reply codes extend the CLI exit codes with 6 \
             (overloaded) and 7 (quarantined).")
    Term.(const run $ jobs_arg $ socket_arg $ max_queue_arg
          $ max_inflight_ms_arg $ default_budget_ms_arg $ retries_arg
          $ cache_cap_arg $ incident_dir_arg $ drain_ms_arg $ knobs_term
          $ trace_arg $ metrics_arg)

let main =
  Cmd.group
    (Cmd.info "usherc" ~version:"1.0.0"
       ~doc:"Usher: static value-flow analysis accelerating undefined-value detection")
    [ analyze_cmd; run_cmd; check_cmd; gen_cmd; bench_cmd; audit_cmd;
      fuzz_cmd; serve_cmd ]

(* Structured diagnostics (bad source, interpreter traps) exit cleanly
   with the located message instead of a backtrace. *)
let () =
  match Cmd.eval' ~catch:false main with
  | code -> exit code
  | exception Diag.Error d ->
    prerr_endline ("usherc: " ^ Diag.to_string d);
    exit 1
  | exception Serve.Handlers.Unknown_bench name ->
    prerr_endline ("usherc: unknown benchmark " ^ name);
    exit 1
  | exception Runtime.Interp.Runtime_error msg ->
    prerr_endline ("usherc: runtime error: " ^ msg);
    exit 1
  | exception Runtime.Interp.Resource_exhausted { what; limit } ->
    prerr_endline
      (Printf.sprintf "usherc: interpreter limit exhausted: %s (limit %d)" what
         limit)
    ;
    exit 1
