(* usherc — command-line driver for the Usher library.

     usherc analyze FILE   static analysis: stats, optional artifact dumps
     usherc run FILE       execute under a chosen instrumentation variant
     usherc gen NAME       print a SPEC2000-analog TinyC source
     usherc bench NAME     one benchmark end to end (all variants)

   Programs are TinyC sources (see README). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let level_conv =
  let parse = function
    | "O0+IM" | "o0" | "O0" -> Ok Optim.Pipeline.O0_IM
    | "O1" | "o1" -> Ok Optim.Pipeline.O1
    | "O2" | "o2" -> Ok Optim.Pipeline.O2
    | s -> Error (`Msg ("unknown optimization level " ^ s))
  in
  Arg.conv (parse, fun ppf l -> Fmt.string ppf (Optim.Pipeline.level_to_string l))

let variant_conv =
  let parse = function
    | "msan" -> Ok Usher.Config.Msan
    | "tl" -> Ok Usher.Config.Usher_tl
    | "tlat" | "tl+at" -> Ok Usher.Config.Usher_tl_at
    | "opt1" | "opti" -> Ok Usher.Config.Usher_opt1
    | "usher" | "full" -> Ok Usher.Config.Usher_full
    | s -> Error (`Msg ("unknown variant " ^ s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.string ppf (Usher.Config.variant_name v))

let level_arg =
  Arg.(value & opt level_conv Optim.Pipeline.O0_IM
       & info [ "l"; "level" ] ~doc:"Optimization level: O0+IM, O1 or O2.")

let variant_arg =
  Arg.(value & opt variant_conv Usher.Config.Usher_full
       & info [ "v"; "variant" ] ~doc:"Variant: msan, tl, tl+at, opt1 or usher.")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let dump_arg =
  Arg.(value & opt_all (enum [ ("ir", `Ir); ("memssa", `Memssa); ("vfg", `Vfg);
                               ("plan", `Plan); ("cfg-dot", `Cfg_dot);
                               ("vfg-dot", `Vfg_dot) ]) []
       & info [ "dump" ]
           ~doc:"Dump an artifact: ir, memssa, vfg, plan, cfg-dot or vfg-dot \
                 (the -dot forms are Graphviz).")

(* ---- analyze ---- *)

let analyze_cmd =
  let run file level variant dumps =
    let src = read_file file in
    let prog = Usher.Pipeline.front ~level src in
    let a = Usher.Pipeline.analyze prog in
    let plan, guided = Usher.Pipeline.plan_for a variant in
    let stats = Instr.Item.stats_of plan in
    let t1 = Usher.Analysis_stats.compute ~src a in
    List.iter
      (function
        | `Ir -> print_string (Ir.Printer.prog_to_string prog)
        | `Memssa -> print_string (Memssa.to_string a.mssa)
        | `Vfg ->
          Vfg.Graph.iter_nodes
            (fun id n ->
              let mark = if Vfg.Resolve.is_undef a.gamma id then "BOT" else "TOP" in
              Printf.printf "%4d %s %s\n" id mark
                (Vfg.Graph.node_to_string prog a.pa.objects n);
              List.iter
                (fun (d, k) ->
                  let kind =
                    match k with
                    | Vfg.Graph.Eintra -> ""
                    | Vfg.Graph.Ecall l -> Printf.sprintf " [call l%d]" l
                    | Vfg.Graph.Eret l -> Printf.sprintf " [ret l%d]" l
                  in
                  Printf.printf "       -> %s%s\n"
                    (Vfg.Graph.node_to_string prog a.pa.objects
                       (Vfg.Graph.node_of a.vfg.graph d))
                    kind)
                (Vfg.Graph.succs a.vfg.graph id))
            a.vfg.graph
        | `Cfg_dot -> print_string (Ir.Dot.prog_to_string prog)
        | `Vfg_dot -> print_string (Vfg.Dot.to_string ~gamma:a.gamma a.vfg)
        | `Plan ->
          Array.iteri
            (fun lbl items ->
              List.iter
                (fun (it : Instr.Item.item) ->
                  Printf.printf "l%d %s: %s\n" lbl
                    (match it.pos with Instr.Item.Before -> "pre " | After -> "post")
                    (Instr.Item.action_to_string prog it.act))
                (List.rev items))
            plan.items)
      dumps;
    Printf.printf "variant: %s\n" (Usher.Config.variant_name variant);
    Printf.printf "statements: %d   Var_TL: %d   Var_AT: %d stack / %d heap / %d global\n"
      (Ir.Prog.size prog) t1.var_tl t1.var_at_stack t1.var_at_heap t1.var_at_global;
    Printf.printf "VFG nodes: %d (%.0f%% need tracking)   stores: %.0f%% strong, %.0f%% weak-singleton\n"
      t1.vfg_nodes t1.pct_reaching t1.pct_strong t1.pct_weak_singleton;
    Printf.printf "static shadow propagations: %d   checks: %d   items: %d\n"
      stats.propagations stats.checks stats.total_items;
    (match guided with
    | Some g ->
      Printf.printf "guided traversal reached %d nodes; Opt I simplified %d closures\n"
        g.needed_nodes g.opt1_simplified
    | None -> ());
    Printf.printf "Opt II redirected %d nodes\n" a.opt2.redirected
  in
  Cmd.v (Cmd.info "analyze" ~doc:"Statically analyze a TinyC program")
    Term.(const run $ file_arg $ level_arg $ variant_arg $ dump_arg)

(* ---- run ---- *)

let run_cmd =
  let run file level variant =
    let src = read_file file in
    let prog = Usher.Pipeline.front ~level src in
    let a = Usher.Pipeline.analyze prog in
    let plan, _ = Usher.Pipeline.plan_for a variant in
    let native = Runtime.Interp.run_native prog in
    let o = Runtime.Interp.run_plan prog plan in
    List.iter (fun v -> Printf.printf "output: %d\n" v) o.outputs;
    Printf.printf "exit: %d\n" o.exit_value;
    Hashtbl.iter
      (fun l () ->
        Printf.printf "WARNING: use of undefined value at statement l%d\n" l)
      o.detections;
    Printf.printf "slowdown vs native: %.1f%%  (%d shadow ops over %d base ops)\n"
      (Runtime.Costmodel.slowdown_pct ~native:native.counters
         ~instrumented:o.counters ())
      (Runtime.Counters.shadow_ops o.counters)
      (Runtime.Counters.base_ops o.counters)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute a TinyC program under instrumentation")
    Term.(const run $ file_arg $ level_arg $ variant_arg)

(* ---- gen ---- *)

let gen_cmd =
  let run name scale =
    let p = Workloads.Spec2000.find name in
    print_string (Workloads.Spec2000.source ~scale p)
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let scale_arg =
    Arg.(value & opt int 30 & info [ "scale" ] ~doc:"Input scale (100 = nominal).")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Print a SPEC2000-analog TinyC source")
    Term.(const run $ name_arg $ scale_arg)

(* ---- bench ---- *)

let bench_cmd =
  let run name scale level =
    let p = Workloads.Spec2000.find name in
    let src = Workloads.Spec2000.source ~scale p in
    let e = Usher.Experiment.run ~name ~level src in
    Printf.printf "%s at %s (scale %d):\n" name
      (Optim.Pipeline.level_to_string level) scale;
    List.iter
      (fun (r : Usher.Experiment.variant_result) ->
        Printf.printf "  %-12s slowdown %6.1f%%  props %6d  checks %5d  detections %d\n"
          (Usher.Config.variant_name r.variant)
          r.slowdown_pct r.static_stats.propagations r.static_stats.checks
          (List.length r.detections))
      e.results
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")
  in
  let scale_arg =
    Arg.(value & opt int 30 & info [ "scale" ] ~doc:"Input scale (100 = nominal).")
  in
  Cmd.v (Cmd.info "bench" ~doc:"Run one SPEC2000 analog end to end")
    Term.(const run $ name_arg $ scale_arg $ level_arg)

let main =
  Cmd.group
    (Cmd.info "usherc" ~version:"1.0.0"
       ~doc:"Usher: static value-flow analysis accelerating undefined-value detection")
    [ analyze_cmd; run_cmd; gen_cmd; bench_cmd ]

let () = exit (Cmd.eval main)
