(* Optimization study: the three precision mechanisms the paper highlights,
   each demonstrated on (a version of) its own worked example.

     dune exec examples/optimization_study.exe

   1. Semi-strong updates (Fig. 6): an allocation inside a loop, stored to
      through a pointer derived from it — a weak update would drag the
      malloc's F into every later load; the semi-strong update bypasses it.
   2. Opt I, value-flow simplification (Fig. 8): a chain of binary
      operations collapses into one conjunction of its sources' shadows.
   3. Opt II, redundant check elimination (Fig. 9): a check dominated by
      another check of the same must-flow closure is eliminated. *)

let analyze_counts ?(knobs = Usher.Config.default_knobs) variant src =
  let prog = Usher.Pipeline.front src in
  let a = Usher.Pipeline.analyze ~knobs prog in
  let plan, _ = Usher.Pipeline.plan_for a variant in
  (Instr.Item.stats_of plan, a)

(* --- 1. semi-strong updates ------------------------------------------ *)

let fig6 = {|
int main() {
  int s = 0;
  int i;
  for (i = 0; i < 50; i = i + 1) {
    int *q = (int*)malloc(1);   // alloc_F: uninitialized heap cell
    *q = i * 2;                 // semi-strong: q derives from the alloc
    s = s + *q;                 // load sees a defined value statically
  }
  print(s);
  return 0;
}
|}

let demo_semi_strong () =
  print_endline "== 1. Semi-strong updates (Fig. 6) ==";
  let on, a_on = analyze_counts Usher.Config.Usher_tl_at fig6 in
  let off, _ =
    analyze_counts
      ~knobs:{ Usher.Config.default_knobs with semi_strong = false }
      Usher.Config.Usher_tl_at fig6
  in
  Printf.printf "semi-strong cuts applied: %d\n" a_on.vfg.semi_strong_cuts;
  Printf.printf "with semi-strong:    %2d propagations, %2d checks\n"
    on.propagations on.checks;
  Printf.printf "without (weak only): %2d propagations, %2d checks\n"
    off.propagations off.checks;
  Printf.printf
    "the store kills the malloc's F for the loop body; with weak updates\n";
  Printf.printf "the load and everything after it stays instrumented.\n\n"

(* --- 2. Opt I --------------------------------------------------------- *)

let fig8 = {|
int main() {
  int sel = 0;
  int a;
  int b;
  int c;
  int d;
  if (sel == 0) { a = 1; b = 2; c = 3; d = 4; }   // statically maybe-undef
  int x = a + b;      // the closure of z is {z, x, y, a, b, c, d}
  int y = c + d;
  int z = x + y;
  if (z > 5) { print(1); } else { print(0); }
  return 0;
}
|}

let demo_opt1 () =
  print_endline "== 2. Opt I: value-flow simplification (Fig. 8) ==";
  let without, _ = analyze_counts Usher.Config.Usher_tl_at fig8 in
  let with_, _ = analyze_counts Usher.Config.Usher_opt1 fig8 in
  Printf.printf "without Opt I: %2d propagations (x and y relay shadows to z)\n"
    without.propagations;
  Printf.printf "with Opt I:    %2d propagations (sigma(z) reads its sources directly)\n"
    with_.propagations;
  print_newline ()

(* --- 3. Opt II -------------------------------------------------------- *)

let fig9 = {|
int main() {
  int sel = 1;
  int b;
  if (sel > 0) { b = 7; }       // maybe-undef, defined at run time
  int c = b + 1;
  int buf[4];
  int i;
  for (i = 0; i < 4; i = i + 1) { buf[i] = i; }
  int x = buf[c & 3];           // l1: critical load guarded by c's closure
  int d = 0;
  int e = b + d;                // flows from b again...
  if (e > 3) { print(1); } else { print(0); }   // l2: dominated by l1
  print(x);
  return 0;
}
|}

let demo_opt2 () =
  print_endline "== 3. Opt II: redundant check elimination (Fig. 9) ==";
  let without, _ = analyze_counts Usher.Config.Usher_opt1 fig9 in
  let with_, a = analyze_counts Usher.Config.Usher_full fig9 in
  Printf.printf "VFG nodes redirected to T: %d\n" a.opt2.redirected;
  Printf.printf "without Opt II: %2d checks\n" without.checks;
  Printf.printf "with Opt II:    %2d checks\n" with_.checks;
  Printf.printf
    "if b were undefined it would already be reported at the dominating use,\n";
  Printf.printf "so the later checks fed by the same closure are dropped.\n\n"

let () =
  demo_semi_strong ();
  demo_opt1 ();
  demo_opt2 ()
